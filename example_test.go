package depminer_test

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro"
)

// The canonical end-to-end flow: load a relation, discover its minimal
// FDs and the real-world Armstrong relation.
func Example() {
	r := depminer.PaperExample()
	res, err := depminer.Discover(context.Background(), r, depminer.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d minimal FDs, Armstrong relation of %d tuples\n",
		len(res.FDs), res.Armstrong.Rows())
	fmt.Println(res.FDs[0].Names(r.Names()))
	// Output:
	// 14 minimal FDs, Armstrong relation of 4 tuples
	// depnum,year → empnum
}

func ExampleLoadCSV() {
	data := "city,zip\nLyon,69001\nLyon,69002\nParis,75001\n"
	r, err := depminer.LoadCSV(strings.NewReader(data), true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d tuples over %d attributes\n", r.Rows(), r.Arity())
	// Output:
	// 3 tuples over 2 attributes
}

func ExampleDiscover() {
	r, _ := depminer.NewRelation(
		[]string{"zip", "city"},
		[][]string{
			{"69001", "Lyon"},
			{"69002", "Lyon"},
			{"75001", "Paris"},
			{"75001", "Paris"},
		},
	)
	res, err := depminer.Discover(context.Background(), r, depminer.Options{
		Armstrong: depminer.ArmstrongNone,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range res.FDs {
		fmt.Println(f.Names(r.Names()))
	}
	// Output:
	// zip → city
}

func ExampleDiscoverTANE() {
	r := depminer.PaperExample()
	res, err := depminer.DiscoverTANE(context.Background(), r, depminer.TANEOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d minimal FDs over %d lattice nodes\n", len(res.FDs), res.LatticeNodes)
	// Output:
	// 14 minimal FDs over 15 lattice nodes
}

func ExampleParseFD() {
	names := []string{"empnum", "depnum", "year"}
	f, err := depminer.ParseFD("depnum, year -> empnum", names)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(f.Names(names))
	// Output:
	// depnum,year → empnum
}

func ExampleVerify() {
	r := depminer.PaperExample()
	rule, _ := depminer.ParseFD("empnum -> depnum", r.Names())
	ok, bad := depminer.Verify(r, depminer.Cover{rule})
	fmt.Println(ok, bad.Names(r.Names()))
	// Output:
	// false empnum → depnum
}

func ExampleGenerate() {
	r, err := depminer.Generate(depminer.GenerateSpec{
		Attrs: 4, Rows: 1000, Correlation: 0.5, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d tuples, %d attributes, %d distinct values in column A\n",
		r.Rows(), r.Arity(), r.DomainSize(0))
	// Output:
	// 1000 tuples, 4 attributes, 431 distinct values in column A
}

func ExampleRealWorldArmstrong() {
	r := depminer.PaperExample()
	res, err := depminer.Discover(context.Background(), r, depminer.Options{
		Armstrong: depminer.ArmstrongNone,
	})
	if err != nil {
		log.Fatal(err)
	}
	arm, err := depminer.RealWorldArmstrong(r, res.MaxSets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled %d of %d tuples\n", arm.Rows(), r.Rows())
	// Output:
	// sampled 4 of 7 tuples
}

func ExampleSynthesizeThreeNF() {
	names := []string{"order", "customer", "city"}
	cover := depminer.Cover{}
	for _, line := range []string{"order -> customer", "customer -> city"} {
		f, err := depminer.ParseFD(line, names)
		if err != nil {
			log.Fatal(err)
		}
		cover = append(cover, f)
	}
	dec := depminer.SynthesizeThreeNF(cover, len(names))
	for _, s := range dec.Schemas {
		fmt.Println(s.Names(names))
	}
	// Output:
	// (order, customer) key (order)
	// (customer, city) key (customer)
}

func ExampleNewIncrementalMiner() {
	m, err := depminer.NewIncrementalMiner([]string{"zip", "city"})
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range [][]string{
		{"69001", "Lyon"}, {"69001", "Lyon"}, {"75001", "Paris"},
	} {
		if err := m.Insert(row); err != nil {
			log.Fatal(err)
		}
	}
	cover, err := m.Cover(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range cover {
		fmt.Println(f.Names(m.Names()))
	}
	// Output:
	// city → zip
	// zip → city
}

func ExampleStreamCSV() {
	data := "a,b\n1,x\n2,x\n3,y\n"
	db, err := depminer.StreamCSV(strings.NewReader(data), true)
	if err != nil {
		log.Fatal(err)
	}
	res, err := depminer.DiscoverStreamed(context.Background(), db, depminer.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range res.FDs {
		fmt.Println(f.Names(db.Names))
	}
	// Output:
	// a → b
}
