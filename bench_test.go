package depminer

// Benchmarks regenerating the paper's evaluation artefacts (one bench per
// table and figure; see DESIGN.md §4 and EXPERIMENTS.md for the mapping),
// plus ablations of the design decisions DESIGN.md §5 calls out.
//
// Default sizes are scaled to a laptop: the paper's grid reaches 100,000
// tuples × 60 attributes on a 350 MHz machine and takes hours; run
// cmd/benchmark -full for that. Times here are not comparable to the
// paper's absolute numbers — shapes are (who wins, how the gap moves with
// |R| and |r|, how small Armstrong relations are).

import (
	"context"
	"fmt"
	"strconv"
	"testing"

	"repro/internal/agree"
	"repro/internal/armstrong"
	"repro/internal/attrset"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/fastfds"
	"repro/internal/hypergraph"
	"repro/internal/incremental"
	"repro/internal/ind"
	"repro/internal/keys"
	"repro/internal/maxsets"
	"repro/internal/partition"
	"repro/internal/pstore"
	"repro/internal/relation"
	"repro/internal/tane"
)

// dataset caches generated benchmark relations across benchmarks.
var datasets = map[datagen.Spec]*relation.Relation{}

func dataset(b *testing.B, attrs, rows int, c float64) *relation.Relation {
	b.Helper()
	spec := datagen.Spec{Attrs: attrs, Rows: rows, Correlation: c, Seed: 1}
	if r, ok := datasets[spec]; ok {
		return r
	}
	r, err := datagen.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	datasets[spec] = r
	return r
}

// benchGrid runs the three algorithms over a scaled grid for one
// correlation level — the computation behind Tables 3, 4 and 5.
func benchGrid(b *testing.B, c float64) {
	for _, rows := range []int{1000, 5000} {
		for _, attrs := range []int{10, 20} {
			r := dataset(b, attrs, rows, c)
			b.Run(fmt.Sprintf("r=%d/R=%d/DepMiner", rows, attrs), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.Discover(context.Background(), r, core.Options{
						Algorithm: core.AgreeCouples, Armstrong: core.ArmstrongNone,
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("r=%d/R=%d/DepMiner2", rows, attrs), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.Discover(context.Background(), r, core.Options{
						Algorithm: core.AgreeIdentifiers, Armstrong: core.ArmstrongNone,
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("r=%d/R=%d/TANE", rows, attrs), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := tane.Run(context.Background(), r, tane.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable3 regenerates Table 3 (execution times, data without
// constraints, c = 0) at laptop scale.
func BenchmarkTable3(b *testing.B) { benchGrid(b, 0) }

// BenchmarkTable4 regenerates Table 4 (correlated data, c = 30%).
func BenchmarkTable4(b *testing.B) { benchGrid(b, 0.3) }

// BenchmarkTable5 regenerates Table 5 (correlated data, c = 50%).
func BenchmarkTable5(b *testing.B) { benchGrid(b, 0.5) }

// benchFigureTime runs the |r| sweep at the two |R| extremes — the curves
// of Figures 2, 4 and 6.
func benchFigureTime(b *testing.B, c float64) {
	for _, attrs := range []int{10, 25} {
		for _, rows := range []int{500, 1000, 2000, 5000} {
			r := dataset(b, attrs, rows, c)
			for _, algo := range []core.AgreeAlgorithm{core.AgreeCouples, core.AgreeIdentifiers} {
				algo := algo
				b.Run(fmt.Sprintf("R=%d/r=%d/%s", attrs, rows, algo), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := core.Discover(context.Background(), r, core.Options{
							Algorithm: algo, Armstrong: core.ArmstrongNone,
						}); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
			b.Run(fmt.Sprintf("R=%d/r=%d/TANE", attrs, rows), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := tane.Run(context.Background(), r, tane.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure2 regenerates Figure 2 (time vs |r| curves, c = 0).
func BenchmarkFigure2(b *testing.B) { benchFigureTime(b, 0) }

// BenchmarkFigure4 regenerates Figure 4 (time vs |r| curves, c = 30%).
func BenchmarkFigure4(b *testing.B) { benchFigureTime(b, 0.3) }

// BenchmarkFigure6 regenerates Figure 6 (time vs |r| curves, c = 50%).
func BenchmarkFigure6(b *testing.B) { benchFigureTime(b, 0.5) }

// benchFigureSize measures Armstrong relation sizes over the |r| sweep —
// Figures 3, 5 and 7. The size is reported as the custom metric
// "armstrong-tuples" next to the build time.
func benchFigureSize(b *testing.B, c float64) {
	for _, attrs := range []int{10, 25} {
		for _, rows := range []int{500, 1000, 2000, 5000} {
			r := dataset(b, attrs, rows, c)
			b.Run(fmt.Sprintf("R=%d/r=%d", attrs, rows), func(b *testing.B) {
				b.ReportAllocs()
				size := 0
				for i := 0; i < b.N; i++ {
					res, err := core.Discover(context.Background(), r, core.Options{
						Algorithm: core.AgreeIdentifiers,
						Armstrong: core.ArmstrongRealWorldOrSynthetic,
					})
					if err != nil {
						b.Fatal(err)
					}
					size = res.Armstrong.Rows()
				}
				b.ReportMetric(float64(size), "armstrong-tuples")
				b.ReportMetric(float64(rows)/float64(size), "compression-x")
			})
		}
	}
}

// BenchmarkFigure3 regenerates Figure 3 (Armstrong sizes vs |r|, c = 0).
func BenchmarkFigure3(b *testing.B) { benchFigureSize(b, 0) }

// BenchmarkFigure5 regenerates Figure 5 (Armstrong sizes, c = 30%).
func BenchmarkFigure5(b *testing.B) { benchFigureSize(b, 0.3) }

// BenchmarkFigure7 regenerates Figure 7 (Armstrong sizes, c = 50%).
func BenchmarkFigure7(b *testing.B) { benchFigureSize(b, 0.5) }

// BenchmarkAblation_AgreeSets isolates step 1: the naive O(n·p²) scan vs
// Algorithm 2 (MC couples) vs Algorithm 3 (identifier intersection) —
// the paper's core claim that stripped partitions cut the couple count.
func BenchmarkAblation_AgreeSets(b *testing.B) {
	r := dataset(b, 15, 2000, 0.3)
	db := partition.NewDatabase(r)
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := agree.Naive(context.Background(), r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("couples", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := agree.Couples(context.Background(), db, agree.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("identifiers", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := agree.Identifiers(context.Background(), db, agree.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_ChunkSize isolates the couple-chunking memory bound of
// Algorithm 2: smaller chunks re-sweep the stripped partitions more often
// (the paper's "several steps" slowdown on large relations).
func BenchmarkAblation_ChunkSize(b *testing.B) {
	r := dataset(b, 15, 2000, 0.5)
	db := partition.NewDatabase(r)
	for _, chunk := range []int{1 << 10, 1 << 14, 1 << 20} {
		b.Run(strconv.Itoa(chunk), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := agree.Couples(context.Background(), db, agree.Options{ChunkSize: chunk}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_SetAsMapKey isolates the bit-vector design: agree-set
// deduplication keyed by the comparable Set value vs. a string encoding —
// the "set operations in constant time" implementation note of §5.
func BenchmarkAblation_SetAsMapKey(b *testing.B) {
	r := dataset(b, 20, 2000, 0.3)
	res, err := agree.FromRelation(context.Background(), r)
	if err != nil {
		b.Fatal(err)
	}
	sets := res.Sets
	b.Run("set-key", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := make(map[attrset.Set]struct{}, len(sets))
			for _, s := range sets {
				m[s] = struct{}{}
			}
			if len(m) != len(sets) {
				b.Fatal("dedup mismatch")
			}
		}
	})
	b.Run("string-key", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := make(map[string]struct{}, len(sets))
			for _, s := range sets {
				m[s.String()] = struct{}{}
			}
			if len(m) != len(sets) {
				b.Fatal("dedup mismatch")
			}
		}
	})
}

// BenchmarkAblation_Transversal isolates steps 3–4: the levelwise
// minimal-transversal search on the cmax hypergraphs of a benchmark
// relation.
func BenchmarkAblation_Transversal(b *testing.B) {
	b.ReportAllocs()
	r := dataset(b, 20, 2000, 0.3)
	res, err := agree.FromRelation(context.Background(), r)
	if err != nil {
		b.Fatal(err)
	}
	ms := maxsets.Compute(res.Sets, r.Arity())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for a := 0; a < r.Arity(); a++ {
			h := hypergraph.Simplify(ms.CMax[a])
			if _, err := h.MinimalTransversals(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblation_TransversalAlgorithm compares the paper's levelwise
// Apriori search against classical Berge multiplication on the cmax
// hypergraphs of a benchmark relation (DESIGN.md §5, item 4).
func BenchmarkAblation_TransversalAlgorithm(b *testing.B) {
	r := dataset(b, 15, 2000, 0.3)
	res, err := agree.FromRelation(context.Background(), r)
	if err != nil {
		b.Fatal(err)
	}
	ms := maxsets.Compute(res.Sets, r.Arity())
	hs := make([]*hypergraph.Hypergraph, r.Arity())
	for a := 0; a < r.Arity(); a++ {
		hs[a] = hypergraph.Simplify(ms.CMax[a])
	}
	b.Run("levelwise", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, h := range hs {
				if _, err := h.MinimalTransversals(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("berge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, h := range hs {
				if _, err := h.MinimalTransversalsBerge(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblation_MaximalClasses isolates the MC computation (Lemma 1's
// enabler) from the rest of step 1.
func BenchmarkAblation_MaximalClasses(b *testing.B) {
	b.ReportAllocs()
	r := dataset(b, 20, 5000, 0.3)
	db := partition.NewDatabase(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(db.MaximalClasses()) == 0 {
			b.Fatal("no classes")
		}
	}
}

// BenchmarkArmstrongConstruction isolates step 5: real-world vs synthetic
// construction from precomputed maximal sets.
func BenchmarkArmstrongConstruction(b *testing.B) {
	r := dataset(b, 20, 5000, 0.3)
	res, err := core.Discover(context.Background(), r, core.Options{Armstrong: core.ArmstrongNone})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("real-world", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := armstrong.RealWorld(r, res.MaxSets); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("synthetic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := armstrong.Synthetic(res.MaxSets, r.Names()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtension_FastFDs compares the levelwise transversal search
// against the depth-first difference-set search on the same workload —
// the extension's reason to exist is the wide-candidate-level regime.
func BenchmarkExtension_FastFDs(b *testing.B) {
	r := dataset(b, 20, 2000, 0.3)
	b.Run("levelwise", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Discover(context.Background(), r, core.Options{
				Algorithm: core.AgreeIdentifiers, Armstrong: core.ArmstrongNone,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fastfds", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fastfds.Run(context.Background(), r); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtension_Keys measures candidate-key discovery.
func BenchmarkExtension_Keys(b *testing.B) {
	b.ReportAllocs()
	r := dataset(b, 15, 2000, 0.3)
	for i := 0; i < b.N; i++ {
		if _, err := keys.Discover(context.Background(), r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtension_IncrementalInsert measures the per-insert cost of
// the incremental miner on a growing relation.
func BenchmarkExtension_IncrementalInsert(b *testing.B) {
	b.ReportAllocs()
	r := dataset(b, 10, 2000, 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := incremental.New(r.Names())
		if err != nil {
			b.Fatal(err)
		}
		for t := 0; t < r.Rows(); t++ {
			if err := m.Insert(r.Row(t)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(r.Rows()), "inserts/op")
}

// BenchmarkExtension_INDs measures inclusion-dependency discovery across
// two fragments of a benchmark relation.
func BenchmarkExtension_INDs(b *testing.B) {
	b.ReportAllocs()
	r := dataset(b, 10, 2000, 0.3)
	left := r.Project(attrset.Universe(5)).Deduplicate()
	right := r.Project(attrset.Universe(10).Diff(attrset.Universe(3))).Deduplicate()
	rels := []*relation.Relation{left, right}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ind.Discover(context.Background(), rels, ind.Options{MaxArity: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTANEApproximate measures the approximate-dependency mode
// against exact TANE on the same data.
func BenchmarkTANEApproximate(b *testing.B) {
	b.ReportAllocs()
	r := dataset(b, 12, 2000, 0.5)
	for _, eps := range []float64{0, 0.01, 0.05} {
		b.Run(fmt.Sprintf("eps=%v", eps), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tane.Run(context.Background(), r, tane.Options{Epsilon: eps}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTANEParallel measures TANE's parallel level evaluation at
// increasing worker counts on the widest default workload. Workers=1 is
// the sequential reference path; speedups are relative to it and bounded
// by GOMAXPROCS — on a single-core testbed all counts degenerate to ~1×
// (see BENCH_TANE.json for recorded numbers).
func BenchmarkTANEParallel(b *testing.B) {
	r := dataset(b, 20, 5000, 0.3)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tane.Run(context.Background(), r, tane.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTANEMemBound measures the memory-bounded partition store:
// cap=0 is the unbounded reference, the mid cap forces steady eviction
// with some recomputation, and the 1-byte cap is the worst case — every
// partition evicted on arrival and recomputed from the roots on each
// use. The recompute count and the settled peak are reported as custom
// metrics next to the time cost of trading memory for recomputation.
func BenchmarkTANEMemBound(b *testing.B) {
	r := dataset(b, 15, 2000, 0.5)
	for _, cap := range []int64{0, 64 << 10, 1} {
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			b.ReportAllocs()
			var stats pstore.Stats
			for i := 0; i < b.N; i++ {
				res, err := tane.Run(context.Background(), r, tane.Options{MaxPartitionBytes: cap})
				if err != nil {
					b.Fatal(err)
				}
				stats = res.Stats
			}
			if cap > 0 && stats.PeakBytes > cap {
				b.Fatalf("PeakBytes %d over cap %d", stats.PeakBytes, cap)
			}
			b.ReportMetric(float64(stats.Recomputes), "recomputes/op")
			b.ReportMetric(float64(stats.PeakBytes), "peak-bytes")
		})
	}
}

// BenchmarkDiscoverParallel measures the worker-pool execution layer:
// the full pipeline (agree-set sweep + per-attribute transversal fan-out)
// at increasing worker counts on one workload. Workers=1 is the
// sequential reference path; speedups are relative to it and bounded by
// GOMAXPROCS — on a single-core testbed all counts degenerate to ~1×
// (see BENCH_PARALLEL.json for recorded numbers).
func BenchmarkDiscoverParallel(b *testing.B) {
	r := dataset(b, 20, 5000, 0.3)
	for _, algo := range []core.AgreeAlgorithm{core.AgreeCouples, core.AgreeIdentifiers} {
		algo := algo
		for _, workers := range []int{1, 2, 4, 8} {
			workers := workers
			b.Run(fmt.Sprintf("%s/workers=%d", algo, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.Discover(context.Background(), r, core.Options{
						Algorithm: algo, Armstrong: core.ArmstrongNone, Workers: workers,
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
