package depminer

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestPublicAPIFastFDs(t *testing.T) {
	r := PaperExample()
	ff, err := DiscoverFastFDs(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := Discover(context.Background(), r, Options{Armstrong: ArmstrongNone})
	if err != nil {
		t.Fatal(err)
	}
	if len(ff.FDs) != len(dm.FDs) {
		t.Fatalf("FastFDs %d FDs, Dep-Miner %d", len(ff.FDs), len(dm.FDs))
	}
	for i := range ff.FDs {
		if ff.FDs[i] != dm.FDs[i] {
			t.Fatalf("FD %d differs: %s vs %s", i, ff.FDs[i], dm.FDs[i])
		}
	}
}

func TestPublicAPIIncremental(t *testing.T) {
	r := PaperExample()
	m, err := NewIncrementalMiner(r.Names())
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < r.Rows(); tt++ {
		if err := m.Insert(r.Row(tt)); err != nil {
			t.Fatal(err)
		}
	}
	cover, err := m.Cover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 14 {
		t.Fatalf("incremental cover has %d FDs, want 14", len(cover))
	}
	m2, err := IncrementalFromRelation(r)
	if err != nil {
		t.Fatal(err)
	}
	cover2, err := m2.Cover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(cover2) != len(cover) {
		t.Error("FromRelation and per-insert paths disagree")
	}
	// Armstrong via MaxSets + Snapshot.
	maxSets, err := m.MaxSets(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	arm, err := RealWorldArmstrong(snap, maxSets)
	if err != nil {
		t.Fatal(err)
	}
	if arm.Rows() != 4 {
		t.Errorf("Armstrong rows = %d, want 4", arm.Rows())
	}
}

func TestPublicAPIStreaming(t *testing.T) {
	r := PaperExample()
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	db, err := StreamCSV(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DiscoverStreamed(context.Background(), db, Options{Algorithm: DepMiner2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FDs) != 14 {
		t.Fatalf("streamed discovery found %d FDs, want 14", len(res.FDs))
	}
	if res.Armstrong != nil {
		t.Error("streamed path must not build Armstrong relations")
	}
	if db.Names[0] != "empnum" || db.DomainSizes[0] != 6 {
		t.Error("streamed metadata wrong")
	}
}

func TestPublicAPIStreamingErrors(t *testing.T) {
	if _, err := StreamCSV(strings.NewReader(""), true); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestPublicAPIGeneratePlanted(t *testing.T) {
	rule, err := ParseFD("A, B -> C", []string{"A", "B", "C", "D"})
	if err != nil {
		t.Fatal(err)
	}
	r, err := GeneratePlanted(PlantedSpec{
		Attrs: 4, Rows: 200, Seed: 5, FDs: Cover{rule}, FreeDomain: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok, bad := Verify(r, Cover{rule}); !ok {
		t.Fatalf("planted FD %s violated", bad)
	}
	res, err := Discover(context.Background(), r, Options{Armstrong: ArmstrongNone})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FDs.Implies(rule, r.Arity()) {
		t.Error("discovery missed the planted dependency")
	}
}

func TestPublicAPIKeys(t *testing.T) {
	r := PaperExample()
	res, err := DiscoverKeys(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Keys) != 6 {
		t.Fatalf("found %d keys, want 6: %v", len(res.Keys), res.Keys.Strings())
	}
	// Every key determines every attribute per the discovered cover.
	dm, err := Discover(context.Background(), r, Options{Armstrong: ArmstrongNone})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range res.Keys {
		for a := 0; a < r.Arity(); a++ {
			if !dm.FDs.Implies(FD{LHS: k, RHS: a}, r.Arity()) {
				t.Errorf("key %v does not imply attribute %d via the cover", k, a)
			}
		}
	}
}

func TestPublicAPIINDs(t *testing.T) {
	customers, err := NewRelation([]string{"id", "city"},
		[][]string{{"c1", "Lyon"}, {"c2", "Paris"}})
	if err != nil {
		t.Fatal(err)
	}
	orders, err := NewRelation([]string{"oid", "cust"},
		[][]string{{"o1", "c1"}, {"o2", "c2"}, {"o3", "c1"}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := DiscoverINDs(context.Background(),
		[]*Relation{customers, orders}, INDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range res.INDs {
		if d.Names([]string{"customers", "orders"}, []*Relation{customers, orders}) ==
			"orders(cust) ⊆ customers(id)" {
			found = true
		}
	}
	if !found {
		t.Errorf("foreign key not discovered: %v", res.INDs)
	}
}
