package wire

import (
	"strings"
	"testing"
)

// TestDecodeStrict pins the strictness contract the server relies on
// for POST /v1/discover: unknown fields and trailing data are errors,
// valid bodies (with surrounding whitespace) are not.
func TestDecodeStrict(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		wantErr bool
	}{
		{"valid", `{"dataset":"ds-1","algorithm":"tane","epsilon":0.1}`, false},
		{"valid empty", `{}`, false},
		{"valid async", `{"dataset":"d","async":false}`, false},
		{"leading/trailing whitespace", "\n  {\"dataset\":\"d\"}  \n", false},
		{"unknown field", `{"dataset":"d","budgetunits":5}`, true},
		{"misspelled knob", `{"dataset":"d","timeoutms":100}`, true},
		{"nested unknown is unknown too", `{"dataset":"d","options":{"workers":2}}`, true},
		{"trailing value", `{"dataset":"d"}{"dataset":"e"}`, true},
		{"trailing garbage", `{"dataset":"d"} nope`, true},
		{"not an object", `[1,2,3]`, true},
		{"empty input", ``, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var req DiscoverRequest
			err := DecodeStrict(strings.NewReader(tc.in), &req)
			if (err != nil) != tc.wantErr {
				t.Fatalf("DecodeStrict(%q) err = %v, wantErr = %v", tc.in, err, tc.wantErr)
			}
		})
	}
}
