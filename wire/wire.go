// Package wire defines the JSON request/response types of the depminerd
// HTTP API. It is the single source of truth shared by the server
// (internal/server) and the public Go client (repro/client), so the two
// sides cannot drift: a field added here is immediately visible to both.
//
// The package is deliberately dependency-free (standard library only)
// and contains no behaviour beyond JSON shape — policy lives in the
// server, transport in the client.
package wire

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Job states reported in JobInfo.State.
const (
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// RequestIDHeader carries the per-request correlation id. The server's
// middleware adopts an incoming value (generating one otherwise), echoes
// it on the response, and stamps it on every log line the request
// produces; a shard coordinator forwards it on its worker dispatches, so
// one id joins a discovery's log lines across the whole fleet.
const RequestIDHeader = "X-Depminer-Request-Id"

// VersionResponse is the body of GET /v1/version: what build is
// serving, from the binary's embedded module and VCS metadata.
type VersionResponse struct {
	// Version is the main module version ("(devel)" for plain builds).
	Version string `json:"version"`
	// Revision is the VCS commit the binary was built from, "unknown"
	// when the build carried no VCS metadata.
	Revision string `json:"revision"`
	// Dirty reports uncommitted changes at build time.
	Dirty bool `json:"dirty,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

// DatasetInfo is the wire description of a registered dataset.
type DatasetInfo struct {
	ID          string    `json:"id"`
	Name        string    `json:"name,omitempty"`
	Fingerprint string    `json:"fingerprint"`
	Rows        int       `json:"rows"`
	Attributes  int       `json:"attributes"`
	Names       []string  `json:"names"`
	Version     int       `json:"version"`
	Created     time.Time `json:"created"`
}

// DiscoverRequest is the body of POST /v1/discover. The server decodes
// it strictly (DecodeStrict): unknown fields are rejected with 400, so a
// misspelled knob fails loudly instead of silently running with defaults.
type DiscoverRequest struct {
	// Dataset is the registered dataset id (required).
	Dataset string `json:"dataset"`
	// Algorithm is depminer (default), depminer2, fastfds, tane, or
	// incremental (re-derive from the maintained session, no re-scan).
	Algorithm string `json:"algorithm,omitempty"`
	// Workers is the worker-pool width (0 = server default).
	Workers int `json:"workers,omitempty"`
	// TimeoutMS is the requested deadline, clamped to the server's
	// MaxTimeout (0 = the server cap).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// BudgetUnits is the requested guard unit budget, clamped to the
	// server's MaxBudgetUnits.
	BudgetUnits int64 `json:"budget_units,omitempty"`
	// MaxCouples enables the Algorithm 2 → 3 degradation threshold.
	MaxCouples int `json:"max_couples,omitempty"`
	// Epsilon is the approximate-dependency threshold (tane only).
	Epsilon float64 `json:"epsilon,omitempty"`
	// MaxPartitionBytes caps resident partition bytes (tane only).
	MaxPartitionBytes int64 `json:"max_partition_bytes,omitempty"`
	// MaxAgreeBytes caps resident agree-set bytes per worker pool;
	// accumulators past the cap spill sorted runs to disk and are merged
	// back streamingly (depminer/depminer2 only). 0 = the server default,
	// clamped to the server's MaxAgreeBytes. The discovered cover is
	// byte-identical for every threshold.
	MaxAgreeBytes int64 `json:"max_agree_bytes,omitempty"`
	// Armstrong includes the Armstrong relation in the response
	// (depminer/depminer2 only).
	Armstrong bool `json:"armstrong,omitempty"`
	// Shards is the shard count for distributed discovery, honoured only
	// by a coordinator-configured server (0 = the coordinator's default,
	// one shard per worker endpoint). Like spill knobs, shard topology is
	// an execution detail: the cover is byte-identical at every count.
	Shards int `json:"shards,omitempty"`
	// Async forces the execution mode; nil applies the server's
	// row-count threshold.
	Async *bool `json:"async,omitempty"`
}

// DiscoverResponse is the outcome of a discovery, inline (sync) or via a
// job record (async).
type DiscoverResponse struct {
	Dataset            string     `json:"dataset"`
	Fingerprint        string     `json:"fingerprint"`
	Algorithm          string     `json:"algorithm"`
	Rows               int        `json:"rows"`
	Attributes         int        `json:"attributes"`
	FDs                []string   `json:"fds"`
	Cached             bool       `json:"cached"`
	Partial            bool       `json:"partial,omitempty"`
	Error              string     `json:"error,omitempty"`
	Notes              []string   `json:"notes,omitempty"`
	Couples            int        `json:"couples,omitempty"`
	AgreeSets          int        `json:"agree_sets,omitempty"`
	MaxSets            int        `json:"max_sets,omitempty"`
	LatticeNodes       int        `json:"lattice_nodes,omitempty"`
	DFSNodes           int        `json:"dfs_nodes,omitempty"`
	Armstrong          [][]string `json:"armstrong,omitempty"`
	ArmstrongSynthetic bool       `json:"armstrong_synthetic,omitempty"`
	BudgetUsed         int64      `json:"budget_used,omitempty"`
	SpilledRuns        int64      `json:"spilled_runs,omitempty"`
	SpilledBytes       int64      `json:"spilled_bytes,omitempty"`
	// Shards reports how the agree-set phase was split on a
	// coordinator-served discovery (0 = single-node), with the remote /
	// local-fallback breakdown.
	Shards       int `json:"shards,omitempty"`
	ShardsRemote int `json:"shards_remote,omitempty"`
	ShardsLocal  int `json:"shards_local,omitempty"`
	// SnapshotStreamed reports that the dataset was fed to the miner by
	// streaming its durable snapshot column by column, without
	// materialising the relation in memory.
	SnapshotStreamed bool    `json:"snapshot_streamed,omitempty"`
	ElapsedMS        float64 `json:"elapsed_ms"`
}

// JobInfo is the wire description of an async discovery job.
type JobInfo struct {
	ID        string            `json:"id"`
	Dataset   string            `json:"dataset"`
	Algorithm string            `json:"algorithm"`
	State     string            `json:"state"`
	Created   time.Time         `json:"created"`
	Finished  *time.Time        `json:"finished,omitempty"`
	Error     string            `json:"error,omitempty"`
	Result    *DiscoverResponse `json:"result,omitempty"`
}

// RegisterResponse is the body of POST /v1/datasets.
type RegisterResponse struct {
	DatasetInfo
	// Existing reports idempotent re-registration of identical content.
	Existing bool `json:"existing,omitempty"`
}

// AppendResponse is the body of POST /v1/datasets/{id}/rows.
type AppendResponse struct {
	ID          string `json:"id"`
	Appended    int    `json:"appended"`
	Rows        int    `json:"rows"`
	Fingerprint string `json:"fingerprint"`
	Invalidated int    `json:"invalidated"`
	Error       string `json:"error,omitempty"`
}

// JobQueueStats is the jobs section of /v1/stats.
type JobQueueStats struct {
	Cap         int   `json:"cap"`
	Running     int   `json:"running"`
	PeakRunning int   `json:"peak_running"`
	Admitted    int64 `json:"admitted"`
	Rejected    int64 `json:"rejected"`
	Retained    int   `json:"retained"`
}

// CacheStats is the cache section of /v1/stats.
type CacheStats struct {
	Entries       int   `json:"entries"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
}

// DiscoveryStats is the discovery section of /v1/stats.
type DiscoveryStats struct {
	Total        int64              `json:"total"`
	Partial      int64              `json:"partial"`
	Failed       int64              `json:"failed"`
	Sync         int64              `json:"sync"`
	Async        int64              `json:"async"`
	// SnapshotStreams counts discoveries fed by streaming a durable
	// snapshot instead of materialising the relation.
	SnapshotStreams int64              `json:"snapshot_streams,omitempty"`
	PhaseTotalMS    map[string]float64 `json:"phase_total_ms"`
}

// PstoreStats is the partition-store section of /v1/stats, aggregated
// over every TANE run the process served.
type PstoreStats struct {
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Evictions  int64 `json:"evictions"`
	Recomputes int64 `json:"recomputes"`
	PeakBytes  int64 `json:"peak_bytes"`
}

// SpillStats is the out-of-core section of /v1/stats: external-merge
// activity of the agree-set phase, aggregated over every discovery the
// process served.
type SpillStats struct {
	RunsSpilled  int64 `json:"runs_spilled"`
	SpilledSets  int64 `json:"spilled_sets"`
	SpilledBytes int64 `json:"spilled_bytes"`
	MergedRuns   int64 `json:"merged_runs"`
	ReadBlocks   int64 `json:"read_blocks"`
}

// DurableStats reports the durability layer: WAL and snapshot activity
// since boot plus what recovery found on disk. Present only when the
// server runs with a data directory.
type DurableStats struct {
	Datasets       int   `json:"datasets"`
	AppendRecords  int64 `json:"append_records"`
	Syncs          int64 `json:"syncs"`
	BatchedRecords int64 `json:"batched_records"`
	Snapshots      int64 `json:"snapshots"`
	CompactErrors  int64 `json:"compact_errors"`
	WALBytes       int64 `json:"wal_bytes"`
	Recovered      int   `json:"recovered"`
	ReplayedRecords int64 `json:"replayed_records"`
	TruncatedTails int64 `json:"truncated_tails"`
	Quarantined    int   `json:"quarantined"`
	Broken         int   `json:"broken"`
	// QuarantinedSets lists the datasets recovery set aside at the last
	// boot, with the structured reason written to their REASON.json.
	QuarantinedSets []QuarantinedDataset `json:"quarantined_sets,omitempty"`
}

// QuarantinedDataset is one dataset recovery refused to serve.
type QuarantinedDataset struct {
	ID     string `json:"id"`
	Reason string `json:"reason"`
	Path   string `json:"path"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeMS    float64        `json:"uptime_ms"`
	Draining    bool           `json:"draining"`
	Datasets    int            `json:"datasets"`
	Jobs        JobQueueStats  `json:"jobs"`
	Cache       CacheStats     `json:"cache"`
	Discoveries DiscoveryStats `json:"discoveries"`
	Pstore      PstoreStats    `json:"pstore"`
	Spill       SpillStats     `json:"spill"`
	Durable     *DurableStats  `json:"durable,omitempty"`
	// Shard is the distributed-discovery section: coordinator fan-out and
	// worker serving counters. Present only on shard-role servers.
	Shard *ShardStats `json:"shard,omitempty"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// DecodeStrict decodes one JSON value from r into v, rejecting unknown
// fields and trailing data. The server applies it to request bodies whose
// fields are behavioural knobs (POST /v1/discover), so a typo like
// "budgetunits" is a 400, not a silently ignored option.
func DecodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// Demand a clean EOF: More() is not enough — it answers false for a
	// stray ']' or '}', which json.Unmarshal would reject.
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}
