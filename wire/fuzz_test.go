package wire

import (
	"bytes"
	"encoding/json"
	"testing"
)

// roundtrip decodes data into a T and, when it decodes at all, asserts
// the encode→decode→encode fixed point: the first marshal must itself
// survive a round trip byte-identically. This is the stability property
// the client and server rely on — a response relayed through either
// side re-encodes to the same bytes.
func roundtrip[T any](t *testing.T, data []byte) {
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		return // not a T; nothing to check
	}
	enc1, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("%T: marshal of decoded value failed: %v\ninput: %s", v, err, data)
	}
	var v2 T
	if err := json.Unmarshal(enc1, &v2); err != nil {
		t.Fatalf("%T: re-decode of own encoding failed: %v\nencoding: %s", v, err, enc1)
	}
	enc2, err := json.Marshal(v2)
	if err != nil {
		t.Fatalf("%T: re-marshal failed: %v", v2, err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatalf("%T: encoding not a fixed point\nfirst:  %s\nsecond: %s\ninput: %s", v, enc1, enc2, data)
	}
}

// FuzzRoundTrip drives every wire type through decode→encode→decode,
// seeded with the payloads the real server emits and accepts (the
// shapes exercised by internal/server's test suite).
func FuzzRoundTrip(f *testing.F) {
	seeds := []string{
		// DiscoverRequest shapes from server_test / concurrency_test.
		`{"dataset":"ds-16cdf3225d07","algorithm":"tane","timeout_ms":5000}`,
		`{"dataset":"ds-16cdf3225d07","algorithm":"incremental"}`,
		`{"dataset":"ds-abc","async":true}`,
		`{"dataset":"ds-abc","algorithm":"depminer2","workers":4,"budget_units":1,"max_couples":100}`,
		`{"dataset":"ds-abc","epsilon":0.1,"max_partition_bytes":1,"armstrong":true}`,
		// DiscoverResponse as the server writes it.
		`{"dataset":"ds-1","fingerprint":"f","algorithm":"depminer","rows":7,"attributes":5,` +
			`"fds":["depnum → depname","depnum → mgr"],"cached":false,"elapsed_ms":1.25}`,
		`{"dataset":"ds-1","fingerprint":"f","algorithm":"tane","rows":400,"attributes":8,"fds":[],` +
			`"cached":false,"partial":true,"error":"guard: unit budget exhausted","lattice_nodes":93,"elapsed_ms":9.5}`,
		`{"dataset":"ds-1","fingerprint":"f","algorithm":"depminer","rows":7,"attributes":5,"fds":["a → b"],` +
			`"cached":true,"armstrong":[["0","1"],["0","2"]],"armstrong_synthetic":true,"budget_used":12,"elapsed_ms":0.1}`,
		// JobInfo lifecycle.
		`{"id":"job-1","dataset":"ds-1","algorithm":"depminer","state":"running","created":"2026-08-08T12:00:00Z"}`,
		`{"id":"job-2","dataset":"ds-1","algorithm":"fastfds","state":"done","created":"2026-08-08T12:00:00Z",` +
			`"finished":"2026-08-08T12:00:01.5Z","result":{"dataset":"ds-1","fingerprint":"f","algorithm":"fastfds",` +
			`"rows":50,"attributes":4,"fds":["a → b"],"cached":false,"elapsed_ms":3}}`,
		`{"id":"job-3","dataset":"ds-1","algorithm":"tane","state":"failed","created":"2026-08-08T12:00:00Z","error":"boom"}`,
		// Register / append bodies.
		`{"id":"ds-16cdf3225d07","name":"employees","fingerprint":"deadbeef","rows":7,"attributes":5,` +
			`"names":["emp","dept","year","depname","mgr"],"version":0,"created":"2026-08-08T11:59:59Z","existing":true}`,
		`{"id":"ds-1","appended":3,"rows":10,"fingerprint":"f2","invalidated":2}`,
		`{"id":"ds-1","appended":1,"rows":8,"fingerprint":"f3","invalidated":0,"error":"guard: deadline exceeded"}`,
		// Stats payload.
		`{"uptime_ms":123.4,"draining":false,"datasets":1,` +
			`"jobs":{"cap":4,"running":1,"peak_running":3,"admitted":10,"rejected":5,"retained":2},` +
			`"cache":{"entries":2,"hits":1,"misses":3,"evictions":0,"invalidations":1},` +
			`"discoveries":{"total":4,"partial":1,"failed":0,"sync":3,"async":1,"phase_total_ms":{"agree_sets":1.5,"lhs":0.25}},` +
			`"pstore":{"hits":0,"misses":9,"evictions":4,"recomputes":2,"peak_bytes":1024}}`,
		// Error body.
		`{"error":"job queue full: 4 discoveries running (cap 4)"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		roundtrip[DiscoverRequest](t, data)
		roundtrip[DiscoverResponse](t, data)
		roundtrip[JobInfo](t, data)
		roundtrip[DatasetInfo](t, data)
		roundtrip[RegisterResponse](t, data)
		roundtrip[AppendResponse](t, data)
		roundtrip[StatsResponse](t, data)
		roundtrip[ErrorResponse](t, data)
	})
}

// FuzzDecodeStrict asserts DecodeStrict never accepts what a plain
// decode rejects, and never panics on arbitrary bytes.
func FuzzDecodeStrict(f *testing.F) {
	f.Add([]byte(`{"dataset":"ds-1","algorithm":"tane"}`))
	f.Add([]byte(`{"dataset":"ds-1","budgetunits":5}`))
	f.Add([]byte(`{"dataset":"d"} trailing`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var strict DiscoverRequest
		strictErr := DecodeStrict(bytes.NewReader(data), &strict)
		var loose DiscoverRequest
		looseErr := json.Unmarshal(data, &loose)
		if looseErr != nil && strictErr == nil {
			t.Fatalf("DecodeStrict accepted what Unmarshal rejected: %q (unmarshal err: %v)", data, looseErr)
		}
	})
}
