package wire

// Shard protocol types: the coordinator/worker split of the agree-set
// phase (DESIGN.md §15).
//
// A shard request names the dataset by its content fingerprint — not a
// registry id — so the worker provably computes over the same bytes the
// coordinator planned against; a worker that has never seen the
// fingerprint answers 404 and the coordinator pushes the dataset through
// the ordinary registration API (fingerprints are content-derived, so
// both sides converge on the same id). The response body is not JSON: it
// is a DMRUN1 run stream (Content-Type RunContentType) — the same
// CRC32C-framed format as spill files — carrying the shard's sorted
// deduplicated agree sets, with the true record count attested in an
// HTTP trailer the coordinator verifies after EOF.

// RunContentType is the media type of a DMRUN1 agree-set run stream.
const RunContentType = "application/x-depminer-run"

// ShardSetsTrailer is the HTTP trailer carrying the worker's
// end-of-stream record count. A stream that ends cleanly (valid terminal
// chunk) but disagrees with this count is discarded: framing CRCs catch
// torn or corrupted blocks, the trailer catches a stream truncated at a
// block boundary by a worker that died politely.
const ShardSetsTrailer = "X-Depminer-Shard-Sets"

// ShardRequest is the body of POST /v1/shard/agree: compute the agree
// sets of couples [CoupleStart, CoupleEnd) of the named dataset's couple
// list and stream them back as a DMRUN1 run.
type ShardRequest struct {
	// Fingerprint is the content fingerprint of the dataset to compute
	// over (required). 404 if this worker has no dataset with it.
	Fingerprint string `json:"fingerprint"`
	// Algorithm selects the sweep: "depminer" (Algorithm 2, the default)
	// or "depminer2" (Algorithm 3). The coordinator decides degradation
	// globally, so every shard of one discovery carries the same value.
	Algorithm string `json:"algorithm,omitempty"`
	// CoupleStart and CoupleEnd bound the shard's half-open couple index
	// range into the globally sorted deduplicated couple list.
	CoupleStart int `json:"couple_start"`
	CoupleEnd   int `json:"couple_end"`
	// TotalCouples is the coordinator's couple count for the whole
	// dataset. The worker recomputes the list and answers 409 on
	// disagreement — a structural proof the two sides planned against
	// different bytes.
	TotalCouples int `json:"total_couples"`
	// Workers is the worker-pool width for the sweep (0 = worker default).
	Workers int `json:"workers,omitempty"`
	// TimeoutMS and BudgetUnits govern the shard computation on the
	// worker, clamped to the worker's own caps.
	TimeoutMS   int64 `json:"timeout_ms,omitempty"`
	BudgetUnits int64 `json:"budget_units,omitempty"`
	// MaxAgreeBytes caps the worker's resident agree-set accumulation for
	// this shard (0 = worker default), spilling past it as usual.
	MaxAgreeBytes int64 `json:"max_agree_bytes,omitempty"`
}

// ShardStats is the distributed-discovery section of /v1/stats.
// Coordinator counters cover fan-out (dispatched = remote + local
// fallbacks), worker counters cover shard serving.
type ShardStats struct {
	// Coordinator side.
	Dispatched     int64 `json:"dispatched"`
	Remote         int64 `json:"remote"`
	LocalFallbacks int64 `json:"local_fallbacks"`
	DatasetsPushed int64 `json:"datasets_pushed"`
	ReceivedSets   int64 `json:"received_sets"`
	ReceivedBytes  int64 `json:"received_bytes"`
	// Per-phase wall-clock totals across all shards (concurrent shards
	// overlap, so totals can exceed elapsed time).
	DispatchTotalMS float64 `json:"dispatch_total_ms"`
	StreamTotalMS   float64 `json:"stream_total_ms"`
	MergeTotalMS    float64 `json:"merge_total_ms"`
	// Worker side.
	Served       int64 `json:"served"`
	ServedSets   int64 `json:"served_sets"`
	ServedErrors int64 `json:"served_errors"`
}
