// An external test package: internal/server imports repro/client for
// shard dispatch, so a live-server differential test of the client must
// sit outside the package to avoid an import cycle.
package client_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/client"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/wire"
)

// liveServer boots a real internal/server behind httptest and returns a
// client for it plus the listener (for raw-HTTP assertions).
func liveServer(t *testing.T, cfg server.Config, opts ...client.Option) (*client.Client, *httptest.Server) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return client.New(ts.URL, opts...), ts
}

// fromScratchCover runs the reference pipeline directly and renders the
// cover exactly as the server does (fd.FD.Names on the schema).
func fromScratchCover(t *testing.T, r *relation.Relation) []string {
	t.Helper()
	res, err := core.Discover(context.Background(), r, core.Options{Armstrong: core.ArmstrongNone})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(res.FDs))
	for i, f := range res.FDs {
		out[i] = f.Names(r.Names())
	}
	return out
}

func sameCover(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: cover has %d FDs, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: cover[%d] = %q, want %q", label, i, got[i], want[i])
		}
	}
}

// TestClientDifferentialCover is the satellite's differential assertion:
// a cover obtained through the SDK (register → append × k → discover)
// must be byte-identical to a from-scratch core.Discover over the same
// rows — across the sync path, the forced-async job path, and the
// incremental re-derivation.
func TestClientDifferentialCover(t *testing.T) {
	c, _ := liveServer(t, server.Config{})
	ctx := context.Background()

	base := relation.PaperExample()
	var csvBuf bytes.Buffer
	if err := base.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	reg, err := c.Register(ctx, "employees", csvBuf.Bytes())
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if reg.Rows != base.Rows() || reg.Attributes != base.Arity() {
		t.Fatalf("registered shape %dx%d, want %dx%d", reg.Rows, reg.Attributes, base.Rows(), base.Arity())
	}

	// Append k batches through the SDK.
	batches := [][][]string{
		{{"40", "Lille", "2", "1994", "30"}},
		{{"41", "Lyon", "9", "1995", "31"}, {"42", "Paris", "2", "1994", "30"}},
		{{"43", "Lens", "9", "1995", "31"}},
	}
	rows := 0
	var lastFP string
	for i, batch := range batches {
		app, err := c.Append(ctx, reg.ID, batch)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		rows += len(batch)
		if app.Appended != len(batch) || app.Rows != base.Rows()+rows {
			t.Fatalf("append %d = %+v", i, app)
		}
		lastFP = app.Fingerprint
	}

	// The reference: from-scratch core.Discover over the grown rows.
	grownRows := make([][]string, 0, base.Rows()+rows)
	for i := 0; i < base.Rows(); i++ {
		grownRows = append(grownRows, base.Row(i))
	}
	for _, batch := range batches {
		grownRows = append(grownRows, batch...)
	}
	grown, err := relation.FromRows(base.Names(), grownRows)
	if err != nil {
		t.Fatal(err)
	}
	want := fromScratchCover(t, grown)

	// Sync path.
	syncResp, err := c.Discover(ctx, wire.DiscoverRequest{Dataset: reg.ID})
	if err != nil {
		t.Fatalf("sync discover: %v", err)
	}
	if syncResp.Cached {
		t.Fatal("first sync discovery reported cached")
	}
	if syncResp.Fingerprint != lastFP {
		t.Fatalf("sync fingerprint = %s, want %s", syncResp.Fingerprint, lastFP)
	}
	sameCover(t, "sync", syncResp.FDs, want)

	// Forced-async job path (fastfds keys a distinct cache entry, so the
	// pipeline genuinely runs).
	job, err := c.DiscoverAsync(ctx, wire.DiscoverRequest{Dataset: reg.ID, Algorithm: "fastfds"})
	if err != nil {
		t.Fatalf("async submit: %v", err)
	}
	if job.State == wire.JobRunning && job.ID == "" {
		t.Fatalf("job = %+v", job)
	}
	asyncResp := job.Result
	if job.State == wire.JobRunning {
		asyncResp, err = c.WaitJob(ctx, job.ID)
		if err != nil {
			t.Fatalf("wait job: %v", err)
		}
	}
	sameCover(t, "async", asyncResp.FDs, want)

	// Incremental re-derivation from the maintained agree sets.
	incResp, err := c.Discover(ctx, wire.DiscoverRequest{Dataset: reg.ID, Algorithm: "incremental"})
	if err != nil {
		t.Fatalf("incremental discover: %v", err)
	}
	if incResp.Fingerprint != lastFP {
		t.Fatalf("incremental fingerprint = %s, want %s", incResp.Fingerprint, lastFP)
	}
	sameCover(t, "incremental", incResp.FDs, want)

	// Repeat sync discovery: cached, still identical.
	again, err := c.Discover(ctx, wire.DiscoverRequest{Dataset: reg.ID})
	if err != nil {
		t.Fatalf("cached discover: %v", err)
	}
	if !again.Cached {
		t.Fatal("repeat discovery not served from the cache")
	}
	sameCover(t, "cached", again.FDs, want)
}

// TestClientFollowsAsyncTransparently: with a sync row limit of 1 the
// server answers 202 to a plain Discover; the client must poll the job
// to completion behind the single blocking call.
func TestClientFollowsAsyncTransparently(t *testing.T) {
	c, _ := liveServer(t, server.Config{SyncRowLimit: 1}, client.WithPollInterval(5*time.Millisecond))
	ctx := context.Background()

	base := relation.PaperExample()
	var csvBuf bytes.Buffer
	if err := base.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	reg, err := c.Register(ctx, "", csvBuf.Bytes())
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	resp, err := c.Discover(ctx, wire.DiscoverRequest{Dataset: reg.ID})
	if err != nil {
		t.Fatalf("discover (async path): %v", err)
	}
	sameCover(t, "transparent async", resp.FDs, fromScratchCover(t, base))
}

// TestDiscoverRejectsUnknownFields: the server strict-decodes discover
// requests, so a misspelled knob is a 400 over the same wire the SDK
// uses (the SDK itself cannot emit one — its requests are typed).
func TestDiscoverRejectsUnknownFields(t *testing.T) {
	_, ts := liveServer(t, server.Config{})
	resp, err := http.Post(ts.URL+"/v1/discover", "application/json",
		strings.NewReader(`{"dataset":"ds-x","budgetunits":5}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", resp.StatusCode)
	}
}
