package client

import (
	"context"
	"fmt"
	"net/http"

	"repro/wire"
)

// requestIDKey keys the outbound request id in a context.
type requestIDKey struct{}

// WithRequestID returns ctx carrying id: every request the client makes
// under the returned context sends it as the X-Depminer-Request-Id
// header. The server's middleware adopts a usable incoming id instead of
// minting one, so a coordinator that forwards its own id here gets
// worker log lines that join its own — one grep reconstructs a
// discovery's timeline across the fleet. An empty id leaves ctx
// unchanged.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// requestIDFrom extracts the outbound request id, "" when unset.
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// setRequestID stamps the propagation header from ctx onto req.
func setRequestID(req *http.Request) {
	if id := requestIDFrom(req.Context()); id != "" {
		req.Header.Set(wire.RequestIDHeader, id)
	}
}

// Version fetches the server's build identity from GET /v1/version.
func (c *Client) Version(ctx context.Context) (*wire.VersionResponse, error) {
	var v wire.VersionResponse
	if err := c.get(ctx, "/v1/version", &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// MetricsText fetches the raw Prometheus text exposition from
// GET /metrics — for harnesses and smoke tests that assert on counters;
// monitoring systems scrape the endpoint directly.
func (c *Client) MetricsText(ctx context.Context) ([]byte, error) {
	status, raw, err := c.do(ctx, http.MethodGet, "/metrics", "", nil, true)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("depminerd: unexpected metrics status %d", status)
	}
	return raw, nil
}
