package client

import (
	"testing"
	"time"
)

// TestParseRetryAfter is the satellite's table-driven parser check: the
// client must tolerate both RFC 9110 forms — delta-seconds and
// HTTP-date (all three date formats servers are allowed to emit) — and
// reject malformed values instead of mis-sleeping on them.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		in   string
		want time.Duration
		ok   bool
	}{
		{"delta one", "1", time.Second, true},
		{"delta zero", "0", 0, true},
		{"delta large", "120", 120 * time.Second, true},
		{"delta padded", "  5 ", 5 * time.Second, true},
		{"delta negative", "-1", 0, false},
		{"delta fraction", "1.5", 0, false},
		{"delta overflow-ish", "999999999", 999999999 * time.Second, true},
		{"empty", "", 0, false},
		{"garbage", "soon", 0, false},
		{"http-date rfc1123 future", "Sat, 08 Aug 2026 12:00:30 GMT", 30 * time.Second, true},
		{"http-date rfc1123 past", "Sat, 08 Aug 2026 11:59:00 GMT", 0, true},
		{"http-date rfc850", "Saturday, 08-Aug-26 12:01:00 GMT", time.Minute, true},
		{"http-date asctime", "Sat Aug  8 12:02:00 2026", 2 * time.Minute, true},
		{"http-date malformed", "Sat, 99 Aug 2026 12:00:00 GMT", 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := parseRetryAfter(tc.in, now)
			if ok != tc.ok {
				t.Fatalf("parseRetryAfter(%q) ok = %v, want %v", tc.in, ok, tc.ok)
			}
			if ok && got != tc.want {
				t.Fatalf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

// TestBackoffSchedule pins the deterministic (jitter-free) exponential
// schedule and the Retry-After floor.
func TestBackoffSchedule(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Jitter: -1}.withDefaults()
	wants := []time.Duration{10, 20, 40, 80, 80, 80} // ms; capped at MaxDelay
	for i, w := range wants {
		if got := p.backoff(i+1, 0); got != w*time.Millisecond {
			t.Errorf("backoff(attempt %d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	// The server's Retry-After hint floors the delay: honouring it means
	// never retrying earlier.
	if got := p.backoff(1, time.Second); got != time.Second {
		t.Errorf("backoff with 1s Retry-After = %v, want 1s", got)
	}
	// ... but a larger computed backoff is kept.
	if got := p.backoff(4, 50*time.Millisecond); got != 80*time.Millisecond {
		t.Errorf("backoff(4) with small Retry-After = %v, want 80ms", got)
	}
}

// TestBackoffJitterBounds checks the symmetric jitter never leaves the
// documented ±Jitter band and never undercuts Retry-After.
func TestBackoffJitterBounds(t *testing.T) {
	for _, u := range []float64{0, 0.25, 0.5, 0.999} {
		p := RetryPolicy{BaseDelay: 100 * time.Millisecond, Jitter: 0.25}.withDefaults()
		p.rng = func() float64 { return u }
		d := p.backoff(1, 0)
		lo := time.Duration(float64(100*time.Millisecond) * 0.75)
		hi := time.Duration(float64(100*time.Millisecond) * 1.25)
		if d < lo || d > hi {
			t.Errorf("jittered backoff (u=%v) = %v, outside [%v, %v]", u, d, lo, hi)
		}
		if got := p.backoff(1, time.Second); got < time.Second {
			t.Errorf("jittered backoff (u=%v) undercut Retry-After: %v", u, got)
		}
	}
}

// TestBackoffLargeAttemptNoOverflow guards the shift against attempt
// counts big enough to overflow a Duration.
func TestBackoffLargeAttemptNoOverflow(t *testing.T) {
	p := RetryPolicy{BaseDelay: time.Second, MaxDelay: 4 * time.Second, Jitter: -1}.withDefaults()
	for _, attempt := range []int{40, 63, 64, 100} {
		if got := p.backoff(attempt, 0); got != 4*time.Second {
			t.Errorf("backoff(%d) = %v, want MaxDelay", attempt, got)
		}
	}
}

func TestRetryPolicyDefaults(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	if p.MaxAttempts != 6 || p.BaseDelay != 50*time.Millisecond || p.MaxDelay != 2*time.Second || p.Jitter != 0.25 {
		t.Fatalf("defaults = %+v", p)
	}
	one := RetryPolicy{MaxAttempts: 1}.withDefaults()
	if one.MaxAttempts != 1 {
		t.Fatalf("MaxAttempts=1 must disable retries, got %d", one.MaxAttempts)
	}
}
