package client

import (
	"context"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// RetryPolicy bounds the client's retry loop: exponential backoff with
// jitter, never sleeping less than the server's Retry-After hint. The
// zero value means "use the defaults" (6 attempts, 50ms base, 2s cap,
// ±25% jitter); MaxAttempts=1 disables retries entirely.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per request, including
	// the first. 0 means the default (6); 1 disables retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// attempt. Default 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth. Default 2s.
	MaxDelay time.Duration
	// Jitter is the symmetric randomisation fraction applied to the
	// backoff delay: the sleep is delay·(1 ± Jitter·u), u uniform in
	// [0,1). 0 means the default (0.25); negative disables jitter.
	Jitter float64

	// rng overrides the jitter source; tests use it for determinism.
	rng func() float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 6
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Jitter == 0 {
		p.Jitter = 0.25
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.rng == nil {
		p.rng = defaultRand
	}
	return p
}

var (
	randMu  sync.Mutex
	randSrc = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func defaultRand() float64 {
	randMu.Lock()
	defer randMu.Unlock()
	return randSrc.Float64()
}

// backoff computes the sleep before retry number `attempt` (1-based: the
// delay after the attempt'th try failed). The exponential, jittered
// delay is floored by the server's Retry-After hint — honouring the
// hint means never retrying before it elapses.
func (p RetryPolicy) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := p.BaseDelay << (attempt - 1)
	if d > p.MaxDelay || d <= 0 { // <=0 guards shift overflow
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		f := 1 + p.Jitter*(2*p.rng()-1)
		d = time.Duration(float64(d) * f)
	}
	if d < retryAfter {
		d = retryAfter
	}
	return d
}

// retryableStatus reports whether a status is worth retrying: admission
// rejection (429), drain/overload (503), and transient gateway errors.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests,
		http.StatusServiceUnavailable,
		http.StatusBadGateway,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// parseRetryAfter parses an RFC 9110 Retry-After value: either a
// non-negative integer of delta-seconds or an HTTP-date (any of the
// three date formats http.ParseTime accepts). Dates in the past yield a
// zero duration with ok=true; malformed values (fractions, negatives,
// garbage) yield ok=false.
func parseRetryAfter(v string, now time.Time) (time.Duration, bool) {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.ParseInt(v, 10, 64); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	t, err := http.ParseTime(v)
	if err != nil {
		return 0, false
	}
	d := t.Sub(now)
	if d < 0 {
		d = 0
	}
	return d, true
}

// sleep waits for d or until ctx is cancelled, returning ctx's error in
// the latter case.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
