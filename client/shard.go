package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/wire"
)

// RunStream is a worker's answer to an agree-set shard dispatch: the
// DMRUN1 run stream, unconsumed. The caller streams Body to EOF (e.g.
// through extsort.AdoptRun), then reads the end-of-stream attestation
// with TrailerSets, then Closes. A stream abandoned mid-body must still
// be Closed.
type RunStream struct {
	// Body is the raw run stream (magic + CRC-framed blocks).
	Body io.ReadCloser
	resp *http.Response
}

// Close releases the underlying connection.
func (rs *RunStream) Close() error { return rs.Body.Close() }

// TrailerSets returns the worker's end-of-stream record count. Valid
// only after Body has been read to EOF; ok is false when the trailer is
// absent (a proxy stripped it) or malformed.
func (rs *RunStream) TrailerSets() (int64, bool) {
	v := rs.resp.Trailer.Get(wire.ShardSetsTrailer)
	if v == "" {
		return 0, false
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// AgreeShard dispatches one agree-set shard computation to a worker and
// returns its run stream. A shard computation has no side effects, so
// the call retries under the client's policy exactly like Discover; what
// cannot be retried here is a stream that breaks after the 2xx — the
// caller owns that failure (the coordinator's answer is the local
// fallback). A worker that does not know the fingerprint answers 404
// (*APIError matching ErrNotFound): push the dataset with Register and
// dispatch again.
func (c *Client) AgreeShard(ctx context.Context, req wire.ShardRequest) (*RunStream, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	const path = "/v1/shard/agree"
	p := c.retry
	for try := 1; ; try++ {
		httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		httpReq.Header.Set("Content-Type", "application/json")
		setRequestID(httpReq)
		var (
			status     int
			attemptErr error
			retryAfter time.Duration
		)
		resp, err := c.httpc.Do(httpReq)
		if err != nil {
			attemptErr = err
		} else {
			status = resp.StatusCode
			if status < 400 {
				if ct := resp.Header.Get("Content-Type"); ct != wire.RunContentType {
					resp.Body.Close()
					return nil, fmt.Errorf("depminerd: shard response content-type %q, want %q", ct, wire.RunContentType)
				}
				c.observe(Attempt{Method: http.MethodPost, Path: path, Try: try, Status: status})
				return &RunStream{Body: resp.Body, resp: resp}, nil
			}
			raw, _ := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
			apiErr := &APIError{StatusCode: status}
			var eb wire.ErrorResponse
			if json.Unmarshal(raw, &eb) == nil {
				apiErr.Message = eb.Error
			}
			if ra, ok := parseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); ok {
				apiErr.RetryAfter = ra
				retryAfter = ra
			}
			resp.Body.Close()
			attemptErr = apiErr
		}
		canRetry := try < p.MaxAttempts && ctx.Err() == nil
		if canRetry {
			if apiErr, ok := attemptErr.(*APIError); ok {
				canRetry = retryableStatus(apiErr.StatusCode)
			}
		}
		if !canRetry {
			c.observe(Attempt{Method: http.MethodPost, Path: path, Try: try, Status: status, Err: attemptErr})
			return nil, attemptErr
		}
		wait := p.backoff(try, retryAfter)
		c.observe(Attempt{Method: http.MethodPost, Path: path, Try: try, Status: status, Err: attemptErr, Backoff: wait})
		if serr := sleep(ctx, wait); serr != nil {
			return nil, fmt.Errorf("%w (while backing off from: %v)", serr, attemptErr)
		}
	}
}
