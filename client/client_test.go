package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/wire"
)

// stubServer boots an httptest server around h and returns a client
// pointed at it with fast, deterministic retries unless overridden.
func stubServer(t *testing.T, h http.HandlerFunc, opts ...Option) (*Client, *httptest.Server) {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	base := []Option{WithRetryPolicy(RetryPolicy{MaxAttempts: 1})}
	return New(ts.URL, append(base, opts...)...), ts
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// TestTypedErrors maps each depminerd failure status onto its sentinel.
func TestTypedErrors(t *testing.T) {
	cases := []struct {
		name     string
		code     int
		header   http.Header
		sentinel error
	}{
		{"429 → ErrTooManyRequests", http.StatusTooManyRequests,
			http.Header{"Retry-After": {"2"}}, ErrTooManyRequests},
		{"507 → ErrRegistryFull", http.StatusInsufficientStorage, nil, ErrRegistryFull},
		{"404 → ErrNotFound", http.StatusNotFound, nil, ErrNotFound},
		{"503 → ErrUnavailable", http.StatusServiceUnavailable, nil, ErrUnavailable},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, _ := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
				for k, vs := range tc.header {
					w.Header()[k] = vs
				}
				writeJSON(w, tc.code, wire.ErrorResponse{Error: "nope"})
			})
			_, err := c.Discover(context.Background(), wire.DiscoverRequest{Dataset: "ds-x"})
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("err = %v, want errors.Is %v", err, tc.sentinel)
			}
			var apiErr *APIError
			if !errors.As(err, &apiErr) || apiErr.StatusCode != tc.code || apiErr.Message != "nope" {
				t.Fatalf("APIError = %+v", apiErr)
			}
			if tc.code == http.StatusTooManyRequests && apiErr.RetryAfter != 2*time.Second {
				t.Fatalf("RetryAfter = %v, want 2s", apiErr.RetryAfter)
			}
		})
	}
}

// TestRetryHonorsRetryAfter rejects the first attempt with a 1-second
// Retry-After: the client must recover on a later attempt and must not
// have retried before the hint elapsed.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var firstAt, secondAt time.Time
	c, _ := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			firstAt = time.Now()
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, wire.ErrorResponse{Error: "full"})
		default:
			secondAt = time.Now()
			writeJSON(w, http.StatusOK, wire.DiscoverResponse{Dataset: "ds-x", FDs: []string{"a → b"}})
		}
	}, WithRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Jitter: -1}))

	resp, err := c.Discover(context.Background(), wire.DiscoverRequest{Dataset: "ds-x"})
	if err != nil {
		t.Fatalf("discover after 429: %v", err)
	}
	if len(resp.FDs) != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	if calls.Load() != 2 {
		t.Fatalf("attempts = %d, want 2", calls.Load())
	}
	if waited := secondAt.Sub(firstAt); waited < time.Second {
		t.Fatalf("retried after %v, before the 1s Retry-After elapsed", waited)
	}
}

// TestRetriesExhaust: a permanently saturated server exhausts
// MaxAttempts, every attempt is observed, and the final error is the
// typed 429.
func TestRetriesExhaust(t *testing.T) {
	var calls atomic.Int64
	var observed atomic.Int64
	c, _ := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		writeJSON(w, http.StatusTooManyRequests, wire.ErrorResponse{Error: "full"})
	},
		WithRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Jitter: -1}),
		WithAttemptObserver(func(a Attempt) { observed.Add(1) }),
	)
	_, err := c.Discover(context.Background(), wire.DiscoverRequest{Dataset: "ds-x"})
	if !errors.Is(err, ErrTooManyRequests) {
		t.Fatalf("err = %v, want ErrTooManyRequests", err)
	}
	if calls.Load() != 3 || observed.Load() != 3 {
		t.Fatalf("calls = %d observed = %d, want 3 each", calls.Load(), observed.Load())
	}
}

// TestDrain503RetriedWithBackoff: the shape depminerd serves while
// draining — 503, Retry-After, a JSON body naming the condition — is
// retryable for idempotent calls. A client that waits out the hint lands
// on the restarted (or another) replica and succeeds.
func TestDrain503RetriedWithBackoff(t *testing.T) {
	var calls atomic.Int64
	var firstAt, secondAt time.Time
	c, _ := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			firstAt = time.Now()
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, wire.ErrorResponse{Error: "server is draining"})
		default:
			secondAt = time.Now()
			writeJSON(w, http.StatusOK, wire.DiscoverResponse{Dataset: "ds-x", FDs: []string{"a → b"}})
		}
	}, WithRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Jitter: -1}))

	resp, err := c.Discover(context.Background(), wire.DiscoverRequest{Dataset: "ds-x"})
	if err != nil {
		t.Fatalf("discover across drain: %v", err)
	}
	if len(resp.FDs) != 1 || calls.Load() != 2 {
		t.Fatalf("resp=%+v calls=%d", resp, calls.Load())
	}
	if waited := secondAt.Sub(firstAt); waited < time.Second {
		t.Fatalf("retried after %v, before the drain's 1s Retry-After elapsed", waited)
	}
	// The drain condition stays visible on the typed error path too: a
	// never-recovering drain surfaces ErrUnavailable with the body's text.
	var calls2 atomic.Int64
	c2, _ := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
		calls2.Add(1)
		w.Header().Set("Retry-After", "0")
		writeJSON(w, http.StatusServiceUnavailable, wire.ErrorResponse{Error: "server is draining"})
	}, WithRetryPolicy(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, Jitter: -1}))
	_, err = c2.Discover(context.Background(), wire.DiscoverRequest{Dataset: "ds-x"})
	var apiErr *APIError
	if !errors.Is(err, ErrUnavailable) || !errors.As(err, &apiErr) || apiErr.Message != "server is draining" {
		t.Fatalf("exhausted drain err = %v", err)
	}
	if calls2.Load() != 2 {
		t.Fatalf("drain-503 not retried: %d attempts", calls2.Load())
	}
}

// TestNonRetryableStatusFailsFast: a 400 must not burn retry attempts.
func TestNonRetryableStatusFailsFast(t *testing.T) {
	var calls atomic.Int64
	c, _ := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeJSON(w, http.StatusBadRequest, wire.ErrorResponse{Error: "bad knob"})
	}, WithRetryPolicy(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}))
	_, err := c.Discover(context.Background(), wire.DiscoverRequest{Dataset: "ds-x"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("400 retried: %d attempts", calls.Load())
	}
}

// TestPartialContract: a 200 with partial=true returns the usable
// response together with the typed *PartialError.
func TestPartialContract(t *testing.T) {
	c, _ := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, wire.DiscoverResponse{
			Dataset: "ds-x", FDs: []string{"a → b"}, Partial: true, Error: "budget exhausted",
		})
	})
	resp, err := c.Discover(context.Background(), wire.DiscoverRequest{Dataset: "ds-x"})
	if !errors.Is(err, ErrPartial) {
		t.Fatalf("err = %v, want ErrPartial", err)
	}
	var pe *PartialError
	if !errors.As(err, &pe) || pe.Response != resp {
		t.Fatalf("PartialError = %+v, resp = %+v", pe, resp)
	}
	if resp == nil || !resp.Partial || len(resp.FDs) != 1 {
		t.Fatalf("partial response not returned: %+v", resp)
	}
}

// TestWaitJobContextCancel: polling a never-finishing job must unwind
// promptly when the context is cancelled.
func TestWaitJobContextCancel(t *testing.T) {
	c, _ := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, wire.JobInfo{ID: "job-1", State: wire.JobRunning})
	}, WithPollInterval(5*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.WaitJob(ctx, "job-1")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("WaitJob took %v to honour cancellation", elapsed)
	}
}

// TestJobFailedTyped: a failed job surfaces as *JobError / ErrJobFailed.
func TestJobFailedTyped(t *testing.T) {
	c, _ := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, wire.JobInfo{ID: "job-9", State: wire.JobFailed, Error: "boom"})
	})
	_, err := c.WaitJob(context.Background(), "job-9")
	if !errors.Is(err, ErrJobFailed) {
		t.Fatalf("err = %v, want ErrJobFailed", err)
	}
	var je *JobError
	if !errors.As(err, &je) || je.Job.Error != "boom" {
		t.Fatalf("JobError = %+v", je)
	}
}

// TestAppendNotRetried: appends are not idempotent, so even a
// retryable-looking 503 must not be resubmitted.
func TestAppendNotRetried(t *testing.T) {
	var calls atomic.Int64
	c, _ := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, wire.ErrorResponse{Error: "draining"})
	}, WithRetryPolicy(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}))
	_, err := c.Append(context.Background(), "ds-x", [][]string{{"1", "2"}})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("append retried: %d attempts", calls.Load())
	}
}

// TestAppendSurfacesPartialCommit: a mid-append deadline answers non-2xx
// but with an AppendResponse body; the client must return both the
// typed error and the committed count.
func TestAppendSurfacesPartialCommit(t *testing.T) {
	c, _ := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusServiceUnavailable, wire.AppendResponse{
			ID: "ds-x", Appended: 2, Rows: 9, Fingerprint: "f2", Error: "deadline",
		})
	})
	resp, err := c.Append(context.Background(), "ds-x", [][]string{{"1"}, {"2"}, {"3"}})
	if err == nil {
		t.Fatal("partial commit reported no error")
	}
	if resp == nil || resp.Appended != 2 || resp.Fingerprint != "f2" {
		t.Fatalf("partial-commit response = %+v", resp)
	}
}

// TestHealthDraining: Health maps a draining server onto ErrUnavailable.
func TestHealthDraining(t *testing.T) {
	c, _ := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	})
	if err := c.Health(context.Background()); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
}
