// Package client is the public Go SDK for depminerd, the FD-discovery
// server in this repository. It speaks the repro/wire JSON types — the
// same structs the server encodes — and layers the transport policy a
// well-behaved caller needs:
//
//   - retries with exponential backoff + jitter that honour the
//     server's Retry-After hint (admission rejections are transient by
//     design: a 429 means "try again shortly", and the client does);
//   - async-job polling with context cancellation, so Discover presents
//     one blocking call regardless of whether the server chose the sync
//     or the 202-and-poll path;
//   - typed errors for the outcomes callers must branch on: 429
//     (ErrTooManyRequests), 507 (ErrRegistryFull), governed partial
//     results (ErrPartial, response still returned), failed jobs.
//
// Appends are the one non-idempotent operation and are never retried;
// registration is idempotent by content fingerprint and discovery is a
// pure computation behind a cache, so both retry safely.
package client

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/wire"
)

// maxResponseBytes caps how much of a response body the client reads —
// a defensive bound well above any real depminerd payload.
const maxResponseBytes = 64 << 20

// Client is a depminerd API client. Create with New; it is safe for
// concurrent use by multiple goroutines.
type Client struct {
	baseURL  string
	httpc    *http.Client
	retry    RetryPolicy
	poll     time.Duration
	observer func(Attempt)
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transport tuning, test doubles). Default: a dedicated client with no
// overall timeout — per-call bounds come from the caller's context.
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.httpc = h } }

// WithRetryPolicy replaces the retry policy. The zero RetryPolicy means
// the defaults; RetryPolicy{MaxAttempts: 1} disables retries.
func WithRetryPolicy(p RetryPolicy) Option { return func(c *Client) { c.retry = p.withDefaults() } }

// WithPollInterval sets the async-job poll interval (default 100ms).
func WithPollInterval(d time.Duration) Option { return func(c *Client) { c.poll = d } }

// Attempt describes one HTTP try, reported to the observer installed
// with WithAttemptObserver — the hook load generators use to count
// rejections and retry waits without patching the client.
type Attempt struct {
	Method string
	Path   string
	// Try is 1-based: the first attempt is 1.
	Try int
	// Status is the HTTP status, 0 on transport error.
	Status int
	// Err is the attempt's failure (nil on success): *APIError for
	// non-2xx statuses, the transport error otherwise.
	Err error
	// Backoff is the sleep chosen before the next try; 0 when this
	// attempt is final (success or retries exhausted).
	Backoff time.Duration
}

// WithAttemptObserver installs fn, called once per HTTP attempt
// (including the final one). fn must be safe for concurrent use.
func WithAttemptObserver(fn func(Attempt)) Option { return func(c *Client) { c.observer = fn } }

// New creates a client for the depminerd instance at baseURL
// (e.g. "http://127.0.0.1:8080"; a trailing slash is tolerated).
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		baseURL: strings.TrimRight(baseURL, "/"),
		httpc:   &http.Client{},
		retry:   RetryPolicy{}.withDefaults(),
		poll:    100 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

func (c *Client) observe(a Attempt) {
	if c.observer != nil {
		c.observer(a)
	}
}

// do runs one request with the retry loop. It returns the final status
// and raw body; err is nil only for 2xx answers. The body (when one was
// read) is returned even alongside an error, so callers like Append can
// surface partial-commit details from non-2xx responses.
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte, retryable bool) (int, []byte, error) {
	p := c.retry
	for try := 1; ; try++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, rd)
		if err != nil {
			return 0, nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		setRequestID(req)
		var (
			status     int
			raw        []byte
			attemptErr error
			retryAfter time.Duration
		)
		resp, err := c.httpc.Do(req)
		if err != nil {
			attemptErr = err
		} else {
			status = resp.StatusCode
			raw, err = io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
			resp.Body.Close()
			if err != nil {
				attemptErr = fmt.Errorf("reading response body: %w", err)
			} else if status >= 400 {
				apiErr := &APIError{StatusCode: status}
				var eb wire.ErrorResponse
				if json.Unmarshal(raw, &eb) == nil {
					apiErr.Message = eb.Error
				}
				if ra, ok := parseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); ok {
					apiErr.RetryAfter = ra
					retryAfter = ra
				}
				attemptErr = apiErr
			}
		}
		if attemptErr == nil {
			c.observe(Attempt{Method: method, Path: path, Try: try, Status: status})
			return status, raw, nil
		}
		canRetry := retryable && try < p.MaxAttempts && ctx.Err() == nil
		if canRetry {
			if apiErr, ok := attemptErr.(*APIError); ok {
				canRetry = retryableStatus(apiErr.StatusCode)
			}
		}
		if !canRetry {
			c.observe(Attempt{Method: method, Path: path, Try: try, Status: status, Err: attemptErr})
			return status, raw, attemptErr
		}
		wait := p.backoff(try, retryAfter)
		c.observe(Attempt{Method: method, Path: path, Try: try, Status: status, Err: attemptErr, Backoff: wait})
		if serr := sleep(ctx, wait); serr != nil {
			return status, raw, fmt.Errorf("%w (while backing off from: %v)", serr, attemptErr)
		}
	}
}

// get runs a retryable GET and decodes the 2xx body into out.
func (c *Client) get(ctx context.Context, path string, out any) error {
	_, raw, err := c.do(ctx, http.MethodGet, path, "", nil, true)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, out)
}

// Register uploads a CSV relation (first record = attribute names) and
// returns the registered dataset. Registration is idempotent by content
// fingerprint — re-registering identical bytes returns the existing
// dataset with Existing=true — which is what makes it safe to retry.
// name optionally labels the dataset.
func (c *Client) Register(ctx context.Context, name string, csvData []byte) (*wire.RegisterResponse, error) {
	path := "/v1/datasets"
	if name != "" {
		path += "?name=" + url.QueryEscape(name)
	}
	_, raw, err := c.do(ctx, http.MethodPost, path, "text/csv", csvData, true)
	if err != nil {
		return nil, err
	}
	var reg wire.RegisterResponse
	if err := json.Unmarshal(raw, &reg); err != nil {
		return nil, fmt.Errorf("decoding register response: %w", err)
	}
	return &reg, nil
}

// Append adds rows to a registered dataset's incremental session.
// Appends are not idempotent, so they are never retried; on a non-2xx
// answer the returned response (when the server sent one) still reports
// how many rows committed before the failure.
func (c *Client) Append(ctx context.Context, datasetID string, rows [][]string) (*wire.AppendResponse, error) {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.WriteAll(rows); err != nil {
		return nil, fmt.Errorf("encoding rows: %w", err)
	}
	_, raw, err := c.do(ctx, http.MethodPost, "/v1/datasets/"+url.PathEscape(datasetID)+"/rows", "text/csv", buf.Bytes(), false)
	var resp wire.AppendResponse
	if len(raw) > 0 && json.Unmarshal(raw, &resp) == nil && resp.ID != "" {
		return &resp, err
	}
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Dataset fetches one dataset's description.
func (c *Client) Dataset(ctx context.Context, id string) (*wire.DatasetInfo, error) {
	var info wire.DatasetInfo
	if err := c.get(ctx, "/v1/datasets/"+url.PathEscape(id), &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Datasets lists all registered datasets.
func (c *Client) Datasets(ctx context.Context) ([]wire.DatasetInfo, error) {
	var infos []wire.DatasetInfo
	if err := c.get(ctx, "/v1/datasets", &infos); err != nil {
		return nil, err
	}
	return infos, nil
}

// Discover runs one FD discovery to completion, whichever execution
// path the server picks: a sync 200 returns directly, a 202 is followed
// by polling the job until it finishes (cancelled via ctx). A governed
// overrun returns the partial response together with a *PartialError —
// the response is usable (every FD in it holds); the error tells the
// caller the cover is incomplete.
func (c *Client) Discover(ctx context.Context, req wire.DiscoverRequest) (*wire.DiscoverResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	status, raw, err := c.do(ctx, http.MethodPost, "/v1/discover", "application/json", body, true)
	if err != nil {
		return nil, err
	}
	switch status {
	case http.StatusOK:
		var resp wire.DiscoverResponse
		if err := json.Unmarshal(raw, &resp); err != nil {
			return nil, fmt.Errorf("decoding discover response: %w", err)
		}
		return finishDiscover(&resp)
	case http.StatusAccepted:
		var j wire.JobInfo
		if err := json.Unmarshal(raw, &j); err != nil {
			return nil, fmt.Errorf("decoding job info: %w", err)
		}
		return c.WaitJob(ctx, j.ID)
	default:
		return nil, fmt.Errorf("depminerd: unexpected discover status %d", status)
	}
}

// DiscoverAsync submits a discovery forced onto the async path and
// returns the job record to poll (Job / WaitJob). One wrinkle of the
// server's cache: a hit answers 200 inline even when async is forced —
// the client then synthesizes an already-done job record (empty ID)
// carrying the cached result, so callers see a uniform job lifecycle.
func (c *Client) DiscoverAsync(ctx context.Context, req wire.DiscoverRequest) (*wire.JobInfo, error) {
	async := true
	req.Async = &async
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	status, raw, err := c.do(ctx, http.MethodPost, "/v1/discover", "application/json", body, true)
	if err != nil {
		return nil, err
	}
	switch status {
	case http.StatusAccepted:
		var j wire.JobInfo
		if err := json.Unmarshal(raw, &j); err != nil {
			return nil, fmt.Errorf("decoding job info: %w", err)
		}
		return &j, nil
	case http.StatusOK:
		var resp wire.DiscoverResponse
		if err := json.Unmarshal(raw, &resp); err != nil {
			return nil, fmt.Errorf("decoding discover response: %w", err)
		}
		return &wire.JobInfo{
			Dataset:   resp.Dataset,
			Algorithm: resp.Algorithm,
			State:     wire.JobDone,
			Result:    &resp,
		}, nil
	default:
		return nil, fmt.Errorf("depminerd: async discover answered %d, want 202", status)
	}
}

// Job fetches one async job's current record.
func (c *Client) Job(ctx context.Context, id string) (*wire.JobInfo, error) {
	var j wire.JobInfo
	if err := c.get(ctx, "/v1/jobs/"+url.PathEscape(id), &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// WaitJob polls a job until it leaves the running state or ctx is
// cancelled, returning the discovery outcome under the same partial
// contract as Discover. Failed jobs return a *JobError.
func (c *Client) WaitJob(ctx context.Context, id string) (*wire.DiscoverResponse, error) {
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		switch j.State {
		case wire.JobDone:
			if j.Result == nil {
				return nil, fmt.Errorf("depminerd: job %s done without a result", id)
			}
			return finishDiscover(j.Result)
		case wire.JobFailed:
			return nil, &JobError{Job: j}
		}
		if err := sleep(ctx, c.poll); err != nil {
			return nil, fmt.Errorf("polling job %s: %w", id, err)
		}
	}
}

// finishDiscover applies the partial-result contract to a completed
// discovery response.
func finishDiscover(resp *wire.DiscoverResponse) (*wire.DiscoverResponse, error) {
	if resp.Partial {
		return resp, &PartialError{Response: resp}
	}
	return resp, nil
}

// Stats fetches the server's /v1/stats counters.
func (c *Client) Stats(ctx context.Context) (*wire.StatsResponse, error) {
	var st wire.StatsResponse
	if err := c.get(ctx, "/v1/stats", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Health probes readiness (GET /readyz): nil while the server is
// serving and accepting new work, ErrUnavailable (via the typed
// *APIError) once it drains or its durable layer degrades. Pure process
// liveness — 200 even mid-drain — lives at GET /healthz; this method
// keeps the SDK's historical "can I send work here" semantics, which is
// what callers branching on ErrUnavailable actually ask. Servers
// predating the liveness/readiness split have no /readyz; a 404 falls
// back to their /healthz, which carried both meanings.
func (c *Client) Health(ctx context.Context) error {
	_, _, err := c.do(ctx, http.MethodGet, "/readyz", "", nil, false)
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusNotFound {
		_, _, err = c.do(ctx, http.MethodGet, "/healthz", "", nil, false)
	}
	return err
}
