package client

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/wire"
)

// Sentinel errors for errors.Is checks against the typed *APIError and
// *PartialError values the client returns. They classify the depminerd
// failure modes a caller is expected to branch on.
var (
	// ErrTooManyRequests: the admission controller rejected the request
	// (HTTP 429). The *APIError carries the server's Retry-After hint.
	ErrTooManyRequests = errors.New("depminerd: too many requests")
	// ErrRegistryFull: the dataset registry is at capacity (HTTP 507).
	ErrRegistryFull = errors.New("depminerd: dataset registry full")
	// ErrNotFound: unknown dataset or job id (HTTP 404).
	ErrNotFound = errors.New("depminerd: not found")
	// ErrUnavailable: the server is draining or refused governed work
	// without a partial to return (HTTP 503).
	ErrUnavailable = errors.New("depminerd: unavailable")
	// ErrPartial: the discovery overran its guard budget and returned a
	// sound subset cover. The *PartialError carries the response.
	ErrPartial = errors.New("depminerd: partial result")
	// ErrJobFailed: an async job finished in the failed state.
	ErrJobFailed = errors.New("depminerd: job failed")
)

// APIError is a non-2xx answer from depminerd: the HTTP status, the
// server's error message, and — on 429 — the parsed Retry-After hint.
// It matches the sentinels above via errors.Is.
type APIError struct {
	// StatusCode is the HTTP status of the response.
	StatusCode int
	// Message is the server's error body ("error" field), if any.
	Message string
	// RetryAfter is the parsed Retry-After header (delta-seconds or
	// HTTP-date form), 0 when absent.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	msg := e.Message
	if msg == "" {
		msg = http.StatusText(e.StatusCode)
	}
	return fmt.Sprintf("depminerd: %s (http %d)", msg, e.StatusCode)
}

// Is maps the status code onto the sentinel classification, so callers
// can write errors.Is(err, client.ErrTooManyRequests) without digging
// the *APIError out first.
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrTooManyRequests:
		return e.StatusCode == http.StatusTooManyRequests
	case ErrRegistryFull:
		return e.StatusCode == http.StatusInsufficientStorage
	case ErrNotFound:
		return e.StatusCode == http.StatusNotFound
	case ErrUnavailable:
		return e.StatusCode == http.StatusServiceUnavailable
	}
	return false
}

// PartialError reports a governed overrun: the server answered 200 with
// partial=true, so Response carries a sound subset of the cover (every
// FD in it holds) along with the server's description of the cutoff.
// It is returned alongside the response, mirroring the repository's
// partial-result contract (guard.Governed).
type PartialError struct {
	// Response is the partial discovery outcome; never nil.
	Response *wire.DiscoverResponse
}

func (e *PartialError) Error() string {
	return fmt.Sprintf("depminerd: partial result: %s", e.Response.Error)
}

// Is matches ErrPartial.
func (e *PartialError) Is(target error) bool { return target == ErrPartial }

// JobError reports an async job that finished in the failed state.
type JobError struct {
	// Job is the final job record; never nil.
	Job *wire.JobInfo
}

func (e *JobError) Error() string {
	return fmt.Sprintf("depminerd: job %s failed: %s", e.Job.ID, e.Job.Error)
}

// Is matches ErrJobFailed.
func (e *JobError) Is(target error) bool { return target == ErrJobFailed }
