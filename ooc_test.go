package depminer

// Out-of-core discovery: the agree-set phase spills sorted runs to disk
// once resident bytes cross Options.MaxAgreeBytes, so discovery completes
// on agree-set volumes far larger than the memory the phase is allowed —
// the README's GOMEMLIMIT recipe. These tests pin the two contracts the
// feature rests on: the cover (and ag(r) itself) is byte-identical to the
// all-in-RAM run for every threshold, and the spilled volume actually
// exceeds the resident cap by the advertised margin.

import (
	"context"
	"os"
	"path/filepath"
	"runtime/debug"
	"slices"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/durable"
	"repro/internal/extsort"
)

// oocSpec is the default out-of-core workload: big enough that a 4 KiB
// resident cap spills hundreds of runs, small enough for CI. The CI
// out-of-core job scales it up via DEPMINER_OOC_ROWS to a dataset whose
// agree-set volume exceeds GOMEMLIMIT many times over.
func oocSpec(t testing.TB) datagen.Spec {
	rows := 2000
	if s := os.Getenv("DEPMINER_OOC_ROWS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad DEPMINER_OOC_ROWS %q", s)
		}
		rows = n
	}
	return datagen.Spec{Attrs: 15, Rows: rows, Correlation: 0.3, Seed: 3}
}

// TestOutOfCoreDiscovery is the acceptance run: under a soft memory limit
// and a resident agree-set cap, discovery must spill at least 10× the cap
// to disk and still produce ag(r) and a cover byte-identical to the
// unconstrained in-memory run.
func TestOutOfCoreDiscovery(t *testing.T) {
	spec := oocSpec(t)
	r, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Discover(context.Background(), r, Options{Workers: 1, Armstrong: ArmstrongNone})
	if err != nil {
		t.Fatal(err)
	}

	// GOMEMLIMIT is a soft limit: it cannot make an over-RAM run fail,
	// only thrash. The honest proof of "out of core" is the counter
	// contract below — resident agree bytes capped at threshold, spilled
	// volume ≥ 10× that — run here under a limit to keep the recipe real.
	old := debug.SetMemoryLimit(256 << 20)
	defer debug.SetMemoryLimit(old)

	// The out-of-core configuration bounds both resident buffers: couples
	// per chunk (ChunkSize) and agree-set bytes per pool (MaxAgreeBytes).
	// Each chunk window re-contributes its distinct sets, so the spilled
	// volume scales with the couple count while residency stays capped.
	const threshold = 1 << 10
	res, err := Discover(context.Background(), r, Options{
		Workers:       4,
		Armstrong:     ArmstrongNone,
		ChunkSize:     500,
		MaxAgreeBytes: threshold,
		SpillDir:      t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(res.FDs, ref.FDs) {
		t.Fatalf("spilled cover differs from in-memory reference (%d vs %d FDs)",
			len(res.FDs), len(ref.FDs))
	}
	if !slices.Equal(res.AgreeSets, ref.AgreeSets) {
		t.Fatalf("spilled ag(r) differs from in-memory reference (%d vs %d sets)",
			len(res.AgreeSets), len(ref.AgreeSets))
	}
	sp := res.Stats.Spill
	if sp.SpilledBytes < 10*threshold {
		t.Fatalf("spilled %d bytes, want ≥ 10× the %d-byte resident cap — workload too small to prove out-of-core",
			sp.SpilledBytes, threshold)
	}
	if sp.RunsSpilled == 0 || sp.MergedRuns == 0 || sp.ReadBlocks == 0 {
		t.Fatalf("incomplete spill counters: %+v", sp)
	}
	t.Logf("ooc: |r|=%d |ag(r)|=%d spilled=%d runs / %d bytes (%.0f× the %d-byte cap)",
		spec.Rows, len(ref.AgreeSets), sp.RunsSpilled, sp.SpilledBytes,
		float64(sp.SpilledBytes)/threshold, threshold)
}

// TestOutOfCoreFromSnapshot runs the fully out-of-core path end to end:
// the relation lives in a durable DMSNAP1 snapshot, columns are streamed
// one at a time into stripped partitions, and the agree-set phase spills —
// at no point is the relation or the agree-set volume resident at once.
func TestOutOfCoreFromSnapshot(t *testing.T) {
	spec := oocSpec(t)
	r, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Discover(context.Background(), r, Options{Workers: 1, Armstrong: ArmstrongNone})
	if err != nil {
		t.Fatal(err)
	}

	rows := make([][]string, r.Rows())
	for i := range rows {
		rows[i] = r.Row(i)
	}
	dir := t.TempDir()
	store, _, err := durable.Open(durable.Options{Dir: dir, DisableFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	// Register empty and append the rows: only WAL-appended records give
	// the dataset a tail to fold, and CompactAll folds exactly that tail
	// into snapshot.snap.
	fp := durable.ContentFingerprint(r.Names(), rows)
	ds, err := store.Create("ooc", "ooc", r.Names(), nil, fp)
	if err != nil {
		t.Fatal(err)
	}
	tok, err := ds.Append(rows, len(rows), fp)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Sync(tok); err != nil {
		t.Fatal(err)
	}
	if err := store.CompactAll(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	snap := filepath.Join(dir, "datasets", "ooc", "snapshot.snap")
	res, names, err := DiscoverFromSnapshot(context.Background(), snap, Options{
		Workers:       4,
		MaxAgreeBytes: extsort.SetBytes, // one set per worker: maximal spilling
		SpillDir:      t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(names, r.Names()) {
		t.Fatalf("snapshot names = %v, want %v", names, r.Names())
	}
	if !slices.Equal(res.FDs, ref.FDs) {
		t.Fatalf("snapshot-path cover differs from in-memory reference (%d vs %d FDs)",
			len(res.FDs), len(ref.FDs))
	}
	if res.Stats.Spill.RunsSpilled == 0 {
		t.Fatal("snapshot path did not spill under a one-set cap")
	}
}

// BenchmarkDiscoverOOC is the out-of-core record behind BENCH_OOC.json.
// The same benchmark name measures both sides so scripts/benchcmp can
// compare them: unset (or 0) DEPMINER_OOC_SPILL_BYTES is the in-memory
// baseline, a positive value is the resident cap of the spilled side.
func BenchmarkDiscoverOOC(b *testing.B) {
	var spill int64
	if s := os.Getenv("DEPMINER_OOC_SPILL_BYTES"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil || n < 0 {
			b.Fatalf("bad DEPMINER_OOC_SPILL_BYTES %q", s)
		}
		spill = n
	}
	r := dataset(b, 15, 5000, 0.3)
	dir := b.TempDir()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Discover(context.Background(), r, core.Options{
			Algorithm:     core.AgreeCouples,
			Armstrong:     core.ArmstrongNone,
			MaxAgreeBytes: spill,
			SpillDir:      dir,
		})
		if err != nil {
			b.Fatal(err)
		}
		if spill > 0 && res.Stats.Spill.RunsSpilled == 0 {
			b.Fatal("spill cap set but nothing spilled")
		}
	}
}
