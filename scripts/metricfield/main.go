// Command metricfield prints one value out of a Prometheus text
// exposition read from stdin — the /metrics analogue of
// scripts/jsonfield, used by the CI smoke steps to assert that the
// observability counters actually moved.
//
// Usage:
//
//	curl -sS .../metrics | go run ./scripts/metricfield depminerd_discoveries_total
//	curl -sS .../metrics | go run ./scripts/metricfield 'depminerd_http_requests_total{code="200",method="POST",route="/v1/discover"}'
//
// A bare metric name sums every series of that family (all label
// combinations); a name with a label set selects that exact series.
// Values print in Go's shortest float form ("3", "0.25"). Exits 1 if
// stdin does not parse or nothing matches.
package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: metricfield <name|name{labels}> < metrics.txt")
		os.Exit(1)
	}
	sel := os.Args[1]
	series, err := obs.ParseText(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricfield: %v\n", err)
		os.Exit(1)
	}
	m := obs.SeriesMap(series)

	if strings.ContainsRune(sel, '{') {
		v, ok := m[sel]
		if !ok {
			fmt.Fprintf(os.Stderr, "metricfield: no series %q\n", sel)
			os.Exit(1)
		}
		fmt.Println(strconv.FormatFloat(v, 'f', -1, 64))
		return
	}
	sum, found := 0.0, false
	for k, v := range m {
		if k == sel || strings.HasPrefix(k, sel+"{") {
			sum += v
			found = true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "metricfield: no family %q\n", sel)
		os.Exit(1)
	}
	fmt.Println(strconv.FormatFloat(sum, 'f', -1, 64))
}
