// Command loadcmp diffs two BENCH_LOAD.json reports (cmd/loadgen -json)
// on the metrics that matter for a serving regression: throughput and the
// p50/p95/p99/max latency percentiles, overall and per operation. It is
// the load-report sibling of scripts/benchcmp.
//
// Usage:
//
//	go run ./cmd/loadgen -json > old.json
//	... apply the change ...
//	go run ./cmd/loadgen -json > new.json
//	go run ./scripts/loadcmp old.json new.json
//
// Latency deltas are reported so that positive percentages mean "got
// worse" on both axes: latency up is a regression, throughput down is a
// regression. With -json the comparison is emitted machine-readable.
// Exit status is 0 either way — the comparison informs, thresholds are
// the caller's policy.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
)

// latency mirrors cmd/loadgen's latency_ms object.
type latency struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// loadReport is the subset of the BENCH_LOAD.json schema loadcmp reads;
// unknown fields are ignored, so the report can grow without breaking
// old comparisons.
type loadReport struct {
	Addr          string   `json:"addr"`
	Concurrency   int      `json:"concurrency"`
	Mix           string   `json:"mix"`
	Requests      int64    `json:"requests"`
	Errors        int64    `json:"errors"`
	Rejected      int64    `json:"rejected"`
	Partials      int64    `json:"partials"`
	ThroughputRPS float64  `json:"throughput_rps"`
	Latency       *latency `json:"latency_ms"`
	Ops           map[string]*struct {
		Requests int64    `json:"requests"`
		Latency  *latency `json:"latency_ms"`
	} `json:"ops"`
}

// delta is one compared metric in the -json output.
type delta struct {
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	// ChangePct is signed so positive means regression for every metric
	// (latency increase, throughput decrease).
	ChangePct float64 `json:"change_pct"`
}

func load(path string) (*loadReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r loadReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Latency == nil {
		return nil, fmt.Errorf("%s: not a loadgen report (no latency_ms)", path)
	}
	return &r, nil
}

// pct returns the relative change in percent, NaN when the base is zero.
func pct(oldV, newV float64) float64 {
	if oldV == 0 {
		return math.NaN()
	}
	return (newV - oldV) / oldV * 100
}

// latencyDeltas compares one latency object under a name prefix.
func latencyDeltas(prefix string, o, n *latency) []delta {
	if o == nil || n == nil || o.Count == 0 || n.Count == 0 {
		return nil
	}
	return []delta{
		{prefix + "p50_ms", o.P50, n.P50, pct(o.P50, n.P50)},
		{prefix + "p95_ms", o.P95, n.P95, pct(o.P95, n.P95)},
		{prefix + "p99_ms", o.P99, n.P99, pct(o.P99, n.P99)},
		{prefix + "max_ms", o.Max, n.Max, pct(o.Max, n.Max)},
	}
}

func main() {
	jsonOut := flag.Bool("json", false, "emit the comparison as JSON")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: loadcmp [-json] old.json new.json")
		os.Exit(1)
	}
	oldR, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadcmp: %v\n", err)
		os.Exit(1)
	}
	newR, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadcmp: %v\n", err)
		os.Exit(1)
	}

	deltas := []delta{
		// Throughput is negated into "positive = regression" space.
		{"throughput_rps", oldR.ThroughputRPS, newR.ThroughputRPS,
			pct(oldR.ThroughputRPS, newR.ThroughputRPS) * -1},
	}
	deltas = append(deltas, latencyDeltas("", oldR.Latency, newR.Latency)...)
	ops := make([]string, 0, len(oldR.Ops))
	for op := range oldR.Ops {
		if _, ok := newR.Ops[op]; ok {
			ops = append(ops, op)
		}
	}
	sort.Strings(ops)
	for _, op := range ops {
		deltas = append(deltas, latencyDeltas(op+".", oldR.Ops[op].Latency, newR.Ops[op].Latency)...)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{
			"old":    map[string]any{"requests": oldR.Requests, "errors": oldR.Errors, "mix": oldR.Mix, "concurrency": oldR.Concurrency},
			"new":    map[string]any{"requests": newR.Requests, "errors": newR.Errors, "mix": newR.Mix, "concurrency": newR.Concurrency},
			"deltas": deltas,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "loadcmp: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if oldR.Mix != newR.Mix || oldR.Concurrency != newR.Concurrency {
		fmt.Printf("note: configs differ (old: %q x%d, new: %q x%d) — deltas compare different workloads\n",
			oldR.Mix, oldR.Concurrency, newR.Mix, newR.Concurrency)
	}
	fmt.Printf("%-14s %12s %12s %10s\n", "metric", "old", "new", "change")
	for _, d := range deltas {
		change := "n/a"
		if !math.IsNaN(d.ChangePct) {
			sign := ""
			if d.ChangePct > 0 {
				sign = "+"
			}
			change = fmt.Sprintf("%s%.1f%%", sign, d.ChangePct)
		}
		fmt.Printf("%-14s %12.2f %12.2f %10s\n", d.Metric, d.Old, d.New, change)
	}
	fmt.Printf("requests %d → %d, errors %d → %d, rejected %d → %d, partial %d → %d\n",
		oldR.Requests, newR.Requests, oldR.Errors, newR.Errors,
		oldR.Rejected, newR.Rejected, oldR.Partials, newR.Partials)
}
