// Command benchcmp compares two `go test -bench` outputs benchstat-style:
// per benchmark and metric it reports the median of each side and the
// relative change. Use it to keep before/after records honest — same
// machine, same -benchtime, several -count repetitions:
//
//	go test -run xxx -bench Hotpath -benchtime 2s -count 5 . > old.txt
//	... apply the change ...
//	go test -run xxx -bench Hotpath -benchtime 2s -count 5 . > new.txt
//	go run ./scripts/benchcmp old.txt new.txt
//
// With -json the comparison is emitted as a machine-readable record (the
// format stored in BENCH_HOTPATH.json).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"slices"
	"strconv"
	"strings"
)

// metrics is the reporting order; other units are carried through after
// these.
var metrics = []string{"ns/op", "B/op", "allocs/op"}

// parse reads a -bench output file into name → unit → samples.
func parse(path string) (map[string]map[string][]float64, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	out := make(map[string]map[string][]float64)
	var order []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if out[name] == nil {
			out[name] = make(map[string][]float64)
			order = append(order, name)
		}
		// fields[1] is the iteration count; then (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			out[name][unit] = append(out[name][unit], v)
		}
	}
	return out, order, sc.Err()
}

func median(xs []float64) float64 {
	s := slices.Clone(xs)
	slices.Sort(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Delta is one benchmark metric's before/after medians.
type Delta struct {
	Old      float64 `json:"old"`
	New      float64 `json:"new"`
	DeltaPct float64 `json:"delta_pct"`
	Samples  int     `json:"samples"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit the comparison as JSON")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-json] old.txt new.txt")
		os.Exit(2)
	}
	oldB, order, err := parse(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	newB, newOrder, err := parse(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	for _, n := range newOrder {
		if _, ok := oldB[n]; !ok {
			order = append(order, n)
		}
	}

	report := make(map[string]map[string]Delta)
	for _, name := range order {
		o, n := oldB[name], newB[name]
		if o == nil || n == nil {
			continue
		}
		units := make(map[string]Delta)
		for _, unit := range metrics {
			ov, nv := o[unit], n[unit]
			if len(ov) == 0 || len(nv) == 0 {
				continue
			}
			om, nm := median(ov), median(nv)
			pct := 0.0
			if om != 0 {
				pct = (nm - om) / om * 100
			}
			units[unit] = Delta{Old: om, New: nm, DeltaPct: pct, Samples: min(len(ov), len(nv))}
		}
		if len(units) > 0 {
			report[name] = units
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "benchcmp:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("%-36s %-10s %14s %14s %9s\n", "benchmark", "metric", "old(median)", "new(median)", "delta")
	for _, name := range order {
		units, ok := report[name]
		if !ok {
			continue
		}
		for _, unit := range metrics {
			d, ok := units[unit]
			if !ok {
				continue
			}
			fmt.Printf("%-36s %-10s %14.0f %14.0f %+8.1f%%\n",
				strings.TrimPrefix(name, "Benchmark"), unit, d.Old, d.New, d.DeltaPct)
		}
	}
}
