// Command jsonfield prints one top-level field of a JSON object read
// from stdin — a dependency-free stand-in for `jq -r .field`, used by
// the CI smoke step to pull the dataset id out of a depminerd response.
//
// Usage:
//
//	curl -sS .../v1/datasets | go run ./scripts/jsonfield id
//
// Exits 1 if stdin is not a JSON object or the field is absent. Scalar
// values print bare (no quotes); composite values print as JSON.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: jsonfield <field> < object.json")
		os.Exit(1)
	}
	var obj map[string]json.RawMessage
	if err := json.NewDecoder(os.Stdin).Decode(&obj); err != nil {
		fmt.Fprintf(os.Stderr, "jsonfield: %v\n", err)
		os.Exit(1)
	}
	raw, ok := obj[os.Args[1]]
	if !ok {
		fmt.Fprintf(os.Stderr, "jsonfield: no field %q\n", os.Args[1])
		os.Exit(1)
	}
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		fmt.Println(s)
		return
	}
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		fmt.Fprintf(os.Stderr, "jsonfield: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(v)
}
