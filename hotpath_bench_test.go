package depminer

// Per-phase hot-path benchmarks: one Benchmark per pipeline kernel, each
// reporting allocations. These are the regression guard behind
// BENCH_HOTPATH.json — run them with
//
//	go test -run xxx -bench 'Hotpath' -benchtime 2s -count 5 . > new.txt
//	go run ./scripts/benchcmp old.txt new.txt
//
// and compare against the recorded baseline before merging changes that
// touch internal/agree, internal/hypergraph or internal/partition. All
// benchmarks use only the stable public API of the phases, so the same
// file measures both the map-based and the flat/sorted-slice kernels.

import (
	"context"
	"testing"

	"repro/internal/agree"
	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/maxsets"
	"repro/internal/partition"
	"repro/internal/tane"
)

// BenchmarkHotpathPartition isolates the stripped-partition database
// extraction (the pre-processing phase): one π̂_A per attribute.
func BenchmarkHotpathPartition(b *testing.B) {
	r := dataset(b, 20, 5000, 0.3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := partition.NewDatabase(r)
		if db.Arity() != 20 {
			b.Fatal("bad database")
		}
	}
}

// BenchmarkHotpathProduct isolates the partition-product kernel (TANE's
// STRIPPED_PRODUCT) with a reused prober, the configuration of the TANE
// level loop.
func BenchmarkHotpathProduct(b *testing.B) {
	r := dataset(b, 20, 5000, 0.3)
	db := partition.NewDatabase(r)
	pr := partition.NewProber(r.Rows())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for a := 1; a < r.Arity(); a++ {
			p := pr.Product(db.Attr[0], db.Attr[a])
			_ = p.NumClasses()
		}
	}
}

// BenchmarkHotpathAgreeCouples isolates step 1 via Algorithm 2: MC couple
// generation plus the chunked partition sweep and agree-set dedup.
func BenchmarkHotpathAgreeCouples(b *testing.B) {
	r := dataset(b, 20, 5000, 0.3)
	db := partition.NewDatabase(r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agree.Couples(context.Background(), db, agree.Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotpathAgreeIdentifiers isolates step 1 via Algorithm 3: the
// identifier-list intersections and agree-set dedup.
func BenchmarkHotpathAgreeIdentifiers(b *testing.B) {
	r := dataset(b, 20, 5000, 0.3)
	db := partition.NewDatabase(r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agree.Identifiers(context.Background(), db, agree.Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotpathTransversal isolates steps 3–4: the levelwise minimal
// transversal search over every per-attribute cmax hypergraph.
func BenchmarkHotpathTransversal(b *testing.B) {
	r := dataset(b, 20, 2000, 0.3)
	res, err := agree.FromRelation(context.Background(), r)
	if err != nil {
		b.Fatal(err)
	}
	ms := maxsets.Compute(res.Sets, r.Arity())
	hs := make([]*hypergraph.Hypergraph, r.Arity())
	for a := 0; a < r.Arity(); a++ {
		hs[a] = hypergraph.Simplify(ms.CMax[a])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, h := range hs {
			if _, err := h.MinimalTransversals(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkHotpathTANE isolates the TANE lattice search (level loop,
// partition products, validity tests) on the same workload.
func BenchmarkHotpathTANE(b *testing.B) {
	r := dataset(b, 15, 2000, 0.3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tane.Run(context.Background(), r, tane.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotpathPipeline measures the full single-core Dep-Miner
// pipeline (partition → agree → cmax → transversals → FDs), the
// allocation budget the acceptance criteria track.
func BenchmarkHotpathPipeline(b *testing.B) {
	r := dataset(b, 20, 5000, 0.3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Discover(context.Background(), r, core.Options{
			Algorithm: core.AgreeCouples, Armstrong: core.ArmstrongNone, Workers: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
