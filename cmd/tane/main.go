// Command tane runs the TANE baseline (Huhtala et al. 1998) on a CSV
// relation: exact minimal functional dependencies, or approximate
// dependencies with -epsilon.
//
// Usage:
//
//	tane [flags] file.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
)

func main() {
	var (
		noHeader = flag.Bool("no-header", false, "treat the first CSV record as data, not attribute names")
		epsilon  = flag.Float64("epsilon", 0, "approximate-dependency threshold g3 ≤ ε (0 = exact)")
		maxLHS   = flag.Int("max-lhs", 0, "bound on left-hand-side size (0 = unbounded)")
		timeout  = flag.Duration("timeout", 2*time.Hour, "abort after this long")
		stats    = flag.Bool("stats", false, "print lattice statistics")
		names    = flag.Bool("names", true, "print FDs with attribute names (false: letter notation)")
	)
	flag.Parse()
	if err := run(*noHeader, *epsilon, *maxLHS, *timeout, *stats, *names, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "tane:", err)
		os.Exit(1)
	}
}

func run(noHeader bool, epsilon float64, maxLHS int, timeout time.Duration, stats, useNames bool, args []string) error {
	var r *depminer.Relation
	var err error
	switch len(args) {
	case 0:
		r = depminer.PaperExample()
		fmt.Println("(no input file: using the paper's running example)")
	case 1:
		r, err = depminer.LoadCSVFile(args[0], !noHeader)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("expected at most one input file, got %d", len(args))
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	res, err := depminer.DiscoverTANE(ctx, r, depminer.TANEOptions{
		Epsilon: epsilon,
		MaxLHS:  maxLHS,
	})
	if err != nil {
		return err
	}

	kind := "minimal functional dependencies"
	if epsilon > 0 {
		kind = fmt.Sprintf("approximate dependencies (g3 ≤ %v)", epsilon)
	}
	fmt.Printf("%d tuples × %d attributes → %d %s\n\n", r.Rows(), r.Arity(), len(res.FDs), kind)
	for _, f := range res.FDs {
		if useNames {
			fmt.Println(f.Names(r.Names()))
		} else {
			fmt.Println(f.String())
		}
	}
	if stats {
		fmt.Printf("\nlattice: %d nodes over %d levels, %v elapsed\n",
			res.LatticeNodes, res.Levels, res.Elapsed)
	}
	return nil
}
