// Command tane runs the TANE baseline (Huhtala et al. 1998) on a CSV
// relation: exact minimal functional dependencies, or approximate
// dependencies with -epsilon.
//
// Usage:
//
//	tane [flags] file.csv
//
// Exit codes: 0 success, 1 bad input or error, 3 budget/deadline exceeded
// (partial results are printed first), 130 interrupted.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/cli"
)

// config carries the resolved command-line configuration.
type config struct {
	noHeader  bool
	epsilon   float64
	maxLHS    int
	workers   int
	partBytes int64
	timeout   time.Duration
	budget    int64
	stats     bool
	useNames  bool
	args      []string
}

func main() {
	cfg := config{}
	flag.BoolVar(&cfg.noHeader, "no-header", false, "treat the first CSV record as data, not attribute names")
	flag.Float64Var(&cfg.epsilon, "epsilon", 0, "approximate-dependency threshold g3 ≤ ε (0 = exact)")
	flag.IntVar(&cfg.maxLHS, "max-lhs", 0, "bound on left-hand-side size (0 = unbounded)")
	flag.IntVar(&cfg.workers, "workers", 0, "worker-pool width for the parallel pipeline phases: 0 = all cores, 1 = sequential (output is identical for every value)")
	flag.Int64Var(&cfg.partBytes, "max-partition-bytes", 0, "cap on resident partition bytes (0 = unbounded); over the cap partitions are evicted and recomputed on demand")
	flag.DurationVar(&cfg.timeout, "timeout", 2*time.Hour, "deadline for the search; on expiry partial results are printed and the exit code is 3")
	flag.Int64Var(&cfg.budget, "budget", 0, "resource budget in lattice-node units plus materialised partition bytes (0 = unlimited); on overrun partial results are printed and the exit code is 3")
	flag.BoolVar(&cfg.stats, "stats", false, "print lattice statistics")
	flag.BoolVar(&cfg.useNames, "names", true, "print FDs with attribute names (false: letter notation)")
	flag.Parse()
	cfg.args = flag.Args()

	cli.Main("tane", cfg.run)
}

func (cfg *config) run(ctx context.Context) error {
	var r *depminer.Relation
	var err error
	switch len(cfg.args) {
	case 0:
		r = depminer.PaperExample()
		fmt.Println("(no input file: using the paper's running example)")
	case 1:
		r, err = depminer.LoadCSVFile(cfg.args[0], !cfg.noHeader)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("expected at most one input file, got %d", len(cfg.args))
	}

	var budget *depminer.Budget
	if cfg.budget > 0 || cfg.timeout > 0 {
		l := depminer.Limits{Units: cfg.budget}
		if cfg.timeout > 0 {
			l.Deadline = time.Now().Add(cfg.timeout)
		}
		budget = depminer.NewBudget(l)
	}
	res, rerr := depminer.DiscoverTANE(ctx, r, depminer.TANEOptions{
		Epsilon:           cfg.epsilon,
		MaxLHS:            cfg.maxLHS,
		Workers:           cfg.workers,
		MaxPartitionBytes: cfg.partBytes,
		Budget:            budget,
	})
	if rerr != nil && (res == nil || !res.Partial) {
		return rerr
	}
	if rerr != nil {
		fmt.Fprintf(os.Stderr, "tane: partial results (%v)\n", rerr)
	}

	kind := "minimal functional dependencies"
	if cfg.epsilon > 0 {
		kind = fmt.Sprintf("approximate dependencies (g3 ≤ %v)", cfg.epsilon)
	}
	fmt.Printf("%d tuples × %d attributes → %d %s\n\n", r.Rows(), r.Arity(), len(res.FDs), kind)
	for _, f := range res.FDs {
		if cfg.useNames {
			fmt.Println(f.Names(r.Names()))
		} else {
			fmt.Println(f.String())
		}
	}
	if cfg.stats {
		fmt.Printf("\nlattice: %d nodes over %d levels, %v elapsed\n",
			res.LatticeNodes, res.Levels, res.Elapsed)
		st := res.Stats
		fmt.Printf("partitions: %d hits, %d misses, %d evictions, %d recomputes; peak %d B resident (+%d B roots), cap %d B\n",
			st.Hits, st.Misses, st.Evictions, st.Recomputes, st.PeakBytes, st.RootBytes, st.CapBytes)
	}
	return rerr
}
