package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), errRun
}

func TestRunExactPaperExample(t *testing.T) {
	out, err := capture(t, func() error {
		cfg := config{timeout: time.Minute, stats: true}
		return cfg.run(context.Background())
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "14 minimal functional dependencies") {
		t.Errorf("output:\n%s", out)
	}
	if !strings.Contains(out, "BC → A") {
		t.Error("letter notation missing")
	}
	if !strings.Contains(out, "lattice:") {
		t.Error("stats missing")
	}
}

func TestRunApproximate(t *testing.T) {
	out, err := capture(t, func() error {
		cfg := config{epsilon: 0.3, timeout: time.Minute, useNames: true}
		return cfg.run(context.Background())
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "approximate dependencies (g3 ≤ 0.3)") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunCSVAndErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.csv")
	if err := os.WriteFile(path, []byte("a,b\n1,x\n2,x\n3,y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		cfg := config{maxLHS: 1, timeout: time.Minute, useNames: true, args: []string{path}}
		return cfg.run(context.Background())
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "a → b") {
		t.Errorf("output:\n%s", out)
	}
	if _, err := capture(t, func() error {
		cfg := config{epsilon: -1, timeout: time.Minute, useNames: true}
		return cfg.run(context.Background())
	}); err == nil {
		t.Error("negative epsilon accepted")
	}
	if _, err := capture(t, func() error {
		cfg := config{timeout: time.Minute, useNames: true, args: []string{"x", "y"}}
		return cfg.run(context.Background())
	}); err == nil {
		t.Error("two files accepted")
	}
}
