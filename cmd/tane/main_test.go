package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), errRun
}

func TestRunExactPaperExample(t *testing.T) {
	out, err := capture(t, func() error {
		return run(false, 0, 0, time.Minute, true, false, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "14 minimal functional dependencies") {
		t.Errorf("output:\n%s", out)
	}
	if !strings.Contains(out, "BC → A") {
		t.Error("letter notation missing")
	}
	if !strings.Contains(out, "lattice:") {
		t.Error("stats missing")
	}
}

func TestRunApproximate(t *testing.T) {
	out, err := capture(t, func() error {
		return run(false, 0.3, 0, time.Minute, false, true, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "approximate dependencies (g3 ≤ 0.3)") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunCSVAndErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.csv")
	if err := os.WriteFile(path, []byte("a,b\n1,x\n2,x\n3,y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run(false, 0, 1, time.Minute, false, true, []string{path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "a → b") {
		t.Errorf("output:\n%s", out)
	}
	if _, err := capture(t, func() error {
		return run(false, -1, 0, time.Minute, false, true, nil)
	}); err == nil {
		t.Error("negative epsilon accepted")
	}
	if _, err := capture(t, func() error {
		return run(false, 0, 0, time.Minute, false, true, []string{"x", "y"})
	}); err == nil {
		t.Error("two files accepted")
	}
}
