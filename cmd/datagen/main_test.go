package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

func TestRunWritesFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "data.csv")
	if err := run(context.Background(), 4, 50, 0.5, 7, out, false); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := depminer.LoadCSV(f, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows() != 50 || r.Arity() != 4 {
		t.Errorf("shape %dx%d", r.Rows(), r.Arity())
	}
	if r.Name(0) != "A" || r.Name(3) != "D" {
		t.Errorf("names = %v", r.Names())
	}
}

func TestRunDeterministic(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "1.csv")
	p2 := filepath.Join(dir, "2.csv")
	if err := run(context.Background(), 3, 20, 0.3, 9, p1, false); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), 3, 20, 0.3, 9, p2, false); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(p1)
	b2, _ := os.ReadFile(p2)
	if string(b1) != string(b2) {
		t.Error("same spec+seed produced different files")
	}
}

// TestRunStreamMatchesInMemory pins the -stream contract at the CLI
// level: both modes write byte-identical files.
func TestRunStreamMatchesInMemory(t *testing.T) {
	dir := t.TempDir()
	mem := filepath.Join(dir, "mem.csv")
	str := filepath.Join(dir, "stream.csv")
	if err := run(context.Background(), 6, 200, 0.3, 5, mem, false); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), 6, 200, 0.3, 5, str, true); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(mem)
	b2, _ := os.ReadFile(str)
	if len(b1) == 0 || string(b1) != string(b2) {
		t.Errorf("-stream output differs from in-memory mode (%d vs %d bytes)", len(b1), len(b2))
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), -1, 10, 0, 1, "", false); err == nil {
		t.Error("negative attrs accepted")
	}
	if err := run(context.Background(), 2, 10, 2.0, 1, "", false); err == nil {
		t.Error("correlation > 1 accepted")
	}
	if err := run(context.Background(), 2, 10, 0, 1, filepath.Join(t.TempDir(), "no", "such", "dir", "f.csv"), false); err == nil {
		t.Error("unwritable path accepted")
	}
}

func TestRunStdout(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := run(context.Background(), 2, 3, 0, 1, "", false)
	w.Close()
	os.Stdout = old
	if errRun != nil {
		t.Fatal(errRun)
	}
	buf := make([]byte, 1<<16)
	n, _ := r.Read(buf)
	if !strings.HasPrefix(string(buf[:n]), "A,B\n") {
		t.Errorf("stdout output:\n%s", buf[:n])
	}
}
