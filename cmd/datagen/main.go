// Command datagen writes a synthetic benchmark relation (paper §5.2) as
// CSV to stdout or a file.
//
// Usage:
//
//	datagen -attrs 20 -rows 10000 -c 0.3 > data.csv
package main

import (
	"bufio"
	"context"
	"flag"
	"io"
	"os"

	"repro"
	"repro/internal/cli"
)

func main() {
	var (
		attrs = flag.Int("attrs", 10, "|R|: number of attributes")
		rows  = flag.Int("rows", 10000, "|r|: number of tuples")
		c     = flag.Float64("c", 0, "rate of identical values (per-column domain = c·|r|; 0 = no constraints)")
		seed  = flag.Uint64("seed", 1, "generator seed")
		out   = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	cli.Main("datagen", func(ctx context.Context) error {
		return run(ctx, *attrs, *rows, *c, *seed, *out)
	})
}

func run(ctx context.Context, attrs, rows int, c float64, seed uint64, out string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	r, err := depminer.Generate(depminer.GenerateSpec{
		Attrs:       attrs,
		Rows:        rows,
		Correlation: c,
		Seed:        seed,
	})
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	if err := r.WriteCSV(bw); err != nil {
		return err
	}
	return bw.Flush()
}
