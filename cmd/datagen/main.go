// Command datagen writes a synthetic benchmark relation (paper §5.2) as
// CSV to stdout or a file.
//
// Usage:
//
//	datagen -attrs 20 -rows 10000 -c 0.3 > data.csv
//
// With -stream the CSV is produced row by row in O(|R|) memory — the
// fixture path for out-of-core tests, where the file can be many times
// larger than RAM. Output is byte-identical to the in-memory mode.
package main

import (
	"bufio"
	"context"
	"flag"
	"io"
	"os"

	"repro"
	"repro/internal/cli"
)

func main() {
	var (
		attrs = flag.Int("attrs", 10, "|R|: number of attributes")
		rows  = flag.Int("rows", 10000, "|r|: number of tuples")
		c     = flag.Float64("c", 0, "rate of identical values (per-column domain = c·|r|; 0 = no constraints)")
		seed   = flag.Uint64("seed", 1, "generator seed")
		out    = flag.String("o", "", "output file (default stdout)")
		stream = flag.Bool("stream", false, "write row by row in O(|R|) memory (same bytes as in-memory mode)")
	)
	flag.Parse()
	cli.Main("datagen", func(ctx context.Context) error {
		return run(ctx, *attrs, *rows, *c, *seed, *out, *stream)
	})
}

func run(ctx context.Context, attrs, rows int, c float64, seed uint64, out string, stream bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	spec := depminer.GenerateSpec{
		Attrs:       attrs,
		Rows:        rows,
		Correlation: c,
		Seed:        seed,
	}
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if stream {
		if err := depminer.GenerateCSV(ctx, spec, bw); err != nil {
			return err
		}
		return bw.Flush()
	}
	r, err := depminer.Generate(spec)
	if err != nil {
		return err
	}
	if err := r.WriteCSV(bw); err != nil {
		return err
	}
	return bw.Flush()
}
