// Command loadgen is a closed-loop load generator for depminerd: a pool
// of workers, each running one request at a time through the repro/client
// SDK, drawing operations from a weighted mix until the duration elapses.
// It reports throughput, an exact-sample latency histogram (p50/p95/p99),
// and outcome counters overall and per operation, plus the server's own
// /v1/stats — enough to compare two runs with scripts/loadcmp.
//
// Usage:
//
//	depminerd -addr 127.0.0.1:8080 &
//	go run ./cmd/loadgen -addr http://127.0.0.1:8080 -duration 30s -concurrency 16 \
//	    -mix hit=4,cold=2,append=1,inc=1,async=1 -json > BENCH_LOAD.json
//
// Operations:
//
//	hit     discover on a warmed static dataset (result-cache hit path)
//	cold    TANE discover with a per-request epsilon, so every request
//	        keys a fresh cache entry and genuinely runs the pipeline
//	async   forced-async depminer2 discover: submit a job, poll it done
//	append  append one generated row to a dedicated dataset (invalidates
//	        its cache entries; never retried — appends aren't idempotent)
//	inc     incremental re-derivation on the append dataset, racing the
//	        appends that keep invalidating it
//	shard   depminer discover on the append dataset: on a coordinator
//	        this fans the agree-set phase out across the worker fleet
//	        (the appends keep changing the fingerprint, so workers see
//	        404 → dataset push → recompute, and a saturated or full
//	        worker degrades to the coordinator's local fallback); on a
//	        single-node server it is a plain cold depminer discover
//
// Outcomes are the saturation contract's three classes plus a catch-all:
// ok (complete result), partial (guard-governed 200), rejected (429 after
// the client's retries, counted separately from errors because admission
// control refusing load is the server working as designed), and errors
// (anything else — the number CI asserts is zero).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/client"
	"repro/internal/datagen"
	"repro/internal/obs"
	"repro/wire"
)

// config carries the resolved command-line configuration.
type config struct {
	addr        string
	concurrency int
	duration    time.Duration
	mix         string
	rows        int
	attrs       int
	seed        int64
	maxAttempts int
	jsonOut     bool
}

// opStats accumulates one operation's outcomes; latencies in milliseconds.
type opStats struct {
	Requests  int64     `json:"requests"`
	OK        int64     `json:"ok"`
	Partials  int64     `json:"partials"`
	Rejected  int64     `json:"rejected"`
	Errors    int64     `json:"errors"`
	latencies []float64 // guarded by the collector mutex; ok outcomes only
	Latency   *latency  `json:"latency_ms,omitempty"`
}

// latency is the exact-sample summary of a latency population.
type latency struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// report is the BENCH_LOAD.json schema. The top-level requests/errors
// fields are scalars on purpose: the CI smoke step pulls them out with
// scripts/jsonfield, which only reads one level deep.
type report struct {
	Generated     string              `json:"generated"`
	Addr          string              `json:"addr"`
	Concurrency   int                 `json:"concurrency"`
	Mix           string              `json:"mix"`
	Rows          int                 `json:"rows"`
	Attrs         int                 `json:"attrs"`
	Seed          int64               `json:"seed"`
	DurationMS    float64             `json:"duration_ms"`
	Requests      int64               `json:"requests"`
	Errors        int64               `json:"errors"`
	Rejected      int64               `json:"rejected"`
	Partials      int64               `json:"partials"`
	ThroughputRPS float64             `json:"throughput_rps"`
	Latency       *latency            `json:"latency_ms"`
	Ops           map[string]*opStats `json:"ops"`
	ServerStats   *wire.StatsResponse `json:"server_stats,omitempty"`
	// ServerBuild identifies the binary that served the run, so two
	// BENCH_LOAD.json files are attributable to exact builds.
	ServerBuild *wire.VersionResponse `json:"server_build,omitempty"`
	// MetricsDelta is the per-series change in the server's /metrics
	// exposition across the run (after minus before, zero deltas
	// dropped) — the Prometheus view of what the load did, scraped from
	// the same registry /v1/stats reads.
	MetricsDelta map[string]float64 `json:"metrics_delta,omitempty"`
}

// collector merges worker outcomes under one mutex; workers record a
// handful of times per request, so contention is negligible next to the
// HTTP round trips.
type collector struct {
	mu  sync.Mutex
	all []float64
	ops map[string]*opStats
}

func newCollector(mix []mixEntry) *collector {
	c := &collector{ops: make(map[string]*opStats)}
	for _, m := range mix {
		c.ops[m.op] = &opStats{}
	}
	return c
}

// record files one finished request under op with the given outcome:
// "ok", "partial", "rejected", or "error".
func (c *collector) record(op, outcome string, elapsed time.Duration) {
	ms := float64(elapsed) / float64(time.Millisecond)
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.ops[op]
	st.Requests++
	switch outcome {
	case "ok":
		st.OK++
		st.latencies = append(st.latencies, ms)
		c.all = append(c.all, ms)
	case "partial":
		st.Partials++
	case "rejected":
		st.Rejected++
	default:
		st.Errors++
	}
}

// summarize computes the exact-sample percentiles of a population.
func summarize(samples []float64) *latency {
	if len(samples) == 0 {
		return &latency{}
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	pct := func(q float64) float64 {
		// Nearest-rank: the smallest sample ≥ q of the population.
		i := int(q*float64(len(sorted))+0.999999) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return &latency{
		Count: len(sorted),
		Mean:  sum / float64(len(sorted)),
		P50:   pct(0.50),
		P95:   pct(0.95),
		P99:   pct(0.99),
		Max:   sorted[len(sorted)-1],
	}
}

// mixEntry is one weighted operation from the -mix flag.
type mixEntry struct {
	op     string
	weight int
}

var knownOps = map[string]bool{"hit": true, "cold": true, "append": true, "inc": true, "async": true, "shard": true}

// mixPresets are named mixes accepted wherever a weighted list is:
// append-heavy is the durability benchmark — appends dominate so the WAL
// group-commit path (syncs vs batched_records in the report's durable
// server stats) carries the load, with just enough discovery traffic to
// keep the cache-invalidation race honest.
// The shard preset drives a coordinator: sharded discoveries dominate,
// appends keep the fingerprint moving so the fan-out genuinely
// recomputes (and re-pushes) instead of hitting the result cache, and
// the hit traffic keeps the cached path honest alongside.
var mixPresets = map[string]string{
	"append-heavy": "append=8,inc=1,hit=1",
	"shard":        "shard=5,append=2,hit=1",
}

// parseMix parses "hit=4,cold=2,append=1" into weighted entries; a
// preset name ("append-heavy") expands to its definition first.
func parseMix(s string) ([]mixEntry, error) {
	if preset, ok := mixPresets[strings.TrimSpace(s)]; ok {
		s = preset
	}
	var out []mixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		op, w, found := strings.Cut(part, "=")
		weight := 1
		if found {
			n, err := strconv.Atoi(w)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("mix weight %q is not a non-negative integer", part)
			}
			weight = n
		}
		if !knownOps[op] {
			return nil, fmt.Errorf("unknown op %q (have hit, cold, append, inc, async, shard)", op)
		}
		if weight > 0 {
			out = append(out, mixEntry{op, weight})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("mix %q selects no operations", s)
	}
	return out, nil
}

// pick draws an op from the mix with the worker's rng.
func pick(mix []mixEntry, total int, rng *rand.Rand) string {
	n := rng.Intn(total)
	for _, m := range mix {
		if n < m.weight {
			return m.op
		}
		n -= m.weight
	}
	return mix[len(mix)-1].op
}

// run executes the whole benchmark: generate data, register datasets,
// warm the cache, drive the closed loop, and assemble the report. It is
// the unit the smoke test calls directly.
func run(ctx context.Context, cfg config) (*report, error) {
	mix, err := parseMix(cfg.mix)
	if err != nil {
		return nil, err
	}
	total := 0
	needAppend := false
	for _, m := range mix {
		total += m.weight
		if m.op == "append" || m.op == "inc" || m.op == "shard" {
			needAppend = true
		}
	}

	c := client.New(cfg.addr, client.WithRetryPolicy(client.RetryPolicy{
		MaxAttempts: cfg.maxAttempts,
		BaseDelay:   25 * time.Millisecond,
		MaxDelay:    2 * time.Second,
	}))
	if err := c.Health(ctx); err != nil {
		return nil, fmt.Errorf("server not healthy at %s: %w", cfg.addr, err)
	}

	// The static dataset serves hit/cold/async; the append dataset gives
	// append/inc a cache-invalidation battleground of their own.
	static, err := registerGenerated(ctx, c, "loadgen-static", cfg, 1)
	if err != nil {
		return nil, err
	}
	appendID := ""
	if needAppend {
		app, err := registerGenerated(ctx, c, "loadgen-append", cfg, 2)
		if err != nil {
			return nil, err
		}
		appendID = app
	}
	// Warm the hit path so its first request is already a cache hit.
	if _, err := c.Discover(ctx, wire.DiscoverRequest{Dataset: static}); err != nil && !errors.Is(err, client.ErrPartial) {
		return nil, fmt.Errorf("warmup discover: %w", err)
	}

	before, _ := scrapeMetrics(ctx, c)

	col := newCollector(mix)
	var coldSeq, appendSeq int64
	var seqMu sync.Mutex
	nextSeq := func(p *int64) int64 {
		seqMu.Lock()
		defer seqMu.Unlock()
		*p++
		return *p
	}

	start := time.Now()
	deadline, cancel := context.WithTimeout(ctx, cfg.duration)
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)))
			for deadline.Err() == nil {
				op := pick(mix, total, rng)
				t0 := time.Now()
				outcome := execute(deadline, c, op, static, appendID, cfg, nextSeq, &coldSeq, &appendSeq, rng)
				if outcome == "canceled" {
					return // duration elapsed mid-request; don't count it
				}
				col.record(op, outcome, time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &report{
		Generated:   time.Now().UTC().Format(time.RFC3339),
		Addr:        cfg.addr,
		Concurrency: cfg.concurrency,
		Mix:         cfg.mix,
		Rows:        cfg.rows,
		Attrs:       cfg.attrs,
		Seed:        cfg.seed,
		DurationMS:  float64(elapsed) / float64(time.Millisecond),
		Latency:     summarize(col.all),
		Ops:         col.ops,
	}
	for _, st := range col.ops {
		st.Latency = summarize(st.latencies)
		rep.Requests += st.Requests
		rep.Errors += st.Errors
		rep.Rejected += st.Rejected
		rep.Partials += st.Partials
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(rep.Requests) / elapsed.Seconds()
	}
	if stats, err := c.Stats(ctx); err == nil {
		rep.ServerStats = stats
	}
	if build, err := c.Version(ctx); err == nil {
		rep.ServerBuild = build
	}
	if after, err := scrapeMetrics(ctx, c); err == nil && before != nil {
		rep.MetricsDelta = metricsDelta(before, after)
	}
	return rep, nil
}

// scrapeMetrics fetches and parses the server's /metrics exposition.
func scrapeMetrics(ctx context.Context, c *client.Client) (map[string]float64, error) {
	raw, err := c.MetricsText(ctx)
	if err != nil {
		return nil, err
	}
	series, err := obs.ParseText(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	return obs.SeriesMap(series), nil
}

// metricsDelta is after minus before per series, zero deltas dropped —
// gauges that returned to rest (in-flight, running jobs) vanish, so the
// map reads as "what this run did".
func metricsDelta(before, after map[string]float64) map[string]float64 {
	out := make(map[string]float64)
	for k, v := range after {
		if d := v - before[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// execute performs one operation and classifies its outcome.
func execute(ctx context.Context, c *client.Client, op, static, appendID string, cfg config,
	nextSeq func(*int64) int64, coldSeq, appendSeq *int64, rng *rand.Rand) string {
	var err error
	switch op {
	case "hit":
		_, err = c.Discover(ctx, wire.DiscoverRequest{Dataset: static})
	case "cold":
		// A unique epsilon keys a fresh cache entry per request, so the
		// TANE pipeline runs from scratch every time.
		eps := float64(nextSeq(coldSeq)) * 1e-9
		_, err = c.Discover(ctx, wire.DiscoverRequest{Dataset: static, Algorithm: "tane", Epsilon: eps})
	case "async":
		var job *wire.JobInfo
		job, err = c.DiscoverAsync(ctx, wire.DiscoverRequest{Dataset: static, Algorithm: "depminer2"})
		if err == nil && job.State != wire.JobDone {
			_, err = c.WaitJob(ctx, job.ID)
		}
	case "append":
		row := make([]string, cfg.attrs)
		n := nextSeq(appendSeq)
		for i := range row {
			// Fresh values per append keep the dataset growing without
			// colliding into rows the generator already produced.
			row[i] = fmt.Sprintf("app-%d-%d", n, i)
		}
		_, err = c.Append(ctx, appendID, [][]string{row})
	case "inc":
		_, err = c.Discover(ctx, wire.DiscoverRequest{Dataset: appendID, Algorithm: "incremental"})
	case "shard":
		// Shards is left 0 — a coordinator fans out over its default
		// topology, a single-node server just runs depminer — so the
		// preset is usable against both.
		_, err = c.Discover(ctx, wire.DiscoverRequest{Dataset: appendID, Algorithm: "depminer"})
	}
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, client.ErrPartial):
		return "partial"
	case errors.Is(err, client.ErrTooManyRequests):
		return "rejected"
	case ctx.Err() != nil:
		return "canceled"
	default:
		return "error"
	}
}

// registerGenerated registers a deterministic synthetic relation and
// returns its dataset id. Distinct salts make distinct datasets from the
// same -seed.
func registerGenerated(ctx context.Context, c *client.Client, name string, cfg config, salt uint64) (string, error) {
	r, err := datagen.Generate(datagen.Spec{
		Attrs:       cfg.attrs,
		Rows:        cfg.rows,
		Correlation: 0.3,
		Seed:        uint64(cfg.seed) + salt,
	})
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		return "", err
	}
	reg, err := c.Register(ctx, name, buf.Bytes())
	if err != nil {
		return "", fmt.Errorf("register %s: %w", name, err)
	}
	return reg.ID, nil
}

// printHuman writes the terminal summary.
func printHuman(rep *report) {
	fmt.Printf("loadgen: %d requests in %.1fs against %s (%d workers, mix %s)\n",
		rep.Requests, rep.DurationMS/1000, rep.Addr, rep.Concurrency, rep.Mix)
	fmt.Printf("  throughput  %.1f req/s\n", rep.ThroughputRPS)
	fmt.Printf("  outcomes    %d ok, %d partial, %d rejected, %d errors\n",
		rep.Requests-rep.Partials-rep.Rejected-rep.Errors, rep.Partials, rep.Rejected, rep.Errors)
	fmt.Printf("  latency ms  p50 %.2f  p95 %.2f  p99 %.2f  max %.2f\n",
		rep.Latency.P50, rep.Latency.P95, rep.Latency.P99, rep.Latency.Max)
	ops := make([]string, 0, len(rep.Ops))
	for op := range rep.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		st := rep.Ops[op]
		fmt.Printf("  %-7s %6d req  p50 %8.2f  p99 %8.2f  (%d partial, %d rejected, %d errors)\n",
			op, st.Requests, st.Latency.P50, st.Latency.P99, st.Partials, st.Rejected, st.Errors)
	}
	if s := rep.ServerStats; s != nil {
		fmt.Printf("  server      jobs: %d admitted, %d rejected, peak %d/%d; cache: %d hits, %d misses\n",
			s.Jobs.Admitted, s.Jobs.Rejected, s.Jobs.PeakRunning, s.Jobs.Cap, s.Cache.Hits, s.Cache.Misses)
	}
	if b := rep.ServerBuild; b != nil {
		fmt.Printf("  build       %s (revision %s, %s)\n", b.Version, b.Revision, b.GoVersion)
	}
	if n := len(rep.MetricsDelta); n > 0 {
		fmt.Printf("  metrics     %d series moved during the run (full delta in the JSON report)\n", n)
	}
}

func main() {
	cfg := config{}
	flag.StringVar(&cfg.addr, "addr", "http://127.0.0.1:8080", "depminerd base URL")
	flag.IntVar(&cfg.concurrency, "concurrency", 8, "closed-loop workers (each runs one request at a time)")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "how long to generate load")
	flag.StringVar(&cfg.mix, "mix", "hit=4,cold=2,append=1,inc=1,async=1", "weighted operation mix (op=weight,...) or a preset name (append-heavy, shard)")
	flag.IntVar(&cfg.rows, "rows", 200, "rows in the generated datasets")
	flag.IntVar(&cfg.attrs, "attrs", 6, "attributes in the generated datasets")
	flag.Int64Var(&cfg.seed, "seed", 1, "deterministic dataset and mix-draw seed")
	flag.IntVar(&cfg.maxAttempts, "retries", 6, "client retry budget per request (1 disables retries)")
	flag.BoolVar(&cfg.jsonOut, "json", false, "emit the JSON report (BENCH_LOAD.json schema) to stdout instead of the summary")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := run(ctx, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	if cfg.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
	} else {
		printHuman(rep)
	}
	if rep.Errors > 0 {
		os.Exit(2)
	}
}
