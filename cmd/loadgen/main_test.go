package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/server"
)

// TestRunSmoke drives the full closed loop for a second against an
// in-process depminerd at a small admission cap and asserts the contract
// CI relies on: requests flowed, none ended outside the
// ok/partial/rejected classes, and the report round-trips through JSON
// with scalar top-level requests/errors fields (what scripts/jsonfield
// reads one level deep).
func TestRunSmoke(t *testing.T) {
	srv, err := server.New(server.Config{MaxJobs: 2, RetryAfter: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	rep, err := run(context.Background(), config{
		addr:        ts.URL,
		concurrency: 4,
		duration:    time.Second,
		mix:         "hit=4,cold=2,append=1,inc=1,async=1",
		rows:        50,
		attrs:       5,
		seed:        1,
		maxAttempts: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Errors != 0 {
		t.Fatalf("%d unexpected errors: %+v", rep.Errors, rep.Ops)
	}
	if rep.Latency == nil || rep.Latency.Count == 0 {
		t.Fatal("no latency samples recorded")
	}
	if rep.Latency.P50 > rep.Latency.P99 || rep.Latency.P99 > rep.Latency.Max {
		t.Fatalf("percentiles not monotone: %+v", rep.Latency)
	}
	var sum int64
	for op, st := range rep.Ops {
		if st.Requests != st.OK+st.Partials+st.Rejected+st.Errors {
			t.Fatalf("op %s outcomes don't add up: %+v", op, st)
		}
		sum += st.Requests
	}
	if sum != rep.Requests {
		t.Fatalf("per-op requests %d != total %d", sum, rep.Requests)
	}
	if rep.ServerStats == nil {
		t.Fatal("report missing server stats")
	}

	// The jsonfield contract: requests and errors are scalar top-level
	// fields of the emitted object.
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(raw, &top); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"requests", "errors", "throughput_rps", "latency_ms"} {
		if _, ok := top[field]; !ok {
			t.Fatalf("report has no top-level %q field", field)
		}
	}
	var n int64
	if err := json.Unmarshal(top["requests"], &n); err != nil || n != rep.Requests {
		t.Fatalf("top-level requests = %s (err %v), want %d", top["requests"], err, rep.Requests)
	}
}

// TestRunAppendHeavyDurable drives the append-heavy preset against a
// durable server and asserts the report exposes the WAL group-commit
// evidence CI graphs: durable server stats with acknowledged append
// records and the fsyncs that covered them.
func TestRunAppendHeavyDurable(t *testing.T) {
	srv, err := server.New(server.Config{
		MaxJobs:    2,
		RetryAfter: time.Second,
		DataDir:    t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	rep, err := run(context.Background(), config{
		addr:        ts.URL,
		concurrency: 4,
		duration:    time.Second,
		mix:         "append-heavy",
		rows:        50,
		attrs:       5,
		seed:        1,
		maxAttempts: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d unexpected errors: %+v", rep.Errors, rep.Ops)
	}
	if st := rep.Ops["append"]; st == nil || st.OK == 0 {
		t.Fatalf("append-heavy preset produced no successful appends: %+v", rep.Ops)
	}
	d := rep.ServerStats.Durable
	if d == nil {
		t.Fatal("durable server stats missing from report")
	}
	if d.AppendRecords == 0 || d.Syncs == 0 {
		t.Fatalf("no WAL activity recorded: %+v", d)
	}
	// Group commit never fsyncs more often than once per record.
	if d.Syncs > d.AppendRecords {
		t.Fatalf("more syncs (%d) than append records (%d)", d.Syncs, d.AppendRecords)
	}
}

// TestParseMix pins the -mix grammar.
func TestParseMix(t *testing.T) {
	mix, err := parseMix("hit=4, cold=2 ,append=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 3 || mix[0].op != "hit" || mix[0].weight != 4 {
		t.Fatalf("mix = %+v", mix)
	}
	if _, err := parseMix("warp=1"); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := parseMix("hit=-1"); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := parseMix("hit=0"); err == nil {
		t.Fatal("empty effective mix accepted")
	}
	if mix, err := parseMix("async"); err != nil || len(mix) != 1 || mix[0].weight != 1 {
		t.Fatalf("bare op: mix = %+v, err = %v", mix, err)
	}
	preset, err := parseMix("append-heavy")
	if err != nil {
		t.Fatal(err)
	}
	if len(preset) != 3 || preset[0].op != "append" || preset[0].weight != 8 {
		t.Fatalf("append-heavy preset = %+v", preset)
	}
}

// TestSummarize pins the nearest-rank percentile definition.
func TestSummarize(t *testing.T) {
	s := summarize([]float64{5, 1, 4, 2, 3})
	if s.Count != 5 || s.P50 != 3 || s.Max != 5 || s.Mean != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P99 != 5 {
		t.Fatalf("p99 of 5 samples = %v, want the max", s.P99)
	}
	if z := summarize(nil); z.Count != 0 || z.P50 != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
}
