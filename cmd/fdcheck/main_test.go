package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), errRun
}

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckAllHold(t *testing.T) {
	csv := write(t, "d.csv", "a,b,c\n1,x,p\n2,x,p\n3,y,q\n")
	rules := write(t, "r.txt", "# rules\na -> b\na -> c\nb -> c\n")
	out, err := capture(t, func() error {
		return run(context.Background(), rules, false, true, time.Minute, 0, []string{csv})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "3/3 rules hold") {
		t.Errorf("output:\n%s", out)
	}
	if !strings.Contains(out, "via ") {
		t.Errorf("-explain produced no derivations:\n%s", out)
	}
}

func TestCheckViolationWitness(t *testing.T) {
	// b -> a fails: tuples 1 and 2 share b=x but differ on a.
	csv := write(t, "d.csv", "a,b\n1,x\n2,x\n")
	rules := write(t, "r.txt", "b -> a\n")
	out, err := capture(t, func() error {
		return run(context.Background(), rules, false, false, time.Minute, 0, []string{csv})
	})
	if err == nil || !strings.Contains(err.Error(), "violated") {
		t.Errorf("err = %v, want rules-violated sentinel", err)
	}
	if !strings.Contains(out, "FAIL  b → a") {
		t.Errorf("output:\n%s", out)
	}
	if !strings.Contains(out, "tuples 1 and 2 agree on the LHS") {
		t.Errorf("witness missing:\n%s", out)
	}
}

func TestCheckErrors(t *testing.T) {
	csv := write(t, "d.csv", "a,b\n1,x\n")
	if err := run(context.Background(), "", false, false, time.Minute, 0, []string{csv}); err == nil {
		t.Error("missing -fds accepted")
	}
	if err := run(context.Background(), csv, false, false, time.Minute, 0, nil); err == nil {
		t.Error("missing csv accepted")
	}
	bad := write(t, "bad.txt", "not a rule\n")
	if _, err := capture(t, func() error {
		return run(context.Background(), bad, false, false, time.Minute, 0, []string{csv})
	}); err == nil {
		t.Error("unparseable rules accepted")
	}
	unknown := write(t, "u.txt", "z -> a\n")
	if _, err := capture(t, func() error {
		return run(context.Background(), unknown, false, false, time.Minute, 0, []string{csv})
	}); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestFindViolation(t *testing.T) {
	r, err := depminer.NewRelation([]string{"a", "b"},
		[][]string{{"1", "x"}, {"2", "y"}, {"1", "z"}})
	if err != nil {
		t.Fatal(err)
	}
	rule, err := depminer.ParseFD("a -> b", r.Names())
	if err != nil {
		t.Fatal(err)
	}
	ti, tj := findViolation(r, rule)
	if ti != 0 || tj != 2 {
		t.Errorf("witness = (%d,%d), want (0,2)", ti, tj)
	}
	holds, err := depminer.ParseFD("b -> a", r.Names())
	if err != nil {
		t.Fatal(err)
	}
	if ti, tj := findViolation(r, holds); ti != -1 || tj != -1 {
		t.Errorf("witness for holding rule = (%d,%d)", ti, tj)
	}
}
