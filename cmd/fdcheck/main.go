// Command fdcheck verifies a file of functional dependencies against a
// CSV relation, and explains implied dependencies.
//
// Usage:
//
//	fdcheck -fds rules.txt data.csv
//
// rules.txt holds one dependency per line ("customer -> city"; '#'
// comments allowed). Each rule is checked directly against the data; for
// rules that fail, fdcheck reports a violating pair of tuples. With
// -explain, rules that hold are additionally explained from the
// discovered canonical cover (a derivation chain of minimal FDs).
//
// Exit codes: 0 all rules hold, 1 bad input or error, 2 some rules are
// violated, 3 budget/deadline exceeded during -explain discovery, 130
// interrupted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/cli"
)

// errRulesViolated distinguishes "some rules failed" (exit 2) from
// operational errors (exit 1).
var errRulesViolated = errors.New("some rules are violated")

func main() {
	var (
		fdsPath  = flag.String("fds", "", "file of dependencies to check (required)")
		noHeader = flag.Bool("no-header", false, "treat the first CSV record as data")
		explain  = flag.Bool("explain", false, "derive holding rules from the discovered minimal cover")
		timeout  = flag.Duration("timeout", 2*time.Hour, "discovery deadline for -explain")
		budget   = flag.Int64("budget", 0, "resource budget in work units for -explain discovery (0 = unlimited)")
	)
	flag.Parse()
	cli.Main("fdcheck", func(ctx context.Context) error {
		err := run(ctx, *fdsPath, *noHeader, *explain, *timeout, *budget, flag.Args())
		if errors.Is(err, errRulesViolated) {
			return cli.WithExitCode(err, cli.ExitChecked)
		}
		return err
	})
}

func run(ctx context.Context, fdsPath string, noHeader, explain bool, timeout time.Duration, budget int64, args []string) error {
	if fdsPath == "" {
		return fmt.Errorf("-fds is required")
	}
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one CSV file")
	}
	r, err := depminer.LoadCSVFile(args[0], !noHeader)
	if err != nil {
		return err
	}
	f, err := os.Open(fdsPath)
	if err != nil {
		return err
	}
	defer f.Close()
	rules, err := depminer.ParseCover(f, r.Names())
	if err != nil {
		return err
	}

	var cover depminer.Cover
	if explain {
		l := depminer.Limits{Units: budget}
		if timeout > 0 {
			l.Deadline = time.Now().Add(timeout)
		}
		var b *depminer.Budget
		if l.Units > 0 || !l.Deadline.IsZero() {
			b = depminer.NewBudget(l)
		}
		res, err := depminer.Discover(ctx, r, depminer.Options{Armstrong: depminer.ArmstrongNone, Budget: b})
		if err != nil {
			// A partial cover cannot explain anything soundly; fail the
			// run with the governed error (exit code 3).
			return err
		}
		cover = res.FDs
	}

	failed := 0
	for _, rule := range rules {
		if ok, _ := depminer.Verify(r, depminer.Cover{rule}); !ok {
			failed++
			ti, tj := findViolation(r, rule)
			fmt.Printf("FAIL  %s\n", rule.Names(r.Names()))
			fmt.Printf("      tuples %d and %d agree on the LHS but differ on %s (%q vs %q)\n",
				ti+1, tj+1, r.Name(rule.RHS), r.Value(ti, rule.RHS), r.Value(tj, rule.RHS))
			continue
		}
		fmt.Printf("ok    %s\n", rule.Names(r.Names()))
		if explain {
			chain, ok := cover.Derivation(rule.LHS, rule.RHS, r.Arity())
			switch {
			case !ok:
				// Cannot happen: the canonical cover implies dep(r).
				fmt.Println("      (no derivation found)")
			case len(chain) == 0:
				fmt.Println("      trivial (RHS is part of the LHS)")
			default:
				for _, step := range chain {
					fmt.Printf("      via %s\n", step.Names(r.Names()))
				}
			}
		}
	}
	fmt.Printf("\n%d/%d rules hold\n", len(rules)-failed, len(rules))
	if failed > 0 {
		return errRulesViolated
	}
	return nil
}

// findViolation locates a witnessing tuple pair for a failing rule.
func findViolation(r *depminer.Relation, rule depminer.FD) (int, int) {
	type firstSeen struct{ tuple, code int }
	groups := map[string]firstSeen{}
	for t := 0; t < r.Rows(); t++ {
		key := ""
		rule.LHS.ForEach(func(a int) {
			key += r.Value(t, a) + "\x00"
		})
		if prev, ok := groups[key]; ok {
			if prev.code != r.Code(t, rule.RHS) {
				return prev.tuple, t
			}
		} else {
			groups[key] = firstSeen{t, r.Code(t, rule.RHS)}
		}
	}
	return -1, -1
}
