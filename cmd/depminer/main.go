// Command depminer discovers minimal functional dependencies and a
// real-world Armstrong relation from a CSV relation — the full Dep-Miner
// pipeline of the paper.
//
// Usage:
//
//	depminer [flags] file.csv
//
// With no file, the paper's 7-tuple running example is used.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
)

func main() {
	var (
		noHeader  = flag.Bool("no-header", false, "treat the first CSV record as data, not attribute names")
		algo      = flag.String("algo", "depminer", "agree-set algorithm: depminer (alg. 2), depminer2 (alg. 3), fastfds, naive")
		armstrong = flag.String("armstrong", "auto", "armstrong relation: auto (real-world with synthetic fallback), real, synthetic, none")
		stream    = flag.Bool("stream", false, "one-pass bounded-memory mode: build stripped partitions while reading; no Armstrong relation")
		timeout   = flag.Duration("timeout", 2*time.Hour, "abort discovery after this long (the paper's cutoff)")
		workers   = flag.Int("workers", 0, "worker-pool width for the parallel pipeline phases: 0 = all cores, 1 = sequential (output is identical for every value)")
		stats     = flag.Bool("stats", false, "print per-phase timings and counters")
		keysFlag  = flag.Bool("keys", false, "also print the relation's minimal candidate keys")
		names     = flag.Bool("names", true, "print FDs with attribute names (false: letter notation)")
	)
	flag.Parse()
	var err error
	if *stream {
		err = runStreamed(*noHeader, *algo, *timeout, *workers, *names, flag.Args())
	} else {
		err = run(*noHeader, *algo, *armstrong, *timeout, *workers, *stats, *keysFlag, *names, flag.Args())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "depminer:", err)
		os.Exit(1)
	}
}

// runStreamed is the bounded-memory path: CSV → stripped partitions → FDs.
func runStreamed(noHeader bool, algoName string, timeout time.Duration, workers int, useNames bool, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("-stream requires exactly one input file")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	db, err := depminer.StreamCSV(f, !noHeader)
	if err != nil {
		return err
	}
	opts := depminer.Options{Workers: workers}
	switch algoName {
	case "depminer":
		opts.Algorithm = depminer.DepMiner
	case "depminer2":
		opts.Algorithm = depminer.DepMiner2
	default:
		return fmt.Errorf("-stream supports -algo depminer or depminer2, not %q", algoName)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	res, err := depminer.DiscoverStreamed(ctx, db, opts)
	if err != nil {
		return err
	}
	fmt.Printf("%d tuples × %d attributes → %d minimal functional dependencies\n\n",
		db.DB.NumRows, db.DB.Arity(), len(res.FDs))
	for _, fdep := range res.FDs {
		if useNames {
			fmt.Println(fdep.Names(db.Names))
		} else {
			fmt.Println(fdep.String())
		}
	}
	return nil
}

func run(noHeader bool, algoName, armName string, timeout time.Duration, workers int, stats, showKeys, useNames bool, args []string) error {
	var r *depminer.Relation
	var err error
	switch len(args) {
	case 0:
		r = depminer.PaperExample()
		fmt.Println("(no input file: using the paper's running example)")
	case 1:
		r, err = depminer.LoadCSVFile(args[0], !noHeader)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("expected at most one input file, got %d", len(args))
	}

	if algoName == "fastfds" {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		res, err := depminer.DiscoverFastFDs(ctx, r)
		if err != nil {
			return err
		}
		fmt.Printf("%d tuples × %d attributes → %d minimal functional dependencies (FastFDs)\n\n",
			r.Rows(), r.Arity(), len(res.FDs))
		for _, f := range res.FDs {
			if useNames {
				fmt.Println(f.Names(r.Names()))
			} else {
				fmt.Println(f.String())
			}
		}
		if stats {
			fmt.Printf("\nDFS nodes=%d elapsed=%v\n", res.Nodes, res.Elapsed)
		}
		return nil
	}

	opts := depminer.Options{Workers: workers}
	switch algoName {
	case "depminer":
		opts.Algorithm = depminer.DepMiner
	case "depminer2":
		opts.Algorithm = depminer.DepMiner2
	case "naive":
		opts.Algorithm = depminer.NaiveBaseline
	default:
		return fmt.Errorf("unknown -algo %q", algoName)
	}
	switch armName {
	case "auto":
		opts.Armstrong = depminer.ArmstrongRealWorldOrSynthetic
	case "real":
		opts.Armstrong = depminer.ArmstrongRealWorld
	case "synthetic":
		opts.Armstrong = depminer.ArmstrongSynthetic
	case "none":
		opts.Armstrong = depminer.ArmstrongNone
	default:
		return fmt.Errorf("unknown -armstrong %q", armName)
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	res, err := depminer.Discover(ctx, r, opts)
	if err != nil {
		return err
	}

	fmt.Printf("%d tuples × %d attributes → %d minimal functional dependencies\n\n",
		r.Rows(), r.Arity(), len(res.FDs))
	for _, f := range res.FDs {
		if useNames {
			fmt.Println(f.Names(r.Names()))
		} else {
			fmt.Println(f.String())
		}
	}

	if res.Armstrong != nil {
		kind := "real-world"
		if res.ArmstrongSynthetic {
			kind = "synthetic (real-world construction impossible: not enough distinct values)"
		}
		fmt.Printf("\nArmstrong relation (%s, %d tuples — 1:%d sample):\n\n",
			kind, res.Armstrong.Rows(), max(1, r.Rows()/max(1, res.Armstrong.Rows())))
		fmt.Print(res.Armstrong.String())
	}

	if showKeys {
		kr, err := depminer.DiscoverKeys(ctx, r)
		if err != nil {
			return err
		}
		fmt.Printf("\n%d minimal candidate keys:\n", len(kr.Keys))
		for _, k := range kr.Keys {
			fmt.Println("  (" + k.Names(r.Names(), ", ") + ")")
		}
	}

	if stats {
		fmt.Printf("\ncolumn profile:\n%s", r.SummaryString())
		fmt.Printf("\nphases: partitions=%v agree-sets=%v max-sets=%v lhs=%v armstrong=%v\n",
			res.Timings.Partition, res.Timings.AgreeSets, res.Timings.MaxSets,
			res.Timings.LHS, res.Timings.Armstrong)
		fmt.Printf("couples=%d chunks=%d |ag(r)|=%d |MAX(dep(r))|=%d\n",
			res.Couples, res.Chunks, len(res.AgreeSets), len(res.MaxSets))
	}
	return nil
}
