// Command depminer discovers minimal functional dependencies and a
// real-world Armstrong relation from a CSV relation — the full Dep-Miner
// pipeline of the paper.
//
// Usage:
//
//	depminer [flags] file.csv
//
// With no file, the paper's 7-tuple running example is used.
//
// Exit codes: 0 success, 1 bad input or error, 3 budget/deadline exceeded
// (partial results are printed first), 130 interrupted.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/cli"
)

// config carries the resolved command-line configuration.
type config struct {
	noHeader      bool
	algo          string
	armstrong     string
	timeout       time.Duration
	budget        int64
	maxCouples    int
	workers       int
	maxAgreeBytes int64
	spillDir      string
	stats         bool
	showKeys      bool
	useNames      bool
	args          []string
}

func main() {
	cfg := config{}
	var stream, snapshot bool
	flag.BoolVar(&cfg.noHeader, "no-header", false, "treat the first CSV record as data, not attribute names")
	flag.StringVar(&cfg.algo, "algo", "depminer", "agree-set algorithm: depminer (alg. 2), depminer2 (alg. 3), fastfds, naive")
	flag.StringVar(&cfg.armstrong, "armstrong", "auto", "armstrong relation: auto (real-world with synthetic fallback), real, synthetic, none")
	flag.BoolVar(&stream, "stream", false, "one-pass bounded-memory mode: build stripped partitions while reading; no Armstrong relation")
	flag.BoolVar(&snapshot, "snapshot", false, "treat the input file as a durable DMSNAP1 snapshot and stream it column by column (out-of-core read path)")
	flag.DurationVar(&cfg.timeout, "timeout", 2*time.Hour, "deadline for discovery (the paper's cutoff); on expiry partial results are printed and the exit code is 3")
	flag.Int64Var(&cfg.budget, "budget", 0, "resource budget in work units (couples + agree sets + candidate-level widths); 0 = unlimited; on overrun partial results are printed and the exit code is 3")
	flag.IntVar(&cfg.maxCouples, "max-couples", 0, "couple threshold above which -algo depminer degrades to depminer2 (0 = never degrade)")
	flag.IntVar(&cfg.workers, "workers", 0, "worker-pool width for the parallel pipeline phases: 0 = all cores, 1 = sequential (output is identical for every value)")
	flag.Int64Var(&cfg.maxAgreeBytes, "max-agree-bytes", 0, "resident agree-set bytes per worker pool before sorted runs spill to disk (0 = in-memory; the cover is identical either way)")
	flag.StringVar(&cfg.spillDir, "spill-dir", "", "directory for spilled agree-set runs (empty = system temp dir)")
	flag.BoolVar(&cfg.stats, "stats", false, "print per-phase timings and counters")
	flag.BoolVar(&cfg.showKeys, "keys", false, "also print the relation's minimal candidate keys")
	flag.BoolVar(&cfg.useNames, "names", true, "print FDs with attribute names (false: letter notation)")
	flag.Parse()
	cfg.args = flag.Args()

	cli.Main("depminer", func(ctx context.Context) error {
		if snapshot {
			return cfg.runSnapshot(ctx)
		}
		if stream {
			return cfg.runStreamed(ctx)
		}
		return cfg.run(ctx)
	})
}

// newBudget builds the run's budget from -timeout and -budget. A zero
// timeout means no deadline; the guard deadline (rather than a context
// deadline) lets an over-time run surface its partial results.
func (cfg *config) newBudget() *depminer.Budget {
	l := depminer.Limits{Units: cfg.budget}
	if cfg.timeout > 0 {
		l.Deadline = time.Now().Add(cfg.timeout)
	}
	if l.Units == 0 && l.Deadline.IsZero() {
		return nil
	}
	return depminer.NewBudget(l)
}

// algoOption maps -algo to the agree-set algorithm for the streamed
// paths, which support the two Dep-Miner variants only.
func algoOption(algo string) (depminer.Algorithm, error) {
	switch algo {
	case "depminer":
		return depminer.DepMiner, nil
	case "depminer2":
		return depminer.DepMiner2, nil
	default:
		return 0, fmt.Errorf("this mode supports -algo depminer or depminer2, not %q", algo)
	}
}

// runSnapshot is the fully out-of-core path: a durable DMSNAP1 snapshot
// is streamed column by column into stripped partitions, and with
// -max-agree-bytes the agree-set phase spills sorted runs to disk — the
// relation is never resident.
func (cfg *config) runSnapshot(ctx context.Context) error {
	if len(cfg.args) != 1 {
		return fmt.Errorf("-snapshot requires exactly one snapshot file")
	}
	opts := depminer.Options{
		Workers:       cfg.workers,
		Budget:        cfg.newBudget(),
		MaxCouples:    cfg.maxCouples,
		MaxAgreeBytes: cfg.maxAgreeBytes,
		SpillDir:      cfg.spillDir,
	}
	var err error
	if opts.Algorithm, err = algoOption(cfg.algo); err != nil {
		return err
	}
	res, names, rerr := depminer.DiscoverFromSnapshot(ctx, cfg.args[0], opts)
	if rerr != nil && (res == nil || !res.Partial) {
		return rerr
	}
	if rerr != nil {
		fmt.Fprintf(os.Stderr, "depminer: partial results (%v)\n", rerr)
	}
	fmt.Printf("%d attributes → %d minimal functional dependencies\n\n",
		len(names), len(res.FDs))
	for _, fdep := range res.FDs {
		if cfg.useNames {
			fmt.Println(fdep.Names(names))
		} else {
			fmt.Println(fdep.String())
		}
	}
	if cfg.stats {
		sp := res.Stats.Spill
		fmt.Printf("\ncouples=%d |ag(r)|=%d |MAX(dep(r))|=%d\n",
			res.Couples, len(res.AgreeSets), len(res.MaxSets))
		fmt.Printf("spill: runs=%d sets=%d bytes=%d merged=%d blocks=%d\n",
			sp.RunsSpilled, sp.SpilledSets, sp.SpilledBytes, sp.MergedRuns, sp.ReadBlocks)
	}
	return rerr
}

// runStreamed is the bounded-memory path: CSV → stripped partitions → FDs.
func (cfg *config) runStreamed(ctx context.Context) error {
	if len(cfg.args) != 1 {
		return fmt.Errorf("-stream requires exactly one input file")
	}
	f, err := os.Open(cfg.args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	db, err := depminer.StreamCSV(f, !cfg.noHeader)
	if err != nil {
		return err
	}
	opts := depminer.Options{
		Workers:       cfg.workers,
		Budget:        cfg.newBudget(),
		MaxCouples:    cfg.maxCouples,
		MaxAgreeBytes: cfg.maxAgreeBytes,
		SpillDir:      cfg.spillDir,
	}
	if opts.Algorithm, err = algoOption(cfg.algo); err != nil {
		return err
	}
	res, rerr := depminer.DiscoverStreamed(ctx, db, opts)
	if rerr != nil && (res == nil || !res.Partial) {
		return rerr
	}
	if rerr != nil {
		fmt.Fprintf(os.Stderr, "depminer: partial results (%v)\n", rerr)
	}
	fmt.Printf("%d tuples × %d attributes → %d minimal functional dependencies\n\n",
		db.DB.NumRows, db.DB.Arity(), len(res.FDs))
	for _, fdep := range res.FDs {
		if cfg.useNames {
			fmt.Println(fdep.Names(db.Names))
		} else {
			fmt.Println(fdep.String())
		}
	}
	return rerr
}

func (cfg *config) run(ctx context.Context) error {
	var r *depminer.Relation
	var err error
	switch len(cfg.args) {
	case 0:
		r = depminer.PaperExample()
		fmt.Println("(no input file: using the paper's running example)")
	case 1:
		r, err = depminer.LoadCSVFile(cfg.args[0], !cfg.noHeader)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("expected at most one input file, got %d", len(cfg.args))
	}

	budget := cfg.newBudget()
	if cfg.algo == "fastfds" {
		res, rerr := depminer.DiscoverFastFDsOpts(ctx, r, depminer.FastFDsOptions{Budget: budget})
		if rerr != nil && (res == nil || !res.Partial) {
			return rerr
		}
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "depminer: partial results (%v)\n", rerr)
		}
		fmt.Printf("%d tuples × %d attributes → %d minimal functional dependencies (FastFDs)\n\n",
			r.Rows(), r.Arity(), len(res.FDs))
		for _, f := range res.FDs {
			if cfg.useNames {
				fmt.Println(f.Names(r.Names()))
			} else {
				fmt.Println(f.String())
			}
		}
		if cfg.stats {
			fmt.Printf("\nDFS nodes=%d elapsed=%v\n", res.Nodes, res.Elapsed)
		}
		return rerr
	}

	opts := depminer.Options{
		Workers:       cfg.workers,
		Budget:        budget,
		MaxCouples:    cfg.maxCouples,
		MaxAgreeBytes: cfg.maxAgreeBytes,
		SpillDir:      cfg.spillDir,
	}
	switch cfg.algo {
	case "depminer":
		opts.Algorithm = depminer.DepMiner
	case "depminer2":
		opts.Algorithm = depminer.DepMiner2
	case "naive":
		opts.Algorithm = depminer.NaiveBaseline
	default:
		return fmt.Errorf("unknown -algo %q", cfg.algo)
	}
	switch cfg.armstrong {
	case "auto":
		opts.Armstrong = depminer.ArmstrongRealWorldOrSynthetic
	case "real":
		opts.Armstrong = depminer.ArmstrongRealWorld
	case "synthetic":
		opts.Armstrong = depminer.ArmstrongSynthetic
	case "none":
		opts.Armstrong = depminer.ArmstrongNone
	default:
		return fmt.Errorf("unknown -armstrong %q", cfg.armstrong)
	}

	res, rerr := depminer.Discover(ctx, r, opts)
	if rerr != nil && (res == nil || !res.Partial) {
		return rerr
	}
	if rerr != nil {
		fmt.Fprintf(os.Stderr, "depminer: partial results (%v)\n", rerr)
	}

	for _, note := range res.Notes {
		fmt.Fprintln(os.Stderr, "depminer: note:", note)
	}
	fmt.Printf("%d tuples × %d attributes → %d minimal functional dependencies\n\n",
		r.Rows(), r.Arity(), len(res.FDs))
	for _, f := range res.FDs {
		if cfg.useNames {
			fmt.Println(f.Names(r.Names()))
		} else {
			fmt.Println(f.String())
		}
	}

	if res.Armstrong != nil {
		kind := "real-world"
		if res.ArmstrongSynthetic {
			kind = "synthetic (real-world construction impossible: not enough distinct values)"
		}
		fmt.Printf("\nArmstrong relation (%s, %d tuples — 1:%d sample):\n\n",
			kind, res.Armstrong.Rows(), max(1, r.Rows()/max(1, res.Armstrong.Rows())))
		fmt.Print(res.Armstrong.String())
	}

	if cfg.showKeys && rerr == nil {
		kr, kerr := depminer.DiscoverKeysOpts(ctx, r, depminer.KeysOptions{Budget: budget})
		if kerr != nil && (kr == nil || !kr.Partial) {
			return kerr
		}
		if kerr != nil {
			fmt.Fprintf(os.Stderr, "depminer: partial keys (%v)\n", kerr)
			rerr = kerr
		}
		fmt.Printf("\n%d minimal candidate keys:\n", len(kr.Keys))
		for _, k := range kr.Keys {
			fmt.Println("  (" + k.Names(r.Names(), ", ") + ")")
		}
	}

	if cfg.stats {
		fmt.Printf("\ncolumn profile:\n%s", r.SummaryString())
		fmt.Printf("\nphases: partitions=%v agree-sets=%v max-sets=%v lhs=%v armstrong=%v\n",
			res.Timings.Partition, res.Timings.AgreeSets, res.Timings.MaxSets,
			res.Timings.LHS, res.Timings.Armstrong)
		fmt.Printf("couples=%d chunks=%d |ag(r)|=%d |MAX(dep(r))|=%d\n",
			res.Couples, res.Chunks, len(res.AgreeSets), len(res.MaxSets))
		if sp := res.Stats.Spill; cfg.maxAgreeBytes > 0 || sp.RunsSpilled > 0 {
			fmt.Printf("spill: runs=%d sets=%d bytes=%d merged=%d blocks=%d\n",
				sp.RunsSpilled, sp.SpilledSets, sp.SpilledBytes, sp.MergedRuns, sp.ReadBlocks)
		}
		if budget != nil {
			fmt.Printf("budget: used=%d\n", budget.Used())
		}
	}
	return rerr
}
