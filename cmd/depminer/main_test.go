package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), errRun
}

func paperCSV(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "paper.csv")
	data := "empnum,depnum,year,depname,mgr\n" +
		"1,1,85,Biochemistry,5\n1,5,94,Admission,12\n2,2,92,Computer Sce,2\n" +
		"3,2,98,Computer Sce,2\n4,3,98,Geophysics,2\n5,1,75,Biochemistry,5\n6,5,88,Admission,12\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPaperExample(t *testing.T) {
	out, err := capture(t, func() error {
		cfg := config{algo: "depminer", armstrong: "auto", timeout: time.Minute, stats: true, showKeys: true, useNames: true}
		return cfg.run(context.Background())
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"14 minimal functional dependencies",
		"depnum,year → empnum",
		"Armstrong relation (real-world, 4 tuples",
		"candidate keys",
		"couples=6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunCSVFile(t *testing.T) {
	csv := paperCSV(t)
	for _, algo := range []string{"depminer", "depminer2", "naive", "fastfds"} {
		out, err := capture(t, func() error {
			cfg := config{algo: algo, armstrong: "none", timeout: time.Minute, args: []string{csv}}
			return cfg.run(context.Background())
		})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(out, "BC → A") {
			t.Errorf("%s: output missing BC → A:\n%s", algo, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := capture(t, func() error {
		cfg := config{algo: "bogus", armstrong: "auto", timeout: time.Minute, useNames: true}
		return cfg.run(context.Background())
	}); err == nil {
		t.Error("unknown algo accepted")
	}
	if _, err := capture(t, func() error {
		cfg := config{algo: "depminer", armstrong: "bogus", timeout: time.Minute, useNames: true}
		return cfg.run(context.Background())
	}); err == nil {
		t.Error("unknown armstrong mode accepted")
	}
	if _, err := capture(t, func() error {
		cfg := config{algo: "depminer", armstrong: "auto", timeout: time.Minute, useNames: true, args: []string{"a", "b"}}
		return cfg.run(context.Background())
	}); err == nil {
		t.Error("two files accepted")
	}
	if _, err := capture(t, func() error {
		cfg := config{algo: "depminer", armstrong: "auto", timeout: time.Minute, useNames: true, args: []string{"/nonexistent.csv"}}
		return cfg.run(context.Background())
	}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunStreamed(t *testing.T) {
	csv := paperCSV(t)
	out, err := capture(t, func() error {
		cfg := config{algo: "depminer2", timeout: time.Minute, useNames: true, args: []string{csv}}
		return cfg.runStreamed(context.Background())
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "14 minimal functional dependencies") {
		t.Errorf("streamed output wrong:\n%s", out)
	}
	if _, err := capture(t, func() error {
		cfg := config{algo: "fastfds", timeout: time.Minute, useNames: true, args: []string{csv}}
		return cfg.runStreamed(context.Background())
	}); err == nil {
		t.Error("-stream with fastfds accepted")
	}
	if _, err := capture(t, func() error {
		cfg := config{algo: "depminer", timeout: time.Minute, useNames: true}
		return cfg.runStreamed(context.Background())
	}); err == nil {
		t.Error("-stream without file accepted")
	}
}
