// Command depminerd is the FD-discovery server: a long-running HTTP
// (JSON) daemon owning a dataset registry, an admission-controlled job
// queue, a fingerprint-keyed result cache, and incremental discovery
// sessions — the serving layer composing every pipeline in this
// repository into one process.
//
// Usage:
//
//	depminerd -addr 127.0.0.1:8080
//
// Endpoints (see README "Running the server" for curl examples):
//
//	POST /v1/datasets            register a CSV relation (?name=, ?header=)
//	GET  /v1/datasets            list registered datasets
//	GET  /v1/datasets/{id}       one dataset's info
//	POST /v1/datasets/{id}/rows  append headerless CSV rows incrementally
//	POST /v1/discover            run (or fetch cached) FD discovery
//	GET  /v1/jobs/{id}           poll an async discovery job
//	GET  /v1/stats               queue, cache, phase-timing, pstore counters
//	GET  /healthz                liveness + drain state
//
// SIGINT/SIGTERM starts a graceful drain: in-flight discoveries finish
// under their budgets while new work is refused; a second signal kills
// the process (the internal/cli signal contract). A clean drain exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/server"
)

// config carries the resolved command-line configuration.
type config struct {
	addr         string
	drainTimeout time.Duration
	server       server.Config
}

func main() {
	cfg := config{}
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "how long a graceful shutdown waits for in-flight discoveries")
	flag.IntVar(&cfg.server.MaxJobs, "max-jobs", 4, "cap on concurrently running discoveries; excess requests get 429 + Retry-After")
	flag.DurationVar(&cfg.server.RetryAfter, "retry-after", time.Second, "delay hinted in 429 Retry-After headers (rendered as RFC 9110 delta-seconds, min 1)")
	flag.IntVar(&cfg.server.SyncRowLimit, "sync-rows", 5000, "datasets up to this many rows run /v1/discover synchronously; larger ones become async jobs")
	flag.DurationVar(&cfg.server.MaxTimeout, "max-timeout", 2*time.Minute, "cap (and default) for per-request discovery deadlines")
	flag.Int64Var(&cfg.server.MaxBudgetUnits, "max-budget", 0, "cap (and default) for per-request guard unit budgets; 0 = ungoverned by units")
	flag.Int64Var(&cfg.server.MaxBodyBytes, "max-body-bytes", 32<<20, "cap on request bodies (CSV uploads)")
	flag.IntVar(&cfg.server.MaxDatasets, "max-datasets", 64, "cap on registered datasets")
	flag.IntVar(&cfg.server.CacheEntries, "cache-entries", 128, "cap on result-cache entries (LRU)")
	flag.IntVar(&cfg.server.Workers, "workers", 0, "default worker-pool width for discoveries (0 = all cores)")
	flag.Int64Var(&cfg.server.MaxAgreeBytes, "max-agree-bytes", 0, "cap (and default) for resident agree-set bytes per discovery; past it sorted runs spill to disk (0 = in-memory)")
	flag.StringVar(&cfg.server.SpillDir, "spill-dir", "", "directory for spilled agree-set runs (empty = system temp dir)")
	flag.StringVar(&cfg.server.DataDir, "data-dir", "", "data directory for durable datasets (WAL + snapshots, recovered on boot); empty = memory-only")
	fsync := flag.Bool("fsync", true, "fsync every acknowledged write (durable mode only); false trades crash-durability of the latest appends for speed")
	flag.IntVar(&cfg.server.SnapshotEvery, "snapshot-every", 0, "WAL records per dataset before background compaction into a snapshot (0 = default 256, negative = never)")
	workerEndpoints := flag.String("workers-endpoints", "", "comma-separated worker depminerd base URLs; non-empty makes this server a shard coordinator for depminer/depminer2 discoveries")
	shardRole := flag.String("shard-role", "", "optional role sanity check: \"coordinator\" requires -workers-endpoints, \"worker\" forbids it (empty = no check)")
	flag.IntVar(&cfg.server.DefaultShards, "shards", 0, "default shard count for coordinated discoveries (0 = one shard per worker endpoint)")
	flag.Parse()
	cfg.server.DisableFsync = !*fsync
	if *workerEndpoints != "" {
		cfg.server.WorkerEndpoints = strings.Split(*workerEndpoints, ",")
	}
	switch *shardRole {
	case "":
	case "coordinator":
		if len(cfg.server.WorkerEndpoints) == 0 {
			fmt.Fprintln(os.Stderr, "depminerd: -shard-role coordinator requires -workers-endpoints")
			os.Exit(2)
		}
	case "worker":
		if len(cfg.server.WorkerEndpoints) != 0 {
			fmt.Fprintln(os.Stderr, "depminerd: -shard-role worker must not set -workers-endpoints")
			os.Exit(2)
		}
	default:
		fmt.Fprintf(os.Stderr, "depminerd: unknown -shard-role %q (coordinator or worker)\n", *shardRole)
		os.Exit(2)
	}

	cli.Main("depminerd", func(ctx context.Context) error {
		return run(ctx, cfg, func(addr string) {
			fmt.Printf("depminerd: listening on http://%s\n", addr)
		})
	})
}

// run serves until ctx is cancelled (the signal context), then drains.
// ready is called with the bound address once the listener is up — the
// smoke tests and -addr :0 users discover the port from it.
func run(ctx context.Context, cfg config, ready func(addr string)) error {
	srv, err := server.New(cfg.server)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}
	if ready != nil {
		ready(ln.Addr().String())
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case serr := <-errc:
		return serr
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "depminerd: draining (in-flight discoveries finish under their budgets; signal again to kill)")
	dctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	derr := srv.Shutdown(dctx)
	herr := hs.Shutdown(dctx)
	if herr != nil && !errors.Is(herr, http.ErrServerClosed) {
		derr = errors.Join(derr, herr)
	}
	// A clean drain after a signal is the daemon's normal exit: code 0.
	return derr
}
