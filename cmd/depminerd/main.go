// Command depminerd is the FD-discovery server: a long-running HTTP
// (JSON) daemon owning a dataset registry, an admission-controlled job
// queue, a fingerprint-keyed result cache, and incremental discovery
// sessions — the serving layer composing every pipeline in this
// repository into one process.
//
// Usage:
//
//	depminerd -addr 127.0.0.1:8080
//
// Endpoints (see README "Running the server" for curl examples):
//
//	POST /v1/datasets            register a CSV relation (?name=, ?header=)
//	GET  /v1/datasets            list registered datasets
//	GET  /v1/datasets/{id}       one dataset's info
//	POST /v1/datasets/{id}/rows  append headerless CSV rows incrementally
//	POST /v1/discover            run (or fetch cached) FD discovery
//	GET  /v1/jobs/{id}           poll an async discovery job
//	GET  /v1/stats               queue, cache, phase-timing, pstore counters
//	GET  /v1/version             build identity (module version, VCS revision)
//	GET  /metrics                Prometheus text exposition of the same counters
//	GET  /healthz                pure process liveness (200 even mid-drain)
//	GET  /readyz                 readiness: 503 while draining or durably degraded
//
// Structured logs go to stderr; -log-level/-log-format layer over the
// DEPMINER_LOG_LEVEL/DEPMINER_LOG_FORMAT environment. -pprof-addr serves
// /debug/pprof on a separate listener (off by default).
//
// SIGINT/SIGTERM starts a graceful drain: in-flight discoveries finish
// under their budgets while new work is refused; a second signal kills
// the process (the internal/cli signal contract). A clean drain exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/server"
)

// config carries the resolved command-line configuration.
type config struct {
	addr         string
	pprofAddr    string
	drainTimeout time.Duration
	log          obs.Config
	server       server.Config
}

func main() {
	cfg := config{}
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "how long a graceful shutdown waits for in-flight discoveries")
	flag.IntVar(&cfg.server.MaxJobs, "max-jobs", 4, "cap on concurrently running discoveries; excess requests get 429 + Retry-After")
	flag.DurationVar(&cfg.server.RetryAfter, "retry-after", time.Second, "delay hinted in 429 Retry-After headers (rendered as RFC 9110 delta-seconds, min 1)")
	flag.IntVar(&cfg.server.SyncRowLimit, "sync-rows", 5000, "datasets up to this many rows run /v1/discover synchronously; larger ones become async jobs")
	flag.DurationVar(&cfg.server.MaxTimeout, "max-timeout", 2*time.Minute, "cap (and default) for per-request discovery deadlines")
	flag.Int64Var(&cfg.server.MaxBudgetUnits, "max-budget", 0, "cap (and default) for per-request guard unit budgets; 0 = ungoverned by units")
	flag.Int64Var(&cfg.server.MaxBodyBytes, "max-body-bytes", 32<<20, "cap on request bodies (CSV uploads)")
	flag.IntVar(&cfg.server.MaxDatasets, "max-datasets", 64, "cap on registered datasets")
	flag.IntVar(&cfg.server.CacheEntries, "cache-entries", 128, "cap on result-cache entries (LRU)")
	flag.IntVar(&cfg.server.Workers, "workers", 0, "default worker-pool width for discoveries (0 = all cores)")
	flag.Int64Var(&cfg.server.MaxAgreeBytes, "max-agree-bytes", 0, "cap (and default) for resident agree-set bytes per discovery; past it sorted runs spill to disk (0 = in-memory)")
	flag.StringVar(&cfg.server.SpillDir, "spill-dir", "", "directory for spilled agree-set runs (empty = system temp dir)")
	flag.StringVar(&cfg.server.DataDir, "data-dir", "", "data directory for durable datasets (WAL + snapshots, recovered on boot); empty = memory-only")
	fsync := flag.Bool("fsync", true, "fsync every acknowledged write (durable mode only); false trades crash-durability of the latest appends for speed")
	flag.IntVar(&cfg.server.SnapshotEvery, "snapshot-every", 0, "WAL records per dataset before background compaction into a snapshot (0 = default 256, negative = never)")
	workerEndpoints := flag.String("workers-endpoints", "", "comma-separated worker depminerd base URLs; non-empty makes this server a shard coordinator for depminer/depminer2 discoveries")
	shardRole := flag.String("shard-role", "", "optional role sanity check: \"coordinator\" requires -workers-endpoints, \"worker\" forbids it (empty = no check)")
	flag.IntVar(&cfg.server.DefaultShards, "shards", 0, "default shard count for coordinated discoveries (0 = one shard per worker endpoint)")
	flag.StringVar(&cfg.log.Level, "log-level", "", "log level: debug, info, warn, error (empty = $DEPMINER_LOG_LEVEL, else info)")
	flag.StringVar(&cfg.log.Format, "log-format", "", "log format: text or json (empty = $DEPMINER_LOG_FORMAT, else text)")
	flag.StringVar(&cfg.pprofAddr, "pprof-addr", "", "listen address for /debug/pprof (empty = profiling off)")
	version := flag.Bool("version", false, "print the build identity and exit")
	flag.Parse()
	if *version {
		b := obs.Build()
		dirty := ""
		if b.Dirty {
			dirty = ", dirty"
		}
		fmt.Printf("depminerd %s (revision %s%s, %s)\n", b.Version, b.Revision, dirty, b.GoVersion)
		return
	}
	cfg.server.DisableFsync = !*fsync
	if *workerEndpoints != "" {
		cfg.server.WorkerEndpoints = strings.Split(*workerEndpoints, ",")
	}
	switch *shardRole {
	case "":
	case "coordinator":
		if len(cfg.server.WorkerEndpoints) == 0 {
			fmt.Fprintln(os.Stderr, "depminerd: -shard-role coordinator requires -workers-endpoints")
			os.Exit(2)
		}
	case "worker":
		if len(cfg.server.WorkerEndpoints) != 0 {
			fmt.Fprintln(os.Stderr, "depminerd: -shard-role worker must not set -workers-endpoints")
			os.Exit(2)
		}
	default:
		fmt.Fprintf(os.Stderr, "depminerd: unknown -shard-role %q (coordinator or worker)\n", *shardRole)
		os.Exit(2)
	}

	cli.Main("depminerd", func(ctx context.Context) error {
		return run(ctx, cfg, func(addr string) {
			fmt.Printf("depminerd: listening on http://%s\n", addr)
		})
	})
}

// run serves until ctx is cancelled (the signal context), then drains.
// ready is called with the bound address once the listener is up — the
// smoke tests and -addr :0 users discover the port from it.
func run(ctx context.Context, cfg config, ready func(addr string)) error {
	// Flags layer over the environment: an explicit -log-level wins, an
	// unset one keeps $DEPMINER_LOG_LEVEL's answer, and info/text is the
	// final fallback.
	logger, err := obs.NewLogger(os.Stderr, cfg.log.Layer(obs.ConfigFromEnv()))
	if err != nil {
		return err
	}
	cfg.server.Logger = logger
	srv, err := server.New(cfg.server)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}
	if ready != nil {
		ready(ln.Addr().String())
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	// The profiling surface is opt-in and on its own listener: operator
	// tooling, never part of the API address.
	var ps *http.Server
	if cfg.pprofAddr != "" {
		pln, perr := net.Listen("tcp", cfg.pprofAddr)
		if perr != nil {
			return fmt.Errorf("pprof listener: %w", perr)
		}
		ps = &http.Server{Handler: obs.PprofMux(), ReadHeaderTimeout: 5 * time.Second}
		logger.Info("pprof listening", slog.String("addr", pln.Addr().String()))
		go func() {
			if serr := ps.Serve(pln); serr != nil && !errors.Is(serr, http.ErrServerClosed) {
				logger.Error("pprof server failed", slog.String("error", serr.Error()))
			}
		}()
	}

	select {
	case serr := <-errc:
		return serr
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "depminerd: draining (in-flight discoveries finish under their budgets; signal again to kill)")
	dctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	derr := srv.Shutdown(dctx)
	herr := hs.Shutdown(dctx)
	if herr != nil && !errors.Is(herr, http.ErrServerClosed) {
		derr = errors.Join(derr, herr)
	}
	if ps != nil {
		_ = ps.Shutdown(dctx)
	}
	// A clean drain after a signal is the daemon's normal exit: code 0.
	return derr
}
