package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestRunServesAndDrains boots the daemon on an ephemeral port, drives
// one register → discover round trip over real HTTP, then cancels the
// context and expects a clean (nil-error) drain.
func TestRunServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	addrc := make(chan string, 1)
	errc := make(chan error, 1)
	cfg := config{addr: "127.0.0.1:0", drainTimeout: 10 * time.Second}
	go func() {
		errc <- run(ctx, cfg, func(addr string) { addrc <- addr })
	}()

	var base string
	select {
	case addr := <-addrc:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}

	csv := "a,b,c\n1,x,p\n2,x,q\n3,y,p\n"
	resp, err = http.Post(base+"/v1/datasets?name=t", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	var reg struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatalf("register decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || reg.ID == "" {
		t.Fatalf("register status = %d id = %q", resp.StatusCode, reg.ID)
	}

	body := fmt.Sprintf(`{"dataset":%q}`, reg.ID)
	resp, err = http.Post(base+"/v1/discover", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("discover: %v", err)
	}
	var disc struct {
		FDs []string `json:"fds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&disc); err != nil {
		t.Fatalf("discover decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(disc.FDs) == 0 {
		t.Fatalf("discover status = %d fds = %v", resp.StatusCode, disc.FDs)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("drain returned error: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain")
	}
}
