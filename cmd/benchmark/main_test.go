package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), errRun
}

func TestRunList(t *testing.T) {
	out, err := capture(t, func() error {
		return run(context.Background(), "list", false, time.Minute, 1, runKnobs{}, "", true)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table3", "table4", "table5", "figure2", "figure7"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s", id)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := capture(t, func() error {
		return run(context.Background(), "tableX", false, time.Minute, 1, runKnobs{}, "", true)
	}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestProject(t *testing.T) {
	res := &bench.Result{
		Config: bench.Config{
			RowCounts:  []int{10, 20},
			AttrCounts: []int{3, 5, 7},
		},
		Cells: [][]*bench.Cell{
			{{Attrs: 3}, {Attrs: 5}, {Attrs: 7}},
			{{Attrs: 3}, {Attrs: 5}, {Attrs: 7}},
		},
	}
	p := project(res, []int{3, 7})
	if len(p.Config.AttrCounts) != 2 {
		t.Fatalf("projected attrs = %v", p.Config.AttrCounts)
	}
	for ri := range p.Cells {
		if len(p.Cells[ri]) != 2 || p.Cells[ri][0].Attrs != 3 || p.Cells[ri][1].Attrs != 7 {
			t.Fatalf("projection wrong: %+v", p.Cells[ri])
		}
	}
}

// TestProfileFlags checks that -cpuprofile/-memprofile produce valid
// pprof files (gzip-compressed protobuf — magic 0x1f 0x8b) and -trace a
// non-empty execution trace, around a real unit of work.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	trc := filepath.Join(dir, "trace.out")
	stop, err := startProfiles(profileOpts{cpu: cpu, mem: mem, trace: trc})
	if err != nil {
		t.Fatal(err)
	}
	// A real unit of work so the profiles have something to say.
	if _, err := capture(t, func() error {
		return run(context.Background(), "list", false, time.Minute, 1, runKnobs{}, "", true)
	}); err != nil {
		stop()
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
			t.Errorf("%s: not a gzip-compressed pprof profile (starts % x)", p, data[:min(4, len(data))])
		}
	}
	data, err := os.ReadFile(trc)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Errorf("%s: empty execution trace", trc)
	}
}

// TestProfileFlagsBadPath checks that an uncreatable profile path fails
// up front instead of half-starting profilers.
func TestProfileFlagsBadPath(t *testing.T) {
	if _, err := startProfiles(profileOpts{cpu: filepath.Join(t.TempDir(), "no", "such", "dir", "x")}); err == nil {
		t.Error("bad cpuprofile path accepted")
	}
}

// TestRunTinyExperimentEndToEnd exercises the full path with a shrunken
// grid by temporarily pointing the quick grid at a micro workload via the
// experiment machinery (uses figure3, whose grid is the table grid).
func TestRunTinyExperimentEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real grid")
	}
	csvPath := filepath.Join(t.TempDir(), "cells.csv")
	out, err := capture(t, func() error {
		return run(context.Background(), "table3", false, 30*time.Second, 1, runKnobs{}, csvPath, true)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 3", "Dep-Miner 2", "shape checks:", "Armstrong"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "c,rows,attrs") {
		t.Errorf("csv header wrong: %q", string(data[:40]))
	}
}
