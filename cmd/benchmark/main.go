// Command benchmark regenerates the tables and figures of the paper's
// evaluation (§5.3): execution times of Dep-Miner, Dep-Miner 2 and TANE,
// and real-world Armstrong relation sizes, over the synthetic workload
// grid.
//
// Usage:
//
//	benchmark -experiment table3            # quick (laptop) grid
//	benchmark -experiment figure5 -full     # the paper's 100k × 60 grid
//	benchmark -experiment all -csv out.csv  # everything, plus raw CSV
//
// Absolute times differ from the paper's 350 MHz testbed; the shape checks
// printed after each experiment verify the qualitative claims instead.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/cli"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (table3..5, figure2..7) or 'all' or 'list'")
		full       = flag.Bool("full", false, "run the paper-scale grid (100k tuples × 60 attrs) instead of the quick grid")
		timeout    = flag.Duration("timeout", 2*time.Hour, "per-algorithm-run cutoff producing '*' cells, as in the paper")
		seed       = flag.Uint64("seed", 1, "dataset seed")
		workers    = flag.Int("workers", 0, "worker-pool width for every algorithm's parallel phases: 0 = all cores, 1 = sequential (results identical, only times change)")
		agreeBytes = flag.Int64("max-agree-bytes", 0, "resident agree-set bytes before the Dep-Miner pipelines spill sorted runs to disk (0 = in-memory; results identical, only times change)")
		spillDir   = flag.String("spill-dir", "", "directory for spilled agree-set runs (empty = system temp dir)")
		csvOut     = flag.String("csv", "", "also append raw cell measurements as CSV to this file")
		quiet      = flag.Bool("quiet", false, "suppress per-cell progress lines")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProf    = flag.String("memprofile", "", "write a heap profile at exit to this file (go tool pprof)")
		traceOut   = flag.String("trace", "", "write a runtime execution trace to this file (go tool trace)")
	)
	flag.Parse()
	cli.Main("benchmark", func(ctx context.Context) error {
		stopProf, err := startProfiles(profileOpts{cpu: *cpuProf, mem: *memProf, trace: *traceOut})
		if err != nil {
			return err
		}
		err = run(ctx, *experiment, *full, *timeout, *seed, runKnobs{
			workers:       *workers,
			maxAgreeBytes: *agreeBytes,
			spillDir:      *spillDir,
		}, *csvOut, *quiet)
		// Profiles must be finalised before the process exits, and written
		// even when the run fails — a governed overrun is exactly when a
		// profile is wanted.
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
		return err
	})
}

// profileOpts names the output files of the requested profilers; empty
// fields disable the corresponding profiler.
type profileOpts struct {
	cpu, mem, trace string
}

// startProfiles starts the requested CPU profiler and execution tracer
// and returns a stop function that finishes them and writes the heap
// profile. The stop function must run before the process exits.
func startProfiles(o profileOpts) (func() error, error) {
	var stops []func() error
	stopAll := func() error {
		var first error
		for i := len(stops) - 1; i >= 0; i-- {
			if err := stops[i](); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	if o.cpu != "" {
		f, err := os.Create(o.cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		stops = append(stops, func() error {
			pprof.StopCPUProfile()
			return f.Close()
		})
	}
	if o.trace != "" {
		f, err := os.Create(o.trace)
		if err != nil {
			stopAll()
			return nil, err
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			stopAll()
			return nil, fmt.Errorf("trace: %w", err)
		}
		stops = append(stops, func() error {
			trace.Stop()
			return f.Close()
		})
	}
	if o.mem != "" {
		stops = append(stops, func() error {
			f, err := os.Create(o.mem)
			if err != nil {
				return err
			}
			runtime.GC() // materialise up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("memprofile: %w", err)
			}
			return f.Close()
		})
	}
	return stopAll, nil
}

// runKnobs are the performance knobs threaded into every grid config;
// none of them changes results, only times.
type runKnobs struct {
	workers       int
	maxAgreeBytes int64
	spillDir      string
}

func (k runKnobs) apply(cfg *bench.Config) {
	cfg.Workers = k.workers
	cfg.MaxAgreeBytes = k.maxAgreeBytes
	cfg.SpillDir = k.spillDir
}

func run(ctx context.Context, id string, full bool, timeout time.Duration, seed uint64, knobs runKnobs, csvOut string, quiet bool) error {
	if id == "list" {
		for _, e := range bench.Experiments {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return nil
	}
	var selected []bench.Experiment
	if id == "all" {
		selected = bench.Experiments
	} else {
		for _, part := range strings.Split(id, ",") {
			e, ok := bench.Lookup(strings.TrimSpace(part))
			if !ok {
				return fmt.Errorf("unknown experiment %q (try -experiment list)", part)
			}
			selected = append(selected, e)
		}
	}

	var csvFile *os.File
	if csvOut != "" {
		f, err := os.OpenFile(csvOut, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		csvFile = f
	}

	// Grid runs are cached by correlation: every table and its figures
	// share one grid, so "all" runs three grids, not nine.
	type key struct {
		c    float64
		full bool
	}
	cache := map[key]*bench.Result{}

	for _, e := range selected {
		cfg := bench.ConfigFor(e, full, timeout, seed)
		knobs.apply(&cfg)
		if !quiet {
			cfg.Progress = func(s string) { fmt.Fprintln(os.Stderr, "  "+s) }
		}
		k := key{e.Correlation, full}
		res, ok := cache[k]
		// A cached table grid covers figure projections (figure-time
		// uses a subset of attribute columns).
		if ok && e.Kind == "figure-time" {
			res = project(res, cfg.AttrCounts)
		} else if !ok {
			// Run the widest grid (table layout) so figures can reuse it.
			tableCfg := bench.ConfigFor(bench.Experiment{Correlation: e.Correlation, Kind: "table"}, full, timeout, seed)
			knobs.apply(&tableCfg)
			tableCfg.Progress = cfg.Progress
			fmt.Fprintf(os.Stderr, "running grid c=%.0f%% (%d×%d cells)...\n",
				e.Correlation*100, len(tableCfg.RowCounts), len(tableCfg.AttrCounts))
			fullRes, err := bench.Run(ctx, tableCfg)
			if err != nil {
				return err
			}
			cache[k] = fullRes
			res = fullRes
			if e.Kind == "figure-time" {
				res = project(fullRes, cfg.AttrCounts)
			}
		}

		fmt.Printf("\n=== %s ===\n\n", e.Title)
		fmt.Print(bench.Format(e, res))
		if e.Kind == "table" {
			fmt.Println("\nshape checks:")
			for _, s := range bench.ShapeChecks(res) {
				fmt.Println("  " + s)
			}
		}
		if csvFile != nil {
			if _, err := csvFile.WriteString(bench.CSV(res)); err != nil {
				return err
			}
		}
	}
	return nil
}

// project restricts a grid result to a subset of its attribute columns.
func project(res *bench.Result, attrs []int) *bench.Result {
	idx := make([]int, 0, len(attrs))
	for _, a := range attrs {
		for ai, have := range res.Config.AttrCounts {
			if have == a {
				idx = append(idx, ai)
			}
		}
	}
	out := &bench.Result{Config: res.Config}
	out.Config.AttrCounts = attrs
	out.Cells = make([][]*bench.Cell, len(res.Cells))
	for ri := range res.Cells {
		row := make([]*bench.Cell, 0, len(idx))
		for _, ai := range idx {
			row = append(row, res.Cells[ri][ai])
		}
		out.Cells[ri] = row
	}
	return out
}
