package depminer

import (
	"context"
	"strings"
	"testing"
)

// TestPublicAPIQuickstart walks the documented quick-start path end to
// end through the public surface only.
func TestPublicAPIQuickstart(t *testing.T) {
	r := PaperExample()
	res, err := Discover(context.Background(), r, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FDs) != 14 {
		t.Fatalf("FDs = %d, want 14", len(res.FDs))
	}
	if res.Armstrong == nil || res.Armstrong.Rows() != 4 {
		t.Fatal("Armstrong relation missing")
	}
	ok, bad := Verify(r, res.FDs)
	if !ok {
		t.Fatalf("discovered FD %s does not hold", bad)
	}
	rendered := res.FDs[0].Names(r.Names())
	if !strings.Contains(rendered, "→") {
		t.Errorf("rendered FD = %q", rendered)
	}
}

func TestPublicAPITANEAgreesWithDepMiner(t *testing.T) {
	r := PaperExample()
	dm, err := Discover(context.Background(), r, Options{Armstrong: ArmstrongNone})
	if err != nil {
		t.Fatal(err)
	}
	tn, err := DiscoverTANE(context.Background(), r, TANEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dm.FDs) != len(tn.FDs) {
		t.Fatalf("Dep-Miner %d FDs, TANE %d", len(dm.FDs), len(tn.FDs))
	}
	for i := range dm.FDs {
		if dm.FDs[i] != tn.FDs[i] {
			t.Fatalf("FD %d differs: %s vs %s", i, dm.FDs[i], tn.FDs[i])
		}
	}
}

func TestPublicAPICSVAndGenerate(t *testing.T) {
	r, err := LoadCSV(strings.NewReader("a,b\n1,x\n2,x\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows() != 2 {
		t.Fatal("csv load broken")
	}
	g, err := Generate(GenerateSpec{Attrs: 5, Rows: 200, Correlation: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Discover(context.Background(), g, Options{Algorithm: DepMiner2})
	if err != nil {
		t.Fatal(err)
	}
	if ok, bad := Verify(g, res.FDs); !ok {
		t.Fatalf("FD %s violated on generated data", bad)
	}
	if res.Armstrong == nil {
		t.Fatal("Armstrong relation missing")
	}
	if res.Armstrong.Rows() >= g.Rows() {
		t.Errorf("Armstrong relation (%d rows) not smaller than input (%d)",
			res.Armstrong.Rows(), g.Rows())
	}
}

func TestPublicAPINormalization(t *testing.T) {
	r := PaperExample()
	res, err := Discover(context.Background(), r, Options{Armstrong: ArmstrongNone})
	if err != nil {
		t.Fatal(err)
	}
	dec := SynthesizeThreeNF(res.FDs, r.Arity())
	if len(dec.Schemas) == 0 {
		t.Fatal("no 3NF schemas")
	}
	bc, err := DecomposeBCNF(res.FDs, r.Arity())
	if err != nil {
		t.Fatal(err)
	}
	if len(bc.Schemas) == 0 {
		t.Fatal("no BCNF schemas")
	}
}

func TestPublicAPIArmstrongBuilders(t *testing.T) {
	r := PaperExample()
	res, err := Discover(context.Background(), r, Options{Armstrong: ArmstrongNone})
	if err != nil {
		t.Fatal(err)
	}
	rw, err := RealWorldArmstrong(r, res.MaxSets)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := SyntheticArmstrong(res.MaxSets, r.Names())
	if err != nil {
		t.Fatal(err)
	}
	if rw.Rows() != syn.Rows() {
		t.Error("both constructions must have |MAX|+1 tuples")
	}
}
