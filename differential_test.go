package depminer

// Cross-algorithm differential harness: five independent miners — the two
// Dep-Miner variants, the naive pairwise baseline, FastFDs and TANE — must
// produce the identical canonical cover on every input, and the parallel
// execution layer must produce a byte-identical Result for every worker
// count. Each miner takes a different route to dep(r) (stripped-partition
// couples, identifier intersection, direct tuple pairs, difference-set DFS,
// levelwise lattice search), so agreement across seeded random relations is
// strong evidence of correctness without a ground truth.

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
)

// miners enumerates every FD-discovery entry point of the public API as a
// name → canonical-cover function.
var miners = []struct {
	name string
	run  func(context.Context, *Relation) (Cover, error)
}{
	{"depminer/couples", func(ctx context.Context, r *Relation) (Cover, error) {
		res, err := Discover(ctx, r, Options{Algorithm: DepMiner, Armstrong: ArmstrongNone})
		if err != nil {
			return nil, err
		}
		return res.FDs, nil
	}},
	{"depminer/identifiers", func(ctx context.Context, r *Relation) (Cover, error) {
		res, err := Discover(ctx, r, Options{Algorithm: DepMiner2, Armstrong: ArmstrongNone})
		if err != nil {
			return nil, err
		}
		return res.FDs, nil
	}},
	{"naive", func(ctx context.Context, r *Relation) (Cover, error) {
		res, err := Discover(ctx, r, Options{Algorithm: NaiveBaseline, Armstrong: ArmstrongNone})
		if err != nil {
			return nil, err
		}
		return res.FDs, nil
	}},
	{"fastfds", func(ctx context.Context, r *Relation) (Cover, error) {
		res, err := DiscoverFastFDs(ctx, r)
		if err != nil {
			return nil, err
		}
		return res.FDs, nil
	}},
	{"tane", func(ctx context.Context, r *Relation) (Cover, error) {
		res, err := DiscoverTANE(ctx, r, TANEOptions{})
		if err != nil {
			return nil, err
		}
		return res.FDs, nil
	}},
}

// assertMinersAgree runs every miner on r and fails unless all covers are
// identical (same FDs, same canonical order) to the first miner's.
func assertMinersAgree(t *testing.T, r *Relation, label string) {
	t.Helper()
	ctx := context.Background()
	var want Cover
	for i, m := range miners {
		got, err := m.run(ctx, r)
		if err != nil {
			t.Fatalf("%s: %s failed: %v", label, m.name, err)
		}
		if i == 0 {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %s found %d FDs, %s found %d:\n%s\nvs\n%s",
				label, m.name, len(got), miners[0].name, len(want), got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%s: %s FD %d = %s, %s has %s",
					label, m.name, j, got[j], miners[0].name, want[j])
			}
		}
	}
	// The agreed cover must actually hold in the relation.
	if ok, bad := Verify(r, want); !ok {
		t.Fatalf("%s: agreed cover contains %s, which does not hold", label, bad)
	}
}

// differentialRelation builds the i-th seeded random relation of the
// harness: small schemas and domains so value collisions (and hence
// non-trivial FDs) are common, with rows occasionally 0 or 1 to pin the
// degenerate inputs where every column is constant.
func differentialRelation(t testing.TB, rng *rand.Rand) *Relation {
	t.Helper()
	attrs := 2 + rng.Intn(5)
	rows := rng.Intn(40)
	rowsData := make([][]string, rows)
	for i := range rowsData {
		rowsData[i] = make([]string, attrs)
		for a := 0; a < attrs; a++ {
			rowsData[i][a] = "v" + strconv.Itoa(rng.Intn(1+rng.Intn(4)))
		}
	}
	names := make([]string, attrs)
	for a := range names {
		names[a] = "c" + strconv.Itoa(a)
	}
	r, err := NewRelation(names, rowsData)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestDifferentialRandomRelations cross-checks all five miners on 50
// seeded random relations.
func TestDifferentialRandomRelations(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	for iter := 0; iter < 50; iter++ {
		r := differentialRelation(t, rng)
		assertMinersAgree(t, r, fmt.Sprintf("iter %d (%d×%d)", iter, r.Rows(), r.Arity()))
	}
}

// TestDifferentialPaperExample cross-checks the miners on the paper's
// running example, whose cover is known by hand.
func TestDifferentialPaperExample(t *testing.T) {
	assertMinersAgree(t, PaperExample(), "paper example")
}

// TestDifferentialGoldenFixture cross-checks the miners on the employees
// fixture, whose cover is pinned in testdata/employees.fds.
func TestDifferentialGoldenFixture(t *testing.T) {
	r, err := LoadCSVFile("testdata/employees.csv", true)
	if err != nil {
		t.Fatal(err)
	}
	assertMinersAgree(t, r, "employees fixture")
}

// discoverFingerprint renders every deterministic field of a Result — the
// cover, all intermediate set families, the counters, and the Armstrong
// relation when built — so two runs can be compared byte-for-byte.
func discoverFingerprint(res *Result) string {
	arm := "<nil>"
	if res.Armstrong != nil {
		arm = res.Armstrong.String()
	}
	return fmt.Sprintf("fds=%v ag=%v max=%v lhs=%v couples=%d chunks=%d synthetic=%t armstrong=%s",
		res.FDs, res.AgreeSets, res.MaxSets, res.LHS,
		res.Couples, res.Chunks, res.ArmstrongSynthetic, arm)
}

// TestDifferentialWorkerCounts pins the tentpole guarantee at the public
// API: Discover with Workers=N yields a byte-identical Result to the
// sequential reference (Workers=1) on the paper example, the golden
// fixture, and 50 seeded random relations.
func TestDifferentialWorkerCounts(t *testing.T) {
	employees, err := LoadCSVFile("testdata/employees.csv", true)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []struct {
		label string
		r     *Relation
	}{
		{"paper example", PaperExample()},
		{"employees fixture", employees},
	}
	rng := rand.New(rand.NewSource(31337))
	for i := 0; i < 50; i++ {
		inputs = append(inputs, struct {
			label string
			r     *Relation
		}{fmt.Sprintf("random %d", i), differentialRelation(t, rng)})
	}

	ctx := context.Background()
	for _, in := range inputs {
		for _, algo := range []Algorithm{DepMiner, DepMiner2} {
			seq, err := Discover(ctx, in.r, Options{Algorithm: algo, Workers: 1})
			if err != nil {
				t.Fatalf("%s %v workers=1: %v", in.label, algo, err)
			}
			want := discoverFingerprint(seq)
			for _, workers := range []int{0, 2, 4, 9} {
				par, err := Discover(ctx, in.r, Options{Algorithm: algo, Workers: workers})
				if err != nil {
					t.Fatalf("%s %v workers=%d: %v", in.label, algo, workers, err)
				}
				if got := discoverFingerprint(par); got != want {
					t.Fatalf("%s %v workers=%d: Result differs from sequential:\n got %s\nwant %s",
						in.label, algo, workers, got, want)
				}
			}
		}
	}
}

// taneFingerprint renders the deterministic fields of a TANE Result: the
// cover and the lattice counters. The partition-store Stats are
// deliberately excluded — hit/miss/recompute counts depend on eviction
// timing and hence worker scheduling; the cover never does.
func taneFingerprint(res *TANEResult) string {
	return fmt.Sprintf("fds=%v nodes=%d levels=%d partial=%t",
		res.FDs, res.LatticeNodes, res.Levels, res.Partial)
}

// TestDifferentialTANEWorkerCounts pins this layer's tentpole guarantee:
// DiscoverTANE yields a byte-identical cover for every Workers value and
// every partition-store cap — including a 1-byte cap under which every
// product is evicted on arrival and recomputed on demand — in both exact
// and approximate mode. The sweep also checks the cap is honoured
// (PeakBytes ≤ cap) and that the tight caps really exercised the
// evict/recompute machinery rather than vacuously passing.
func TestDifferentialTANEWorkerCounts(t *testing.T) {
	employees, err := LoadCSVFile("testdata/employees.csv", true)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []struct {
		label string
		r     *Relation
	}{
		{"paper example", PaperExample()},
		{"employees fixture", employees},
	}
	rng := rand.New(rand.NewSource(271828))
	for i := 0; i < 30; i++ {
		inputs = append(inputs, struct {
			label string
			r     *Relation
		}{fmt.Sprintf("random %d", i), differentialRelation(t, rng)})
	}

	ctx := context.Background()
	var evictions, recomputes int64
	for _, in := range inputs {
		for _, epsilon := range []float64{0, 0.1} {
			seq, err := DiscoverTANE(ctx, in.r, TANEOptions{Epsilon: epsilon, Workers: 1})
			if err != nil {
				t.Fatalf("%s ε=%v workers=1: %v", in.label, epsilon, err)
			}
			want := taneFingerprint(seq)
			for _, workers := range []int{0, 2, 4, 8} {
				for _, cap := range []int64{0, 1, 4096} {
					res, err := DiscoverTANE(ctx, in.r, TANEOptions{
						Epsilon: epsilon, Workers: workers, MaxPartitionBytes: cap,
					})
					if err != nil {
						t.Fatalf("%s ε=%v workers=%d cap=%d: %v", in.label, epsilon, workers, cap, err)
					}
					if got := taneFingerprint(res); got != want {
						t.Fatalf("%s ε=%v workers=%d cap=%d: Result differs from sequential:\n got %s\nwant %s",
							in.label, epsilon, workers, cap, got, want)
					}
					if cap > 0 && res.Stats.PeakBytes > cap {
						t.Fatalf("%s ε=%v workers=%d cap=%d: PeakBytes %d exceeds cap",
							in.label, epsilon, workers, cap, res.Stats.PeakBytes)
					}
					evictions += res.Stats.Evictions
					recomputes += res.Stats.Recomputes
				}
			}
		}
	}
	if evictions == 0 || recomputes == 0 {
		t.Errorf("sweep exercised %d evictions and %d recomputes, want both non-zero", evictions, recomputes)
	}
}

// TestDifferentialKeysWorkerCounts extends the same guarantee to the
// candidate-key search, which shares the worker pool and partition store.
func TestDifferentialKeysWorkerCounts(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(161803))
	inputs := []*Relation{PaperExample()}
	for i := 0; i < 20; i++ {
		inputs = append(inputs, differentialRelation(t, rng))
	}
	for i, r := range inputs {
		seq, err := DiscoverKeysOpts(ctx, r, KeysOptions{Workers: 1})
		if err != nil {
			t.Fatalf("input %d workers=1: %v", i, err)
		}
		want := fmt.Sprintf("keys=%v nodes=%d", seq.Keys, seq.LatticeNodes)
		for _, workers := range []int{0, 2, 8} {
			for _, cap := range []int64{0, 1} {
				res, err := DiscoverKeysOpts(ctx, r, KeysOptions{Workers: workers, MaxPartitionBytes: cap})
				if err != nil {
					t.Fatalf("input %d workers=%d cap=%d: %v", i, workers, cap, err)
				}
				if got := fmt.Sprintf("keys=%v nodes=%d", res.Keys, res.LatticeNodes); got != want {
					t.Fatalf("input %d workers=%d cap=%d:\n got %s\nwant %s", i, workers, cap, got, want)
				}
			}
		}
	}
}

// TestDifferentialStreamedWorkerCounts covers the second public entry
// point of the parallel layer: DiscoverStreamed over a streamed partition
// database.
func TestDifferentialStreamedWorkerCounts(t *testing.T) {
	stream := func(workers int) *Result {
		f, err := os.Open("testdata/employees.csv")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		db, err := StreamCSV(f, true)
		if err != nil {
			t.Fatal(err)
		}
		res, err := DiscoverStreamed(context.Background(), db, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := discoverFingerprint(stream(1))
	for _, workers := range []int{0, 3} {
		if got := discoverFingerprint(stream(workers)); got != want {
			t.Fatalf("streamed workers=%d: Result differs from sequential:\n got %s\nwant %s",
				workers, got, want)
		}
	}
}
