// Incremental maintenance: the paper's closing research direction —
// keeping discovered dependencies current while the database grows,
// without re-reading the data.
//
// The example streams tuples into an IncrementalMiner and watches the
// dependency set tighten: early, with little data, many accidental FDs
// hold; as evidence accumulates, only the real rules survive. Each
// re-derivation costs time proportional to the agree-set family, not to
// the number of tuples inserted so far.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	names := []string{"city", "zip", "state"}
	m, err := depminer.NewIncrementalMiner(names)
	if err != nil {
		log.Fatal(err)
	}

	stream := [][]string{
		{"Springfield", "62701", "IL"},
		{"Springfield", "62702", "IL"},
		{"Portland", "97201", "OR"},
		{"Portland", "04101", "ME"}, // city no longer determines state!
		{"Salem", "97301", "OR"},
		{"Salem", "03079", "NH"},
		{"Columbus", "43004", "OH"},
		{"Columbus", "31901", "GA"},
	}

	ctx := context.Background()
	for i, row := range stream {
		if err := m.Insert(row); err != nil {
			log.Fatal(err)
		}
		cover, err := m.Cover(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("after %d tuples (%v): %d minimal FDs\n", i+1, row, len(cover))
		for _, f := range cover {
			fmt.Println("    " + f.Names(names))
		}
	}

	fmt.Println("\nzip → city and zip → state survive the whole stream; the tempting")
	fmt.Println("city → state is refuted the moment the second Portland arrives —")
	fmt.Println("without ever re-scanning earlier tuples.")

	// The maintained state still supports the full Dep-Miner outputs.
	maxSets, err := m.MaxSets(ctx)
	if err != nil {
		log.Fatal(err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	arm, err := depminer.RealWorldArmstrong(snap, maxSets)
	if err != nil {
		fmt.Printf("\n(real-world Armstrong relation unavailable: %v)\n", err)
		return
	}
	fmt.Printf("\nreal-world Armstrong relation of the stream so far (%d of %d tuples):\n\n",
		arm.Rows(), m.Rows())
	fmt.Println(arm)
}
