// Logical tuning: the dba workflow the paper motivates (§1, §4).
//
// A denormalised orders table mixes order, customer and product facts.
// The example discovers its minimal FDs, shows the real-world Armstrong
// relation a dba would eyeball to decide which dependencies are real
// business rules (vs. accidents of this extension), and then synthesises
// a 3NF schema — splitting customers and products out of the orders
// table — plus the BCNF alternative.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// A classic update-anomaly-ridden table: customer city and product
	// price are repeated per order line.
	r, err := depminer.NewRelation(
		[]string{"order_id", "customer", "city", "product", "price", "qty"},
		[][]string{
			{"1001", "acme", "Lyon", "bolt", "0.10", "500"},
			{"1002", "acme", "Lyon", "nut", "0.05", "500"},
			{"1003", "globex", "Paris", "bolt", "0.10", "120"},
			{"1004", "globex", "Paris", "gear", "4.50", "10"},
			{"1005", "initech", "Lyon", "nut", "0.05", "60"},
			{"1006", "initech", "Lyon", "gear", "4.50", "25"},
			{"1007", "umbrella", "Nice", "bolt", "0.10", "500"},
			{"1008", "hooli", "Paris", "cam", "12.00", "5"},
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	res, err := depminer.Discover(context.Background(), r, depminer.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("discovered %d minimal FDs:\n", len(res.FDs))
	for _, f := range res.FDs {
		fmt.Println("  " + f.Names(r.Names()))
	}

	fmt.Printf("\nreal-world Armstrong relation (%d of %d tuples) — the sample a dba\n"+
		"reviews to spot accidental dependencies:\n\n", res.Armstrong.Rows(), r.Rows())
	fmt.Println(res.Armstrong)

	// Normalising with the raw cover bakes accidental dependencies (like
	// "price determines product", true only in this extension) into the
	// schema. Show that first.
	fmt.Println("3NF synthesis from the RAW discovered cover (note the accidental schemas):")
	for _, s := range depminer.SynthesizeThreeNF(res.FDs, r.Arity()).Schemas {
		fmt.Println("  " + s.Names(r.Names()))
	}

	// The Armstrong sample is what lets the dba separate business rules
	// from accidents: order_id → everything (it is the order key),
	// customer → city, product → price. Keep exactly those.
	orderID, customer, city, product, price := 0, 1, 2, 3, 4
	var kept depminer.Cover
	for _, f := range res.FDs {
		switch {
		case f.LHS == singleton(orderID):
			kept = append(kept, f)
		case f.LHS == singleton(customer) && f.RHS == city:
			kept = append(kept, f)
		case f.LHS == singleton(product) && f.RHS == price:
			kept = append(kept, f)
		}
	}
	fmt.Printf("\ndba keeps %d business rules after reviewing the sample:\n", len(kept))
	for _, f := range kept {
		fmt.Println("  " + f.Names(r.Names()))
	}

	dec := depminer.SynthesizeThreeNF(kept, r.Arity())
	fmt.Println("\n3NF synthesis from the curated cover (lossless, dependency preserving):")
	for _, s := range dec.Schemas {
		fmt.Println("  " + s.Names(r.Names()))
	}
	fmt.Print("candidate keys of the original table under the curated rules: ")
	for i, k := range dec.Keys {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print("(" + k.Names(r.Names(), ", ") + ")")
	}
	fmt.Println()

	bcnf, err := depminer.DecomposeBCNF(kept, r.Arity())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBCNF decomposition (lossless join):")
	for _, s := range bcnf.Schemas {
		fmt.Println("  " + s.Names(r.Names()))
	}

	// Materialise the fragments and rediscover the foreign keys between
	// them as inclusion dependencies — the joins the application will
	// use after the split.
	fragments := make([]*depminer.Relation, len(dec.Schemas))
	fragNames := make([]string, len(dec.Schemas))
	for i, s := range dec.Schemas {
		fragments[i] = r.Project(s.Attrs).Deduplicate()
		fragNames[i] = "frag" + string(rune('0'+i))
	}
	inds, err := depminer.DiscoverINDs(context.Background(), fragments, depminer.INDOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nforeign-key candidates between the 3NF fragments (maximal INDs):")
	for _, d := range inds.Maximal() {
		fmt.Println("  " + d.Names(fragNames, fragments))
	}
}

// singleton builds the one-attribute set {a}.
func singleton(a int) depminer.AttrSet {
	var s depminer.AttrSet
	s.Add(a)
	return s
}
