// Quickstart: run the full Dep-Miner pipeline on the paper's running
// example (the 7-tuple employee/department relation of Example 1) and
// print every intermediate artefact the paper derives from it: agree
// sets, maximal sets, minimal FDs, and the real-world Armstrong relation.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	r := depminer.PaperExample()
	fmt.Println("Input relation (paper Example 1):")
	fmt.Println(r)

	res, err := depminer.Discover(context.Background(), r, depminer.Options{
		Algorithm: depminer.DepMiner, // Algorithm 2: couples of maximal classes
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Agree sets ag(r) (paper Example 5):")
	for _, s := range res.AgreeSets {
		fmt.Printf("  %v\n", s)
	}

	fmt.Println("\nMaximal sets MAX(dep(r)) (paper Example 9):")
	for _, s := range res.MaxSets {
		fmt.Printf("  %v\n", s)
	}

	fmt.Printf("\nMinimal functional dependencies (paper Example 11, %d FDs):\n", len(res.FDs))
	for _, f := range res.FDs {
		fmt.Printf("  %-12s i.e. %s\n", f.String(), f.Names(r.Names()))
	}

	fmt.Printf("\nReal-world Armstrong relation (paper Example 13, %d of %d tuples):\n",
		res.Armstrong.Rows(), r.Rows())
	fmt.Println(res.Armstrong)

	// The Armstrong relation satisfies exactly the same dependencies:
	// every discovered FD holds in it, and every FD that fails in r fails
	// in it too. Verify the first half programmatically.
	if ok, bad := depminer.Verify(res.Armstrong, res.FDs); !ok {
		log.Fatalf("armstrong relation violates %s", bad)
	}
	fmt.Println("verified: every discovered FD also holds in the Armstrong relation")
}
