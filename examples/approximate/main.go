// Approximate dependencies: the TANE extension the paper's related-work
// section highlights ("Tane can also provide approximate functional
// dependencies").
//
// Real data is dirty: a dependency that governed the domain may be
// violated by a handful of mis-entered tuples, so exact discovery misses
// it. TANE's g3 measure — the fraction of tuples one must delete for the
// FD to hold — recovers such rules at a tolerance ε.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// A sensor inventory where device_id determines model and location —
	// except for two corrupted rows out of twelve.
	rows := [][]string{
		{"d1", "tx100", "hall"}, {"d1", "tx100", "hall"},
		{"d1", "tx999", "hall"}, // corrupted model
		{"d2", "tx200", "lab"}, {"d2", "tx200", "lab"},
		{"d3", "tx100", "roof"}, {"d3", "tx100", "roof"},
		{"d3", "tx100", "dock"}, // corrupted location
		{"d4", "tx300", "lab"}, {"d5", "tx200", "hall"},
		{"d6", "tx300", "roof"}, {"d7", "tx100", "lab"},
	}
	r, err := depminer.NewRelation([]string{"device_id", "model", "location"}, rows)
	if err != nil {
		log.Fatal(err)
	}

	exact, err := depminer.DiscoverTANE(context.Background(), r, depminer.TANEOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact dependencies (%d):\n", len(exact.FDs))
	for _, f := range exact.FDs {
		fmt.Println("  " + f.Names(r.Names()))
	}

	for _, eps := range []float64{0.05, 0.10, 0.25} {
		res, err := depminer.DiscoverTANE(context.Background(), r, depminer.TANEOptions{Epsilon: eps})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\napproximate dependencies at g3 ≤ %.2f (%d):\n", eps, len(res.FDs))
		for _, f := range res.FDs {
			fmt.Println("  " + f.Names(r.Names()))
		}
	}

	fmt.Println("\neach corrupted tuple costs g3 = 1/12 ≈ 0.08, so device_id → model and")
	fmt.Println("device_id → location surface at ε = 0.10 but not at ε = 0.05, while")
	fmt.Println("exact discovery only finds dependencies that survive the corruption.")
}
