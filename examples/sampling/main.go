// Sampling: measures how small real-world Armstrong relations are
// relative to their source — the paper's headline usability result
// (Tables 3(b)/4/5, Figures 3/5/7 report 1/100 to 1/10,000 of the input).
//
// The example sweeps the synthetic benchmark generator over growing |r|
// and prints the Armstrong size next to the input size, demonstrating the
// sublinear growth the paper observes.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	fmt.Println("|r| sweep at |R|=15, c=30% (paper Figure 5 shape):")
	fmt.Printf("%10s  %10s  %8s\n", "|r|", "|armstrong|", "ratio")
	for _, rows := range []int{1000, 2000, 5000, 10000, 20000} {
		rel, err := depminer.Generate(depminer.GenerateSpec{
			Attrs: 15, Rows: rows, Correlation: 0.3, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := depminer.Discover(context.Background(), rel, depminer.Options{
			Algorithm: depminer.DepMiner2,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d  %10d  1:%-6d\n",
			rows, res.Armstrong.Rows(), rows/res.Armstrong.Rows())
	}

	fmt.Println("\n|R| sweep at |r|=5000, c=30% (sizes grow with schema width):")
	fmt.Printf("%10s  %10s\n", "|R|", "|armstrong|")
	for _, attrs := range []int{5, 10, 15, 20, 25} {
		rel, err := depminer.Generate(depminer.GenerateSpec{
			Attrs: attrs, Rows: 5000, Correlation: 0.3, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := depminer.Discover(context.Background(), rel, depminer.Options{
			Algorithm: depminer.DepMiner2,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d  %10d\n", attrs, res.Armstrong.Rows())
	}

	// Why not just take a random sample of the same size? Because a
	// random sample satisfies extra, spurious dependencies: with few
	// rows, accidental agreements vanish and accidental FDs appear. The
	// Armstrong relation is exact by construction.
	fmt.Println("\nfidelity: Armstrong sample vs random sample of the same size")
	rel, err := depminer.Generate(depminer.GenerateSpec{
		Attrs: 8, Rows: 5000, Correlation: 0.3, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	res, err := depminer.Discover(ctx, rel, depminer.Options{Algorithm: depminer.DepMiner2})
	if err != nil {
		log.Fatal(err)
	}
	trueFDs := res.FDs
	arm := res.Armstrong

	spurious := func(sample *depminer.Relation) int {
		sres, err := depminer.Discover(ctx, sample, depminer.Options{
			Algorithm: depminer.DepMiner2, Armstrong: depminer.ArmstrongNone,
		})
		if err != nil {
			log.Fatal(err)
		}
		n := 0
		for _, f := range sres.FDs {
			// An FD of the sample is spurious if it does not hold in the
			// full relation.
			if ok, _ := depminer.Verify(rel, depminer.Cover{f}); !ok {
				n++
			}
		}
		return n
	}

	rng := rand.New(rand.NewSource(1))
	idx := make([]int, arm.Rows())
	for i := range idx {
		idx[i] = rng.Intn(rel.Rows())
	}
	random := rel.Restrict(idx)

	fmt.Printf("  true minimal FDs of the full relation: %d\n", len(trueFDs))
	fmt.Printf("  Armstrong sample (%d tuples): %d spurious FDs\n", arm.Rows(), spurious(arm))
	fmt.Printf("  random sample    (%d tuples): %d spurious FDs\n", random.Rows(), spurious(random))

	fmt.Println("\nThe sample is exact: it satisfies precisely the dependencies of the")
	fmt.Println("source relation, so a dba can reason about FDs on a few hundred rows")
	fmt.Println("instead of the full table.")
}
