package depminer

import (
	"context"
	"os"
	"testing"
)

// TestGoldenEmployees pins the end-to-end file path: load the fixture CSV,
// discover, and compare against the golden FD file (which is itself
// parsed through the public parser — exercising both directions).
func TestGoldenEmployees(t *testing.T) {
	r, err := LoadCSVFile("testdata/employees.csv", true)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open("testdata/employees.fds")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	golden, err := ParseCover(f, r.Names())
	if err != nil {
		t.Fatal(err)
	}
	golden.Sort()

	res, err := Discover(context.Background(), r, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FDs) != len(golden) {
		t.Fatalf("discovered %d FDs, golden has %d", len(res.FDs), len(golden))
	}
	for i := range golden {
		if res.FDs[i] != golden[i] {
			t.Errorf("FD %d: got %s, want %s", i, res.FDs[i], golden[i])
		}
	}
	// The golden cover holds and is exactly minimal.
	if ok, bad := Verify(r, golden); !ok {
		t.Errorf("golden FD %s does not hold", bad)
	}
	// Armstrong sample is strictly smaller and satisfies the cover.
	if res.Armstrong.Rows() >= r.Rows() {
		t.Error("Armstrong relation not smaller than the input")
	}
	if ok, bad := Verify(res.Armstrong, golden); !ok {
		t.Errorf("golden FD %s fails in the Armstrong relation", bad)
	}
}

func TestLoadCSVFileMissing(t *testing.T) {
	if _, err := LoadCSVFile("testdata/nope.csv", true); err == nil {
		t.Error("missing file accepted")
	}
}
