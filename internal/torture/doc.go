// Package torture is the crash-torture harness for the durable serving
// stack: it boots a real depminerd server process over a data directory,
// kill-9s it in the middle of an append storm, restarts it, and asserts
// the durability contract — every acknowledged append survives, the
// recovered dataset's fingerprint and discovered cover are byte-identical
// to a from-scratch run over the same rows, and logs damaged beyond a
// torn tail are quarantined while healthy datasets keep serving.
//
// The server child is the test binary re-exec'd: TestMain intercepts the
// TORTURE_DATA_DIR environment variable and, when set, runs the HTTP
// server instead of the tests. That keeps the harness self-contained —
// no go build step, and the child runs under the same -race runtime as
// the parent.
//
// The storm uses two datasets with different verification contracts:
//
//   - the verified dataset takes strictly sequential single-row appends
//     of deterministic content, so after any crash the parent can rebuild
//     the exact acknowledged prefix, recompute its fingerprint chain, and
//     run the reference core.Discover for a byte-level cover comparison;
//   - the storm dataset takes concurrent batches from several goroutines
//     purely to keep the WAL group-commit path under contention while the
//     process dies, verified by the no-acked-loss watermark.
//
// Cycle count: 20 by default (the acceptance bar), 5 under -short, and
// -torture.cycles=N overrides both.
package torture
