package torture

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/client"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/wire"
)

var cycles = flag.Int("torture.cycles", 0, "kill-9 cycles to run (0 = 20, or 5 under -short)")

const (
	envDataDir  = "TORTURE_DATA_DIR"
	envAddrFile = "TORTURE_ADDR_FILE"
)

// TestMain re-execs as the server child when TORTURE_DATA_DIR is set.
func TestMain(m *testing.M) {
	if dir := os.Getenv(envDataDir); dir != "" {
		runChild(dir, os.Getenv(envAddrFile))
		return
	}
	os.Exit(m.Run())
}

// runChild serves a durable depminerd instance until killed. The bound
// address is published by atomic rename, so the parent never reads a
// half-written file.
func runChild(dataDir, addrFile string) {
	srv, err := server.New(server.Config{
		DataDir:       dataDir,
		SnapshotEvery: 16, // small, so kills land around compactions too
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "torture child: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "torture child: %v\n", err)
		os.Exit(1)
	}
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err == nil {
		err = os.Rename(tmp, addrFile)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "torture child: %v\n", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv}
	_ = hs.Serve(ln) // until SIGKILL
}

// child is one server process run over the shared data directory.
type child struct {
	cmd    *exec.Cmd
	addr   string
	stderr bytes.Buffer
}

// startChild re-execs the test binary as a server and waits for its
// address file.
func startChild(t *testing.T, dataDir, scratch string, cycle int) *child {
	t.Helper()
	addrFile := filepath.Join(scratch, fmt.Sprintf("addr-%d", cycle))
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		envDataDir+"="+dataDir,
		envAddrFile+"="+addrFile,
	)
	c := &child{cmd: cmd}
	cmd.Stderr = &c.stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting child: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil {
			c.addr = string(data)
			break
		}
		if time.Now().After(deadline) {
			c.kill()
			t.Fatalf("child never published its address; stderr:\n%s", c.stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	return c
}

// kill delivers SIGKILL — the crash under test — and reaps the process.
// cmd.Wait also joins the stderr copier, so reading c.stderr afterwards
// is safe.
func (c *child) kill() {
	_ = c.cmd.Process.Kill()
	_ = c.cmd.Wait()
}

func (c *child) client() *client.Client {
	return client.New("http://" + c.addr)
}

// stormClient disables retries: the storm must observe the true
// ack/no-ack outcome of every request, not a retried one.
func (c *child) stormClient() *client.Client {
	return client.New("http://"+c.addr, client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 1}))
}

// The verified dataset's deterministic content: enough structure for a
// non-trivial cover (B and C functionally depend on A's residues, D is a
// row id breaking most dependencies the other way).
var vNames = []string{"a", "b", "c", "d"}

func vRow(i int) []string {
	return []string{
		fmt.Sprintf("g%d", i%6),
		fmt.Sprintf("h%d", (i%6)%3),
		fmt.Sprintf("k%d", i%2),
		fmt.Sprintf("r%d", i),
	}
}

func vCSV(n int) []byte {
	var b bytes.Buffer
	b.WriteString(strings.Join(vNames, ",") + "\n")
	for i := 0; i < n; i++ {
		b.WriteString(strings.Join(vRow(i), ",") + "\n")
	}
	return b.Bytes()
}

// vFingerprint recomputes the content fingerprint of the first n rows
// exactly as the server chains it.
func vFingerprint(n int) string {
	f := durable.NewFingerprint(vNames)
	for i := 0; i < n; i++ {
		f.AddRow(vRow(i))
	}
	return f.Sum()
}

// vCover runs the reference pipeline over the first n rows and renders
// the cover the way the server does.
func vCover(t *testing.T, n int) []string {
	t.Helper()
	rows := make([][]string, n)
	for i := range rows {
		rows[i] = vRow(i)
	}
	rel, err := relation.FromRows(vNames, rows)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Discover(context.Background(), rel, core.Options{Armstrong: core.ArmstrongNone})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(res.FDs))
	for i, f := range res.FDs {
		out[i] = f.Names(rel.Names())
	}
	return out
}

const vInitRows = 8

func TestKill9Torture(t *testing.T) {
	if testing.Short() && *cycles == 0 {
		*cycles = 5
	}
	n := *cycles
	if n == 0 {
		n = 20
	}

	dataDir := t.TempDir()
	scratch := t.TempDir()
	rng := rand.New(rand.NewSource(1))

	// ackedV tracks the verified dataset: the highest row count a 2xx
	// acknowledged, and the total sent (acked or in flight at the kill).
	// sentV never shrinks across cycles; recovery may land between
	// ackedV and sentV.
	var verifiedID, stormID string
	ackedV, sentV := vInitRows, vInitRows
	var ackedStormRows atomic.Int64

	for cycle := 0; cycle < n; cycle++ {
		ch := startChild(t, dataDir, scratch, cycle)
		cl := ch.client()
		ctx := context.Background()

		if cycle == 0 {
			reg, err := cl.Register(ctx, "torture/verified", vCSV(vInitRows))
			if err != nil {
				t.Fatalf("register verified: %v", err)
			}
			verifiedID = reg.ID
			sreg, err := cl.Register(ctx, "torture/storm", []byte("x,y,z\n0,0,0\n"))
			if err != nil {
				t.Fatalf("register storm: %v", err)
			}
			stormID = sreg.ID
			ackedStormRows.Store(1)
		} else {
			// === The durability contract, checked on every boot. ===
			info, err := cl.Dataset(ctx, verifiedID)
			if err != nil {
				t.Fatalf("cycle %d: recovered dataset missing: %v\nchild stderr:\n%s", cycle, err, ch.stderr.String())
			}
			if info.Rows < ackedV {
				t.Fatalf("cycle %d: ACKED APPEND LOST: recovered %d rows, %d were acknowledged", cycle, info.Rows, ackedV)
			}
			if info.Rows > sentV {
				t.Fatalf("cycle %d: recovered %d rows but only %d were ever sent", cycle, info.Rows, sentV)
			}
			// Byte-identical recovery: fingerprint chain and discovered
			// cover both match a from-scratch computation over the exact
			// acknowledged prefix.
			if want := vFingerprint(info.Rows); info.Fingerprint != want {
				t.Fatalf("cycle %d: recovered fingerprint %s, want %s for %d rows", cycle, info.Fingerprint, want, info.Rows)
			}
			disc, err := cl.Discover(ctx, wire.DiscoverRequest{Dataset: verifiedID})
			if err != nil {
				t.Fatalf("cycle %d: discover on recovered dataset: %v", cycle, err)
			}
			want := vCover(t, info.Rows)
			if len(disc.FDs) != len(want) {
				t.Fatalf("cycle %d: recovered cover %v, want %v", cycle, disc.FDs, want)
			}
			for i := range want {
				if disc.FDs[i] != want[i] {
					t.Fatalf("cycle %d: recovered cover %v, want %v", cycle, disc.FDs, want)
				}
			}
			// The verified prefix becomes the new baseline: rows beyond
			// the last ack that survived (in-flight at the kill) are part
			// of the dataset now.
			ackedV, sentV = info.Rows, info.Rows
			sinfo, err := cl.Dataset(ctx, stormID)
			if err != nil {
				t.Fatalf("cycle %d: storm dataset missing: %v", cycle, err)
			}
			if int64(sinfo.Rows) < ackedStormRows.Load() {
				t.Fatalf("cycle %d: storm dataset lost acked rows: %d < %d", cycle, sinfo.Rows, ackedStormRows.Load())
			}
			ackedStormRows.Store(int64(sinfo.Rows))
		}

		// === Append storm: one sequential verified writer, several ===
		// === concurrent storm writers, then SIGKILL mid-flight.     ===
		stop := make(chan struct{})
		var wg sync.WaitGroup

		wg.Add(1)
		go func() {
			defer wg.Done()
			scl := ch.stormClient()
			for {
				select {
				case <-stop:
					return
				default:
				}
				next := sentV // single writer: no lock needed vs itself
				sentV = next + 1
				resp, err := scl.Append(ctx, verifiedID, [][]string{vRow(next)})
				if err != nil || resp.Appended != 1 {
					return // killed (or refused): nothing acked
				}
				ackedV = next + 1
				if resp.Fingerprint != vFingerprint(ackedV) {
					t.Errorf("live append fingerprint diverged at row %d", ackedV)
					return
				}
			}
		}()
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				scl := ch.stormClient()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					rows := [][]string{
						{fmt.Sprintf("w%d", w), fmt.Sprintf("i%d", i%5), "s"},
						{fmt.Sprintf("w%d", w), fmt.Sprintf("j%d", i%3), "s"},
					}
					if resp, err := scl.Append(ctx, stormID, rows); err == nil {
						// Monotone watermark: Rows in the response is the
						// post-commit count, already durable.
						for {
							cur := ackedStormRows.Load()
							if int64(resp.Rows) <= cur || ackedStormRows.CompareAndSwap(cur, int64(resp.Rows)) {
								break
							}
						}
					} else {
						return
					}
				}
			}(w)
		}

		// Let the storm run, then pull the plug mid-append.
		time.Sleep(time.Duration(20+rng.Intn(60)) * time.Millisecond)
		ch.kill()
		close(stop)
		wg.Wait()
	}

	// One final boot to verify the last cycle's kill too.
	ch := startChild(t, dataDir, scratch, n)
	defer ch.kill()
	cl := ch.client()
	info, err := cl.Dataset(context.Background(), verifiedID)
	if err != nil {
		t.Fatalf("final boot: %v", err)
	}
	if info.Rows < ackedV || info.Fingerprint != vFingerprint(info.Rows) {
		t.Fatalf("final boot: rows=%d (acked %d) fp=%s", info.Rows, ackedV, info.Fingerprint)
	}
	t.Logf("torture: %d kill-9 cycles, verified dataset at %d rows, storm dataset durable watermark %d",
		n, info.Rows, ackedStormRows.Load())
}

// TestQuarantineKeepsServingAfterCrash corrupts one dataset's WAL
// mid-log between kill and restart: the reboot must quarantine exactly
// that dataset, keep the other one serving with full fidelity, and
// accept new writes.
func TestQuarantineKeepsServingAfterCrash(t *testing.T) {
	dataDir := t.TempDir()
	scratch := t.TempDir()

	ch := startChild(t, dataDir, scratch, 0)
	cl := ch.client()
	ctx := context.Background()
	reg, err := cl.Register(ctx, "torture/healthy", vCSV(vInitRows))
	if err != nil {
		t.Fatal(err)
	}
	victim, err := cl.Register(ctx, "torture/victim", []byte("p,q\n1,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	// Two appends so the victim's WAL has a record with more log after it.
	for i := 0; i < 2; i++ {
		if _, err := cl.Append(ctx, victim.ID, [][]string{{"3", "4"}}); err != nil {
			t.Fatal(err)
		}
	}
	ch.kill()

	walPath := filepath.Join(dataDir, "datasets", victim.ID, "wal.log")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/4] ^= 0x20 // mid-log, not the torn tail
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	ch2 := startChild(t, dataDir, scratch, 1)
	defer ch2.kill()
	cl2 := ch2.client()
	if _, err := cl2.Dataset(ctx, victim.ID); err == nil {
		t.Fatal("corrupted dataset served after restart")
	}
	info, err := cl2.Dataset(ctx, reg.ID)
	if err != nil {
		t.Fatalf("healthy dataset missing after neighbour quarantine: %v", err)
	}
	if info.Fingerprint != vFingerprint(vInitRows) {
		t.Fatal("healthy dataset fingerprint drifted")
	}
	st, err := cl2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Durable == nil || st.Durable.Quarantined != 1 || len(st.Durable.QuarantinedSets) != 1 {
		t.Fatalf("durable stats %+v", st.Durable)
	}
	if q := st.Durable.QuarantinedSets[0]; q.ID != victim.ID || q.Reason == "" {
		t.Fatalf("quarantine entry %+v", q)
	}
	if _, err := os.Stat(filepath.Join(dataDir, "quarantine", victim.ID, "REASON.json")); err != nil {
		t.Fatalf("REASON.json: %v", err)
	}
	if _, err := cl2.Append(ctx, reg.ID, [][]string{vRow(vInitRows)}); err != nil {
		t.Fatalf("append after quarantine boot: %v", err)
	}
}
