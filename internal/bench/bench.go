// Package bench is the harness that regenerates every table and figure of
// the paper's evaluation (§5.3): execution-time comparisons of Dep-Miner,
// Dep-Miner 2 and TANE, and real-world Armstrong relation sizes, over the
// synthetic workload grid (|R| × |r| at correlation c ∈ {0, 30%, 50%}).
//
// Each experiment is a projection of one grid run:
//
//	Table 3 (a/b) — times and sizes at c = 0
//	Table 4       — times and sizes at c = 30%
//	Table 5       — times and sizes at c = 50%
//	Figures 2/4/6 — time-vs-|r| curves at |R| = 10 and |R| = 50 (per c)
//	Figures 3/5/7 — Armstrong-size-vs-|r| curves per |R| (per c)
//
// The default grid is scaled down from the paper's (which goes to 100,000
// tuples × 60 attributes on a 350 MHz machine) so `go test -bench` and the
// quick CLI mode finish on a laptop; cmd/benchmark -full runs paper scale.
// Absolute times are not comparable across hardware; the reproduced claims
// are the *shapes* — see EXPERIMENTS.md.
package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/armstrong"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/tane"
)

// AlgorithmNames, in the paper's presentation order.
var AlgorithmNames = []string{"Dep-Miner", "Dep-Miner 2", "TANE"}

// Config describes one grid run.
type Config struct {
	// Correlation is the c parameter of the generator.
	Correlation float64
	// RowCounts and AttrCounts span the grid (the paper uses
	// 10k..100k × 10..60).
	RowCounts  []int
	AttrCounts []int
	// Timeout bounds each algorithm run, reproducing the paper's
	// two-hour cutoff (the '*' cells). Zero means no bound.
	Timeout time.Duration
	// Workers is the worker-pool width for every algorithm's parallel
	// phases — the Dep-Miner pipelines and TANE's level evaluation alike
	// (0 = all cores, 1 = sequential). Results are identical for every
	// value; only the times change.
	Workers int
	// MaxAgreeBytes caps resident agree-set bytes for the Dep-Miner
	// pipelines; past it sorted runs spill to SpillDir. 0 = in-memory.
	// Results are identical for every value; only times change.
	MaxAgreeBytes int64
	// SpillDir is where agree-set runs spill; empty = system temp dir.
	SpillDir string
	// Seed feeds the deterministic generator.
	Seed uint64
	// Progress, when non-nil, receives one line per completed cell.
	Progress func(string)
}

// Cell is the measurement for one (|r|, |R|) grid point.
type Cell struct {
	Rows, Attrs int
	// Seconds[i] is the wall-clock time of AlgorithmNames[i]; negative
	// means the run exceeded the timeout (the paper's '*').
	Seconds [3]float64
	// ArmstrongSize is the real-world Armstrong relation tuple count
	// (|MAX(dep(r))|+1), from the Dep-Miner run (or Dep-Miner 2 when
	// Dep-Miner timed out; -1 if both did).
	ArmstrongSize int
	// FDs is the number of minimal FDs discovered (sanity: all
	// algorithms agreed).
	FDs int
}

// Timed reports whether algorithm i completed within the timeout.
func (c *Cell) Timed(i int) bool { return c.Seconds[i] >= 0 }

// Result is a completed grid run.
type Result struct {
	Config Config
	// Cells indexed [rowIdx][attrIdx] following Config order.
	Cells [][]*Cell
}

// Run executes the grid.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{Config: cfg, Cells: make([][]*Cell, len(cfg.RowCounts))}
	for ri, rows := range cfg.RowCounts {
		res.Cells[ri] = make([]*Cell, len(cfg.AttrCounts))
		for ai, attrs := range cfg.AttrCounts {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("bench: cancelled: %w", err)
			}
			cell, err := RunCell(ctx, cfg, rows, attrs)
			if err != nil {
				return nil, err
			}
			res.Cells[ri][ai] = cell
			if cfg.Progress != nil {
				cfg.Progress(fmt.Sprintf("c=%.0f%% |r|=%d |R|=%d: dm=%s dm2=%s tane=%s |arm|=%d",
					cfg.Correlation*100, rows, attrs,
					fmtSecs(cell.Seconds[0]), fmtSecs(cell.Seconds[1]), fmtSecs(cell.Seconds[2]),
					cell.ArmstrongSize))
			}
		}
	}
	return res, nil
}

// RunCell measures one grid point: generate the dataset, run the three
// algorithms under the timeout, and derive the Armstrong size.
func RunCell(ctx context.Context, cfg Config, rows, attrs int) (*Cell, error) {
	r, err := datagen.Generate(datagen.Spec{
		Attrs:       attrs,
		Rows:        rows,
		Correlation: cfg.Correlation,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	cell := &Cell{Rows: rows, Attrs: attrs, ArmstrongSize: -1, FDs: -1}

	var disagreement error
	runOne := func(fn func(context.Context) (int, int, error)) float64 {
		runCtx := ctx
		cancel := context.CancelFunc(func() {})
		if cfg.Timeout > 0 {
			runCtx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		}
		defer cancel()
		start := time.Now()
		fds, armSize, err := fn(runCtx)
		elapsed := time.Since(start).Seconds()
		if err != nil {
			return -1
		}
		// All algorithms that finish must agree on the FD count.
		if cell.FDs >= 0 && cell.FDs != fds {
			disagreement = fmt.Errorf("bench: algorithms disagree at |r|=%d |R|=%d: %d vs %d FDs",
				rows, attrs, cell.FDs, fds)
		}
		cell.FDs = fds
		if armSize >= 0 && cell.ArmstrongSize < 0 {
			cell.ArmstrongSize = armSize
		}
		return elapsed
	}

	cell.Seconds[0] = runOne(func(runCtx context.Context) (int, int, error) {
		res, err := core.Discover(runCtx, r, core.Options{
			Algorithm:     core.AgreeCouples,
			Armstrong:     core.ArmstrongNone,
			Workers:       cfg.Workers,
			MaxAgreeBytes: cfg.MaxAgreeBytes,
			SpillDir:      cfg.SpillDir,
		})
		if err != nil {
			return 0, -1, err
		}
		return len(res.FDs), armstrong.Size(res.MaxSets), nil
	})
	cell.Seconds[1] = runOne(func(runCtx context.Context) (int, int, error) {
		res, err := core.Discover(runCtx, r, core.Options{
			Algorithm:     core.AgreeIdentifiers,
			Armstrong:     core.ArmstrongNone,
			Workers:       cfg.Workers,
			MaxAgreeBytes: cfg.MaxAgreeBytes,
			SpillDir:      cfg.SpillDir,
		})
		if err != nil {
			return 0, -1, err
		}
		return len(res.FDs), armstrong.Size(res.MaxSets), nil
	})
	cell.Seconds[2] = runOne(func(runCtx context.Context) (int, int, error) {
		res, err := tane.Run(runCtx, r, tane.Options{Workers: cfg.Workers})
		if err != nil {
			return 0, -1, err
		}
		return len(res.FDs), -1, nil
	})
	if disagreement != nil {
		return nil, disagreement
	}
	return cell, nil
}

func fmtSecs(s float64) string {
	if s < 0 {
		return "*"
	}
	return fmt.Sprintf("%.3fs", s)
}
