package bench

import (
	"context"
	"strings"
	"testing"
	"time"
)

func tinyConfig(c float64) Config {
	return Config{
		Correlation: c,
		RowCounts:   []int{50, 100},
		AttrCounts:  []int{4, 6},
		Seed:        1,
	}
}

func TestRunGrid(t *testing.T) {
	res, err := Run(context.Background(), tinyConfig(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 || len(res.Cells[0]) != 2 {
		t.Fatalf("grid shape wrong")
	}
	for ri := range res.Cells {
		for ai := range res.Cells[ri] {
			c := res.Cells[ri][ai]
			for alg := 0; alg < 3; alg++ {
				if !c.Timed(alg) {
					t.Errorf("cell %d/%d alg %d timed out without a timeout", ri, ai, alg)
				}
			}
			if c.ArmstrongSize < 1 {
				t.Errorf("cell %d/%d: Armstrong size %d", ri, ai, c.ArmstrongSize)
			}
			if c.FDs < 0 {
				t.Errorf("cell %d/%d: no FD count", ri, ai)
			}
		}
	}
}

func TestRunProgressCallback(t *testing.T) {
	var lines []string
	cfg := tinyConfig(0)
	cfg.RowCounts = []int{30}
	cfg.AttrCounts = []int{3}
	cfg.Progress = func(s string) { lines = append(lines, s) }
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "|r|=30") {
		t.Errorf("progress lines = %v", lines)
	}
}

func TestTimeoutProducesStarCells(t *testing.T) {
	cfg := Config{
		Correlation: 0.5,
		RowCounts:   []int{3000},
		AttrCounts:  []int{12},
		Timeout:     time.Nanosecond, // everything times out
		Seed:        1,
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cells[0][0]
	for alg := 0; alg < 3; alg++ {
		if c.Timed(alg) {
			t.Errorf("alg %d should have timed out", alg)
		}
	}
	if c.ArmstrongSize != -1 {
		t.Error("Armstrong size should be unknown")
	}
	table := FormatTable(res)
	if !strings.Contains(table, "*") {
		t.Error("formatted table must show '*' cells")
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, tinyConfig(0)); err == nil {
		t.Error("cancelled run should error")
	}
}

func TestFormatTable(t *testing.T) {
	res, err := Run(context.Background(), tinyConfig(0.5))
	if err != nil {
		t.Fatal(err)
	}
	out := FormatTable(res)
	for _, want := range []string{"Dep-Miner", "Dep-Miner 2", "TANE", "c=50%", "Armstrong"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestFormatFigures(t *testing.T) {
	res, err := Run(context.Background(), tinyConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	ft := FormatFigureTime(res)
	if !strings.Contains(ft, "4 attributes") || !strings.Contains(ft, "6 attributes") {
		t.Errorf("figure-time output:\n%s", ft)
	}
	fs := FormatFigureSize(res)
	if !strings.Contains(fs, "4 attrs") || !strings.Contains(fs, "|r|") {
		t.Errorf("figure-size output:\n%s", fs)
	}
	csv := CSV(res)
	if !strings.HasPrefix(csv, "c,rows,attrs") || strings.Count(csv, "\n") != 5 {
		t.Errorf("csv output:\n%s", csv)
	}
}

func TestExperimentRegistry(t *testing.T) {
	if len(Experiments) != 9 {
		t.Fatalf("registry has %d experiments, want 9 (3 tables + 6 figures)", len(Experiments))
	}
	for _, e := range Experiments {
		got, ok := Lookup(e.ID)
		if !ok || got.ID != e.ID {
			t.Errorf("Lookup(%q) failed", e.ID)
		}
		cfg := ConfigFor(e, false, time.Second, 1)
		if len(cfg.RowCounts) == 0 || len(cfg.AttrCounts) == 0 {
			t.Errorf("%s: empty grid", e.ID)
		}
		if e.Kind == "figure-time" && len(cfg.AttrCounts) != 2 {
			t.Errorf("%s: figure-time should plot two |R| values", e.ID)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("unknown id resolved")
	}
	rows, attrs := PaperGrid()
	if rows[len(rows)-1] != 100000 || attrs[len(attrs)-1] != 60 {
		t.Error("paper grid wrong")
	}
}

func TestFormatDispatch(t *testing.T) {
	res, err := Run(context.Background(), tinyConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range Experiments[:3] {
		if Format(e, res) == "" {
			t.Errorf("%s: empty output", e.ID)
		}
	}
}

func TestShapeChecks(t *testing.T) {
	cfg := Config{
		Correlation: 0.5,
		RowCounts:   []int{200, 400},
		AttrCounts:  []int{4, 10},
		Seed:        1,
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	checks := ShapeChecks(res)
	if len(checks) == 0 {
		t.Fatal("no checks produced")
	}
	for _, c := range checks {
		t.Log(c)
		if !strings.HasPrefix(c, "ok:") && !strings.HasPrefix(c, "MISMATCH:") && !strings.HasPrefix(c, "info:") {
			t.Errorf("malformed verdict %q", c)
		}
	}
}
