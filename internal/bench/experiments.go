package bench

import (
	"fmt"
	"slices"
	"strings"
	"time"
)

// Experiment identifies one table or figure of the paper's evaluation.
type Experiment struct {
	// ID is the lookup key: "table3", "figure2", ...
	ID string
	// Title describes the paper artefact.
	Title string
	// Correlation is the workload's c.
	Correlation float64
	// Kind is "table" (times + sizes grid), "figure-time" (time-vs-|r|
	// curves at |R| = 10 and 50), or "figure-size" (Armstrong size vs
	// |r| per |R|).
	Kind string
}

// Experiments lists every table and figure of §5.3, in paper order.
var Experiments = []Experiment{
	{ID: "table3", Title: "Table 3: execution times and Armstrong sizes, data without constraints (c=0)", Correlation: 0, Kind: "table"},
	{ID: "figure2", Title: "Figure 2: execution times vs |r| at |R|=10 and |R|=50, c=0", Correlation: 0, Kind: "figure-time"},
	{ID: "figure3", Title: "Figure 3: Armstrong relation sizes vs |r|, c=0", Correlation: 0, Kind: "figure-size"},
	{ID: "table4", Title: "Table 4: execution times and Armstrong sizes, correlated data (c=30%)", Correlation: 0.3, Kind: "table"},
	{ID: "figure4", Title: "Figure 4: execution times vs |r| at |R|=10 and |R|=50, c=30%", Correlation: 0.3, Kind: "figure-time"},
	{ID: "figure5", Title: "Figure 5: Armstrong relation sizes vs |r|, c=30%", Correlation: 0.3, Kind: "figure-size"},
	{ID: "table5", Title: "Table 5: execution times and Armstrong sizes, correlated data (c=50%)", Correlation: 0.5, Kind: "table"},
	{ID: "figure6", Title: "Figure 6: execution times vs |r| at |R|=10 and |R|=50, c=50%", Correlation: 0.5, Kind: "figure-time"},
	{ID: "figure7", Title: "Figure 7: Armstrong relation sizes vs |r|, c=50%", Correlation: 0.5, Kind: "figure-size"},
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// PaperGrid is the evaluation's full grid: |r| ∈ 10k..100k,
// |R| ∈ 10..60.
func PaperGrid() ([]int, []int) {
	return []int{10000, 20000, 30000, 50000, 100000}, []int{10, 20, 30, 40, 50, 60}
}

// QuickGrid is the laptop-scale default: same shape, two orders of
// magnitude smaller rows and half the attribute range.
func QuickGrid() ([]int, []int) {
	return []int{500, 1000, 2000, 5000}, []int{10, 20, 30}
}

// ConfigFor builds the grid config for an experiment. Figure experiments
// share their parent table's grid; figure-time runs only the |R| columns
// it plots (the two extremes of the attr range).
func ConfigFor(e Experiment, full bool, timeout time.Duration, seed uint64) Config {
	rows, attrs := QuickGrid()
	if full {
		rows, attrs = PaperGrid()
	}
	if e.Kind == "figure-time" {
		attrs = []int{attrs[0], attrs[len(attrs)-1]}
	}
	return Config{
		Correlation: e.Correlation,
		RowCounts:   rows,
		AttrCounts:  attrs,
		Timeout:     timeout,
		Seed:        seed,
	}
}

// FormatTable renders a result like the paper's Tables 3–5: one block of
// execution times (three algorithm rows per |r|) and one block of
// Armstrong relation sizes. Cells that exceeded the timeout print '*'.
func FormatTable(res *Result) string {
	var b strings.Builder
	cfg := res.Config

	fmt.Fprintf(&b, "Execution times (in seconds), c=%.0f%%\n", cfg.Correlation*100)
	header := []string{"|r| \\ |R|", ""}
	for _, a := range cfg.AttrCounts {
		header = append(header, fmt.Sprintf("%d", a))
	}
	rowsOut := [][]string{header}
	for ri, rows := range cfg.RowCounts {
		for alg := 0; alg < 3; alg++ {
			line := make([]string, 0, len(cfg.AttrCounts)+2)
			if alg == 0 {
				line = append(line, fmt.Sprintf("%d", rows))
			} else {
				line = append(line, "")
			}
			line = append(line, AlgorithmNames[alg])
			for ai := range cfg.AttrCounts {
				c := res.Cells[ri][ai]
				if c.Timed(alg) {
					line = append(line, fmt.Sprintf("%.3f", c.Seconds[alg]))
				} else {
					line = append(line, "*")
				}
			}
			rowsOut = append(rowsOut, line)
		}
	}
	writeAligned(&b, rowsOut)

	fmt.Fprintf(&b, "\nSizes of real-world Armstrong relations (tuples)\n")
	rowsOut = [][]string{header}
	for ri, rows := range cfg.RowCounts {
		line := []string{fmt.Sprintf("%d", rows), ""}
		for ai := range cfg.AttrCounts {
			c := res.Cells[ri][ai]
			if c.ArmstrongSize >= 0 {
				line = append(line, fmt.Sprintf("%d", c.ArmstrongSize))
			} else {
				line = append(line, "*")
			}
		}
		rowsOut = append(rowsOut, line)
	}
	writeAligned(&b, rowsOut)
	return b.String()
}

// FormatFigureTime renders the data behind Figures 2/4/6: per plotted
// |R|, a series of (|r|, time) points for the three algorithms — the
// textual equivalent of the paper's curves.
func FormatFigureTime(res *Result) string {
	var b strings.Builder
	for ai, attrs := range res.Config.AttrCounts {
		fmt.Fprintf(&b, "%d attributes, c=%.0f%%\n", attrs, res.Config.Correlation*100)
		rows := [][]string{{"|r|", "Dep-Miner", "Dep-Miner 2", "TANE"}}
		for ri, nr := range res.Config.RowCounts {
			c := res.Cells[ri][ai]
			line := []string{fmt.Sprintf("%d", nr)}
			for alg := 0; alg < 3; alg++ {
				if c.Timed(alg) {
					line = append(line, fmt.Sprintf("%.3f", c.Seconds[alg]))
				} else {
					line = append(line, "*")
				}
			}
			rows = append(rows, line)
		}
		writeAligned(&b, rows)
		b.WriteByte('\n')
	}
	return strings.TrimRight(b.String(), "\n") + "\n"
}

// FormatFigureSize renders the data behind Figures 3/5/7: Armstrong
// relation size vs |r|, one series per |R|.
func FormatFigureSize(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Real-world Armstrong relation sizes, c=%.0f%%\n", res.Config.Correlation*100)
	header := []string{"|r|"}
	for _, a := range res.Config.AttrCounts {
		header = append(header, fmt.Sprintf("%d attrs", a))
	}
	rows := [][]string{header}
	for ri, nr := range res.Config.RowCounts {
		line := []string{fmt.Sprintf("%d", nr)}
		for ai := range res.Config.AttrCounts {
			c := res.Cells[ri][ai]
			if c.ArmstrongSize >= 0 {
				line = append(line, fmt.Sprintf("%d", c.ArmstrongSize))
			} else {
				line = append(line, "*")
			}
		}
		rows = append(rows, line)
	}
	writeAligned(&b, rows)
	return b.String()
}

// Format renders the experiment's artefact from its grid result.
func Format(e Experiment, res *Result) string {
	switch e.Kind {
	case "table":
		return FormatTable(res)
	case "figure-time":
		return FormatFigureTime(res)
	case "figure-size":
		return FormatFigureSize(res)
	default:
		return FormatTable(res)
	}
}

// CSV renders the raw cells as CSV (for external plotting).
func CSV(res *Result) string {
	var b strings.Builder
	b.WriteString("c,rows,attrs,depminer_s,depminer2_s,tane_s,armstrong_tuples,fds\n")
	for ri := range res.Cells {
		for ai := range res.Cells[ri] {
			c := res.Cells[ri][ai]
			fmt.Fprintf(&b, "%.2f,%d,%d,%s,%s,%s,%d,%d\n",
				res.Config.Correlation, c.Rows, c.Attrs,
				csvSecs(c.Seconds[0]), csvSecs(c.Seconds[1]), csvSecs(c.Seconds[2]),
				c.ArmstrongSize, c.FDs)
		}
	}
	return b.String()
}

func csvSecs(s float64) string {
	if s < 0 {
		return ""
	}
	return fmt.Sprintf("%.4f", s)
}

// writeAligned writes rows of cells padded to per-column widths.
func writeAligned(b *strings.Builder, rows [][]string) {
	widths := map[int]int{}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	cols := make([]int, 0, len(widths))
	for i := range widths {
		cols = append(cols, i)
	}
	slices.Sort(cols)
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for p := len(cell); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
}

// ShapeChecks verifies the paper's qualitative claims on a completed grid
// and returns human-readable verdicts:
//
//  1. Dep-Miner gains on TANE as |r| grows (TANE's per-lattice-node
//     partition products scale with |r|, Dep-Miner's transversal phase
//     does not); at the paper's scale Dep-Miner wins outright.
//  2. The TANE/Dep-Miner time ratio grows with |R|.
//  3. Armstrong relations are small samples of the input.
//  4. Armstrong sizes grow only slowly with |r|.
//
// Each verdict is "ok: ..." or "MISMATCH: ..."; an "info:" line reports
// plain win counts. Cells that timed out are skipped.
func ShapeChecks(res *Result) []string {
	var out []string
	nr := len(res.Config.RowCounts)
	na := len(res.Config.AttrCounts)

	// Info: raw win counts.
	wins, comparisons := 0, 0
	for ri := range res.Cells {
		for ai := range res.Cells[ri] {
			c := res.Cells[ri][ai]
			if c.Timed(0) && c.Timed(2) {
				comparisons++
				if c.Seconds[0] <= c.Seconds[2] {
					wins++
				}
			}
		}
	}
	if comparisons > 0 {
		out = append(out, fmt.Sprintf("info: Dep-Miner faster than TANE in %d/%d comparable cells", wins, comparisons))
	}

	// Claim 1: TANE/Dep-Miner ratio grows with |r| (first vs last row,
	// averaged over attribute columns; Dep-Miner 2 substitutes when
	// Dep-Miner timed out, as in the paper's large cells).
	dmTime := func(c *Cell) float64 {
		if c.Timed(0) {
			return c.Seconds[0]
		}
		if c.Timed(1) {
			return c.Seconds[1]
		}
		return -1
	}
	if nr > 1 {
		first, last, n := 0.0, 0.0, 0
		for ai := 0; ai < na; ai++ {
			cf, cl := res.Cells[0][ai], res.Cells[nr-1][ai]
			df, dl := dmTime(cf), dmTime(cl)
			if df > 0 && dl > 0 && cf.Timed(2) && cl.Timed(2) {
				first += cf.Seconds[2] / df
				last += cl.Seconds[2] / dl
				n++
			}
		}
		if n > 0 {
			verdict := "ok"
			if last <= first {
				verdict = "MISMATCH"
			}
			out = append(out, fmt.Sprintf("%s: TANE/Dep-Miner time ratio grows with |r| (%.2fx at |r|=%d → %.2fx at |r|=%d)",
				verdict, first/float64(n), res.Config.RowCounts[0],
				last/float64(n), res.Config.RowCounts[nr-1]))
		}
	}

	// Claim 2: the ratio grows with |R| (first vs last attribute column,
	// averaged over rows).
	if na > 1 {
		first, last, n := 0.0, 0.0, 0
		for ri := 0; ri < nr; ri++ {
			cf, cl := res.Cells[ri][0], res.Cells[ri][na-1]
			df, dl := dmTime(cf), dmTime(cl)
			if df > 0 && dl > 0 && cf.Timed(2) && cl.Timed(2) {
				first += cf.Seconds[2] / df
				last += cl.Seconds[2] / dl
				n++
			}
		}
		if n > 0 {
			verdict := "ok"
			if last <= first {
				verdict = "MISMATCH"
			}
			out = append(out, fmt.Sprintf("%s: TANE/Dep-Miner time ratio grows with |R| (%.2fx at |R|=%d → %.2fx at |R|=%d)",
				verdict, first/float64(n), res.Config.AttrCounts[0],
				last/float64(n), res.Config.AttrCounts[na-1]))
		}
	}

	// Claim 3: Armstrong relations are small (the paper reports 1/100 to
	// 1/10,000 of |r| at full scale; the scaled grid tolerates 1/2).
	worst := 0.0
	for ri := range res.Cells {
		for ai := range res.Cells[ri] {
			c := res.Cells[ri][ai]
			if c.ArmstrongSize >= 0 && c.Rows > 0 {
				if f := float64(c.ArmstrongSize) / float64(c.Rows); f > worst {
					worst = f
				}
			}
		}
	}
	verdict := "ok"
	if worst > 0.5 {
		verdict = "MISMATCH"
	}
	out = append(out, fmt.Sprintf("%s: Armstrong relations are small samples (worst size ratio %.4f of |r|)", verdict, worst))

	// Claim 4: sizes grow sublinearly in |r|: growing |r| by a factor k
	// grows the Armstrong relation by far less than k.
	if nr > 1 {
		ratioSum, n := 0.0, 0
		for ai := 0; ai < na; ai++ {
			cf, cl := res.Cells[0][ai], res.Cells[nr-1][ai]
			if cf.ArmstrongSize > 0 && cl.ArmstrongSize > 0 {
				ratioSum += float64(cl.ArmstrongSize) / float64(cf.ArmstrongSize)
				n++
			}
		}
		if n > 0 {
			k := float64(res.Config.RowCounts[nr-1]) / float64(res.Config.RowCounts[0])
			avg := ratioSum / float64(n)
			verdict := "ok"
			if avg > k/2 {
				verdict = "MISMATCH"
			}
			out = append(out, fmt.Sprintf("%s: Armstrong sizes grow sublinearly with |r| (size ×%.2f while |r| ×%.1f)", verdict, avg, k))
		}
	}
	return out
}
