package maxsets

import (
	"repro/internal/attrset"
)

// DisagreeSets converts agree sets to disagree sets: the complements
// dis(r) = {R \ X | X ∈ ag(r)}. The paper's Figure 1 shows this as the
// alternative route to complements of maximal sets (used by Mannila &
// Räihä's original derivation, cf. footnote 3).
func DisagreeSets(agreeSets attrset.Family, arity int) attrset.Family {
	out := make(attrset.Family, len(agreeSets))
	for i, x := range agreeSets {
		out[i] = x.Complement(arity)
	}
	out.Sort()
	return out
}

// FromDisagreeSets runs the dual of Compute along Figure 1's lower path:
// cmax(dep(r),A) = Min⊆{D ∈ dis(r) | A ∈ D}, from which the maximal sets
// follow by complementation. It must agree exactly with Compute on the
// corresponding agree sets (the test suite pins this duality).
func FromDisagreeSets(disagreeSets attrset.Family, arity int) *Result {
	res := &Result{
		Arity: arity,
		Max:   make([]attrset.Family, arity),
		CMax:  make([]attrset.Family, arity),
	}
	candidates := make([]attrset.Family, arity)
	for _, d := range disagreeSets {
		d.ForEach(func(a attrset.Attr) {
			if a < arity {
				candidates[a] = append(candidates[a], d)
			}
		})
	}
	for a := 0; a < arity; a++ {
		cmax := candidates[a].Minimal()
		res.CMax[a] = cmax
		max := make(attrset.Family, len(cmax))
		for i, d := range cmax {
			max[i] = d.Complement(arity)
		}
		max.Sort()
		res.Max[a] = max
	}
	return res
}
