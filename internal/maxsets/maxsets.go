// Package maxsets derives maximal sets and their complements from agree
// sets (paper §3.2, Algorithm 4 CMAX_SET).
//
// A maximal set for attribute A is a largest attribute set that does not
// determine A: max(dep(r),A) = Max⊆{X ⊆ R | r ⊭ X → A}. Lemma 3
// characterises it from agree sets as Max⊆{X ∈ ag(r) | A ∉ X}. The
// complements cmax(dep(r),A) = {R \ X | X ∈ max(dep(r),A)} form a simple
// hypergraph whose minimal transversals are the LHSs of the minimal FDs
// with right-hand side A.
//
// MAX(dep(r)) = ⋃_A max(dep(r),A) equals GEN(dep(r)), the intersection
// generators of the closed-set family (Mannila & Räihä), which is what the
// Armstrong-relation construction consumes.
package maxsets

import (
	"repro/internal/attrset"
)

// Result holds, per attribute A of a schema of Arity attributes, the
// maximal sets and their complements.
type Result struct {
	Arity int
	// Max[a] is max(dep(r), a) in canonical order.
	Max []attrset.Family
	// CMax[a] is cmax(dep(r), a) = complements of Max[a], in canonical
	// order.
	CMax []attrset.Family
}

// Compute runs CMAX_SET: from the agree sets of a relation over arity
// attributes, derive max(dep(r),A) and cmax(dep(r),A) for every A.
//
// Following Lemma 3 (amended as in internal/agree to handle the empty
// agree set): candidates for attribute A are the agree sets X with A ∉ X,
// including ∅ when ∅ ∈ ag(r); taking Max⊆ then yields max(dep(r),A). When
// ag(r) has no candidate at all for A (every couple of tuples agrees on
// A), max(dep(r),A) is empty and so is cmax — the levelwise search then
// correctly derives ∅ → A (A is constant). The full schema R never
// appears among candidates because A ∈ R for every A — so even an ag(r)
// computed under multiset semantics (where duplicate tuples contribute R)
// cannot corrupt the result; internal/agree collapses duplicates anyway.
func Compute(agreeSets attrset.Family, arity int) *Result {
	res := &Result{
		Arity: arity,
		Max:   make([]attrset.Family, arity),
		CMax:  make([]attrset.Family, arity),
	}
	// Bucket agree sets by excluded attribute in one pass.
	candidates := make([]attrset.Family, arity)
	for _, x := range agreeSets {
		for a := 0; a < arity; a++ {
			if !x.Contains(a) {
				candidates[a] = append(candidates[a], x)
			}
		}
	}
	for a := 0; a < arity; a++ {
		res.Max[a] = candidates[a].Maximal()
		cmax := make(attrset.Family, len(res.Max[a]))
		for i, x := range res.Max[a] {
			cmax[i] = x.Complement(arity)
		}
		cmax.Sort()
		res.CMax[a] = cmax
	}
	return res
}

// AllMax returns MAX(dep(r)) = ⋃_A max(dep(r),A), deduplicated, in
// canonical order. This is the input of the Armstrong-relation
// construction (paper §4).
func (r *Result) AllMax() attrset.Family {
	var all attrset.Family
	for _, f := range r.Max {
		all = append(all, f...)
	}
	all = all.Dedup()
	all.Sort()
	return all
}

// FromMax rebuilds a Result (both Max and CMax) from per-attribute maximal
// sets. It is used by the TANE→Armstrong bridge, where maximal sets are
// recovered from LHSs via transversals rather than from agree sets.
func FromMax(max []attrset.Family, arity int) *Result {
	res := &Result{
		Arity: arity,
		Max:   make([]attrset.Family, arity),
		CMax:  make([]attrset.Family, arity),
	}
	for a := 0; a < arity; a++ {
		var m attrset.Family
		if a < len(max) {
			m = max[a].Dedup()
		}
		m.Sort()
		res.Max[a] = m
		cmax := make(attrset.Family, len(m))
		for i, x := range m {
			cmax[i] = x.Complement(arity)
		}
		cmax.Sort()
		res.CMax[a] = cmax
	}
	return res
}
