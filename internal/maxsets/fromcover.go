package maxsets

import (
	"context"

	"repro/internal/attrset"
	"repro/internal/fd"
	"repro/internal/hypergraph"
)

// FromCover recovers maximal sets from a cover of all minimal non-trivial
// FDs — the TANE→Armstrong bridge the paper sketches in §5.1: since
// Tr(Tr(H)) = H for simple hypergraphs, cmax(dep(r),A) =
// Tr(lhs(dep(r),A)), where lhs(dep(r),A) is the cover's LHS family for A
// plus the trivial {A} (or just {∅} when ∅ → A holds — then A is constant
// and has no maximal sets).
//
// The cover must contain exactly the minimal FDs per RHS (what TANE and
// Dep-Miner emit); arbitrary covers would first need minimisation per
// attribute.
func FromCover(ctx context.Context, cover fd.Cover, arity int) (*Result, error) {
	byRHS := cover.ByRHS(arity)
	max := make([]attrset.Family, arity)
	for a := 0; a < arity; a++ {
		lhs := byRHS[a]
		constant := false
		for _, x := range lhs {
			if x.IsEmpty() {
				constant = true
				break
			}
		}
		if constant {
			// lhs(dep(r),A) = {∅}: A agrees in every couple, no agree
			// set avoids it, so max(dep(r),A) = ∅.
			max[a] = nil
			continue
		}
		// lhs(dep(r),A) includes the trivial {A}.
		family := append(attrset.Family{attrset.Single(a)}, lhs...)
		h := hypergraph.Simplify(family)
		cmax, err := h.MinimalTransversals(ctx)
		if err != nil {
			return nil, err
		}
		if len(cmax) == 1 && cmax[0].IsEmpty() {
			// Tr of edgeless hypergraph — cannot happen since family is
			// never empty, but keep the invariant explicit.
			max[a] = nil
			continue
		}
		fam := make(attrset.Family, len(cmax))
		for i, e := range cmax {
			fam[i] = e.Complement(arity)
		}
		max[a] = fam
	}
	return FromMax(max, arity), nil
}
