package maxsets

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/agree"
	"repro/internal/attrset"
	"repro/internal/relation"
)

func TestDisagreeSetsPaperExample(t *testing.T) {
	// ag(r) = {∅, A, BDE, CE, E} → dis(r) = {ABCDE, BCDE, AC, ABD, ABCD}.
	ag := sets("∅", "A", "BDE", "CE", "E")
	dis := DisagreeSets(ag, 5)
	want := sets("ABCDE", "BCDE", "AC", "ABD", "ABCD")
	if !dis.Equal(want) {
		t.Errorf("dis(r) = %v, want %v", dis.Strings(), want.Strings())
	}
	// Involution.
	if !DisagreeSets(dis, 5).Equal(ag) {
		t.Error("DisagreeSets is not an involution")
	}
}

func TestFromDisagreeSetsMatchesComputePaperExample(t *testing.T) {
	r := relation.PaperExample()
	agr, err := agree.FromRelation(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	viaAgree := Compute(agr.Sets, r.Arity())
	viaDisagree := FromDisagreeSets(DisagreeSets(agr.Sets, r.Arity()), r.Arity())
	for a := 0; a < r.Arity(); a++ {
		if !viaAgree.Max[a].Equal(viaDisagree.Max[a]) {
			t.Errorf("max[%c]: agree path %v, disagree path %v",
				'A'+a, viaAgree.Max[a].Strings(), viaDisagree.Max[a].Strings())
		}
		if !viaAgree.CMax[a].Equal(viaDisagree.CMax[a]) {
			t.Errorf("cmax[%c]: agree path %v, disagree path %v",
				'A'+a, viaAgree.CMax[a].Strings(), viaDisagree.CMax[a].Strings())
		}
	}
}

// TestPropertyFigureOneDuality: the two routes of the paper's Figure 1
// coincide on random agree-set families.
func TestPropertyFigureOneDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	for iter := 0; iter < 200; iter++ {
		arity := 1 + rng.Intn(7)
		var ag attrset.Family
		for k := 0; k < rng.Intn(10); k++ {
			var x attrset.Set
			for b := 0; b < arity; b++ {
				if rng.Intn(2) == 0 {
					x.Add(b)
				}
			}
			ag = append(ag, x)
		}
		ag = ag.Dedup()
		viaAgree := Compute(ag, arity)
		viaDisagree := FromDisagreeSets(DisagreeSets(ag, arity), arity)
		for a := 0; a < arity; a++ {
			if !viaAgree.Max[a].Equal(viaDisagree.Max[a]) {
				t.Fatalf("iter %d attr %d: %v vs %v (ag=%v)",
					iter, a, viaAgree.Max[a].Strings(), viaDisagree.Max[a].Strings(), ag.Strings())
			}
		}
		if !viaAgree.AllMax().Equal(viaDisagree.AllMax()) {
			t.Fatalf("iter %d: AllMax differs", iter)
		}
	}
}
