package maxsets

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/agree"
	"repro/internal/attrset"
	"repro/internal/fd"
	"repro/internal/relation"
)

// TestFromCoverPaperExample: rebuilding maximal sets from the 14 minimal
// FDs via Tr(lhs) must give the same max/cmax as the agree-set path.
func TestFromCoverPaperExample(t *testing.T) {
	r := relation.PaperExample()
	cover := fd.MineBrute(r)
	res, err := FromCover(context.Background(), cover, r.Arity())
	if err != nil {
		t.Fatal(err)
	}
	ag, err := agree.FromRelation(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	want := Compute(ag.Sets, r.Arity())
	for a := 0; a < r.Arity(); a++ {
		if !res.Max[a].Equal(want.Max[a]) {
			t.Errorf("max[%c] = %v, want %v", 'A'+a, res.Max[a].Strings(), want.Max[a].Strings())
		}
		if !res.CMax[a].Equal(want.CMax[a]) {
			t.Errorf("cmax[%c] = %v, want %v", 'A'+a, res.CMax[a].Strings(), want.CMax[a].Strings())
		}
	}
	if !res.AllMax().Equal(want.AllMax()) {
		t.Errorf("AllMax = %v, want %v", res.AllMax().Strings(), want.AllMax().Strings())
	}
}

func TestFromCoverConstantColumn(t *testing.T) {
	// ∅ → B: attribute B has no maximal sets.
	cover := fd.Cover{{LHS: attrset.Empty(), RHS: 1}}
	res, err := FromCover(context.Background(), cover, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Max[1]) != 0 {
		t.Errorf("max[B] = %v, want empty", res.Max[1].Strings())
	}
	// Attribute A has no FDs: lhs = {A}, cmax = Tr({A}) = {A},
	// max = {R \ A} = {B}.
	if !res.Max[0].Equal(attrset.Family{attrset.Single(1)}) {
		t.Errorf("max[A] = %v, want {B}", res.Max[0].Strings())
	}
}

// TestFromCoverMatchesAgreePathOnRandomRelations: property test of the
// nihilpotence bridge on random relations.
func TestFromCoverMatchesAgreePathOnRandomRelations(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for iter := 0; iter < 60; iter++ {
		n := 1 + rng.Intn(5)
		rows := rng.Intn(15)
		cols := make([][]int, n)
		for a := range cols {
			cols[a] = make([]int, rows)
			dom := 1 + rng.Intn(5)
			for i := range cols[a] {
				cols[a][i] = rng.Intn(dom)
			}
		}
		r, err := relation.FromCodes(make([]string, n), cols)
		if err != nil {
			t.Fatal(err)
		}
		r = r.Deduplicate()
		cover := fd.MineBrute(r)
		got, err := FromCover(context.Background(), cover, n)
		if err != nil {
			t.Fatal(err)
		}
		ag, err := agree.FromRelation(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		want := Compute(ag.Sets, n)
		for a := 0; a < n; a++ {
			if !got.Max[a].Equal(want.Max[a]) {
				t.Fatalf("iter %d: max[%d] = %v, want %v\nrelation:\n%v",
					iter, a, got.Max[a].Strings(), want.Max[a].Strings(), r)
			}
		}
	}
}

func TestFromCoverCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cover := fd.Cover{{LHS: attrset.Single(1), RHS: 0}}
	if _, err := FromCover(ctx, cover, 2); err == nil {
		t.Error("cancelled context should abort")
	}
}
