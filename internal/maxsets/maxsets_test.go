package maxsets

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/agree"
	"repro/internal/attrset"
	"repro/internal/relation"
)

func sets(specs ...string) attrset.Family {
	out := make(attrset.Family, 0, len(specs))
	for _, s := range specs {
		set, ok := attrset.Parse(s)
		if !ok {
			panic("bad spec " + s)
		}
		out = append(out, set)
	}
	return out
}

// Paper Example 9: max and cmax for the running example.
func TestPaperExample(t *testing.T) {
	r := relation.PaperExample()
	ag, err := agree.FromRelation(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	res := Compute(ag.Sets, r.Arity())

	wantMax := []attrset.Family{
		sets("BDE", "CE"),
		sets("A", "CE"),
		sets("A", "BDE"),
		sets("A", "CE"),
		sets("A"),
	}
	wantCMax := []attrset.Family{
		sets("AC", "ABD"),
		sets("BCDE", "ABD"),
		sets("BCDE", "AC"),
		sets("BCDE", "ABD"),
		sets("BCDE"),
	}
	for a := 0; a < 5; a++ {
		if !res.Max[a].Equal(wantMax[a]) {
			t.Errorf("max(dep(r),%c) = %v, want %v", 'A'+a, res.Max[a].Strings(), wantMax[a].Strings())
		}
		if !res.CMax[a].Equal(wantCMax[a]) {
			t.Errorf("cmax(dep(r),%c) = %v, want %v", 'A'+a, res.CMax[a].Strings(), wantCMax[a].Strings())
		}
	}

	// MAX(dep(r)) = {A, BDE, CE} (paper example 12 uses MAX ∪ R).
	if all := res.AllMax(); !all.Equal(sets("A", "BDE", "CE")) {
		t.Errorf("MAX(dep(r)) = %v", all.Strings())
	}
}

// definitionalMax computes max(dep(r),A) straight from the definition, as
// the ground truth: maximal X ⊆ R with r ⊭ X → A.
func definitionalMax(r *relation.Relation, a int) attrset.Family {
	n := r.Arity()
	var fam attrset.Family
	for bits := 0; bits < 1<<n; bits++ {
		var x attrset.Set
		for b := 0; b < n; b++ {
			if bits&(1<<b) != 0 {
				x.Add(b)
			}
		}
		if x.Contains(a) {
			continue
		}
		if !r.Satisfies(x, a) {
			fam = append(fam, x)
		}
	}
	return fam.Maximal()
}

// TestLemma3Property: the agree-set characterisation equals the
// definitional maximal sets on random relations — including relations with
// constant columns and with everywhere-disagreeing tuples.
func TestLemma3Property(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 80; iter++ {
		n := 1 + rng.Intn(5)
		rows := rng.Intn(15)
		cols := make([][]int, n)
		for a := range cols {
			cols[a] = make([]int, rows)
			dom := 1 + rng.Intn(5)
			for i := range cols[a] {
				cols[a][i] = rng.Intn(dom)
			}
		}
		r, err := relation.FromCodes(make([]string, n), cols)
		if err != nil {
			t.Fatal(err)
		}
		r = r.Deduplicate() // dep(r) is defined on set semantics
		ag, err := agree.FromRelation(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		res := Compute(ag.Sets, n)
		for a := 0; a < n; a++ {
			want := definitionalMax(r, a)
			if !res.Max[a].Equal(want) {
				t.Fatalf("iter %d: max(dep(r),%d) = %v, want %v (ag=%v, rows=%d)",
					iter, a, res.Max[a].Strings(), want.Strings(), ag.Sets.Strings(), r.Rows())
			}
		}
	}
}

func TestCMaxIsComplement(t *testing.T) {
	r := relation.PaperExample()
	ag, _ := agree.FromRelation(context.Background(), r)
	res := Compute(ag.Sets, r.Arity())
	for a := 0; a < res.Arity; a++ {
		if len(res.Max[a]) != len(res.CMax[a]) {
			t.Fatalf("attr %d: len mismatch", a)
		}
		for _, x := range res.Max[a] {
			if !res.CMax[a].Contains(x.Complement(res.Arity)) {
				t.Fatalf("attr %d: complement of %v missing", a, x)
			}
		}
		// cmax edges always contain A itself (A ∉ X ⇒ A ∈ R\X).
		for _, e := range res.CMax[a] {
			if !e.Contains(a) {
				t.Fatalf("cmax edge %v does not contain %d", e, a)
			}
		}
	}
}

func TestConstantColumn(t *testing.T) {
	// Column b constant: every couple agrees on b, so there is no agree
	// set avoiding b → max(dep(r),b) = ∅.
	r, err := relation.FromRows([]string{"a", "b"},
		[][]string{{"1", "k"}, {"2", "k"}, {"3", "k"}})
	if err != nil {
		t.Fatal(err)
	}
	ag, err := agree.FromRelation(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	res := Compute(ag.Sets, 2)
	if len(res.Max[1]) != 0 || len(res.CMax[1]) != 0 {
		t.Errorf("constant column: max=%v cmax=%v, want empty",
			res.Max[1].Strings(), res.CMax[1].Strings())
	}
	// Column a is a key: ag(r) = {B}; max(dep(r),a) = {B}, cmax = {A}.
	if !res.Max[0].Equal(sets("B")) || !res.CMax[0].Equal(sets("A")) {
		t.Errorf("key column: max=%v cmax=%v", res.Max[0].Strings(), res.CMax[0].Strings())
	}
}

func TestEmptyAgreeSetHandling(t *testing.T) {
	// Two tuples disagreeing everywhere: ag(r) = {∅}; for each attribute,
	// max = {∅} and cmax = {R}.
	r, err := relation.FromRows([]string{"a", "b"}, [][]string{{"1", "x"}, {"2", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	ag, err := agree.FromRelation(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	res := Compute(ag.Sets, 2)
	for a := 0; a < 2; a++ {
		if !res.Max[a].Equal(attrset.Family{attrset.Empty()}) {
			t.Errorf("max[%d] = %v, want {∅}", a, res.Max[a].Strings())
		}
		if !res.CMax[a].Equal(sets("AB")) {
			t.Errorf("cmax[%d] = %v, want {AB}", a, res.CMax[a].Strings())
		}
	}
}

func TestNoAgreeSets(t *testing.T) {
	// Single tuple: ag(r) = {} → max and cmax empty for every attribute.
	res := Compute(nil, 3)
	for a := 0; a < 3; a++ {
		if len(res.Max[a]) != 0 || len(res.CMax[a]) != 0 {
			t.Errorf("attr %d not empty", a)
		}
	}
	if len(res.AllMax()) != 0 {
		t.Error("AllMax should be empty")
	}
}

func TestFromMax(t *testing.T) {
	max := []attrset.Family{
		sets("BDE", "CE", "BDE"), // duplicate collapses
		sets("A", "CE"),
	}
	res := FromMax(max, 5)
	if !res.Max[0].Equal(sets("BDE", "CE")) {
		t.Errorf("Max[0] = %v", res.Max[0].Strings())
	}
	if !res.CMax[0].Equal(sets("AC", "ABD")) {
		t.Errorf("CMax[0] = %v", res.CMax[0].Strings())
	}
	if !res.CMax[1].Equal(sets("BCDE", "ABD")) {
		t.Errorf("CMax[1] = %v", res.CMax[1].Strings())
	}
}

func TestAllMaxDedupAcrossAttributes(t *testing.T) {
	// A appears in max sets of B, C and D in the paper example; AllMax
	// must contain it once.
	r := relation.PaperExample()
	ag, _ := agree.FromRelation(context.Background(), r)
	res := Compute(ag.Sets, r.Arity())
	all := res.AllMax()
	count := 0
	for _, s := range all {
		if s == attrset.Single(0) {
			count++
		}
	}
	if count != 1 {
		t.Errorf("A appears %d times in AllMax", count)
	}
}
