package tane

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/relation"
)

// TestEpsilonMonotonicity: raising ε can only loosen the cover — every FD
// emitted at ε₁ must be implied at ε₂ ≥ ε₁ by some FD with a subset LHS
// and the same RHS.
func TestEpsilonMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for iter := 0; iter < 30; iter++ {
		n := 2 + rng.Intn(3)
		rows := 4 + rng.Intn(16)
		cols := make([][]int, n)
		for a := range cols {
			cols[a] = make([]int, rows)
			dom := 1 + rng.Intn(4)
			for i := range cols[a] {
				cols[a][i] = rng.Intn(dom)
			}
		}
		r, err := relation.FromCodes(make([]string, n), cols)
		if err != nil {
			t.Fatal(err)
		}
		eps1 := rng.Float64() * 0.3
		eps2 := eps1 + rng.Float64()*0.3
		low := run(t, r, Options{Epsilon: eps1})
		high := run(t, r, Options{Epsilon: eps2})
		for _, f := range low.FDs {
			ok := false
			for _, g := range high.FDs {
				if g.RHS == f.RHS && g.LHS.SubsetOf(f.LHS) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("iter %d: FD %s at ε=%.3f has no counterpart at ε=%.3f\nlow: %v\nhigh: %v",
					iter, f, eps1, eps2, low.FDs, high.FDs)
			}
		}
	}
}

// TestApproximateMinimality: no emitted FD has a proper-subset LHS also
// emitted for the same RHS.
func TestApproximateMinimality(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for iter := 0; iter < 30; iter++ {
		n := 2 + rng.Intn(3)
		rows := 4 + rng.Intn(16)
		cols := make([][]int, n)
		for a := range cols {
			cols[a] = make([]int, rows)
			dom := 1 + rng.Intn(4)
			for i := range cols[a] {
				cols[a][i] = rng.Intn(dom)
			}
		}
		r, err := relation.FromCodes(make([]string, n), cols)
		if err != nil {
			t.Fatal(err)
		}
		res := run(t, r, Options{Epsilon: rng.Float64() * 0.4})
		for i, f := range res.FDs {
			for j, g := range res.FDs {
				if i != j && f.RHS == g.RHS && g.LHS.ProperSubsetOf(f.LHS) {
					t.Fatalf("iter %d: %s subsumed by %s", iter, f, g)
				}
			}
		}
	}
}

// TestG3AgainstDirectComputation pins the g3 helper itself.
func TestG3AgainstDirectComputation(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for iter := 0; iter < 40; iter++ {
		n := 2 + rng.Intn(3)
		rows := 2 + rng.Intn(20)
		cols := make([][]int, n)
		for a := range cols {
			cols[a] = make([]int, rows)
			dom := 1 + rng.Intn(4)
			for i := range cols[a] {
				cols[a][i] = rng.Intn(dom)
			}
		}
		r, err := relation.FromCodes(make([]string, n), cols)
		if err != nil {
			t.Fatal(err)
		}
		// Every FD found at a generous epsilon gets its g3 re-derived
		// directly; exact FDs must have g3 = 0.
		res := run(t, r, Options{Epsilon: 0.45})
		for _, f := range res.FDs {
			if g := g3Direct(r, f); g > 0.45+1e-12 {
				t.Fatalf("iter %d: emitted %s with g3 %v", iter, f, g)
			}
		}
		exact := run(t, r, Options{})
		for _, f := range exact.FDs {
			if g := g3Direct(r, f); g != 0 {
				t.Fatalf("iter %d: exact FD %s has g3 %v", iter, f, g)
			}
		}
	}
}

// TestMaxLHSMatchesFilteredFull: bounding the LHS yields exactly the
// full-run FDs whose LHS fits the bound.
func TestMaxLHSMatchesFilteredFull(t *testing.T) {
	r := relation.PaperExample()
	full := run(t, r, Options{})
	for bound := 1; bound <= 3; bound++ {
		bounded := run(t, r, Options{MaxLHS: bound})
		var want []string
		for _, f := range full.FDs {
			if f.LHS.Len() <= bound {
				want = append(want, f.String())
			}
		}
		if len(bounded.FDs) != len(want) {
			t.Fatalf("bound %d: %d FDs, want %d", bound, len(bounded.FDs), len(want))
		}
		for i, f := range bounded.FDs {
			if f.String() != want[i] {
				t.Fatalf("bound %d: FD %d = %s, want %s", bound, i, f, want[i])
			}
		}
	}
}

func TestZeroRowRelation(t *testing.T) {
	r, err := relation.FromRows([]string{"a", "b"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), r, Options{Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// Vacuously, ∅ → A for every attribute.
	if len(res.FDs) != 2 {
		t.Errorf("FDs = %v", res.FDs)
	}
}
