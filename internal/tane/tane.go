// Package tane reimplements the TANE algorithm (Huhtala, Kärkkäinen,
// Porkka, Toivonen: "Efficient discovery of functional and approximate
// dependencies using partitions", ICDE 1998) — the baseline the Dep-Miner
// paper compares against (§5.1).
//
// TANE searches the attribute-set lattice levelwise, starting from small
// left-hand sides. For each set X of the current level it maintains the
// stripped partition π̂_X (computed by partition products along the
// lattice) and the RHS-candidate set C⁺(X); a dependency X\{A} → A is
// emitted when valid and minimal, keys prune their supersets, and sets
// with empty candidate sets are dropped. The validity test compares full
// partition class counts: X → A holds iff |π_X| = |π_{X∪A}|.
//
// Like the paper's authors ("we have implemented our version of Tane"),
// this is a from-scratch reimplementation: the original binary is limited
// to 32 attributes and another platform.
//
// The package also provides TANE's approximate-dependency mode: X → A is
// approximately valid when its g₃ error (minimum fraction of tuples to
// remove for the FD to hold) is at most a threshold ε.
//
// # Execution model
//
// Each level is held as a canonically sorted slice of nodes. The two
// partition-heavy phases — deriving C⁺(X) with the validity tests, and
// the partition products of the Apriori join — fan out over
// internal/pool workers, one task per node, each worker probing with its
// own reusable partition.Prober and emitting FDs into its node's private
// buffer; buffers merge in node order, so the cover is byte-identical
// for every Options.Workers value. The PRUNE step and the join's
// candidate enumeration are pure set algebra and stay serial.
//
// Partitions live in an internal/pstore store: charged by byte footprint
// against Options.MaxPartitionBytes, evicted LRU-per-level when over the
// cap, and transparently recomputed from the single-attribute roots on a
// miss (the classic forget-and-recompute trade). The validity and key
// tests of exact mode need only class counts, which are cached per node
// when its partition is built — so exact search touches the store only
// inside the join, and a tight cap costs recomputes, never correctness.
package tane

import (
	"context"
	"fmt"
	"slices"
	"time"

	"repro/internal/attrset"
	"repro/internal/faultinject"
	"repro/internal/fd"
	"repro/internal/guard"
	"repro/internal/partition"
	"repro/internal/pool"
	"repro/internal/pstore"
	"repro/internal/relation"
)

// Options configure a TANE run.
type Options struct {
	// Epsilon is the approximate-dependency threshold ε ∈ [0, 1). Zero
	// discovers exact dependencies (classic mode). With ε > 0, an FD
	// X → A is emitted when g₃(X → A) ≤ ε and no subset-LHS dependency
	// X'⊂X already satisfies it.
	Epsilon float64
	// MaxLHS bounds the size of left-hand sides explored (0 = no bound).
	// Levels beyond the bound are not generated.
	MaxLHS int
	// Workers caps the worker pool evaluating each lattice level:
	// 0 = all cores, 1 = the sequential reference path. The discovered
	// cover is byte-identical for every value.
	Workers int
	// MaxPartitionBytes bounds the resident byte footprint of the
	// materialised partitions (0 = unbounded). Over the cap, partitions
	// are evicted LRU-per-level and recomputed on demand along their
	// product path; the trade costs time, never correctness. The
	// single-attribute root partitions are pinned outside the cap.
	MaxPartitionBytes int64
	// Budget governs the run: each lattice level charges its width (the
	// number of candidate attribute sets materialised) and every
	// partition materialisation charges its byte footprint, both against
	// the one shared pool, and each level passes a deadline checkpoint.
	// On overrun Run returns the partial Result (FDs of the levels
	// completed, Partial = true) together with the guard error. nil
	// means ungoverned.
	Budget *guard.Budget
}

// Validate rejects nonsensical configurations with an error wrapping
// guard.ErrInvalidOptions — the same sentinel the core pipeline's Options
// use.
func (o Options) Validate() error {
	if o.Epsilon < 0 || o.Epsilon >= 1 {
		return fmt.Errorf("%w: tane epsilon %v out of [0,1)", guard.ErrInvalidOptions, o.Epsilon)
	}
	if o.MaxLHS < 0 {
		return fmt.Errorf("%w: negative MaxLHS %d", guard.ErrInvalidOptions, o.MaxLHS)
	}
	if o.Workers < 0 {
		return fmt.Errorf("%w: negative Workers %d", guard.ErrInvalidOptions, o.Workers)
	}
	if o.MaxPartitionBytes < 0 {
		return fmt.Errorf("%w: negative MaxPartitionBytes %d", guard.ErrInvalidOptions, o.MaxPartitionBytes)
	}
	return nil
}

// Result is the outcome of a TANE run.
type Result struct {
	// FDs is the discovered cover of minimal (approximately) valid,
	// non-trivial dependencies, in deterministic order. An empty-LHS FD
	// ∅ → A denotes a constant column.
	FDs fd.Cover
	// LatticeNodes counts the attribute sets materialised across all
	// levels (search-space size).
	LatticeNodes int
	// Levels is the number of lattice levels processed.
	Levels int
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Stats are the partition store's counters: hits, misses, evictions,
	// recomputes and byte footprints. The byte peaks are deterministic
	// bounds; hit/miss/recompute counts depend on worker scheduling
	// (the cover never does).
	Stats pstore.Stats
	// Partial reports that the search stopped early on a budget or
	// deadline overrun (or a contained panic): FDs holds only the
	// dependencies emitted by the levels completed before the cutoff.
	// Always accompanied by a non-nil error from Run.
	Partial bool
}

// node is the per-attribute-set lattice state. The partition itself lives
// in the store; the node caches the two counts every exact-mode test
// needs (size = ‖π̂_X‖, fullClasses = |π_X|), so eviction can never
// invalidate a test already paid for.
type node struct {
	set   attrset.Set
	cplus attrset.Set
	size  int // ‖π̂_X‖, tuples in stripped classes
	full  int // |π_X|, full class count
	fds   []fd.FD // dependencies emitted for this node, merged in node order
}

// search bundles the per-run state threaded through the level loop.
type search struct {
	r        *relation.Relation
	universe attrset.Set
	epsilon  float64
	workers  int
	probers  []*partition.Prober
	checkers []*g3Checker
	store    *pstore.Store
	cstore   *cplusStore
}

// Run executes TANE on the relation. Panics anywhere in the search are
// contained at this boundary and surface as a *guard.PanicError.
func Run(ctx context.Context, r *relation.Relation, opts Options) (res *Result, err error) {
	start := time.Now()
	res = &Result{}
	var sr *search
	defer func() {
		if p := recover(); p != nil {
			if sr != nil {
				res.Stats = sr.store.Stats()
			}
			res.Partial = true
			res.Elapsed = time.Since(start)
			err = guard.NewPanicError("tane", p)
		}
	}()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	n := r.Arity()
	if n == 0 {
		res.Elapsed = time.Since(start)
		return res, nil
	}

	workers := pool.Resolve(opts.Workers)
	sr = &search{
		r:        r,
		universe: attrset.Universe(n),
		epsilon:  opts.Epsilon,
		workers:  workers,
		probers:  make([]*partition.Prober, workers),
		checkers: make([]*g3Checker, workers),
		store:    pstore.New(opts.MaxPartitionBytes, opts.Budget),
		cstore: &cplusStore{universe: attrset.Universe(n), m: map[attrset.Set]attrset.Set{
			attrset.Empty(): attrset.Universe(n), // C⁺(∅) = R
		}},
	}
	for w := range sr.probers {
		sr.probers[w] = partition.NewProber(r.Rows())
		sr.checkers[w] = newG3Checker(r.Rows())
	}

	// π_∅ has a single class (all tuples); its full class count is 1.
	emptyPart := partition.Of(r, attrset.Empty())
	sr.store.PutRoot(attrset.Empty(), emptyPart)
	empty := &node{set: attrset.Empty(), cplus: sr.universe,
		size: emptyPart.Size(), full: emptyPart.FullClassCount()}
	prevIdx := map[attrset.Set]*node{attrset.Empty(): empty}

	// Level 1: the single-attribute roots, pinned in the store.
	singles := make([]node, n)
	level := make([]*node, 0, n)
	for a := 0; a < n; a++ {
		p := partition.Single(r, a)
		sr.store.PutRoot(attrset.Single(a), p)
		singles[a] = node{set: attrset.Single(a), size: p.Size(), full: p.FullClassCount()}
		level = append(level, &singles[a])
	}

	for len(level) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("tane: cancelled at level %d: %w", res.Levels+1, err)
		}
		if ferr := faultinject.Fire(faultinject.TANELevel); ferr != nil {
			return failTANE(res, sr, start, ferr)
		}
		if cerr := opts.Budget.Charge("tane", len(level)); cerr != nil {
			return failTANE(res, sr, start, cerr)
		}
		res.Levels++
		res.LatticeNodes += len(level)

		if derr := sr.computeDependencies(ctx, prevIdx, level); derr != nil {
			return failTANE(res, sr, start, derr)
		}
		// Merge the per-node FD buffers in canonical node order.
		for _, nd := range level {
			res.FDs = append(res.FDs, nd.fds...)
			nd.fds = nil
			sr.cstore.m[nd.set] = nd.cplus
		}
		survivors := sr.prune(level, res)

		if opts.MaxLHS > 0 && res.Levels > opts.MaxLHS {
			break
		}
		next, nextIdx, gerr := sr.generateNextLevel(ctx, survivors, res.Levels+1)
		if gerr != nil {
			return failTANE(res, sr, start, gerr)
		}
		// Levels below the new one are dead weight: exact mode never
		// reads a partition outside the join, approximate mode still
		// needs the current level's partitions for next level's g₃.
		if opts.Epsilon == 0 {
			sr.store.Forget(res.Levels)
		} else {
			sr.store.Forget(res.Levels - 1)
		}
		prevIdx = nextIdx
		level = next
	}

	if opts.MaxLHS > 0 {
		kept := res.FDs[:0]
		for _, f := range res.FDs {
			if f.LHS.Len() <= opts.MaxLHS {
				kept = append(kept, f)
			}
		}
		res.FDs = kept
	}
	res.FDs.Sort()
	res.Stats = sr.store.Stats()
	res.Elapsed = time.Since(start)
	return res, nil
}

// failTANE classifies a mid-search failure: governed outcomes keep the
// FDs of the completed levels (Partial = true); anything else discards
// the result.
func failTANE(res *Result, sr *search, start time.Time, err error) (*Result, error) {
	if !guard.Governed(err) {
		return nil, err
	}
	res.Partial = true
	res.FDs.Sort()
	res.Stats = sr.store.Stats()
	res.Elapsed = time.Since(start)
	return res, err
}

// computeDependencies is TANE's COMPUTE_DEPENDENCIES, fanned out one task
// per node: derive C⁺(X) from the previous level, then test X\{A} → A for
// each candidate A ∈ X∩C⁺(X). Each task writes only its own node (cplus
// and the FD buffer), reads the immutable previous level, and — in
// approximate mode only — fetches partitions from the store with its
// worker's private prober; exact mode tests on the cached class counts
// alone.
func (sr *search) computeDependencies(ctx context.Context, prevIdx map[attrset.Set]*node, level []*node) error {
	return pool.Run(ctx, sr.workers, len(level), func(ctx context.Context, w, t int) error {
		nd := level[t]
		x := nd.set
		// C⁺(X) = ∩_{A∈X} C⁺(X \ {A}).
		cplus := sr.universe
		x.ForEach(func(a attrset.Attr) {
			if sub, ok := prevIdx[x.Without(a)]; ok {
				cplus = cplus.Intersect(sub.cplus)
			} else {
				// Subset pruned away ⇒ no candidates survive.
				cplus = attrset.Set{}
			}
		})
		nd.cplus = cplus

		candidates := x.Intersect(cplus)
		var verr error
		candidates.ForEach(func(a attrset.Attr) {
			if verr != nil {
				return
			}
			lhs := x.Without(a)
			sub, ok := prevIdx[lhs]
			if !ok {
				return
			}
			valid := false
			if sr.epsilon == 0 {
				// Exact: X\{A} → A holds iff |π_{X\{A}}| = |π_X|
				// (refining cannot lose classes; equality means no class
				// splits on A). Pure count comparison — no partitions.
				valid = sub.full == nd.full
			} else {
				lhsPart, err := sr.store.Get(lhs, sr.probers[w])
				if err != nil {
					verr = err
					return
				}
				xPart, err := sr.store.Get(x, sr.probers[w])
				if err != nil {
					verr = err
					return
				}
				valid = sr.checkers[w].g3(lhsPart, xPart) <= sr.epsilon
			}
			if valid {
				nd.fds = append(nd.fds, fd.FD{LHS: lhs, RHS: a})
				// Remove A and all B ∈ R \ X from C⁺(X).
				nd.cplus = nd.cplus.Intersect(x).Without(a)
			}
		})
		return verr
	})
}

// prune is TANE's PRUNE: drop sets with empty candidate sets, and apply
// key pruning — a (super)key X yields its remaining dependencies X → A
// directly and is removed from the level. It returns the surviving nodes
// in canonical order. The key test runs on the cached partition counts,
// so pruning never touches the store; the C⁺ of every node was recorded
// before the call (the minimality guard consults same-level sets that
// are themselves being pruned).
func (sr *search) prune(level []*node, res *Result) []*node {
	survivors := level[:0]
	for _, nd := range level {
		if nd.cplus.IsEmpty() {
			continue
		}
		if sr.isKey(nd) {
			x := nd.set
			nd.cplus.Diff(x).ForEach(func(a attrset.Attr) {
				// Minimality guard: A ∈ ∩_{B∈X} C⁺((X∪{A}) \ {B}). The
				// intersected sets have |X| attributes; they live in the
				// current level, were pruned at an earlier level, or
				// were never generated — the store covers all three.
				in := true
				xa := x.With(a)
				x.ForEach(func(b attrset.Attr) {
					if !sr.cstore.cplusOf(xa.Without(b)).Contains(a) {
						in = false
					}
				})
				if in {
					res.FDs = append(res.FDs, fd.FD{LHS: x, RHS: a})
				}
			})
			continue
		}
		survivors = append(survivors, nd)
	}
	return survivors
}

// isKey reports whether the node's attribute set is a (super)key —
// exactly for ε = 0, approximately (error ≤ ε) otherwise — from the
// cached partition counts.
func (sr *search) isKey(nd *node) bool {
	if sr.epsilon == 0 {
		return nd.size == 0 // stripped partition empty ⟺ every tuple unique
	}
	rows := sr.r.Rows()
	if rows == 0 {
		return true
	}
	// e(X) = (‖π̂_X‖ - |π̂_X|) / |r|, with |π̂_X| = |π_X| - (|r| - ‖π̂_X‖).
	stripped := nd.full - (rows - nd.size)
	return float64(nd.size-stripped)/float64(rows) <= sr.epsilon
}

// cplusStore memoises C⁺ values of every attribute set encountered, and
// evaluates the defining recurrence for sets the levelwise search never
// materialised (their lattice lineage was pruned). It is only touched by
// the serial PRUNE step.
type cplusStore struct {
	universe attrset.Set
	m        map[attrset.Set]attrset.Set
}

// cplusOf returns the stored C⁺(Y), computing and memoising
// ∩_{B∈Y} C⁺(Y\{B}) when absent. The recursion bottoms out at C⁺(∅) = R,
// which is seeded at construction.
func (s *cplusStore) cplusOf(y attrset.Set) attrset.Set {
	if c, ok := s.m[y]; ok {
		return c
	}
	c := s.universe
	y.ForEach(func(b attrset.Attr) {
		c = c.Intersect(s.cplusOf(y.Without(b)))
	})
	s.m[y] = c
	return c
}

// generateNextLevel is TANE's GENERATE_NEXT_LEVEL in two phases. The
// candidate enumeration — prefix join of the surviving sets plus the
// all-subsets-present prune — is pure set algebra and runs serially over
// the sorted survivors (consecutive runs share a prefix, so the join is a
// linear scan). The partition products, the expensive part, fan out one
// task per candidate; each stores its product under the candidate's
// recorded path and caches the class counts on the node. It returns the
// new level in canonical order together with the survivors' index (the
// next iteration's previous-level lookup).
func (sr *search) generateNextLevel(ctx context.Context, survivors []*node, levelNum int) ([]*node, map[attrset.Set]*node, error) {
	surviveIdx := make(map[attrset.Set]*node, len(survivors))
	for _, nd := range survivors {
		surviveIdx[nd.set] = nd
	}
	if len(survivors) == 0 {
		return nil, surviveIdx, nil
	}

	type candidate struct {
		set, left, right attrset.Set
	}
	var cands []candidate
	// Prefix runs: survivors are sorted lexicographically, so all sets
	// sharing the |X|-1 smallest attributes (the set minus its largest)
	// are consecutive, each run internally ascending by last attribute.
	for lo := 0; lo < len(survivors); {
		prefix := survivors[lo].set.Without(survivors[lo].set.Max())
		hi := lo + 1
		for hi < len(survivors) && survivors[hi].set.Without(survivors[hi].set.Max()) == prefix {
			hi++
		}
		for i := lo; i < hi; i++ {
			for j := i + 1; j < hi; j++ {
				cand := survivors[i].set.Union(survivors[j].set)
				// Prune: every |cand|-1 subset must have survived.
				ok := true
				cand.ForEach(func(a attrset.Attr) {
					if _, in := surviveIdx[cand.Without(a)]; !in {
						ok = false
					}
				})
				if !ok {
					continue
				}
				cands = append(cands, candidate{
					set:  cand,
					left: survivors[i].set, right: survivors[j].set,
				})
			}
		}
		lo = hi
	}
	// The construction order is already canonical; the sort is cheap
	// insurance that the next level's node order — and with it every
	// merge — stays deterministic.
	slices.SortFunc(cands, func(a, b candidate) int { return a.set.CompareLex(b.set) })

	nodes := make([]node, len(cands))
	err := pool.Run(ctx, sr.workers, len(cands), func(ctx context.Context, w, t int) error {
		c := cands[t]
		lp, err := sr.store.Get(c.left, sr.probers[w])
		if err != nil {
			return err
		}
		rp, err := sr.store.Get(c.right, sr.probers[w])
		if err != nil {
			return err
		}
		p := sr.probers[w].Product(lp, rp)
		nodes[t] = node{set: c.set, size: p.Size(), full: p.FullClassCount()}
		return sr.store.Put(c.set, c.left, c.right, levelNum, p)
	})
	if err != nil {
		return nil, nil, err
	}
	next := make([]*node, len(cands))
	for i := range nodes {
		next[i] = &nodes[i]
	}
	return next, surviveIdx, nil
}

// g3Checker computes the g₃ error of approximate mode; one per worker,
// since the tuple→class scratch table is reused across calls.
type g3Checker struct {
	rows    int
	scratch []int // tuple → class size in the X∪A partition
}

func newG3Checker(rows int) *g3Checker {
	return &g3Checker{rows: rows, scratch: make([]int, rows)}
}

// g3 computes g₃(LHS → A) = (Σ_{c∈π̂_LHS} (|c| − maxfreq(c))) / |r|,
// where maxfreq(c) is the size of the largest sub-class of c in π_{LHS∪A}
// (TANE §4.2, stripped-partition form). lhsPart is π̂_LHS and xPart is
// π̂_{LHS∪A}.
func (ck *g3Checker) g3(lhsPart, xPart *partition.Partition) float64 {
	if ck.rows == 0 {
		return 0
	}
	// Map tuples to their class size in π̂_X; singletons count 1.
	for i := range ck.scratch {
		ck.scratch[i] = 1
	}
	for ci, nc := 0, xPart.NumClasses(); ci < nc; ci++ {
		c := xPart.Class(ci)
		for _, t := range c {
			ck.scratch[t] = len(c)
		}
	}
	removed := 0
	for ci, nc := 0, lhsPart.NumClasses(); ci < nc; ci++ {
		c := lhsPart.Class(ci)
		maxFreq := 1
		for _, t := range c {
			if ck.scratch[t] > maxFreq {
				maxFreq = ck.scratch[t]
			}
		}
		removed += len(c) - maxFreq
	}
	return float64(removed) / float64(ck.rows)
}
