// Package tane reimplements the TANE algorithm (Huhtala, Kärkkäinen,
// Porkka, Toivonen: "Efficient discovery of functional and approximate
// dependencies using partitions", ICDE 1998) — the baseline the Dep-Miner
// paper compares against (§5.1).
//
// TANE searches the attribute-set lattice levelwise, starting from small
// left-hand sides. For each set X of the current level it maintains the
// stripped partition π̂_X (computed by partition products along the
// lattice) and the RHS-candidate set C⁺(X); a dependency X\{A} → A is
// emitted when valid and minimal, keys prune their supersets, and sets
// with empty candidate sets are dropped. The validity test compares full
// partition class counts: X → A holds iff |π_X| = |π_{X∪A}|.
//
// Like the paper's authors ("we have implemented our version of Tane"),
// this is a from-scratch reimplementation: the original binary is limited
// to 32 attributes and another platform.
//
// The package also provides TANE's approximate-dependency mode: X → A is
// approximately valid when its g₃ error (minimum fraction of tuples to
// remove for the FD to hold) is at most a threshold ε.
package tane

import (
	"context"
	"fmt"
	"time"

	"repro/internal/attrset"
	"repro/internal/faultinject"
	"repro/internal/fd"
	"repro/internal/guard"
	"repro/internal/partition"
	"repro/internal/relation"
)

// Options configure a TANE run.
type Options struct {
	// Epsilon is the approximate-dependency threshold ε ∈ [0, 1). Zero
	// discovers exact dependencies (classic mode). With ε > 0, an FD
	// X → A is emitted when g₃(X → A) ≤ ε and no subset-LHS dependency
	// X'⊂X already satisfies it.
	Epsilon float64
	// MaxLHS bounds the size of left-hand sides explored (0 = no bound).
	// Levels beyond the bound are not generated.
	MaxLHS int
	// Budget governs the run: each lattice level charges its width (the
	// number of candidate attribute sets materialised — TANE's memory
	// unit) and passes a deadline checkpoint. On overrun Run returns the
	// partial Result (FDs of the levels completed, Partial = true)
	// together with the guard error. nil means ungoverned.
	Budget *guard.Budget
}

// Result is the outcome of a TANE run.
type Result struct {
	// FDs is the discovered cover of minimal (approximately) valid,
	// non-trivial dependencies, in deterministic order. An empty-LHS FD
	// ∅ → A denotes a constant column.
	FDs fd.Cover
	// LatticeNodes counts the attribute sets materialised across all
	// levels (search-space size).
	LatticeNodes int
	// Levels is the number of lattice levels processed.
	Levels int
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Partial reports that the search stopped early on a budget or
	// deadline overrun (or a contained panic): FDs holds only the
	// dependencies emitted by the levels completed before the cutoff.
	// Always accompanied by a non-nil error from Run.
	Partial bool
}

// node is the per-attribute-set lattice state.
type node struct {
	part  *partition.Partition
	cplus attrset.Set
}

// Run executes TANE on the relation. Panics anywhere in the search are
// contained at this boundary and surface as a *guard.PanicError.
func Run(ctx context.Context, r *relation.Relation, opts Options) (res *Result, err error) {
	start := time.Now()
	n := r.Arity()
	res = &Result{}
	defer func() {
		if p := recover(); p != nil {
			res.Partial = true
			res.Elapsed = time.Since(start)
			err = guard.NewPanicError("tane", p)
		}
	}()
	if n == 0 {
		res.Elapsed = time.Since(start)
		return res, nil
	}
	if opts.Epsilon < 0 || opts.Epsilon >= 1 {
		return nil, fmt.Errorf("tane: epsilon %v out of [0,1)", opts.Epsilon)
	}

	universe := attrset.Universe(n)
	prober := partition.NewProber(r.Rows())
	approx := newApproxChecker(r, opts.Epsilon)

	// store retains C⁺ of every set ever computed, across levels and
	// past pruning: the key-pruning minimality guard consults C⁺ of sets
	// that may have been deleted — or never generated, in which case the
	// defining recurrence C⁺(Y) = ∩_{B∈Y} C⁺(Y\{B}) is evaluated on
	// demand (see cplusOf).
	store := &cplusStore{universe: universe, m: map[attrset.Set]attrset.Set{
		attrset.Empty(): universe, // C⁺(∅) = R
	}}

	// π_∅ has a single class (all tuples); its full class count is 1.
	emptyPart := partition.Of(r, attrset.Empty())
	prev := map[attrset.Set]*node{attrset.Empty(): {part: emptyPart, cplus: universe}}

	// Level 1.
	level := make(map[attrset.Set]*node, n)
	for a := 0; a < n; a++ {
		level[attrset.Single(a)] = &node{part: partition.Single(r, a)}
	}

	for len(level) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("tane: cancelled at level %d: %w", res.Levels+1, err)
		}
		if ferr := faultinject.Fire(faultinject.TANELevel); ferr != nil {
			return failTANE(res, start, ferr)
		}
		if cerr := opts.Budget.Charge("tane", len(level)); cerr != nil {
			return failTANE(res, start, cerr)
		}
		res.Levels++
		res.LatticeNodes += len(level)

		computeDependencies(r, prev, level, approx, res)
		for x, nd := range level {
			store.m[x] = nd.cplus
		}
		prune(level, store, approx, res)

		if opts.MaxLHS > 0 && res.Levels > opts.MaxLHS {
			break
		}
		next := generateNextLevel(level, prober)
		prev = level
		level = next
	}

	if opts.MaxLHS > 0 {
		kept := res.FDs[:0]
		for _, f := range res.FDs {
			if f.LHS.Len() <= opts.MaxLHS {
				kept = append(kept, f)
			}
		}
		res.FDs = kept
	}
	res.FDs.Sort()
	res.Elapsed = time.Since(start)
	return res, nil
}

// failTANE classifies a mid-search failure: governed outcomes keep the
// FDs of the completed levels (Partial = true); anything else discards
// the result.
func failTANE(res *Result, start time.Time, err error) (*Result, error) {
	if !guard.Governed(err) {
		return nil, err
	}
	res.Partial = true
	res.FDs.Sort()
	res.Elapsed = time.Since(start)
	return res, err
}

// computeDependencies is TANE's COMPUTE_DEPENDENCIES: derive C⁺(X) from
// the previous level, then test X\{A} → A for each candidate A ∈ X∩C⁺(X).
func computeDependencies(r *relation.Relation, prev, level map[attrset.Set]*node, approx *approxChecker, res *Result) {
	universe := attrset.Universe(r.Arity())
	for x, nd := range level {
		// C⁺(X) = ∩_{A∈X} C⁺(X \ {A}).
		cplus := universe
		x.ForEach(func(a attrset.Attr) {
			sub, ok := prev[x.Without(a)]
			if ok {
				cplus = cplus.Intersect(sub.cplus)
			} else {
				// Subset pruned away ⇒ no candidates survive.
				cplus = attrset.Set{}
			}
		})
		nd.cplus = cplus
	}
	for x, nd := range level {
		candidates := x.Intersect(nd.cplus)
		candidates.ForEach(func(a attrset.Attr) {
			lhs := x.Without(a)
			sub, ok := prev[lhs]
			if !ok {
				return
			}
			if approx.valid(sub.part, nd.part) {
				res.FDs = append(res.FDs, fd.FD{LHS: lhs, RHS: a})
				// Remove A and all B ∈ R \ X from C⁺(X).
				nd.cplus = nd.cplus.Intersect(x).Without(a)
			}
		})
	}
}

// prune is TANE's PRUNE: drop sets with empty candidate sets, and apply
// key pruning — a (super)key X yields its remaining dependencies X → A
// directly and is removed from the level.
//
// It runs in two phases: decisions first against the intact level (the
// key-pruning minimality guard consults C⁺ of same-level sets, which may
// themselves be scheduled for deletion), then the deletions.
func prune(level map[attrset.Set]*node, store *cplusStore, approx *approxChecker, res *Result) {
	var doomed []attrset.Set
	for x, nd := range level {
		if nd.cplus.IsEmpty() {
			doomed = append(doomed, x)
			continue
		}
		if approx.isKey(nd.part) {
			nd.cplus.Diff(x).ForEach(func(a attrset.Attr) {
				// Minimality guard: A ∈ ∩_{B∈X} C⁺((X∪{A}) \ {B}). The
				// intersected sets have |X| attributes; they live in the
				// current level, were pruned at an earlier level, or
				// were never generated — the store covers all three.
				in := true
				xa := x.With(a)
				x.ForEach(func(b attrset.Attr) {
					if !store.cplusOf(xa.Without(b)).Contains(a) {
						in = false
					}
				})
				if in {
					res.FDs = append(res.FDs, fd.FD{LHS: x, RHS: a})
				}
			})
			doomed = append(doomed, x)
		}
	}
	for _, x := range doomed {
		delete(level, x)
	}
}

// cplusStore memoises C⁺ values of every attribute set encountered, and
// evaluates the defining recurrence for sets the levelwise search never
// materialised (their lattice lineage was pruned).
type cplusStore struct {
	universe attrset.Set
	m        map[attrset.Set]attrset.Set
}

// cplusOf returns the stored C⁺(Y), computing and memoising
// ∩_{B∈Y} C⁺(Y\{B}) when absent. The recursion bottoms out at C⁺(∅) = R,
// which is seeded at construction.
func (s *cplusStore) cplusOf(y attrset.Set) attrset.Set {
	if c, ok := s.m[y]; ok {
		return c
	}
	c := s.universe
	y.ForEach(func(b attrset.Attr) {
		c = c.Intersect(s.cplusOf(y.Without(b)))
	})
	s.m[y] = c
	return c
}

// generateNextLevel is TANE's GENERATE_NEXT_LEVEL: prefix join of the
// surviving sets plus the all-subsets-present prune, computing each new
// partition as the product of the two joined parents.
func generateNextLevel(level map[attrset.Set]*node, prober *partition.Prober) map[attrset.Set]*node {
	if len(level) == 0 {
		return nil
	}
	// Group by prefix (set minus its largest attribute).
	type member struct {
		last attrset.Attr
		nd   *node
	}
	byPrefix := make(map[attrset.Set][]member)
	for x, nd := range level {
		last := x.Max()
		byPrefix[x.Without(last)] = append(byPrefix[x.Without(last)], member{last, nd})
	}
	next := make(map[attrset.Set]*node)
	for prefix, members := range byPrefix {
		for i := 0; i < len(members); i++ {
			for j := 0; j < len(members); j++ {
				if members[i].last >= members[j].last {
					continue
				}
				cand := prefix.With(members[i].last).With(members[j].last)
				if _, dup := next[cand]; dup {
					continue
				}
				// Prune: every |cand|-1 subset must be in the level.
				ok := true
				cand.ForEach(func(a attrset.Attr) {
					if _, in := level[cand.Without(a)]; !in {
						ok = false
					}
				})
				if !ok {
					continue
				}
				next[cand] = &node{
					part: prober.Product(members[i].nd.part, members[j].nd.part),
				}
			}
		}
	}
	return next
}

// approxChecker implements the validity and key tests, exact or with g₃
// error threshold.
type approxChecker struct {
	r       *relation.Relation
	epsilon float64
	scratch []int // tuple → class id of the X∪A partition
}

func newApproxChecker(r *relation.Relation, epsilon float64) *approxChecker {
	return &approxChecker{r: r, epsilon: epsilon, scratch: make([]int, r.Rows())}
}

// valid reports whether the dependency with stripped LHS partition lhsPart
// and stripped LHS∪RHS partition xPart holds.
//
// Exact mode: the dependency holds iff the full partitions have the same
// number of classes (refining cannot lose classes; equality means no class
// of π_LHS splits on A).
//
// Approximate mode: g₃(LHS → A) = (Σ_{c∈π̂_LHS} (|c| − maxfreq(c))) / |r|,
// where maxfreq(c) is the size of the largest sub-class of c in π_{LHS∪A};
// the FD is valid when g₃ ≤ ε. (TANE §4.2, stripped-partition form.)
func (ac *approxChecker) valid(lhsPart, xPart *partition.Partition) bool {
	if ac.epsilon == 0 {
		return lhsPart.FullClassCount() == xPart.FullClassCount()
	}
	return ac.g3(lhsPart, xPart) <= ac.epsilon
}

// g3 computes the g₃ error of the dependency whose LHS partition is
// lhsPart and whose LHS∪RHS partition is xPart.
func (ac *approxChecker) g3(lhsPart, xPart *partition.Partition) float64 {
	if ac.r.Rows() == 0 {
		return 0
	}
	// Map tuples to their class size in π̂_{X}; singletons count 1.
	for i := range ac.scratch {
		ac.scratch[i] = 1
	}
	for ci, nc := 0, xPart.NumClasses(); ci < nc; ci++ {
		c := xPart.Class(ci)
		for _, t := range c {
			ac.scratch[t] = len(c)
		}
	}
	removed := 0
	for ci, nc := 0, lhsPart.NumClasses(); ci < nc; ci++ {
		c := lhsPart.Class(ci)
		maxFreq := 1
		for _, t := range c {
			if ac.scratch[t] > maxFreq {
				maxFreq = ac.scratch[t]
			}
		}
		removed += len(c) - maxFreq
	}
	return float64(removed) / float64(ac.r.Rows())
}

// isKey reports whether the partition's attribute set is a (super)key —
// exactly for ε = 0, approximately (error ≤ ε) otherwise.
func (ac *approxChecker) isKey(p *partition.Partition) bool {
	if ac.epsilon == 0 {
		return p.IsUnique()
	}
	return p.Error() <= ac.epsilon
}
