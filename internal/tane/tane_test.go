package tane

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/attrset"
	"repro/internal/fd"
	"repro/internal/guard"
	"repro/internal/relation"
)

func set(spec string) attrset.Set {
	s, ok := attrset.Parse(spec)
	if !ok {
		panic("bad spec " + spec)
	}
	return s
}

func run(t *testing.T, r *relation.Relation, opts Options) *Result {
	t.Helper()
	res, err := Run(context.Background(), r, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func coversIdentical(a, b fd.Cover) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TANE must find exactly the paper's 14 minimal FDs on the running
// example.
func TestPaperExample(t *testing.T) {
	r := relation.PaperExample()
	res := run(t, r, Options{})
	want := fd.MineBrute(r)
	if !coversIdentical(res.FDs, want) {
		t.Errorf("TANE FDs =\n%s\nwant\n%s", res.FDs, want)
	}
	if res.Levels == 0 || res.LatticeNodes == 0 || res.Elapsed <= 0 {
		t.Error("stats not populated")
	}
}

func TestConstantColumn(t *testing.T) {
	r, err := relation.FromRows([]string{"a", "b"},
		[][]string{{"1", "k"}, {"2", "k"}})
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, r, Options{})
	want := fd.Cover{{LHS: attrset.Empty(), RHS: 1}}
	if !coversIdentical(res.FDs, want) {
		t.Errorf("FDs = %v, want ∅ → B", res.FDs)
	}
}

func TestKeyColumn(t *testing.T) {
	r, err := relation.FromRows([]string{"k", "v", "w"}, [][]string{
		{"1", "x", "p"}, {"2", "x", "q"}, {"3", "y", "p"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, r, Options{})
	want := fd.MineBrute(r)
	if !coversIdentical(res.FDs, want) {
		t.Errorf("FDs =\n%s\nwant\n%s", res.FDs, want)
	}
	// k → v and k → w must be there (k is a key).
	found := 0
	for _, f := range res.FDs {
		if f.LHS == set("A") {
			found++
		}
	}
	if found != 2 {
		t.Errorf("key column FDs found %d times, want 2", found)
	}
}

func TestDegenerate(t *testing.T) {
	// Empty, single-row, zero-attribute relations.
	r0, err := relation.FromRows(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, r0, Options{})
	if len(res.FDs) != 0 {
		t.Error("no FDs on empty schema")
	}
	r1, err := relation.FromRows([]string{"a", "b"}, [][]string{{"1", "x"}})
	if err != nil {
		t.Fatal(err)
	}
	res = run(t, r1, Options{})
	want := fd.Cover{{LHS: attrset.Empty(), RHS: 0}, {LHS: attrset.Empty(), RHS: 1}}
	if !coversIdentical(res.FDs, want) {
		t.Errorf("single-tuple FDs = %v", res.FDs)
	}
}

func TestEpsilonValidation(t *testing.T) {
	r := relation.PaperExample()
	if _, err := Run(context.Background(), r, Options{Epsilon: -0.1}); err == nil {
		t.Error("negative epsilon accepted")
	}
	if _, err := Run(context.Background(), r, Options{Epsilon: 1.0}); err == nil {
		t.Error("epsilon = 1 accepted")
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{Epsilon: -0.1},
		{Epsilon: 1},
		{MaxLHS: -1},
		{Workers: -1},
		{MaxPartitionBytes: -1},
	}
	for _, opts := range bad {
		if err := opts.Validate(); !errors.Is(err, guard.ErrInvalidOptions) {
			t.Errorf("Validate(%+v) = %v, want ErrInvalidOptions", opts, err)
		}
		if _, err := Run(context.Background(), relation.PaperExample(), opts); !errors.Is(err, guard.ErrInvalidOptions) {
			t.Errorf("Run(%+v) err = %v, want ErrInvalidOptions", opts, err)
		}
	}
	good := Options{Epsilon: 0.5, MaxLHS: 3, Workers: 8, MaxPartitionBytes: 1 << 20}
	if err := good.Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

// TestWorkersAndCapIdenticalCover pins the package-level determinism
// contract on the paper example: every (Workers, MaxPartitionBytes)
// combination yields the sequential, unbounded cover.
func TestWorkersAndCapIdenticalCover(t *testing.T) {
	r := relation.PaperExample()
	want, err := Run(context.Background(), r, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 8} {
		for _, cap := range []int64{0, 1, 2048} {
			res, err := Run(context.Background(), r, Options{Workers: workers, MaxPartitionBytes: cap})
			if err != nil {
				t.Fatalf("workers=%d cap=%d: %v", workers, cap, err)
			}
			if !coversIdentical(res.FDs, want.FDs) {
				t.Errorf("workers=%d cap=%d: cover differs:\n got %v\nwant %v",
					workers, cap, res.FDs, want.FDs)
			}
			if res.LatticeNodes != want.LatticeNodes || res.Levels != want.Levels {
				t.Errorf("workers=%d cap=%d: lattice counters differ", workers, cap)
			}
			if cap > 0 && res.Stats.PeakBytes > cap {
				t.Errorf("workers=%d cap=%d: PeakBytes %d over cap", workers, cap, res.Stats.PeakBytes)
			}
		}
	}
}

func TestApproximateDependencies(t *testing.T) {
	// 10 tuples; a → b holds except for one dirty tuple (g3 = 1/10).
	rows := [][]string{
		{"1", "x"}, {"1", "x"}, {"1", "x"}, {"1", "y"}, // dirty: a=1 maps to x and y
		{"2", "z"}, {"2", "z"}, {"3", "w"}, {"3", "w"},
		{"4", "u"}, {"5", "v"},
	}
	r, err := relation.FromRows([]string{"a", "b"}, rows)
	if err != nil {
		t.Fatal(err)
	}
	exact := run(t, r, Options{})
	for _, f := range exact.FDs {
		if f.LHS == set("A") && f.RHS == 1 {
			t.Fatal("a → b should NOT hold exactly")
		}
	}
	approx := run(t, r, Options{Epsilon: 0.15})
	found := false
	for _, f := range approx.FDs {
		if f.LHS == set("A") && f.RHS == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("a → b should hold at ε=0.15; got %v", approx.FDs)
	}
	// At ε below the error it must still be rejected.
	strict := run(t, r, Options{Epsilon: 0.05})
	for _, f := range strict.FDs {
		if f.LHS == set("A") && f.RHS == 1 {
			t.Error("a → b should not hold at ε=0.05")
		}
	}
}

func TestApproximateSubsumesExact(t *testing.T) {
	// Every exact FD remains (approximately) implied at any ε: each exact
	// minimal FD either appears or has a subset LHS in the approximate
	// cover.
	r := relation.PaperExample()
	exact := run(t, r, Options{})
	approx := run(t, r, Options{Epsilon: 0.2})
	for _, f := range exact.FDs {
		ok := false
		for _, g := range approx.FDs {
			if g.RHS == f.RHS && g.LHS.SubsetOf(f.LHS) {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("exact FD %s lost at ε=0.2 (approx cover: %v)", f, approx.FDs)
		}
	}
}

func TestMaxLHS(t *testing.T) {
	r := relation.PaperExample()
	res := run(t, r, Options{MaxLHS: 1})
	for _, f := range res.FDs {
		if f.LHS.Len() > 1 {
			t.Errorf("FD %s exceeds MaxLHS=1", f)
		}
	}
	// All size-1 minimal FDs of the paper must be present.
	want := []fd.FD{
		{LHS: set("D"), RHS: 1},
		{LHS: set("B"), RHS: 3},
		{LHS: set("B"), RHS: 4},
		{LHS: set("C"), RHS: 4},
		{LHS: set("D"), RHS: 4},
	}
	for _, w := range want {
		found := false
		for _, f := range res.FDs {
			if f == w {
				found = true
			}
		}
		if !found {
			t.Errorf("missing %s", w)
		}
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, relation.PaperExample(), Options{}); err == nil {
		t.Error("cancelled context should abort TANE")
	}
}

// TestPropertyMatchesBruteForce cross-validates TANE against the
// brute-force miner on random relations — the same oracle used for
// Dep-Miner, proving both discover identical canonical covers.
func TestPropertyMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 80; iter++ {
		n := 1 + rng.Intn(5)
		rows := rng.Intn(18)
		cols := make([][]int, n)
		for a := range cols {
			cols[a] = make([]int, rows)
			dom := 1 + rng.Intn(6)
			for i := range cols[a] {
				cols[a][i] = rng.Intn(dom)
			}
		}
		r, err := relation.FromCodes(make([]string, n), cols)
		if err != nil {
			t.Fatal(err)
		}
		r = r.Deduplicate()
		want := fd.MineBrute(r)
		res := run(t, r, Options{})
		if !coversIdentical(res.FDs, want) {
			t.Fatalf("iter %d:\n got %s\nwant %s\nrelation:\n%v", iter, res.FDs, want, r)
		}
	}
}

// TestPropertyApproximateG3Bound: every FD emitted at threshold ε really
// has g3 error ≤ ε (checked by direct computation on the relation).
func TestPropertyApproximateG3Bound(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for iter := 0; iter < 40; iter++ {
		n := 2 + rng.Intn(3)
		rows := 2 + rng.Intn(16)
		cols := make([][]int, n)
		for a := range cols {
			cols[a] = make([]int, rows)
			dom := 1 + rng.Intn(4)
			for i := range cols[a] {
				cols[a][i] = rng.Intn(dom)
			}
		}
		r, err := relation.FromCodes(make([]string, n), cols)
		if err != nil {
			t.Fatal(err)
		}
		eps := rng.Float64() * 0.5
		res := run(t, r, Options{Epsilon: eps})
		for _, f := range res.FDs {
			if g := g3Direct(r, f); g > eps+1e-12 {
				t.Fatalf("iter %d: %s has g3 %v > ε %v", iter, f, g, eps)
			}
		}
	}
}

// g3Direct computes g3(X→A) from first principles: group by X, count the
// tuples outside each group's majority A-value.
func g3Direct(r *relation.Relation, f fd.FD) float64 {
	if r.Rows() == 0 {
		return 0
	}
	groups := make(map[string]map[int]int)
	attrs := f.LHS.Attrs()
	for t := 0; t < r.Rows(); t++ {
		k := ""
		for _, a := range attrs {
			k += r.Value(t, a) + "\x00"
		}
		if groups[k] == nil {
			groups[k] = make(map[int]int)
		}
		groups[k][r.Code(t, f.RHS)]++
	}
	removed := 0
	for _, counts := range groups {
		total, max := 0, 0
		for _, c := range counts {
			total += c
			if c > max {
				max = c
			}
		}
		removed += total - max
	}
	return float64(removed) / float64(r.Rows())
}
