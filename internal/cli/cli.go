// Package cli centralises behaviour shared by every command-line tool and
// daemon in this repository: POSIX-style signal handling and a common
// exit-code contract, so that scripts driving the miners can distinguish
// "bad input" from "ran out of budget" from "operator pressed Ctrl-C".
//
// Exit codes:
//
//	0   success
//	1   bad input or operational error
//	2   tool-specific "checked and failed" (fdcheck: rules violated)
//	3   resource budget or deadline exceeded (partial results may have
//	    been printed)
//	130 interrupted by SIGINT/SIGTERM (128+2, the shell convention)
package cli

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/guard"
)

// Exit codes shared by all commands.
const (
	ExitOK          = 0
	ExitError       = 1
	ExitChecked     = 2
	ExitBudget      = 3
	ExitInterrupted = 130
)

// NotifyContext returns a copy of parent cancelled on SIGINT or SIGTERM,
// plus its stop function. The first signal cancels the context (letting
// in-flight phases unwind, partial results print, and servers drain); a
// second signal kills the process via the default handler, because stop()
// restores it — callers should defer stop(). This is the one signal path
// shared by the five CLIs and the depminerd daemon.
func NotifyContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}

// Main is the shared entry-point wrapper: it installs the signal context,
// runs the tool, prints a failure to stderr prefixed with the command
// name, and exits with the contract code. Commands call it from main()
// after flag parsing, so signal handling and exit-code mapping cannot
// drift between tools.
func Main(name string, run func(ctx context.Context) error) {
	ctx, stop := NotifyContext(context.Background())
	err := run(ctx)
	stop()
	if err == nil {
		return
	}
	code := Code(ctx, err)
	// "Checked and failed" outcomes (exit 2) already reported themselves
	// on stdout; everything else gets the conventional stderr line.
	if code != ExitChecked {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
	}
	osExit(code)
}

// osExit is swapped out by tests of Main.
var osExit = os.Exit

// exitError carries an explicit exit code chosen by the tool (e.g.
// fdcheck's "rules violated" → 2), overriding Code's classification.
type exitError struct {
	err  error
	code int
}

func (e *exitError) Error() string { return e.err.Error() }
func (e *exitError) Unwrap() error { return e.err }

// WithExitCode attaches an explicit exit code to err; Code returns it
// unchanged. A nil err stays nil.
func WithExitCode(err error, code int) error {
	if err == nil {
		return nil
	}
	return &exitError{err: err, code: code}
}

// Code maps an error from a miner run to the exit-code contract. ctx
// should be the signal context the run used: a cancelled signal context
// turns context.Canceled errors into "interrupted".
func Code(ctx context.Context, err error) int {
	if err == nil {
		return ExitOK
	}
	var ee *exitError
	if errors.As(err, &ee) {
		return ee.code
	}
	if errors.Is(err, guard.ErrBudget) || errors.Is(err, guard.ErrDeadline) ||
		errors.Is(err, context.DeadlineExceeded) {
		return ExitBudget
	}
	if errors.Is(err, context.Canceled) && ctx != nil && ctx.Err() != nil {
		return ExitInterrupted
	}
	return ExitError
}
