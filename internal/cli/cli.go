// Package cli centralises behaviour shared by every command-line tool in
// this repository: POSIX-style signal handling and a common exit-code
// contract, so that scripts driving the miners can distinguish "bad
// input" from "ran out of budget" from "operator pressed Ctrl-C".
//
// Exit codes:
//
//	0   success
//	1   bad input or operational error
//	2   tool-specific "checked and failed" (fdcheck: rules violated)
//	3   resource budget or deadline exceeded (partial results may have
//	    been printed)
//	130 interrupted by SIGINT/SIGTERM (128+2, the shell convention)
package cli

import (
	"context"
	"errors"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/guard"
)

// Exit codes shared by all commands.
const (
	ExitOK          = 0
	ExitError       = 1
	ExitBudget      = 3
	ExitInterrupted = 130
)

// Context returns a context cancelled on SIGINT or SIGTERM, plus its stop
// function. The first signal cancels the context (letting in-flight
// phases unwind and partial results print); a second signal kills the
// process via the default handler, because stop() restores it — callers
// should defer stop().
func Context() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// Code maps an error from a miner run to the exit-code contract. ctx
// should be the signal context the run used: a cancelled signal context
// turns context.Canceled errors into "interrupted".
func Code(ctx context.Context, err error) int {
	if err == nil {
		return ExitOK
	}
	if errors.Is(err, guard.ErrBudget) || errors.Is(err, guard.ErrDeadline) ||
		errors.Is(err, context.DeadlineExceeded) {
		return ExitBudget
	}
	if errors.Is(err, context.Canceled) && ctx != nil && ctx.Err() != nil {
		return ExitInterrupted
	}
	return ExitError
}
