package cli

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/guard"
)

func TestCode(t *testing.T) {
	bg := context.Background()
	cancelled, cancel := context.WithCancel(bg)
	cancel()

	budget := guard.New(guard.Limits{Units: 1})
	_ = budget.Charge("x", 1)
	overrun := budget.Charge("x", 1)
	deadline := guard.New(guard.Limits{Deadline: time.Now().Add(-time.Second)}).Checkpoint("x")

	cases := []struct {
		name string
		ctx  context.Context
		err  error
		want int
	}{
		{"nil", bg, nil, ExitOK},
		{"plain", bg, errors.New("boom"), ExitError},
		{"budget", bg, overrun, ExitBudget},
		{"deadline", bg, deadline, ExitBudget},
		{"ctx-deadline", bg, context.DeadlineExceeded, ExitBudget},
		{"interrupted", cancelled, context.Canceled, ExitInterrupted},
		{"cancel-no-signal", bg, context.Canceled, ExitError},
		{"explicit", bg, WithExitCode(errors.New("rules violated"), ExitChecked), ExitChecked},
		{"explicit-wrapped", bg, fmt.Errorf("outer: %w", WithExitCode(errors.New("x"), ExitChecked)), ExitChecked},
	}
	for _, c := range cases {
		if got := Code(c.ctx, c.err); got != c.want {
			t.Errorf("%s: Code = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestWithExitCodeNil(t *testing.T) {
	if WithExitCode(nil, ExitChecked) != nil {
		t.Fatal("WithExitCode(nil) should stay nil")
	}
}

func TestWithExitCodePreservesIs(t *testing.T) {
	sentinel := errors.New("violated")
	err := WithExitCode(fmt.Errorf("wrap: %w", sentinel), ExitChecked)
	if !errors.Is(err, sentinel) {
		t.Fatal("WithExitCode must preserve the error chain")
	}
}

func TestNotifyContextCancelsOnStop(t *testing.T) {
	ctx, stop := NotifyContext(context.Background())
	if ctx.Err() != nil {
		t.Fatal("fresh signal context already cancelled")
	}
	stop()
	if ctx.Err() == nil {
		t.Fatal("stop() must cancel the signal context")
	}
}

func TestNotifyContextInheritsParent(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	ctx, stop := NotifyContext(parent)
	defer stop()
	cancel()
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("signal context must follow parent cancellation")
	}
}

func TestMainExitCodes(t *testing.T) {
	var got []int
	osExit = func(code int) { got = append(got, code) }
	defer func() { osExit = os_Exit }()

	Main("t", func(ctx context.Context) error { return nil })
	Main("t", func(ctx context.Context) error { return errors.New("boom") })
	Main("t", func(ctx context.Context) error { return WithExitCode(errors.New("checked"), ExitChecked) })
	Main("t", func(ctx context.Context) error {
		b := guard.New(guard.Limits{Deadline: time.Now().Add(-time.Second)})
		return b.Checkpoint("x")
	})

	want := []int{ExitError, ExitChecked, ExitBudget} // success exits nothing
	if len(got) != len(want) {
		t.Fatalf("exit calls = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("exit calls = %v, want %v", got, want)
		}
	}
}

// os_Exit keeps a reference to the real exiter for restoration.
var os_Exit = osExit
