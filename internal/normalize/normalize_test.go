package normalize

import (
	"math/rand"
	"testing"

	"repro/internal/attrset"
	"repro/internal/fd"
	"repro/internal/relation"
)

func set(spec string) attrset.Set {
	s, ok := attrset.Parse(spec)
	if !ok {
		panic("bad spec " + spec)
	}
	return s
}

func mk(lhs string, rhs int) fd.FD { return fd.FD{LHS: set(lhs), RHS: rhs} }

// The paper's running example cover.
func paperCover() fd.Cover {
	return fd.MineBrute(relation.PaperExample())
}

func TestThreeNFPaperExample(t *testing.T) {
	cover := paperCover()
	dec := ThreeNF(cover, 5)
	if len(dec.Schemas) == 0 {
		t.Fatal("no schemas")
	}
	union := attrset.Set{}
	for _, s := range dec.Schemas {
		union = union.Union(s.Attrs)
		if !Is3NF(cover, s.Attrs, 5) {
			t.Errorf("schema %v not in 3NF", s.Attrs)
		}
		if !s.Key.SubsetOf(s.Attrs) {
			t.Errorf("key %v outside schema %v", s.Key, s.Attrs)
		}
	}
	if union != attrset.Universe(5) {
		t.Errorf("attributes lost: union = %v", union)
	}
	if !PreservesDependencies(cover, dec, 5) {
		t.Error("3NF synthesis must preserve dependencies")
	}
	if !LosslessJoin(cover, dec, 5) {
		t.Error("3NF synthesis must be lossless")
	}
	// Some schema contains a candidate key of R.
	hasKey := false
	for _, s := range dec.Schemas {
		for _, k := range dec.Keys {
			if k.SubsetOf(s.Attrs) {
				hasKey = true
			}
		}
	}
	if !hasKey {
		t.Error("no schema contains a key of R")
	}
}

func TestBCNFPaperExample(t *testing.T) {
	cover := paperCover()
	dec, err := BCNF(cover, 5)
	if err != nil {
		t.Fatal(err)
	}
	union := attrset.Set{}
	for _, s := range dec.Schemas {
		union = union.Union(s.Attrs)
		if !IsBCNF(cover, s.Attrs, 5) {
			t.Errorf("schema %v not in BCNF", s.Attrs)
		}
	}
	if union != attrset.Universe(5) {
		t.Errorf("attributes lost: union = %v", union)
	}
	if !LosslessJoin(cover, dec, 5) {
		t.Error("BCNF decomposition must be lossless")
	}
}

func TestBCNFArityCap(t *testing.T) {
	if _, err := BCNF(nil, 25); err == nil {
		t.Error("arity 25 should be rejected")
	}
}

func TestTextbookExample(t *testing.T) {
	// R(A,B,C), A → B: BCNF splits into (A,B) and (A,C).
	cover := fd.Cover{mk("A", 1)}
	dec, err := BCNF(cover, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Schemas) != 2 {
		t.Fatalf("schemas = %d, want 2", len(dec.Schemas))
	}
	want := map[attrset.Set]bool{set("AB"): true, set("AC"): true}
	for _, s := range dec.Schemas {
		if !want[s.Attrs] {
			t.Errorf("unexpected schema %v", s.Attrs)
		}
	}
	if !LosslessJoin(cover, dec, 3) {
		t.Error("lossless expected")
	}
}

func TestBCNFNotDependencyPreservingCase(t *testing.T) {
	// Classic: R(A,B,C) with AB → C, C → B. BCNF cannot preserve AB → C.
	cover := fd.Cover{mk("AB", 2), mk("C", 1)}
	dec, err := BCNF(cover, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range dec.Schemas {
		if !IsBCNF(cover, s.Attrs, 3) {
			t.Errorf("schema %v not BCNF", s.Attrs)
		}
	}
	if !LosslessJoin(cover, dec, 3) {
		t.Error("lossless expected")
	}
	if PreservesDependencies(cover, dec, 3) {
		t.Error("this decomposition is known to lose AB → C")
	}
	// 3NF keeps it.
	dec3 := ThreeNF(cover, 3)
	if !PreservesDependencies(cover, dec3, 3) {
		t.Error("3NF must preserve dependencies")
	}
	if !LosslessJoin(cover, dec3, 3) {
		t.Error("3NF must be lossless")
	}
}

func TestAlreadyNormalized(t *testing.T) {
	// A → B over AB is already BCNF: single schema.
	cover := fd.Cover{mk("A", 1)}
	dec, err := BCNF(cover, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Schemas) != 1 || dec.Schemas[0].Attrs != set("AB") {
		t.Errorf("schemas = %v", dec.Schemas)
	}
	// No FDs at all: whole schema, key = R.
	dec, err = BCNF(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Schemas) != 1 || dec.Schemas[0].Key != set("ABC") {
		t.Errorf("no-FD decomposition wrong: %v", dec.Schemas)
	}
}

func TestZeroArity(t *testing.T) {
	dec, err := BCNF(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Schemas) != 0 {
		t.Error("zero-arity should produce no schemas")
	}
	dec3 := ThreeNF(nil, 0)
	if len(dec3.Schemas) != 0 {
		t.Error("zero-arity 3NF should produce no schemas")
	}
}

func TestSchemaNames(t *testing.T) {
	s := Schema{Attrs: set("AB"), Key: set("A")}
	got := s.Names([]string{"empnum", "depnum"})
	if got != "(empnum, depnum) key (empnum)" {
		t.Errorf("Names = %q", got)
	}
}

func TestIs3NFPrimeAttributeCase(t *testing.T) {
	// AB → C, C → B over ABC: C → B has non-superkey LHS but B is prime
	// (AB and AC are keys) → 3NF holds; BCNF fails.
	cover := fd.Cover{mk("AB", 2), mk("C", 1)}
	s := set("ABC")
	if !Is3NF(cover, s, 3) {
		t.Error("ABC should be 3NF")
	}
	if IsBCNF(cover, s, 3) {
		t.Error("ABC should not be BCNF")
	}
}

// Property: on random covers, 3NF synthesis always yields 3NF schemas,
// preserves dependencies and the lossless join; BCNF always yields BCNF
// schemas and the lossless join.
func TestPropertyNormalization(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for iter := 0; iter < 60; iter++ {
		arity := 2 + rng.Intn(4)
		var cover fd.Cover
		for k := 0; k < 1+rng.Intn(5); k++ {
			var lhs attrset.Set
			for b := 0; b < arity; b++ {
				if rng.Intn(3) == 0 {
					lhs.Add(b)
				}
			}
			rhs := rng.Intn(arity)
			if lhs.Contains(rhs) || lhs.IsEmpty() {
				continue
			}
			cover = append(cover, fd.FD{LHS: lhs, RHS: rhs})
		}
		dec3 := ThreeNF(cover, arity)
		for _, s := range dec3.Schemas {
			if !Is3NF(cover, s.Attrs, arity) {
				t.Fatalf("iter %d: 3NF violated by %v under %v", iter, s.Attrs, cover)
			}
		}
		if !PreservesDependencies(cover, dec3, arity) {
			t.Fatalf("iter %d: dependency preservation violated under %v", iter, cover)
		}
		if !LosslessJoin(cover, dec3, arity) {
			t.Fatalf("iter %d: 3NF lossless join violated under %v", iter, cover)
		}

		decB, err := BCNF(cover, arity)
		if err != nil {
			t.Fatal(err)
		}
		union := attrset.Set{}
		for _, s := range decB.Schemas {
			union = union.Union(s.Attrs)
			if !IsBCNF(cover, s.Attrs, arity) {
				t.Fatalf("iter %d: BCNF violated by %v under %v", iter, s.Attrs, cover)
			}
		}
		if union != attrset.Universe(arity) {
			t.Fatalf("iter %d: BCNF lost attributes", iter)
		}
		if !LosslessJoin(cover, decB, arity) {
			t.Fatalf("iter %d: BCNF lossless join violated under %v", iter, cover)
		}
	}
}
