// Package normalize implements schema normalisation from discovered
// functional dependencies — the "logical tuning" workflow the Dep-Miner
// paper motivates (§1): once a dba has validated the discovered FDs
// (helped by the real-world Armstrong relation), the relation schema can
// be decomposed to remove update anomalies and redundancy.
//
// Two classical algorithms are provided:
//
//   - ThreeNF: Bernstein-style 3NF synthesis from a canonical cover —
//     lossless-join and dependency-preserving.
//   - BCNF: recursive BCNF decomposition — lossless-join (dependency
//     preservation is not guaranteed by BCNF in general).
//
// Both operate on the whole-relation cover as discovered by Dep-Miner or
// TANE. Checking a subschema's normal form requires projecting the
// dependency theory, which is exponential in the subschema size; these
// routines are meant for human-scale schemas (tens of attributes), like
// the normalisation step they support.
package normalize

import (
	"fmt"
	"slices"

	"repro/internal/attrset"
	"repro/internal/fd"
)

// Schema is a decomposed relation schema: a subset of the original
// attributes.
type Schema struct {
	Attrs attrset.Set
	// Key is a candidate key of the subschema w.r.t. the projected
	// dependencies (the synthesising FD's LHS for 3NF; the splitting LHS
	// for BCNF fragments).
	Key attrset.Set
}

// Names renders the schema with attribute names: "(a, b, c) key (a)".
func (s Schema) Names(names []string) string {
	return fmt.Sprintf("(%s) key (%s)", s.Attrs.Names(names, ", "), s.Key.Names(names, ", "))
}

// Decomposition is the result of a normalisation.
type Decomposition struct {
	Schemas []Schema
	// Keys are the candidate keys of the original schema, computed on
	// the way.
	Keys attrset.Family
}

// ThreeNF synthesises a lossless-join, dependency-preserving 3NF
// decomposition from the cover (Bernstein 1976, as in Mannila–Räihä's
// design-by-example setting):
//
//  1. take a canonical cover,
//  2. group FDs by left-hand side, one schema X ∪ {A1..Ak} per group,
//  3. drop schemas contained in others,
//  4. if no schema contains a candidate key of R, add one key schema.
func ThreeNF(cover fd.Cover, arity int) *Decomposition {
	canon := cover.Minimize(arity)
	keys := canon.Keys(arity)

	// Group by LHS.
	groups := make(map[attrset.Set]attrset.Set) // LHS → LHS ∪ RHSs
	var order []attrset.Set
	for _, f := range canon {
		if _, ok := groups[f.LHS]; !ok {
			groups[f.LHS] = f.LHS
			order = append(order, f.LHS)
		}
		groups[f.LHS] = groups[f.LHS].With(f.RHS)
	}
	slices.SortFunc(order, attrset.Set.Compare)

	var schemas []Schema
	for _, lhs := range order {
		schemas = append(schemas, Schema{Attrs: groups[lhs], Key: lhs})
	}
	// Drop contained schemas (keep the first maximal occurrence).
	schemas = dropContained(schemas)

	// Ensure some schema contains a key of R.
	hasKey := false
	for _, s := range schemas {
		for _, k := range keys {
			if k.SubsetOf(s.Attrs) {
				hasKey = true
				break
			}
		}
		if hasKey {
			break
		}
	}
	if !hasKey && arity > 0 {
		k := keys[0]
		schemas = append(schemas, Schema{Attrs: k, Key: k})
		schemas = dropContained(schemas)
	}
	return &Decomposition{Schemas: schemas, Keys: keys}
}

func dropContained(in []Schema) []Schema {
	var out []Schema
	for i, s := range in {
		contained := false
		for j, t := range in {
			if i == j {
				continue
			}
			if s.Attrs.ProperSubsetOf(t.Attrs) ||
				(s.Attrs == t.Attrs && j < i) {
				contained = true
				break
			}
		}
		if !contained {
			out = append(out, s)
		}
	}
	return out
}

// BCNF decomposes R into Boyce–Codd normal form: while some subschema S
// has a violating dependency X → A (X ⊆ S, A ∈ (X⁺ ∩ S) \ X, X not a
// superkey of S), split S into X⁺ ∩ S and X ∪ (S \ X⁺). Each split is
// lossless because the fragments intersect exactly in X, which determines
// the first fragment.
//
// The violation search projects the dependency theory onto S by closure
// queries over subsets of S, so it is exponential in |S|; arity is capped
// at 24 to keep that explicit.
func BCNF(cover fd.Cover, arity int) (*Decomposition, error) {
	const maxArity = 24
	if arity > maxArity {
		return nil, fmt.Errorf("normalize: BCNF projection is exponential; arity %d exceeds the %d-attribute cap", arity, maxArity)
	}
	keys := cover.Keys(arity)
	var out []Schema
	var rec func(s attrset.Set)
	rec = func(s attrset.Set) {
		if x, ok := findBCNFViolation(cover, s, arity); ok {
			closure := cover.Closure(x, arity).Intersect(s)
			left := closure
			right := x.Union(s.Diff(closure))
			rec(left)
			rec(right)
			return
		}
		out = append(out, Schema{Attrs: s, Key: subschemaKey(cover, s, arity)})
	}
	if arity > 0 {
		rec(attrset.Universe(arity))
	}
	out = dropContained(out)
	slices.SortFunc(out, func(a, b Schema) int { return a.Attrs.Compare(b.Attrs) })
	return &Decomposition{Schemas: out, Keys: keys}, nil
}

// findBCNFViolation returns some X ⊆ S whose closure captures an attribute
// of S outside X while X does not determine all of S.
func findBCNFViolation(cover fd.Cover, s attrset.Set, arity int) (attrset.Set, bool) {
	attrs := s.Attrs()
	n := len(attrs)
	for bits := uint64(1); bits < 1<<uint(n)-1; bits++ {
		var x attrset.Set
		for b := 0; b < n; b++ {
			if bits&(1<<uint(b)) != 0 {
				x.Add(attrs[b])
			}
		}
		cl := cover.Closure(x, arity)
		inS := cl.Intersect(s)
		if s.SubsetOf(cl) {
			continue // X is a superkey of S
		}
		if !inS.SubsetOf(x) {
			return x, true // determines something in S beyond itself
		}
	}
	return attrset.Set{}, false
}

// subschemaKey returns a minimal X ⊆ S with S ⊆ X⁺ (a key of the
// fragment).
func subschemaKey(cover fd.Cover, s attrset.Set, arity int) attrset.Set {
	key := s
	for _, a := range s.Attrs() {
		reduced := key.Without(a)
		if s.SubsetOf(cover.Closure(reduced, arity)) {
			key = reduced
		}
	}
	return key
}

// IsBCNF reports whether subschema S is in BCNF w.r.t. the (global)
// cover: every non-trivial projected dependency has a superkey LHS.
func IsBCNF(cover fd.Cover, s attrset.Set, arity int) bool {
	_, violated := findBCNFViolation(cover, s, arity)
	return !violated
}

// Is3NF reports whether subschema S is in 3NF w.r.t. the cover: for every
// non-trivial projected dependency X → A, X is a superkey of S or A is a
// prime attribute (member of some candidate key) of S.
func Is3NF(cover fd.Cover, s attrset.Set, arity int) bool {
	prime := attrset.Set{}
	for _, k := range subschemaKeys(cover, s, arity) {
		prime = prime.Union(k)
	}
	attrs := s.Attrs()
	n := len(attrs)
	for bits := uint64(1); bits < 1<<uint(n); bits++ {
		var x attrset.Set
		for b := 0; b < n; b++ {
			if bits&(1<<uint(b)) != 0 {
				x.Add(attrs[b])
			}
		}
		cl := cover.Closure(x, arity)
		if s.SubsetOf(cl) {
			continue // superkey LHS
		}
		bad := false
		cl.Intersect(s).Diff(x).ForEach(func(a attrset.Attr) {
			if !prime.Contains(a) {
				bad = true
			}
		})
		if bad {
			return false
		}
	}
	return true
}

// subschemaKeys enumerates the candidate keys of subschema S w.r.t. the
// projected theory: minimal X ⊆ S with S ⊆ X⁺.
func subschemaKeys(cover fd.Cover, s attrset.Set, arity int) attrset.Family {
	attrs := s.Attrs()
	n := len(attrs)
	var fam attrset.Family
	for bits := uint64(0); bits < 1<<uint(n); bits++ {
		var x attrset.Set
		for b := 0; b < n; b++ {
			if bits&(1<<uint(b)) != 0 {
				x.Add(attrs[b])
			}
		}
		if s.SubsetOf(cover.Closure(x, arity)) {
			fam = append(fam, x)
		}
	}
	return fam.Minimal()
}

// PreservesDependencies reports whether the decomposition preserves the
// cover: the union of the projections onto each schema implies every FD
// of the cover. Projections are computed by closure queries per schema
// (exponential per schema size).
func PreservesDependencies(cover fd.Cover, dec *Decomposition, arity int) bool {
	var projected fd.Cover
	for _, sch := range dec.Schemas {
		attrs := sch.Attrs.Attrs()
		n := len(attrs)
		for bits := uint64(0); bits < 1<<uint(n); bits++ {
			var x attrset.Set
			for b := 0; b < n; b++ {
				if bits&(1<<uint(b)) != 0 {
					x.Add(attrs[b])
				}
			}
			cl := cover.Closure(x, arity).Intersect(sch.Attrs)
			cl.Diff(x).ForEach(func(a attrset.Attr) {
				projected = append(projected, fd.FD{LHS: x, RHS: a})
			})
		}
	}
	for _, f := range cover {
		if !projected.Implies(f, arity) {
			return false
		}
	}
	return true
}

// LosslessJoin reports whether a decomposition of R into the given schemas
// has the lossless-join property w.r.t. the cover, using the chase
// (tableau) test.
func LosslessJoin(cover fd.Cover, dec *Decomposition, arity int) bool {
	if len(dec.Schemas) == 0 {
		return arity == 0
	}
	// Tableau: one row per schema; cell (i, a) holds a symbol; distinct
	// symbols unless the schema contains a (shared "a" subscript-less
	// symbol, modelled as 0; others start distinct).
	rows := len(dec.Schemas)
	tab := make([][]int, rows)
	next := 1
	for i, sch := range dec.Schemas {
		tab[i] = make([]int, arity)
		for a := 0; a < arity; a++ {
			if sch.Attrs.Contains(a) {
				tab[i][a] = 0 // distinguished symbol
			} else {
				tab[i][a] = next
				next++
			}
		}
	}
	// Chase: repeatedly equate RHS symbols of rows agreeing on an FD's
	// LHS, preferring the distinguished symbol.
	changed := true
	for changed {
		changed = false
		for _, f := range cover {
			for i := 0; i < rows; i++ {
				for j := i + 1; j < rows; j++ {
					agree := true
					f.LHS.ForEach(func(a attrset.Attr) {
						if a < arity && tab[i][a] != tab[j][a] {
							agree = false
						}
					})
					if !agree || f.RHS >= arity {
						continue
					}
					vi, vj := tab[i][f.RHS], tab[j][f.RHS]
					if vi == vj {
						continue
					}
					keep, drop := vi, vj
					if vj < vi {
						keep, drop = vj, vi
					}
					for x := 0; x < rows; x++ {
						for a := 0; a < arity; a++ {
							if tab[x][a] == drop {
								tab[x][a] = keep
							}
						}
					}
					changed = true
				}
			}
		}
		// A row of all distinguished symbols proves losslessness.
		for i := 0; i < rows; i++ {
			all := true
			for a := 0; a < arity; a++ {
				if tab[i][a] != 0 {
					all = false
					break
				}
			}
			if all {
				return true
			}
		}
	}
	return false
}
