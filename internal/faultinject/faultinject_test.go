package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestFireUnarmed(t *testing.T) {
	Reset()
	for _, p := range Points() {
		if err := Fire(p); err != nil {
			t.Errorf("Fire(%s) unarmed = %v", p, err)
		}
	}
}

func TestSetFireClear(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Set(TANELevel, FailWith(boom))
	if err := Fire(TANELevel); !errors.Is(err, boom) {
		t.Errorf("armed Fire = %v", err)
	}
	// Other points stay unarmed.
	if err := Fire(KeysLevel); err != nil {
		t.Errorf("unarmed point fired: %v", err)
	}
	Clear(TANELevel)
	if err := Fire(TANELevel); err != nil {
		t.Errorf("cleared Fire = %v", err)
	}
}

func TestReset(t *testing.T) {
	Set(CoreAgree, FailWith(errors.New("a")))
	Set(CoreLHS, FailWith(errors.New("b")))
	Reset()
	if err := Fire(CoreAgree); err != nil {
		t.Errorf("after Reset: %v", err)
	}
	if err := Fire(CoreLHS); err != nil {
		t.Errorf("after Reset: %v", err)
	}
}

func TestPanicWith(t *testing.T) {
	defer Reset()
	Set(PoolTask, PanicWith("kaboom"))
	defer func() {
		if p := recover(); p != "kaboom" {
			t.Errorf("recovered %v", p)
		}
	}()
	Fire(PoolTask)
	t.Error("PanicWith hook did not panic")
}

func TestSleep(t *testing.T) {
	defer Reset()
	Set(CoreMaxSets, Sleep(10*time.Millisecond))
	start := time.Now()
	if err := Fire(CoreMaxSets); err != nil {
		t.Errorf("Sleep hook = %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("slept only %v", d)
	}
}

func TestAfter(t *testing.T) {
	defer Reset()
	boom := errors.New("late boom")
	Set(AgreeChunk, After(2, FailWith(boom)))
	for i := 0; i < 2; i++ {
		if err := Fire(AgreeChunk); err != nil {
			t.Fatalf("call %d = %v, want nil", i, err)
		}
	}
	if err := Fire(AgreeChunk); !errors.Is(err, boom) {
		t.Errorf("third call = %v, want injected error", err)
	}
}

func TestPointsAreDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Points() {
		if seen[p] {
			t.Errorf("duplicate point %s", p)
		}
		seen[p] = true
	}
	if len(seen) != 18 {
		t.Errorf("got %d points, want 18", len(seen))
	}
}
