// Package faultinject is a deterministic fault-injection harness for the
// robustness test suite: named hook points at every pipeline phase
// boundary and inside every worker loop. Production code calls
// Fire(point) at each hook; with no hook armed that is a single atomic
// load, so the instrumentation costs nothing in normal operation. Tests
// arm points with Set to inject errors, panics, or delays, and Reset
// afterwards.
//
// The registry is global — the hook points sit deep inside the pipelines,
// where threading an injection handle would distort every signature for
// the benefit of tests only. Tests that arm hooks must therefore not run
// in parallel with each other.
package faultinject

import (
	"sync"
	"sync/atomic"
	"time"
)

// The hook points. Phase boundaries fire once per run; worker-loop points
// (PoolTask, AgreeChunk, AgreeStride), level points (HypergraphLevel,
// TANELevel, KeysLevel, INDLevel, FastFDsAttr) and partition-store points
// (PstoreEvict, PstoreRecompute) fire once per unit of work.
const (
	CorePartition   = "core/partition"   // before the stripped-partition build
	CoreAgree       = "core/agree"       // before step 1 (agree sets)
	CoreMaxSets     = "core/maxsets"     // before step 2 (CMAX_SET)
	CoreLHS         = "core/lhs"         // before steps 3–4 (transversals)
	CoreArmstrong   = "core/armstrong"   // before step 5 (Armstrong relation)
	PoolTask        = "pool/task"        // inside every worker-pool task dispatch
	AgreeChunk      = "agree/chunk"      // inside each Algorithm 2 chunk sweep
	AgreeStride     = "agree/stride"     // inside each Algorithm 3 couple stride
	HypergraphLevel = "hypergraph/level" // at each transversal-search level
	TANELevel       = "tane/level"       // at each TANE lattice level
	KeysLevel       = "keys/level"       // at each key-search lattice level
	INDLevel        = "ind/level"        // at each IND candidate level (incl. unary)
	FastFDsAttr     = "fastfds/attr"     // before each per-attribute DFS
	PstoreEvict     = "pstore/evict"     // before each partition-store eviction
	PstoreRecompute = "pstore/recompute" // before each partition recompute on a store miss
	ExtsortFlush    = "extsort/flush"    // before each sorted run is flushed to a spill file
	ExtsortRead     = "extsort/read"     // before each checksummed block read back from a spill file
	ExtsortMerge    = "extsort/merge"    // at the start of the external k-way merge
)

// Storage and session hook points: the durable WAL/snapshot layer and the
// incremental miner. They fire on the serving path rather than inside a
// pipeline run, so they are swept by the durable/incremental/server test
// suites (StorePoints), not by the pipeline fault sweep (Points).
const (
	DurableWrite      = "durable/write"      // before each WAL frame or snapshot write
	DurableFsync      = "durable/fsync"      // before each fsync (group commit and snapshot)
	DurableRename     = "durable/rename"     // before the snapshot temp → final rename
	DurableReplay     = "durable/replay"     // at the start of each dataset's boot replay
	IncrementalInsert = "incremental/insert" // inside InsertCtx's candidate scan and before commit
)

// Distributed-discovery hook points: the coordinator's per-shard fan-out.
// They fire on the serving path of a sharded discovery, so they are swept
// by the server shard fault tests (ShardPoints), not the pipeline sweep.
const (
	ShardDispatch = "shard/dispatch" // before each shard is dispatched to a worker
	ShardStream   = "shard/stream"   // before a worker's run stream is adopted
	ShardMerge    = "shard/merge"    // before the coordinator's final k-way merge
)

// ShardPoints lists the distributed-discovery hook points, swept by the
// coordinator fault tests.
func ShardPoints() []string {
	return []string{ShardDispatch, ShardStream, ShardMerge}
}

// Points lists every pipeline hook point, for tests that sweep all of
// them through the miners.
func Points() []string {
	return []string{
		CorePartition, CoreAgree, CoreMaxSets, CoreLHS, CoreArmstrong,
		PoolTask, AgreeChunk, AgreeStride, HypergraphLevel,
		TANELevel, KeysLevel, INDLevel, FastFDsAttr,
		PstoreEvict, PstoreRecompute,
		ExtsortFlush, ExtsortRead, ExtsortMerge,
	}
}

// StorePoints lists the storage/session hook points, swept by the
// durability and incremental-session fault tests.
func StorePoints() []string {
	return []string{
		DurableWrite, DurableFsync, DurableRename, DurableReplay,
		IncrementalInsert,
	}
}

var (
	// armed caches len(hooks) so Fire's fast path is one atomic load.
	armed atomic.Int32
	mu    sync.Mutex
	hooks = map[string]func() error{}
)

// Fire invokes the hook armed at point, if any. With no hooks armed it is
// a single atomic load. An armed hook may return an error (propagated as
// the phase's failure), panic (exercising the containment boundaries), or
// sleep (exercising deadlines) before returning nil.
func Fire(point string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	fn := hooks[point]
	mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// Set arms a hook at point. The hook may be called concurrently from
// worker goroutines and must be safe for that.
func Set(point string, fn func() error) {
	mu.Lock()
	defer mu.Unlock()
	hooks[point] = fn
	armed.Store(int32(len(hooks)))
}

// Clear disarms the hook at point.
func Clear(point string) {
	mu.Lock()
	defer mu.Unlock()
	delete(hooks, point)
	armed.Store(int32(len(hooks)))
}

// Reset disarms every hook. Tests defer it after arming anything.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	clear(hooks)
	armed.Store(0)
}

// FailWith returns a hook that injects err on every call.
func FailWith(err error) func() error {
	return func() error { return err }
}

// PanicWith returns a hook that panics with v on every call.
func PanicWith(v any) func() error {
	return func() error { panic(v) }
}

// Sleep returns a hook that delays for d and succeeds.
func Sleep(d time.Duration) func() error {
	return func() error { time.Sleep(d); return nil }
}

// After returns a hook that is a no-op for the first n calls and then
// delegates to fn — for injecting mid-run rather than at the first
// crossing of a point.
func After(n int, fn func() error) func() error {
	var calls atomic.Int64
	return func() error {
		if calls.Add(1) <= int64(n) {
			return nil
		}
		return fn()
	}
}
