// Package guard is the resource-governance layer of the discovery
// pipelines: wall-clock deadlines, size budgets, and panic containment at
// phase and worker boundaries.
//
// A *Budget is created once per run and shared by every phase. The size
// budget is accounted in the units each phase already counts — tuple
// couples enumerated and agree sets produced (step 1), lattice level
// width (TANE, candidate keys), transversal frontier size (steps 3–4),
// FastFDs DFS nodes, IND candidates — all charged against one shared
// pool, so a single number bounds the total volume of intermediate
// objects a run may materialise.
//
// Overruns surface as *Error values wrapping ErrBudget or ErrDeadline
// together with the phase that crossed the line; recovered panics surface
// as *PanicError wrapping ErrPanic. Callers classify outcomes with
// errors.Is and, for governed errors (see Governed), return the partial
// result accumulated so far instead of discarding completed work.
//
// All methods are safe for concurrent use and on a nil receiver: a nil
// *Budget means ungoverned, so phases thread the pointer unconditionally.
package guard

import (
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// Sentinel errors every governance outcome wraps.
var (
	// ErrBudget reports that the size budget was exhausted.
	ErrBudget = errors.New("resource budget exceeded")
	// ErrDeadline reports that the wall-clock deadline passed.
	ErrDeadline = errors.New("deadline exceeded")
	// ErrPanic reports that a panic was contained at a phase or worker
	// boundary.
	ErrPanic = errors.New("panic recovered")
	// ErrInvalidOptions is wrapped by every Options validation failure
	// across the miners, so callers can distinguish "your configuration is
	// nonsense" from runtime failures with one errors.Is test.
	ErrInvalidOptions = errors.New("invalid options")
)

// Limits declares the ceilings of a run. The zero value is ungoverned.
type Limits struct {
	// Deadline is the wall-clock cutoff; zero means none.
	Deadline time.Time
	// Units is the shared size budget, charged by every phase in its own
	// units (couples, agree sets, level widths, frontier sizes, DFS
	// nodes, candidates); zero means unlimited.
	Units int64
}

// Budget is the per-run governance state: a deadline checked at phase
// checkpoints and a monotone unit counter charged by every phase.
type Budget struct {
	deadline time.Time
	limit    int64
	used     atomic.Int64
}

// New creates a budget enforcing the given limits.
func New(l Limits) *Budget {
	return &Budget{deadline: l.Deadline, limit: l.Units}
}

// WithTimeout creates a budget whose deadline is timeout from now
// (no deadline when timeout <= 0) and whose size budget is units
// (unlimited when units <= 0).
func WithTimeout(timeout time.Duration, units int64) *Budget {
	l := Limits{Units: units}
	if timeout > 0 {
		l.Deadline = time.Now().Add(timeout)
	}
	return New(l)
}

// Checkpoint verifies the deadline, returning an *Error wrapping
// ErrDeadline attributed to phase when it has passed. Phases call it at
// every chunk, level, or stride boundary so overruns are detected within
// one unit of work.
func (b *Budget) Checkpoint(phase string) error {
	if b == nil {
		return nil
	}
	if !b.deadline.IsZero() && time.Now().After(b.deadline) {
		return &Error{Phase: phase, Used: b.used.Load(), Limit: b.limit, err: ErrDeadline}
	}
	return nil
}

// Charge checks the deadline and then consumes n units, returning an
// *Error wrapping ErrBudget attributed to phase when the budget is
// exhausted. The charge is recorded even when it overruns, so Used
// reports the true volume attempted.
func (b *Budget) Charge(phase string, n int) error {
	if b == nil {
		return nil
	}
	if err := b.Checkpoint(phase); err != nil {
		return err
	}
	used := b.used.Add(int64(n))
	if b.limit > 0 && used > b.limit {
		return &Error{Phase: phase, Used: used, Limit: b.limit, err: ErrBudget}
	}
	return nil
}

// Used returns the units consumed so far.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Remaining returns the units left, or math.MaxInt64 when unlimited.
func (b *Budget) Remaining() int64 {
	if b == nil || b.limit <= 0 {
		return math.MaxInt64
	}
	if rem := b.limit - b.used.Load(); rem > 0 {
		return rem
	}
	return 0
}

// Error is a budget or deadline overrun, attributed to the pipeline phase
// that crossed the limit. It wraps ErrBudget or ErrDeadline.
type Error struct {
	// Phase names the pipeline phase that overran ("agree", "lhs",
	// "tane", ...).
	Phase string
	// Used and Limit are the unit counter and ceiling at overrun time
	// (Limit is 0 for pure deadline overruns with no size budget).
	Used, Limit int64
	err         error
}

func (e *Error) Error() string {
	if errors.Is(e.err, ErrDeadline) {
		return fmt.Sprintf("guard: phase %s: %v", e.Phase, e.err)
	}
	return fmt.Sprintf("guard: phase %s: %v (%d of %d units)", e.Phase, e.err, e.Used, e.Limit)
}

func (e *Error) Unwrap() error { return e.err }

// PanicError is a panic contained at a phase or worker boundary. It wraps
// ErrPanic and carries the panic value and the stack captured at recovery.
type PanicError struct {
	// Phase names the boundary that contained the panic.
	Phase string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("guard: phase %s: panic recovered: %v", e.Phase, e.Value)
}

func (e *PanicError) Unwrap() error { return ErrPanic }

// NewPanicError wraps a recovered panic value, capturing the current
// stack. Call it from inside the recovering deferred function so the
// stack still shows the panic site.
func NewPanicError(phase string, value any) *PanicError {
	return &PanicError{Phase: phase, Value: value, Stack: debug.Stack()}
}

// Recover converts an in-flight panic into a *PanicError stored in *errp.
// It must be the deferred call itself — `defer guard.Recover("phase",
// &err)` — for recover to see the panic.
func Recover(phase string, errp *error) {
	if p := recover(); p != nil {
		*errp = NewPanicError(phase, p)
	}
}

// Governed reports whether err is a governance outcome — a budget or
// deadline overrun, or a contained panic — as opposed to a cancellation
// or an ordinary failure. Pipelines keep partial results for governed
// errors and discard them otherwise.
func Governed(err error) bool {
	return errors.Is(err, ErrBudget) || errors.Is(err, ErrDeadline) || errors.Is(err, ErrPanic)
}
