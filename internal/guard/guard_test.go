package guard

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilBudgetIsUngoverned(t *testing.T) {
	var b *Budget
	if err := b.Checkpoint("x"); err != nil {
		t.Errorf("nil Checkpoint = %v", err)
	}
	if err := b.Charge("x", 1<<40); err != nil {
		t.Errorf("nil Charge = %v", err)
	}
	if got := b.Used(); got != 0 {
		t.Errorf("nil Used = %d", got)
	}
	if got := b.Remaining(); got != math.MaxInt64 {
		t.Errorf("nil Remaining = %d", got)
	}
}

func TestZeroLimitsAreUnlimited(t *testing.T) {
	b := New(Limits{})
	if err := b.Charge("x", 1_000_000); err != nil {
		t.Errorf("Charge under zero limits = %v", err)
	}
	if got := b.Remaining(); got != math.MaxInt64 {
		t.Errorf("Remaining = %d", got)
	}
	if got := b.Used(); got != 1_000_000 {
		t.Errorf("Used = %d", got)
	}
}

func TestChargeOverrun(t *testing.T) {
	b := New(Limits{Units: 10})
	if err := b.Charge("agree", 10); err != nil {
		t.Fatalf("charge at limit = %v", err)
	}
	err := b.Charge("agree", 1)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("overrun = %v, want ErrBudget", err)
	}
	var ge *Error
	if !errors.As(err, &ge) {
		t.Fatalf("overrun is %T, want *Error", err)
	}
	if ge.Phase != "agree" || ge.Used != 11 || ge.Limit != 10 {
		t.Errorf("Error = %+v", ge)
	}
	if !strings.Contains(err.Error(), "agree") || !strings.Contains(err.Error(), "11 of 10") {
		t.Errorf("message = %q", err.Error())
	}
	if Governed(err) != true {
		t.Error("budget overrun not Governed")
	}
	// The overrunning charge is still recorded.
	if got := b.Used(); got != 11 {
		t.Errorf("Used after overrun = %d", got)
	}
	if got := b.Remaining(); got != 0 {
		t.Errorf("Remaining after overrun = %d", got)
	}
}

func TestDeadline(t *testing.T) {
	b := New(Limits{Deadline: time.Now().Add(-time.Second)})
	err := b.Checkpoint("lhs")
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired Checkpoint = %v, want ErrDeadline", err)
	}
	var ge *Error
	if !errors.As(err, &ge) || ge.Phase != "lhs" {
		t.Errorf("error = %v", err)
	}
	// Charge also trips the deadline, before consuming units.
	if err := b.Charge("lhs", 5); !errors.Is(err, ErrDeadline) {
		t.Errorf("expired Charge = %v", err)
	}
	if !Governed(err) {
		t.Error("deadline overrun not Governed")
	}

	future := New(Limits{Deadline: time.Now().Add(time.Hour)})
	if err := future.Checkpoint("lhs"); err != nil {
		t.Errorf("future Checkpoint = %v", err)
	}
}

func TestWithTimeout(t *testing.T) {
	b := WithTimeout(0, 0)
	if err := b.Checkpoint("x"); err != nil {
		t.Errorf("no-deadline WithTimeout checkpoint = %v", err)
	}
	b = WithTimeout(-time.Second, 5)
	if err := b.Charge("x", 6); !errors.Is(err, ErrBudget) {
		t.Errorf("WithTimeout units not enforced: %v", err)
	}
}

func TestConcurrentCharges(t *testing.T) {
	b := New(Limits{Units: 1000})
	var wg sync.WaitGroup
	overruns := make([]int, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				if err := b.Charge("x", 1); err != nil {
					overruns[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	if got := b.Used(); got != 2000 {
		t.Errorf("Used = %d, want 2000 (every charge recorded)", got)
	}
	total := 0
	for _, n := range overruns {
		total += n
	}
	if total != 1000 {
		t.Errorf("overruns = %d, want exactly the 1000 charges past the limit", total)
	}
}

func TestPanicError(t *testing.T) {
	pe := NewPanicError("tane", "boom")
	if !errors.Is(pe, ErrPanic) {
		t.Error("PanicError does not wrap ErrPanic")
	}
	if pe.Value != "boom" || pe.Phase != "tane" {
		t.Errorf("PanicError = %+v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Error("no stack captured")
	}
	if !strings.Contains(pe.Error(), "tane") || !strings.Contains(pe.Error(), "boom") {
		t.Errorf("message = %q", pe.Error())
	}
	if !Governed(pe) {
		t.Error("PanicError not Governed")
	}
}

func TestRecover(t *testing.T) {
	run := func() (err error) {
		defer Recover("phase-x", &err)
		panic(42)
	}
	err := run()
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("recovered err = %v", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Phase != "phase-x" || pe.Value != 42 {
		t.Errorf("PanicError = %+v", pe)
	}

	// No panic: err stays nil.
	clean := func() (err error) {
		defer Recover("phase-x", &err)
		return nil
	}
	if err := clean(); err != nil {
		t.Errorf("clean run err = %v", err)
	}
}

func TestGoverned(t *testing.T) {
	for _, err := range []error{ErrBudget, ErrDeadline, ErrPanic,
		fmt.Errorf("wrapped: %w", ErrBudget), NewPanicError("x", "v")} {
		if !Governed(err) {
			t.Errorf("Governed(%v) = false", err)
		}
	}
	for _, err := range []error{nil, errors.New("other"), fmt.Errorf("io: %w", errors.New("x"))} {
		if Governed(err) {
			t.Errorf("Governed(%v) = true", err)
		}
	}
}
