// Package armstrong builds Armstrong relations from maximal sets
// (paper §4).
//
// An Armstrong relation for a dependency set F satisfies exactly the
// dependencies implied by F: by Beeri–Dowd–Fagin–Statman, r is Armstrong
// for F iff GEN(F) ⊆ ag(r) ⊆ CL(F), and GEN(F) = MAX(F) (Mannila–Räihä).
// Two constructions are provided:
//
//   - Synthetic (eq. 1): the classical integer construction. One tuple t0
//     of zeroes for X0 = R, then for each Xi ∈ MAX(dep(r)) a tuple with 0
//     on Xi and a tuple-unique value elsewhere.
//   - Real-world (eq. 2): same shape, but every value is drawn from the
//     initial relation's active domain π_A(r), so the sample reads like
//     real data. It exists iff each attribute has enough distinct values
//     (Proposition 1): |π_A(r)| ≥ |{X ∈ MAX(dep(r)) | A ∉ X}| + 1.
//
// Both produce |MAX(dep(r))|+1 tuples — in the paper's evaluation 1/100 to
// 1/10,000 of the original relation.
package armstrong

import (
	"fmt"
	"strconv"

	"repro/internal/attrset"
	"repro/internal/relation"
)

// ErrNotEnoughValues reports that a real-world Armstrong relation does not
// exist because some attribute's active domain is too small
// (Proposition 1).
type ErrNotEnoughValues struct {
	// Attr is the offending attribute index; Name its name.
	Attr int
	Name string
	// Have is |π_A(r)|, Need the required minimum.
	Have, Need int
}

func (e *ErrNotEnoughValues) Error() string {
	return fmt.Sprintf("armstrong: attribute %s has %d distinct values, need %d for a real-world Armstrong relation",
		e.Name, e.Have, e.Need)
}

// Synthetic builds the classical integer Armstrong relation (eq. 1) for
// the given maximal sets over a schema with the given attribute names.
// The resulting relation has len(maxSets)+1 tuples: tuple 0 is all "0"
// (for X0 = R), and tuple i has "0" on Xi and the value strconv.Itoa(i)
// elsewhere.
func Synthetic(maxSets attrset.Family, names []string) (*relation.Relation, error) {
	n := len(names)
	rows := make([][]string, 0, len(maxSets)+1)
	zero := make([]string, n)
	for a := range zero {
		zero[a] = "0"
	}
	rows = append(rows, zero)
	for i, x := range maxSets {
		row := make([]string, n)
		for a := 0; a < n; a++ {
			if x.Contains(a) {
				row[a] = "0"
			} else {
				row[a] = strconv.Itoa(i + 1)
			}
		}
		rows = append(rows, row)
	}
	return relation.FromRows(names, rows)
}

// Check verifies Proposition 1 against the initial relation: every
// attribute must have at least |{X ∈ maxSets | A ∉ X}| + 1 distinct
// values. It returns nil when a real-world Armstrong relation exists.
func Check(r *relation.Relation, maxSets attrset.Family) error {
	for a := 0; a < r.Arity(); a++ {
		need := 1
		for _, x := range maxSets {
			if !x.Contains(a) {
				need++
			}
		}
		if have := r.DomainSize(a); have < need {
			return &ErrNotEnoughValues{Attr: a, Name: r.Name(a), Have: have, Need: need}
		}
	}
	return nil
}

// RealWorld builds a real-world Armstrong relation (eq. 2) for the initial
// relation r and its maximal sets MAX(dep(r)). Values are drawn from each
// attribute's active domain in first-occurrence order: v_A0 (the
// attribute's first value in r) marks agreement, and each tuple that must
// disagree on A consumes the next unused value of π_A(r).
//
// The paper indexes disagreeing values by the tuple index i (v_Ai); using
// a per-attribute counter instead consumes exactly the
// |{X | A ∉ X}| values guaranteed by Proposition 1 while preserving the
// construction's invariant — two tuples agree on A iff both carry v_A0 —
// so ag(r̄) = {Xi ∩ Xj} ∪ {Xi}, exactly as in the paper's proof sketch.
//
// It returns ErrNotEnoughValues when Proposition 1 fails.
func RealWorld(r *relation.Relation, maxSets attrset.Family) (*relation.Relation, error) {
	if err := Check(r, maxSets); err != nil {
		return nil, err
	}
	n := r.Arity()
	next := make([]int, n) // per-attribute counter of consumed values
	for a := range next {
		next[a] = 1 // code 0 is v_A0
	}
	rows := make([][]string, 0, len(maxSets)+1)
	first := make([]string, n)
	for a := 0; a < n; a++ {
		first[a] = r.ValueForCode(a, 0)
	}
	rows = append(rows, first)
	for _, x := range maxSets {
		row := make([]string, n)
		for a := 0; a < n; a++ {
			if x.Contains(a) {
				row[a] = r.ValueForCode(a, 0)
			} else {
				row[a] = r.ValueForCode(a, next[a])
				next[a]++
			}
		}
		rows = append(rows, row)
	}
	return relation.FromRows(r.Names(), rows)
}

// Size returns the number of tuples of the (real-world or synthetic)
// Armstrong relation for the given maximal sets: |MAX(dep(r))| + 1.
func Size(maxSets attrset.Family) int { return len(maxSets) + 1 }
