package armstrong

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/agree"
	"repro/internal/attrset"
	"repro/internal/fd"
	"repro/internal/maxsets"
	"repro/internal/relation"
)

func set(spec string) attrset.Set {
	s, ok := attrset.Parse(spec)
	if !ok {
		panic("bad spec " + spec)
	}
	return s
}

// paperMax is MAX(dep(r)) = {A, BDE, CE} for the running example, in the
// canonical order Dep-Miner produces.
func paperMax() attrset.Family {
	return attrset.Family{set("A"), set("BDE"), set("CE")}
}

func names() []string {
	return []string{"empnum", "depnum", "year", "depname", "mgr"}
}

// TestSyntheticPaperExample reproduces Example 12's integer relation
// shape: 4 tuples, first all-zero, each later tuple zero exactly on its
// maximal set.
func TestSyntheticPaperExample(t *testing.T) {
	r, err := Synthetic(paperMax(), names())
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows() != 4 {
		t.Fatalf("Rows = %d, want 4", r.Rows())
	}
	if Size(paperMax()) != 4 {
		t.Error("Size = |MAX|+1")
	}
	for a := 0; a < 5; a++ {
		if r.Value(0, a) != "0" {
			t.Errorf("t0[%d] = %q", a, r.Value(0, a))
		}
	}
	for i, x := range paperMax() {
		for a := 0; a < 5; a++ {
			got := r.Value(i+1, a)
			if x.Contains(a) && got != "0" {
				t.Errorf("t%d[%d] = %q, want 0", i+1, a, got)
			}
			if !x.Contains(a) && got == "0" {
				t.Errorf("t%d[%d] = 0, want non-zero", i+1, a)
			}
		}
	}
}

// depEquivalent reports whether two relations satisfy exactly the same
// FDs, via brute-force minimal covers and mutual implication.
func depEquivalent(t *testing.T, r1, r2 *relation.Relation) bool {
	t.Helper()
	c1 := fd.MineBrute(r1)
	c2 := fd.MineBrute(r2)
	return c1.Equivalent(c2, r1.Arity())
}

func TestSyntheticIsArmstrongForPaperExample(t *testing.T) {
	orig := relation.PaperExample()
	arm, err := Synthetic(paperMax(), names())
	if err != nil {
		t.Fatal(err)
	}
	if !depEquivalent(t, orig, arm) {
		t.Errorf("synthetic relation not Armstrong:\n%v", arm)
	}
}

// Paper Example 13 (with the +1 of Proposition 1 applied correctly — the
// example's printed right-hand sides omit it, but the condition holds
// either way: 6≥3, 4≥3, 6≥3, 4≥3, 3≥2).
func TestCheckPaperExample(t *testing.T) {
	if err := Check(relation.PaperExample(), paperMax()); err != nil {
		t.Fatalf("existence condition should hold: %v", err)
	}
}

func TestRealWorldPaperExample(t *testing.T) {
	orig := relation.PaperExample()
	arm, err := RealWorld(orig, paperMax())
	if err != nil {
		t.Fatal(err)
	}
	if arm.Rows() != 4 {
		t.Fatalf("Rows = %d, want 4", arm.Rows())
	}
	// Row 0 carries each attribute's first value from the original.
	wantFirst := []string{"1", "1", "85", "Biochemistry", "5"}
	for a, w := range wantFirst {
		if arm.Value(0, a) != w {
			t.Errorf("t0[%d] = %q, want %q", a, arm.Value(0, a), w)
		}
	}
	// Every value comes from the original active domain.
	for tt := 0; tt < arm.Rows(); tt++ {
		for a := 0; a < arm.Arity(); a++ {
			v := arm.Value(tt, a)
			found := false
			for code := 0; code < orig.DomainSize(a); code++ {
				if orig.ValueForCode(a, code) == v {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("value %q of attribute %d not in original domain", v, a)
			}
		}
	}
	// Exactly the same dependencies hold.
	if !depEquivalent(t, orig, arm) {
		t.Errorf("real-world relation not Armstrong:\n%v", arm)
	}
}

func TestRealWorldBoundaryExactlyEnoughValues(t *testing.T) {
	// Tight case: a must take 2 distinct values ({X | a ∉ X} = {B}) and
	// has exactly 2; b constant needs only 1. The construction succeeds
	// and stays Armstrong.
	r, err := relation.FromRows([]string{"a", "b"},
		[][]string{{"1", "k"}, {"2", "k"}})
	if err != nil {
		t.Fatal(err)
	}
	maxSets := attrset.Family{set("B")}
	arm, err := RealWorld(r, maxSets)
	if err != nil {
		t.Fatalf("boundary case should succeed: %v", err)
	}
	if arm.Rows() != 2 {
		t.Fatalf("Rows = %d, want 2", arm.Rows())
	}
	if !depEquivalent(t, r, arm) {
		t.Errorf("boundary Armstrong mismatch:\n%v", arm)
	}
}

func TestRealWorldNotEnoughValuesDetail(t *testing.T) {
	// Force a clear failure: a must take 3 distinct values (two maximal
	// sets avoid it) but has only 2.
	r, err := relation.FromRows([]string{"a", "b", "c"}, [][]string{
		{"1", "x", "p"}, {"2", "y", "q"},
	})
	if err != nil {
		t.Fatal(err)
	}
	maxSets := attrset.Family{set("B"), set("C")} // both avoid a
	_, err = RealWorld(r, maxSets)
	var detail *ErrNotEnoughValues
	if !errors.As(err, &detail) {
		t.Fatalf("err = %v", err)
	}
	if detail.Attr != 0 || detail.Have != 2 || detail.Need != 3 {
		t.Errorf("detail = %+v", detail)
	}
	if detail.Error() == "" {
		t.Error("empty error message")
	}
}

func TestEmptyMaxSets(t *testing.T) {
	// A 1-tuple relation satisfies every FD; MAX is empty and the
	// Armstrong relation is the single first-values tuple.
	r, err := relation.FromRows([]string{"a", "b"}, [][]string{{"1", "x"}})
	if err != nil {
		t.Fatal(err)
	}
	arm, err := RealWorld(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if arm.Rows() != 1 {
		t.Fatalf("Rows = %d, want 1", arm.Rows())
	}
	if !depEquivalent(t, r, arm) {
		t.Error("1-tuple Armstrong mismatch")
	}
	syn, err := Synthetic(nil, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if syn.Rows() != 1 {
		t.Error("synthetic empty MAX should have 1 row")
	}
}

// maxSetsOf computes MAX(dep(r)) through the agree-set pipeline.
func maxSetsOf(t *testing.T, r *relation.Relation) attrset.Family {
	t.Helper()
	ag, err := agree.FromRelation(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	return maxsets.Compute(ag.Sets, r.Arity()).AllMax()
}

// TestPropertyArmstrongOnRandomRelations: for random relations whose
// active domains are rich enough, the real-world Armstrong relation
// satisfies exactly dep(r); the synthetic one always does.
func TestPropertyArmstrongOnRandomRelations(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	built := 0
	for iter := 0; iter < 60; iter++ {
		n := 2 + rng.Intn(3)
		rows := 2 + rng.Intn(14)
		cols := make([][]int, n)
		for a := range cols {
			cols[a] = make([]int, rows)
			dom := 2 + rng.Intn(rows)
			for i := range cols[a] {
				cols[a][i] = rng.Intn(dom)
			}
		}
		r, err := relation.FromCodes(make([]string, n), cols)
		if err != nil {
			t.Fatal(err)
		}
		r = r.Deduplicate()
		maxSets := maxSetsOf(t, r)

		syn, err := Synthetic(maxSets, r.Names())
		if err != nil {
			t.Fatal(err)
		}
		if !depEquivalent(t, r, syn) {
			t.Fatalf("iter %d: synthetic not Armstrong\norig:\n%v\nmax: %v\narm:\n%v",
				iter, r, maxSets.Strings(), syn)
		}

		rw, err := RealWorld(r, maxSets)
		var insufficient *ErrNotEnoughValues
		if errors.As(err, &insufficient) {
			continue // legitimately impossible for this relation
		}
		if err != nil {
			t.Fatal(err)
		}
		built++
		if rw.Rows() != Size(maxSets) {
			t.Fatalf("iter %d: size %d, want %d", iter, rw.Rows(), Size(maxSets))
		}
		if !depEquivalent(t, r, rw) {
			t.Fatalf("iter %d: real-world not Armstrong\norig:\n%v\nmax: %v\narm:\n%v",
				iter, r, maxSets.Strings(), rw)
		}
	}
	if built == 0 {
		t.Error("no real-world Armstrong relation was ever constructible; test is vacuous")
	}
}

// TestAgreeSetsOfArmstrongRelation checks the BDFS84 characterisation
// directly on the paper example: GEN(F) ⊆ ag(r̄) ⊆ CL(F).
func TestAgreeSetsOfArmstrongRelation(t *testing.T) {
	orig := relation.PaperExample()
	arm, err := RealWorld(orig, paperMax())
	if err != nil {
		t.Fatal(err)
	}
	agArm, err := agree.Naive(context.Background(), arm)
	if err != nil {
		t.Fatal(err)
	}
	cover := fd.MineBrute(orig)
	closed := cover.ClosedSets(orig.Arity())
	for _, m := range paperMax() {
		if !agArm.Sets.Contains(m) {
			t.Errorf("GEN member %v missing from ag(armstrong)", m)
		}
	}
	for _, x := range agArm.Sets {
		if !closed.Contains(x) {
			t.Errorf("agree set %v of armstrong relation is not closed", x)
		}
	}
}
