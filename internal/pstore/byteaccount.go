package pstore

import (
	"sync"

	"repro/internal/guard"
)

// ByteAccount is the shared byte-accounting helper behind every layer
// that materialises byte-sized state under a guard.Budget: the partition
// store charges resident partitions through it, and the extsort spiller
// charges on-disk agree-set run bytes the same way. It separates the two
// quantities guard-governed storage needs to track:
//
//   - cumulative volume, charged to the budget (guard's monotone-counter
//     contract: every materialisation counts, evictions never refund);
//   - resident bytes, the current footprint, with a settled peak —
//     callers call SettlePeak once transient overshoot (e.g. during an
//     eviction pass) has been resolved, so the peak reflects steady
//     states only.
//
// All methods are safe for concurrent use. A ByteAccount with a nil
// budget tracks resident/peak bytes without governance (guard.Budget
// methods are nil-safe).
type ByteAccount struct {
	phase  string
	budget *guard.Budget

	mu       sync.Mutex
	resident int64
	peak     int64
}

// NewByteAccount creates an account charging the budget under the given
// phase name.
func NewByteAccount(phase string, budget *guard.Budget) *ByteAccount {
	return &ByteAccount{phase: phase, budget: budget}
}

// Charge records n bytes of cumulative volume against the budget. It
// does not touch the resident counter — pair it with Add when the bytes
// also become resident (a raced recompute, for example, charges volume
// for work done but installs nothing new).
func (a *ByteAccount) Charge(n int64) error {
	return a.budget.Charge(a.phase, int(n))
}

// Add grows the resident footprint by n bytes.
func (a *ByteAccount) Add(n int64) {
	a.mu.Lock()
	a.resident += n
	a.mu.Unlock()
}

// Release shrinks the resident footprint by n bytes.
func (a *ByteAccount) Release(n int64) {
	a.mu.Lock()
	a.resident -= n
	a.mu.Unlock()
}

// SettlePeak records the current resident footprint as the peak if it is
// the largest seen. Callers invoke it after any transient overshoot has
// been evicted away, so a capped store's peak never exceeds its cap.
func (a *ByteAccount) SettlePeak() {
	a.mu.Lock()
	if a.resident > a.peak {
		a.peak = a.resident
	}
	a.mu.Unlock()
}

// Resident returns the current resident footprint.
func (a *ByteAccount) Resident() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.resident
}

// Peak returns the largest settled resident footprint observed.
func (a *ByteAccount) Peak() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}
