// Package pstore is a memory-bounded store for the stripped partitions a
// levelwise lattice search materialises (TANE, candidate keys).
//
// The levelwise searches keep one partition per candidate attribute set of
// the current level, and each level can be exponentially wide — on large
// or highly correlated relations the partitions, not the attribute sets,
// are what exhausts memory. The store makes that footprint explicit and
// bounded: every partition is charged by its actual byte footprint
// (partition.Bytes) against a configurable cap, and when the resident
// bytes exceed the cap, partitions are evicted LRU, oldest lattice level
// first. An evicted partition is not lost: the store records each
// partition's product path (the two parent sets it was multiplied from),
// so a Get of an evicted partition transparently recomputes it by
// re-multiplying along the path down to the pinned single-attribute roots
// — TANE's classic forget-and-recompute trade, here taken on demand
// instead of up front.
//
// Root partitions (the single-attribute partitions π̂_A and π̂_∅) are
// pinned outside the cap: they are the recomputation base, their total
// size is O(|r|·|R|) and known before the search starts, and without them
// a miss could not bottom out.
//
// The byte charge is also wired into the run's shared guard.Budget (when
// one is attached): every materialisation — first build and recompute
// alike — charges its bytes, so a governed run that would otherwise grow
// without bound degrades into a partial result instead of OOMing. The
// budget counts cumulative volume (guard's monotone-counter contract);
// the cap bounds the *resident* set.
//
// All methods are safe for concurrent use by pool workers. Recomputation
// runs outside the store lock on the calling worker's own Prober, so two
// workers may race to recompute the same partition; the products are
// deterministic, so the race wastes work but never changes results.
package pstore

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/attrset"
	"repro/internal/faultinject"
	"repro/internal/guard"
	"repro/internal/partition"
)

// Stats are the store's observability counters. Hits, Misses and
// Recomputes depend on eviction timing and therefore on worker
// scheduling; the FD covers computed from the partitions do not.
type Stats struct {
	// Hits counts Gets served from a resident partition.
	Hits int64
	// Misses counts Gets of an evicted partition (each triggers a
	// recompute).
	Misses int64
	// Evictions counts partitions dropped to stay under the cap.
	Evictions int64
	// Recomputes counts partitions re-multiplied along their product
	// path, including the intermediate parents a deep miss rebuilds.
	Recomputes int64
	// ResidentBytes is the current footprint of cap-governed (non-root)
	// partitions.
	ResidentBytes int64
	// PeakBytes is the largest ResidentBytes ever observed after
	// evictions settled; with a cap set it never exceeds CapBytes.
	PeakBytes int64
	// RootBytes is the pinned footprint of the root partitions, outside
	// the cap.
	RootBytes int64
	// CapBytes echoes the configured cap (0 = unbounded).
	CapBytes int64
}

// entry is the per-attribute-set record: the partition when resident, and
// the product path for recomputation when not. Records persist for the
// whole run even after their partition is evicted or forgotten — a live
// set's path may run through any number of dead levels.
type entry struct {
	set         attrset.Set
	part        *partition.Partition // nil when evicted
	left, right attrset.Set          // product path; zero sets on roots
	level       int
	root        bool
	indexed     bool // already appended to its byLevel slice
	bytes       int64
	elem        *list.Element // position in its level's LRU list; nil when not resident
}

// Store is the memory-bounded partition store of one levelwise search.
type Store struct {
	mu       sync.Mutex
	capBytes int64
	// acct is the shared byte-accounting helper: budget charges for every
	// materialisation plus resident/peak tracking (the same helper the
	// extsort spiller charges spill bytes through).
	acct    *ByteAccount
	entries map[attrset.Set]*entry
	// byLevel[l] indexes every non-root level-l entry ever installed, so
	// Forget can find a dead level's residents without the search
	// enumerating them. Entries stay indexed after eviction (re-scanning
	// a forgotten level is a cheap pointer walk).
	byLevel map[int][]*entry
	// lru[l] is the LRU list of resident non-root level-l partitions,
	// least recently used at the front. Eviction drains the lowest level
	// first: older levels are only ever needed again as recompute
	// intermediates, so they are the cheapest to forget. Only maintained
	// under a cap — an unbounded store never evicts, so it skips the
	// per-entry list bookkeeping entirely.
	lru   map[int]*list.List
	stats Stats
}

// New creates a store with the given resident-byte cap (0 = unbounded).
// When budget is non-nil, every partition materialisation charges its
// byte footprint to it under the "pstore" phase.
func New(capBytes int64, budget *guard.Budget) *Store {
	return &Store{
		capBytes: capBytes,
		acct:     NewByteAccount("pstore", budget),
		entries:  map[attrset.Set]*entry{},
		byLevel:  map[int][]*entry{},
		lru:      map[int]*list.List{},
		stats:    Stats{CapBytes: capBytes},
	}
}

// PutRoot pins a root partition (a single-attribute partition, or π̂_∅):
// never evicted, not counted against the cap, the base every recompute
// path bottoms out at.
func (s *Store) PutRoot(x attrset.Set, p *partition.Partition) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[x] = &entry{set: x, part: p, level: x.Len(), root: true, bytes: p.Bytes()}
	s.stats.RootBytes += p.Bytes()
}

// Put stores the partition of x, recording its product path
// π̂_x = π̂_left · π̂_right, charges its bytes, and evicts LRU-per-level
// until the store is back under the cap (possibly evicting x itself when
// the cap is tighter than one partition). A budget overrun surfaces as
// the budget's typed error; the store stays consistent.
func (s *Store) Put(x, left, right attrset.Set, level int, p *partition.Partition) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[x]
	if e == nil {
		e = &entry{set: x, left: left, right: right, level: level}
		s.entries[x] = e
	}
	return s.install(e, p)
}

// install makes p resident for e, charging and evicting. Callers hold mu.
func (s *Store) install(e *entry, p *partition.Partition) error {
	if err := s.acct.Charge(p.Bytes()); err != nil {
		return err
	}
	if e.part == nil {
		e.part = p
		e.bytes = p.Bytes()
		s.acct.Add(e.bytes)
		if !e.indexed {
			e.indexed = true
			s.byLevel[e.level] = append(s.byLevel[e.level], e)
		}
		if s.capBytes > 0 {
			l := s.lru[e.level]
			if l == nil {
				l = list.New()
				s.lru[e.level] = l
			}
			e.elem = l.PushBack(e)
		}
	}
	if err := s.evictOverCap(); err != nil {
		return err
	}
	s.acct.SettlePeak()
	return nil
}

// evictOverCap drops least-recently-used partitions, lowest level first,
// until the resident bytes fit the cap. Callers hold mu.
func (s *Store) evictOverCap() error {
	if s.capBytes <= 0 {
		return nil
	}
	for s.acct.Resident() > s.capBytes {
		victim := s.oldest()
		if victim == nil {
			return nil // nothing evictable left
		}
		if err := faultinject.Fire(faultinject.PstoreEvict); err != nil {
			return err
		}
		s.lru[victim.level].Remove(victim.elem)
		victim.elem = nil
		victim.part = nil
		s.acct.Release(victim.bytes)
		s.stats.Evictions++
	}
	return nil
}

// oldest returns the LRU entry of the lowest level with residents, or nil.
// Callers hold mu.
func (s *Store) oldest() *entry {
	best := -1
	for level, l := range s.lru {
		if l.Len() > 0 && (best < 0 || level < best) {
			best = level
		}
	}
	if best < 0 {
		return nil
	}
	return s.lru[best].Front().Value.(*entry)
}

// Get returns the partition of x, recomputing it along the recorded
// product path when it was evicted. The caller's prober does the
// products, so concurrent workers never share scratch state. The
// recomputed partition is re-installed (and re-charged) subject to the
// cap, so repeat access within a level amortises.
func (s *Store) Get(x attrset.Set, pr *partition.Prober) (*partition.Partition, error) {
	s.mu.Lock()
	e := s.entries[x]
	if e == nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("pstore: no record for set %v", x)
	}
	if e.part != nil {
		p := e.part
		if !e.root {
			s.stats.Hits++
			if e.elem != nil {
				s.lru[e.level].MoveToBack(e.elem)
			}
		}
		s.mu.Unlock()
		return p, nil
	}
	s.stats.Misses++
	left, right := e.left, e.right
	s.mu.Unlock()

	if err := faultinject.Fire(faultinject.PstoreRecompute); err != nil {
		return nil, err
	}
	lp, err := s.Get(left, pr)
	if err != nil {
		return nil, err
	}
	rp, err := s.Get(right, pr)
	if err != nil {
		return nil, err
	}
	p := pr.Product(lp, rp)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Recomputes++
	if e.part != nil {
		// Another worker recomputed it meanwhile; both products are
		// identical, keep the resident one.
		return e.part, nil
	}
	if err := s.install(e, p); err != nil {
		return nil, err
	}
	return p, nil
}

// Forget drops the resident partitions of every non-root level ≤ maxLevel
// — the levels a search has finished with. The records (product paths)
// persist, so the partitions remain recomputable as intermediates of
// deeper misses; only their bytes are released. Dropping dead levels is
// not an eviction: it is the search declaring the bytes free, so the
// eviction counter and hook do not fire.
func (s *Store) Forget(maxLevel int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for level, es := range s.byLevel {
		if level > maxLevel {
			continue
		}
		for _, e := range es {
			if e.part == nil {
				continue
			}
			if e.elem != nil {
				s.lru[e.level].Remove(e.elem)
				e.elem = nil
			}
			e.part = nil
			s.acct.Release(e.bytes)
		}
	}
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.ResidentBytes = s.acct.Resident()
	st.PeakBytes = s.acct.Peak()
	return st
}
