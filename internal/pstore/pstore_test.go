package pstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/attrset"
	"repro/internal/faultinject"
	"repro/internal/guard"
	"repro/internal/partition"
	"repro/internal/relation"
)

// fixture builds a small relation with enough value collisions that every
// partition has stripped classes, plus its singles pre-installed as roots.
func fixture(t testing.TB, capBytes int64, budget *guard.Budget) (*relation.Relation, *Store) {
	t.Helper()
	rows := [][]string{
		{"a", "x", "1", "p"},
		{"a", "x", "2", "p"},
		{"a", "y", "1", "q"},
		{"b", "y", "2", "q"},
		{"b", "x", "1", "p"},
		{"b", "y", "2", "p"},
	}
	r, err := relation.FromRows([]string{"c0", "c1", "c2", "c3"}, rows)
	if err != nil {
		t.Fatal(err)
	}
	s := New(capBytes, budget)
	for a := 0; a < r.Arity(); a++ {
		s.PutRoot(attrset.Single(a), partition.Single(r, a))
	}
	return r, s
}

// putProduct computes π̂_{left∪right} with a fresh prober and stores it.
func putProduct(t testing.TB, r *relation.Relation, s *Store, left, right attrset.Set) *partition.Partition {
	t.Helper()
	pr := partition.NewProber(r.Rows())
	lp, err := s.Get(left, pr)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := s.Get(right, pr)
	if err != nil {
		t.Fatal(err)
	}
	p := pr.Product(lp, rp)
	if err := s.Put(left.Union(right), left, right, left.Union(right).Len(), p); err != nil {
		t.Fatal(err)
	}
	return p
}

func sameParts(a, b *partition.Partition) bool {
	return fmt.Sprint(a.Classes()) == fmt.Sprint(b.Classes())
}

func TestHitReturnsResident(t *testing.T) {
	r, s := fixture(t, 0, nil)
	p := putProduct(t, r, s, attrset.Single(0), attrset.Single(1))
	got, err := s.Get(attrset.New(0, 1), partition.NewProber(r.Rows()))
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Error("unbounded store did not return the resident partition")
	}
	st := s.Stats()
	if st.Hits == 0 || st.Misses != 0 || st.Evictions != 0 || st.Recomputes != 0 {
		t.Errorf("stats = %+v, want pure hits", st)
	}
}

func TestUnknownSetIsAnError(t *testing.T) {
	r, s := fixture(t, 0, nil)
	if _, err := s.Get(attrset.New(0, 3), partition.NewProber(r.Rows())); err == nil {
		t.Error("Get of a never-recorded set succeeded")
	}
}

func TestEvictionAndRecompute(t *testing.T) {
	r, s := fixture(t, 1, nil) // cap of 1 byte: nothing non-root stays resident
	want := putProduct(t, r, s, attrset.Single(0), attrset.Single(1))
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("stats = %+v, want the over-cap partition evicted", st)
	}
	if st.ResidentBytes != 0 {
		t.Errorf("ResidentBytes = %d, want 0 under a 1-byte cap", st.ResidentBytes)
	}
	got, err := s.Get(attrset.New(0, 1), partition.NewProber(r.Rows()))
	if err != nil {
		t.Fatal(err)
	}
	if !sameParts(got, want) {
		t.Errorf("recomputed partition differs:\n got %v\nwant %v", got.Classes(), want.Classes())
	}
	st = s.Stats()
	if st.Misses == 0 || st.Recomputes == 0 {
		t.Errorf("stats = %+v, want a miss and a recompute", st)
	}
}

// TestDeepRecompute evicts everything and asks for a 3-attribute set: the
// recompute must chain through the (also evicted) 2-attribute parent down
// to the pinned roots.
func TestDeepRecompute(t *testing.T) {
	r, s := fixture(t, 1, nil)
	putProduct(t, r, s, attrset.Single(0), attrset.Single(1))
	want := putProduct(t, r, s, attrset.New(0, 1), attrset.Single(2))
	got, err := s.Get(attrset.New(0, 1, 2), partition.NewProber(r.Rows()))
	if err != nil {
		t.Fatal(err)
	}
	if !sameParts(got, want) {
		t.Errorf("deep recompute differs:\n got %v\nwant %v", got.Classes(), want.Classes())
	}
	if st := s.Stats(); st.Recomputes < 2 {
		t.Errorf("Recomputes = %d, want the parent rebuilt too", st.Recomputes)
	}
}

// TestPeakStaysUnderCap puts many partitions through a small cap and
// checks the settled resident footprint never exceeded it.
func TestPeakStaysUnderCap(t *testing.T) {
	const cap = 400
	r, s := fixture(t, cap, nil)
	for a := 1; a < r.Arity(); a++ {
		putProduct(t, r, s, attrset.Single(0), attrset.Single(a))
	}
	putProduct(t, r, s, attrset.New(0, 1), attrset.New(0, 2))
	st := s.Stats()
	if st.PeakBytes > cap {
		t.Errorf("PeakBytes = %d exceeds cap %d", st.PeakBytes, cap)
	}
	if st.PeakBytes == 0 {
		t.Error("PeakBytes = 0, nothing was ever resident")
	}
}

// TestEvictionPrefersOldestLevel: with level-2 and level-3 partitions
// resident, pushing over the cap must evict level 2 first.
func TestEvictionPrefersOldestLevel(t *testing.T) {
	r, s := fixture(t, 1<<20, nil)
	putProduct(t, r, s, attrset.Single(0), attrset.Single(1))
	putProduct(t, r, s, attrset.New(0, 1), attrset.Single(2))
	// Shrink the cap by rebuilding the store state: evict down to one
	// entry via a new tight-capped store exercising the same sequence.
	tight := New(s.Stats().ResidentBytes-1, nil)
	for a := 0; a < r.Arity(); a++ {
		tight.PutRoot(attrset.Single(a), partition.Single(r, a))
	}
	putProduct(t, r, tight, attrset.Single(0), attrset.Single(1))
	putProduct(t, r, tight, attrset.New(0, 1), attrset.Single(2))
	// The level-2 partition must be the evicted one: a Get of level 3
	// hits, a Get of level 2 misses.
	pr := partition.NewProber(r.Rows())
	before := tight.Stats()
	if _, err := tight.Get(attrset.New(0, 1, 2), pr); err != nil {
		t.Fatal(err)
	}
	if got := tight.Stats(); got.Hits != before.Hits+1 {
		t.Errorf("level-3 Get was not a hit: %+v -> %+v", before, got)
	}
	if _, err := tight.Get(attrset.New(0, 1), pr); err != nil {
		t.Fatal(err)
	}
	if got := tight.Stats(); got.Misses == 0 {
		t.Errorf("level-2 Get was not a miss: %+v", got)
	}
}

func TestBudgetChargedBytes(t *testing.T) {
	b := guard.New(guard.Limits{Units: 50}) // far below one partition's bytes
	r, s := fixture(t, 0, b)
	pr := partition.NewProber(r.Rows())
	lp, _ := s.Get(attrset.Single(0), pr)
	rp, _ := s.Get(attrset.Single(1), pr)
	err := s.Put(attrset.New(0, 1), attrset.Single(0), attrset.Single(1), 2, pr.Product(lp, rp))
	if !errors.Is(err, guard.ErrBudget) {
		t.Fatalf("Put err = %v, want ErrBudget", err)
	}
	if b.Used() == 0 {
		t.Error("budget not charged")
	}
}

func TestForgetReleasesBytesButStaysRecomputable(t *testing.T) {
	r, s := fixture(t, 0, nil)
	want := putProduct(t, r, s, attrset.Single(0), attrset.Single(1))
	s.Forget(2)
	st := s.Stats()
	if st.ResidentBytes != 0 {
		t.Errorf("ResidentBytes = %d after Forget, want 0", st.ResidentBytes)
	}
	if st.Evictions != 0 {
		t.Errorf("Forget counted as eviction: %+v", st)
	}
	got, err := s.Get(attrset.New(0, 1), partition.NewProber(r.Rows()))
	if err != nil {
		t.Fatal(err)
	}
	if !sameParts(got, want) {
		t.Error("forgotten partition recomputed wrong")
	}
}

func TestEvictFaultPropagates(t *testing.T) {
	faultinject.Set(faultinject.PstoreEvict, faultinject.FailWith(errors.New("boom")))
	defer faultinject.Reset()
	r, s := fixture(t, 1, nil)
	pr := partition.NewProber(r.Rows())
	lp, _ := s.Get(attrset.Single(0), pr)
	rp, _ := s.Get(attrset.Single(1), pr)
	if err := s.Put(attrset.New(0, 1), attrset.Single(0), attrset.Single(1), 2, pr.Product(lp, rp)); err == nil {
		t.Fatal("eviction fault swallowed")
	}
	// The store must stay usable: the mutex was released, roots intact.
	if _, err := s.Get(attrset.Single(0), pr); err != nil {
		t.Fatalf("store unusable after eviction fault: %v", err)
	}
}

// TestConcurrentGets hammers a tight-capped store from several goroutines
// with private probers: run under -race.
func TestConcurrentGets(t *testing.T) {
	r, s := fixture(t, 300, nil)
	putProduct(t, r, s, attrset.Single(0), attrset.Single(1))
	putProduct(t, r, s, attrset.Single(0), attrset.Single(2))
	putProduct(t, r, s, attrset.New(0, 1), attrset.New(0, 2))
	want, err := s.Get(attrset.New(0, 1, 2), partition.NewProber(r.Rows()))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pr := partition.NewProber(r.Rows())
			for i := 0; i < 50; i++ {
				for _, x := range []attrset.Set{
					attrset.New(0, 1), attrset.New(0, 2), attrset.New(0, 1, 2),
				} {
					got, err := s.Get(x, pr)
					if err != nil {
						errs[w] = err
						return
					}
					if x == attrset.New(0, 1, 2) && !sameParts(got, want) {
						errs[w] = fmt.Errorf("worker %d: wrong partition for %v", w, x)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
