package attrset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Generate lets quick.Check draw random Sets over the full range.
func (Set) Generate(rand *rand.Rand, size int) reflect.Value {
	var s Set
	// Bias towards small universes so subset relations actually occur.
	n := 1 + rand.Intn(16)
	for a := 0; a < n; a++ {
		if rand.Intn(2) == 1 {
			s.Add(a)
		}
	}
	return reflect.ValueOf(s)
}

func qc(t *testing.T, name string, f interface{}) {
	t.Helper()
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Errorf("%s: %v", name, err)
	}
}

func TestQuickLatticeLaws(t *testing.T) {
	qc(t, "idempotence", func(a Set) bool {
		return a.Union(a) == a && a.Intersect(a) == a
	})
	qc(t, "absorption", func(a, b Set) bool {
		return a.Union(a.Intersect(b)) == a && a.Intersect(a.Union(b)) == a
	})
	qc(t, "distributivity", func(a, b, c Set) bool {
		return a.Intersect(b.Union(c)) == a.Intersect(b).Union(a.Intersect(c)) &&
			a.Union(b.Intersect(c)) == a.Union(b).Intersect(a.Union(c))
	})
	qc(t, "difference", func(a, b Set) bool {
		d := a.Diff(b)
		return d.Disjoint(b) && d.Union(a.Intersect(b)) == a
	})
	qc(t, "subset-definitions-agree", func(a, b Set) bool {
		viaIntersect := a.Intersect(b) == a
		viaUnion := a.Union(b) == b
		return a.SubsetOf(b) == viaIntersect && viaIntersect == viaUnion
	})
}

func TestQuickCompareIsTotalOrder(t *testing.T) {
	qc(t, "antisymmetry", func(a, b Set) bool {
		return a.Compare(b) == -b.Compare(a)
	})
	qc(t, "lex-antisymmetry", func(a, b Set) bool {
		return a.CompareLex(b) == -b.CompareLex(a)
	})
	qc(t, "transitivity", func(a, b, c Set) bool {
		// Sort the three and verify pairwise consistency.
		s := Family{a, b, c}
		s.Sort()
		return s[0].Compare(s[1]) <= 0 && s[1].Compare(s[2]) <= 0 && s[0].Compare(s[2]) <= 0
	})
	qc(t, "cardinality-dominates", func(a, b Set) bool {
		if a.Len() < b.Len() {
			return a.Compare(b) < 0
		}
		return true
	})
}

func TestQuickIterationConsistency(t *testing.T) {
	qc(t, "foreach-visits-len", func(a Set) bool {
		n := 0
		prev := -1
		ordered := true
		a.ForEach(func(x Attr) {
			if x <= prev {
				ordered = false
			}
			prev = x
			n++
		})
		return n == a.Len() && ordered
	})
	qc(t, "next-chain-equals-attrs", func(a Set) bool {
		var via []Attr
		for x := a.Next(-1); x != -1; x = a.Next(x) {
			via = append(via, x)
		}
		want := a.Attrs()
		if len(via) != len(want) {
			return false
		}
		for i := range via {
			if via[i] != want[i] {
				return false
			}
		}
		return true
	})
	qc(t, "min-max-consistent", func(a Set) bool {
		attrs := a.Attrs()
		if len(attrs) == 0 {
			return a.Min() == -1 && a.Max() == -1
		}
		return a.Min() == attrs[0] && a.Max() == attrs[len(attrs)-1]
	})
}

func TestQuickComplementInvolution(t *testing.T) {
	qc(t, "complement", func(a Set) bool {
		n := 16
		inRange := a.Intersect(Universe(n))
		c := inRange.Complement(n)
		return c.Complement(n) == inRange &&
			c.Union(inRange) == Universe(n) &&
			c.Disjoint(inRange)
	})
}

func TestQuickFamilyMaximalMinimalDuality(t *testing.T) {
	qc(t, "duality", func(a, b, c, d Set) bool {
		f := Family{a, b, c, d}
		max := f.Maximal()
		min := f.Minimal()
		// Maximal and Minimal are antichains covering the family from
		// above resp. below, and fixpoints of themselves.
		return max.Maximal().Equal(max) && min.Minimal().Equal(min) &&
			len(max) <= len(f.Dedup()) && len(min) <= len(f.Dedup())
	})
}
