package attrset

import "slices"

// Family is an ordered collection of attribute sets with helpers for the
// Max⊆ / Min⊆ operators the paper uses (maximal equivalence classes,
// maximal agree sets per attribute, minimal transversals).
type Family []Set

// Sort orders the family canonically (by cardinality, then lexicographic).
func (f Family) Sort() {
	slices.SortFunc(f, Set.Compare)
}

// SortLex orders the family lexicographically by element sequence.
func (f Family) SortLex() {
	slices.SortFunc(f, Set.CompareLex)
}

// Dedup returns f with duplicate sets removed. Order of first occurrences
// is preserved; the receiver is not modified.
func (f Family) Dedup() Family {
	seen := make(map[Set]struct{}, len(f))
	out := make(Family, 0, len(f))
	for _, s := range f {
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		out = append(out, s)
	}
	return out
}

// Contains reports whether the family contains exactly the set s.
func (f Family) Contains(s Set) bool {
	for _, x := range f {
		if x == s {
			return true
		}
	}
	return false
}

// Equal reports whether f and g contain the same sets, ignoring order and
// duplicates.
func (f Family) Equal(g Family) bool {
	fs := make(map[Set]struct{}, len(f))
	for _, s := range f {
		fs[s] = struct{}{}
	}
	gs := make(map[Set]struct{}, len(g))
	for _, s := range g {
		gs[s] = struct{}{}
	}
	if len(fs) != len(gs) {
		return false
	}
	for s := range fs {
		if _, ok := gs[s]; !ok {
			return false
		}
	}
	return true
}

// Maximal returns the ⊆-maximal sets of f: every set of f that is not a
// proper subset of another set of f. Duplicates collapse to one copy. This
// is the paper's Max⊆ operator. The result is in canonical order.
//
// The implementation sorts by descending cardinality so each candidate only
// needs comparing against already-accepted (larger or equal) sets.
func (f Family) Maximal() Family {
	in := f.Dedup()
	slices.SortFunc(in, func(a, b Set) int { return b.Compare(a) })
	out := make(Family, 0, len(in))
	for _, s := range in {
		dominated := false
		for _, m := range out {
			if s.ProperSubsetOf(m) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, s)
		}
	}
	out.Sort()
	return out
}

// Minimal returns the ⊆-minimal sets of f (the Min⊆ operator), the dual of
// Maximal. The result is in canonical order.
func (f Family) Minimal() Family {
	in := f.Dedup()
	slices.SortFunc(in, Set.Compare)
	out := make(Family, 0, len(in))
	for _, s := range in {
		dominates := false
		for _, m := range out {
			if m.ProperSubsetOf(s) {
				dominates = true
				break
			}
		}
		if !dominates {
			out = append(out, s)
		}
	}
	out.Sort()
	return out
}

// IsSimple reports whether f is a simple hypergraph over its union: no
// empty edge and no edge contained in another (after dedup).
func (f Family) IsSimple() bool {
	d := f.Dedup()
	for i, s := range d {
		if s.IsEmpty() {
			return false
		}
		for j, t := range d {
			if i != j && s.SubsetOf(t) {
				return false
			}
		}
	}
	return true
}

// Clone returns a copy of the family (sets are values; only the slice is
// duplicated).
func (f Family) Clone() Family {
	out := make(Family, len(f))
	copy(out, f)
	return out
}

// Strings renders each set with Set.String, in family order.
func (f Family) Strings() []string {
	out := make([]string, len(f))
	for i, s := range f {
		out[i] = s.String()
	}
	return out
}
