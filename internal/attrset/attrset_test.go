package attrset

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func TestEmptyAndZeroValue(t *testing.T) {
	var z Set
	if !z.IsEmpty() {
		t.Error("zero value must be empty")
	}
	if Empty() != z {
		t.Error("Empty() must equal the zero value")
	}
	if z.Len() != 0 {
		t.Errorf("empty Len = %d, want 0", z.Len())
	}
	if z.Min() != -1 || z.Max() != -1 {
		t.Errorf("empty Min/Max = %d/%d, want -1/-1", z.Min(), z.Max())
	}
	if z.String() != "∅" {
		t.Errorf("empty String = %q, want ∅", z.String())
	}
}

func TestAddRemoveContains(t *testing.T) {
	var s Set
	for _, a := range []int{0, 1, 63, 64, 127, 128, 255} {
		if s.Contains(a) {
			t.Fatalf("fresh set contains %d", a)
		}
		s.Add(a)
		if !s.Contains(a) {
			t.Fatalf("after Add(%d), Contains is false", a)
		}
	}
	if s.Len() != 7 {
		t.Fatalf("Len = %d, want 7", s.Len())
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Error("after Remove(64), Contains is true")
	}
	if s.Len() != 6 {
		t.Errorf("Len = %d, want 6", s.Len())
	}
	// Removing an absent element is a no-op.
	before := s
	s.Remove(64)
	if s != before {
		t.Error("Remove of absent element changed the set")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"Add-negative", func() { var s Set; s.Add(-1) }},
		{"Add-too-big", func() { var s Set; s.Add(MaxAttrs) }},
		{"Remove-negative", func() { var s Set; s.Remove(-1) }},
		{"Universe-negative", func() { Universe(-1) }},
		{"Universe-too-big", func() { Universe(MaxAttrs + 1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestContainsOutOfRangeIsFalse(t *testing.T) {
	s := Universe(MaxAttrs)
	if s.Contains(-1) || s.Contains(MaxAttrs) {
		t.Error("Contains must be false outside [0, MaxAttrs)")
	}
}

func TestUniverse(t *testing.T) {
	for _, n := range []int{0, 1, 5, 63, 64, 65, 128, 200, 256} {
		u := Universe(n)
		if u.Len() != n {
			t.Errorf("Universe(%d).Len = %d", n, u.Len())
		}
		if n > 0 && (u.Min() != 0 || u.Max() != n-1) {
			t.Errorf("Universe(%d) Min/Max = %d/%d", n, u.Min(), u.Max())
		}
		if n < MaxAttrs && u.Contains(n) {
			t.Errorf("Universe(%d) contains %d", n, n)
		}
	}
}

func TestSetAlgebraPaperExample(t *testing.T) {
	// ag(1,6) = BDE, ag(4,5) = CE from the paper's running example.
	bde := New(1, 3, 4)
	ce := New(2, 4)
	if got := bde.Intersect(ce); got != New(4) {
		t.Errorf("BDE ∩ CE = %v, want E", got)
	}
	if got := bde.Union(ce); got != New(1, 2, 3, 4) {
		t.Errorf("BDE ∪ CE = %v, want BCDE", got)
	}
	if got := bde.Diff(ce); got != New(1, 3) {
		t.Errorf("BDE \\ CE = %v, want BD", got)
	}
	// cmax example: R \ BDE = AC with |R| = 5.
	if got := bde.Complement(5); got != New(0, 2) {
		t.Errorf("complement(BDE) = %v, want AC", got)
	}
	if bde.String() != "BDE" {
		t.Errorf("String = %q, want BDE", bde.String())
	}
}

func TestSubsetRelations(t *testing.T) {
	a := New(1, 3)
	b := New(1, 3, 4)
	if !a.SubsetOf(b) || !a.ProperSubsetOf(b) {
		t.Error("BD ⊂ BDE expected")
	}
	if b.SubsetOf(a) {
		t.Error("BDE ⊄ BD expected")
	}
	if !b.SupersetOf(a) {
		t.Error("BDE ⊇ BD expected")
	}
	if !a.SubsetOf(a) || a.ProperSubsetOf(a) {
		t.Error("subset reflexivity violated")
	}
	if !a.Intersects(b) || a.Disjoint(b) {
		t.Error("BD intersects BDE expected")
	}
	c := New(0, 2)
	if a.Intersects(c) || !a.Disjoint(c) {
		t.Error("BD disjoint AC expected")
	}
	// Empty set edge cases.
	var e Set
	if !e.SubsetOf(a) || e.Intersects(a) {
		t.Error("∅ ⊆ X and ∅ ∩ X = ∅ expected")
	}
}

func TestWithWithout(t *testing.T) {
	s := New(1, 2)
	if s.With(5) != New(1, 2, 5) {
		t.Error("With failed")
	}
	if s != New(1, 2) {
		t.Error("With mutated receiver")
	}
	if s.Without(1) != New(2) {
		t.Error("Without failed")
	}
	if s != New(1, 2) {
		t.Error("Without mutated receiver")
	}
}

func TestAttrsAndForEachOrder(t *testing.T) {
	in := []int{200, 3, 64, 0, 127}
	s := New(in...)
	slices.Sort(in)
	got := s.Attrs()
	if len(got) != len(in) {
		t.Fatalf("Attrs len = %d, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("Attrs[%d] = %d, want %d", i, got[i], in[i])
		}
	}
}

func TestNext(t *testing.T) {
	s := New(2, 63, 64, 200)
	want := []int{2, 63, 64, 200, -1}
	a := -1
	for _, w := range want {
		a = s.Next(a)
		if a != w {
			t.Fatalf("Next chain got %d, want %d", a, w)
		}
	}
	if s.Next(255) != -1 {
		t.Error("Next(255) should be -1")
	}
	if s.Next(-5) != 2 {
		t.Error("Next(-5) should be Min")
	}
}

func TestCompare(t *testing.T) {
	// Canonical order: cardinality first, then lexicographic.
	ordered := []Set{
		New(0),          // A
		New(1),          // B
		New(0, 1),       // AB
		New(0, 2),       // AC
		New(1, 2),       // BC
		New(0, 1, 2),    // ABC
		New(0, 1, 3),    // ABD
		New(1, 3, 4),    // BDE
		New(0, 1, 2, 3), // ABCD
	}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v,%v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestCompareLex(t *testing.T) {
	// A < AB < ABC < AC < B in lexicographic element order.
	ordered := []Set{New(0), New(0, 1), New(0, 1, 2), New(0, 2), New(1)}
	for i := 0; i+1 < len(ordered); i++ {
		if ordered[i].CompareLex(ordered[i+1]) >= 0 {
			t.Errorf("lex order violated between %v and %v", ordered[i], ordered[i+1])
		}
	}
	if New(1, 3).CompareLex(New(1, 3)) != 0 {
		t.Error("lex self-compare not 0")
	}
}

func TestStringNamesParse(t *testing.T) {
	s := New(1, 3, 4)
	if s.String() != "BDE" {
		t.Errorf("String = %q", s.String())
	}
	names := []string{"empnum", "depnum", "year", "depname", "mgr"}
	if got := s.Names(names, ","); got != "depnum,depname,mgr" {
		t.Errorf("Names = %q", got)
	}
	if got := New(0, 30).Names(names[:1], ","); got != "empnum,attr30" {
		t.Errorf("Names fallback = %q", got)
	}
	if got := New(30).String(); got != "·attr30" {
		t.Errorf("String high attr = %q", got)
	}

	p, ok := Parse("bDe")
	if !ok || p != s {
		t.Errorf("Parse(bDe) = %v, %v", p, ok)
	}
	if p, ok := Parse(""); !ok || !p.IsEmpty() {
		t.Error("Parse empty failed")
	}
	if p, ok := Parse("∅"); !ok || !p.IsEmpty() {
		t.Error("Parse ∅ failed")
	}
	if _, ok := Parse("A B"); ok {
		t.Error("Parse should reject spaces")
	}
}

func TestValid(t *testing.T) {
	if !Valid(0) || !Valid(256) || Valid(-1) || Valid(257) {
		t.Error("Valid boundaries wrong")
	}
}

// randSet draws a random set over n attributes.
func randSet(rng *rand.Rand, n int) Set {
	var s Set
	for a := 0; a < n; a++ {
		if rng.Intn(2) == 1 {
			s.Add(a)
		}
	}
	return s
}

func TestPropertySetAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		n := 1 + rng.Intn(MaxAttrs)
		s, u, v := randSet(rng, n), randSet(rng, n), randSet(rng, n)

		if got := s.Union(u).Intersect(s); !s.SubsetOf(s.Union(u)) || got != s {
			t.Fatalf("absorption failed for %v %v", s, u)
		}
		if s.Union(u) != u.Union(s) || s.Intersect(u) != u.Intersect(s) {
			t.Fatal("commutativity failed")
		}
		if s.Union(u).Union(v) != s.Union(u.Union(v)) {
			t.Fatal("associativity failed")
		}
		// De Morgan within a universe.
		un := Universe(n)
		if s.Union(u).Complement(n) != s.Complement(n).Intersect(u.Complement(n)) {
			t.Fatal("De Morgan failed")
		}
		if s.Diff(u) != s.Intersect(u.Complement(n)).Intersect(un) {
			t.Fatal("diff identity failed")
		}
		// Cardinality inclusion–exclusion.
		if s.Union(u).Len()+s.Intersect(u).Len() != s.Len()+u.Len() {
			t.Fatal("inclusion-exclusion failed")
		}
		// Round-trip through Attrs.
		if New(s.Attrs()...) != s {
			t.Fatal("Attrs round-trip failed")
		}
		// Compare is antisymmetric and consistent with equality.
		if (s.Compare(u) == 0) != (s == u) {
			t.Fatal("Compare zero iff equal failed")
		}
		if s.Compare(u) != -u.Compare(s) {
			t.Fatal("Compare antisymmetry failed")
		}
	}
}

func TestQuickSubsetTransitivity(t *testing.T) {
	f := func(aw, bw [Words]uint64) bool {
		a, b := Set(aw), Set(bw)
		ab := a.Intersect(b)
		// a∩b ⊆ a ⊆ a∪b always.
		return ab.SubsetOf(a) && a.SubsetOf(a.Union(b)) && ab.Len() <= a.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFamilyMaximalMinimal(t *testing.T) {
	// Paper example 4: classes {1,2},{1,6},{2,7},{3,4},{4,5},{3,4,5} →
	// maximal = {1,2},{1,6},{2,7},{3,4,5}. Encoded as attr sets over ids.
	f := Family{New(1, 2), New(1, 6), New(2, 7), New(3, 4), New(4, 5), New(3, 4, 5)}
	max := f.Maximal()
	want := Family{New(1, 2), New(1, 6), New(2, 7), New(3, 4, 5)}
	if !max.Equal(want) {
		t.Errorf("Maximal = %v, want %v", max.Strings(), want.Strings())
	}
	min := f.Minimal()
	wantMin := Family{New(1, 2), New(1, 6), New(2, 7), New(3, 4), New(4, 5)}
	if !min.Equal(wantMin) {
		t.Errorf("Minimal = %v, want %v", min.Strings(), wantMin.Strings())
	}
}

func TestFamilyMaximalDuplicatesAndEmpty(t *testing.T) {
	f := Family{New(1), New(1), Empty()}
	max := f.Maximal()
	if !max.Equal(Family{New(1)}) {
		t.Errorf("Maximal = %v", max.Strings())
	}
	if got := (Family{}).Maximal(); len(got) != 0 {
		t.Errorf("Maximal of empty = %v", got)
	}
	min := f.Minimal()
	if !min.Equal(Family{Empty()}) {
		t.Errorf("Minimal = %v", min.Strings())
	}
}

func TestFamilyEqualDedupContains(t *testing.T) {
	f := Family{New(1), New(2), New(1)}
	g := Family{New(2), New(1)}
	if !f.Equal(g) {
		t.Error("Equal should ignore order and duplicates")
	}
	if f.Equal(Family{New(1)}) {
		t.Error("Equal false negative expected")
	}
	if d := f.Dedup(); len(d) != 2 {
		t.Errorf("Dedup len = %d", len(d))
	}
	if !f.Contains(New(2)) || f.Contains(New(3)) {
		t.Error("Contains wrong")
	}
}

func TestFamilyIsSimple(t *testing.T) {
	if !(Family{New(0, 2), New(0, 1, 3)}).IsSimple() {
		t.Error("antichain should be simple")
	}
	if (Family{New(0), New(0, 1)}).IsSimple() {
		t.Error("nested edges are not simple")
	}
	if (Family{Empty()}).IsSimple() {
		t.Error("empty edge is not simple")
	}
	// Duplicates collapse, so {X, X} is simple.
	if !(Family{New(0, 1), New(0, 1)}).IsSimple() {
		t.Error("duplicate edges should collapse")
	}
}

func TestFamilySortDeterminism(t *testing.T) {
	f := Family{New(1, 3, 4), New(0), New(0, 2), New(1)}
	f.Sort()
	want := []string{"A", "B", "AC", "BDE"}
	for i, s := range f {
		if s.String() != want[i] {
			t.Fatalf("Sort order[%d] = %s, want %s", i, s, want[i])
		}
	}
	g := f.Clone()
	g.SortLex()
	wantLex := []string{"A", "AC", "B", "BDE"}
	for i, s := range g {
		if s.String() != wantLex[i] {
			t.Fatalf("SortLex order[%d] = %s, want %s", i, s, wantLex[i])
		}
	}
}

func TestPropertyMaximalMinimalInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		n := 1 + rng.Intn(10)
		f := make(Family, rng.Intn(12))
		for j := range f {
			f[j] = randSet(rng, n)
		}
		max := f.Maximal()
		// Every input set is ⊆ some maximal set; maximal family is an antichain.
		for _, s := range f {
			covered := false
			for _, m := range max {
				if s.SubsetOf(m) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("set %v not covered by Maximal %v", s, max.Strings())
			}
		}
		for i, a := range max {
			for j, b := range max {
				if i != j && a.SubsetOf(b) {
					t.Fatalf("Maximal not an antichain: %v ⊆ %v", a, b)
				}
			}
		}
		min := f.Minimal()
		for _, s := range f {
			covered := false
			for _, m := range min {
				if m.SubsetOf(s) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("set %v not covered by Minimal %v", s, min.Strings())
			}
		}
	}
}
