// Package attrset implements fixed-capacity attribute sets as bit vectors.
//
// The Dep-Miner paper notes that "attribute sets are implemented as bit
// vectors to provide set operations in constant time"; this package is the
// Go equivalent. A Set is a comparable value type ([Words]uint64), so it can
// be used directly as a map key without any encoding step, which the
// agree-set deduplication and the levelwise transversal search both rely on.
//
// The capacity is MaxAttrs (256) attributes, indexed 0..MaxAttrs-1. Callers
// that load external data must validate schema width with Valid or rely on
// relation loading, which rejects wider schemas. FD discovery is
// exponential in the number of attributes, so 256 is far beyond what any
// discovery run can process; the fixed width buys zero-allocation set
// algebra in the hot loops.
package attrset

import (
	"math/bits"
	"strings"
)

// Words is the number of 64-bit words backing a Set.
const Words = 4

// MaxAttrs is the largest number of attributes a Set can hold.
const MaxAttrs = Words * 64

// Attr identifies an attribute by its column index in the relation schema.
type Attr = int

// Set is a set of attribute indices in [0, MaxAttrs). The zero value is the
// empty set. Set is a small value type: pass it by value, compare it with
// ==, and use it as a map key.
type Set [Words]uint64

// Empty returns the empty set. It exists for readability; Set{} is
// equivalent.
func Empty() Set { return Set{} }

// New returns the set containing the given attributes. It panics if any
// attribute is outside [0, MaxAttrs), mirroring slice index panics: attribute
// indices are internal values produced by this module's callers, so an
// out-of-range index is a programming error, not an input error.
func New(attrs ...Attr) Set {
	var s Set
	for _, a := range attrs {
		s.Add(a)
	}
	return s
}

// Single returns the singleton {a}.
func Single(a Attr) Set {
	var s Set
	s.Add(a)
	return s
}

// Universe returns the set {0, 1, ..., n-1}, i.e. the full schema R of a
// relation with n attributes. It panics if n is negative or exceeds
// MaxAttrs.
func Universe(n int) Set {
	if n < 0 || n > MaxAttrs {
		panic("attrset: Universe size out of range")
	}
	var s Set
	for w := 0; n > 0; w++ {
		if n >= 64 {
			s[w] = ^uint64(0)
			n -= 64
		} else {
			s[w] = (uint64(1) << uint(n)) - 1
			n = 0
		}
	}
	return s
}

// Add inserts attribute a into the set.
func (s *Set) Add(a Attr) {
	if a < 0 || a >= MaxAttrs {
		panic("attrset: attribute index out of range")
	}
	s[a>>6] |= 1 << uint(a&63)
}

// Remove deletes attribute a from the set.
func (s *Set) Remove(a Attr) {
	if a < 0 || a >= MaxAttrs {
		panic("attrset: attribute index out of range")
	}
	s[a>>6] &^= 1 << uint(a&63)
}

// Contains reports whether attribute a is in the set.
func (s Set) Contains(a Attr) bool {
	if a < 0 || a >= MaxAttrs {
		return false
	}
	return s[a>>6]&(1<<uint(a&63)) != 0
}

// IsEmpty reports whether the set has no elements.
func (s Set) IsEmpty() bool {
	return s == Set{}
}

// Len returns the number of attributes in the set.
func (s Set) Len() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	var u Set
	for i := range s {
		u[i] = s[i] | t[i]
	}
	return u
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	var u Set
	for i := range s {
		u[i] = s[i] & t[i]
	}
	return u
}

// Diff returns s \ t.
func (s Set) Diff(t Set) Set {
	var u Set
	for i := range s {
		u[i] = s[i] &^ t[i]
	}
	return u
}

// Complement returns universe \ s, where universe = {0..n-1}.
func (s Set) Complement(n int) Set {
	return Universe(n).Diff(s)
}

// With returns s ∪ {a} without modifying s.
func (s Set) With(a Attr) Set {
	s.Add(a)
	return s
}

// Without returns s \ {a} without modifying s.
func (s Set) Without(a Attr) Set {
	s.Remove(a)
	return s
}

// SubsetOf reports whether s ⊆ t.
func (s Set) SubsetOf(t Set) bool {
	for i := range s {
		if s[i]&^t[i] != 0 {
			return false
		}
	}
	return true
}

// ProperSubsetOf reports whether s ⊂ t.
func (s Set) ProperSubsetOf(t Set) bool {
	return s != t && s.SubsetOf(t)
}

// SupersetOf reports whether s ⊇ t.
func (s Set) SupersetOf(t Set) bool { return t.SubsetOf(s) }

// Intersects reports whether s ∩ t ≠ ∅.
func (s Set) Intersects(t Set) bool {
	for i := range s {
		if s[i]&t[i] != 0 {
			return true
		}
	}
	return false
}

// Disjoint reports whether s ∩ t = ∅.
func (s Set) Disjoint(t Set) bool { return !s.Intersects(t) }

// Attrs returns the attributes of the set in increasing order.
func (s Set) Attrs() []Attr {
	out := make([]Attr, 0, s.Len())
	s.ForEach(func(a Attr) {
		out = append(out, a)
	})
	return out
}

// ForEach calls fn for each attribute of the set in increasing order.
func (s Set) ForEach(fn func(Attr)) {
	for wi, w := range s {
		base := wi << 6
		for w != 0 {
			a := base + bits.TrailingZeros64(w)
			fn(a)
			w &= w - 1
		}
	}
}

// Min returns the smallest attribute in the set, or -1 if the set is empty.
func (s Set) Min() Attr {
	for wi, w := range s {
		if w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Max returns the largest attribute in the set, or -1 if the set is empty.
func (s Set) Max() Attr {
	for wi := Words - 1; wi >= 0; wi-- {
		if w := s[wi]; w != 0 {
			return wi<<6 + 63 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

// Next returns the smallest attribute in the set that is strictly greater
// than a, or -1 if there is none. Passing a = -1 yields Min.
func (s Set) Next(a Attr) Attr {
	a++
	if a < 0 {
		a = 0
	}
	if a >= MaxAttrs {
		return -1
	}
	wi := a >> 6
	w := s[wi] >> uint(a&63) << uint(a&63) // clear bits below a
	for {
		if w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
		wi++
		if wi >= Words {
			return -1
		}
		w = s[wi]
	}
}

// Compare orders sets first by cardinality, then lexicographically by the
// bit pattern (lowest attribute index most significant). It returns -1, 0,
// or +1. This is the canonical deterministic order used when emitting FDs
// and hypergraph edges, so output is reproducible across runs.
func (s Set) Compare(t Set) int {
	if c, d := s.Len(), t.Len(); c != d {
		if c < d {
			return -1
		}
		return 1
	}
	return s.CompareLex(t)
}

// CompareLex orders sets lexicographically by element sequence: the set
// whose first differing attribute is smaller sorts first. Examples (letters
// for indices): A < AB < ABC < AC < B.
func (s Set) CompareLex(t Set) int {
	if s == t {
		return 0
	}
	// Compare the sorted element sequences. The divergence point is the
	// minimum m of the symmetric difference. If the set not containing m
	// has no element past m, it is a proper prefix of the other and sorts
	// first; otherwise the set containing m sorts first (its element at
	// the divergence position is smaller).
	for i := range s {
		d := s[i] ^ t[i]
		if d == 0 {
			continue
		}
		m := i<<6 + bits.TrailingZeros64(d)
		if s.Contains(m) {
			if m > t.Max() { // t is a proper prefix of s
				return 1
			}
			return -1
		}
		if m > s.Max() { // s is a proper prefix of t
			return -1
		}
		return 1
	}
	return 0
}

// String renders the set using uppercase letters A..Z for indices 0..25 and
// attr27, attr28, ... beyond, matching the paper's notation for small
// schemas ("BDE"). The empty set renders as "∅".
func (s Set) String() string {
	if s.IsEmpty() {
		return "∅"
	}
	var b strings.Builder
	s.ForEach(func(a Attr) {
		if a < 26 {
			b.WriteByte(byte('A' + a))
		} else {
			b.WriteString("·attr")
			for _, d := range itoa(a) {
				b.WriteByte(d)
			}
		}
	})
	return b.String()
}

// Names renders the set using the provided attribute names, joined by sep.
func (s Set) Names(names []string, sep string) string {
	var b strings.Builder
	first := true
	s.ForEach(func(a Attr) {
		if !first {
			b.WriteString(sep)
		}
		first = false
		if a < len(names) {
			b.WriteString(names[a])
		} else {
			b.WriteString("attr")
			for _, d := range itoa(a) {
				b.WriteByte(d)
			}
		}
	})
	return b.String()
}

func itoa(n int) []byte {
	if n == 0 {
		return []byte{'0'}
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return buf[i:]
}

// Valid reports whether n attributes fit in a Set.
func Valid(n int) bool { return n >= 0 && n <= MaxAttrs }

// Parse parses the letter notation produced by String for schemas of at
// most 26 attributes: "BDE" → {1,3,4}. It ignores case and returns the
// empty set for "" or "∅". Characters outside A..Z/a..z are rejected.
func Parse(s string) (Set, bool) {
	var out Set
	if s == "" || s == "∅" {
		return out, true
	}
	for _, r := range s {
		switch {
		case r >= 'A' && r <= 'Z':
			out.Add(int(r - 'A'))
		case r >= 'a' && r <= 'z':
			out.Add(int(r - 'a'))
		default:
			return Set{}, false
		}
	}
	return out, true
}
