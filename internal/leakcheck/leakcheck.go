// Package leakcheck is a test helper asserting that a test leaves no
// goroutines behind — the leak-freedom half of the robustness contract:
// every miner must unwind completely on success, cancellation, budget
// overrun, and contained panic alike.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// Check snapshots the goroutine count and registers a cleanup that fails
// the test if the count has not returned to the snapshot within a grace
// period (workers unwind asynchronously after the coordinator returns).
// Call it first in the test; tests using it must not run in parallel,
// since the count is process-global.
func Check(t testing.TB) {
	t.Helper()
	start := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= start {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d at start, %d after cleanup\n%s", start, n, buf)
	})
}
