package datagen

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/attrset"
	"repro/internal/core"
	"repro/internal/fd"
)

func plant(lhs string, rhs int) fd.FD {
	s, ok := attrset.Parse(lhs)
	if !ok {
		panic("bad spec " + lhs)
	}
	return fd.FD{LHS: s, RHS: rhs}
}

func TestGeneratePlantedHoldsByConstruction(t *testing.T) {
	spec := PlantedSpec{
		Attrs: 6,
		Rows:  500,
		Seed:  3,
		FDs: fd.Cover{
			plant("A", 1),  // A → B
			plant("BC", 3), // BC → D (chains through derived B)
			plant("E", 5),  // E → F
		},
		FreeDomain: 40,
	}
	r, err := GeneratePlanted(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows() != 500 || r.Arity() != 6 {
		t.Fatalf("shape %dx%d", r.Rows(), r.Arity())
	}
	for _, f := range spec.FDs {
		if !r.Satisfies(f.LHS, f.RHS) {
			t.Errorf("planted FD %s does not hold", f)
		}
	}
	// Free columns keep their entropy: A should not be constant.
	if r.DomainSize(0) < 2 {
		t.Error("free column degenerated")
	}
}

func TestGeneratePlantedRecallThroughDiscovery(t *testing.T) {
	spec := PlantedSpec{
		Attrs: 5,
		Rows:  300,
		Seed:  9,
		FDs: fd.Cover{
			plant("A", 2),
			plant("BD", 4),
		},
		FreeDomain: 25,
	}
	r, err := GeneratePlanted(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Discover(context.Background(), r, core.Options{Armstrong: core.ArmstrongNone})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range spec.FDs {
		if !res.FDs.Implies(f, spec.Attrs) {
			t.Errorf("discovered cover does not imply planted %s", f)
		}
	}
}

func TestGeneratePlantedChainsAndDeterminism(t *testing.T) {
	spec := PlantedSpec{
		Attrs: 4,
		Rows:  200,
		Seed:  4,
		FDs: fd.Cover{
			plant("A", 1), // A → B
			plant("B", 2), // B → C (B is derived)
			plant("C", 3), // C → D (C is derived)
		},
		FreeDomain: 30,
	}
	r1, err := GeneratePlanted(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Transitivity must hold exactly: A → D.
	if !r1.Satisfies(attrset.Single(0), 3) {
		t.Error("transitive planted chain broken: A → D fails")
	}
	r2, err := GeneratePlanted(spec)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < r1.Rows(); tt++ {
		for a := 0; a < r1.Arity(); a++ {
			if r1.Code(tt, a) != r2.Code(tt, a) {
				t.Fatal("planted generation not deterministic")
			}
		}
	}
}

func TestGeneratePlantedErrors(t *testing.T) {
	if _, err := GeneratePlanted(PlantedSpec{Attrs: -1}); err == nil {
		t.Error("negative attrs accepted")
	}
	if _, err := GeneratePlanted(PlantedSpec{
		Attrs: 3, Rows: 5, FDs: fd.Cover{plant("AB", 0)},
	}); err == nil {
		t.Error("trivial planted FD accepted")
	}
	if _, err := GeneratePlanted(PlantedSpec{
		Attrs: 2, Rows: 5, FDs: fd.Cover{plant("A", 4)},
	}); err == nil {
		t.Error("out-of-schema RHS accepted")
	}
	if _, err := GeneratePlanted(PlantedSpec{
		Attrs: 2, Rows: 5, FDs: fd.Cover{plant("E", 0)},
	}); err == nil {
		t.Error("out-of-schema LHS accepted")
	}
	// Cyclic plants rejected.
	if _, err := GeneratePlanted(PlantedSpec{
		Attrs: 2, Rows: 5, FDs: fd.Cover{plant("A", 1), plant("B", 0)},
	}); err == nil {
		t.Error("cyclic plants accepted")
	}
	// Self-cycle via a chain.
	if _, err := GeneratePlanted(PlantedSpec{
		Attrs: 3, Rows: 5, FDs: fd.Cover{plant("A", 1), plant("B", 2), plant("C", 0)},
	}); err == nil {
		t.Error("3-cycle accepted")
	}
}

func TestGeneratePlantedConstantColumn(t *testing.T) {
	// ∅ → A plants a constant column.
	r, err := GeneratePlanted(PlantedSpec{
		Attrs: 2, Rows: 20, Seed: 1,
		FDs: fd.Cover{{LHS: attrset.Empty(), RHS: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.DomainSize(0) != 1 {
		t.Errorf("planted constant column has %d values", r.DomainSize(0))
	}
}

func TestGeneratePlantedRandomizedRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for iter := 0; iter < 15; iter++ {
		n := 3 + rng.Intn(3)
		// Plant a random acyclic cover: RHS indices strictly above all
		// their LHS attributes.
		var cover fd.Cover
		for k := 0; k < 1+rng.Intn(3); k++ {
			rhs := 1 + rng.Intn(n-1)
			var lhs attrset.Set
			for a := 0; a < rhs; a++ {
				if rng.Intn(2) == 0 {
					lhs.Add(a)
				}
			}
			if lhs.IsEmpty() {
				lhs.Add(rng.Intn(rhs))
			}
			cover = append(cover, fd.FD{LHS: lhs, RHS: rhs})
		}
		r, err := GeneratePlanted(PlantedSpec{
			Attrs: n, Rows: 100 + rng.Intn(200),
			Seed: uint64(iter), FDs: cover, FreeDomain: 10 + rng.Intn(40),
		})
		if err != nil {
			t.Fatalf("iter %d: %v (cover %v)", iter, err, cover)
		}
		// Later plants on the same RHS override earlier ones; verify
		// the last plant per RHS.
		last := map[int]fd.FD{}
		for _, f := range cover {
			last[f.RHS] = f
		}
		for _, f := range last {
			if !r.Satisfies(f.LHS, f.RHS) {
				t.Fatalf("iter %d: planted %s violated", iter, f)
			}
		}
	}
}
