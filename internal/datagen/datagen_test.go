package datagen

import (
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	good := Spec{Attrs: 10, Rows: 100, Correlation: 0.3}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{Attrs: -1, Rows: 10},
		{Attrs: 1, Rows: -1},
		{Attrs: 300, Rows: 10},
		{Attrs: 1, Rows: 10, Correlation: -0.1},
		{Attrs: 1, Rows: 10, Correlation: 1.1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
		if _, err := Generate(s); err == nil {
			t.Errorf("bad spec %d generated", i)
		}
	}
}

func TestDomainSize(t *testing.T) {
	cases := []struct {
		spec Spec
		want int
	}{
		{Spec{Rows: 1000, Correlation: 0.5}, 500}, // the paper's example
		{Spec{Rows: 1000, Correlation: 0.3}, 300},
		{Spec{Rows: 1000, Correlation: 0}, 1000}, // no constraints
		{Spec{Rows: 10, Correlation: 0.001}, 1},  // ceil, min 1
		{Spec{Rows: 0, Correlation: 0.5}, 1},
		{Spec{Rows: 7, Correlation: 0.5}, 4}, // ceil(3.5)
		{Spec{Rows: 100, Correlation: 1}, 100},
	}
	for _, c := range cases {
		if got := c.spec.DomainSize(); got != c.want {
			t.Errorf("%v: DomainSize = %d, want %d", c.spec, got, c.want)
		}
	}
}

func TestGenerateShapeAndDeterminism(t *testing.T) {
	spec := Spec{Attrs: 8, Rows: 500, Correlation: 0.3, Seed: 42}
	r1, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rows() != 500 || r1.Arity() != 8 {
		t.Fatalf("shape %dx%d", r1.Rows(), r1.Arity())
	}
	r2, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 8; a++ {
		for tt := 0; tt < 500; tt++ {
			if r1.Code(tt, a) != r2.Code(tt, a) {
				t.Fatalf("nondeterministic at (%d,%d)", tt, a)
			}
		}
	}
	// Different seeds differ somewhere.
	r3, err := Generate(Spec{Attrs: 8, Rows: 500, Correlation: 0.3, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for a := 0; a < 8 && same; a++ {
		for tt := 0; tt < 500; tt++ {
			if r1.Value(tt, a) != r3.Value(tt, a) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seed 42 and 43 produced identical data")
	}
}

func TestColumnsDecorrelated(t *testing.T) {
	// Two columns of the same relation must not be identical (they use
	// different streams).
	r, err := Generate(Spec{Attrs: 2, Rows: 200, Correlation: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for tt := 0; tt < 200; tt++ {
		if r.Value(tt, 0) != r.Value(tt, 1) {
			same = false
			break
		}
	}
	if same {
		t.Error("columns 0 and 1 are identical")
	}
}

func TestCorrelationControlsDistinctValues(t *testing.T) {
	rows := 2000
	for _, c := range []float64{0.1, 0.3, 0.5} {
		r, err := Generate(Spec{Attrs: 3, Rows: rows, Correlation: c, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		d := c * float64(rows)
		// Expected distinct values after `rows` uniform draws from a
		// domain of size d: d·(1 − (1 − 1/d)^rows). Allow 5% slack.
		expect := d * (1 - math.Pow(1-1/d, float64(rows)))
		for a := 0; a < 3; a++ {
			got := float64(r.DomainSize(a))
			if got > d || math.Abs(got-expect) > 0.05*expect {
				t.Errorf("c=%v attr %d: %v distinct values, want ≈ %.0f (domain %.0f)",
					c, a, got, expect, d)
			}
		}
	}
}

func TestNoConstraintsCollisionRate(t *testing.T) {
	// c = 0: domain size = rows; expected distinct fraction ≈ 1-1/e ≈ 0.63.
	rows := 5000
	r, err := Generate(Spec{Attrs: 1, Rows: rows, Correlation: 0, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(r.DomainSize(0)) / float64(rows)
	if math.Abs(frac-0.632) > 0.05 {
		t.Errorf("distinct fraction = %v, want ≈ 0.632", frac)
	}
}

func TestColumnNames(t *testing.T) {
	cases := map[int]string{0: "A", 25: "Z", 26: "AA", 27: "AB", 51: "AZ", 52: "BA", 701: "ZZ", 702: "AAA"}
	for a, want := range cases {
		if got := columnName(a); got != want {
			t.Errorf("columnName(%d) = %q, want %q", a, got, want)
		}
	}
}

func TestStringAndEmptySpec(t *testing.T) {
	s := Spec{Attrs: 10, Rows: 10000, Correlation: 0.3}
	if s.String() != "|R|=10 |r|=10000 c=30%" {
		t.Errorf("String = %q", s.String())
	}
	r, err := Generate(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows() != 0 || r.Arity() != 0 {
		t.Error("empty spec should give empty relation")
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for SplitMix64 seeded with 0 (from the public
	// domain reference implementation).
	rng := newSplitMix64(0)
	want := []uint64{0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F}
	for i, w := range want {
		if got := rng.next(); got != w {
			t.Fatalf("splitmix64[%d] = %#x, want %#x", i, got, w)
		}
	}
}
