package datagen

import (
	"bytes"
	"context"
	"testing"
)

// TestStreamMatchesGenerate pins the fixture contract: the streaming
// writer and the in-memory generator emit byte-identical CSV for the
// same spec, so out-of-core fixtures are interchangeable with in-memory
// ones.
func TestStreamMatchesGenerate(t *testing.T) {
	specs := []Spec{
		{Attrs: 5, Rows: 300, Correlation: 0.5, Seed: 1},
		{Attrs: 1, Rows: 50, Correlation: 0, Seed: 42},
		{Attrs: 30, Rows: 100, Correlation: 0.3, Seed: 7},
		{Attrs: 3, Rows: 0, Seed: 9},
		{Attrs: 0, Rows: 0},
	}
	for _, spec := range specs {
		r, err := Generate(spec)
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		var want bytes.Buffer
		if err := r.WriteCSV(&want); err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		var got bytes.Buffer
		if err := Stream(context.Background(), spec, &got); err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("%v: streamed CSV differs from Generate+WriteCSV (%d vs %d bytes)",
				spec, got.Len(), want.Len())
		}
	}
}

func TestStreamCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	if err := Stream(ctx, Spec{Attrs: 2, Rows: 100000}, &buf); err == nil {
		t.Fatal("cancelled stream completed")
	}
}

func TestStreamRejectsBadSpec(t *testing.T) {
	var buf bytes.Buffer
	if err := Stream(context.Background(), Spec{Attrs: -1}, &buf); err == nil {
		t.Fatal("invalid spec streamed")
	}
}
