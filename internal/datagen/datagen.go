// Package datagen generates the synthetic benchmark relations of the
// paper's evaluation (§5.2, Table 2).
//
// The generator is controlled by three parameters: |R| (number of
// attributes), |r| (number of tuples), and c, the "rate of identical
// values": with c = 50% and 1000 tuples, "each value for this attribute is
// chosen between 500 possible values", i.e. uniformly from a per-column
// domain of ⌈c·|r|⌉ values. The paper's three workload groups are c = 0
// ("data sets without constraints" — modelled as a domain as large as the
// relation, so collisions are only incidental), c = 30% and c = 50%.
//
// The authors' generator was not released; this implementation follows the
// documented observable behaviour (see DESIGN.md §6). Generation is
// deterministic in (spec, seed) — a SplitMix64 stream per column — so
// benchmark rows are reproducible across runs and platforms.
package datagen

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/attrset"
	"repro/internal/relation"
)

// Spec describes a synthetic relation.
type Spec struct {
	// Attrs is |R|, the number of attributes.
	Attrs int
	// Rows is |r|, the number of tuples.
	Rows int
	// Correlation is the paper's c parameter in [0, 1]: the per-column
	// domain has max(1, ⌈c·Rows⌉) values. Zero selects the
	// "no constraints" workload (domain size = Rows).
	Correlation float64
	// Seed makes distinct deterministic datasets; specs differing only
	// in Seed produce independent relations.
	Seed uint64
}

// Validate reports whether the spec is generatable.
func (s Spec) Validate() error {
	if s.Attrs < 0 || s.Rows < 0 {
		return fmt.Errorf("datagen: negative dimensions %dx%d", s.Attrs, s.Rows)
	}
	if !attrset.Valid(s.Attrs) {
		return fmt.Errorf("datagen: %d attributes exceed the %d-attribute limit", s.Attrs, attrset.MaxAttrs)
	}
	if s.Correlation < 0 || s.Correlation > 1 {
		return fmt.Errorf("datagen: correlation %v out of [0,1]", s.Correlation)
	}
	return nil
}

// DomainSize returns the per-column domain size the spec induces.
func (s Spec) DomainSize() int {
	if s.Rows == 0 {
		return 1
	}
	if s.Correlation == 0 {
		return s.Rows
	}
	d := int(s.Correlation * float64(s.Rows))
	if float64(d) < s.Correlation*float64(s.Rows) {
		d++
	}
	if d < 1 {
		d = 1
	}
	return d
}

// String renders the spec like the paper's table headings.
func (s Spec) String() string {
	return fmt.Sprintf("|R|=%d |r|=%d c=%d%%", s.Attrs, s.Rows, int(s.Correlation*100))
}

// Generate materialises the relation.
func Generate(spec Spec) (*relation.Relation, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	names := make([]string, spec.Attrs)
	for a := range names {
		names[a] = columnName(a)
	}
	dom := spec.DomainSize()
	cols := make([][]int, spec.Attrs)
	for a := range cols {
		rng := newSplitMix64(spec.Seed ^ mix(uint64(a)+1))
		col := make([]int, spec.Rows)
		for t := range col {
			col[t] = int(rng.next() % uint64(dom))
		}
		cols[a] = col
	}
	return relation.FromCodes(names, cols)
}

// Stream writes the relation Generate would produce directly to w as
// CSV, holding one row in memory — the fixture path for out-of-core
// tests, where the CSV can be gigabytes while the generator stays O(|R|).
// The output is byte-identical to Generate followed by
// relation.WriteCSV: the same per-column SplitMix64 streams are drawn
// row-major (one value per column per row), and the CSV values are the
// raw draws rendered in decimal, exactly as relation.FromCodes
// dictionaries render sparse codes. The context is checked periodically
// so multi-GB generations cancel promptly.
func Stream(ctx context.Context, spec Spec, w io.Writer) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	names := make([]string, spec.Attrs)
	rngs := make([]*splitMix64, spec.Attrs)
	for a := range names {
		names[a] = columnName(a)
		rngs[a] = newSplitMix64(spec.Seed ^ mix(uint64(a)+1))
	}
	dom := uint64(spec.DomainSize())
	cw := csv.NewWriter(w)
	if err := cw.Write(names); err != nil {
		return fmt.Errorf("datagen: streaming csv: %w", err)
	}
	row := make([]string, spec.Attrs)
	for t := 0; t < spec.Rows; t++ {
		if t&0x3FF == 0 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("datagen: streaming cancelled: %w", err)
			}
		}
		for a := range row {
			row[a] = strconv.Itoa(int(rngs[a].next() % dom))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("datagen: streaming csv: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("datagen: streaming csv: %w", err)
	}
	return nil
}

// columnName produces spreadsheet-style names: A..Z, AA, AB, ...
func columnName(a int) string {
	var buf [8]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('A' + a%26)
		a = a/26 - 1
		if a < 0 {
			break
		}
	}
	return string(buf[i:])
}

// splitMix64 is the SplitMix64 PRNG (Steele, Lea, Flood 2014): tiny,
// stateless-seedable, and stable across platforms — unlike math/rand's
// unspecified stream, which could silently change benchmark datasets
// between Go releases.
type splitMix64 struct{ state uint64 }

func newSplitMix64(seed uint64) *splitMix64 { return &splitMix64{state: seed} }

func (s *splitMix64) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// mix hashes a seed component so per-column streams are decorrelated.
func mix(x uint64) uint64 {
	s := splitMix64{state: x}
	return s.next()
}
