package datagen

import (
	"fmt"
	"slices"

	"repro/internal/attrset"
	"repro/internal/fd"
	"repro/internal/relation"
)

// PlantedSpec describes a synthetic relation with known embedded
// functional dependencies. The uniform generator of the paper's benchmark
// (Generate) produces only accidental FDs; planted relations let tests
// and demos verify *recall* — every planted dependency must be implied by
// whatever a miner discovers.
type PlantedSpec struct {
	// Attrs, Rows, Seed as in Spec.
	Attrs int
	Rows  int
	Seed  uint64
	// FDs to embed. For each dependency X → A, column A is computed as a
	// deterministic function of the X columns, so the dependency holds
	// by construction. Derived columns may feed other planted LHSs
	// (chains are applied in topological order); cyclic plants (A → B
	// together with B → A) are rejected — plant one direction and let
	// discovery find the accidental converse if the hash happens to be
	// injective.
	FDs fd.Cover
	// FreeDomain is the domain size of columns that are not a planted
	// RHS (default: Rows, the no-constraints workload).
	FreeDomain int
}

// GeneratePlanted materialises the relation. It returns an error if a
// planted FD references attributes outside the schema or is trivial.
func GeneratePlanted(spec PlantedSpec) (*relation.Relation, error) {
	if spec.Attrs < 0 || spec.Rows < 0 || !attrset.Valid(spec.Attrs) {
		return nil, fmt.Errorf("datagen: bad planted shape %dx%d", spec.Attrs, spec.Rows)
	}
	planted := make(map[int]attrset.Set) // RHS -> LHS (last plant wins)
	for _, f := range spec.FDs {
		if f.Trivial() {
			return nil, fmt.Errorf("datagen: trivial planted FD %s", f)
		}
		if f.RHS >= spec.Attrs || (!f.LHS.IsEmpty() && f.LHS.Max() >= spec.Attrs) {
			return nil, fmt.Errorf("datagen: planted FD %s outside schema of %d attributes", f, spec.Attrs)
		}
		planted[f.RHS] = f.LHS
	}
	free := spec.FreeDomain
	if free <= 0 {
		free = spec.Rows
	}
	if free < 1 {
		free = 1
	}

	names := make([]string, spec.Attrs)
	cols := make([][]int, spec.Attrs)
	for a := range cols {
		names[a] = columnName(a)
		col := make([]int, spec.Rows)
		rng := newSplitMix64(spec.Seed ^ mix(uint64(a)+0x5151))
		for t := range col {
			col[t] = int(rng.next() % uint64(free))
		}
		cols[a] = col
	}

	// Apply plants in topological order of the derived-column dependency
	// graph, so each derived column is computed exactly once from final
	// LHS values.
	order, err := topoOrder(planted)
	if err != nil {
		return nil, err
	}
	for _, rhs := range order {
		lhs := planted[rhs]
		for t := 0; t < spec.Rows; t++ {
			h := newSplitMix64(spec.Seed ^ mix(uint64(rhs)+0xA0A0))
			lhs.ForEach(func(a attrset.Attr) {
				h.state ^= mix(uint64(cols[a][t]) + uint64(a)<<32)
			})
			cols[rhs][t] = int(h.next() % uint64(free))
		}
	}
	return relation.FromCodes(names, cols)
}

// topoOrder orders the planted RHS attributes so that any planted column
// appearing in another plant's LHS is computed first. It rejects cycles.
func topoOrder(planted map[int]attrset.Set) ([]int, error) {
	const (
		white = 0 // unvisited
		grey  = 1 // on the current path
		black = 2 // done
	)
	color := make(map[int]int, len(planted))
	var order []int
	var visit func(rhs int) error
	visit = func(rhs int) error {
		switch color[rhs] {
		case grey:
			return fmt.Errorf("datagen: cyclic planted dependencies through attribute %d", rhs)
		case black:
			return nil
		}
		color[rhs] = grey
		var err error
		planted[rhs].ForEach(func(a attrset.Attr) {
			if _, derived := planted[a]; derived && err == nil {
				err = visit(a)
			}
		})
		if err != nil {
			return err
		}
		color[rhs] = black
		order = append(order, rhs)
		return nil
	}
	// Deterministic iteration order.
	rhss := make([]int, 0, len(planted))
	for rhs := range planted {
		rhss = append(rhss, rhs)
	}
	slices.Sort(rhss)
	for _, rhs := range rhss {
		if err := visit(rhs); err != nil {
			return nil, err
		}
	}
	return order, nil
}
