package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/guard"
	"repro/internal/relation"
)

// TestValidate sweeps the rejection matrix of Options.Validate.
func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		ok   bool
	}{
		{"zero", Options{}, true},
		{"full", Options{Algorithm: AgreeIdentifiers, ChunkSize: 10, Workers: 3, MaxCouples: 5, Armstrong: ArmstrongNone}, true},
		{"neg-workers", Options{Workers: -1}, false},
		{"neg-chunk", Options{ChunkSize: -1}, false},
		{"neg-maxcouples", Options{MaxCouples: -1}, false},
		{"bad-algo", Options{Algorithm: AgreeAlgorithm(7)}, false},
		{"neg-algo", Options{Algorithm: AgreeAlgorithm(-1)}, false},
		{"bad-armstrong", Options{Armstrong: ArmstrongMode(9)}, false},
	}
	for _, tc := range cases {
		err := tc.opts.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: Validate = %v, want nil", tc.name, err)
		}
		if !tc.ok && !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("%s: Validate = %v, want ErrInvalidOptions", tc.name, err)
		}
	}
}

// TestBudgetOverrunKeepsPhaseOutputs checks a budget that dies in the lhs
// phase still reports the agree sets and max sets computed before it.
func TestBudgetOverrunKeepsPhaseOutputs(t *testing.T) {
	r := relation.PaperExample()
	// The paper example charges 6 couples + 5 agree sets = 11 units in
	// step 1; cap just above that so the overrun lands in the transversal
	// search.
	b := guard.New(guard.Limits{Units: 12})
	res, err := Discover(context.Background(), r, Options{Budget: b, Armstrong: ArmstrongNone})
	if !errors.Is(err, guard.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	var ge *guard.Error
	if !errors.As(err, &ge) || ge.Phase != "lhs" {
		t.Fatalf("err = %v, want phase lhs", err)
	}
	if res == nil || !res.Partial {
		t.Fatal("no partial result")
	}
	if len(res.AgreeSets) == 0 || len(res.MaxSets) == 0 {
		t.Errorf("completed phases lost: agree=%d max=%d", len(res.AgreeSets), len(res.MaxSets))
	}
	if res.Couples != 6 {
		t.Errorf("Couples = %d, want 6", res.Couples)
	}
}

// TestBudgetOverrunInAgreeKeepsCouples checks an overrun in step 1
// reports the couples examined.
func TestBudgetOverrunInAgreeKeepsCouples(t *testing.T) {
	r := relation.PaperExample()
	for _, algo := range []AgreeAlgorithm{AgreeCouples, AgreeIdentifiers} {
		b := guard.New(guard.Limits{Units: 2})
		res, err := Discover(context.Background(), r, Options{Algorithm: algo, Budget: b})
		if !errors.Is(err, guard.ErrBudget) {
			t.Fatalf("%v: err = %v", algo, err)
		}
		var ge *guard.Error
		if !errors.As(err, &ge) || ge.Phase != "agree" {
			t.Errorf("%v: phase = %v", algo, err)
		}
		if res == nil || !res.Partial || res.Couples != 6 {
			t.Errorf("%v: partial = %+v", algo, res)
		}
	}
}

// TestDeadlineCheckedBetweenPhases runs with an expired deadline and no
// unit budget: the first checkpoint must stop the run.
func TestDeadlineCheckedBetweenPhases(t *testing.T) {
	r := relation.PaperExample()
	b := guard.New(guard.Limits{Deadline: time.Now().Add(-time.Minute)})
	res, err := Discover(context.Background(), r, Options{Budget: b})
	if !errors.Is(err, guard.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if res == nil || !res.Partial {
		t.Fatal("no partial result")
	}
}

// TestGovernedIdenticalOutput checks that attaching an ample budget does
// not change a single byte of the result.
func TestGovernedIdenticalOutput(t *testing.T) {
	r := relation.PaperExample()
	plain, err := Discover(context.Background(), r, Options{})
	if err != nil {
		t.Fatal(err)
	}
	governed, err := Discover(context.Background(), r, Options{Budget: guard.New(guard.Limits{Units: 1 << 40})})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(plain.FDs) != fmt.Sprint(governed.FDs) ||
		fmt.Sprint(plain.AgreeSets) != fmt.Sprint(governed.AgreeSets) ||
		fmt.Sprint(plain.MaxSets) != fmt.Sprint(governed.MaxSets) {
		t.Error("governed run changed outputs")
	}
}

// TestDeriveFromAgreeSetsContainsPanic would need an internal panic to
// trigger; the boundary is exercised indirectly by the fault-injection
// suite. Here, check the happy path still returns a non-partial result.
func TestDeriveFromAgreeSetsNotPartial(t *testing.T) {
	r := relation.PaperExample()
	full, err := Discover(context.Background(), r, Options{Armstrong: ArmstrongNone})
	if err != nil {
		t.Fatal(err)
	}
	res, err := DeriveFromAgreeSets(context.Background(), full.AgreeSets, r.Arity())
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Error("derive marked partial")
	}
	if fmt.Sprint(res.FDs) != fmt.Sprint(full.FDs) {
		t.Error("derive cover differs")
	}
}
