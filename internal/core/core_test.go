package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/attrset"
	"repro/internal/fd"
	"repro/internal/partition"
	"repro/internal/relation"
)

func set(spec string) attrset.Set {
	s, ok := attrset.Parse(spec)
	if !ok {
		panic("bad spec " + spec)
	}
	return s
}

// paperFDs is the 14-FD output of Example 11.
func paperFDs() fd.Cover {
	mk := func(lhs string, rhs int) fd.FD { return fd.FD{LHS: set(lhs), RHS: rhs} }
	c := fd.Cover{
		mk("BC", 0), mk("CD", 0),
		mk("AC", 1), mk("AE", 1), mk("D", 1),
		mk("AB", 2), mk("AD", 2), mk("AE", 2),
		mk("AC", 3), mk("AE", 3), mk("B", 3),
		mk("B", 4), mk("C", 4), mk("D", 4),
	}
	c.Sort()
	return c
}

func coversIdentical(a, b fd.Cover) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDiscoverPaperExampleAllAlgorithms(t *testing.T) {
	r := relation.PaperExample()
	want := paperFDs()
	for _, algo := range []AgreeAlgorithm{AgreeCouples, AgreeIdentifiers, AgreeNaive} {
		res, err := Discover(context.Background(), r, Options{Algorithm: algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if !coversIdentical(res.FDs, want) {
			t.Errorf("%v: FDs =\n%s\nwant\n%s", algo, res.FDs, want)
		}
		if !res.MaxSets.Equal(attrset.Family{set("A"), set("BDE"), set("CE")}) {
			t.Errorf("%v: MaxSets = %v", algo, res.MaxSets.Strings())
		}
		wantAg := attrset.Family{attrset.Empty(), set("A"), set("BDE"), set("CE"), set("E")}
		if !res.AgreeSets.Equal(wantAg) {
			t.Errorf("%v: AgreeSets = %v", algo, res.AgreeSets.Strings())
		}
		if res.Armstrong == nil || res.Armstrong.Rows() != 4 {
			t.Errorf("%v: Armstrong missing or wrong size", algo)
		}
		if res.ArmstrongSynthetic {
			t.Errorf("%v: real-world Armstrong expected for paper example", algo)
		}
	}
}

// Paper Example 10: LHS families per attribute, including the trivial
// singleton.
func TestDiscoverLHSFamilies(t *testing.T) {
	r := relation.PaperExample()
	res, err := Discover(context.Background(), r, Options{Armstrong: ArmstrongNone})
	if err != nil {
		t.Fatal(err)
	}
	want := []attrset.Family{
		{set("A"), set("BC"), set("CD")},
		{set("AC"), set("AE"), set("B"), set("D")},
		{set("AB"), set("AD"), set("AE"), set("C")},
		{set("AC"), set("AE"), set("B"), set("D")},
		{set("B"), set("C"), set("D"), set("E")},
	}
	for a := range want {
		if !res.LHS[a].Equal(want[a]) {
			t.Errorf("lhs(dep(r),%c) = %v, want %v", 'A'+a, res.LHS[a].Strings(), want[a].Strings())
		}
	}
}

func TestDiscoverFromDatabase(t *testing.T) {
	r := relation.PaperExample()
	db := partition.NewDatabase(r)
	res, err := DiscoverFromDatabase(context.Background(), db, Options{Algorithm: AgreeIdentifiers})
	if err != nil {
		t.Fatal(err)
	}
	if !coversIdentical(res.FDs, paperFDs()) {
		t.Errorf("FDs mismatch:\n%s", res.FDs)
	}
	if res.Armstrong != nil {
		t.Error("DiscoverFromDatabase must not build Armstrong relations")
	}
	// Naive needs the relation.
	if _, err := DiscoverFromDatabase(context.Background(), db, Options{Algorithm: AgreeNaive}); err == nil {
		t.Error("AgreeNaive through DiscoverFromDatabase should error")
	}
	if _, err := DiscoverFromDatabase(context.Background(), db, Options{Algorithm: AgreeAlgorithm(99)}); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestArmstrongModes(t *testing.T) {
	r := relation.PaperExample()
	// None.
	res, err := Discover(context.Background(), r, Options{Armstrong: ArmstrongNone})
	if err != nil {
		t.Fatal(err)
	}
	if res.Armstrong != nil || res.Timings.Armstrong != 0 {
		t.Error("ArmstrongNone must skip step 5")
	}
	// Synthetic.
	res, err = Discover(context.Background(), r, Options{Armstrong: ArmstrongSynthetic})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ArmstrongSynthetic || res.Armstrong == nil {
		t.Error("ArmstrongSynthetic must build the integer relation")
	}
	if res.Armstrong.Value(0, 0) != "0" {
		t.Error("synthetic relation should be integer-coded")
	}
	// RealWorld strict on a relation violating Proposition 1.
	poor, err := relation.FromRows([]string{"a", "b", "c"},
		[][]string{{"1", "x", "p"}, {"2", "y", "q"}, {"1", "x", "r"}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Discover(context.Background(), poor, Options{Armstrong: ArmstrongRealWorld})
	if err == nil {
		// a has 2 values; maximal sets avoiding a may demand more.
		// Verify via the fallback mode instead of asserting here.
		t.Log("strict real-world succeeded; relation was rich enough")
	}
	// Fallback never errors on Proposition 1.
	res, err = Discover(context.Background(), poor, Options{})
	if err != nil {
		t.Fatalf("fallback mode errored: %v", err)
	}
	if res.Armstrong == nil {
		t.Error("fallback mode must produce a relation")
	}
	if _, err := Discover(context.Background(), r, Options{Armstrong: ArmstrongMode(99)}); err == nil {
		t.Error("unknown armstrong mode should error")
	}
}

func TestConstantColumnEmitsEmptyLHS(t *testing.T) {
	r, err := relation.FromRows([]string{"a", "b"},
		[][]string{{"1", "k"}, {"2", "k"}, {"3", "k"}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Discover(context.Background(), r, Options{Armstrong: ArmstrongNone})
	if err != nil {
		t.Fatal(err)
	}
	// ∅ → b (constant) and a → b (implied by minimality: actually ∅ → b
	// makes a → b non-minimal, so only ∅ → b is emitted).
	want := fd.Cover{{LHS: attrset.Empty(), RHS: 1}}
	if !coversIdentical(res.FDs, want) {
		t.Errorf("FDs = %v, want just ∅ → B", res.FDs)
	}
}

func TestKeyColumnFDs(t *testing.T) {
	// a is a key: a → b and a → c minimal; nothing else.
	r, err := relation.FromRows([]string{"a", "b", "c"},
		[][]string{{"1", "x", "x"}, {"2", "x", "y"}, {"3", "z", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Discover(context.Background(), r, Options{Armstrong: ArmstrongNone})
	if err != nil {
		t.Fatal(err)
	}
	want := fd.MineBrute(r)
	if !coversIdentical(res.FDs, want) {
		t.Errorf("FDs =\n%s\nwant\n%s", res.FDs, want)
	}
}

func TestDegenerateRelations(t *testing.T) {
	// Empty and single-tuple relations: every FD holds; minimal cover is
	// ∅ → A for every attribute.
	for _, rows := range [][][]string{{}, {{"1", "x"}}} {
		r, err := relation.FromRows([]string{"a", "b"}, rows)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Discover(context.Background(), r, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := fd.Cover{{LHS: attrset.Empty(), RHS: 0}, {LHS: attrset.Empty(), RHS: 1}}
		if !coversIdentical(res.FDs, want) {
			t.Errorf("rows=%d: FDs = %v, want ∅→A, ∅→B", len(rows), res.FDs)
		}
		if res.Armstrong == nil || res.Armstrong.Rows() != 1 {
			t.Errorf("rows=%d: Armstrong should have exactly 1 tuple", len(rows))
		}
	}
}

func TestTimingsPopulated(t *testing.T) {
	r := relation.PaperExample()
	res, err := Discover(context.Background(), r, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timings.Total() <= 0 {
		t.Error("timings not recorded")
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Discover(ctx, relation.PaperExample(), Options{})
	if err == nil {
		t.Error("cancelled context should abort discovery")
	}
}

func TestAlgorithmString(t *testing.T) {
	if AgreeCouples.String() != "Dep-Miner" ||
		AgreeIdentifiers.String() != "Dep-Miner 2" ||
		AgreeNaive.String() != "naive" {
		t.Error("algorithm names wrong")
	}
	if AgreeAlgorithm(42).String() == "" {
		t.Error("unknown algorithm must still render")
	}
}

// TestPropertyDiscoverMatchesBruteForce cross-validates the full pipeline
// against the brute-force miner on random relations: identical canonical
// covers (same minimal FDs, not merely equivalent).
func TestPropertyDiscoverMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 80; iter++ {
		n := 1 + rng.Intn(5)
		rows := rng.Intn(18)
		cols := make([][]int, n)
		for a := range cols {
			cols[a] = make([]int, rows)
			dom := 1 + rng.Intn(6)
			for i := range cols[a] {
				cols[a][i] = rng.Intn(dom)
			}
		}
		r, err := relation.FromCodes(make([]string, n), cols)
		if err != nil {
			t.Fatal(err)
		}
		r = r.Deduplicate()
		want := fd.MineBrute(r)
		for _, algo := range []AgreeAlgorithm{AgreeCouples, AgreeIdentifiers} {
			res, err := Discover(context.Background(), r, Options{
				Algorithm: algo,
				Armstrong: ArmstrongNone,
				ChunkSize: 1 + rng.Intn(50),
			})
			if err != nil {
				t.Fatal(err)
			}
			if !coversIdentical(res.FDs, want) {
				t.Fatalf("iter %d algo %v:\n got %s\nwant %s\nrelation:\n%v",
					iter, algo, res.FDs, want, r)
			}
		}
	}
}

// TestResultStats checks that every pipeline phase reports its cost in
// Result.Stats and that the durations mirror Result.Timings.
func TestResultStats(t *testing.T) {
	r := relation.PaperExample()
	res, err := Discover(context.Background(), r, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	phases := map[string]PhaseStat{
		"Partition": s.Partition,
		"AgreeSets": s.AgreeSets,
		"MaxSets":   s.MaxSets,
		"LHS":       s.LHS,
		"Armstrong": s.Armstrong,
	}
	for name, ps := range phases {
		if ps.Duration <= 0 {
			t.Errorf("Stats.%s.Duration = %v, want > 0", name, ps.Duration)
		}
		if ps.Allocs == 0 || ps.Bytes == 0 {
			t.Errorf("Stats.%s allocs/bytes = %d/%d, want > 0", name, ps.Allocs, ps.Bytes)
		}
	}
	tm := res.Timings
	if tm.Partition != s.Partition.Duration || tm.AgreeSets != s.AgreeSets.Duration ||
		tm.MaxSets != s.MaxSets.Duration || tm.LHS != s.LHS.Duration ||
		tm.Armstrong != s.Armstrong.Duration {
		t.Errorf("Timings %+v do not mirror Stats durations", tm)
	}
}
