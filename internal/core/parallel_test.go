package core

// Pipeline-level determinism test for the parallel execution layer: a
// Result produced with Workers=N must be identical — FD cover, agree
// sets, maximal sets, per-attribute LHS families and counters — to the
// sequential reference (Workers=1).

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/relation"
)

// resultFingerprint renders every deterministic field of a Result (all
// but the timings) so two runs can be compared byte-for-byte.
func resultFingerprint(res *Result) string {
	return fmt.Sprintf("fds=%v ag=%v max=%v lhs=%v couples=%d chunks=%d",
		res.FDs, res.AgreeSets, res.MaxSets, res.LHS, res.Couples, res.Chunks)
}

func TestParallelDiscoverMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 25; iter++ {
		n := 2 + rng.Intn(5)
		rows := rng.Intn(40)
		cols := make([][]int, n)
		for a := range cols {
			cols[a] = make([]int, rows)
			dom := 1 + rng.Intn(4)
			for i := range cols[a] {
				cols[a][i] = rng.Intn(dom)
			}
		}
		r, err := relation.FromCodes(make([]string, n), cols)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range []AgreeAlgorithm{AgreeCouples, AgreeIdentifiers} {
			chunk := 1 + rng.Intn(32)
			seq, err := Discover(context.Background(), r, Options{
				Algorithm: algo, ChunkSize: chunk, Armstrong: ArmstrongNone, Workers: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			want := resultFingerprint(seq)
			for _, workers := range []int{0, 2, 7} {
				par, err := Discover(context.Background(), r, Options{
					Algorithm: algo, ChunkSize: chunk, Armstrong: ArmstrongNone, Workers: workers,
				})
				if err != nil {
					t.Fatal(err)
				}
				if got := resultFingerprint(par); got != want {
					t.Fatalf("iter %d algo %v workers=%d:\n got %s\nwant %s",
						iter, algo, workers, got, want)
				}
			}
		}
	}
}
