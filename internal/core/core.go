// Package core implements the Dep-Miner pipeline (paper Algorithm 1): the
// combined discovery of minimal non-trivial functional dependencies and a
// real-world Armstrong relation from a relation instance.
//
// The five steps, each delegated to its substrate package:
//
//  1. AGREE_SET          — internal/agree (Algorithm 2 or 3)
//  2. CMAX_SET           — internal/maxsets (Algorithm 4)
//  3. LEFT_HAND_SIDE     — internal/hypergraph (Algorithm 5)
//  4. FD_OUTPUT          — Algorithm 6, below
//  5. ARMSTRONG_RELATION — internal/armstrong (§4)
//
// The pipeline consumes only the stripped partition database after step 1
// has been prepared, and touches the original relation again only to
// materialise real-world Armstrong values — matching the paper's
// limited-main-memory design.
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/agree"
	"repro/internal/armstrong"
	"repro/internal/attrset"
	"repro/internal/fd"
	"repro/internal/hypergraph"
	"repro/internal/maxsets"
	"repro/internal/partition"
	"repro/internal/relation"
)

// AgreeAlgorithm selects how agree sets are computed.
type AgreeAlgorithm int

const (
	// AgreeCouples is Algorithm 2 (the "Dep-Miner" variant of the
	// evaluation): couples of maximal equivalence classes swept against
	// the stripped partitions, chunked to bound memory.
	AgreeCouples AgreeAlgorithm = iota
	// AgreeIdentifiers is Algorithm 3 ("Dep-Miner 2"): per-tuple
	// equivalence-class identifier lists intersected per couple.
	AgreeIdentifiers
	// AgreeNaive is the O(n·p²) direct pairwise scan, for baselines and
	// tests only. It requires the relation itself (Discover, not
	// DiscoverFromDatabase).
	AgreeNaive
)

// String returns the evaluation's name for the algorithm.
func (a AgreeAlgorithm) String() string {
	switch a {
	case AgreeCouples:
		return "Dep-Miner"
	case AgreeIdentifiers:
		return "Dep-Miner 2"
	case AgreeNaive:
		return "naive"
	default:
		return fmt.Sprintf("AgreeAlgorithm(%d)", int(a))
	}
}

// ArmstrongMode selects step 5's behaviour.
type ArmstrongMode int

const (
	// ArmstrongRealWorldOrSynthetic builds a real-world Armstrong
	// relation, falling back to the synthetic integer construction when
	// Proposition 1 fails. This is the zero value so that default
	// options are safe on arbitrary data.
	ArmstrongRealWorldOrSynthetic ArmstrongMode = iota
	// ArmstrongRealWorld fails discovery if Proposition 1 does not hold.
	ArmstrongRealWorld
	// ArmstrongSynthetic always uses the integer construction.
	ArmstrongSynthetic
	// ArmstrongNone skips step 5.
	ArmstrongNone
)

// Options configure a discovery run. The zero value runs Algorithm 2 with
// the default chunk size, all cores, and builds a real-world Armstrong
// relation with synthetic fallback.
type Options struct {
	// Algorithm selects the agree-set computation.
	Algorithm AgreeAlgorithm
	// ChunkSize bounds couples in memory for AgreeCouples; 0 means
	// agree.DefaultChunkSize.
	ChunkSize int
	// Armstrong selects step 5's behaviour.
	Armstrong ArmstrongMode
	// Workers is the worker-pool width of the parallel pipeline phases
	// (the agree-set couple sweep of step 1 and the per-attribute
	// transversal searches of steps 3–4): 0 means runtime.GOMAXPROCS(0),
	// 1 the sequential reference path. Output is byte-identical for
	// every value — parallelism only changes scheduling, never results.
	// The naive agree-set baseline ignores it and stays sequential.
	Workers int
}

// Timings records wall-clock duration per pipeline step.
type Timings struct {
	Partition time.Duration // stripped partition database extraction
	AgreeSets time.Duration // step 1
	MaxSets   time.Duration // step 2
	LHS       time.Duration // steps 3–4
	Armstrong time.Duration // step 5
}

// Total returns the sum over all steps.
func (t Timings) Total() time.Duration {
	return t.Partition + t.AgreeSets + t.MaxSets + t.LHS + t.Armstrong
}

// Result is the outcome of a Dep-Miner run.
type Result struct {
	// FDs is the canonical cover: every minimal non-trivial FD X → A of
	// the relation, in deterministic order. An FD with empty LHS denotes
	// a constant column (∅ → A).
	FDs fd.Cover
	// AgreeSets is ag(r), deduplicated, in canonical order.
	AgreeSets attrset.Family
	// MaxSets is MAX(dep(r)) = GEN(dep(r)).
	MaxSets attrset.Family
	// LHS[a] is lhs(dep(r), a) including the trivial {a} when present,
	// exactly as Algorithm 5 computes it.
	LHS []attrset.Family
	// Armstrong is the Armstrong relation, nil when Options.Armstrong is
	// ArmstrongNone.
	Armstrong *relation.Relation
	// ArmstrongSynthetic reports that the synthetic construction was
	// used (always, or as fallback).
	ArmstrongSynthetic bool
	// Couples is the number of tuple couples examined by step 1; Chunks
	// the number of chunk passes.
	Couples, Chunks int
	// Timings records per-step durations.
	Timings Timings
}

// Discover runs the full Dep-Miner pipeline on a relation.
func Discover(ctx context.Context, r *relation.Relation, opts Options) (*Result, error) {
	res := &Result{}

	// Step 1: AGREE_SET.
	t0 := time.Now()
	var agr *agree.Result
	var err error
	if opts.Algorithm == AgreeNaive {
		agr, err = agree.Naive(ctx, r)
		if err != nil {
			return nil, err
		}
		res.Timings.AgreeSets = time.Since(t0)
	} else {
		db := partition.NewDatabase(r)
		res.Timings.Partition = time.Since(t0)
		t0 = time.Now()
		agr, err = agreeSets(ctx, db, opts)
		if err != nil {
			return nil, err
		}
		res.Timings.AgreeSets = time.Since(t0)
	}

	// Steps 2–4.
	if err := deriveFDs(ctx, agr, r.Arity(), opts.Workers, res); err != nil {
		return nil, err
	}

	// Step 5: ARMSTRONG_RELATION.
	if opts.Armstrong != ArmstrongNone {
		t0 = time.Now()
		arm, synthetic, err := buildArmstrong(r, res.MaxSets, opts.Armstrong)
		if err != nil {
			return nil, err
		}
		res.Armstrong = arm
		res.ArmstrongSynthetic = synthetic
		res.Timings.Armstrong = time.Since(t0)
	}
	return res, nil
}

// DiscoverFromDatabase runs steps 1–4 on a pre-built stripped partition
// database (no Armstrong relation, which needs the original values).
func DiscoverFromDatabase(ctx context.Context, db *partition.Database, opts Options) (*Result, error) {
	res := &Result{}
	t0 := time.Now()
	agr, err := agreeSets(ctx, db, opts)
	if err != nil {
		return nil, err
	}
	res.Timings.AgreeSets = time.Since(t0)
	if err := deriveFDs(ctx, agr, db.Arity(), opts.Workers, res); err != nil {
		return nil, err
	}
	return res, nil
}

// DeriveFromAgreeSets runs steps 2–4 of the pipeline on externally
// computed agree sets — used by the incremental miner, which maintains
// ag(r) under inserts and re-derives the cover on demand. It runs the
// sequential reference path: the cost is independent of |r| and too
// small to benefit from fan-out.
func DeriveFromAgreeSets(ctx context.Context, sets attrset.Family, arity int) (*Result, error) {
	res := &Result{}
	if err := deriveFDs(ctx, &agree.Result{Sets: sets, Chunks: 1}, arity, 1, res); err != nil {
		return nil, err
	}
	return res, nil
}

func agreeSets(ctx context.Context, db *partition.Database, opts Options) (*agree.Result, error) {
	switch opts.Algorithm {
	case AgreeCouples:
		return agree.Couples(ctx, db, agree.Options{ChunkSize: opts.ChunkSize, Workers: opts.Workers})
	case AgreeIdentifiers:
		return agree.Identifiers(ctx, db, agree.Options{ChunkSize: opts.ChunkSize, Workers: opts.Workers})
	case AgreeNaive:
		return nil, fmt.Errorf("core: the naive agree-set scan needs the relation; use Discover")
	default:
		return nil, fmt.Errorf("core: unknown agree algorithm %d", opts.Algorithm)
	}
}

// deriveFDs runs steps 2–4 from the agree sets into res.
func deriveFDs(ctx context.Context, agr *agree.Result, arity, workers int, res *Result) error {
	res.AgreeSets = agr.Sets
	res.Couples = agr.Couples
	res.Chunks = agr.Chunks

	// Step 2: CMAX_SET.
	t0 := time.Now()
	ms := maxsets.Compute(res.AgreeSets, arity)
	res.MaxSets = ms.AllMax()
	res.Timings.MaxSets = time.Since(t0)

	// Steps 3–4: LEFT_HAND_SIDE then FD_OUTPUT. The per-attribute searches
	// Tr(cmax(dep(r),A)) are independent, so they fan out one task per RHS
	// attribute (paper Fig. 1 step 4); FDs are then emitted from the
	// index-ordered results, keeping the output canonical regardless of
	// which worker finished first.
	t0 = time.Now()
	hs := make([]*hypergraph.Hypergraph, arity)
	for a := 0; a < arity; a++ {
		hs[a] = hypergraph.Simplify(ms.CMax[a])
	}
	lhs, err := hypergraph.TransversalsAll(ctx, hs, workers)
	if err != nil {
		return err
	}
	res.LHS = lhs
	for a := 0; a < arity; a++ {
		for _, x := range lhs[a] {
			if x == attrset.Single(a) {
				continue
			}
			res.FDs = append(res.FDs, fd.FD{LHS: x, RHS: a})
		}
	}
	res.FDs.Sort()
	res.Timings.LHS = time.Since(t0)
	return nil
}

// buildArmstrong implements step 5 with the configured fallback policy.
func buildArmstrong(r *relation.Relation, maxSets attrset.Family, mode ArmstrongMode) (*relation.Relation, bool, error) {
	switch mode {
	case ArmstrongSynthetic:
		arm, err := armstrong.Synthetic(maxSets, r.Names())
		return arm, true, err
	case ArmstrongRealWorld:
		arm, err := armstrong.RealWorld(r, maxSets)
		return arm, false, err
	case ArmstrongRealWorldOrSynthetic:
		arm, err := armstrong.RealWorld(r, maxSets)
		if err == nil {
			return arm, false, nil
		}
		arm, err = armstrong.Synthetic(maxSets, r.Names())
		return arm, true, err
	default:
		return nil, false, fmt.Errorf("core: unknown armstrong mode %d", mode)
	}
}
