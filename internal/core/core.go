// Package core implements the Dep-Miner pipeline (paper Algorithm 1): the
// combined discovery of minimal non-trivial functional dependencies and a
// real-world Armstrong relation from a relation instance.
//
// The five steps, each delegated to its substrate package:
//
//  1. AGREE_SET          — internal/agree (Algorithm 2 or 3)
//  2. CMAX_SET           — internal/maxsets (Algorithm 4)
//  3. LEFT_HAND_SIDE     — internal/hypergraph (Algorithm 5)
//  4. FD_OUTPUT          — Algorithm 6, below
//  5. ARMSTRONG_RELATION — internal/armstrong (§4)
//
// The pipeline consumes only the stripped partition database after step 1
// has been prepared, and touches the original relation again only to
// materialise real-world Armstrong values — matching the paper's
// limited-main-memory design.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/agree"
	"repro/internal/armstrong"
	"repro/internal/attrset"
	"repro/internal/extsort"
	"repro/internal/faultinject"
	"repro/internal/fd"
	"repro/internal/guard"
	"repro/internal/hypergraph"
	"repro/internal/maxsets"
	"repro/internal/partition"
	"repro/internal/relation"
)

// AgreeAlgorithm selects how agree sets are computed.
type AgreeAlgorithm int

const (
	// AgreeCouples is Algorithm 2 (the "Dep-Miner" variant of the
	// evaluation): couples of maximal equivalence classes swept against
	// the stripped partitions, chunked to bound memory.
	AgreeCouples AgreeAlgorithm = iota
	// AgreeIdentifiers is Algorithm 3 ("Dep-Miner 2"): per-tuple
	// equivalence-class identifier lists intersected per couple.
	AgreeIdentifiers
	// AgreeNaive is the O(n·p²) direct pairwise scan, for baselines and
	// tests only. It requires the relation itself (Discover, not
	// DiscoverFromDatabase).
	AgreeNaive
)

// String returns the evaluation's name for the algorithm.
func (a AgreeAlgorithm) String() string {
	switch a {
	case AgreeCouples:
		return "Dep-Miner"
	case AgreeIdentifiers:
		return "Dep-Miner 2"
	case AgreeNaive:
		return "naive"
	default:
		return fmt.Sprintf("AgreeAlgorithm(%d)", int(a))
	}
}

// ArmstrongMode selects step 5's behaviour.
type ArmstrongMode int

const (
	// ArmstrongRealWorldOrSynthetic builds a real-world Armstrong
	// relation, falling back to the synthetic integer construction when
	// Proposition 1 fails. This is the zero value so that default
	// options are safe on arbitrary data.
	ArmstrongRealWorldOrSynthetic ArmstrongMode = iota
	// ArmstrongRealWorld fails discovery if Proposition 1 does not hold.
	ArmstrongRealWorld
	// ArmstrongSynthetic always uses the integer construction.
	ArmstrongSynthetic
	// ArmstrongNone skips step 5.
	ArmstrongNone
)

// Options configure a discovery run. The zero value runs Algorithm 2 with
// the default chunk size, all cores, and builds a real-world Armstrong
// relation with synthetic fallback.
type Options struct {
	// Algorithm selects the agree-set computation.
	Algorithm AgreeAlgorithm
	// ChunkSize bounds couples in memory for AgreeCouples; 0 means
	// agree.DefaultChunkSize.
	ChunkSize int
	// Armstrong selects step 5's behaviour.
	Armstrong ArmstrongMode
	// Workers is the worker-pool width of the parallel pipeline phases
	// (the agree-set couple sweep of step 1 and the per-attribute
	// transversal searches of steps 3–4): 0 means runtime.GOMAXPROCS(0),
	// 1 the sequential reference path. Output is byte-identical for
	// every value — parallelism only changes scheduling, never results.
	// The naive agree-set baseline ignores it and stays sequential.
	Workers int
	// MaxCouples is the graceful-degradation threshold for AgreeCouples:
	// when Algorithm 2's couple space exceeds it, Discover falls back to
	// AgreeIdentifiers (Algorithm 3 — the paper's own remedy for the
	// correlated-relation blow-up of §5.2) before any sweep work, and
	// records the switch in Result.Notes. 0 disables degradation.
	MaxCouples int
	// Budget governs the run: a wall-clock deadline plus a size budget
	// charged in each phase's own units (couples enumerated, agree sets
	// produced, transversal frontier width). Overruns return a
	// guard.Error wrapping guard.ErrBudget or guard.ErrDeadline and the
	// phase name, together with the partial Result accumulated so far
	// (Result.Partial = true). nil means ungoverned.
	Budget *guard.Budget
	// MaxAgreeBytes bounds the agree sets held in memory during step 1:
	// beyond it, per-worker sorted runs spill to checksummed files and the
	// final dedup becomes a streaming k-way merge (internal/extsort). The
	// cover is byte-identical for every threshold; Result.Stats.Spill
	// reports the traffic. 0 means never spill.
	MaxAgreeBytes int64
	// SpillDir is where agree-set spill files go ("" = the OS temp dir).
	SpillDir string
}

// ErrInvalidOptions is wrapped by every Options validation failure, so
// callers can classify bad configuration apart from runtime failures. It
// is the shared guard sentinel: the TANE and keys Options use the same
// one, so one errors.Is test covers every miner.
var ErrInvalidOptions = guard.ErrInvalidOptions

// Validate rejects nonsensical configurations up front — negative knob
// values and out-of-range enums — so they fail with a typed error at the
// API boundary instead of surfacing as obscure behaviour (or a silent
// default) deep inside a phase.
func (o Options) Validate() error {
	if o.Workers < 0 {
		return fmt.Errorf("%w: negative Workers %d", ErrInvalidOptions, o.Workers)
	}
	if o.ChunkSize < 0 {
		return fmt.Errorf("%w: negative ChunkSize %d", ErrInvalidOptions, o.ChunkSize)
	}
	if o.MaxCouples < 0 {
		return fmt.Errorf("%w: negative MaxCouples %d", ErrInvalidOptions, o.MaxCouples)
	}
	if o.MaxAgreeBytes < 0 {
		return fmt.Errorf("%w: negative MaxAgreeBytes %d", ErrInvalidOptions, o.MaxAgreeBytes)
	}
	switch o.Algorithm {
	case AgreeCouples, AgreeIdentifiers, AgreeNaive:
	default:
		return fmt.Errorf("%w: unknown agree algorithm %d", ErrInvalidOptions, int(o.Algorithm))
	}
	switch o.Armstrong {
	case ArmstrongRealWorldOrSynthetic, ArmstrongRealWorld, ArmstrongSynthetic, ArmstrongNone:
	default:
		return fmt.Errorf("%w: unknown armstrong mode %d", ErrInvalidOptions, int(o.Armstrong))
	}
	return nil
}

// Timings records wall-clock duration per pipeline step.
type Timings struct {
	Partition time.Duration // stripped partition database extraction
	AgreeSets time.Duration // step 1
	MaxSets   time.Duration // step 2
	LHS       time.Duration // steps 3–4
	Armstrong time.Duration // step 5
}

// Total returns the sum over all steps.
func (t Timings) Total() time.Duration {
	return t.Partition + t.AgreeSets + t.MaxSets + t.LHS + t.Armstrong
}

// PhaseStat records one pipeline phase's cost: wall-clock duration plus
// the heap-allocation delta (objects and bytes) observed across the
// phase. The counters are process-wide (runtime.MemStats cumulative
// totals), so concurrent work outside the pipeline is attributed to
// whatever phase was running — exact in the common case of one
// discovery at a time, indicative otherwise.
type PhaseStat struct {
	Duration time.Duration
	Allocs   uint64 // heap objects allocated during the phase
	Bytes    uint64 // heap bytes allocated during the phase
}

// Stats holds per-phase cost counters, letting the benchmark harness
// attribute time and allocations to pipeline steps without an external
// profiler. Durations duplicate Timings (kept for compatibility).
type Stats struct {
	Partition PhaseStat // stripped partition database extraction
	AgreeSets PhaseStat // step 1
	MaxSets   PhaseStat // step 2
	LHS       PhaseStat // steps 3–4
	Armstrong PhaseStat // step 5
	// Spill counts step 1's out-of-core traffic (runs spilled, bytes
	// written, blocks read back) when Options.MaxAgreeBytes is set;
	// all-zero for in-memory runs.
	Spill extsort.Stats
}

// phaseProbe captures the start-of-phase clock and allocation counters.
// ReadMemStats flushes the per-P allocation caches, so the deltas are
// exact even for phases that allocate little; its brief stop-the-world
// costs microseconds per phase boundary, noise against any phase worth
// measuring.
type phaseProbe struct {
	t0      time.Time
	mallocs uint64
	bytes   uint64
}

func startPhase() phaseProbe {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return phaseProbe{t0: time.Now(), mallocs: m.Mallocs, bytes: m.TotalAlloc}
}

// stop returns the phase's cost since startPhase.
func (p phaseProbe) stop() PhaseStat {
	d := time.Since(p.t0)
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return PhaseStat{
		Duration: d,
		Allocs:   m.Mallocs - p.mallocs,
		Bytes:    m.TotalAlloc - p.bytes,
	}
}

// Result is the outcome of a Dep-Miner run.
type Result struct {
	// FDs is the canonical cover: every minimal non-trivial FD X → A of
	// the relation, in deterministic order. An FD with empty LHS denotes
	// a constant column (∅ → A).
	FDs fd.Cover
	// AgreeSets is ag(r), deduplicated, in canonical order.
	AgreeSets attrset.Family
	// MaxSets is MAX(dep(r)) = GEN(dep(r)).
	MaxSets attrset.Family
	// LHS[a] is lhs(dep(r), a) including the trivial {a} when present,
	// exactly as Algorithm 5 computes it.
	LHS []attrset.Family
	// Armstrong is the Armstrong relation, nil when Options.Armstrong is
	// ArmstrongNone.
	Armstrong *relation.Relation
	// ArmstrongSynthetic reports that the synthetic construction was
	// used (always, or as fallback).
	ArmstrongSynthetic bool
	// Couples is the number of tuple couples examined by step 1; Chunks
	// the number of chunk passes.
	Couples, Chunks int
	// Timings records per-step durations.
	Timings Timings
	// Stats records per-step durations together with heap-allocation
	// deltas, for cost attribution without an external profiler.
	Stats Stats
	// Partial reports that the run stopped early — budget or deadline
	// overrun, or a contained panic — and the Result holds only the
	// phases completed before the cutoff. A partial Result is always
	// accompanied by a non-nil error wrapping guard.ErrBudget,
	// guard.ErrDeadline, or guard.ErrPanic.
	Partial bool
	// Notes records run-time adaptations, e.g. the Algorithm 2 → 3
	// graceful degradation when the couple space crosses
	// Options.MaxCouples.
	Notes []string
}

// fail classifies a phase error. Governed outcomes — budget or deadline
// overruns and contained panics — keep the phases completed so far: res
// is returned with Partial set alongside the error, honouring the
// partial-result contract. Cancellations and ordinary failures discard
// the result, as before.
func fail(res *Result, err error) (*Result, error) {
	if guard.Governed(err) {
		res.Partial = true
		return res, err
	}
	return nil, err
}

// contain converts a panic escaping a pipeline boundary into a
// *guard.PanicError, marking the result partial. It must be deferred
// directly.
func contain(phase string, res *Result, errp *error) {
	if p := recover(); p != nil {
		res.Partial = true
		*errp = guard.NewPanicError(phase, p)
	}
}

// Discover runs the full Dep-Miner pipeline on a relation.
func Discover(ctx context.Context, r *relation.Relation, opts Options) (res *Result, err error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	res = &Result{}
	defer contain("core.Discover", res, &err)

	// Step 1: AGREE_SET.
	pp := startPhase()
	var agr *agree.Result
	if opts.Algorithm == AgreeNaive {
		if ferr := faultinject.Fire(faultinject.CoreAgree); ferr != nil {
			return fail(res, ferr)
		}
		agr, err = agree.Naive(ctx, r)
		if err != nil {
			return fail(res, err)
		}
		res.Stats.AgreeSets = pp.stop()
		res.Timings.AgreeSets = res.Stats.AgreeSets.Duration
	} else {
		if ferr := faultinject.Fire(faultinject.CorePartition); ferr != nil {
			return fail(res, ferr)
		}
		db := partition.NewDatabase(r)
		res.Stats.Partition = pp.stop()
		res.Timings.Partition = res.Stats.Partition.Duration
		if cerr := opts.Budget.Checkpoint("partition"); cerr != nil {
			return fail(res, cerr)
		}
		pp = startPhase()
		agr, err = agreeSets(ctx, db, opts, res)
		if err != nil {
			adoptAgree(res, agr)
			return fail(res, err)
		}
		res.Stats.AgreeSets = pp.stop()
		res.Timings.AgreeSets = res.Stats.AgreeSets.Duration
	}

	// Steps 2–4.
	if err := deriveFDs(ctx, agr, r.Arity(), opts, res); err != nil {
		return fail(res, err)
	}

	// Step 5: ARMSTRONG_RELATION.
	if opts.Armstrong != ArmstrongNone {
		if ferr := faultinject.Fire(faultinject.CoreArmstrong); ferr != nil {
			return fail(res, ferr)
		}
		if cerr := opts.Budget.Checkpoint("armstrong"); cerr != nil {
			return fail(res, cerr)
		}
		pp = startPhase()
		arm, synthetic, aerr := buildArmstrong(r, res.MaxSets, opts.Armstrong)
		if aerr != nil {
			return fail(res, aerr)
		}
		res.Armstrong = arm
		res.ArmstrongSynthetic = synthetic
		res.Stats.Armstrong = pp.stop()
		res.Timings.Armstrong = res.Stats.Armstrong.Duration
	}
	return res, nil
}

// DiscoverFromDatabase runs steps 1–4 on a pre-built stripped partition
// database (no Armstrong relation, which needs the original values).
func DiscoverFromDatabase(ctx context.Context, db *partition.Database, opts Options) (res *Result, err error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Algorithm == AgreeNaive {
		return nil, fmt.Errorf("%w: the naive agree-set scan needs the relation; use Discover", ErrInvalidOptions)
	}
	res = &Result{}
	defer contain("core.DiscoverFromDatabase", res, &err)
	pp := startPhase()
	agr, aerr := agreeSets(ctx, db, opts, res)
	if aerr != nil {
		adoptAgree(res, agr)
		return fail(res, aerr)
	}
	res.Stats.AgreeSets = pp.stop()
	res.Timings.AgreeSets = res.Stats.AgreeSets.Duration
	if derr := deriveFDs(ctx, agr, db.Arity(), opts, res); derr != nil {
		return fail(res, derr)
	}
	return res, nil
}

// DiscoverFromAgreeSets runs steps 2–5 of the pipeline on an externally
// computed (complete, canonical) ag(r) — the coordinator's tail of a
// sharded discovery, after the workers' runs have been merged and
// finished. r supplies the values for the Armstrong relation and may be
// nil when opts.Armstrong is ArmstrongNone. The agree-set counters in
// res (Couples, Chunks, Spill) are left to the caller, who knows how the
// family was actually produced.
func DiscoverFromAgreeSets(ctx context.Context, r *relation.Relation, sets attrset.Family, arity int, opts Options) (res *Result, err error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Armstrong != ArmstrongNone && r == nil {
		return nil, fmt.Errorf("%w: the Armstrong relation needs the original values", ErrInvalidOptions)
	}
	res = &Result{}
	defer contain("core.DiscoverFromAgreeSets", res, &err)
	if derr := deriveFDs(ctx, &agree.Result{Sets: sets, Chunks: 1}, arity, opts, res); derr != nil {
		return fail(res, derr)
	}
	if opts.Armstrong != ArmstrongNone {
		if ferr := faultinject.Fire(faultinject.CoreArmstrong); ferr != nil {
			return fail(res, ferr)
		}
		if cerr := opts.Budget.Checkpoint("armstrong"); cerr != nil {
			return fail(res, cerr)
		}
		pp := startPhase()
		arm, synthetic, aerr := buildArmstrong(r, res.MaxSets, opts.Armstrong)
		if aerr != nil {
			return fail(res, aerr)
		}
		res.Armstrong = arm
		res.ArmstrongSynthetic = synthetic
		res.Stats.Armstrong = pp.stop()
		res.Timings.Armstrong = res.Stats.Armstrong.Duration
	}
	return res, nil
}

// DegradeNote is the Notes line recorded when the couple space crosses
// the MaxCouples threshold and the run degrades from Algorithm 2 to
// Algorithm 3. Shared with the shard coordinator, which makes the same
// decision globally, so sharded and single-node responses stay
// byte-identical.
func DegradeNote(couples, max int) string {
	return fmt.Sprintf(
		"agree: degraded from Dep-Miner (Algorithm 2) to Dep-Miner 2 (Algorithm 3): %d couples exceed the %d-couple threshold",
		couples, max)
}

// DeriveFromAgreeSets runs steps 2–4 of the pipeline on externally
// computed agree sets — used by the incremental miner, which maintains
// ag(r) under inserts and re-derives the cover on demand. It runs the
// sequential reference path: the cost is independent of |r| and too
// small to benefit from fan-out.
func DeriveFromAgreeSets(ctx context.Context, sets attrset.Family, arity int) (res *Result, err error) {
	res = &Result{}
	defer contain("core.DeriveFromAgreeSets", res, &err)
	if derr := deriveFDs(ctx, &agree.Result{Sets: sets, Chunks: 1}, arity, Options{Workers: 1}, res); derr != nil {
		return fail(res, derr)
	}
	return res, nil
}

// adoptAgree copies whatever step 1 accumulated before failing into res,
// so a governed overrun mid-sweep still reports the couples examined and
// the (partial) agree sets collected.
func adoptAgree(res *Result, agr *agree.Result) {
	if agr == nil {
		return
	}
	res.AgreeSets = agr.Sets
	res.Couples = agr.Couples
	res.Chunks = agr.Chunks
	res.Stats.Spill = agr.Spill
}

// agreeSets runs step 1 on the stripped partition database, degrading
// from Algorithm 2 to Algorithm 3 when the couple space crosses
// Options.MaxCouples — the paper's own remedy for correlated relations,
// recorded in res.Notes.
func agreeSets(ctx context.Context, db *partition.Database, opts Options, res *Result) (*agree.Result, error) {
	if ferr := faultinject.Fire(faultinject.CoreAgree); ferr != nil {
		return nil, ferr
	}
	aopts := agree.Options{
		ChunkSize:     opts.ChunkSize,
		Workers:       opts.Workers,
		Budget:        opts.Budget,
		MaxAgreeBytes: opts.MaxAgreeBytes,
		SpillDir:      opts.SpillDir,
	}
	if opts.Algorithm == AgreeIdentifiers {
		return agree.Identifiers(ctx, db, aopts)
	}
	aopts.MaxCouples = opts.MaxCouples
	agr, err := agree.Couples(ctx, db, aopts)
	var overflow *agree.CoupleOverflowError
	if errors.As(err, &overflow) {
		res.Notes = append(res.Notes, DegradeNote(overflow.Couples, overflow.Max))
		aopts.MaxCouples = 0
		return agree.Identifiers(ctx, db, aopts)
	}
	return agr, err
}

// deriveFDs runs steps 2–4 from the agree sets into res.
func deriveFDs(ctx context.Context, agr *agree.Result, arity int, opts Options, res *Result) error {
	adoptAgree(res, agr)

	// Step 2: CMAX_SET.
	if ferr := faultinject.Fire(faultinject.CoreMaxSets); ferr != nil {
		return ferr
	}
	if cerr := opts.Budget.Checkpoint("maxsets"); cerr != nil {
		return cerr
	}
	pp := startPhase()
	ms := maxsets.Compute(res.AgreeSets, arity)
	res.MaxSets = ms.AllMax()
	res.Stats.MaxSets = pp.stop()
	res.Timings.MaxSets = res.Stats.MaxSets.Duration

	// Steps 3–4: LEFT_HAND_SIDE then FD_OUTPUT. The per-attribute searches
	// Tr(cmax(dep(r),A)) are independent, so they fan out one task per RHS
	// attribute (paper Fig. 1 step 4); FDs are then emitted from the
	// index-ordered results, keeping the output canonical regardless of
	// which worker finished first.
	if ferr := faultinject.Fire(faultinject.CoreLHS); ferr != nil {
		return ferr
	}
	if cerr := opts.Budget.Checkpoint("lhs"); cerr != nil {
		return cerr
	}
	pp = startPhase()
	hs := make([]*hypergraph.Hypergraph, arity)
	for a := 0; a < arity; a++ {
		hs[a] = hypergraph.Simplify(ms.CMax[a])
	}
	lhs, err := hypergraph.TransversalsAll(ctx, hs, opts.Workers, opts.Budget)
	if err != nil {
		return err
	}
	res.LHS = lhs
	for a := 0; a < arity; a++ {
		for _, x := range lhs[a] {
			if x == attrset.Single(a) {
				continue
			}
			res.FDs = append(res.FDs, fd.FD{LHS: x, RHS: a})
		}
	}
	res.FDs.Sort()
	res.Stats.LHS = pp.stop()
	res.Timings.LHS = res.Stats.LHS.Duration
	return nil
}

// buildArmstrong implements step 5 with the configured fallback policy.
func buildArmstrong(r *relation.Relation, maxSets attrset.Family, mode ArmstrongMode) (*relation.Relation, bool, error) {
	switch mode {
	case ArmstrongSynthetic:
		arm, err := armstrong.Synthetic(maxSets, r.Names())
		return arm, true, err
	case ArmstrongRealWorld:
		arm, err := armstrong.RealWorld(r, maxSets)
		return arm, false, err
	case ArmstrongRealWorldOrSynthetic:
		arm, err := armstrong.RealWorld(r, maxSets)
		if err == nil {
			return arm, false, nil
		}
		arm, err = armstrong.Synthetic(maxSets, r.Names())
		return arm, true, err
	default:
		return nil, false, fmt.Errorf("core: unknown armstrong mode %d", mode)
	}
}
