package durable

// Streamed snapshot reads must agree exactly with the in-memory decoder
// and reject damage just as loudly.

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
)

func writeTestSnapshot(t *testing.T, rows int) (path string, c *colstore) {
	t.Helper()
	names := []string{"city", "zip", "state"}
	c = newColstore(names)
	for i := 0; i < rows; i++ {
		row := []string{
			"c" + strconv.Itoa(i%7),
			strconv.Itoa(i % 13),
			"s" + strconv.Itoa(i%3),
		}
		if err := c.appendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	data := encodeSnapshot("places", c, "fp-test")
	path = filepath.Join(t.TempDir(), "snapshot.snap")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path, c
}

func TestSnapshotStreamMatchesDecode(t *testing.T) {
	path, c := writeTestSnapshot(t, 200)
	sr, err := OpenSnapshotStream(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()

	if sr.Name() != "places" || sr.Fingerprint() != "fp-test" {
		t.Fatalf("metadata = %q/%q", sr.Name(), sr.Fingerprint())
	}
	if sr.Arity() != len(c.names) || sr.NumRows() != c.rows {
		t.Fatalf("shape = %d×%d, want %d×%d", sr.Arity(), sr.NumRows(), len(c.names), c.rows)
	}
	for a, name := range c.names {
		if sr.Names()[a] != name {
			t.Fatalf("name[%d] = %q, want %q", a, sr.Names()[a], name)
		}
		codes, dom, err := sr.Column(a)
		if err != nil {
			t.Fatal(err)
		}
		if dom != len(c.vals[a]) {
			t.Fatalf("column %d domain = %d, want %d", a, dom, len(c.vals[a]))
		}
		for tt, code := range codes {
			if uint32(code) != c.cols[a][tt] {
				t.Fatalf("column %d row %d code = %d, want %d", a, tt, code, c.cols[a][tt])
			}
		}
		dict, err := sr.Dict(a)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range dict {
			if v != c.vals[a][i] {
				t.Fatalf("dict %d[%d] = %q, want %q", a, i, v, c.vals[a][i])
			}
		}
	}
}

func TestSnapshotStreamConcurrentColumns(t *testing.T) {
	path, c := writeTestSnapshot(t, 500)
	sr, err := OpenSnapshotStream(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := 0; a < sr.Arity(); a++ {
				codes, _, err := sr.Column(a)
				if err != nil {
					t.Error(err)
					return
				}
				for tt, code := range codes {
					if uint32(code) != c.cols[a][tt] {
						t.Errorf("column %d row %d mismatch", a, tt)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestSnapshotStreamRejectsDamage(t *testing.T) {
	path, _ := writeTestSnapshot(t, 100)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad-magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"bit-flip", func(b []byte) []byte { b[len(b)/2] ^= 0x10; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-5] }},
		{"trailing-garbage", func(b []byte) []byte { return append(b, 0xAB) }},
		{"torn-header", func(b []byte) []byte { return b[:len(snapshotMagic)+3] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(t.TempDir(), "snapshot.snap")
			if err := os.WriteFile(p, tc.mutate(append([]byte(nil), pristine...)), 0o644); err != nil {
				t.Fatal(err)
			}
			if sr, err := OpenSnapshotStream(p); err == nil {
				sr.Close()
				t.Fatalf("damaged snapshot opened cleanly")
			}
		})
	}
}

// TestSnapshotStreamEmptyDataset covers the zero-row edge: schema without
// tuples streams back as cleanly as it decodes.
func TestSnapshotStreamEmptyDataset(t *testing.T) {
	c := newColstore([]string{"a", "b"})
	data := encodeSnapshot("empty", c, "fp")
	path := filepath.Join(t.TempDir(), "snapshot.snap")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	sr, err := OpenSnapshotStream(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if sr.NumRows() != 0 || sr.Arity() != 2 {
		t.Fatalf("shape = %d×%d", sr.Arity(), sr.NumRows())
	}
	codes, dom, err := sr.Column(0)
	if err != nil || len(codes) != 0 || dom != 0 {
		t.Fatalf("Column = %v/%d/%v", codes, dom, err)
	}
}

// TestSnapshotStreamLargeStrings exercises chunk-boundary spanning: values
// longer than the scanner's buffer must still parse and verify.
func TestSnapshotStreamLargeStrings(t *testing.T) {
	c := newColstore([]string{"blob"})
	big := make([]byte, 90_000) // larger than the 64 KiB scanner chunk
	for i := range big {
		big[i] = byte('a' + i%26)
	}
	for i := 0; i < 3; i++ {
		if err := c.appendRow([]string{string(big) + fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
	}
	data := encodeSnapshot("blobs", c, "fp")
	path := filepath.Join(t.TempDir(), "snapshot.snap")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	sr, err := OpenSnapshotStream(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	dict, err := sr.Dict(0)
	if err != nil || len(dict) != 3 {
		t.Fatalf("Dict = %d values, err %v", len(dict), err)
	}
	if dict[1] != string(big)+"1" {
		t.Fatalf("large dictionary value corrupted in transit")
	}
}
