package durable

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// SnapshotReader is a streaming view over a DMSNAP1 snapshot file: one
// validation pass records where each attribute's dictionary and code
// column live inside the checksummed frame, and Column then decodes one
// column at a time straight off the file. It is how a recovered dataset
// feeds chunked agree-set computation without materialising every column
// — the snapshot stays on disk; memory holds one column (plus the
// schema) at a time.
//
// The open-time pass is as strict as decodeSnapshot: it verifies the
// magic, the frame length against the file size, the CRC32C over the
// whole payload, and every code against its dictionary size. A damaged
// snapshot therefore fails at Open, never mid-computation — matching the
// quarantine contract (a snapshot is the compacted past; there is no WAL
// to fall back on, so damage must surface loudly and immediately).
//
// Column reads are independent section readers over the shared file
// handle, so concurrent column loads from pool workers are safe.
type SnapshotReader struct {
	f     *os.File
	name  string
	fp    string
	names []string
	rows  int
	base  int64 // file offset of the frame payload
	cols  []snapCol
}

// snapCol locates one attribute's encoding inside the payload.
type snapCol struct {
	dictSize uint64
	dictOff  int64 // payload-relative offset of the dictionary strings
	codesOff int64 // payload-relative offset of the uvarint code column
	codesEnd int64
}

// OpenSnapshotStream opens and validates a snapshot for streamed column
// access. The caller owns the returned reader and must Close it.
func OpenSnapshotStream(path string) (*SnapshotReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	sr, err := loadSnapshotStream(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: streaming snapshot %s: %w", path, err)
	}
	return sr, nil
}

func loadSnapshotStream(f *os.File) (*SnapshotReader, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	head := make([]byte, len(snapshotMagic)+frameHeaderLen)
	if _, err := io.ReadFull(f, head); err != nil {
		return nil, fmt.Errorf("snapshot truncated: %w", err)
	}
	if string(head[:len(snapshotMagic)]) != string(snapshotMagic) {
		return nil, fmt.Errorf("bad snapshot magic")
	}
	hdr := head[len(snapshotMagic):]
	n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
	wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
	base := int64(len(snapshotMagic) + frameHeaderLen)
	if n > maxRecordBytes || base+n != fi.Size() {
		return nil, fmt.Errorf("snapshot frame length %d does not match file size %d", n, fi.Size()-base)
	}

	// One streaming pass: parse the structure while folding every chunk
	// into the running CRC, so validation never holds more than one
	// buffer of payload.
	cr := &crcScanner{r: io.NewSectionReader(f, base, n), remaining: n}
	sr := &SnapshotReader{f: f, base: base}
	sr.name, err = cr.string()
	if err != nil {
		return nil, err
	}
	nAttrs, err := cr.uvarint()
	if err != nil {
		return nil, err
	}
	if nAttrs > uint64(n) {
		return nil, fmt.Errorf("implausible attribute count %d", nAttrs)
	}
	sr.names = make([]string, nAttrs)
	for i := range sr.names {
		if sr.names[i], err = cr.string(); err != nil {
			return nil, err
		}
	}
	rows, err := cr.uvarint()
	if err != nil {
		return nil, err
	}
	if rows > uint64(n) {
		return nil, fmt.Errorf("implausible row count %d", rows)
	}
	sr.rows = int(rows)
	sr.cols = make([]snapCol, nAttrs)
	for a := range sr.cols {
		col := &sr.cols[a]
		if col.dictSize, err = cr.uvarint(); err != nil {
			return nil, err
		}
		if col.dictSize > uint64(n) {
			return nil, fmt.Errorf("implausible dictionary size %d", col.dictSize)
		}
		col.dictOff = cr.offset()
		for i := uint64(0); i < col.dictSize; i++ {
			if _, err := cr.string(); err != nil {
				return nil, err
			}
		}
		col.codesOff = cr.offset()
		for t := 0; t < sr.rows; t++ {
			code, err := cr.uvarint()
			if err != nil {
				return nil, err
			}
			if code >= col.dictSize {
				return nil, fmt.Errorf("code %d out of dictionary range %d", code, col.dictSize)
			}
		}
		col.codesEnd = cr.offset()
	}
	if sr.fp, err = cr.string(); err != nil {
		return nil, err
	}
	if err := cr.finish(wantCRC); err != nil {
		return nil, err
	}
	return sr, nil
}

// Name returns the dataset label stored in the snapshot.
func (sr *SnapshotReader) Name() string { return sr.name }

// Fingerprint returns the content fingerprint stored in the snapshot.
func (sr *SnapshotReader) Fingerprint() string { return sr.fp }

// Names returns the attribute names. The caller must not mutate them.
func (sr *SnapshotReader) Names() []string { return sr.names }

// Arity returns the number of attributes.
func (sr *SnapshotReader) Arity() int { return len(sr.names) }

// NumRows returns the row count.
func (sr *SnapshotReader) NumRows() int { return sr.rows }

// Column decodes attribute a's code column from the file: the codes per
// row plus the domain size (the dictionary cardinality). Codes are dense
// in [0, dom) by construction of the columnar encoder, so the column can
// feed partition construction directly. Each call allocates a fresh
// slice and reads through its own section reader, so concurrent calls
// are safe.
func (sr *SnapshotReader) Column(a int) ([]int, int, error) {
	if a < 0 || a >= len(sr.cols) {
		return nil, 0, fmt.Errorf("durable: column %d out of range %d", a, len(sr.cols))
	}
	col := sr.cols[a]
	br := bufio.NewReaderSize(io.NewSectionReader(sr.f, sr.base+col.codesOff, col.codesEnd-col.codesOff), 1<<16)
	codes := make([]int, sr.rows)
	for t := range codes {
		code, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, 0, fmt.Errorf("durable: reading column %d: %w", a, err)
		}
		if code >= col.dictSize {
			return nil, 0, fmt.Errorf("durable: column %d code %d out of dictionary range %d", a, code, col.dictSize)
		}
		codes[t] = int(code)
	}
	return codes, int(col.dictSize), nil
}

// Dict decodes attribute a's dictionary: value strings indexed by code.
func (sr *SnapshotReader) Dict(a int) ([]string, error) {
	if a < 0 || a >= len(sr.cols) {
		return nil, fmt.Errorf("durable: column %d out of range %d", a, len(sr.cols))
	}
	col := sr.cols[a]
	cr := &crcScanner{
		r:         io.NewSectionReader(sr.f, sr.base+col.dictOff, col.codesOff-col.dictOff),
		remaining: col.codesOff - col.dictOff,
	}
	vals := make([]string, col.dictSize)
	for i := range vals {
		v, err := cr.string()
		if err != nil {
			return nil, fmt.Errorf("durable: reading dictionary %d: %w", a, err)
		}
		vals[i] = v
	}
	return vals, nil
}

// Close releases the underlying file.
func (sr *SnapshotReader) Close() error { return sr.f.Close() }

// crcScanner parses uvarints and length-prefixed strings from a reader
// in fixed-size chunks, folding each chunk into a running CRC32C as it
// is loaded — one pass both decodes the structure and verifies the
// frame checksum, without buffering the payload.
type crcScanner struct {
	r         io.Reader
	remaining int64 // unread payload bytes beyond buf
	buf       [1 << 16]byte
	len       int
	pos       int
	crc       uint32
	consumed  int64 // payload bytes before buf[0]
}

// fill loads the next chunk. At end of payload the buffer stays empty.
func (c *crcScanner) fill() error {
	c.consumed += int64(c.len)
	c.pos, c.len = 0, 0
	if c.remaining == 0 {
		return io.ErrUnexpectedEOF
	}
	n := int64(len(c.buf))
	if n > c.remaining {
		n = c.remaining
	}
	if _, err := io.ReadFull(c.r, c.buf[:n]); err != nil {
		return fmt.Errorf("snapshot payload truncated: %w", err)
	}
	c.crc = crc32.Update(c.crc, castagnoli, c.buf[:n])
	c.len = int(n)
	c.remaining -= n
	return nil
}

func (c *crcScanner) ReadByte() (byte, error) {
	if c.pos >= c.len {
		if err := c.fill(); err != nil {
			return 0, err
		}
	}
	b := c.buf[c.pos]
	c.pos++
	return b, nil
}

// offset is the payload-relative position of the next unread byte.
func (c *crcScanner) offset() int64 { return c.consumed + int64(c.pos) }

func (c *crcScanner) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(c)
	if err != nil {
		return 0, fmt.Errorf("snapshot structure truncated: %w", err)
	}
	return v, nil
}

func (c *crcScanner) string() (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(c.remaining)+uint64(c.len-c.pos) {
		return "", fmt.Errorf("implausible string length %d", n)
	}
	b := make([]byte, n)
	for i := range b {
		if b[i], err = c.ReadByte(); err != nil {
			return "", err
		}
	}
	return string(b), nil
}

// finish verifies that the structure consumed the payload exactly and
// that the accumulated CRC matches the frame header.
func (c *crcScanner) finish(want uint32) error {
	if c.remaining != 0 || c.pos != c.len {
		return fmt.Errorf("snapshot has %d trailing bytes", c.remaining+int64(c.len-c.pos))
	}
	if c.crc != want {
		return fmt.Errorf("snapshot checksum mismatch")
	}
	return nil
}
