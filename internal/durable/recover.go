package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/faultinject"
)

// recoverAll scans the datasets directory and rebuilds every dataset.
// Per-dataset damage never aborts the boot: torn tails are truncated,
// anything worse is quarantined, and the healthy rest is served.
func (s *Store) recoverAll() (*Recovery, error) {
	entries, err := os.ReadDir(s.datasetsDir())
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	ids := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids) // deterministic registry order after recovery
	rec := &Recovery{}
	for _, id := range ids {
		dir := filepath.Join(s.datasetsDir(), id)
		d, rd, reason, rerr := s.recoverOne(id, dir)
		if rerr != nil {
			return nil, rerr
		}
		switch {
		case reason == reasonEmpty:
			// Nothing acknowledged ever reached this directory (a crash
			// before the registration record was durable): remove it
			// rather than quarantine noise.
			os.RemoveAll(dir)
			s.stats.DroppedEmpty++
		case reason != "":
			q, qerr := s.quarantine(id, dir, reason)
			if qerr != nil {
				return nil, qerr
			}
			rec.Quarantined = append(rec.Quarantined, q)
			s.stats.Quarantined++
		default:
			s.datasets[id] = d
			s.stats.Datasets = len(s.datasets)
			s.stats.Recovered++
			s.stats.ReplayedRecords += int64(rd.Replayed)
			s.stats.WALBytes += d.walSize
			if rd.TornTail {
				s.stats.TruncatedTails++
			}
			rec.Datasets = append(rec.Datasets, *rd)
		}
	}
	return rec, nil
}

// reasonEmpty marks a dataset directory holding no committed record at
// all — dropped, not quarantined.
const reasonEmpty = "\x00empty"

// recoverOne rebuilds one dataset from its directory. It returns either
// a live handle plus its recovery report, or a quarantine reason. The
// error is reserved for I/O failures that should abort the boot.
func (s *Store) recoverOne(id, dir string) (*Dataset, *RecoveredDataset, string, error) {
	if err := faultinject.Fire(faultinject.DurableReplay); err != nil {
		return nil, nil, fmt.Sprintf("replay fault: %v", err), nil
	}

	var (
		cols    *colstore
		name    string
		lastFP  string
		applied int
	)
	snapPath := filepath.Join(dir, "snapshot.snap")
	if data, err := os.ReadFile(snapPath); err == nil {
		sname, sc, sfp, derr := decodeSnapshot(data)
		if derr != nil {
			return nil, nil, fmt.Sprintf("snapshot: %v", derr), nil
		}
		name, cols, lastFP = sname, sc, sfp
	} else if !os.IsNotExist(err) {
		return nil, nil, "", fmt.Errorf("durable: reading %s: %w", snapPath, err)
	}
	// A leftover snapshot.tmp is an interrupted compaction; the WAL is
	// still authoritative, so just drop it.
	os.Remove(filepath.Join(dir, "snapshot.tmp"))

	walPath := filepath.Join(dir, "wal.log")
	walData, err := os.ReadFile(walPath)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, "", fmt.Errorf("durable: reading %s: %w", walPath, err)
	}
	recs, validLen, torn, reason := scanWAL(walData)
	if reason != "" {
		return nil, nil, reason, nil
	}
	if torn {
		if err := truncateFileSync(walPath, int64(validLen), s.fsync); err != nil {
			return nil, nil, "", fmt.Errorf("durable: truncating torn tail of %s: %w", walPath, err)
		}
	}

	// Apply the tail on top of the snapshot (or from the registration
	// record when no snapshot exists yet). Records the snapshot already
	// covers — possible when a crash landed between the snapshot rename
	// and the WAL truncate — are skipped by their row watermark.
	for i, r := range recs {
		switch r.Kind {
		case recRegister:
			if cols != nil {
				if r.RowsAfter > cols.rows {
					return nil, nil, fmt.Sprintf("registration record at index %d above snapshot watermark", i), nil
				}
				continue // pre-snapshot history
			}
			if i != 0 {
				return nil, nil, fmt.Sprintf("registration record at index %d, want 0", i), nil
			}
			if r.RowsAfter != len(r.Rows) {
				return nil, nil, fmt.Sprintf("registration row watermark %d does not match its %d rows", r.RowsAfter, len(r.Rows)), nil
			}
			cols = newColstore(r.Names)
			name = r.Name
			for _, row := range r.Rows {
				if aerr := cols.appendRow(row); aerr != nil {
					return nil, nil, fmt.Sprintf("registration rows: %v", aerr), nil
				}
			}
			lastFP = r.FP
			applied++
		case recAppend:
			if cols == nil {
				return nil, nil, "append record before any registration or snapshot", nil
			}
			if r.RowsAfter <= cols.rows {
				continue // already in the snapshot
			}
			if r.RowsAfter != cols.rows+len(r.Rows) {
				return nil, nil, fmt.Sprintf("sequence gap: record raises rows to %d but %d+%d expected", r.RowsAfter, cols.rows, len(r.Rows)), nil
			}
			for _, row := range r.Rows {
				if aerr := cols.appendRow(row); aerr != nil {
					return nil, nil, fmt.Sprintf("append rows: %v", aerr), nil
				}
			}
			lastFP = r.FP
			applied++
		}
	}
	if cols == nil {
		return nil, nil, reasonEmpty, nil
	}

	// The decisive check: the fingerprint of the replayed content must
	// equal the one recorded when the last surviving record was written.
	rows := cols.materialize()
	if got := ContentFingerprint(cols.names, rows); got != lastFP {
		return nil, nil, fmt.Sprintf("fingerprint mismatch: recorded %.12s…, replayed %.12s…", lastFP, got), nil
	}

	wal, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, "", fmt.Errorf("durable: reopening %s: %w", walPath, err)
	}
	d := &Dataset{
		id:      id,
		dir:     dir,
		store:   s,
		wal:     wal,
		cols:    cols,
		name:    name,
		rows:    cols.rows,
		fp:      lastFP,
		tail:    applied,
		walSize: int64(validLen),
	}
	d.sy.init()
	d.sy.written = Token(validLen)
	d.sy.synced = Token(validLen)
	rd := &RecoveredDataset{
		ID:          id,
		Name:        name,
		Names:       append([]string(nil), cols.names...),
		Rows:        rows,
		Fingerprint: lastFP,
		Replayed:    applied,
		TornTail:    torn,
	}
	return d, rd, "", nil
}

// truncateFileSync truncates path to size and (optionally) fsyncs the
// repair, so a torn tail does not reappear after the next crash.
func truncateFileSync(path string, size int64, fsync bool) error {
	if err := os.Truncate(path, size); err != nil {
		return err
	}
	if !fsync {
		return nil
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// quarantine moves a damaged dataset directory into the quarantine area
// and records the reason next to it, structured for operators and tests.
func (s *Store) quarantine(id, dir, reason string) (Quarantined, error) {
	dest := filepath.Join(s.quarantineDir(), id)
	for n := 2; ; n++ {
		if _, err := os.Stat(dest); os.IsNotExist(err) {
			break
		}
		dest = filepath.Join(s.quarantineDir(), fmt.Sprintf("%s-%d", id, n))
	}
	if err := os.Rename(dir, dest); err != nil {
		return Quarantined{}, fmt.Errorf("durable: quarantining %s: %w", id, err)
	}
	q := Quarantined{ID: id, Reason: reason, Path: dest}
	body, _ := json.MarshalIndent(struct {
		Quarantined
		At time.Time `json:"at"`
	}{q, time.Now().UTC()}, "", "  ")
	if err := os.WriteFile(filepath.Join(dest, "REASON.json"), append(body, '\n'), 0o644); err != nil {
		return Quarantined{}, fmt.Errorf("durable: writing quarantine reason for %s: %w", id, err)
	}
	return q, nil
}
