package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/faultinject"
)

// Options configures a Store. Zero values get production-safe defaults,
// except Dir, which is required.
type Options struct {
	// Dir is the data directory; created if absent.
	Dir string
	// DisableFsync acknowledges writes without waiting for fsync. Only
	// for tests and benchmarks — a crash can then lose acknowledged
	// appends (but never corrupt the recovered prefix).
	DisableFsync bool
	// SnapshotEvery is the number of WAL append records after which the
	// background compactor folds the log into a snapshot. Default 256;
	// negative disables compaction.
	SnapshotEvery int
}

// Stats are the store's cumulative counters, served under /v1/stats.
type Stats struct {
	Datasets      int   // live durable datasets
	AppendRecords int64 // append batches logged
	Syncs         int64 // fsyncs issued by group-commit leaders
	// BatchedRecords counts append records made durable without their
	// own fsync — covered by another record's group commit or folded
	// into a snapshot. AppendRecords ≈ Syncs + BatchedRecords under
	// load; the gap is what group commit saved.
	BatchedRecords int64
	Snapshots      int64 // snapshots written by the compactor
	CompactErrors  int64 // failed compactions (WAL kept, retried later)
	WALBytes       int64 // bytes currently in WALs (drops at compaction)
	Recovered      int   // datasets rebuilt from disk at Open
	ReplayedRecords int64 // WAL records applied during recovery
	TruncatedTails int64 // torn final records dropped during recovery
	Quarantined    int   // datasets refused at recovery and set aside
	DroppedEmpty   int   // unacknowledged empty dataset dirs removed
	Broken         int   // live datasets with a sticky durability error
}

// Store owns the data directory: every dataset's WAL and snapshot, the
// background compactor, and the recovery performed at Open.
type Store struct {
	dir           string
	fsync         bool
	snapshotEvery int

	mu       sync.Mutex
	datasets map[string]*Dataset
	closed   bool
	stats    Stats

	compactCh chan *Dataset
	wg        sync.WaitGroup
}

// RecoveredDataset is one dataset rebuilt from disk, handed to the
// serving layer to re-register.
type RecoveredDataset struct {
	ID          string
	Name        string
	Names       []string
	Rows        [][]string
	Fingerprint string
	// Replayed counts WAL records applied on top of the snapshot.
	Replayed int
	// TornTail reports that a torn final record was dropped — the
	// expected state after a crash mid-write.
	TornTail bool
}

// Quarantined is one dataset recovery refused, moved aside with a
// structured reason so the server boots without it.
type Quarantined struct {
	ID     string `json:"id"`
	Reason string `json:"reason"`
	Path   string `json:"path"`
}

// Recovery is the outcome of Open's boot scan.
type Recovery struct {
	Datasets    []RecoveredDataset
	Quarantined []Quarantined
}

// Open opens (creating if needed) the store at opts.Dir and recovers
// every dataset found there: snapshot first, then the WAL tail, torn
// tails truncated, fingerprints verified, damage quarantined. The error
// is non-nil only for store-level I/O failures; per-dataset damage is
// reported in the Recovery, never by refusing to start.
func Open(opts Options) (*Store, *Recovery, error) {
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("durable: Dir is required")
	}
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = 256
	}
	s := &Store{
		dir:           opts.Dir,
		fsync:         !opts.DisableFsync,
		snapshotEvery: opts.SnapshotEvery,
		datasets:      make(map[string]*Dataset),
		compactCh:     make(chan *Dataset, 64),
	}
	for _, sub := range []string{s.datasetsDir(), s.quarantineDir()} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, nil, fmt.Errorf("durable: %w", err)
		}
	}
	rec, err := s.recoverAll()
	if err != nil {
		return nil, nil, err
	}
	s.wg.Add(1)
	go s.compactor()
	// Datasets that recovered with a long tail are compacted promptly.
	s.mu.Lock()
	for _, d := range s.datasets {
		if s.snapshotEvery > 0 && d.tail >= s.snapshotEvery {
			select {
			case s.compactCh <- d:
			default:
			}
		}
	}
	s.mu.Unlock()
	return s, rec, nil
}

func (s *Store) datasetsDir() string   { return filepath.Join(s.dir, "datasets") }
func (s *Store) quarantineDir() string { return filepath.Join(s.dir, "quarantine") }

// compactor drains the compaction queue until Close.
func (s *Store) compactor() {
	defer s.wg.Done()
	for d := range s.compactCh {
		// Errors are counted inside compact; the WAL stays authoritative.
		_ = d.compact()
	}
}

// queueCompact schedules d for background compaction; a full queue drops
// the request (the next append past the threshold re-queues it).
func (s *Store) queueCompact(d *Dataset) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return
	}
	select {
	case s.compactCh <- d:
	default:
	}
}

// Create durably registers a dataset: its directory is created and the
// registration record (schema, label, initial rows, fingerprint) is
// written and fsync'd before Create returns. The returned handle serves
// all later appends.
func (s *Store) Create(id, name string, names []string, rows [][]string, fp string) (*Dataset, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("durable: store closed")
	}
	if _, ok := s.datasets[id]; ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("durable: dataset %s already exists", id)
	}
	s.mu.Unlock()

	dir := filepath.Join(s.datasetsDir(), id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	frame := appendFrame(nil, encodeRegister(name, names, rows, fp))
	walPath := filepath.Join(dir, "wal.log")
	err := faultinject.Fire(faultinject.DurableWrite)
	var wal *os.File
	if err == nil {
		wal, err = os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	}
	if err == nil {
		_, err = wal.Write(frame)
	}
	if err == nil && s.fsync {
		if err = faultinject.Fire(faultinject.DurableFsync); err == nil {
			err = wal.Sync()
		}
	}
	if err == nil && s.fsync {
		err = syncDir(dir)
	}
	if err == nil && s.fsync {
		err = syncDir(s.datasetsDir())
	}
	if err != nil {
		if wal != nil {
			wal.Close()
		}
		os.RemoveAll(dir)
		return nil, fmt.Errorf("durable: registering %s: %w", id, err)
	}

	cols := newColstore(names)
	for _, row := range rows {
		if cerr := cols.appendRow(row); cerr != nil {
			wal.Close()
			os.RemoveAll(dir)
			return nil, cerr
		}
	}
	d := &Dataset{
		id:      id,
		dir:     dir,
		store:   s,
		wal:     wal,
		cols:    cols,
		name:    name,
		rows:    len(rows),
		fp:      fp,
		walSize: int64(len(frame)),
	}
	d.sy.init()
	d.sy.written = Token(len(frame))
	d.sy.synced = Token(len(frame))

	s.mu.Lock()
	s.datasets[id] = d
	s.stats.Datasets = len(s.datasets)
	s.stats.WALBytes += int64(len(frame))
	s.mu.Unlock()
	return d, nil
}

// Dataset returns the live durable handle for id, if present.
func (s *Store) Dataset(id string) (*Dataset, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.datasets[id]
	return d, ok
}

// CompactAll snapshots every dataset with WAL tail records — the final
// fold a draining server performs so the next boot replays nothing.
func (s *Store) CompactAll() error {
	s.mu.Lock()
	ds := make([]*Dataset, 0, len(s.datasets))
	for _, d := range s.datasets {
		ds = append(ds, d)
	}
	s.mu.Unlock()
	var firstErr error
	for _, d := range ds {
		if err := d.compact(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close stops the compactor and releases every WAL handle. It does not
// compact; call CompactAll first for a clean fold.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.compactCh)
	s.wg.Wait()
	s.mu.Lock()
	ds := make([]*Dataset, 0, len(s.datasets))
	for _, d := range s.datasets {
		ds = append(ds, d)
	}
	s.mu.Unlock()
	var firstErr error
	for _, d := range ds {
		if err := d.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	broken := 0
	ds := make([]*Dataset, 0, len(s.datasets))
	for _, d := range s.datasets {
		ds = append(ds, d)
	}
	s.mu.Unlock()
	for _, d := range ds {
		if d.broken() {
			broken++
		}
	}
	st.Broken = broken
	return st
}

// Counter hooks called from the dataset handles.

func (s *Store) noteAppend(frameBytes int64) {
	s.mu.Lock()
	s.stats.AppendRecords++
	s.stats.WALBytes += frameBytes
	s.mu.Unlock()
}

func (s *Store) noteSync(coveredRecords int64) {
	s.mu.Lock()
	s.stats.Syncs++
	if coveredRecords > 1 {
		s.stats.BatchedRecords += coveredRecords - 1
	}
	s.mu.Unlock()
}

func (s *Store) noteSnapshot(snapshotBytes, reclaimedWAL int64) {
	s.mu.Lock()
	s.stats.Snapshots++
	s.stats.WALBytes -= reclaimedWAL
	if s.stats.WALBytes < 0 {
		s.stats.WALBytes = 0
	}
	s.mu.Unlock()
}

func (s *Store) noteCompactError() {
	s.mu.Lock()
	s.stats.CompactErrors++
	s.mu.Unlock()
}

// noteSnapshotBatched counts records released by a snapshot instead of a
// leader fsync.
func (s *Store) noteSnapshotBatched(records int64) {
	s.mu.Lock()
	s.stats.BatchedRecords += records
	s.mu.Unlock()
}
