package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/faultinject"
)

// testRows builds n deterministic rows over a 3-attribute schema with
// enough repeated values to exercise the dictionaries.
func testRows(start, n int) [][]string {
	rows := make([][]string, n)
	for i := range rows {
		k := start + i
		rows[i] = []string{
			fmt.Sprintf("u%d", k%7),
			fmt.Sprintf("city%d", k%3),
			fmt.Sprintf("v%d", k),
		}
	}
	return rows
}

var testNames = []string{"user", "city", "val"}

// openStore opens a store over dir with fsync on and a tiny compaction
// threshold unless overridden.
func openStore(t *testing.T, dir string, opts Options) (*Store, *Recovery) {
	t.Helper()
	opts.Dir = dir
	s, rec, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s, rec
}

// mustCreate registers a dataset computing its fingerprint the same way
// the server does.
func mustCreate(t *testing.T, s *Store, id string, rows [][]string) (*Dataset, *Fingerprint) {
	t.Helper()
	f := NewFingerprint(testNames)
	for _, r := range rows {
		f.AddRow(r)
	}
	d, err := s.Create(id, "t/"+id, testNames, rows, f.Sum())
	if err != nil {
		t.Fatalf("Create %s: %v", id, err)
	}
	return d, f
}

// mustAppend appends rows, advancing the fingerprint, and syncs.
func mustAppend(t *testing.T, d *Dataset, f *Fingerprint, rowsBefore int, rows [][]string) {
	t.Helper()
	for _, r := range rows {
		f.AddRow(r)
	}
	tok, err := d.Append(rows, rowsBefore+len(rows), f.Sum())
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := d.Sync(tok); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

func TestCreateAppendReopen(t *testing.T) {
	dir := t.TempDir()
	s, rec := openStore(t, dir, Options{})
	if len(rec.Datasets) != 0 || len(rec.Quarantined) != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	init := testRows(0, 5)
	d, f := mustCreate(t, s, "ds-alpha", init)
	mustAppend(t, d, f, 5, testRows(5, 4))
	mustAppend(t, d, f, 9, testRows(9, 3))
	wantFP := f.Sum()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, rec2 := openStore(t, dir, Options{})
	defer s2.Close()
	if len(rec2.Quarantined) != 0 {
		t.Fatalf("quarantined on clean reopen: %+v", rec2.Quarantined)
	}
	if len(rec2.Datasets) != 1 {
		t.Fatalf("recovered %d datasets, want 1", len(rec2.Datasets))
	}
	rd := rec2.Datasets[0]
	if rd.ID != "ds-alpha" || rd.Name != "t/ds-alpha" {
		t.Fatalf("recovered identity %q/%q", rd.ID, rd.Name)
	}
	if rd.Fingerprint != wantFP {
		t.Fatalf("recovered fp %s, want %s", rd.Fingerprint, wantFP)
	}
	if len(rd.Rows) != 12 {
		t.Fatalf("recovered %d rows, want 12", len(rd.Rows))
	}
	if got := ContentFingerprint(rd.Names, rd.Rows); got != wantFP {
		t.Fatalf("replayed content fingerprint %s, want %s", got, wantFP)
	}
	if rd.Replayed != 3 { // register + 2 appends
		t.Fatalf("replayed %d records, want 3", rd.Replayed)
	}
	if rd.TornTail {
		t.Fatal("clean log reported a torn tail")
	}
}

func TestRecoveredDatasetAcceptsAppends(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir, Options{})
	init := testRows(0, 3)
	d, f := mustCreate(t, s, "ds-app", init)
	mustAppend(t, d, f, 3, testRows(3, 2))
	s.Close()

	s2, rec := openStore(t, dir, Options{})
	if len(rec.Datasets) != 1 {
		t.Fatalf("recovered %d datasets", len(rec.Datasets))
	}
	d2, ok := s2.Dataset("ds-app")
	if !ok {
		t.Fatal("recovered dataset not addressable")
	}
	f2 := NewFingerprint(testNames)
	for _, r := range rec.Datasets[0].Rows {
		f2.AddRow(r)
	}
	mustAppend(t, d2, f2, 5, testRows(5, 4))
	want := f2.Sum()
	s2.Close()

	_, rec3 := openStore(t, dir, Options{})
	if got := rec3.Datasets[0].Fingerprint; got != want {
		t.Fatalf("after post-recovery append: fp %s, want %s", got, want)
	}
	if n := len(rec3.Datasets[0].Rows); n != 9 {
		t.Fatalf("after post-recovery append: %d rows, want 9", n)
	}
}

func TestTornTailTruncated(t *testing.T) {
	// Cut the WAL at every byte inside its final frame; each cut must
	// recover the clean two-record prefix, never quarantine.
	base := t.TempDir()
	s, _ := openStore(t, base, Options{})
	d, f := mustCreate(t, s, "ds-torn", testRows(0, 4))
	mustAppend(t, d, f, 4, testRows(4, 3))
	prefixFP := f.Sum()
	mustAppend(t, d, f, 7, testRows(7, 2))
	s.Close()

	walPath := filepath.Join(base, "datasets", "ds-torn", "wal.log")
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	recs, validLen, torn, reason := scanWAL(full)
	if torn || reason != "" || len(recs) != 3 || validLen != len(full) {
		t.Fatalf("clean log scanned recs=%d torn=%v reason=%q", len(recs), torn, reason)
	}
	// Find where the final frame starts.
	_, prefixLen, _, _ := scanWAL(full[:len(full)-1])
	for cut := prefixLen + 1; cut < len(full); cut += 7 {
		dir := t.TempDir()
		dsDir := filepath.Join(dir, "datasets", "ds-torn")
		if err := os.MkdirAll(dsDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dsDir, "wal.log"), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, rec := openStore(t, dir, Options{})
		if len(rec.Quarantined) != 0 {
			t.Fatalf("cut=%d quarantined: %+v", cut, rec.Quarantined)
		}
		if len(rec.Datasets) != 1 {
			t.Fatalf("cut=%d recovered %d datasets", cut, len(rec.Datasets))
		}
		rd := rec.Datasets[0]
		if !rd.TornTail {
			t.Fatalf("cut=%d no torn tail reported", cut)
		}
		if len(rd.Rows) != 7 || rd.Fingerprint != prefixFP {
			t.Fatalf("cut=%d recovered %d rows fp=%s, want 7 rows fp=%s",
				cut, len(rd.Rows), rd.Fingerprint, prefixFP)
		}
		// The repair must be durable: the file now holds only the prefix.
		repaired, err := os.ReadFile(filepath.Join(dsDir, "wal.log"))
		if err != nil {
			t.Fatal(err)
		}
		if len(repaired) != prefixLen {
			t.Fatalf("cut=%d wal repaired to %d bytes, want %d", cut, len(repaired), prefixLen)
		}
		s2.Close()
	}
}

func TestMidLogCorruptionQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir, Options{})
	d, f := mustCreate(t, s, "ds-bad", testRows(0, 4))
	mustAppend(t, d, f, 4, testRows(4, 3))
	mustAppend(t, d, f, 7, testRows(7, 2))
	s.Close()

	walPath := filepath.Join(dir, "datasets", "ds-bad", "wal.log")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the middle record: not the final frame, so
	// truncation cannot explain it.
	bounds := frameBounds(t, data)
	if len(bounds) != 3 {
		t.Fatalf("expected 3 frames, got %d", len(bounds))
	}
	mid := (bounds[1] + bounds[2]) / 2
	data[mid] ^= 0xFF
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rec := openStore(t, dir, Options{})
	defer s2.Close()
	if len(rec.Datasets) != 0 {
		t.Fatalf("corrupt dataset served: %+v", rec.Datasets)
	}
	if len(rec.Quarantined) != 1 {
		t.Fatalf("quarantined %d, want 1", len(rec.Quarantined))
	}
	q := rec.Quarantined[0]
	if q.ID != "ds-bad" || !strings.Contains(q.Reason, "checksum mismatch") {
		t.Fatalf("quarantine %+v", q)
	}
	// The directory moved and REASON.json is structured.
	if _, err := os.Stat(filepath.Join(dir, "datasets", "ds-bad")); !os.IsNotExist(err) {
		t.Fatal("corrupt dataset dir still under datasets/")
	}
	body, err := os.ReadFile(filepath.Join(q.Path, "REASON.json"))
	if err != nil {
		t.Fatalf("REASON.json: %v", err)
	}
	var parsed struct {
		ID     string `json:"id"`
		Reason string `json:"reason"`
		At     string `json:"at"`
	}
	if err := json.Unmarshal(body, &parsed); err != nil {
		t.Fatalf("REASON.json unmarshal: %v", err)
	}
	if parsed.ID != "ds-bad" || parsed.Reason == "" || parsed.At == "" {
		t.Fatalf("REASON.json content %+v", parsed)
	}
	// The original WAL rode along into quarantine for post-mortems.
	if _, err := os.Stat(filepath.Join(q.Path, "wal.log")); err != nil {
		t.Fatalf("quarantined wal.log missing: %v", err)
	}
}

// frameBounds returns the start offset of each frame in a clean WAL.
func frameBounds(t *testing.T, data []byte) []int {
	t.Helper()
	var bounds []int
	off := 0
	for off < len(data) {
		bounds = append(bounds, off)
		ln := int(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		off += frameHeaderLen + ln
		if ln < 0 || off > len(data) {
			t.Fatalf("frameBounds on dirty log at offset %d", bounds[len(bounds)-1])
		}
	}
	return bounds
}

func TestFingerprintMismatchQuarantined(t *testing.T) {
	// Hand-craft a structurally valid WAL whose recorded fingerprint does
	// not match its content: recovery must refuse it.
	dir := t.TempDir()
	dsDir := filepath.Join(dir, "datasets", "ds-lie")
	if err := os.MkdirAll(dsDir, 0o755); err != nil {
		t.Fatal(err)
	}
	rows := testRows(0, 3)
	wal := appendFrame(nil, encodeRegister("t/lie", testNames, rows, strings.Repeat("f", 64)))
	if err := os.WriteFile(filepath.Join(dsDir, "wal.log"), wal, 0o644); err != nil {
		t.Fatal(err)
	}
	s, rec := openStore(t, dir, Options{})
	defer s.Close()
	if len(rec.Quarantined) != 1 || !strings.Contains(rec.Quarantined[0].Reason, "fingerprint mismatch") {
		t.Fatalf("recovery %+v", rec)
	}
}

func TestSequenceGapQuarantined(t *testing.T) {
	dir := t.TempDir()
	dsDir := filepath.Join(dir, "datasets", "ds-gap")
	if err := os.MkdirAll(dsDir, 0o755); err != nil {
		t.Fatal(err)
	}
	rows := testRows(0, 2)
	f := NewFingerprint(testNames)
	for _, r := range rows {
		f.AddRow(r)
	}
	wal := appendFrame(nil, encodeRegister("t/gap", testNames, rows, f.Sum()))
	// An append record claiming to raise the count to 10 with one row.
	wal = appendFrame(wal, encodeAppend(10, testRows(2, 1), f.Sum()))
	if err := os.WriteFile(filepath.Join(dsDir, "wal.log"), wal, 0o644); err != nil {
		t.Fatal(err)
	}
	s, rec := openStore(t, dir, Options{})
	defer s.Close()
	if len(rec.Quarantined) != 1 || !strings.Contains(rec.Quarantined[0].Reason, "sequence gap") {
		t.Fatalf("recovery %+v", rec)
	}
}

func TestEmptyDatasetDirDropped(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "datasets", "ds-ghost"), 0o755); err != nil {
		t.Fatal(err)
	}
	s, rec := openStore(t, dir, Options{})
	defer s.Close()
	if len(rec.Datasets) != 0 || len(rec.Quarantined) != 0 {
		t.Fatalf("ghost dir surfaced: %+v", rec)
	}
	if _, err := os.Stat(filepath.Join(dir, "datasets", "ds-ghost")); !os.IsNotExist(err) {
		t.Fatal("ghost dir not removed")
	}
	if st := s.Stats(); st.DroppedEmpty != 1 {
		t.Fatalf("DroppedEmpty = %d", st.DroppedEmpty)
	}
}

func TestCompactionFoldsWAL(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir, Options{SnapshotEvery: -1}) // manual compaction only
	d, f := mustCreate(t, s, "ds-comp", testRows(0, 3))
	rows := 3
	for i := 0; i < 5; i++ {
		batch := testRows(rows, 4)
		mustAppend(t, d, f, rows, batch)
		rows += 4
	}
	if err := d.compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	// More appends after the snapshot land in a fresh WAL tail.
	mustAppend(t, d, f, rows, testRows(rows, 2))
	rows += 2
	want := f.Sum()
	st := s.Stats()
	if st.Snapshots != 1 {
		t.Fatalf("Snapshots = %d", st.Snapshots)
	}
	s.Close()

	s2, rec := openStore(t, dir, Options{})
	defer s2.Close()
	if len(rec.Datasets) != 1 || len(rec.Quarantined) != 0 {
		t.Fatalf("recovery %+v", rec)
	}
	rd := rec.Datasets[0]
	if len(rd.Rows) != rows || rd.Fingerprint != want {
		t.Fatalf("recovered %d rows fp=%s, want %d fp=%s", len(rd.Rows), rd.Fingerprint, rows, want)
	}
	if rd.Replayed != 1 { // only the post-snapshot append
		t.Fatalf("replayed %d records over snapshot, want 1", rd.Replayed)
	}
}

func TestCompactAllThenReopenReplaysNothing(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir, Options{SnapshotEvery: -1})
	d, f := mustCreate(t, s, "ds-drain", testRows(0, 6))
	mustAppend(t, d, f, 6, testRows(6, 6))
	want := f.Sum()
	if err := s.CompactAll(); err != nil {
		t.Fatalf("CompactAll: %v", err)
	}
	s.Close()

	_, rec := openStore(t, dir, Options{})
	rd := rec.Datasets[0]
	if rd.Replayed != 0 {
		t.Fatalf("replayed %d records after a clean drain, want 0", rd.Replayed)
	}
	if rd.Fingerprint != want || len(rd.Rows) != 12 {
		t.Fatalf("drained recovery %d rows fp=%s", len(rd.Rows), rd.Fingerprint)
	}
}

func TestReplaySkipsRecordsCoveredBySnapshot(t *testing.T) {
	// Simulate a crash between the snapshot rename and the WAL truncate:
	// the WAL still holds records the snapshot covers. Replay must skip
	// them by watermark, not double-apply.
	dir := t.TempDir()
	s, _ := openStore(t, dir, Options{SnapshotEvery: -1})
	d, f := mustCreate(t, s, "ds-skip", testRows(0, 3))
	mustAppend(t, d, f, 3, testRows(3, 3))
	walPath := filepath.Join(dir, "datasets", "ds-skip", "wal.log")
	preCompact, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.compact(); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, d, f, 6, testRows(6, 2))
	want := f.Sum()
	postCompact, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Reconstruct the pre-truncate state: covered records followed by the
	// live tail.
	if err := os.WriteFile(walPath, append(append([]byte(nil), preCompact...), postCompact...), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rec := openStore(t, dir, Options{})
	defer s2.Close()
	if len(rec.Quarantined) != 0 {
		t.Fatalf("quarantined: %+v", rec.Quarantined)
	}
	rd := rec.Datasets[0]
	if len(rd.Rows) != 8 || rd.Fingerprint != want {
		t.Fatalf("recovered %d rows fp=%s, want 8 fp=%s", len(rd.Rows), rd.Fingerprint, want)
	}
	if rd.Replayed != 1 {
		t.Fatalf("replayed %d, want 1 (covered records skipped)", rd.Replayed)
	}
}

func TestCorruptSnapshotQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir, Options{SnapshotEvery: -1})
	d, f := mustCreate(t, s, "ds-snapbad", testRows(0, 5))
	mustAppend(t, d, f, 5, testRows(5, 3))
	if err := d.compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	snapPath := filepath.Join(dir, "datasets", "ds-snapbad", "snapshot.snap")
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, rec := openStore(t, dir, Options{})
	defer s2.Close()
	if len(rec.Quarantined) != 1 || !strings.Contains(rec.Quarantined[0].Reason, "snapshot") {
		t.Fatalf("recovery %+v", rec)
	}
}

func TestSnapshotRoundtrip(t *testing.T) {
	c := newColstore(testNames)
	rows := testRows(0, 50)
	for _, r := range rows {
		if err := c.appendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	fp := ContentFingerprint(testNames, rows)
	data := encodeSnapshot("t/round", c, fp)
	name, c2, fp2, err := decodeSnapshot(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if name != "t/round" || fp2 != fp || c2.rows != 50 {
		t.Fatalf("decoded name=%q fp=%s rows=%d", name, fp2, c2.rows)
	}
	back := c2.materialize()
	for i := range rows {
		for a := range rows[i] {
			if back[i][a] != rows[i][a] {
				t.Fatalf("row %d attr %d: %q != %q", i, a, back[i][a], rows[i][a])
			}
		}
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	// Concurrent appenders on one dataset must all become durable, and
	// group commit should need fewer fsyncs than records under contention.
	// Correctness, not batching, is asserted — timing decides the latter.
	dir := t.TempDir()
	s, _ := openStore(t, dir, Options{SnapshotEvery: -1})
	d, _ := mustCreate(t, s, "ds-group", nil)

	const workers = 8
	const perWorker = 16
	var mu sync.Mutex
	rows := 0
	f := NewFingerprint(testNames)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Serialise the logical commit (as the registry does under
				// its dataset lock) but sync outside it.
				mu.Lock()
				batch := testRows(rows, 2)
				for _, r := range batch {
					f.AddRow(r)
				}
				rows += 2
				tok, err := d.Append(batch, rows, f.Sum())
				mu.Unlock()
				if err != nil {
					errs <- err
					return
				}
				if err := d.Sync(tok); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent append: %v", err)
	}
	want := f.Sum()
	st := s.Stats()
	if st.AppendRecords != workers*perWorker {
		t.Fatalf("AppendRecords = %d, want %d", st.AppendRecords, workers*perWorker)
	}
	if st.Syncs+st.BatchedRecords < st.AppendRecords {
		t.Fatalf("accounting: %d syncs + %d batched < %d records", st.Syncs, st.BatchedRecords, st.AppendRecords)
	}
	s.Close()

	_, rec := openStore(t, dir, Options{})
	rd := rec.Datasets[0]
	if len(rd.Rows) != workers*perWorker*2 || rd.Fingerprint != want {
		t.Fatalf("recovered %d rows fp=%s, want %d fp=%s", len(rd.Rows), rd.Fingerprint, workers*perWorker*2, want)
	}
}

func TestWriteFaultMarksBroken(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s, _ := openStore(t, dir, Options{})
	d, f := mustCreate(t, s, "ds-wf", testRows(0, 3))
	mustAppend(t, d, f, 3, testRows(3, 2))
	durableFP := f.Sum()

	boom := errors.New("injected write fault")
	faultinject.Set(faultinject.DurableWrite, faultinject.FailWith(boom))
	if _, err := d.Append(testRows(5, 2), 7, "whatever"); !errors.Is(err, boom) {
		t.Fatalf("Append under fault: %v", err)
	}
	faultinject.Reset()
	// Sticky: the fault is cleared but the dataset stays read-only.
	if _, err := d.Append(testRows(5, 2), 7, "whatever"); err == nil {
		t.Fatal("broken dataset accepted an append")
	}
	if !d.broken() {
		t.Fatal("dataset not marked broken")
	}
	if st := s.Stats(); st.Broken != 1 {
		t.Fatalf("Stats.Broken = %d", st.Broken)
	}
	s.Close()

	// Reboot recovers the last durable prefix, cleanly.
	_, rec := openStore(t, dir, Options{})
	rd := rec.Datasets[0]
	if len(rd.Rows) != 5 || rd.Fingerprint != durableFP {
		t.Fatalf("recovered %d rows fp=%s, want 5 fp=%s", len(rd.Rows), rd.Fingerprint, durableFP)
	}
}

func TestFsyncFaultMarksBroken(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s, _ := openStore(t, dir, Options{})
	d, f := mustCreate(t, s, "ds-ff", testRows(0, 3))

	boom := errors.New("injected fsync fault")
	faultinject.Set(faultinject.DurableFsync, faultinject.FailWith(boom))
	f.AddRow([]string{"x", "y", "z"})
	tok, err := d.Append([][]string{{"x", "y", "z"}}, 4, f.Sum())
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := d.Sync(tok); !errors.Is(err, boom) {
		t.Fatalf("Sync under fault: %v", err)
	}
	faultinject.Reset()
	if !d.broken() {
		t.Fatal("fsync failure did not mark the dataset broken")
	}
}

func TestRenameFaultLeavesWALAuthoritative(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s, _ := openStore(t, dir, Options{SnapshotEvery: -1})
	d, f := mustCreate(t, s, "ds-rn", testRows(0, 4))
	mustAppend(t, d, f, 4, testRows(4, 4))
	want := f.Sum()

	boom := errors.New("injected rename fault")
	faultinject.Set(faultinject.DurableRename, faultinject.FailWith(boom))
	if err := d.compact(); !errors.Is(err, boom) {
		t.Fatalf("compact under fault: %v", err)
	}
	faultinject.Reset()
	if d.broken() {
		t.Fatal("failed compaction must not break the dataset")
	}
	if st := s.Stats(); st.CompactErrors != 1 {
		t.Fatalf("CompactErrors = %d", st.CompactErrors)
	}
	// No stray temp file, and the dataset still appends and compacts.
	if _, err := os.Stat(filepath.Join(dir, "datasets", "ds-rn", "snapshot.tmp")); !os.IsNotExist(err) {
		t.Fatal("snapshot.tmp left behind")
	}
	if err := d.compact(); err != nil {
		t.Fatalf("retry compact: %v", err)
	}
	s.Close()

	_, rec := openStore(t, dir, Options{})
	rd := rec.Datasets[0]
	if len(rd.Rows) != 8 || rd.Fingerprint != want {
		t.Fatalf("recovered %d rows fp=%s after failed+retried compaction", len(rd.Rows), rd.Fingerprint)
	}
}

func TestReplayFaultQuarantines(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s, _ := openStore(t, dir, Options{})
	d, f := mustCreate(t, s, "ds-rp", testRows(0, 3))
	mustAppend(t, d, f, 3, testRows(3, 2))
	s.Close()

	boom := errors.New("injected replay fault")
	faultinject.Set(faultinject.DurableReplay, faultinject.FailWith(boom))
	s2, rec := openStore(t, dir, Options{})
	faultinject.Reset()
	defer s2.Close()
	if len(rec.Quarantined) != 1 || !strings.Contains(rec.Quarantined[0].Reason, "replay fault") {
		t.Fatalf("recovery under replay fault: %+v", rec)
	}
}

func TestCreateFaultLeavesNoResidue(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s, _ := openStore(t, dir, Options{})
	boom := errors.New("injected create fault")
	faultinject.Set(faultinject.DurableWrite, faultinject.FailWith(boom))
	if _, err := s.Create("ds-cf", "t/cf", testNames, testRows(0, 2), "fp"); !errors.Is(err, boom) {
		t.Fatalf("Create under fault: %v", err)
	}
	faultinject.Reset()
	if _, err := os.Stat(filepath.Join(dir, "datasets", "ds-cf")); !os.IsNotExist(err) {
		t.Fatal("failed Create left its directory behind")
	}
	// The id is reusable after the failure.
	if _, err := s.Create("ds-cf", "t/cf", testNames, testRows(0, 2), ContentFingerprint(testNames, testRows(0, 2))); err != nil {
		t.Fatalf("Create retry: %v", err)
	}
}

func TestTokenSurvivesCompaction(t *testing.T) {
	// A token taken before a compaction must still resolve after it:
	// logical offsets never rewind with the file truncate.
	dir := t.TempDir()
	s, _ := openStore(t, dir, Options{SnapshotEvery: -1})
	d, f := mustCreate(t, s, "ds-tok", testRows(0, 2))
	f.AddRow([]string{"a", "b", "c"})
	tok, err := d.Append([][]string{{"a", "b", "c"}}, 3, f.Sum())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.compact(); err != nil {
		t.Fatal(err)
	}
	// The snapshot made the record durable; Sync must return immediately.
	if err := d.Sync(tok); err != nil {
		t.Fatalf("Sync on pre-compaction token: %v", err)
	}
	f.AddRow([]string{"d", "e", "f"})
	tok2, err := d.Append([][]string{{"d", "e", "f"}}, 4, f.Sum())
	if err != nil {
		t.Fatal(err)
	}
	if tok2 <= tok {
		t.Fatalf("token rewound across compaction: %d then %d", tok, tok2)
	}
	if err := d.Sync(tok2); err != nil {
		t.Fatal(err)
	}
}

func TestScanWALClassification(t *testing.T) {
	f := NewFingerprint(testNames)
	rows := testRows(0, 2)
	for _, r := range rows {
		f.AddRow(r)
	}
	reg := appendFrame(nil, encodeRegister("t/s", testNames, rows, f.Sum()))
	f.AddRow([]string{"q", "w", "e"})
	app := appendFrame(nil, encodeAppend(3, [][]string{{"q", "w", "e"}}, f.Sum()))
	log := append(append([]byte(nil), reg...), app...)

	cases := []struct {
		name    string
		data    []byte
		recs    int
		torn    bool
		badness string
	}{
		{"empty", nil, 0, false, ""},
		{"clean", log, 2, false, ""},
		{"short header", log[:len(reg)+3], 1, true, ""},
		{"short payload", log[:len(reg)+frameHeaderLen+2], 1, true, ""},
		{"torn final crc", flipLast(log), 1, true, ""},
		{"mid-log crc", flipAt(log, len(reg)/2), 0, false, "checksum mismatch"},
		// Garbage scans as torn-at-zero: a huge bogus length field is
		// indistinguishable from a torn length write. The fingerprint
		// check downstream is what rejects a "recovered" empty prefix.
		{"garbage", []byte("not a wal at all, definitely not"), 0, true, ""},
	}
	for _, tc := range cases {
		recs, _, torn, reason := scanWAL(tc.data)
		if len(recs) != tc.recs || torn != tc.torn {
			t.Errorf("%s: recs=%d torn=%v, want %d/%v (reason %q)", tc.name, len(recs), torn, tc.recs, tc.torn, reason)
		}
		if tc.badness == "" && reason != "" {
			t.Errorf("%s: unexpected quarantine reason %q", tc.name, reason)
		}
		if tc.badness != "" && !strings.Contains(reason, tc.badness) {
			t.Errorf("%s: reason %q, want %q", tc.name, reason, tc.badness)
		}
	}
}

func flipLast(b []byte) []byte {
	out := append([]byte(nil), b...)
	out[len(out)-1] ^= 0x10
	return out
}

func flipAt(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0x10
	return out
}

func TestFingerprintMatchesIncremental(t *testing.T) {
	rows := testRows(0, 9)
	f := NewFingerprint(testNames)
	for _, r := range rows {
		f.AddRow(r)
	}
	if got, want := f.Sum(), ContentFingerprint(testNames, rows); got != want {
		t.Fatalf("incremental %s != one-shot %s", got, want)
	}
	// Sum is non-consuming.
	if f.Sum() != f.Sum() {
		t.Fatal("Sum consumed the hash state")
	}
}
