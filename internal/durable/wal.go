// Package durable is the persistence layer of the serving stack: a
// per-dataset write-ahead log plus checksummed snapshots under a data
// directory, so registered datasets and their append history survive a
// crash — including kill -9 — with every acknowledged write intact.
//
// Layout under the data directory:
//
//	datasets/<id>/wal.log        length-framed, CRC32C-checksummed records
//	datasets/<id>/snapshot.snap  dictionary-encoded columnar snapshot
//	quarantine/<id>/             datasets recovery refused, plus REASON.json
//
// The write path is log-then-ack: a registration or append batch is
// framed, checksummed, written, and fsync'd before the server
// acknowledges it. Fsyncs are batched by group commit — while one fsync
// is in flight, subsequent writers append their frames and share the
// next one — so the cost of durability amortises under load (dataset.go).
//
// A background compactor folds a grown WAL into a snapshot written to a
// temp file, fsync'd, and atomically renamed, then truncates the log, so
// boot replays only the tail (snapshot.go, store.go).
//
// Recovery classifies damage conservatively (recover.go): a torn final
// record — the expected state after a crash mid-write — is truncated
// and the prefix served; anything worse (checksum failure mid-log, a
// malformed record, a fingerprint that does not match the recorded one)
// quarantines the dataset with a structured reason while the rest of the
// store boots normally.
package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Frame layout: u32 payload length, u32 CRC32C of the payload, payload.
const frameHeaderLen = 8

// maxRecordBytes bounds a single record; larger length fields are
// treated as corruption. It comfortably exceeds the server's request
// body cap, so no legitimate record can hit it.
const maxRecordBytes = 256 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record kinds.
const (
	recRegister = byte(1) // schema + label + initial rows
	recAppend   = byte(2) // one acknowledged append batch
)

// record is one decoded WAL entry. RowsAfter is the dataset's total row
// count once the record is applied — replay uses it to skip records the
// snapshot already covers and to detect sequence gaps — and FP is the
// content fingerprint at that point, recorded at write time.
type record struct {
	Kind      byte
	Name      string   // register only: the dataset's label
	Names     []string // register only: schema attribute names
	RowsAfter int
	Rows      [][]string
	FP        string
}

// appendFrame appends the framed, checksummed payload to dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// payload building blocks: length-prefixed strings and uvarints.

func putUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

func putString(dst []byte, s string) []byte {
	dst = putUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// payloadReader decodes record payloads with sticky error state, so the
// decoders read linearly and check once at the end.
type payloadReader struct {
	buf []byte
	off int
	err error
}

func (r *payloadReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *payloadReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail("payload truncated at byte %d", r.off)
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

func (r *payloadReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad uvarint at byte %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *payloadReader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail("string length %d overruns payload at byte %d", n, r.off)
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *payloadReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%d trailing bytes after record payload", len(r.buf)-r.off)
	}
	return nil
}

// encodeRegister builds the payload of a registration record.
func encodeRegister(name string, names []string, rows [][]string, fp string) []byte {
	p := []byte{recRegister}
	p = putString(p, name)
	p = putUvarint(p, uint64(len(names)))
	for _, n := range names {
		p = putString(p, n)
	}
	p = encodeRowsTail(p, len(rows), rows, fp)
	return p
}

// encodeAppend builds the payload of an append record.
func encodeAppend(rowsAfter int, rows [][]string, fp string) []byte {
	p := []byte{recAppend}
	p = encodeRowsTail(p, rowsAfter, rows, fp)
	return p
}

// encodeRowsTail writes the shared suffix: rowsAfter, the row batch, and
// the fingerprint after applying it.
func encodeRowsTail(p []byte, rowsAfter int, rows [][]string, fp string) []byte {
	p = putUvarint(p, uint64(rowsAfter))
	p = putUvarint(p, uint64(len(rows)))
	for _, row := range rows {
		p = putUvarint(p, uint64(len(row)))
		for _, v := range row {
			p = putString(p, v)
		}
	}
	return putString(p, fp)
}

// decodeRecord parses one payload. Structural damage returns an error —
// with the CRC already verified that means a writer bug or tampering,
// and replay quarantines rather than guesses.
func decodeRecord(payload []byte) (record, error) {
	r := &payloadReader{buf: payload}
	var rec record
	rec.Kind = r.byte()
	switch rec.Kind {
	case recRegister:
		rec.Name = r.string()
		nAttrs := r.uvarint()
		if nAttrs > uint64(len(payload)) { // coarse sanity before allocating
			return rec, fmt.Errorf("implausible attribute count %d", nAttrs)
		}
		rec.Names = make([]string, nAttrs)
		for i := range rec.Names {
			rec.Names[i] = r.string()
		}
	case recAppend:
	default:
		return rec, fmt.Errorf("unknown record kind %d", rec.Kind)
	}
	rec.RowsAfter = int(r.uvarint())
	nRows := r.uvarint()
	if nRows > uint64(len(payload)) {
		return rec, fmt.Errorf("implausible row count %d", nRows)
	}
	rec.Rows = make([][]string, nRows)
	for i := range rec.Rows {
		arity := r.uvarint()
		if arity > uint64(len(payload)) {
			return rec, fmt.Errorf("implausible arity %d", arity)
		}
		row := make([]string, arity)
		for a := range row {
			row[a] = r.string()
		}
		rec.Rows[i] = row
	}
	rec.FP = r.string()
	if err := r.done(); err != nil {
		return rec, err
	}
	if rec.RowsAfter < 0 || rec.RowsAfter > maxRecordBytes {
		return rec, fmt.Errorf("implausible rowsAfter %d", rec.RowsAfter)
	}
	return rec, nil
}

// scanWAL walks the log's frames. It returns the decoded records, the
// byte length of the valid prefix, whether a torn tail was dropped, and
// — for damage that truncation cannot explain — a quarantine reason.
//
// The classification rule: a frame that fails because the file ends
// inside it (short header, short payload, or a checksum mismatch on the
// final frame) is a torn tail — the expected aftermath of a crash
// mid-write — and the log is good up to the frame's start. A checksum
// mismatch or structural error with more log after it cannot come from a
// torn write, so the dataset is quarantined instead.
func scanWAL(data []byte) (recs []record, validLen int, torn bool, reason string) {
	off := 0
	for off < len(data) {
		if len(data)-off < frameHeaderLen {
			return recs, off, true, ""
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxRecordBytes || off+frameHeaderLen+n > len(data) {
			// The frame claims more bytes than the file holds (or an
			// absurd length, which a torn length field can also produce):
			// treat as torn and keep the prefix.
			return recs, off, true, ""
		}
		payload := data[off+frameHeaderLen : off+frameHeaderLen+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			if off+frameHeaderLen+n == len(data) {
				return recs, off, true, "" // torn final frame
			}
			return recs, off, false, fmt.Sprintf("checksum mismatch in record at offset %d", off)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return recs, off, false, fmt.Sprintf("malformed record at offset %d: %v", off, err)
		}
		recs = append(recs, rec)
		off += frameHeaderLen + n
	}
	return recs, off, false, ""
}
