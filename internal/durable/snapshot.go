package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// colstore is the in-memory dictionary-encoded columnar mirror of a
// dataset: per attribute, a dictionary of distinct values and a column of
// codes. It is what the compactor serialises into a snapshot, kept
// incrementally by Append so snapshotting never re-reads the WAL.
type colstore struct {
	names []string
	dicts []map[string]uint32
	vals  [][]string // code → value, per attribute
	cols  [][]uint32 // cols[a][t] is row t's code on attribute a
	rows  int
}

func newColstore(names []string) *colstore {
	c := &colstore{
		names: append([]string(nil), names...),
		dicts: make([]map[string]uint32, len(names)),
		vals:  make([][]string, len(names)),
		cols:  make([][]uint32, len(names)),
	}
	for a := range names {
		c.dicts[a] = make(map[string]uint32)
	}
	return c
}

func (c *colstore) appendRow(row []string) error {
	if len(row) != len(c.names) {
		return fmt.Errorf("durable: row arity %d, schema %d", len(row), len(c.names))
	}
	for a, v := range row {
		code, ok := c.dicts[a][v]
		if !ok {
			code = uint32(len(c.vals[a]))
			c.dicts[a][v] = code
			c.vals[a] = append(c.vals[a], v)
		}
		c.cols[a] = append(c.cols[a], code)
	}
	c.rows++
	return nil
}

// materialize decodes every row back to strings, in insertion order.
func (c *colstore) materialize() [][]string {
	rows := make([][]string, c.rows)
	for t := 0; t < c.rows; t++ {
		row := make([]string, len(c.names))
		for a := range c.names {
			row[a] = c.vals[a][c.cols[a][t]]
		}
		rows[t] = row
	}
	return rows
}

// snapshotMagic leads the snapshot file, before the standard frame, so a
// WAL accidentally dropped in its place fails fast.
var snapshotMagic = []byte("DMSNAP1\n")

// encodeSnapshot serialises the dataset's full state: label, schema,
// per-attribute dictionaries, uvarint-packed code columns, the row count,
// and the content fingerprint — all inside one checksummed frame.
func encodeSnapshot(name string, c *colstore, fp string) []byte {
	p := putString(nil, name)
	p = putUvarint(p, uint64(len(c.names)))
	for _, n := range c.names {
		p = putString(p, n)
	}
	p = putUvarint(p, uint64(c.rows))
	for a := range c.names {
		p = putUvarint(p, uint64(len(c.vals[a])))
		for _, v := range c.vals[a] {
			p = putString(p, v)
		}
		for _, code := range c.cols[a] {
			p = putUvarint(p, uint64(code))
		}
	}
	p = putString(p, fp)
	out := append([]byte(nil), snapshotMagic...)
	return appendFrame(out, p)
}

// decodeSnapshot rebuilds the columnar state from a snapshot file's
// bytes. Any damage — bad magic, checksum mismatch, structural error, an
// out-of-range code — returns an error; the caller quarantines, because
// with the WAL already compacted away there is nothing to fall back on.
func decodeSnapshot(data []byte) (name string, c *colstore, fp string, err error) {
	if len(data) < len(snapshotMagic) || string(data[:len(snapshotMagic)]) != string(snapshotMagic) {
		return "", nil, "", fmt.Errorf("bad snapshot magic")
	}
	body := data[len(snapshotMagic):]
	if len(body) < frameHeaderLen {
		return "", nil, "", fmt.Errorf("snapshot truncated")
	}
	n := int(binary.LittleEndian.Uint32(body[0:4]))
	if n > maxRecordBytes || frameHeaderLen+n != len(body) {
		return "", nil, "", fmt.Errorf("snapshot frame length %d does not match file size %d", n, len(body)-frameHeaderLen)
	}
	payload := body[frameHeaderLen:]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(body[4:8]) {
		return "", nil, "", fmt.Errorf("snapshot checksum mismatch")
	}

	r := &payloadReader{buf: payload}
	name = r.string()
	nAttrs := r.uvarint()
	if nAttrs > uint64(len(payload)) {
		return "", nil, "", fmt.Errorf("implausible attribute count %d", nAttrs)
	}
	names := make([]string, nAttrs)
	for i := range names {
		names[i] = r.string()
	}
	if r.err != nil {
		return "", nil, "", r.err
	}
	c = newColstore(names)
	rows := r.uvarint()
	if rows > uint64(len(payload)) {
		return "", nil, "", fmt.Errorf("implausible row count %d", rows)
	}
	c.rows = int(rows)
	for a := range names {
		dictSize := r.uvarint()
		if dictSize > uint64(len(payload)) {
			return "", nil, "", fmt.Errorf("implausible dictionary size %d", dictSize)
		}
		c.vals[a] = make([]string, dictSize)
		for code := range c.vals[a] {
			v := r.string()
			c.vals[a][code] = v
			c.dicts[a][v] = uint32(code)
		}
		if r.err == nil && len(c.vals[a]) != len(c.dicts[a]) {
			return "", nil, "", fmt.Errorf("duplicate dictionary value on attribute %d", a)
		}
		c.cols[a] = make([]uint32, c.rows)
		for t := 0; t < c.rows; t++ {
			code := r.uvarint()
			if r.err == nil && code >= dictSize {
				return "", nil, "", fmt.Errorf("code %d out of dictionary range %d", code, dictSize)
			}
			c.cols[a][t] = uint32(code)
		}
	}
	fp = r.string()
	if err := r.done(); err != nil {
		return "", nil, "", err
	}
	return name, c, fp, nil
}
