package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/faultinject"
)

// Token identifies a logged-but-possibly-unsynced WAL write: the logical
// byte offset its frame ends at. Sync(token) blocks until everything up
// to it is durable. Logical offsets grow monotonically for the life of
// the handle — compaction truncates the file but never rewinds them, so
// a token taken before a compaction stays valid after it.
type Token int64

// Dataset is the durable handle of one registered dataset: its WAL
// writer, group-commit syncer, and the columnar mirror the compactor
// snapshots. Appends may be issued concurrently; frames are written under
// an internal lock and fsyncs are shared (group commit).
type Dataset struct {
	id    string
	dir   string
	store *Store

	// wmu serialises frame writes, columnar updates, and compaction.
	wmu  sync.Mutex
	wal  *os.File
	cols *colstore
	name string
	rows int
	fp   string
	// tail counts append records since the last snapshot; at
	// SnapshotEvery the dataset is queued for compaction.
	tail int
	// walSize is the current WAL file size, reclaimed at compaction.
	walSize int64

	sy syncer
}

// syncer implements leader/follower group commit over one WAL file.
// Writers bump written under wmu; Sync waiters elect a leader that
// fsyncs once for every frame written so far, so concurrent appends
// share fsyncs instead of queueing one each. Errors are sticky: after a
// failed write or fsync the dataset stops accepting appends — the WAL
// tail can no longer be trusted to match memory — and recovery at next
// boot serves the last durable prefix.
type syncer struct {
	mu      sync.Mutex
	cond    *sync.Cond
	written Token // logical bytes framed into the WAL
	synced  Token // logical bytes known durable
	syncing bool  // a leader's fsync is in flight
	err     error // sticky failure

	pendingRecs int64 // records written but not yet durable
}

func (y *syncer) init() { y.cond = sync.NewCond(&y.mu) }

// fail records the sticky error and wakes every waiter.
func (y *syncer) fail(err error) {
	if y.err == nil {
		y.err = err
	}
	y.cond.Broadcast()
}

// ID returns the dataset's registry id (also its directory name).
func (d *Dataset) ID() string { return d.id }

// SnapshotInfo reports the dataset's snapshot path and whether the
// snapshot alone reproduces the full acknowledged state: a snapshot file
// exists and no append records landed after it. Such a snapshot can be
// streamed into discovery (durable.OpenSnapshotStream) instead of
// materialising the relation; the snapshot's embedded fingerprint lets
// readers re-verify against the registry after opening, so a compaction
// or append racing this check degrades to the materialised path, never
// to stale data.
func (d *Dataset) SnapshotInfo() (path string, complete bool) {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	path = filepath.Join(d.dir, "snapshot.snap")
	if d.tail != 0 {
		return path, false
	}
	if _, err := os.Stat(path); err != nil {
		return path, false
	}
	return path, true
}

// Append logs one acknowledged-to-be batch: rows were committed in
// memory, bringing the dataset to rowsAfter total rows with content
// fingerprint fp. The frame is written (not yet synced) and a Token is
// returned; the caller must Sync it before acknowledging the append.
// Splitting the two lets the caller drop its own dataset lock before the
// fsync wait, which is what makes group commit batch under load.
func (d *Dataset) Append(rows [][]string, rowsAfter int, fp string) (Token, error) {
	payload := encodeAppend(rowsAfter, rows, fp)
	frame := appendFrame(nil, payload)

	d.wmu.Lock()
	defer d.wmu.Unlock()
	d.sy.mu.Lock()
	serr := d.sy.err
	d.sy.mu.Unlock()
	if serr != nil {
		return 0, fmt.Errorf("durable: dataset %s: %w", d.id, serr)
	}
	if err := faultinject.Fire(faultinject.DurableWrite); err != nil {
		werr := fmt.Errorf("durable: wal write %s: %w", d.id, err)
		d.sy.mu.Lock()
		d.sy.fail(werr)
		d.sy.mu.Unlock()
		return 0, werr
	}
	if _, err := d.wal.Write(frame); err != nil {
		werr := fmt.Errorf("durable: wal write %s: %w", d.id, err)
		d.sy.mu.Lock()
		d.sy.fail(werr)
		d.sy.mu.Unlock()
		return 0, werr
	}
	for _, row := range rows {
		if err := d.cols.appendRow(row); err != nil {
			// Arity was validated upstream; reaching here is a bug, but
			// poison the dataset rather than diverge silently.
			d.sy.mu.Lock()
			d.sy.fail(err)
			d.sy.mu.Unlock()
			return 0, err
		}
	}
	d.rows = rowsAfter
	d.fp = fp
	d.tail++
	d.walSize += int64(len(frame))
	d.store.noteAppend(int64(len(frame)))
	if d.store.snapshotEvery > 0 && d.tail >= d.store.snapshotEvery {
		d.store.queueCompact(d)
	}

	d.sy.mu.Lock()
	d.sy.written += Token(len(frame))
	d.sy.pendingRecs++
	tok := d.sy.written
	d.sy.mu.Unlock()
	return tok, nil
}

// Sync blocks until everything up to tok is durable (fsync'd, or folded
// into a fsync'd snapshot by a concurrent compaction). With fsync
// disabled it returns immediately — the write already reached the OS.
func (d *Dataset) Sync(tok Token) error {
	if !d.store.fsync {
		return nil
	}
	y := &d.sy
	y.mu.Lock()
	defer y.mu.Unlock()
	for {
		if y.err != nil {
			return fmt.Errorf("durable: dataset %s: %w", d.id, y.err)
		}
		if y.synced >= tok {
			return nil
		}
		if !y.syncing {
			// Become the leader: one fsync covers every frame written so
			// far, including followers that queued behind this one.
			y.syncing = true
			mark := y.written
			covered := y.pendingRecs
			y.mu.Unlock()
			err := faultinject.Fire(faultinject.DurableFsync)
			if err == nil {
				err = d.wal.Sync()
			}
			y.mu.Lock()
			y.syncing = false
			if err != nil {
				y.fail(fmt.Errorf("fsync: %w", err))
				continue
			}
			if mark > y.synced {
				y.synced = mark
				batched := covered
				y.pendingRecs -= covered
				d.store.noteSync(batched)
			}
			y.cond.Broadcast()
			continue
		}
		y.cond.Wait()
	}
}

// compact folds the dataset's WAL into a snapshot: encode the columnar
// state, write it to a temp file, fsync, atomically rename it over the
// previous snapshot, fsync the directory, then truncate the WAL so
// recovery replays nothing. A crash between the rename and the truncate
// is benign — replay skips records the snapshot already covers. Errors
// leave the WAL untouched (still fully durable) and are only counted;
// the next trigger retries.
func (d *Dataset) compact() error {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	d.sy.mu.Lock()
	serr := d.sy.err
	d.sy.mu.Unlock()
	if serr != nil || d.tail == 0 {
		return nil
	}

	data := encodeSnapshot(d.name, d.cols, d.fp)
	tmp := filepath.Join(d.dir, "snapshot.tmp")
	final := filepath.Join(d.dir, "snapshot.snap")
	err := faultinject.Fire(faultinject.DurableWrite)
	if err == nil {
		err = writeFileSync(tmp, data)
	}
	if err == nil {
		err = faultinject.Fire(faultinject.DurableRename)
	}
	if err == nil {
		err = os.Rename(tmp, final)
	}
	if err == nil {
		err = syncDir(d.dir)
	}
	if err != nil {
		os.Remove(tmp)
		d.store.noteCompactError()
		return fmt.Errorf("durable: snapshot %s: %w", d.id, err)
	}
	// The snapshot now covers every logged record; truncate the WAL and
	// release any waiters — their frames are durable via the snapshot.
	if terr := d.wal.Truncate(0); terr != nil {
		d.sy.mu.Lock()
		d.sy.fail(fmt.Errorf("wal truncate after snapshot: %w", terr))
		d.sy.mu.Unlock()
		return terr
	}
	reclaimed := d.walSize
	d.walSize = 0
	d.tail = 0
	d.sy.mu.Lock()
	if d.sy.written > d.sy.synced {
		d.sy.synced = d.sy.written
		released := d.sy.pendingRecs
		d.sy.pendingRecs = 0
		d.sy.cond.Broadcast()
		d.sy.mu.Unlock()
		d.store.noteSnapshotBatched(released)
	} else {
		d.sy.mu.Unlock()
	}
	d.store.noteSnapshot(int64(len(data)), reclaimed)
	return nil
}

// writeFileSync writes data to path and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := faultinject.Fire(faultinject.DurableFsync); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := faultinject.Fire(faultinject.DurableFsync); err != nil {
		return err
	}
	return f.Sync()
}

// close releases the WAL handle.
func (d *Dataset) close() error {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if d.wal == nil {
		return nil
	}
	err := d.wal.Close()
	d.wal = nil
	return err
}

// broken reports whether the handle carries a sticky durability error.
func (d *Dataset) broken() bool {
	d.sy.mu.Lock()
	defer d.sy.mu.Unlock()
	return d.sy.err != nil
}
