package durable

import (
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedWAL builds a realistic multi-record WAL the fuzzer mutates.
func fuzzSeedWAL() []byte {
	names := []string{"user", "city", "val"}
	f := NewFingerprint(names)
	rows := testRows(0, 3)
	for _, r := range rows {
		f.AddRow(r)
	}
	wal := appendFrame(nil, encodeRegister("fuzz/seed", names, rows, f.Sum()))
	total := 3
	for b := 0; b < 4; b++ {
		batch := testRows(total, 2)
		for _, r := range batch {
			f.AddRow(r)
		}
		total += 2
		wal = appendFrame(wal, encodeAppend(total, batch, f.Sum()))
	}
	return wal
}

// FuzzWALReplay feeds mutated WAL bytes through full store recovery.
// Invariants under arbitrary damage: recovery never panics; a recovered
// dataset's content always matches its recorded fingerprint (so a
// mutation can truncate history or quarantine the dataset, but never
// yield a silently wrong one); everything else is quarantined or
// dropped, with the store still opening.
func FuzzWALReplay(f *testing.F) {
	seed := fuzzSeedWAL()
	f.Add(seed)
	f.Add(seed[:len(seed)-5])       // torn tail
	f.Add(flipAt(seed, 20))         // corrupt first record
	f.Add(flipAt(seed, len(seed)/2)) // corrupt mid-log
	f.Add([]byte{})                 // empty file
	f.Add([]byte("DMSNAP1\nnope"))  // snapshot magic in a WAL
	short := append([]byte(nil), seed[:frameHeaderLen+1]...)
	f.Add(short) // header with almost no payload

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		dsDir := filepath.Join(dir, "datasets", "ds-fuzz")
		if err := os.MkdirAll(dsDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dsDir, "wal.log"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, rec, err := Open(Options{Dir: dir, DisableFsync: true})
		if err != nil {
			// Open only errors on store-level I/O failures, which a WAL
			// byte pattern must never cause.
			t.Fatalf("Open failed on fuzzed WAL: %v", err)
		}
		defer s.Close()
		if len(rec.Datasets)+len(rec.Quarantined) > 1 {
			t.Fatalf("one input produced %d datasets + %d quarantined",
				len(rec.Datasets), len(rec.Quarantined))
		}
		for _, rd := range rec.Datasets {
			if got := ContentFingerprint(rd.Names, rd.Rows); got != rd.Fingerprint {
				t.Fatalf("recovered dataset fails its own fingerprint: %s != %s", got, rd.Fingerprint)
			}
		}
		for _, q := range rec.Quarantined {
			if q.Reason == "" {
				t.Fatal("quarantined without a reason")
			}
			if _, err := os.Stat(filepath.Join(q.Path, "REASON.json")); err != nil {
				t.Fatalf("quarantine missing REASON.json: %v", err)
			}
		}
		// Recovery must be idempotent: reopening reproduces the outcome.
		s.Close()
		s2, rec2, err := Open(Options{Dir: dir, DisableFsync: true})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer s2.Close()
		if len(rec2.Datasets) != len(rec.Datasets) {
			t.Fatalf("reopen recovered %d datasets, first pass %d", len(rec2.Datasets), len(rec.Datasets))
		}
		if len(rec.Datasets) == 1 && len(rec2.Datasets) == 1 {
			if rec2.Datasets[0].Fingerprint != rec.Datasets[0].Fingerprint {
				t.Fatal("reopen changed the recovered content")
			}
			if rec2.Datasets[0].Replayed != rec.Datasets[0].Replayed {
				t.Fatalf("reopen replayed %d records, first pass %d — torn-tail repair not durable",
					rec2.Datasets[0].Replayed, rec.Datasets[0].Replayed)
			}
		}
	})
}

// FuzzSnapshotDecode hardens the snapshot reader the same way: arbitrary
// bytes must decode cleanly or error, never panic, and a successful
// decode must round-trip.
func FuzzSnapshotDecode(f *testing.F) {
	c := newColstore([]string{"a", "b"})
	rows := [][]string{{"x", "1"}, {"y", "2"}, {"x", "2"}}
	for _, r := range rows {
		c.appendRow(r)
	}
	good := encodeSnapshot("fuzz/snap", c, ContentFingerprint([]string{"a", "b"}, rows))
	f.Add(good)
	f.Add(good[:len(good)-3])
	f.Add(flipAt(good, len(good)/2))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		name, c, fp, err := decodeSnapshot(data)
		if err != nil {
			return
		}
		c2Rows := c.materialize()
		reenc := encodeSnapshot(name, c, fp)
		name2, c2, fp2, err := decodeSnapshot(reenc)
		if err != nil {
			t.Fatalf("re-encode of accepted snapshot fails decode: %v", err)
		}
		if name2 != name || fp2 != fp || c2.rows != len(c2Rows) {
			t.Fatal("snapshot round-trip drifted")
		}
	})
}
