package durable

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
)

// Fingerprint is the running content hash identifying a dataset instance:
// SHA-256 over the length-framed schema names followed by every row's
// fields, in order. Length framing keeps ["ab","c"] distinct from
// ["a","bc"]. The serving registry maintains one per dataset (the result
// cache keys on it), the WAL records its value after every durable batch,
// and boot recovery recomputes it from the replayed content — the two
// must match or the dataset is quarantined, which is what rules out a
// silently wrong recovery.
type Fingerprint struct {
	h hash.Hash
}

// NewFingerprint starts the running hash of a dataset with the given
// schema, before any rows.
func NewFingerprint(names []string) *Fingerprint {
	f := &Fingerprint{h: sha256.New()}
	for _, n := range names {
		f.field(n)
	}
	return f
}

func (f *Fingerprint) field(s string) {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
	f.h.Write(n[:])
	f.h.Write([]byte(s))
}

// AddRow commits one row into the running hash.
func (f *Fingerprint) AddRow(row []string) {
	for _, v := range row {
		f.field(v)
	}
}

// Sum returns the current fingerprint as lowercase hex. It does not
// consume the state; more rows can be added after.
func (f *Fingerprint) Sum() string {
	return hex.EncodeToString(f.h.Sum(nil))
}

// ContentFingerprint computes the fingerprint of a complete relation in
// one call — what recovery compares against the value recorded at write
// time.
func ContentFingerprint(names []string, rows [][]string) string {
	f := NewFingerprint(names)
	for _, row := range rows {
		f.AddRow(row)
	}
	return f.Sum()
}
