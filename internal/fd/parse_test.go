package fd

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/attrset"
	"repro/internal/relation"
)

var schema = []string{"empnum", "depnum", "year", "depname", "mgr"}

func TestParseFD(t *testing.T) {
	cases := []struct {
		in   string
		want FD
	}{
		{"depnum, year -> empnum", mk("BC", 0)},
		{"depnum,year->empnum", mk("BC", 0)},
		{"depnum → depname", mk("B", 3)},
		{"-> mgr", FD{LHS: attrset.Empty(), RHS: 4}},
		{"∅ -> mgr", FD{LHS: attrset.Empty(), RHS: 4}},
		{"  empnum , mgr ->  year ", mk("AE", 2)},
	}
	for _, c := range cases {
		got, err := ParseFD(c.in, schema)
		if err != nil {
			t.Errorf("ParseFD(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseFD(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseFDErrors(t *testing.T) {
	bad := []string{
		"no arrow here",
		"a -> ",
		"empnum -> depnum, year", // multi-RHS
		"bogus -> empnum",
		"empnum -> bogus",
		"empnum,, -> mgr",
	}
	for _, in := range bad {
		if _, err := ParseFD(in, schema); err == nil {
			t.Errorf("ParseFD(%q) accepted", in)
		}
	}
}

func TestParseFDRoundTrip(t *testing.T) {
	// Names rendering parses back to the same FD.
	for _, f := range paperCover() {
		line := f.Names(schema)
		got, err := ParseFD(line, schema)
		if err != nil {
			t.Fatalf("round-trip %q: %v", line, err)
		}
		if got != f {
			t.Fatalf("round-trip %q = %v, want %v", line, got, f)
		}
	}
}

func TestParseCover(t *testing.T) {
	src := `
# the paper's single-attribute FDs
depnum -> depname
depnum -> mgr

year -> mgr
depname -> mgr
`
	cover, err := ParseCover(strings.NewReader(src), schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 4 {
		t.Fatalf("parsed %d FDs, want 4", len(cover))
	}
	r := relation.PaperExample()
	if ok, bad := AllHold(r, cover); !ok {
		t.Errorf("parsed FD %s should hold", bad)
	}
	if _, err := ParseCover(strings.NewReader("garbage\n"), schema); err == nil ||
		!strings.Contains(err.Error(), "line 1") {
		t.Errorf("line number missing from error: %v", err)
	}
}

func TestDerivation(t *testing.T) {
	c := paperCover()
	// D → E is implied via D → B, B → E.
	chain, ok := c.Derivation(set("D"), 4, 5)
	if !ok {
		t.Fatal("D → E should be derivable")
	}
	// The chain itself must imply the target and use only cover FDs.
	if !Cover(chain).Implies(mk("D", 4), 5) {
		t.Errorf("chain %v does not imply D → E", chain)
	}
	orig := make(map[FD]struct{})
	for _, f := range c {
		orig[f] = struct{}{}
	}
	for _, f := range chain {
		if _, in := orig[f]; !in {
			t.Errorf("chain FD %s not from the cover", f)
		}
	}
	// Underivable target.
	if _, ok := c.Derivation(set("A"), 1, 5); ok {
		t.Error("A → B should not be derivable")
	}
	// Trivial target: empty chain, ok.
	chain, ok = c.Derivation(set("AB"), 0, 5)
	if !ok || len(chain) != 0 {
		t.Errorf("trivial derivation = %v, %v", chain, ok)
	}
}

func TestDerivationPropertyMatchesImplies(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 150; iter++ {
		arity := 1 + rng.Intn(6)
		var c Cover
		for k := 0; k < rng.Intn(7); k++ {
			var lhs attrset.Set
			for b := 0; b < arity; b++ {
				if rng.Intn(3) == 0 {
					lhs.Add(b)
				}
			}
			c = append(c, FD{LHS: lhs, RHS: rng.Intn(arity)})
		}
		var x attrset.Set
		for b := 0; b < arity; b++ {
			if rng.Intn(2) == 0 {
				x.Add(b)
			}
		}
		a := rng.Intn(arity)
		chain, ok := c.Derivation(x, a, arity)
		want := c.Implies(FD{LHS: x, RHS: a}, arity)
		if ok != want {
			t.Fatalf("Derivation ok=%v, Implies=%v for %v → %d under %v", ok, want, x, a, c)
		}
		if ok && !x.Contains(a) {
			// Chain validity: LHS of each step ⊆ x ∪ earlier RHSs.
			avail := x
			for _, f := range chain {
				if !f.LHS.SubsetOf(avail) {
					t.Fatalf("chain step %s not enabled (avail %v)", f, avail)
				}
				avail.Add(f.RHS)
			}
			if !avail.Contains(a) {
				t.Fatalf("chain does not reach %d", a)
			}
		}
	}
}
