package fd

import (
	"repro/internal/attrset"
	"repro/internal/relation"
)

// Holds reports whether the FD holds in the relation (definition check,
// hash-grouping on the LHS projection).
func Holds(r *relation.Relation, f FD) bool {
	return r.Satisfies(f.LHS, f.RHS)
}

// AllHold reports whether every FD of the cover holds in the relation,
// returning the first violated FD otherwise.
func AllHold(r *relation.Relation, c Cover) (bool, FD) {
	for _, f := range c {
		if !Holds(r, f) {
			return false, f
		}
	}
	return true, FD{}
}

// IsMinimal reports whether f is a minimal FD of the relation: f holds and
// no proper-subset LHS determines the RHS.
func IsMinimal(r *relation.Relation, f FD) bool {
	if !Holds(r, f) {
		return false
	}
	ok := true
	f.LHS.ForEach(func(a attrset.Attr) {
		if r.Satisfies(f.LHS.Without(a), f.RHS) {
			ok = false
		}
	})
	return ok
}

// MineBrute discovers all minimal non-trivial FDs of a relation by
// enumerating every LHS subset per RHS attribute — O(2^|R|·|R|·|r|) ground
// truth for the test suite. It must only be used on small schemas.
func MineBrute(r *relation.Relation) Cover {
	n := r.Arity()
	var out Cover
	for a := 0; a < n; a++ {
		var lhss attrset.Family
		for bits := uint64(0); bits < 1<<uint(n); bits++ {
			var x attrset.Set
			for b := 0; b < n; b++ {
				if bits&(1<<uint(b)) != 0 {
					x.Add(b)
				}
			}
			if x.Contains(a) {
				continue // trivial
			}
			if r.Satisfies(x, a) {
				lhss = append(lhss, x)
			}
		}
		for _, x := range lhss.Minimal() {
			out = append(out, FD{LHS: x, RHS: a})
		}
	}
	out.Sort()
	return out
}

// DepBrute enumerates dep(r) restricted to non-trivial dependencies with
// single RHS — every X → A (minimal or not) that holds — as a Cover. Used
// by tests that need the full theory rather than a canonical cover.
func DepBrute(r *relation.Relation) Cover {
	n := r.Arity()
	var out Cover
	for a := 0; a < n; a++ {
		for bits := uint64(0); bits < 1<<uint(n); bits++ {
			var x attrset.Set
			for b := 0; b < n; b++ {
				if bits&(1<<uint(b)) != 0 {
					x.Add(b)
				}
			}
			if x.Contains(a) {
				continue
			}
			if r.Satisfies(x, a) {
				out = append(out, FD{LHS: x, RHS: a})
			}
		}
	}
	out.Sort()
	return out
}
