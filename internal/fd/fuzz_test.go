package fd

import (
	"strings"
	"testing"
)

// fuzzSchema is the fixed schema fuzzed FDs are resolved against. The
// names avoid the parser's meta-characters (commas, arrows, '∅') so a
// successfully parsed FD always renders back to a parseable line.
var fuzzSchema = []string{"alpha", "beta", "gamma", "delta", "eps"}

// FuzzParseFD asserts that ParseFD never panics on arbitrary input, and
// that every accepted line round-trips: rendering the parsed FD with
// attribute names and parsing it again yields the identical FD.
func FuzzParseFD(f *testing.F) {
	f.Add("alpha, beta -> gamma")
	f.Add("alpha→beta")
	f.Add("-> delta")
	f.Add("∅ -> eps")
	f.Add("  gamma ,alpha  ->  beta ")
	f.Add("alpha -> beta, gamma")
	f.Add("nope -> alpha")
	f.Add("alpha beta")
	f.Add("")
	f.Add("→")
	f.Add("alpha -> alpha")
	f.Fuzz(func(t *testing.T, line string) {
		parsed, err := ParseFD(line, fuzzSchema)
		if err != nil {
			return // rejected input; only the absence of a panic matters
		}
		rendered := parsed.Names(fuzzSchema)
		again, err := ParseFD(rendered, fuzzSchema)
		if err != nil {
			t.Fatalf("ParseFD(%q) accepted, but its rendering %q is rejected: %v",
				line, rendered, err)
		}
		if again != parsed {
			t.Fatalf("round trip not identical: %q parsed as %v, rendered %q, reparsed as %v",
				line, parsed, rendered, again)
		}
		// Accepted FDs must stay within the schema (Names would otherwise
		// have emitted a placeholder that cannot resolve back).
		if parsed.RHS < 0 || parsed.RHS >= len(fuzzSchema) {
			t.Fatalf("ParseFD(%q) returned out-of-schema RHS %d", line, parsed.RHS)
		}
	})
}

// FuzzParseCover asserts the line-oriented cover parser never panics and
// that accepted covers round-trip FD-by-FD through Names/ParseFD.
func FuzzParseCover(f *testing.F) {
	f.Add("alpha -> beta\n# comment\n\nbeta, gamma -> delta\n")
	f.Add("-> alpha")
	f.Add("# only a comment")
	f.Add("alpha ->")
	f.Fuzz(func(t *testing.T, text string) {
		cover, err := ParseCover(strings.NewReader(text), fuzzSchema)
		if err != nil {
			return
		}
		for _, parsed := range cover {
			again, err := ParseFD(parsed.Names(fuzzSchema), fuzzSchema)
			if err != nil || again != parsed {
				t.Fatalf("cover FD %v does not round-trip (got %v, err %v)", parsed, again, err)
			}
		}
	})
}
