// Package fd provides the functional-dependency theory substrate: FD
// values, covers, attribute-set closure, implication, cover equivalence,
// canonical covers and candidate keys.
//
// Discovery (Dep-Miner, TANE) produces covers of dep(r); this package
// supplies the algebra the rest of the system needs to validate, compare
// and exploit them — notably the linear-time closure algorithm
// (Beeri–Bernstein) behind implication tests, which the test suite uses to
// prove that two discovery algorithms found equivalent covers, and which
// the normaliser uses for key and projection computations.
package fd

import (
	"fmt"
	"slices"
	"strings"

	"repro/internal/attrset"
)

// FD is a functional dependency LHS → RHS with a single right-hand-side
// attribute, the normal form used throughout discovery (X → A).
type FD struct {
	LHS attrset.Set
	RHS attrset.Attr
}

// Trivial reports whether the dependency is trivial (A ∈ X).
func (f FD) Trivial() bool { return f.LHS.Contains(f.RHS) }

// String renders the FD in the paper's letter notation, e.g. "BC → A".
func (f FD) String() string {
	return f.LHS.String() + " → " + attrset.Single(f.RHS).String()
}

// Names renders the FD with attribute names, e.g. "depnum,year → empnum".
func (f FD) Names(names []string) string {
	rhs := "attr" + fmt.Sprint(f.RHS)
	if f.RHS < len(names) {
		rhs = names[f.RHS]
	}
	return f.LHS.Names(names, ",") + " → " + rhs
}

// Compare orders FDs by RHS, then by canonical LHS order; it returns -1,
// 0 or +1. Discovery emits FDs in this deterministic order.
func (f FD) Compare(g FD) int {
	if f.RHS != g.RHS {
		if f.RHS < g.RHS {
			return -1
		}
		return 1
	}
	return f.LHS.Compare(g.LHS)
}

// Cover is a list of FDs, interpreted as a set of dependencies over a
// schema.
type Cover []FD

// Sort orders the cover deterministically (by RHS, then LHS).
func (c Cover) Sort() {
	slices.SortFunc(c, FD.Compare)
}

// Dedup returns the cover without duplicate FDs, preserving first
// occurrences.
func (c Cover) Dedup() Cover {
	seen := make(map[FD]struct{}, len(c))
	out := make(Cover, 0, len(c))
	for _, f := range c {
		if _, dup := seen[f]; dup {
			continue
		}
		seen[f] = struct{}{}
		out = append(out, f)
	}
	return out
}

// String renders the cover one FD per line in its current order.
func (c Cover) String() string {
	var b strings.Builder
	for i, f := range c {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(f.String())
	}
	return b.String()
}

// ByRHS groups the cover's LHSs per right-hand-side attribute, for a
// schema of arity attributes: out[a] = {X | X → a ∈ c}.
func (c Cover) ByRHS(arity int) []attrset.Family {
	out := make([]attrset.Family, arity)
	for _, f := range c {
		if f.RHS < arity {
			out[f.RHS] = append(out[f.RHS], f.LHS)
		}
	}
	return out
}

// Closure computes X⁺ w.r.t. the cover: the set of attributes A with
// c ⊨ X → A, over a schema of arity attributes. It is the textbook
// linear-time algorithm: maintain an unsatisfied-LHS counter per FD and a
// work queue of newly derived attributes.
func (c Cover) Closure(x attrset.Set, arity int) attrset.Set {
	closure := x
	// Per-FD count of LHS attributes not yet in the closure.
	missing := make([]int, len(c))
	// fdsByAttr[a] lists FD indices having a in their LHS.
	fdsByAttr := make([][]int, arity)
	queue := make([]attrset.Attr, 0, arity)

	for i, f := range c {
		m := 0
		f.LHS.ForEach(func(a attrset.Attr) {
			if a >= arity {
				return
			}
			if !closure.Contains(a) {
				m++
				fdsByAttr[a] = append(fdsByAttr[a], i)
			}
		})
		missing[i] = m
		if m == 0 && f.RHS < arity && !closure.Contains(f.RHS) {
			closure.Add(f.RHS)
			queue = append(queue, f.RHS)
		}
	}
	for len(queue) > 0 {
		a := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, i := range fdsByAttr[a] {
			missing[i]--
			if missing[i] == 0 {
				rhs := c[i].RHS
				if rhs < arity && !closure.Contains(rhs) {
					closure.Add(rhs)
					queue = append(queue, rhs)
				}
			}
		}
	}
	return closure
}

// Implies reports whether the cover logically implies X → A
// (A ∈ X⁺ w.r.t. c).
func (c Cover) Implies(f FD, arity int) bool {
	return c.Closure(f.LHS, arity).Contains(f.RHS)
}

// Equivalent reports whether two covers over the same schema imply each
// other.
func (c Cover) Equivalent(d Cover, arity int) bool {
	for _, f := range d {
		if !c.Implies(f, arity) {
			return false
		}
	}
	for _, f := range c {
		if !d.Implies(f, arity) {
			return false
		}
	}
	return true
}

// IsClosed reports whether X is closed w.r.t. the cover: X⁺ = X.
func (c Cover) IsClosed(x attrset.Set, arity int) bool {
	return c.Closure(x, arity) == x
}

// ClosedSets enumerates CL(c), the family of closed sets, over a schema of
// arity attributes. Exponential in arity — intended for tests and small
// schemas (the Armstrong verification uses it on ≤ 20 attributes).
func (c Cover) ClosedSets(arity int) attrset.Family {
	var out attrset.Family
	for bits := uint64(0); bits < 1<<uint(arity); bits++ {
		var x attrset.Set
		for b := 0; b < arity; b++ {
			if bits&(1<<uint(b)) != 0 {
				x.Add(b)
			}
		}
		if c.IsClosed(x, arity) {
			out = append(out, x)
		}
	}
	out.Sort()
	return out
}

// Minimize returns a canonical cover: every FD minimal (no reducible LHS
// attribute) and no redundant FD. The result is sorted. The input is not
// modified.
func (c Cover) Minimize(arity int) Cover {
	work := c.Dedup()
	// Drop trivial FDs first.
	out := make(Cover, 0, len(work))
	for _, f := range work {
		if !f.Trivial() {
			out = append(out, f)
		}
	}
	// Left-reduce each FD.
	for i, f := range out {
		lhs := f.LHS
		for _, a := range f.LHS.Attrs() {
			reduced := lhs.Without(a)
			if out.Implies(FD{LHS: reduced, RHS: f.RHS}, arity) {
				lhs = reduced
			}
		}
		out[i].LHS = lhs
	}
	// Remove redundant FDs: f is redundant if the others (kept so far plus
	// not-yet-examined) imply it.
	out = out.Dedup()
	removed := make([]bool, len(out))
	for i := range out {
		removed[i] = true
		rest := make(Cover, 0, len(out)-1)
		for j := range out {
			if !removed[j] {
				rest = append(rest, out[j])
			}
		}
		if !rest.Implies(out[i], arity) {
			removed[i] = false
		}
	}
	kept := make(Cover, 0, len(out))
	for i := range out {
		if !removed[i] {
			kept = append(kept, out[i])
		}
	}
	kept.Sort()
	return kept
}

// Keys computes the candidate keys of a schema of arity attributes w.r.t.
// the cover: the minimal attribute sets X with X⁺ = R. It uses the
// classical reduction: attributes appearing in no RHS must be in every
// key; then a levelwise search over the remaining attributes.
func (c Cover) Keys(arity int) attrset.Family {
	all := attrset.Universe(arity)
	// Core: attributes never derived by any non-trivial FD must be in
	// every key.
	derived := attrset.Set{}
	for _, f := range c {
		if !f.Trivial() && f.RHS < arity {
			derived.Add(f.RHS)
		}
	}
	core := all.Diff(derived)
	if c.Closure(core, arity) == all {
		return attrset.Family{core}
	}
	// Levelwise over subsets of the derived attributes added to the core.
	// Minimal keys can have different sizes (e.g. {A} and {BC} under
	// A→BC, BC→A), so the whole lattice above the core is explored, with
	// supersets of found keys pruned.
	candidates := derived.Attrs()
	var keys attrset.Family
	level := []attrset.Set{core}
	seen := map[attrset.Set]struct{}{core: {}}
	for len(level) > 0 {
		var next []attrset.Set
		for _, x := range level {
			for _, a := range candidates {
				if x.Contains(a) {
					continue
				}
				y := x.With(a)
				if _, dup := seen[y]; dup {
					continue
				}
				seen[y] = struct{}{}
				dominated := false
				for _, k := range keys {
					if k.SubsetOf(y) {
						dominated = true
						break
					}
				}
				if dominated {
					continue
				}
				if c.Closure(y, arity) == all {
					keys = append(keys, y)
				} else {
					next = append(next, y)
				}
			}
		}
		level = next
	}
	keys = keys.Minimal()
	if len(keys) == 0 {
		// No subset closes to R: only R itself is a key.
		keys = attrset.Family{all}
	}
	keys.Sort()
	return keys
}
