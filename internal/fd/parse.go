package fd

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/attrset"
)

// ParseFD parses one functional dependency written as
//
//	lhs1, lhs2, ... -> rhs        (or the arrow "→")
//
// resolving attribute names against the given schema (case-sensitive,
// whitespace-trimmed). An empty left-hand side ("-> a" or "∅ -> a")
// denotes a constant-column dependency. Multiple right-hand-side
// attributes are rejected — split them into one FD per RHS, the normal
// form the discovery algorithms use.
func ParseFD(line string, names []string) (FD, error) {
	arrow := strings.Index(line, "->")
	alen := 2
	if arrow < 0 {
		arrow = strings.Index(line, "→")
		alen = len("→")
	}
	if arrow < 0 {
		return FD{}, fmt.Errorf("fd: %q has no arrow (use 'a, b -> c')", line)
	}
	lhsPart := strings.TrimSpace(line[:arrow])
	rhsPart := strings.TrimSpace(line[arrow+alen:])
	if rhsPart == "" {
		return FD{}, fmt.Errorf("fd: %q has an empty right-hand side", line)
	}
	if strings.ContainsAny(rhsPart, ",") {
		return FD{}, fmt.Errorf("fd: %q has multiple RHS attributes; write one FD per attribute", line)
	}
	rhs, err := resolve(rhsPart, names)
	if err != nil {
		return FD{}, err
	}
	var lhs attrset.Set
	if lhsPart != "" && lhsPart != "∅" {
		for _, tok := range strings.Split(lhsPart, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				return FD{}, fmt.Errorf("fd: %q has an empty LHS attribute", line)
			}
			a, err := resolve(tok, names)
			if err != nil {
				return FD{}, err
			}
			lhs.Add(a)
		}
	}
	return FD{LHS: lhs, RHS: rhs}, nil
}

func resolve(name string, names []string) (attrset.Attr, error) {
	for i, n := range names {
		if n == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("fd: unknown attribute %q (schema: %s)", name, strings.Join(names, ", "))
}

// ParseCover reads one FD per line (blank lines and lines starting with
// '#' are skipped) and returns the cover. The line number of the first
// error is included in the message.
func ParseCover(r io.Reader, names []string) (Cover, error) {
	var out Cover
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f, err := ParseFD(line, names)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, f)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fd: reading cover: %w", err)
	}
	return out, nil
}

// Derivation explains why the cover implies X → A: a sequence of FDs from
// the cover, each of whose LHS is contained in X plus the RHSs of the
// FDs before it, ending with one whose RHS is A. Returns ok = false when
// the cover does not imply the dependency.
//
// The chain is a by-product of the closure computation, so it is not
// guaranteed minimal — it is meant for the dba-facing "why does this
// hold?" question, not for proof normalisation.
func (c Cover) Derivation(x attrset.Set, a attrset.Attr, arity int) (chain Cover, ok bool) {
	if x.Contains(a) {
		return nil, true // trivial
	}
	closure := x
	used := make([]bool, len(c))
	for {
		progressed := false
		for i, f := range c {
			if used[i] || !f.LHS.SubsetOf(closure) || closure.Contains(f.RHS) {
				continue
			}
			used[i] = true
			chain = append(chain, f)
			closure.Add(f.RHS)
			progressed = true
			if f.RHS == a {
				return trim(chain, x, a), true
			}
		}
		if !progressed {
			return nil, false
		}
	}
}

// trim removes chain entries whose RHS contributes to neither the target
// nor any later-used LHS, front to back.
func trim(chain Cover, x attrset.Set, a attrset.Attr) Cover {
	needed := attrset.Single(a)
	kept := make([]bool, len(chain))
	for i := len(chain) - 1; i >= 0; i-- {
		if needed.Contains(chain[i].RHS) {
			kept[i] = true
			needed = needed.Union(chain[i].LHS)
		}
	}
	out := make(Cover, 0, len(chain))
	for i, f := range chain {
		if kept[i] {
			out = append(out, f)
		}
	}
	return out
}
