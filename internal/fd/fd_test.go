package fd

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/attrset"
	"repro/internal/relation"
)

func set(spec string) attrset.Set {
	s, ok := attrset.Parse(spec)
	if !ok {
		panic("bad spec " + spec)
	}
	return s
}

func mk(lhs string, rhs int) FD { return FD{LHS: set(lhs), RHS: rhs} }

// paperCover is the 14-FD cover of Example 11.
func paperCover() Cover {
	return Cover{
		mk("BC", 0), mk("CD", 0),
		mk("AC", 1), mk("AE", 1), mk("D", 1),
		mk("AB", 2), mk("AD", 2), mk("AE", 2),
		mk("AC", 3), mk("AE", 3), mk("B", 3),
		mk("B", 4), mk("C", 4), mk("D", 4),
	}
}

func TestFDBasics(t *testing.T) {
	f := mk("BC", 0)
	if f.String() != "BC → A" {
		t.Errorf("String = %q", f.String())
	}
	if f.Trivial() {
		t.Error("BC → A is not trivial")
	}
	if !mk("AB", 0).Trivial() {
		t.Error("AB → A is trivial")
	}
	names := []string{"empnum", "depnum", "year"}
	if got := mk("BC", 0).Names(names); got != "depnum,year → empnum" {
		t.Errorf("Names = %q", got)
	}
	if got := mk("A", 7).Names(names); got != "empnum → attr7" {
		t.Errorf("Names fallback = %q", got)
	}
}

func TestCompareAndSort(t *testing.T) {
	c := Cover{mk("CD", 0), mk("D", 1), mk("BC", 0)}
	c.Sort()
	want := []string{"BC → A", "CD → A", "D → B"}
	for i, f := range c {
		if f.String() != want[i] {
			t.Errorf("sorted[%d] = %s, want %s", i, f, want[i])
		}
	}
	if mk("A", 0).Compare(mk("A", 0)) != 0 {
		t.Error("self compare")
	}
}

func TestCoverStringDedupByRHS(t *testing.T) {
	c := Cover{mk("B", 4), mk("B", 4), mk("C", 4)}
	if d := c.Dedup(); len(d) != 2 {
		t.Errorf("Dedup len = %d", len(d))
	}
	if !strings.Contains(c.String(), "B → E") {
		t.Error("String missing FD")
	}
	groups := c.ByRHS(5)
	if len(groups[4]) != 3 || len(groups[0]) != 0 {
		t.Error("ByRHS wrong")
	}
}

func TestClosurePaperExample(t *testing.T) {
	c := paperCover()
	cases := []struct{ x, want string }{
		{"B", "BDE"},    // B → D, B → E
		{"D", "BDE"},    // D → B, chains to E
		{"C", "CE"},     // C → E
		{"A", "A"},      // A determines nothing alone
		{"BC", "ABCDE"}, // BC → A, then everything
		{"AE", "ABCDE"},
		{"", ""},
	}
	for _, tc := range cases {
		got := c.Closure(set(tc.x), 5)
		if got != set(tc.want) {
			t.Errorf("(%s)+ = %v, want %s", tc.x, got, tc.want)
		}
	}
}

func TestClosureChains(t *testing.T) {
	// A→B, B→C, C→D chain of length 3.
	c := Cover{mk("A", 1), mk("B", 2), mk("C", 3)}
	if got := c.Closure(set("A"), 4); got != set("ABCD") {
		t.Errorf("A+ = %v", got)
	}
	if got := c.Closure(set("C"), 4); got != set("CD") {
		t.Errorf("C+ = %v", got)
	}
	// Compound LHS only fires when complete.
	c2 := Cover{mk("AB", 2)}
	if got := c2.Closure(set("A"), 3); got != set("A") {
		t.Errorf("A+ = %v, AB → C should not fire", got)
	}
	if got := c2.Closure(set("AB"), 3); got != set("ABC") {
		t.Errorf("AB+ = %v", got)
	}
}

func TestImpliesAndEquivalent(t *testing.T) {
	c := paperCover()
	// Derived but not listed: D → E (D → B → E).
	if !c.Implies(mk("D", 4), 5) {
		t.Error("cover should imply D → E")
	}
	if c.Implies(mk("A", 1), 5) {
		t.Error("cover should not imply A → B")
	}
	// The paper's cover plus the derived D → E is equivalent.
	d := append(append(Cover{}, c...), mk("D", 4))
	if !c.Equivalent(d, 5) {
		t.Error("adding an implied FD must keep equivalence")
	}
	// Removing a redundant FD keeps equivalence: BC → A follows from
	// B → D and CD → A.
	e := append(Cover{}, c[1:]...) // drop BC → A
	if !c.Equivalent(e, 5) {
		t.Error("dropping the derivable BC → A must keep equivalence")
	}
	// Removing an essential FD breaks it: C → E is derivable from nothing
	// else (no other FD fires from {C}).
	var f Cover
	for _, x := range c {
		if x != mk("C", 4) {
			f = append(f, x)
		}
	}
	if c.Equivalent(f, 5) {
		t.Error("dropping C → E must break equivalence")
	}
}

func TestIsClosedAndClosedSets(t *testing.T) {
	c := paperCover()
	if !c.IsClosed(set("BDE"), 5) || !c.IsClosed(set("CE"), 5) || !c.IsClosed(set("A"), 5) {
		t.Error("paper maximal sets must be closed")
	}
	if c.IsClosed(set("B"), 5) {
		t.Error("B is not closed (B+ = BDE)")
	}
	cl := c.ClosedSets(5)
	// Closed sets must contain R, all maximal sets, and be intersection-
	// closed.
	if !cl.Contains(set("ABCDE")) {
		t.Error("R must be closed")
	}
	for _, m := range []string{"A", "BDE", "CE"} {
		if !cl.Contains(set(m)) {
			t.Errorf("maximal set %s must be closed", m)
		}
	}
	for _, x := range cl {
		for _, y := range cl {
			if !cl.Contains(x.Intersect(y)) {
				t.Fatalf("closed sets not intersection-closed: %v ∩ %v", x, y)
			}
		}
	}
}

func TestMinimize(t *testing.T) {
	// Redundant and non-minimal FDs collapse.
	c := Cover{
		mk("AB", 2), // AB → C, but A → C below makes B redundant
		mk("A", 2),  // A → C
		mk("A", 1),  // A → B
		mk("AC", 1), // implied by A → B
		mk("BC", 1), // kept: B,C alone do not give B... BC → B trivial? RHS=1=B, LHS=BC contains B → trivial
	}
	m := c.Minimize(3)
	want := Cover{mk("A", 1), mk("A", 2)}
	want.Sort()
	if len(m) != len(want) {
		t.Fatalf("Minimize = %v, want %v", m, want)
	}
	for i := range m {
		if m[i] != want[i] {
			t.Fatalf("Minimize = %v, want %v", m, want)
		}
	}
	if !m.Equivalent(c, 3) {
		t.Error("minimized cover must stay equivalent")
	}
}

func TestMinimizePaperCover(t *testing.T) {
	// The set of ALL minimal FDs is redundant as a cover (e.g. BC → A
	// follows from B → D and CD → A); Minimize must shrink it while
	// preserving equivalence.
	c := paperCover()
	m := c.Minimize(5)
	if len(m) >= len(c) {
		t.Fatalf("paper cover not reduced: %d → %d FDs", len(c), len(m))
	}
	if !m.Equivalent(c, 5) {
		t.Error("equivalence lost")
	}
	// Every FD of the reduced cover is one of the original minimal FDs
	// (left-reduction cannot invent new LHSs here since they are already
	// minimal w.r.t. the relation, hence w.r.t. the theory).
	orig := make(map[FD]struct{}, len(c))
	for _, f := range c {
		orig[f] = struct{}{}
	}
	for _, f := range m {
		if _, ok := orig[f]; !ok {
			t.Errorf("Minimize produced %s, not among the paper's minimal FDs", f)
		}
	}
}

func TestKeys(t *testing.T) {
	// Paper example: keys of R = ABCDE under the 14 FDs.
	c := paperCover()
	keys := c.Keys(5)
	// AE+ = R, BC → A..., BC+ = ABCDE, CD+ = ABCDE; AB+ = ABCDE (AB → C).
	// Check the well-known ones are present and all returned are minimal
	// keys.
	for _, k := range keys {
		if c.Closure(k, 5) != attrset.Universe(5) {
			t.Errorf("non-key %v returned", k)
		}
		k.ForEach(func(a attrset.Attr) {
			if c.Closure(k.Without(a), 5) == attrset.Universe(5) {
				t.Errorf("non-minimal key %v", k)
			}
		})
	}
	mustHave := []string{"AE", "BC", "CD", "AB", "AD", "AC"}
	for _, kk := range mustHave {
		if !keys.Contains(set(kk)) {
			t.Errorf("expected key %s missing from %v", kk, keys.Strings())
		}
	}
}

func TestKeysDifferentSizes(t *testing.T) {
	// A → B, A → C, BC → A over ABC: keys {A} and {BC} of different size.
	c := Cover{mk("A", 1), mk("A", 2), mk("BC", 0)}
	keys := c.Keys(3)
	want := attrset.Family{set("A"), set("BC")}
	if !keys.Equal(want) {
		t.Errorf("Keys = %v, want %v", keys.Strings(), want.Strings())
	}
}

func TestKeysNoFDs(t *testing.T) {
	keys := (Cover{}).Keys(3)
	if !keys.Equal(attrset.Family{set("ABC")}) {
		t.Errorf("Keys = %v, want {ABC}", keys.Strings())
	}
}

func TestKeysConstantDerivable(t *testing.T) {
	// ∅ → A (constant column), B is the key of AB.
	c := Cover{{LHS: attrset.Empty(), RHS: 0}}
	keys := c.Keys(2)
	if !keys.Equal(attrset.Family{set("B")}) {
		t.Errorf("Keys = %v, want {B}", keys.Strings())
	}
}

func TestHoldsAndMinimal(t *testing.T) {
	r := relation.PaperExample()
	if !Holds(r, mk("BC", 0)) {
		t.Error("BC → A holds")
	}
	if Holds(r, mk("B", 0)) {
		t.Error("B → A fails")
	}
	if !IsMinimal(r, mk("BC", 0)) {
		t.Error("BC → A is minimal")
	}
	if IsMinimal(r, mk("BCE", 0)) {
		t.Error("BCE → A is not minimal")
	}
	if IsMinimal(r, mk("B", 0)) {
		t.Error("B → A does not even hold")
	}
	ok, bad := AllHold(r, paperCover())
	if !ok {
		t.Errorf("paper cover should hold, %s violated", bad)
	}
	ok, bad = AllHold(r, Cover{mk("A", 1)})
	if ok || bad != mk("A", 1) {
		t.Error("AllHold should report A → B as violated")
	}
}

// TestMineBrutePaperExample: the brute-force miner reproduces the paper's
// 14 minimal FDs exactly.
func TestMineBrutePaperExample(t *testing.T) {
	got := MineBrute(relation.PaperExample())
	want := paperCover()
	want.Sort()
	if len(got) != len(want) {
		t.Fatalf("MineBrute found %d FDs, want %d:\n%s", len(got), len(want), got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("MineBrute[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestDepBruteContainsMinimalCover(t *testing.T) {
	r := relation.PaperExample()
	dep := DepBrute(r)
	min := MineBrute(r)
	depSet := make(map[FD]struct{}, len(dep))
	for _, f := range dep {
		depSet[f] = struct{}{}
	}
	for _, f := range min {
		if _, ok := depSet[f]; !ok {
			t.Errorf("minimal FD %s missing from dep(r)", f)
		}
	}
	// dep(r) is equivalent to its minimal cover.
	if !dep.Equivalent(min, r.Arity()) {
		t.Error("dep(r) not equivalent to minimal cover")
	}
}

// Property tests on random covers.
func TestPropertyClosureLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 200; iter++ {
		arity := 1 + rng.Intn(7)
		var c Cover
		for k := 0; k < rng.Intn(8); k++ {
			var lhs attrset.Set
			for b := 0; b < arity; b++ {
				if rng.Intn(3) == 0 {
					lhs.Add(b)
				}
			}
			c = append(c, FD{LHS: lhs, RHS: rng.Intn(arity)})
		}
		var x, y attrset.Set
		for b := 0; b < arity; b++ {
			if rng.Intn(2) == 0 {
				x.Add(b)
			}
			if rng.Intn(2) == 0 {
				y.Add(b)
			}
		}
		cx := c.Closure(x, arity)
		// Extensivity, idempotence, monotonicity.
		if !x.SubsetOf(cx) {
			t.Fatal("closure not extensive")
		}
		if c.Closure(cx, arity) != cx {
			t.Fatal("closure not idempotent")
		}
		if x.SubsetOf(y) && !cx.SubsetOf(c.Closure(y, arity)) {
			t.Fatal("closure not monotone")
		}
		// Minimize preserves equivalence.
		m := c.Minimize(arity)
		if !m.Equivalent(c, arity) {
			t.Fatalf("Minimize broke equivalence: %v vs %v", c, m)
		}
		// No trivial FDs and left-reduced.
		for _, f := range m {
			if f.Trivial() {
				t.Fatalf("trivial FD %s in minimized cover", f)
			}
			minimalLHS := true
			f.LHS.ForEach(func(a attrset.Attr) {
				if m.Implies(FD{LHS: f.LHS.Without(a), RHS: f.RHS}, arity) {
					minimalLHS = false
				}
			})
			if !minimalLHS {
				t.Fatalf("non-left-reduced FD %s in minimized cover", f)
			}
		}
	}
}

func TestPropertyMineBruteSoundComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 40; iter++ {
		arity := 1 + rng.Intn(4)
		rows := rng.Intn(12)
		cols := make([][]int, arity)
		for a := range cols {
			cols[a] = make([]int, rows)
			for i := range cols[a] {
				cols[a][i] = rng.Intn(3)
			}
		}
		r, err := relation.FromCodes(make([]string, arity), cols)
		if err != nil {
			t.Fatal(err)
		}
		c := MineBrute(r)
		for _, f := range c {
			if !IsMinimal(r, f) {
				t.Fatalf("MineBrute emitted non-minimal %s", f)
			}
			if f.Trivial() {
				t.Fatalf("MineBrute emitted trivial %s", f)
			}
		}
	}
}
