package server

// The metrics bridge: one statsSnapshot feeds both GET /v1/stats (JSON)
// and GET /metrics (Prometheus text). The JSON handler renders the
// snapshot directly; the registry sampler below maps the same snapshot
// onto declared metric families at scrape time. Neither endpoint has
// counters of its own, so the two can never disagree about a number.
// Only the HTTP request metrics (and build info) are native registry
// instruments — they have no /v1/stats counterpart.

import (
	"time"

	"repro/internal/obs"
	"repro/wire"
)

// metricPrefix namespaces every depminerd metric family.
const metricPrefix = "depminerd"

// statsSnapshot assembles the full operational state of the server —
// the single source both /v1/stats and the sampled /metrics families
// read from.
func (s *Server) statsSnapshot() StatsResponse {
	s.stats.mu.Lock()
	disc := DiscoveryStats{
		Total:           s.stats.total,
		Partial:         s.stats.partial,
		Failed:          s.stats.failed,
		Sync:            s.stats.sync,
		Async:           s.stats.async,
		SnapshotStreams: s.stats.snapshotStreams,
		PhaseTotalMS:    make(map[string]float64, len(s.stats.phases)),
	}
	for name, d := range s.stats.phases {
		disc.PhaseTotalMS[name] = float64(d) / float64(time.Millisecond)
	}
	ps := PstoreStats{
		Hits:       s.stats.pstore.Hits,
		Misses:     s.stats.pstore.Misses,
		Evictions:  s.stats.pstore.Evictions,
		Recomputes: s.stats.pstore.Recomputes,
		PeakBytes:  s.stats.pstore.PeakBytes,
	}
	sp := SpillStats{
		RunsSpilled:  s.stats.spill.RunsSpilled,
		SpilledSets:  s.stats.spill.SpilledSets,
		SpilledBytes: s.stats.spill.SpilledBytes,
		MergedRuns:   s.stats.spill.MergedRuns,
		ReadBlocks:   s.stats.spill.ReadBlocks,
	}
	shc := s.stats.shard
	s.stats.mu.Unlock()
	resp := StatsResponse{
		UptimeMS:    float64(time.Since(s.started)) / float64(time.Millisecond),
		Draining:    s.Draining(),
		Datasets:    s.reg.count(),
		Jobs:        s.jobs.stats(),
		Cache:       s.cache.stats(),
		Discoveries: disc,
		Pstore:      ps,
		Spill:       sp,
	}
	if s.store != nil {
		st := s.store.Stats()
		dur := &wire.DurableStats{
			Datasets:        st.Datasets,
			AppendRecords:   st.AppendRecords,
			Syncs:           st.Syncs,
			BatchedRecords:  st.BatchedRecords,
			Snapshots:       st.Snapshots,
			CompactErrors:   st.CompactErrors,
			WALBytes:        st.WALBytes,
			Recovered:       st.Recovered,
			ReplayedRecords: st.ReplayedRecords,
			TruncatedTails:  st.TruncatedTails,
			Quarantined:     st.Quarantined,
			Broken:          st.Broken,
		}
		for _, q := range s.recovery.Quarantined {
			dur.QuarantinedSets = append(dur.QuarantinedSets, wire.QuarantinedDataset{
				ID: q.ID, Reason: q.Reason, Path: q.Path,
			})
		}
		resp.Durable = dur
	}
	if s.coord != nil || shc.active() {
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		resp.Shard = &wire.ShardStats{
			Dispatched:      shc.dispatched,
			Remote:          shc.remote,
			LocalFallbacks:  shc.localFallbacks,
			DatasetsPushed:  shc.datasetsPushed,
			ReceivedSets:    shc.receivedSets,
			ReceivedBytes:   shc.receivedBytes,
			DispatchTotalMS: ms(shc.dispatchTime),
			StreamTotalMS:   ms(shc.streamTime),
			MergeTotalMS:    ms(shc.mergeTime),
			Served:          shc.served,
			ServedSets:      shc.servedSets,
			ServedErrors:    shc.servedErrors,
		}
	}
	return resp
}

// registerStatsMetrics declares the sampled metric families and installs
// the one sampler that maps a statsSnapshot onto them per scrape.
func (s *Server) registerStatsMetrics(reg *obs.Registry) {
	const p = metricPrefix
	type fam struct {
		name  string
		help  string
		gauge bool
	}
	fams := []fam{
		{p + "_uptime_seconds", "Seconds since the server started.", true},
		{p + "_draining", "1 once Shutdown began, 0 while serving.", true},
		{p + "_datasets", "Registered datasets.", true},

		{p + "_jobs_cap", "Admission cap on concurrently running discoveries.", true},
		{p + "_jobs_running", "Discoveries currently holding an admission slot.", true},
		{p + "_jobs_peak_running", "High-water mark of concurrently running discoveries.", true},
		{p + "_jobs_retained", "Retained finished async job records.", true},
		{p + "_jobs_admitted_total", "Discoveries admitted past the job cap.", false},
		{p + "_jobs_rejected_total", "Discoveries rejected with 429 at the job cap.", false},

		{p + "_cache_entries", "Result-cache entries resident.", true},
		{p + "_cache_hits_total", "Result-cache hits.", false},
		{p + "_cache_misses_total", "Result-cache misses.", false},
		{p + "_cache_evictions_total", "Result-cache LRU evictions.", false},
		{p + "_cache_invalidations_total", "Result-cache entries invalidated by appends.", false},

		{p + "_discoveries_total", "Discoveries finished, any outcome.", false},
		{p + "_discoveries_partial_total", "Discoveries cut off by governance (partial results).", false},
		{p + "_discoveries_failed_total", "Discoveries that failed outright.", false},
		{p + "_discoveries_sync_total", "Discoveries served synchronously.", false},
		{p + "_discoveries_async_total", "Discoveries served as async jobs.", false},
		{p + "_snapshot_streams_total", "Discoveries fed by streaming a durable snapshot.", false},
		{p + "_phase_seconds_total", "Cumulative discovery pipeline time by phase.", false},

		{p + "_pstore_hits_total", "Partition-store hits (tane).", false},
		{p + "_pstore_misses_total", "Partition-store misses (tane).", false},
		{p + "_pstore_evictions_total", "Partition-store evictions (tane).", false},
		{p + "_pstore_recomputes_total", "Partitions recomputed after eviction (tane).", false},
		{p + "_pstore_peak_bytes", "Peak resident partition bytes across tane runs.", true},

		{p + "_spill_runs_total", "Agree-set runs spilled to disk.", false},
		{p + "_spill_sets_total", "Agree sets written to spill runs.", false},
		{p + "_spill_bytes_total", "Bytes written to spill runs.", false},
		{p + "_spill_merged_runs_total", "Spill runs fed back through the k-way merge.", false},
		{p + "_spill_read_blocks_total", "CRC-framed blocks read back from spill runs.", false},

		{p + "_durable_datasets", "Datasets with a durable handle.", true},
		{p + "_durable_append_records_total", "WAL append records acknowledged.", false},
		{p + "_durable_syncs_total", "WAL fsync calls.", false},
		{p + "_durable_batched_records_total", "WAL records that shared a group-commit fsync.", false},
		{p + "_durable_snapshots_total", "Background snapshot compactions completed.", false},
		{p + "_durable_compact_errors_total", "Background compactions that failed.", false},
		{p + "_durable_wal_bytes", "Live WAL bytes on disk.", true},
		{p + "_durable_recovered", "Datasets recovered at the last boot.", true},
		{p + "_durable_replayed_records_total", "WAL records replayed at the last boot.", false},
		{p + "_durable_truncated_tails_total", "Torn WAL tails truncated at the last boot.", false},
		{p + "_durable_quarantined", "Datasets quarantined by recovery.", true},
		{p + "_durable_broken", "Datasets sticky-broken by a durability failure (read-only until restart).", true},

		{p + "_shard_dispatched_total", "Shards dispatched by this coordinator.", false},
		{p + "_shard_remote_total", "Shards served remotely by a worker.", false},
		{p + "_shard_local_fallbacks_total", "Shards computed locally after a remote failure.", false},
		{p + "_shard_datasets_pushed_total", "Datasets pushed to cold workers.", false},
		{p + "_shard_received_sets_total", "Agree sets received from worker streams.", false},
		{p + "_shard_received_bytes_total", "Bytes received from worker streams.", false},
		{p + "_shard_dispatch_seconds_total", "Cumulative dispatch time (request to first stream byte).", false},
		{p + "_shard_stream_seconds_total", "Cumulative stream-adoption time.", false},
		{p + "_shard_merge_seconds_total", "Cumulative coordinator merge time.", false},
		{p + "_shard_served_total", "Shard requests this worker served to completion.", false},
		{p + "_shard_served_sets_total", "Agree sets this worker streamed out.", false},
		{p + "_shard_served_errors_total", "Shard requests this worker failed.", false},
	}
	for _, f := range fams {
		kind := obs.KindCounterFamily
		if f.gauge {
			kind = obs.KindGaugeFamily
		}
		reg.DeclareSampled(f.name, f.help, kind)
	}

	reg.Sampler(func(emit obs.EmitFunc) {
		st := s.statsSnapshot()
		e := func(name string, v float64) { emit(name, nil, v) }
		b01 := func(b bool) float64 {
			if b {
				return 1
			}
			return 0
		}
		e(p+"_uptime_seconds", st.UptimeMS/1000)
		e(p+"_draining", b01(st.Draining))
		e(p+"_datasets", float64(st.Datasets))

		e(p+"_jobs_cap", float64(st.Jobs.Cap))
		e(p+"_jobs_running", float64(st.Jobs.Running))
		e(p+"_jobs_peak_running", float64(st.Jobs.PeakRunning))
		e(p+"_jobs_retained", float64(st.Jobs.Retained))
		e(p+"_jobs_admitted_total", float64(st.Jobs.Admitted))
		e(p+"_jobs_rejected_total", float64(st.Jobs.Rejected))

		e(p+"_cache_entries", float64(st.Cache.Entries))
		e(p+"_cache_hits_total", float64(st.Cache.Hits))
		e(p+"_cache_misses_total", float64(st.Cache.Misses))
		e(p+"_cache_evictions_total", float64(st.Cache.Evictions))
		e(p+"_cache_invalidations_total", float64(st.Cache.Invalidations))

		e(p+"_discoveries_total", float64(st.Discoveries.Total))
		e(p+"_discoveries_partial_total", float64(st.Discoveries.Partial))
		e(p+"_discoveries_failed_total", float64(st.Discoveries.Failed))
		e(p+"_discoveries_sync_total", float64(st.Discoveries.Sync))
		e(p+"_discoveries_async_total", float64(st.Discoveries.Async))
		e(p+"_snapshot_streams_total", float64(st.Discoveries.SnapshotStreams))
		for phase, ms := range st.Discoveries.PhaseTotalMS {
			emit(p+"_phase_seconds_total", []obs.Label{{Name: "phase", Value: phase}}, ms/1000)
		}

		e(p+"_pstore_hits_total", float64(st.Pstore.Hits))
		e(p+"_pstore_misses_total", float64(st.Pstore.Misses))
		e(p+"_pstore_evictions_total", float64(st.Pstore.Evictions))
		e(p+"_pstore_recomputes_total", float64(st.Pstore.Recomputes))
		e(p+"_pstore_peak_bytes", float64(st.Pstore.PeakBytes))

		e(p+"_spill_runs_total", float64(st.Spill.RunsSpilled))
		e(p+"_spill_sets_total", float64(st.Spill.SpilledSets))
		e(p+"_spill_bytes_total", float64(st.Spill.SpilledBytes))
		e(p+"_spill_merged_runs_total", float64(st.Spill.MergedRuns))
		e(p+"_spill_read_blocks_total", float64(st.Spill.ReadBlocks))

		if d := st.Durable; d != nil {
			e(p+"_durable_datasets", float64(d.Datasets))
			e(p+"_durable_append_records_total", float64(d.AppendRecords))
			e(p+"_durable_syncs_total", float64(d.Syncs))
			e(p+"_durable_batched_records_total", float64(d.BatchedRecords))
			e(p+"_durable_snapshots_total", float64(d.Snapshots))
			e(p+"_durable_compact_errors_total", float64(d.CompactErrors))
			e(p+"_durable_wal_bytes", float64(d.WALBytes))
			e(p+"_durable_recovered", float64(d.Recovered))
			e(p+"_durable_replayed_records_total", float64(d.ReplayedRecords))
			e(p+"_durable_truncated_tails_total", float64(d.TruncatedTails))
			e(p+"_durable_quarantined", float64(d.Quarantined))
			e(p+"_durable_broken", float64(d.Broken))
		}
		if sh := st.Shard; sh != nil {
			e(p+"_shard_dispatched_total", float64(sh.Dispatched))
			e(p+"_shard_remote_total", float64(sh.Remote))
			e(p+"_shard_local_fallbacks_total", float64(sh.LocalFallbacks))
			e(p+"_shard_datasets_pushed_total", float64(sh.DatasetsPushed))
			e(p+"_shard_received_sets_total", float64(sh.ReceivedSets))
			e(p+"_shard_received_bytes_total", float64(sh.ReceivedBytes))
			e(p+"_shard_dispatch_seconds_total", sh.DispatchTotalMS/1000)
			e(p+"_shard_stream_seconds_total", sh.StreamTotalMS/1000)
			e(p+"_shard_merge_seconds_total", sh.MergeTotalMS/1000)
			e(p+"_shard_served_total", float64(sh.Served))
			e(p+"_shard_served_sets_total", float64(sh.ServedSets))
			e(p+"_shard_served_errors_total", float64(sh.ServedErrors))
		}
	})
}
