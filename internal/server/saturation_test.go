package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/client"
	"repro/internal/leakcheck"
	"repro/internal/relation"
	"repro/wire"
)

// saturationSetup boots a server with a tight admission cap and a
// briefly-pinned job hook (so overload is guaranteed, not
// probabilistic), registers the paper's running example, and returns a
// client factory whose HTTP transport is torn down before the leak
// check runs. leakcheck.Check must be registered by the caller FIRST so
// its cleanup runs last.
func saturationSetup(t *testing.T, capJobs int, pin time.Duration) (*Server, string, func(opts ...client.Option) *client.Client) {
	t.Helper()
	s, ts := newTestServer(t, Config{MaxJobs: capJobs, SyncRowLimit: 1 << 20, RetryAfter: time.Second})
	s.testHookJobStart = func(string) { time.Sleep(pin) }
	reg := register(t, ts, relation.PaperExample())

	hc := &http.Client{}
	t.Cleanup(hc.CloseIdleConnections)
	mk := func(opts ...client.Option) *client.Client {
		return client.New(ts.URL, append([]client.Option{client.WithHTTPClient(hc)}, opts...)...)
	}
	return s, reg.ID, mk
}

// TestSaturationOutcomes is the tentpole invariant: at 4× the admission
// cap, with retries disabled, every single request must resolve to
// exactly one of {complete result, governed partial, 429 carrying a
// parseable Retry-After} — never a 5xx, never a hang, and never more
// than one of those classifications at once. Run under -race in CI; the
// leak check asserts the burst unwinds completely.
func TestSaturationOutcomes(t *testing.T) {
	leakcheck.Check(t)
	const capJobs = 2
	s, dsID, mk := saturationSetup(t, capJobs, 10*time.Millisecond)

	const clients = 4 * capJobs
	const perClient = 3
	var results, partials, rejected, unexpected atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := mk(client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 1}))
			for r := 0; r < perClient; r++ {
				req := wire.DiscoverRequest{Dataset: dsID}
				if (i+r)%3 == 2 {
					// A slice of the load runs under a 1-unit budget, so
					// governed partials appear among the outcomes.
					req.BudgetUnits = 1
				}
				resp, err := c.Discover(context.Background(), req)
				switch {
				case err == nil && resp != nil && !resp.Partial:
					results.Add(1)
				case errors.Is(err, client.ErrPartial) && resp != nil:
					partials.Add(1)
				case errors.Is(err, client.ErrTooManyRequests):
					var apiErr *client.APIError
					if !errors.As(err, &apiErr) || apiErr.RetryAfter <= 0 {
						t.Errorf("429 without a parseable Retry-After: %v", err)
						unexpected.Add(1)
						continue
					}
					rejected.Add(1)
				default:
					t.Errorf("request resolved outside the contract: resp=%v err=%v", resp, err)
					unexpected.Add(1)
				}
			}
		}(i)
	}
	wg.Wait()

	total := results.Load() + partials.Load() + rejected.Load()
	if got := total + unexpected.Load(); got != clients*perClient {
		t.Fatalf("outcomes %d != requests %d", got, clients*perClient)
	}
	if results.Load() == 0 {
		t.Error("no request completed under saturation")
	}
	if rejected.Load() == 0 {
		t.Error("4× overload produced no 429s — admission control did not engage")
	}
	if st := s.jobs.stats(); st.PeakRunning > capJobs {
		t.Fatalf("peak running %d exceeded the cap %d", st.PeakRunning, capJobs)
	}
	t.Logf("saturation: %d results, %d partials, %d rejected (cap %d, clients %d)",
		results.Load(), partials.Load(), rejected.Load(), capJobs, clients)
}

// TestSaturationBackoffRecovers is the recovery half of the contract:
// with retries enabled, every request the admission controller rejected
// must eventually complete — the client's backoff (honouring the 1s
// Retry-After) absorbs the overload instead of surfacing it.
func TestSaturationBackoffRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second backoff waves")
	}
	leakcheck.Check(t)
	const capJobs = 2
	s, dsID, mk := saturationSetup(t, capJobs, 10*time.Millisecond)

	var attempts429 atomic.Int64
	observer := func(a client.Attempt) {
		if a.Status == http.StatusTooManyRequests {
			attempts429.Add(1)
		}
	}

	const clients = 4 * capJobs
	var failed atomic.Int64
	var completed atomic.Int64
	var wg sync.WaitGroup
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := mk(
				client.WithRetryPolicy(client.RetryPolicy{
					MaxAttempts: 50,
					BaseDelay:   10 * time.Millisecond,
					MaxDelay:    time.Second,
				}),
				client.WithAttemptObserver(observer),
			)
			resp, err := c.Discover(ctx, wire.DiscoverRequest{Dataset: dsID})
			if err != nil && !errors.Is(err, client.ErrPartial) {
				t.Errorf("request never recovered: %v", err)
				failed.Add(1)
				return
			}
			if resp == nil || len(resp.FDs) == 0 {
				t.Errorf("recovered request returned no cover: %+v", resp)
				failed.Add(1)
				return
			}
			completed.Add(1)
		}()
	}
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d of %d requests did not recover", failed.Load(), clients)
	}
	if completed.Load() != clients {
		t.Fatalf("completed %d != clients %d", completed.Load(), clients)
	}
	if attempts429.Load() == 0 {
		t.Fatal("no 429 was ever observed — the test did not exercise recovery")
	}
	st := s.jobs.stats()
	if st.Rejected == 0 {
		t.Fatal("server counted no rejections")
	}
	t.Logf("recovery: %d clients completed through %d rejected attempts (server rejected %d)",
		completed.Load(), attempts429.Load(), st.Rejected)
}

// TestRetryAfterHeaderIsIntegerSeconds pins the RFC 9110 form on the
// wire: the 429's Retry-After must be a bare non-negative integer (no
// units, no date needed for our own hint) that the client parser
// accepts as delta-seconds.
func TestRetryAfterHeaderIsIntegerSeconds(t *testing.T) {
	for _, tc := range []struct {
		cfg  time.Duration
		want string
	}{
		{0, "1"},                      // default
		{time.Second, "1"},            // exact
		{1500 * time.Millisecond, "2"}, // rounded up, never early
		{3 * time.Second, "3"},
		{10 * time.Millisecond, "1"}, // floored at 1
	} {
		if got := retryAfterSeconds(Config{RetryAfter: tc.cfg}.withDefaults().RetryAfter); got != tc.want {
			t.Errorf("retryAfterSeconds(withDefaults %v) = %q, want %q", tc.cfg, got, tc.want)
		}
	}

	// And over the wire: saturate a cap-1 server and inspect the header.
	s, ts := newTestServer(t, Config{MaxJobs: 1, SyncRowLimit: 1 << 20, RetryAfter: 2 * time.Second})
	release := make(chan struct{})
	defer close(release)
	s.testHookJobStart = func(string) { <-release }
	reg := register(t, ts, relation.PaperExample())

	async := true
	if code := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: reg.ID, Async: &async}, nil); code != http.StatusAccepted {
		t.Fatalf("pin submission status = %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.jobs.stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("pinned job never started")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Post(ts.URL+"/v1/discover", "application/json",
		strings.NewReader(fmt.Sprintf(`{"dataset":%q}`, reg.ID)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want %q (integer delta-seconds)", got, "2")
	}
}
