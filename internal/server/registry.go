package server

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"sync"
	"time"

	"repro/internal/fd"
	"repro/internal/incremental"
	"repro/internal/relation"
)

// dataset is one registered relation: an incremental discovery session
// (the miner maintains ag(r) under appends) plus a running content
// fingerprint. The fingerprint commits the schema and every appended row
// in order, so it identifies the exact relation instance — the result
// cache keys on it, which makes append-then-discover a guaranteed miss
// and repeat discovery a guaranteed hit.
type dataset struct {
	id      string
	name    string
	created time.Time

	// mu serialises appends against snapshots and incremental
	// derivations, so every reader sees a consistent (rows, fingerprint)
	// pair.
	mu     sync.Mutex
	miner  *incremental.Miner
	hasher hash.Hash
	fp     string
	// version counts committed appends; the cached snapshot is keyed on
	// it so discoveries re-materialise the relation only after growth.
	version     int
	snap        *relation.Relation
	snapVersion int
}

// hashField writes one length-framed string into the running hash;
// framing keeps ["ab","c"] distinct from ["a","bc"].
func hashField(h hash.Hash, s string) {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
	h.Write(n[:])
	h.Write([]byte(s))
}

func hashRow(h hash.Hash, row []string) {
	for _, v := range row {
		hashField(h, v)
	}
}

// info snapshots the dataset's wire description.
func (d *dataset) info() DatasetInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DatasetInfo{
		ID:          d.id,
		Name:        d.name,
		Fingerprint: d.fp,
		Rows:        d.miner.Rows(),
		Attributes:  d.miner.Arity(),
		Names:       append([]string(nil), d.miner.Names()...),
		Version:     d.version,
		Created:     d.created,
	}
}

// snapshot returns the materialised relation and the fingerprint it
// corresponds to, rebuilding only when appends happened since the last
// call.
func (d *dataset) snapshot() (*relation.Relation, string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.snap == nil || d.snapVersion != d.version {
		r, err := d.miner.Snapshot()
		if err != nil {
			return nil, "", err
		}
		d.snap = r
		d.snapVersion = d.version
	}
	return d.snap, d.fp, nil
}

// appendRows commits rows to the incremental session, updating ag(r) and
// the running fingerprint per committed row. On a mid-append abort
// (deadline, cancellation, bad arity) the rows inserted so far stay
// committed and the fingerprint reflects exactly them, so the dataset
// remains consistent; the count of committed rows is returned either way.
func (d *dataset) appendRows(ctx context.Context, rows [][]string) (committed int, fp string, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, row := range rows {
		if ierr := d.miner.InsertCtx(ctx, row); ierr != nil {
			err = ierr
			break
		}
		hashRow(d.hasher, row)
		d.version++
		committed++
	}
	if committed > 0 {
		d.fp = hex.EncodeToString(d.hasher.Sum(nil))
	}
	return committed, d.fp, err
}

// deriveCover re-derives the canonical cover from the maintained agree
// sets (steps 2–4 only — no re-scan of the data; cost independent of the
// row count). The lock holds appends off so the cover matches the
// returned fingerprint.
func (d *dataset) deriveCover(ctx context.Context) (fd.Cover, DatasetInfo, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cover, err := d.miner.Cover(ctx)
	info := DatasetInfo{
		ID:          d.id,
		Name:        d.name,
		Fingerprint: d.fp,
		Rows:        d.miner.Rows(),
		Attributes:  d.miner.Arity(),
		Names:       append([]string(nil), d.miner.Names()...),
		Version:     d.version,
		Created:     d.created,
	}
	return cover, info, err
}

// registry is the server's dataset store.
type registry struct {
	mu   sync.RWMutex
	max  int
	byID map[string]*dataset
	ids  []string // registration order, for stable listings
}

func newRegistry(max int) *registry {
	return &registry{max: max, byID: make(map[string]*dataset)}
}

// errRegistryFull distinguishes the capacity rejection for the handler's
// status-code mapping.
var errRegistryFull = fmt.Errorf("dataset registry full")

// register adds a relation under a content-derived id. Registering
// byte-identical content again returns the existing dataset (idempotent),
// provided it has not been grown since; grown or colliding datasets get a
// fresh suffixed id.
func (r *registry) register(name string, rel *relation.Relation, m *incremental.Miner, now time.Time) (*dataset, bool, error) {
	h := sha256.New()
	for _, n := range rel.Names() {
		hashField(h, n)
	}
	for t := 0; t < rel.Rows(); t++ {
		hashRow(h, rel.Row(t))
	}
	fp := hex.EncodeToString(h.Sum(nil))
	base := "ds-" + fp[:12]

	r.mu.Lock()
	defer r.mu.Unlock()
	id := base
	for n := 2; ; n++ {
		existing, ok := r.byID[id]
		if !ok {
			break
		}
		existing.mu.Lock()
		same := existing.fp == fp
		existing.mu.Unlock()
		if same {
			return existing, false, nil
		}
		id = fmt.Sprintf("%s-%d", base, n)
	}
	if r.max > 0 && len(r.byID) >= r.max {
		return nil, false, fmt.Errorf("%w: %d datasets registered (cap %d)", errRegistryFull, len(r.byID), r.max)
	}
	d := &dataset{
		id:      id,
		name:    name,
		created: now,
		miner:   m,
		hasher:  h,
		fp:      fp,
	}
	r.byID[id] = d
	r.ids = append(r.ids, id)
	return d, true, nil
}

func (r *registry) get(id string) (*dataset, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.byID[id]
	return d, ok
}

func (r *registry) list() []DatasetInfo {
	r.mu.RLock()
	ds := make([]*dataset, 0, len(r.ids))
	for _, id := range r.ids {
		ds = append(ds, r.byID[id])
	}
	r.mu.RUnlock()
	out := make([]DatasetInfo, len(ds))
	for i, d := range ds {
		out[i] = d.info()
	}
	return out
}

func (r *registry) count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID)
}
