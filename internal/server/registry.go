package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/durable"
	"repro/internal/fd"
	"repro/internal/incremental"
	"repro/internal/relation"
)

// dataset is one registered relation: an incremental discovery session
// (the miner maintains ag(r) under appends) plus a running content
// fingerprint. The fingerprint commits the schema and every appended row
// in order, so it identifies the exact relation instance — the result
// cache keys on it, which makes append-then-discover a guaranteed miss
// and repeat discovery a guaranteed hit. The same fingerprint is logged
// with every durable record, which is what recovery verifies against.
type dataset struct {
	id      string
	name    string
	created time.Time

	// mu serialises appends against snapshots and incremental
	// derivations, so every reader sees a consistent (rows, fingerprint)
	// pair.
	mu     sync.Mutex
	miner  *incremental.Miner
	hasher *durable.Fingerprint
	fp     string
	// version counts committed appends; the cached snapshot is keyed on
	// it so discoveries re-materialise the relation only after growth.
	version     int
	snap        *relation.Relation
	snapVersion int

	// dur is the dataset's durable handle; nil when the server runs
	// memory-only (no -data-dir). brokenErr is the sticky durability
	// failure: once the WAL cannot be trusted to match memory the
	// dataset stops accepting appends and serves reads only.
	dur       *durable.Dataset
	brokenErr error
}

// info snapshots the dataset's wire description.
func (d *dataset) info() DatasetInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DatasetInfo{
		ID:          d.id,
		Name:        d.name,
		Fingerprint: d.fp,
		Rows:        d.miner.Rows(),
		Attributes:  d.miner.Arity(),
		Names:       append([]string(nil), d.miner.Names()...),
		Version:     d.version,
		Created:     d.created,
	}
}

// fingerprint returns the dataset's current content fingerprint.
func (d *dataset) fingerprint() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.fp
}

// snapshot returns the materialised relation and the fingerprint it
// corresponds to, rebuilding only when appends happened since the last
// call.
func (d *dataset) snapshot() (*relation.Relation, string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.snap == nil || d.snapVersion != d.version {
		r, err := d.miner.Snapshot()
		if err != nil {
			return nil, "", err
		}
		d.snap = r
		d.snapVersion = d.version
	}
	return d.snap, d.fp, nil
}

// errDurability marks appends (or registrations) refused because the
// durable layer failed; the handler maps it to 503. Once raised for a
// dataset it is sticky: memory may be ahead of the last durable record,
// so the dataset serves reads only until the operator restarts — at
// which point recovery rebuilds exactly the durable prefix.
var errDurability = fmt.Errorf("durability failure")

// appendRows commits rows to the incremental session, updating ag(r) and
// the running fingerprint per committed row. On a mid-append abort
// (deadline, cancellation, bad arity) the rows inserted so far stay
// committed and the fingerprint reflects exactly them, so the dataset
// remains consistent; the count of committed rows is returned either way.
//
// With durability on, the committed prefix is logged and fsync'd before
// returning: the WAL frame is written under the dataset lock, then the
// lock is released before the group-commit wait, so concurrent appends
// to other datasets — and later appends to this one queued behind the
// lock — overlap the fsync instead of serialising on it.
func (d *dataset) appendRows(ctx context.Context, rows [][]string) (committed int, fp string, err error) {
	d.mu.Lock()
	if d.brokenErr != nil {
		fp = d.fp
		d.mu.Unlock()
		return 0, fp, fmt.Errorf("%w: %v", errDurability, d.brokenErr)
	}
	for _, row := range rows {
		if ierr := d.miner.InsertCtx(ctx, row); ierr != nil {
			err = ierr
			break
		}
		d.hasher.AddRow(row)
		d.version++
		committed++
	}
	if committed > 0 {
		d.fp = d.hasher.Sum()
	}
	fp = d.fp
	if d.dur == nil || committed == 0 {
		d.mu.Unlock()
		return committed, fp, err
	}
	// A WAL write failure supersedes any insert error: the dataset is now
	// broken and the caller must not acknowledge the batch.
	tok, werr := d.dur.Append(rows[:committed], d.miner.Rows(), d.fp)
	if werr != nil {
		d.brokenErr = werr
		d.mu.Unlock()
		return committed, fp, fmt.Errorf("%w: %v", errDurability, werr)
	}
	d.mu.Unlock()
	if serr := d.dur.Sync(tok); serr != nil {
		d.mu.Lock()
		if d.brokenErr == nil {
			d.brokenErr = serr
		}
		d.mu.Unlock()
		return committed, fp, fmt.Errorf("%w: %v", errDurability, serr)
	}
	return committed, fp, err
}

// deriveCover re-derives the canonical cover from the maintained agree
// sets (steps 2–4 only — no re-scan of the data; cost independent of the
// row count). The lock holds appends off so the cover matches the
// returned fingerprint.
func (d *dataset) deriveCover(ctx context.Context) (fd.Cover, DatasetInfo, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cover, err := d.miner.Cover(ctx)
	info := DatasetInfo{
		ID:          d.id,
		Name:        d.name,
		Fingerprint: d.fp,
		Rows:        d.miner.Rows(),
		Attributes:  d.miner.Arity(),
		Names:       append([]string(nil), d.miner.Names()...),
		Version:     d.version,
		Created:     d.created,
	}
	return cover, info, err
}

// registry is the server's dataset store.
type registry struct {
	mu   sync.RWMutex
	max  int
	byID map[string]*dataset
	ids  []string // registration order, for stable listings
}

func newRegistry(max int) *registry {
	return &registry{max: max, byID: make(map[string]*dataset)}
}

// errRegistryFull distinguishes the capacity rejection for the handler's
// status-code mapping.
var errRegistryFull = fmt.Errorf("dataset registry full")

// durableCreate persists a new dataset's registration record before it
// becomes visible; nil when the server runs memory-only. It is invoked
// under the registry lock — registration is rare, so one fsync there is
// acceptable and guarantees no window where a dataset is addressable but
// not durable.
type durableCreate func(id, fp string) (*durable.Dataset, error)

// register adds a relation under a content-derived id. Registering
// byte-identical content again returns the existing dataset (idempotent),
// provided it has not been grown since; grown or colliding datasets get a
// fresh suffixed id. With durability on, the registration record is
// logged and fsync'd (via create) before the dataset is published.
func (r *registry) register(name string, rel *relation.Relation, m *incremental.Miner, now time.Time, create durableCreate) (*dataset, bool, error) {
	h := durable.NewFingerprint(rel.Names())
	for t := 0; t < rel.Rows(); t++ {
		h.AddRow(rel.Row(t))
	}
	fp := h.Sum()
	base := "ds-" + fp[:12]

	r.mu.Lock()
	defer r.mu.Unlock()
	id := base
	for n := 2; ; n++ {
		existing, ok := r.byID[id]
		if !ok {
			break
		}
		existing.mu.Lock()
		same := existing.fp == fp
		existing.mu.Unlock()
		if same {
			return existing, false, nil
		}
		id = fmt.Sprintf("%s-%d", base, n)
	}
	if r.max > 0 && len(r.byID) >= r.max {
		return nil, false, fmt.Errorf("%w: %d datasets registered (cap %d)", errRegistryFull, len(r.byID), r.max)
	}
	var dur *durable.Dataset
	if create != nil {
		var err error
		dur, err = create(id, fp)
		if err != nil {
			return nil, false, fmt.Errorf("%w: %v", errDurability, err)
		}
	}
	d := &dataset{
		id:      id,
		name:    name,
		created: now,
		miner:   m,
		hasher:  h,
		fp:      fp,
		dur:     dur,
	}
	r.byID[id] = d
	r.ids = append(r.ids, id)
	return d, true, nil
}

// restore publishes a dataset recovered from disk at boot: the relation
// and incremental session are rebuilt from the replayed rows and the
// fingerprint is recomputed once more on the registry's own hasher — a
// final cross-check that the recovered content is exactly what was
// acknowledged.
func (r *registry) restore(rd durable.RecoveredDataset, dur *durable.Dataset, now time.Time) error {
	rel, err := relation.FromRows(rd.Names, rd.Rows)
	if err != nil {
		return fmt.Errorf("restoring %s: %w", rd.ID, err)
	}
	m, err := incremental.FromRelation(rel)
	if err != nil {
		return fmt.Errorf("restoring %s: %w", rd.ID, err)
	}
	h := durable.NewFingerprint(rd.Names)
	for _, row := range rd.Rows {
		h.AddRow(row)
	}
	if got := h.Sum(); got != rd.Fingerprint {
		return fmt.Errorf("restoring %s: rebuilt fingerprint %s does not match recovered %s", rd.ID, got, rd.Fingerprint)
	}
	d := &dataset{
		id:      rd.ID,
		name:    rd.Name,
		created: now,
		miner:   m,
		hasher:  h,
		fp:      rd.Fingerprint,
		dur:     dur,
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byID[rd.ID]; ok {
		return fmt.Errorf("restoring %s: id already registered", rd.ID)
	}
	r.byID[rd.ID] = d
	r.ids = append(r.ids, rd.ID)
	return nil
}

func (r *registry) get(id string) (*dataset, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.byID[id]
	return d, ok
}

// findByFingerprint resolves a dataset by content fingerprint — the
// address shard requests use, so a worker provably computes over the
// same bytes the coordinator planned against. Linear in the registry
// size, which is capped small (MaxDatasets).
func (r *registry) findByFingerprint(fp string) (*dataset, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, id := range r.ids {
		d := r.byID[id]
		if d.fingerprint() == fp {
			return d, true
		}
	}
	return nil, false
}

func (r *registry) list() []DatasetInfo {
	r.mu.RLock()
	ds := make([]*dataset, 0, len(r.ids))
	for _, id := range r.ids {
		ds = append(ds, r.byID[id])
	}
	r.mu.RUnlock()
	out := make([]DatasetInfo, len(ds))
	for i, d := range ds {
		out[i] = d.info()
	}
	return out
}

func (r *registry) count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID)
}
