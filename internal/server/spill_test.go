package server

import (
	"net/http"
	"testing"

	"repro/internal/datagen"
)

// TestSpillOverWire runs a discovery under a 1-byte agree cap so every
// worker accumulator spills: the cover must be byte-identical to the
// in-memory reference, the response must carry the spill counters, and
// /v1/stats must aggregate them.
func TestSpillOverWire(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxAgreeBytes: 1, SpillDir: t.TempDir()})
	r, err := datagen.Generate(datagen.Spec{Attrs: 6, Rows: 80, Correlation: 0.4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	reg := register(t, ts, r)

	var resp DiscoverResponse
	code := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: reg.ID}, &resp)
	if code != http.StatusOK {
		t.Fatalf("discover status = %d (%s)", code, resp.Error)
	}
	if resp.Partial {
		t.Fatalf("spilled discovery reported partial: %s", resp.Error)
	}
	if !sameCover(resp.FDs, fromScratchCover(t, r)) {
		t.Fatalf("spilled cover differs from in-memory reference:\n%v", resp.FDs)
	}
	if resp.SpilledRuns == 0 || resp.SpilledBytes == 0 {
		t.Fatalf("expected spill counters in response, got runs=%d bytes=%d",
			resp.SpilledRuns, resp.SpilledBytes)
	}

	var st StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	if st.Spill.RunsSpilled == 0 || st.Spill.SpilledBytes == 0 || st.Spill.MergedRuns == 0 {
		t.Fatalf("stats missing spill counters: %+v", st.Spill)
	}
}

// TestSpillParamValidation pins the knob contract: negative caps are 400,
// and requests are clamped under the server-wide MaxAgreeBytes exactly
// like budget units.
func TestSpillParamValidation(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxAgreeBytes: 4096})
	r, err := datagen.Generate(datagen.Spec{Attrs: 3, Rows: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg := register(t, ts, r)

	code := postJSON(t, ts.URL+"/v1/discover",
		DiscoverRequest{Dataset: reg.ID, MaxAgreeBytes: -1}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("negative max_agree_bytes: status = %d, want 400", code)
	}

	for _, tc := range []struct {
		req  int64
		want int64
	}{
		{0, 4096},       // default = server cap
		{1 << 30, 4096}, // over cap → clamped
		{64, 64},        // under cap → honoured
	} {
		p, err := s.resolveParams(&DiscoverRequest{MaxAgreeBytes: tc.req})
		if err != nil {
			t.Fatalf("resolveParams(%d): %v", tc.req, err)
		}
		if p.maxAgreeBytes != tc.want {
			t.Fatalf("resolveParams(%d).maxAgreeBytes = %d, want %d", tc.req, p.maxAgreeBytes, tc.want)
		}
	}
}
