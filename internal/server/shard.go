// Distributed discovery: the coordinator/worker split of the agree-set
// phase (DESIGN.md §15).
//
// A coordinator-configured server answers ordinary POST /v1/discover
// requests for depminer/depminer2 by splitting the globally sorted
// deduplicated couple list into contiguous shards and dispatching them
// to worker depminerd instances over POST /v1/shard/agree. Datasets are
// addressed by content fingerprint, so a worker provably computes over
// the same bytes the coordinator planned against; each worker streams
// its shard's sorted deduplicated agree sets back as a DMRUN1 run
// (the spill-file format generalised to the wire), which the
// coordinator adopts into its spiller — CRC-verified, order-checked,
// budget-charged — and merges alongside any local runs. The canonical
// tail (one sort, one empty-set completion, steps 2–5) runs once on the
// coordinator, so the cover is byte-identical to single-node output at
// every shard count.
//
// The per-shard fallback ladder: transport retry/backoff (client
// policy) → push the dataset and dispatch once more (worker answered
// 404) → compute the shard locally under the coordinator's own budget.
// A failed or slow worker therefore degrades to local work under the
// governed-partial contract — couples are never silently dropped, and a
// stream that fails verification is discarded and recomputed, never
// merged.
package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/client"
	"repro/internal/agree"
	"repro/internal/attrset"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/extsort"
	"repro/internal/faultinject"
	"repro/internal/fd"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/relation"
	"repro/wire"
)

// maxShards caps the fan-out of one coordinated discovery.
const maxShards = 64

// planCacheCap bounds retained shard plans per worker. Plans are keyed
// by content fingerprint, so an append orphans old entries naturally;
// the cap keeps a worker serving many datasets from pinning every
// couple list it ever built.
const planCacheCap = 4

// coordinator is the fan-out side: one SDK client per configured worker
// endpoint, dispatched round-robin by shard index. Per-shard transport
// retry/backoff is the client package's ordinary policy.
type coordinator struct {
	endpoints []string
	clients   []*client.Client
}

func newCoordinator(endpoints []string) (*coordinator, error) {
	co := &coordinator{}
	for _, e := range endpoints {
		e = strings.TrimSpace(e)
		if e == "" {
			continue
		}
		if !strings.Contains(e, "://") {
			e = "http://" + e
		}
		co.endpoints = append(co.endpoints, e)
		co.clients = append(co.clients, client.New(e,
			client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 3, BaseDelay: 25 * time.Millisecond})))
	}
	if len(co.endpoints) == 0 {
		return nil, fmt.Errorf("no usable worker endpoints")
	}
	return co, nil
}

// discSource is the input of one depminer discovery: the stripped
// partition database plus (when materialised or required) the relation,
// pinned to the fingerprint both were derived from.
type discSource struct {
	db       *partition.Database
	rel      *relation.Relation // nil when streamed from a snapshot
	fp       string
	names    []string
	streamed bool
}

// discoverySource builds the discovery input for d, preferring a
// streamed durable snapshot — no relation materialisation — when one
// fully covers the dataset and the request does not need the original
// values (needRelation: an Armstrong construction does). The snapshot's
// embedded fingerprint is re-verified against the registry after
// opening, so a compaction or append racing the check degrades to the
// materialised path, never to stale data.
func (s *Server) discoverySource(d *dataset, needRelation bool) (*discSource, error) {
	if !needRelation {
		if src, ok := s.tryStreamSource(d); ok {
			return src, nil
		}
	}
	rel, fp, err := d.snapshot()
	if err != nil {
		return nil, err
	}
	return &discSource{db: partition.NewDatabase(rel), rel: rel, fp: fp, names: rel.Names()}, nil
}

func (s *Server) tryStreamSource(d *dataset) (*discSource, bool) {
	d.mu.Lock()
	dur := d.dur
	fp := d.fp
	d.mu.Unlock()
	if dur == nil {
		return nil, false
	}
	path, complete := dur.SnapshotInfo()
	if !complete {
		return nil, false
	}
	sr, err := durable.OpenSnapshotStream(path)
	if err != nil {
		return nil, false
	}
	defer sr.Close()
	if sr.Fingerprint() != fp {
		return nil, false
	}
	db, err := partition.NewDatabaseFromSource(sr)
	if err != nil {
		return nil, false
	}
	s.stats.mu.Lock()
	s.stats.snapshotStreams++
	s.stats.mu.Unlock()
	return &discSource{db: db, fp: fp, names: append([]string(nil), sr.Names()...), streamed: true}, true
}

// coreOptions maps resolved request params onto pipeline options.
func (s *Server) coreOptions(p discoverParams, budget *guard.Budget) core.Options {
	opts := core.Options{
		Workers:       p.workers,
		MaxCouples:    p.maxCouples,
		Budget:        budget,
		Armstrong:     core.ArmstrongNone,
		MaxAgreeBytes: p.maxAgreeBytes,
		SpillDir:      s.cfg.SpillDir,
	}
	if p.algorithm == "depminer2" {
		opts.Algorithm = core.AgreeIdentifiers
	}
	if p.armstrong {
		opts.Armstrong = core.ArmstrongRealWorldOrSynthetic
	}
	return opts
}

func (s *Server) newDepminerResponse(d *dataset, p discoverParams, src *discSource) *DiscoverResponse {
	return &DiscoverResponse{
		Dataset:          d.id,
		Fingerprint:      src.fp,
		Algorithm:        p.algorithm,
		Rows:             src.db.NumRows,
		Attributes:       src.db.Arity(),
		SnapshotStreamed: src.streamed,
	}
}

// adoptArmstrong copies a result's Armstrong relation into the response.
func adoptArmstrong(resp *DiscoverResponse, res *core.Result) {
	if res.Armstrong == nil {
		return
	}
	arm := res.Armstrong
	resp.ArmstrongSynthetic = res.ArmstrongSynthetic
	resp.Armstrong = make([][]string, arm.Rows())
	for t := 0; t < arm.Rows(); t++ {
		resp.Armstrong[t] = arm.Row(t)
	}
}

// runDepminer serves the depminer/depminer2 algorithms: sharded across
// the worker fleet when this server is a coordinator, locally otherwise
// (from a streamed snapshot when the dataset allows it).
func (s *Server) runDepminer(ctx context.Context, d *dataset, p discoverParams, start time.Time, budget *guard.Budget) (*DiscoverResponse, error) {
	src, err := s.discoverySource(d, p.armstrong)
	if err != nil {
		return nil, err
	}
	if s.coord != nil {
		return s.runSharded(ctx, d, p, start, budget, src)
	}
	resp := s.newDepminerResponse(d, p, src)
	opts := s.coreOptions(p, budget)
	var res *core.Result
	var runErr error
	if src.rel != nil {
		res, runErr = core.Discover(ctx, src.rel, opts)
	} else {
		res, runErr = core.DiscoverFromDatabase(ctx, src.db, opts)
	}
	var cover fd.Cover
	var partial bool
	if res != nil {
		cover, partial = res.FDs, res.Partial
		resp.Couples = res.Couples
		resp.AgreeSets = len(res.AgreeSets)
		resp.MaxSets = len(res.MaxSets)
		resp.Notes = res.Notes
		adoptArmstrong(resp, res)
		resp.SpilledRuns = res.Stats.Spill.RunsSpilled
		resp.SpilledBytes = res.Stats.Spill.SpilledBytes
		s.stats.mu.Lock()
		s.stats.addPhases(res.Stats)
		s.stats.addSpill(res.Stats.Spill)
		s.stats.mu.Unlock()
		s.logPhases(ctx, res.Stats)
	}
	if runErr != nil && !partial {
		return nil, runErr
	}
	resp.FDs = renderCover(cover, src.names)
	resp.Partial = partial
	if runErr != nil {
		resp.Error = runErr.Error()
	}
	resp.BudgetUsed = budget.Used()
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	return resp, nil
}

// runSharded executes one coordinated discovery: split the couple
// space, fan the shards out, adopt the returned runs, merge, and run
// the canonical tail locally. Only governance (budget, deadline) can
// make the outcome partial; nothing can make it wrong — a stream that
// fails verification is discarded and its shard recomputed.
func (s *Server) runSharded(ctx context.Context, d *dataset, p discoverParams, start time.Time, budget *guard.Budget, src *discSource) (*DiscoverResponse, error) {
	resp := s.newDepminerResponse(d, p, src)
	// The coordinator plans through the same fingerprint-keyed cache the
	// workers use: replanning an unchanged dataset would re-sort the
	// whole couple space on every discovery for nothing. An append
	// changes the fingerprint, so a cached plan can never be stale.
	plan, err := s.plans.get(src.fp, func() (*agree.Plan, error) {
		return agree.NewPlan(src.db), nil
	})
	if err != nil {
		return nil, err
	}
	resp.Couples = plan.Couples()

	variant := agree.VariantCouples
	algo := "depminer"
	if p.algorithm == "depminer2" {
		variant = agree.VariantIdentifiers
		algo = "depminer2"
	}
	// The coordinator owns the Algorithm 2 → 3 degradation decision: made
	// once from the global couple count and dispatched uniformly, so no
	// shard can diverge — and the note matches single-node byte for byte.
	if variant == agree.VariantCouples && p.maxCouples > 0 && plan.Couples() > p.maxCouples {
		variant = agree.VariantIdentifiers
		algo = "depminer2"
		resp.Notes = append(resp.Notes, core.DegradeNote(plan.Couples(), p.maxCouples))
	}

	n := p.shards
	if n == 0 {
		n = s.cfg.DefaultShards
	}
	if n == 0 {
		n = len(s.coord.endpoints)
	}
	if n > maxShards {
		n = maxShards
	}
	shards := plan.Split(n)
	resp.Shards = len(shards)

	agreeStart := time.Now()
	// Budget parity with the single-node sweep: the whole couple space is
	// charged once, up front, by whoever owns the discovery (workers
	// charge their own shard against their own budgets).
	if cerr := budget.Charge("agree", plan.Couples()); cerr != nil {
		return s.shardPartial(resp, start, budget, cerr)
	}

	sp := extsort.NewSpiller(s.cfg.SpillDir, budget)
	defer sp.Close()

	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	run := &shardRun{
		s: s, d: d, p: p, src: src, plan: plan,
		variant: variant, algo: algo, budget: budget, sp: sp, cancel: cancel,
	}
	defer run.flushStats()

	var wg sync.WaitGroup
	for i, sh := range shards {
		if sh.Start == sh.End {
			continue
		}
		wg.Add(1)
		go func(i int, sh agree.Shard) {
			defer wg.Done()
			run.runShard(dctx, i, sh)
		}(i, sh)
	}
	wg.Wait()
	resp.ShardsRemote = run.remote
	resp.ShardsLocal = run.local
	obs.Event(ctx, s.log, "shard fan-out done",
		obs.Int("shards", len(shards)),
		obs.Int("remote", run.remote),
		obs.Int("local", run.local),
		obs.Duration("dispatch", run.dispatchDur),
		obs.Duration("stream", run.streamDur))
	if run.firstErr != nil {
		if guard.Governed(run.firstErr) {
			return s.shardPartial(resp, start, budget, run.firstErr)
		}
		return nil, run.firstErr
	}

	// Merge: adopted runs (on disk) and local-fallback runs (in memory)
	// feed one k-way dedup merge; Finish applies the canonical sort and
	// empty-set completion exactly once.
	mergeStart := time.Now()
	var merged attrset.Family
	mergeErr := faultinject.Fire(faultinject.ShardMerge)
	if mergeErr == nil {
		mergeErr = sp.Merge(run.localRuns, func(set attrset.Set) error {
			merged = append(merged, set)
			return nil
		})
	}
	if mergeErr != nil {
		if guard.Governed(mergeErr) {
			return s.shardPartial(resp, start, budget, mergeErr)
		}
		return nil, fmt.Errorf("shard merge: %w", mergeErr)
	}
	fam := plan.Finish(merged)
	run.mergeDur = time.Since(mergeStart)
	if cerr := budget.Charge("agree", len(fam)); cerr != nil {
		resp.AgreeSets = len(fam)
		return s.shardPartial(resp, start, budget, cerr)
	}
	agreeDur := time.Since(agreeStart)

	opts := s.coreOptions(p, budget)
	res, runErr := core.DiscoverFromAgreeSets(ctx, src.rel, fam, plan.Arity(), opts)
	var cover fd.Cover
	var partial bool
	if res != nil {
		cover, partial = res.FDs, res.Partial
		resp.AgreeSets = len(res.AgreeSets)
		resp.MaxSets = len(res.MaxSets)
		adoptArmstrong(resp, res)

		spill := sp.Stats()
		spill.RunsSpilled += run.spill.RunsSpilled
		spill.SpilledSets += run.spill.SpilledSets
		spill.SpilledBytes += run.spill.SpilledBytes
		spill.MergedRuns += run.spill.MergedRuns
		spill.ReadBlocks += run.spill.ReadBlocks
		resp.SpilledRuns = spill.RunsSpilled
		resp.SpilledBytes = spill.SpilledBytes

		st := res.Stats
		st.AgreeSets.Duration = agreeDur // the distributed sweep, coordinator clock
		s.stats.mu.Lock()
		s.stats.addPhases(st)
		s.stats.addSpill(spill)
		s.stats.mu.Unlock()
		s.logPhases(ctx, st)
		obs.Event(ctx, s.log, "shard merge done",
			obs.Int("sets", len(fam)),
			obs.Duration("merge", run.mergeDur))
	}
	if runErr != nil && !partial {
		return nil, runErr
	}
	resp.FDs = renderCover(cover, src.names)
	resp.Partial = partial
	if runErr != nil {
		resp.Error = runErr.Error()
	}
	resp.BudgetUsed = budget.Used()
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	return resp, nil
}

// shardPartial finishes a governed sharded discovery: topology and
// couple counts survive, no cover is reported, and the guard error is
// surfaced per the partial-result contract (a 200 with Partial set).
func (s *Server) shardPartial(resp *DiscoverResponse, start time.Time, budget *guard.Budget, gerr error) (*DiscoverResponse, error) {
	resp.Partial = true
	resp.Error = gerr.Error()
	resp.FDs = []string{}
	resp.BudgetUsed = budget.Used()
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	return resp, nil
}

// shardRun is the mutable state of one fan-out.
type shardRun struct {
	s       *Server
	d       *dataset
	p       discoverParams
	src     *discSource
	plan    *agree.Plan
	variant agree.Variant
	algo    string
	budget  *guard.Budget
	sp      *extsort.Spiller
	cancel  context.CancelFunc

	csvOnce sync.Once
	csvData []byte
	csvErr  error

	mu        sync.Mutex
	localRuns [][]attrset.Set
	attempted int
	remote    int
	local     int
	spill     extsort.Stats // local-fallback shards' own spill activity
	firstErr  error

	pushed        int64
	receivedSets  int64
	receivedBytes int64
	dispatchDur   time.Duration
	streamDur     time.Duration
	mergeDur      time.Duration
}

// fail records the first fatal error and cancels sibling shards.
func (r *shardRun) fail(err error) {
	r.mu.Lock()
	first := r.firstErr == nil
	if first {
		r.firstErr = err
	}
	r.mu.Unlock()
	if first {
		r.cancel()
	}
}

func (r *shardRun) failed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.firstErr != nil
}

// runShard computes shard i: remotely if a worker can serve it, locally
// otherwise. Any remote failure — dispatch, mid-stream death, failed
// verification — falls back to the local sweep; only a local failure
// (or a shared-budget overrun) can fail the shard.
func (r *shardRun) runShard(ctx context.Context, i int, sh agree.Shard) {
	mode := "failed"
	span := obs.StartSpan(ctx, r.s.log, "shard",
		obs.Int("shard", i), obs.Int("couple_start", sh.Start), obs.Int("couple_end", sh.End))
	defer func() { span.End(obs.String("mode", mode)) }()
	r.mu.Lock()
	r.attempted++
	r.mu.Unlock()
	remoteErr := r.tryRemote(ctx, i, sh)
	if remoteErr == nil {
		r.mu.Lock()
		r.remote++
		r.mu.Unlock()
		mode = "remote"
		return
	}
	if guard.Governed(remoteErr) {
		// The budget is shared: adopting the stream overran it, so the
		// local fallback would only overrun further. Surface the
		// governed cutoff directly.
		r.fail(remoteErr)
		return
	}
	if ctx.Err() != nil && r.failed() {
		return // a sibling already failed the discovery
	}
	obs.Event(ctx, r.s.log, "shard falling back local",
		obs.Int("shard", i), obs.String("remote_error", remoteErr.Error()))
	r.computeLocal(ctx, sh, remoteErr)
	if !r.failed() {
		mode = "local"
	}
}

func (r *shardRun) tryRemote(ctx context.Context, i int, sh agree.Shard) error {
	if ferr := faultinject.Fire(faultinject.ShardDispatch); ferr != nil {
		return ferr
	}
	// Forward the discovery's request id on the dispatch (and on any
	// dataset push): the worker's middleware adopts it, so its log lines
	// join the coordinator's under one id.
	ctx = client.WithRequestID(ctx, obs.RequestID(ctx))
	cl := r.s.coord.clients[i%len(r.s.coord.clients)]
	req := wire.ShardRequest{
		Fingerprint:   r.src.fp,
		Algorithm:     r.algo,
		CoupleStart:   sh.Start,
		CoupleEnd:     sh.End,
		TotalCouples:  r.plan.Couples(),
		Workers:       r.p.workers,
		TimeoutMS:     int64(r.p.timeout / time.Millisecond),
		BudgetUnits:   r.p.units,
		MaxAgreeBytes: r.p.maxAgreeBytes,
	}
	t0 := time.Now()
	stream, err := cl.AgreeShard(ctx, req)
	if err != nil && errors.Is(err, client.ErrNotFound) {
		// This worker has never seen the dataset: push it through the
		// ordinary registration API (content-derived ids converge on
		// identical bytes) and dispatch once more.
		if perr := r.pushDataset(ctx, cl); perr != nil {
			return fmt.Errorf("pushing dataset: %w", perr)
		}
		stream, err = cl.AgreeShard(ctx, req)
	}
	if err != nil {
		return err
	}
	defer stream.Close()
	dispatchDur := time.Since(t0)
	if ferr := faultinject.Fire(faultinject.ShardStream); ferr != nil {
		return ferr
	}
	t1 := time.Now()
	cr := &countingReader{r: stream.Body}
	pr, err := r.sp.AdoptRun(cr, r.p.maxAgreeBytes)
	if err != nil {
		return err
	}
	if want, ok := stream.TrailerSets(); ok && want != pr.Sets() {
		pr.Discard()
		return fmt.Errorf("worker attested %d sets, stream carried %d", want, pr.Sets())
	}
	pr.Commit()
	streamDur := time.Since(t1)
	r.mu.Lock()
	r.receivedSets += pr.Sets()
	r.receivedBytes += cr.n
	r.dispatchDur += dispatchDur
	r.streamDur += streamDur
	r.mu.Unlock()
	return nil
}

// computeLocal is the last fallback rung: the shard's sweep under the
// coordinator's own budget. Its output joins the merge as an in-memory
// run, exactly like a worker-pool run of the single-node sweep.
func (r *shardRun) computeLocal(ctx context.Context, sh agree.Shard, cause error) {
	aopts := agree.Options{
		Workers:       r.p.workers,
		Budget:        r.budget,
		MaxAgreeBytes: r.p.maxAgreeBytes,
		SpillDir:      r.s.cfg.SpillDir,
	}
	var out []attrset.Set
	res, err := r.plan.ComputeShard(ctx, sh, r.variant, aopts, func(set attrset.Set) error {
		out = append(out, set)
		return nil
	})
	if res != nil {
		r.mu.Lock()
		r.spill.RunsSpilled += res.Spill.RunsSpilled
		r.spill.SpilledSets += res.Spill.SpilledSets
		r.spill.SpilledBytes += res.Spill.SpilledBytes
		r.spill.MergedRuns += res.Spill.MergedRuns
		r.spill.ReadBlocks += res.Spill.ReadBlocks
		r.mu.Unlock()
	}
	if err != nil {
		r.fail(fmt.Errorf("shard [%d,%d) local fallback (remote: %v): %w", sh.Start, sh.End, cause, err))
		return
	}
	r.mu.Lock()
	r.local++
	if len(out) > 0 {
		r.localRuns = append(r.localRuns, out)
	}
	r.mu.Unlock()
}

func (r *shardRun) pushDataset(ctx context.Context, cl *client.Client) error {
	csv, err := r.datasetCSV()
	if err != nil {
		return err
	}
	if _, err := cl.Register(ctx, r.d.info().Name, csv); err != nil {
		return err
	}
	r.mu.Lock()
	r.pushed++
	r.mu.Unlock()
	return nil
}

// datasetCSV materialises the relation once, for pushing to workers
// that have never seen it. This is the one place a streamed-snapshot
// discovery rehydrates rows — only on a cold fleet, never on the
// steady-state path.
func (r *shardRun) datasetCSV() ([]byte, error) {
	r.csvOnce.Do(func() {
		rel := r.src.rel
		if rel == nil {
			var err error
			rel, _, err = r.d.snapshot()
			if err != nil {
				r.csvErr = err
				return
			}
		}
		var buf bytes.Buffer
		if err := rel.WriteCSV(&buf); err != nil {
			r.csvErr = err
			return
		}
		r.csvData = buf.Bytes()
	})
	return r.csvData, r.csvErr
}

// flushStats folds the fan-out's counters into the server stats.
func (r *shardRun) flushStats() {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := &r.s.stats
	st.mu.Lock()
	defer st.mu.Unlock()
	st.shard.dispatched += int64(r.attempted)
	st.shard.remote += int64(r.remote)
	st.shard.localFallbacks += int64(r.local)
	st.shard.datasetsPushed += r.pushed
	st.shard.receivedSets += r.receivedSets
	st.shard.receivedBytes += r.receivedBytes
	st.shard.dispatchTime += r.dispatchDur
	st.shard.streamTime += r.streamDur
	st.shard.mergeTime += r.mergeDur
}

// countingReader counts stream bytes for the fan-out stats.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// shardCounters aggregates distributed-discovery activity, guarded by
// discoveryStats.mu. Coordinator counters cover fan-out, worker
// counters cover shard serving; one process can be both.
type shardCounters struct {
	dispatched     int64
	remote         int64
	localFallbacks int64
	datasetsPushed int64
	receivedSets   int64
	receivedBytes  int64
	dispatchTime   time.Duration
	streamTime     time.Duration
	mergeTime      time.Duration
	served         int64
	servedSets     int64
	servedErrors   int64
}

func (c shardCounters) active() bool {
	return c.dispatched != 0 || c.served != 0 || c.servedErrors != 0
}

// errShardStale marks a fingerprint that matched at lookup but not at
// plan-build time — the dataset grew in between. The coordinator's
// reaction to the 409 is the local fallback.
var errShardStale = errors.New("dataset fingerprint changed")

// planCache caches shard plans by content fingerprint, with
// singleflight builds so concurrent shards of one discovery share one
// couple-list generation. FIFO eviction; stale fingerprints age out.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*planEntry
	order   []string
}

type planEntry struct {
	once sync.Once
	plan *agree.Plan
	err  error
}

func newPlanCache(capEntries int) *planCache {
	return &planCache{cap: capEntries, entries: make(map[string]*planEntry)}
}

func (pc *planCache) get(fp string, build func() (*agree.Plan, error)) (*agree.Plan, error) {
	pc.mu.Lock()
	e, ok := pc.entries[fp]
	if !ok {
		e = &planEntry{}
		pc.entries[fp] = e
		pc.order = append(pc.order, fp)
		for pc.cap > 0 && len(pc.order) > pc.cap {
			delete(pc.entries, pc.order[0])
			pc.order = pc.order[1:]
		}
	}
	pc.mu.Unlock()
	e.once.Do(func() { e.plan, e.err = build() })
	return e.plan, e.err
}

func (s *Server) noteShardServedError() {
	s.stats.mu.Lock()
	s.stats.shard.servedErrors++
	s.stats.mu.Unlock()
}

// handleShardAgree implements POST /v1/shard/agree — the worker half of
// distributed discovery. The response is not JSON: it is a DMRUN1 run
// stream with the record count attested in an HTTP trailer. An error
// after the first streamed byte aborts the connection
// (http.ErrAbortHandler) rather than fabricating a valid-looking tail;
// the coordinator's CRC, order, and trailer checks make any truncation
// non-silent either way.
func (s *Server) handleShardAgree(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	var req wire.ShardRequest
	if err := wire.DecodeStrict(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var variant agree.Variant
	switch strings.ToLower(strings.TrimSpace(req.Algorithm)) {
	case "", "depminer":
		variant = agree.VariantCouples
	case "depminer2":
		variant = agree.VariantIdentifiers
	default:
		writeError(w, http.StatusBadRequest, "algorithm %q cannot be sharded", req.Algorithm)
		return
	}
	if req.Fingerprint == "" {
		writeError(w, http.StatusBadRequest, "missing fingerprint")
		return
	}
	if req.CoupleStart < 0 || req.CoupleEnd < req.CoupleStart || req.CoupleEnd > req.TotalCouples ||
		req.Workers < 0 || req.TimeoutMS < 0 || req.BudgetUnits < 0 || req.MaxAgreeBytes < 0 {
		writeError(w, http.StatusBadRequest, "bad shard range or negative knobs")
		return
	}
	d, ok := s.reg.findByFingerprint(req.Fingerprint)
	if !ok {
		writeError(w, http.StatusNotFound, "no dataset with fingerprint %s", req.Fingerprint)
		return
	}
	if !s.jobs.tryAdmit() {
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		writeError(w, http.StatusTooManyRequests,
			"job queue full: %d discoveries running (cap %d)", s.cfg.MaxJobs, s.cfg.MaxJobs)
		return
	}
	s.wg.Add(1)
	defer s.wg.Done()
	defer s.jobs.release()

	plan, err := s.plans.get(req.Fingerprint, func() (*agree.Plan, error) {
		src, serr := s.discoverySource(d, false)
		if serr != nil {
			return nil, serr
		}
		if src.fp != req.Fingerprint {
			return nil, errShardStale
		}
		return agree.NewPlan(src.db), nil
	})
	if err != nil {
		s.noteShardServedError()
		if errors.Is(err, errShardStale) {
			writeError(w, http.StatusConflict, "dataset content changed since the coordinator planned")
			return
		}
		writeError(w, classifyStatus(err), "building shard plan: %v", err)
		return
	}
	// A couple-count disagreement is a structural proof the two sides
	// planned against different bytes; refuse rather than compute a
	// range with a different meaning.
	if plan.Couples() != req.TotalCouples {
		s.noteShardServedError()
		writeError(w, http.StatusConflict,
			"couple count mismatch: worker has %d, coordinator planned %d", plan.Couples(), req.TotalCouples)
		return
	}

	// Clamp shard governance exactly like resolveParams clamps a
	// discovery's; the worker charges its own shard's couples, the
	// worker-side analogue of the coordinator's single upfront charge.
	timeout := s.cfg.MaxTimeout
	if req.TimeoutMS > 0 {
		if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	units := req.BudgetUnits
	if s.cfg.MaxBudgetUnits > 0 && (units == 0 || units > s.cfg.MaxBudgetUnits) {
		units = s.cfg.MaxBudgetUnits
	}
	maxAgree := req.MaxAgreeBytes
	if s.cfg.MaxAgreeBytes > 0 && (maxAgree == 0 || maxAgree > s.cfg.MaxAgreeBytes) {
		maxAgree = s.cfg.MaxAgreeBytes
	}
	workers := req.Workers
	if workers == 0 {
		workers = s.cfg.Workers
	}
	budget := guard.WithTimeout(timeout, units)
	if cerr := budget.Charge("agree", req.CoupleEnd-req.CoupleStart); cerr != nil {
		s.noteShardServedError()
		writeError(w, classifyStatus(cerr), "shard budget: %v", cerr)
		return
	}

	w.Header().Set("Content-Type", wire.RunContentType)
	w.Header().Set("Trailer", wire.ShardSetsTrailer)
	rw := extsort.NewRunWriter(w)
	res, cerr := plan.ComputeShard(r.Context(),
		agree.Shard{Start: req.CoupleStart, End: req.CoupleEnd}, variant,
		agree.Options{
			Workers:       workers,
			Budget:        budget,
			MaxAgreeBytes: maxAgree,
			SpillDir:      s.cfg.SpillDir,
		}, rw.Write)
	if cerr == nil {
		cerr = rw.Close()
	}
	if res != nil {
		s.stats.mu.Lock()
		s.stats.addSpill(res.Spill)
		s.stats.mu.Unlock()
	}
	if cerr != nil {
		s.noteShardServedError()
		if !rw.Started() {
			writeError(w, classifyStatus(cerr), "shard failed: %v", cerr)
			return
		}
		// Mid-stream failure: kill the connection rather than let a
		// truncated stream end with a clean-looking terminal chunk.
		panic(http.ErrAbortHandler)
	}
	w.Header().Set(wire.ShardSetsTrailer, strconv.FormatInt(res.Sets, 10))
	s.stats.mu.Lock()
	s.stats.shard.served++
	s.stats.shard.servedSets += res.Sets
	s.stats.mu.Unlock()
	// The context carries the coordinator's request id (adopted by the
	// middleware from the dispatch header), so this line joins the
	// coordinator's fan-out lines.
	obs.Event(r.Context(), s.log, "shard served",
		obs.String("fingerprint", req.Fingerprint),
		obs.Int("couple_start", req.CoupleStart),
		obs.Int("couple_end", req.CoupleEnd),
		obs.Int64("sets", res.Sets))
}
