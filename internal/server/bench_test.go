package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"testing"

	"repro/internal/datagen"
)

// benchServer boots a server + httptest listener and registers a
// moderately hard synthetic relation, returning everything a benchmark
// loop needs. The workload (8 attrs x 1000 rows, c=0.4) is large enough
// that a cold discovery runs a real pipeline but small enough to stay
// under the sync threshold.
func benchServer(b *testing.B) (*Server, *httptest.Server, string, []byte) {
	return benchServerCfg(b, Config{})
}

func benchServerCfg(b *testing.B, cfg Config) (*Server, *httptest.Server, string, []byte) {
	b.Helper()
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s)
	b.Cleanup(ts.Close)

	r, err := datagen.Generate(datagen.Spec{Attrs: 8, Rows: 1000, Correlation: 0.4, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	var csv bytes.Buffer
	if err := r.WriteCSV(&csv); err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/datasets?name=bench", "text/csv", &csv)
	if err != nil {
		b.Fatal(err)
	}
	var reg RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b.Fatalf("register status = %d", resp.StatusCode)
	}
	body := []byte(fmt.Sprintf(`{"dataset":%q,"algorithm":"depminer"}`, reg.ID))
	return s, ts, reg.ID, body
}

func benchDiscover(b *testing.B, ts *httptest.Server, body []byte, wantCached bool) {
	resp, err := http.Post(ts.URL+"/v1/discover", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	var out DiscoverResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(out.FDs) == 0 {
		b.Fatalf("discover status = %d, %d fds", resp.StatusCode, len(out.FDs))
	}
	if out.Cached != wantCached {
		b.Fatalf("cached = %t, want %t", out.Cached, wantCached)
	}
}

// BenchmarkServerDiscoverCold measures the full request path with the
// result cache defeated: each iteration invalidates the dataset's
// entries first, so every response re-runs the Dep-Miner pipeline.
func BenchmarkServerDiscoverCold(b *testing.B) {
	s, ts, id, body := benchServer(b)
	benchDiscover(b, ts, body, false) // warm the dataset snapshot
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.cache.invalidateDataset(id)
		benchDiscover(b, ts, body, false)
	}
}

// BenchmarkServerDiscoverCached measures the same request answered from
// the fingerprint-keyed result cache: HTTP + lookup + JSON only, no
// pipeline. The cold/cached ratio is the price a repeat caller avoids.
func BenchmarkServerDiscoverCached(b *testing.B) {
	_, ts, _, body := benchServer(b)
	benchDiscover(b, ts, body, false) // populate the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchDiscover(b, ts, body, true)
	}
}

// BenchmarkDiscoverSharded is the distributed record behind
// BENCH_SHARD.json. The same benchmark name measures both sides so
// scripts/benchcmp can compare them: DEPMINER_SHARD_WORKERS unset (or
// 0) is the single-node baseline; a positive value boots that many
// in-process worker servers and shards every discovery across them.
// On a single-vCPU testbed the fan-out buys no parallelism, so the
// delta is the pure coordination overhead (dispatch, DMRUN1 streaming,
// adoption, k-way merge) — the number the ≤10%% ns/op acceptance bound
// applies to. The fleet is warmed once (datasets pushed, worker plan
// caches built) before the timer starts, so the steady-state path is
// what is measured, with the coordinator's result cache defeated every
// iteration.
func BenchmarkDiscoverSharded(b *testing.B) {
	workers := 0
	if v := os.Getenv("DEPMINER_SHARD_WORKERS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			b.Fatalf("bad DEPMINER_SHARD_WORKERS %q", v)
		}
		workers = n
	}
	var cfg Config
	for i := 0; i < workers; i++ {
		ws, err := New(Config{})
		if err != nil {
			b.Fatal(err)
		}
		wts := httptest.NewServer(ws)
		b.Cleanup(wts.Close)
		cfg.WorkerEndpoints = append(cfg.WorkerEndpoints, wts.URL)
	}
	s, ts, id, _ := benchServerCfg(b, cfg)
	body := []byte(fmt.Sprintf(`{"dataset":%q,"algorithm":"depminer","shards":%d}`, id, workers))
	benchDiscover(b, ts, body, false) // warm: push datasets, build plans
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.cache.invalidateDataset(id)
		benchDiscover(b, ts, body, false)
	}
}
