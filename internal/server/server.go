// Package server is the serving layer of the repository: a long-running
// HTTP (JSON) daemon — depminerd — that composes the discovery pipelines,
// the worker pool, resource governance, the memory-bounded TANE search,
// and the incremental maintenance engine into one process.
//
// It owns four pieces of state:
//
//   - a dataset registry: uploaded CSV relations, each wrapped in an
//     incremental discovery session and identified by a running content
//     fingerprint (registry.go);
//   - an admission-controlled job queue: a hard cap on concurrently
//     running discoveries, overflow rejected with 429 + Retry-After
//     instead of queued unboundedly (jobs.go);
//   - a result cache keyed by (dataset fingerprint, algorithm, options),
//     so repeated discovery of unchanged data is O(1) (cache.go);
//   - per-request guard budgets derived from request parameters clamped
//     by server-wide caps, so a single heavy query cannot monopolise the
//     process and overruns surface as partial results, not failures.
//
// Endpoints are versioned under /v1 (handlers.go). The operational
// surface (internal/obs, DESIGN.md §16): GET /healthz is pure liveness,
// GET /readyz readiness (503 while draining or durably degraded), GET
// /metrics the Prometheus exposition, GET /v1/version the build
// identity. Every handler runs under the obs middleware — request-id
// propagation, access logs, panic containment, per-request metrics.
// Shutdown drains: in-flight discoveries finish under their own budgets
// while new work is refused.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/extsort"
	"repro/internal/fastfds"
	"repro/internal/fd"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/pstore"
	"repro/internal/tane"
)

// Config bounds the server. The zero value is usable: every field has a
// production-safe default applied by New.
type Config struct {
	// MaxJobs caps concurrently running discoveries (sync and async
	// alike); requests beyond it are rejected with 429. Default 4.
	MaxJobs int
	// SyncRowLimit is the dataset size (rows) up to which POST
	// /v1/discover runs synchronously; larger datasets get an async job
	// and a 202. Default 5000.
	SyncRowLimit int
	// MaxTimeout caps (and defaults) the per-request deadline. Default
	// 2 minutes.
	MaxTimeout time.Duration
	// MaxBudgetUnits caps the per-request guard unit budget; 0 leaves
	// requests ungoverned by units unless they ask for a budget.
	MaxBudgetUnits int64
	// MaxBodyBytes caps request bodies (CSV uploads). Default 32 MiB.
	MaxBodyBytes int64
	// MaxDatasets caps the registry. Default 64.
	MaxDatasets int
	// MaxJobRecords caps retained finished async job records. Default 256.
	MaxJobRecords int
	// CacheEntries caps the result cache. Default 128.
	CacheEntries int
	// RetryAfter is the delay hinted in the Retry-After header of 429
	// responses, rendered as RFC 9110 delta-seconds (rounded up, min 1).
	// Default 1s.
	RetryAfter time.Duration
	// Workers is the default worker-pool width for discoveries whose
	// request omits it: 0 = all cores.
	Workers int
	// MaxAgreeBytes caps (and defaults) the per-request resident
	// agree-set bytes for depminer/depminer2; past the cap, sorted runs
	// spill to SpillDir and are merged back streamingly. 0 leaves
	// requests in-memory unless they ask for a cap.
	MaxAgreeBytes int64
	// SpillDir is where agree-set runs spill; empty = os.TempDir().
	SpillDir string
	// DataDir, when set, turns on durability: every registration and
	// append is written to a per-dataset WAL and fsync'd before the
	// server acknowledges it, snapshots fold the logs in the background,
	// and boot recovers the registry from disk. Empty = memory-only.
	DataDir string
	// DisableFsync acknowledges durable writes without waiting for
	// fsync — for tests and benchmarks only; a crash can then lose
	// acknowledged appends (never corrupt the recovered prefix).
	DisableFsync bool
	// SnapshotEvery is the WAL record count that triggers background
	// compaction into a snapshot. 0 = default (256); negative disables.
	SnapshotEvery int
	// WorkerEndpoints lists depminerd worker base URLs ("host:port" or
	// full URLs); non-empty makes this server a shard coordinator:
	// depminer/depminer2 discoveries split their agree-set phase across
	// the fleet (shard.go). Empty = single-node.
	WorkerEndpoints []string
	// DefaultShards is the shard count for coordinated discoveries whose
	// request leaves Shards at 0. 0 = one shard per worker endpoint.
	DefaultShards int
	// Logger receives the server's structured logs (access lines, span
	// events, discovery outcomes). nil = silent, the right default for
	// tests and embedded use; depminerd wires os.Stderr through the
	// layered flag/env config (internal/obs).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4
	}
	if c.SyncRowLimit <= 0 {
		c.SyncRowLimit = 5000
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxDatasets <= 0 {
		c.MaxDatasets = 64
	}
	if c.MaxJobRecords <= 0 {
		c.MaxJobRecords = 256
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server is the depminerd HTTP handler plus its state. Create with New;
// it is an http.Handler.
type Server struct {
	cfg   Config
	reg   *registry
	cache *resultCache
	jobs  *jobQueue
	mux   *http.ServeMux

	// log is the structured logger (never nil — obs.Nop() when
	// Config.Logger is unset). obsReg is the metrics registry serving
	// GET /metrics; handler is the mux wrapped in the obs middleware.
	log     *slog.Logger
	obsReg  *obs.Registry
	handler http.Handler

	// baseCtx parents async jobs, so a forced shutdown can cancel them.
	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup // in-flight discoveries (sync and async)

	mu       sync.Mutex
	draining bool
	started  time.Time

	// store is the durability layer; nil when Config.DataDir is empty.
	// recovery is what boot found on disk, served under /v1/stats so
	// operators see quarantines without grepping the data directory.
	store    *durable.Store
	recovery *durable.Recovery

	// coord is the shard fan-out state; nil unless Config.WorkerEndpoints
	// is non-empty. plans caches shard plans this server built as a
	// worker, keyed by content fingerprint.
	coord *coordinator
	plans *planCache

	stats discoveryStats

	// testHookJobStart, when set, runs while a discovery holds its
	// admission slot, before the pipeline starts — tests use it to pin
	// jobs in the running state deterministically.
	testHookJobStart func(datasetID string)
}

// New creates a server from the configuration (zero value fine). With
// DataDir set it opens the durable store and rebuilds the registry from
// disk before serving: recovered datasets are re-registered under their
// original ids, quarantined ones are reported in /v1/stats. The error is
// non-nil only for store-level failures (unreadable data dir, a restore
// that cannot rebuild a verified dataset) — per-dataset damage is
// quarantined, never fatal.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		reg:        newRegistry(cfg.MaxDatasets),
		cache:      newResultCache(cfg.CacheEntries),
		jobs:       newJobQueue(cfg.MaxJobs, cfg.MaxJobRecords),
		mux:        http.NewServeMux(),
		baseCtx:    ctx,
		baseCancel: cancel,
		started:    time.Now(),
	}
	s.log = cfg.Logger
	if s.log == nil {
		s.log = obs.Nop()
	}
	s.stats.phases = make(map[string]time.Duration)
	s.plans = newPlanCache(planCacheCap)
	if len(cfg.WorkerEndpoints) > 0 {
		co, err := newCoordinator(cfg.WorkerEndpoints)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("server: %w", err)
		}
		s.coord = co
	}
	if cfg.DataDir != "" {
		store, rec, err := durable.Open(durable.Options{
			Dir:           cfg.DataDir,
			DisableFsync:  cfg.DisableFsync,
			SnapshotEvery: cfg.SnapshotEvery,
		})
		if err != nil {
			cancel()
			return nil, err
		}
		s.store, s.recovery = store, rec
		for _, rd := range rec.Datasets {
			dur, ok := store.Dataset(rd.ID)
			if !ok {
				store.Close()
				cancel()
				return nil, fmt.Errorf("server: recovered dataset %s has no durable handle", rd.ID)
			}
			if err := s.reg.restore(rd, dur, s.started); err != nil {
				store.Close()
				cancel()
				return nil, fmt.Errorf("server: %w", err)
			}
		}
	}
	s.obsReg = obs.NewRegistry()
	obs.RegisterBuildInfo(s.obsReg, metricPrefix)
	s.registerStatsMetrics(s.obsReg)
	s.routes()
	s.handler = obs.Middleware(obs.MiddlewareConfig{
		Logger:  s.log,
		Metrics: obs.NewHTTPMetrics(s.obsReg, metricPrefix),
	}, s.mux)
	b := obs.Build()
	s.log.Info("server configured",
		slog.String("revision", b.Revision),
		slog.String("go_version", b.GoVersion),
		slog.Int("max_jobs", cfg.MaxJobs),
		slog.Bool("durable", s.store != nil),
		slog.Bool("coordinator", s.coord != nil))
	return s, nil
}

// Metrics exposes the server's metrics registry, so an embedding
// process (or a test) can scrape without going through HTTP.
func (s *Server) Metrics() *obs.Registry { return s.obsReg }

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/datasets", s.handleRegister)
	s.mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	s.mux.HandleFunc("GET /v1/datasets/{id}", s.handleGetDataset)
	s.mux.HandleFunc("POST /v1/datasets/{id}/rows", s.handleAppendRows)
	s.mux.HandleFunc("POST /v1/discover", s.handleDiscover)
	s.mux.HandleFunc("POST /v1/shard/agree", s.handleShardAgree)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/version", s.handleVersion)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.Handle("GET /metrics", s.obsReg.Handler())
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	s.handler.ServeHTTP(w, r)
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown drains the server: mutating endpoints start refusing with 503,
// then in-flight discoveries are awaited. If ctx expires first, async
// jobs are cancelled via their base context and Shutdown returns ctx's
// error. It reuses the signal contract of internal/cli: the caller passes
// a drain-deadline context created after the signal context fired.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
		s.baseCancel()
	case <-ctx.Done():
		s.baseCancel() // force: cancel in-flight async jobs
		<-done
		drainErr = fmt.Errorf("server: drain aborted: %w", ctx.Err())
	}
	// Final fold: snapshot every dataset so the next boot replays
	// nothing, then release the WAL handles. Run even on an aborted
	// drain — appends have stopped (mutating endpoints refuse), so the
	// fold is consistent.
	if s.store != nil {
		if err := s.store.CompactAll(); err != nil && drainErr == nil {
			drainErr = fmt.Errorf("server: final snapshot: %w", err)
		}
		if err := s.store.Close(); err != nil && drainErr == nil {
			drainErr = fmt.Errorf("server: closing durable store: %w", err)
		}
	}
	return drainErr
}

// discoveryStats aggregates per-phase timings (from Result.Stats) and
// partition-store counters across every discovery the process ran.
type discoveryStats struct {
	mu      sync.Mutex
	total   int64
	partial int64
	failed  int64
	sync    int64
	async   int64
	phases  map[string]time.Duration
	pstore  pstore.Stats
	spill   extsort.Stats
	// snapshotStreams counts discoveries fed by streaming a durable
	// snapshot instead of materialising the relation.
	snapshotStreams int64
	// shard aggregates distributed-discovery activity (shard.go).
	shard shardCounters
}

func (d *discoveryStats) addPhases(st core.Stats) {
	d.phases["partition"] += st.Partition.Duration
	d.phases["agree_sets"] += st.AgreeSets.Duration
	d.phases["max_sets"] += st.MaxSets.Duration
	d.phases["lhs"] += st.LHS.Duration
	d.phases["armstrong"] += st.Armstrong.Duration
}

// logPhases emits the per-discovery phase span event: Result.Stats
// timings as one structured debug line, joined to the request by the
// context's attribute set. The same numbers accumulate into
// phase_seconds_total; this is the per-request view of them.
func (s *Server) logPhases(ctx context.Context, st core.Stats) {
	obs.Event(ctx, s.log, "discovery phases",
		obs.Duration("partition", st.Partition.Duration),
		obs.Duration("agree_sets", st.AgreeSets.Duration),
		obs.Duration("max_sets", st.MaxSets.Duration),
		obs.Duration("lhs", st.LHS.Duration),
		obs.Duration("armstrong", st.Armstrong.Duration))
}

func (d *discoveryStats) addSpill(st extsort.Stats) {
	d.spill.RunsSpilled += st.RunsSpilled
	d.spill.SpilledSets += st.SpilledSets
	d.spill.SpilledBytes += st.SpilledBytes
	d.spill.MergedRuns += st.MergedRuns
	d.spill.ReadBlocks += st.ReadBlocks
}

func (d *discoveryStats) addPstore(st pstore.Stats) {
	d.pstore.Hits += st.Hits
	d.pstore.Misses += st.Misses
	d.pstore.Evictions += st.Evictions
	d.pstore.Recomputes += st.Recomputes
	if st.PeakBytes > d.pstore.PeakBytes {
		d.pstore.PeakBytes = st.PeakBytes
	}
}

// discoverParams is a resolved, clamped discovery request.
type discoverParams struct {
	algorithm         string
	workers           int
	maxCouples        int
	epsilon           float64
	maxPartitionBytes int64
	maxAgreeBytes     int64
	armstrong         bool
	shards            int
	timeout           time.Duration
	units             int64
}

// algorithms the server accepts.
var algorithms = map[string]bool{
	"depminer":    true,
	"depminer2":   true,
	"fastfds":     true,
	"tane":        true,
	"incremental": true,
}

// resolveParams validates the request and clamps it under the server
// caps: the effective deadline is min(request, MaxTimeout) and the unit
// budget min(request, MaxBudgetUnits), with the caps as defaults — every
// discovery runs governed, so no request can exceed the server-wide
// ceiling.
func (s *Server) resolveParams(req *DiscoverRequest) (discoverParams, error) {
	p := discoverParams{
		algorithm:         strings.ToLower(strings.TrimSpace(req.Algorithm)),
		workers:           req.Workers,
		maxCouples:        req.MaxCouples,
		epsilon:           req.Epsilon,
		maxPartitionBytes: req.MaxPartitionBytes,
		maxAgreeBytes:     req.MaxAgreeBytes,
		armstrong:         req.Armstrong,
		shards:            req.Shards,
	}
	if p.algorithm == "" {
		p.algorithm = "depminer"
	}
	if !algorithms[p.algorithm] {
		names := make([]string, 0, len(algorithms))
		for a := range algorithms {
			names = append(names, a)
		}
		sort.Strings(names)
		return p, fmt.Errorf("unknown algorithm %q (have: %s)", req.Algorithm, strings.Join(names, ", "))
	}
	if p.workers < 0 || p.maxCouples < 0 || p.maxPartitionBytes < 0 || p.maxAgreeBytes < 0 || p.shards < 0 || req.TimeoutMS < 0 || req.BudgetUnits < 0 {
		return p, fmt.Errorf("negative knobs are invalid")
	}
	if p.epsilon < 0 || p.epsilon >= 1 {
		return p, fmt.Errorf("epsilon %v out of [0,1)", p.epsilon)
	}
	if p.epsilon > 0 && p.algorithm != "tane" {
		return p, fmt.Errorf("epsilon is a tane-only option")
	}
	if p.shards > 0 {
		if s.coord == nil {
			return p, fmt.Errorf("shards is a coordinator-only option (no worker endpoints configured)")
		}
		if p.algorithm != "depminer" && p.algorithm != "depminer2" {
			return p, fmt.Errorf("shards is a depminer/depminer2-only option")
		}
	}
	if p.workers == 0 {
		p.workers = s.cfg.Workers
	}
	p.timeout = s.cfg.MaxTimeout
	if req.TimeoutMS > 0 {
		if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < p.timeout {
			p.timeout = t
		}
	}
	p.units = req.BudgetUnits
	if s.cfg.MaxBudgetUnits > 0 && (p.units == 0 || p.units > s.cfg.MaxBudgetUnits) {
		p.units = s.cfg.MaxBudgetUnits
	}
	if s.cfg.MaxAgreeBytes > 0 && (p.maxAgreeBytes == 0 || p.maxAgreeBytes > s.cfg.MaxAgreeBytes) {
		p.maxAgreeBytes = s.cfg.MaxAgreeBytes
	}
	return p, nil
}

// optionsKey canonically encodes the result-affecting options for the
// cache key. Workers, budgets, partition caps, spill thresholds, and
// shard topology (shard counts, worker endpoints) are excluded: the
// miners guarantee byte-identical covers for every value of those
// knobs, so one completed result answers them all — in particular a
// shard-computed cover answers later single-node requests and vice
// versa.
func (p discoverParams) optionsKey() string {
	return fmt.Sprintf("eps=%g|arm=%t", p.epsilon, p.armstrong)
}

// runDiscovery executes one admitted discovery. Governed overruns —
// budget, deadline, contained panic — return the partial response
// (Partial set, Error describing the cutoff) with a nil error, honouring
// the partial-result contract over the wire; hard failures return a nil
// response.
func (s *Server) runDiscovery(ctx context.Context, d *dataset, p discoverParams) (*DiscoverResponse, error) {
	start := time.Now()
	budget := guard.WithTimeout(p.timeout, p.units)

	if p.algorithm == "incremental" {
		return s.runIncremental(ctx, d, p, start)
	}
	if p.algorithm == "depminer" || p.algorithm == "depminer2" {
		return s.runDepminer(ctx, d, p, start, budget)
	}

	rel, fp, err := d.snapshot()
	if err != nil {
		return nil, err
	}
	resp := &DiscoverResponse{
		Dataset:     d.id,
		Fingerprint: fp,
		Algorithm:   p.algorithm,
		Rows:        rel.Rows(),
		Attributes:  rel.Arity(),
	}
	var (
		cover   fd.Cover
		partial bool
		runErr  error
	)
	switch p.algorithm {
	case "fastfds":
		res, rerr := fastfds.RunOpts(ctx, rel, fastfds.Options{Budget: budget})
		runErr = rerr
		if res != nil {
			cover, partial = res.FDs, res.Partial
			resp.DFSNodes = res.Nodes
		}
	case "tane":
		res, rerr := tane.Run(ctx, rel, tane.Options{
			Epsilon:           p.epsilon,
			Workers:           p.workers,
			MaxPartitionBytes: p.maxPartitionBytes,
			Budget:            budget,
		})
		runErr = rerr
		if res != nil {
			cover, partial = res.FDs, res.Partial
			resp.LatticeNodes = res.LatticeNodes
			s.stats.mu.Lock()
			s.stats.addPstore(res.Stats)
			s.stats.mu.Unlock()
		}
	}
	if runErr != nil && !partial {
		return nil, runErr
	}
	resp.FDs = renderCover(cover, rel.Names())
	resp.Partial = partial
	if runErr != nil {
		resp.Error = runErr.Error()
	}
	resp.BudgetUsed = budget.Used()
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	return resp, nil
}

// runIncremental serves the "incremental" algorithm: the cover is
// re-derived from the session's maintained agree sets (steps 2–4 only),
// at a cost independent of the dataset's row count.
func (s *Server) runIncremental(ctx context.Context, d *dataset, p discoverParams, start time.Time) (*DiscoverResponse, error) {
	dctx, cancel := context.WithTimeout(ctx, p.timeout)
	defer cancel()
	cover, info, err := d.deriveCover(dctx)
	if err != nil {
		return nil, err
	}
	resp := &DiscoverResponse{
		Dataset:     info.ID,
		Fingerprint: info.Fingerprint,
		Algorithm:   p.algorithm,
		Rows:        info.Rows,
		Attributes:  info.Attributes,
		FDs:         renderCover(cover, info.Names),
		ElapsedMS:   float64(time.Since(start)) / float64(time.Millisecond),
	}
	return resp, nil
}

// renderCover formats FDs with attribute names, one string per
// dependency, in the canonical order.
func renderCover(cover fd.Cover, names []string) []string {
	out := make([]string, len(cover))
	for i, f := range cover {
		out[i] = f.Names(names)
	}
	return out
}

// classifyStatus maps a discovery failure to an HTTP status.
func classifyStatus(err error) int {
	switch {
	case errors.Is(err, guard.ErrInvalidOptions):
		return http.StatusBadRequest
	case guard.Governed(err), errors.Is(err, context.DeadlineExceeded):
		// Governed but without a partial result to return.
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}
