package server

// Distributed-discovery tests: the coordinator/worker fan-out must be
// invisible in results. The differential sweep crosses shard counts,
// algorithms, and spill thresholds against live worker fleets and
// requires covers byte-identical to a from-scratch core run; the fault
// tests kill workers at every rung of the fallback ladder (dead
// endpoint, mid-stream death, torn attestation, injected faults) and
// require a local fallback or a governed partial — never a wrong cover.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/client"
	"repro/internal/agree"
	"repro/internal/attrset"
	"repro/internal/datagen"
	"repro/internal/extsort"
	"repro/internal/faultinject"
	"repro/internal/partition"
	"repro/internal/relation"
	"repro/wire"
)

// newWorkerFleet boots n worker servers and returns their endpoints.
func newWorkerFleet(t *testing.T, n int, cfg Config) []string {
	t.Helper()
	endpoints := make([]string, n)
	for i := range endpoints {
		_, ts := newTestServer(t, cfg)
		endpoints[i] = ts.URL
	}
	return endpoints
}

// newCoordinator boots a coordinator over the given worker endpoints.
func newCoordServer(t *testing.T, endpoints []string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.WorkerEndpoints = endpoints
	return newTestServer(t, cfg)
}

func discover(t *testing.T, ts *httptest.Server, req DiscoverRequest) (int, DiscoverResponse) {
	t.Helper()
	var resp DiscoverResponse
	code := postJSON(t, ts.URL+"/v1/discover", req, &resp)
	return code, resp
}

func shardTestRelation(t *testing.T, seed uint64) *relation.Relation {
	t.Helper()
	r, err := datagen.Generate(datagen.Spec{Attrs: 5, Rows: 70, Correlation: 0.5, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestShardedDifferentialSweep is the tentpole's correctness proof over
// the wire: for shard counts {1,2,4} × algorithms × spill thresholds,
// a coordinated discovery against a live 2-worker fleet returns exactly
// the single-node cover. Workers are shared across configs (their plan
// cache and pushed datasets persist); the coordinator is fresh per
// config so every run recomputes instead of hitting its result cache.
func TestShardedDifferentialSweep(t *testing.T) {
	r := shardTestRelation(t, 3)
	want := fromScratchCover(t, r)
	workers := newWorkerFleet(t, 2, Config{})

	for _, algorithm := range []string{"depminer", "depminer2"} {
		for _, shards := range []int{1, 2, 4} {
			for _, maxAgree := range []int64{0, 1} {
				name := fmt.Sprintf("%s/shards=%d/maxAgree=%d", algorithm, shards, maxAgree)
				_, ts := newCoordServer(t, workers, Config{SpillDir: t.TempDir()})
				reg := register(t, ts, r)
				code, resp := discover(t, ts, DiscoverRequest{
					Dataset: reg.ID, Algorithm: algorithm,
					Shards: shards, MaxAgreeBytes: maxAgree,
				})
				if code != http.StatusOK {
					t.Fatalf("%s: status %d (%s)", name, code, resp.Error)
				}
				if resp.Partial {
					t.Fatalf("%s: unexpected partial: %s", name, resp.Error)
				}
				if !sameCover(resp.FDs, want) {
					t.Fatalf("%s: cover differs from single-node reference:\ngot  %v\nwant %v", name, resp.FDs, want)
				}
				if resp.Shards != shards {
					t.Fatalf("%s: resp.Shards = %d", name, resp.Shards)
				}
				if resp.ShardsRemote+resp.ShardsLocal != shards {
					t.Fatalf("%s: remote %d + local %d != %d shards",
						name, resp.ShardsRemote, resp.ShardsLocal, shards)
				}
				if resp.ShardsRemote != shards {
					t.Fatalf("%s: %d shards fell back locally against a healthy fleet", name, resp.ShardsLocal)
				}
			}
		}
	}
}

// TestShardDegradationIsGlobal pins the Algorithm 2 → 3 degradation on
// the coordinator: decided once from the global couple count, noted in
// the response exactly like single-node, and still byte-identical.
func TestShardDegradationIsGlobal(t *testing.T) {
	r := shardTestRelation(t, 4)
	workers := newWorkerFleet(t, 2, Config{})
	_, ts := newCoordServer(t, workers, Config{})
	reg := register(t, ts, r)

	code, resp := discover(t, ts, DiscoverRequest{Dataset: reg.ID, Shards: 2, MaxCouples: 1})
	if code != http.StatusOK || resp.Partial {
		t.Fatalf("degraded sharded discover: code=%d partial=%v (%s)", code, resp.Partial, resp.Error)
	}
	if !sameCover(resp.FDs, fromScratchCover(t, r)) {
		t.Fatalf("degraded sharded cover differs from reference")
	}
	if len(resp.Notes) != 1 {
		t.Fatalf("degradation note missing: %v", resp.Notes)
	}

	// The same request single-node produces the identical note.
	_, solo := newTestServer(t, Config{})
	regS := register(t, solo, r)
	codeS, respS := discover(t, solo, DiscoverRequest{Dataset: regS.ID, MaxCouples: 1})
	if codeS != http.StatusOK {
		t.Fatalf("single-node degraded discover: %d", codeS)
	}
	if len(respS.Notes) != 1 || respS.Notes[0] != resp.Notes[0] {
		t.Fatalf("degradation notes differ:\nsharded     %v\nsingle-node %v", resp.Notes, respS.Notes)
	}
}

// TestShardDatasetPushAndStats starts with a cold fleet: no worker knows
// the dataset, so the first dispatch 404s, the coordinator pushes the
// CSV through the ordinary registration API, and the retry succeeds
// remotely. Both sides' /v1/stats must account for all of it.
func TestShardDatasetPushAndStats(t *testing.T) {
	r := shardTestRelation(t, 5)
	workers := newWorkerFleet(t, 2, Config{})
	_, ts := newCoordServer(t, workers, Config{})
	reg := register(t, ts, r)

	code, resp := discover(t, ts, DiscoverRequest{Dataset: reg.ID, Shards: 2})
	if code != http.StatusOK || resp.Partial {
		t.Fatalf("cold-fleet discover: code=%d partial=%v (%s)", code, resp.Partial, resp.Error)
	}
	if resp.ShardsRemote != 2 {
		t.Fatalf("remote shards = %d, want 2 (fleet was healthy)", resp.ShardsRemote)
	}
	if !sameCover(resp.FDs, fromScratchCover(t, r)) {
		t.Fatal("cold-fleet cover differs from reference")
	}

	var st StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != http.StatusOK || st.Shard == nil {
		t.Fatalf("coordinator stats: code=%d shard=%v", code, st.Shard)
	}
	if st.Shard.Dispatched != 2 || st.Shard.Remote != 2 || st.Shard.LocalFallbacks != 0 {
		t.Fatalf("coordinator fan-out counters: %+v", st.Shard)
	}
	if st.Shard.DatasetsPushed != 2 {
		t.Fatalf("datasets pushed = %d, want 2 (one per cold worker)", st.Shard.DatasetsPushed)
	}
	if st.Shard.ReceivedSets == 0 || st.Shard.ReceivedBytes == 0 {
		t.Fatalf("received counters empty: %+v", st.Shard)
	}
	if st.Shard.DispatchTotalMS <= 0 || st.Shard.StreamTotalMS <= 0 || st.Shard.MergeTotalMS <= 0 {
		t.Fatalf("per-shard phase timings missing: %+v", st.Shard)
	}

	// Each worker served one shard and now holds the pushed dataset.
	for i, w := range workers {
		var wst StatsResponse
		if code := getJSON(t, w+"/v1/stats", &wst); code != http.StatusOK || wst.Shard == nil {
			t.Fatalf("worker %d stats: code=%d shard=%v", i, code, wst.Shard)
		}
		if wst.Shard.Served != 1 || wst.Shard.ServedErrors != 0 {
			t.Fatalf("worker %d serving counters: %+v", i, wst.Shard)
		}
		if wst.Datasets != 1 {
			t.Fatalf("worker %d datasets = %d, want the pushed one", i, wst.Datasets)
		}
	}
}

// TestShardWorkerDownFallsBackLocal points every endpoint at a dead
// port: the full fan-out must degrade to local computation and still
// produce the exact cover.
func TestShardWorkerDownFallsBackLocal(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	r := shardTestRelation(t, 6)
	_, ts := newCoordServer(t, []string{deadURL}, Config{})
	reg := register(t, ts, r)
	code, resp := discover(t, ts, DiscoverRequest{Dataset: reg.ID, Shards: 2})
	if code != http.StatusOK || resp.Partial {
		t.Fatalf("dead-fleet discover: code=%d partial=%v (%s)", code, resp.Partial, resp.Error)
	}
	if resp.ShardsLocal != 2 || resp.ShardsRemote != 0 {
		t.Fatalf("dead fleet: remote=%d local=%d, want all local", resp.ShardsRemote, resp.ShardsLocal)
	}
	if !sameCover(resp.FDs, fromScratchCover(t, r)) {
		t.Fatal("fallback cover differs from reference")
	}
	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Shard == nil || st.Shard.LocalFallbacks != 2 {
		t.Fatalf("local fallback counter: %+v", st.Shard)
	}
}

// fakeWorker serves /v1/shard/agree with an arbitrary handler while
// delegating everything else (the dataset push) to a real server.
func fakeWorker(t *testing.T, real *httptest.Server, shard http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/shard/agree", shard)
	mux.Handle("/", httputilProxy(real.URL))
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// httputilProxy forwards requests to base — a minimal reverse proxy so
// fake workers can still accept dataset pushes.
func httputilProxy(base string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		req, err := http.NewRequestWithContext(r.Context(), r.Method, base+r.URL.Path+"?"+r.URL.RawQuery, r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		req.Header = r.Header
		resp, err := http.DefaultTransport.RoundTrip(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 32<<10)
		for {
			n, rerr := resp.Body.Read(buf)
			if n > 0 {
				w.Write(buf[:n])
			}
			if rerr != nil {
				return
			}
		}
	})
}

// TestShardWorkerDiesMidStream kills the worker after the run stream
// started: the coordinator's adoption must reject the torn stream and
// the shard must be recomputed locally, cover intact.
func TestShardWorkerDiesMidStream(t *testing.T) {
	_, realWorker := newTestServer(t, Config{})
	worker := fakeWorker(t, realWorker, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", wire.RunContentType)
		w.WriteHeader(http.StatusOK)
		// Valid magic, then a block header promising bytes that never
		// arrive — a worker dying mid-write.
		w.Write([]byte("DMRUN1\n\xff\xff\x00\x00"))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	})

	r := shardTestRelation(t, 7)
	_, ts := newCoordServer(t, []string{worker.URL}, Config{})
	reg := register(t, ts, r)
	code, resp := discover(t, ts, DiscoverRequest{Dataset: reg.ID, Shards: 2})
	if code != http.StatusOK || resp.Partial {
		t.Fatalf("mid-stream death: code=%d partial=%v (%s)", code, resp.Partial, resp.Error)
	}
	if resp.ShardsLocal != 2 {
		t.Fatalf("mid-stream death: local=%d, want 2", resp.ShardsLocal)
	}
	if !sameCover(resp.FDs, fromScratchCover(t, r)) {
		t.Fatal("cover differs after mid-stream worker death")
	}
}

// TestShardTrailerMismatchDiscards serves a perfectly framed stream of
// bogus agree sets whose end-of-stream attestation disagrees with the
// record count: the adopted run must be discarded (never merged — the
// cover proves it) and the shard recomputed locally.
func TestShardTrailerMismatchDiscards(t *testing.T) {
	_, realWorker := newTestServer(t, Config{})
	worker := fakeWorker(t, realWorker, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Trailer", wire.ShardSetsTrailer)
		w.Header().Set("Content-Type", wire.RunContentType)
		rw := extsort.NewRunWriter(w)
		// Sorted, well-formed, and wrong: were these ever merged, the
		// cover below could not match the reference.
		for i := 1; i <= 3; i++ {
			var s attrset.Set
			s[0] = uint64(i)
			rw.Write(s)
		}
		rw.Close()
		w.Header().Set(wire.ShardSetsTrailer, "999")
	})

	r := shardTestRelation(t, 8)
	_, ts := newCoordServer(t, []string{worker.URL}, Config{})
	reg := register(t, ts, r)
	code, resp := discover(t, ts, DiscoverRequest{Dataset: reg.ID, Shards: 1})
	if code != http.StatusOK || resp.Partial {
		t.Fatalf("trailer mismatch: code=%d partial=%v (%s)", code, resp.Partial, resp.Error)
	}
	if resp.ShardsLocal != 1 || resp.ShardsRemote != 0 {
		t.Fatalf("trailer mismatch: remote=%d local=%d, want the shard recomputed", resp.ShardsRemote, resp.ShardsLocal)
	}
	if !sameCover(resp.FDs, fromScratchCover(t, r)) {
		t.Fatal("cover differs — a discarded run leaked into the merge")
	}
}

// TestShardFaultInjectionSweep arms every distributed hook point. A
// dispatch or stream fault degrades that shard to the local rung; a
// merge fault fails the discovery cleanly. In no case may a wrong cover
// escape.
func TestShardFaultInjectionSweep(t *testing.T) {
	r := shardTestRelation(t, 9)
	want := fromScratchCover(t, r)
	workers := newWorkerFleet(t, 2, Config{})

	for _, point := range faultinject.ShardPoints() {
		t.Run(point, func(t *testing.T) {
			_, ts := newCoordServer(t, workers, Config{})
			reg := register(t, ts, r)
			faultinject.Set(point, func() error { return fmt.Errorf("injected %s fault", point) })
			code, resp := discover(t, ts, DiscoverRequest{Dataset: reg.ID, Shards: 2})
			faultinject.Reset()

			switch point {
			case faultinject.ShardMerge:
				if code == http.StatusOK && !resp.Partial {
					t.Fatalf("merge fault produced a clean 200: %v", resp.FDs)
				}
			default:
				if code != http.StatusOK || resp.Partial {
					t.Fatalf("%s fault: code=%d partial=%v (%s)", point, code, resp.Partial, resp.Error)
				}
				if resp.ShardsLocal != 2 {
					t.Fatalf("%s fault: local=%d, want every shard on the fallback rung", point, resp.ShardsLocal)
				}
				if !sameCover(resp.FDs, want) {
					t.Fatalf("%s fault: cover differs from reference", point)
				}
			}

			// The coordinator recovers fully once the fault clears.
			code, resp = discover(t, ts, DiscoverRequest{Dataset: reg.ID, Shards: 2})
			if code != http.StatusOK || resp.Partial || !sameCover(resp.FDs, want) {
				t.Fatalf("after %s cleared: code=%d partial=%v cover ok=%v",
					point, code, resp.Partial, sameCover(resp.FDs, want))
			}
		})
	}
}

// TestShardBudgetGovernedPartial gives the coordinator a budget smaller
// than the couple space: the upfront charge fails before any fan-out
// and the discovery reports a governed partial — 200, Partial set, no
// cover — exactly like a single-node budget overrun.
func TestShardBudgetGovernedPartial(t *testing.T) {
	r := shardTestRelation(t, 10)
	workers := newWorkerFleet(t, 1, Config{})
	_, ts := newCoordServer(t, workers, Config{MaxBudgetUnits: 3})
	reg := register(t, ts, r)

	code, resp := discover(t, ts, DiscoverRequest{Dataset: reg.ID, Shards: 2})
	if code != http.StatusOK {
		t.Fatalf("governed sharded discover: status %d", code)
	}
	if !resp.Partial || resp.Error == "" {
		t.Fatalf("expected governed partial, got partial=%v error=%q", resp.Partial, resp.Error)
	}
	if len(resp.FDs) != 0 {
		t.Fatalf("governed partial carried a cover: %v", resp.FDs)
	}
	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Shard != nil && st.Shard.Remote != 0 {
		t.Fatalf("over-budget discovery still dispatched shards: %+v", st.Shard)
	}
}

// TestShardedDiscoveryPopulatesCache is the satellite-2 regression: the
// result-cache key excludes shard topology, so a sharded discovery must
// populate the entry a later single-node request hits — and vice versa.
func TestShardedDiscoveryPopulatesCache(t *testing.T) {
	r := shardTestRelation(t, 11)
	workers := newWorkerFleet(t, 2, Config{})
	_, ts := newCoordServer(t, workers, Config{})
	reg := register(t, ts, r)

	code, sharded := discover(t, ts, DiscoverRequest{Dataset: reg.ID, Shards: 2})
	if code != http.StatusOK || sharded.Cached {
		t.Fatalf("sharded discover: code=%d cached=%v", code, sharded.Cached)
	}
	code, plain := discover(t, ts, DiscoverRequest{Dataset: reg.ID})
	if code != http.StatusOK {
		t.Fatalf("plain discover: %d", code)
	}
	if !plain.Cached {
		t.Fatal("plain discover missed the cache entry the sharded run populated")
	}
	if !sameCover(plain.FDs, sharded.FDs) {
		t.Fatal("cached cover differs from the sharded one")
	}
	// And the reverse direction, on a second dataset.
	r2 := shardTestRelation(t, 12)
	reg2 := register(t, ts, r2)
	if code, first := discover(t, ts, DiscoverRequest{Dataset: reg2.ID}); code != http.StatusOK || first.Cached {
		t.Fatalf("plain cold discover: code=%d cached=%v", code, first.Cached)
	}
	code, second := discover(t, ts, DiscoverRequest{Dataset: reg2.ID, Shards: 2})
	if code != http.StatusOK || !second.Cached {
		t.Fatalf("sharded discover after plain: code=%d cached=%v, want a cache hit", code, second.Cached)
	}
}

// TestShardParamValidation pins the Shards knob contract.
func TestShardParamValidation(t *testing.T) {
	r := shardTestRelation(t, 13)

	// Shards on a non-coordinator is a client error, not a silent ignore.
	_, solo := newTestServer(t, Config{})
	regSolo := register(t, solo, r)
	if code, _ := discover(t, solo, DiscoverRequest{Dataset: regSolo.ID, Shards: 2}); code != http.StatusBadRequest {
		t.Fatalf("Shards on non-coordinator: status %d, want 400", code)
	}

	workers := newWorkerFleet(t, 1, Config{})
	_, ts := newCoordServer(t, workers, Config{})
	reg := register(t, ts, r)
	if code, _ := discover(t, ts, DiscoverRequest{Dataset: reg.ID, Shards: -1}); code != http.StatusBadRequest {
		t.Fatalf("negative Shards: want 400")
	}
	if code, _ := discover(t, ts, DiscoverRequest{Dataset: reg.ID, Algorithm: "fastfds", Shards: 2}); code != http.StatusBadRequest {
		t.Fatalf("Shards with fastfds: want 400")
	}
	// Absurd shard counts are clamped, not refused.
	code, resp := discover(t, ts, DiscoverRequest{Dataset: reg.ID, Shards: 1000})
	if code != http.StatusOK {
		t.Fatalf("Shards=1000: status %d", code)
	}
	if resp.Shards > 64 {
		t.Fatalf("shard count %d not clamped", resp.Shards)
	}
}

// TestShardAgreeEndpoint exercises the worker protocol directly: a full
// round trip through the SDK client (dispatch → adopt → merge → Finish)
// must reproduce the single-node family, and every malformed request
// must map to its status.
func TestShardAgreeEndpoint(t *testing.T) {
	r := shardTestRelation(t, 14)
	s, ts := newTestServer(t, Config{})
	reg := register(t, ts, r)

	db := partition.NewDatabase(r)
	plan := agree.NewPlan(db)
	ref, err := agree.Couples(context.Background(), db, agree.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	cl := newClientFor(t, ts)
	sp := extsort.NewSpiller(t.TempDir(), nil)
	defer sp.Close()
	var streamedSets int64
	for _, sh := range plan.Split(3) {
		stream, err := cl.AgreeShard(context.Background(), wire.ShardRequest{
			Fingerprint:  reg.Fingerprint,
			CoupleStart:  sh.Start,
			CoupleEnd:    sh.End,
			TotalCouples: plan.Couples(),
		})
		if err != nil {
			t.Fatalf("AgreeShard(%v): %v", sh, err)
		}
		pr, err := sp.AdoptRun(stream.Body, 0)
		if err != nil {
			t.Fatalf("AdoptRun(%v): %v", sh, err)
		}
		want, ok := stream.TrailerSets()
		if !ok {
			t.Fatalf("shard %v: missing sets trailer", sh)
		}
		if want != pr.Sets() {
			t.Fatalf("shard %v: trailer %d, adopted %d", sh, want, pr.Sets())
		}
		pr.Commit()
		streamedSets += pr.Sets()
		stream.Close()
	}
	var merged attrset.Family
	if err := sp.Merge(nil, func(set attrset.Set) error {
		merged = append(merged, set)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	fam := plan.Finish(merged)
	if len(fam) != len(ref.Sets) {
		t.Fatalf("remote family has %d sets, reference %d", len(fam), len(ref.Sets))
	}
	for i := range fam {
		if fam[i] != ref.Sets[i] {
			t.Fatalf("remote family differs at %d", i)
		}
	}

	// Worker-side serving counters. ServedSets counts per-shard
	// emissions, so cross-shard duplicates are counted once per shard
	// that emitted them — it must match what actually streamed, not the
	// deduplicated family size.
	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Shard == nil || st.Shard.Served != 3 || st.Shard.ServedSets != streamedSets {
		t.Fatalf("worker serving counters: %+v (streamed %d sets)", st.Shard, streamedSets)
	}

	// Protocol rejections.
	for name, tc := range map[string]struct {
		req  wire.ShardRequest
		code int
	}{
		"unknown fingerprint": {wire.ShardRequest{Fingerprint: "nope", CoupleEnd: 1, TotalCouples: 1}, http.StatusNotFound},
		"missing fingerprint": {wire.ShardRequest{CoupleEnd: 1, TotalCouples: 1}, http.StatusBadRequest},
		"negative start":      {wire.ShardRequest{Fingerprint: reg.Fingerprint, CoupleStart: -1, CoupleEnd: 1, TotalCouples: plan.Couples()}, http.StatusBadRequest},
		"inverted range":      {wire.ShardRequest{Fingerprint: reg.Fingerprint, CoupleStart: 2, CoupleEnd: 1, TotalCouples: plan.Couples()}, http.StatusBadRequest},
		"range past total":    {wire.ShardRequest{Fingerprint: reg.Fingerprint, CoupleEnd: plan.Couples() + 1, TotalCouples: plan.Couples()}, http.StatusBadRequest},
		"unshardable algo":    {wire.ShardRequest{Fingerprint: reg.Fingerprint, Algorithm: "tane", CoupleEnd: 1, TotalCouples: plan.Couples()}, http.StatusBadRequest},
		"couple mismatch":     {wire.ShardRequest{Fingerprint: reg.Fingerprint, CoupleEnd: 1, TotalCouples: plan.Couples() + 7}, http.StatusConflict},
	} {
		code := postJSON(t, ts.URL+"/v1/shard/agree", tc.req, nil)
		if code != tc.code {
			t.Errorf("%s: status %d, want %d", name, code, tc.code)
		}
	}
	if s.stats.shard.servedErrors == 0 {
		t.Error("served-error counter never moved")
	}
}

// TestShardPlanStaleAfterAppend grows the dataset between the
// coordinator's plan and the dispatch: the worker must refuse with 409
// rather than compute a range with a different meaning.
func TestShardPlanStaleAfterAppend(t *testing.T) {
	r := shardTestRelation(t, 15)
	_, ts := newTestServer(t, Config{})
	reg := register(t, ts, r)
	plan := agree.NewPlan(partition.NewDatabase(r))

	// Coordinator planned against the pre-append fingerprint; the append
	// lands before the dispatch arrives.
	if code, _ := appendCSV(t, ts.URL, reg.ID, "a,b,c,d,e\n"); code != http.StatusOK {
		t.Fatal("append failed")
	}
	req := wire.ShardRequest{Fingerprint: reg.Fingerprint, CoupleEnd: 1, TotalCouples: plan.Couples()}
	if code := postJSON(t, ts.URL+"/v1/shard/agree", req, nil); code != http.StatusNotFound {
		// The old fingerprint no longer names any dataset: 404, which
		// sends the coordinator down the push-and-retry rung.
		t.Fatalf("stale fingerprint: status %d, want 404", code)
	}
}

// newClientFor builds an SDK client against a test server — the same
// client type the coordinator dispatches through.
func newClientFor(t *testing.T, ts *httptest.Server) *client.Client {
	t.Helper()
	return client.New(ts.URL)
}
