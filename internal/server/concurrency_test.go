package server

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/relation"
)

// TestAdmissionControlRejectsOverCap pins jobs in the running state with
// the test hook, so the 429 behaviour is deterministic: with MaxJobs=2,
// the first two async submissions are admitted and every further one is
// rejected with Retry-After until a slot frees.
func TestAdmissionControlRejectsOverCap(t *testing.T) {
	const capJobs = 2
	s, ts := newTestServer(t, Config{MaxJobs: capJobs})
	release := make(chan struct{})
	s.testHookJobStart = func(string) { <-release }
	reg := register(t, ts, relation.PaperExample())

	force := true
	submit := func() (int, http.Header) {
		req := DiscoverRequest{Dataset: reg.ID, Async: &force}
		body := fmt.Sprintf(`{"dataset":%q,"async":true}`, req.Dataset)
		resp, err := http.Post(ts.URL+"/v1/discover", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode, resp.Header
	}

	for i := 0; i < capJobs; i++ {
		if code, _ := submit(); code != http.StatusAccepted {
			t.Fatalf("submission %d: status = %d, want 202", i, code)
		}
	}
	for i := 0; i < 5; i++ {
		code, hdr := submit()
		if code != http.StatusTooManyRequests {
			t.Fatalf("over-cap submission %d: status = %d, want 429", i, code)
		}
		if hdr.Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After header")
		}
	}
	st := s.jobs.stats()
	if st.Running != capJobs || st.Rejected != 5 {
		t.Fatalf("queue stats = %+v", st)
	}

	// Freeing the slots lets the pinned jobs finish and new work in (the
	// hook returns immediately once the channel is closed).
	close(release)
	deadline := time.Now().Add(10 * time.Second)
	for s.jobs.stats().Running > 0 {
		if time.Now().After(deadline) {
			t.Fatal("pinned jobs never drained")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var resp DiscoverResponse
	if code := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: reg.ID}, &resp); code != http.StatusOK {
		t.Fatalf("post-release discover status = %d", code)
	}
	if st := s.jobs.stats(); st.PeakRunning > capJobs {
		t.Fatalf("peak running %d exceeded the cap %d", st.PeakRunning, capJobs)
	}
}

// TestDiscoverHammer fires a burst of concurrent discoveries (run with
// -race in CI): every response must be 200 or 429 — never a 5xx — and
// admission control must never let more than MaxJobs pipelines run at
// once, which both the peak counter and the hook-observed concurrency
// verify.
func TestDiscoverHammer(t *testing.T) {
	const capJobs = 3
	s, ts := newTestServer(t, Config{MaxJobs: capJobs, SyncRowLimit: 1 << 20})
	var inFlight, maxInFlight atomic.Int64
	s.testHookJobStart = func(string) {
		n := inFlight.Add(1)
		for {
			m := maxInFlight.Load()
			if n <= m || maxInFlight.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(time.Millisecond) // widen the overlap window
		inFlight.Add(-1)
	}
	r, err := datagen.Generate(datagen.Spec{Attrs: 5, Rows: 200, Correlation: 0.3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	reg := register(t, ts, r)

	const clients = 24
	var wg sync.WaitGroup
	var ok200, rej429 atomic.Int64
	algos := []string{"depminer", "depminer2", "fastfds", "tane", "incremental"}
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"dataset":%q,"algorithm":%q}`, reg.ID, algos[i%len(algos)])
			resp, err := http.Post(ts.URL+"/v1/discover", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				ok200.Add(1)
			case http.StatusTooManyRequests:
				rej429.Add(1)
			default:
				t.Errorf("unexpected status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()

	if got := maxInFlight.Load(); got > capJobs {
		t.Fatalf("observed %d concurrent pipelines, cap is %d", got, capJobs)
	}
	if st := s.jobs.stats(); st.PeakRunning > capJobs {
		t.Fatalf("peak running %d exceeded the cap %d", st.PeakRunning, capJobs)
	}
	if ok200.Load() == 0 {
		t.Fatal("no discovery succeeded under load")
	}
	t.Logf("hammer: %d ok, %d rejected, peak concurrency %d/%d",
		ok200.Load(), rej429.Load(), maxInFlight.Load(), capJobs)
}

// TestConcurrentAppendsAndDiscoveries interleaves writers (appends) and
// readers (discoveries) on one dataset under -race: the server must stay
// consistent and every successful discovery must return a cover that is
// correct for SOME committed prefix (verified by fingerprints moving
// monotonically and no 5xx).
func TestConcurrentAppendsAndDiscoveries(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxJobs: 4})
	reg := register(t, ts, relation.PaperExample())

	var wg sync.WaitGroup
	stop := time.Now().Add(300 * time.Millisecond)
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for time.Now().Before(stop) {
			i++
			row := fmt.Sprintf("e%d,d%d,%d,Dept%d,m%d\n", i, i%3, 1990+i%10, i%3, i%4)
			resp, err := http.Post(ts.URL+"/v1/datasets/"+reg.ID+"/rows", "text/csv", strings.NewReader(row))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("append status = %d", resp.StatusCode)
				return
			}
		}
	}()
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stop) {
				body := fmt.Sprintf(`{"dataset":%q,"algorithm":"incremental"}`, reg.ID)
				resp, err := http.Post(ts.URL+"/v1/discover", "application/json", strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					t.Errorf("discover status = %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
}
