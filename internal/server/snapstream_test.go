package server

// Satellite: snapshot-fed discovery. A durable dataset whose snapshot
// fully covers its acknowledged state must discover by streaming the
// snapshot's columns straight into the partition build — no
// full-relation materialisation — and fall back to the materialised
// path the moment the WAL grows past the snapshot or the request needs
// the original values (Armstrong).

import (
	"net/http"
	"testing"

	"repro/internal/relation"
)

// snapNil reports whether the dataset has ever materialised its
// relation snapshot — the white-box "no rehydration" proof.
func snapNil(t *testing.T, s *Server, id string) bool {
	t.Helper()
	d, ok := s.reg.get(id)
	if !ok {
		t.Fatalf("dataset %s not registered", id)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.snap == nil
}

func TestSnapshotStreamedDiscovery(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{DataDir: dir, SnapshotEvery: -1})
	base := relation.PaperExample()
	reg := register(t, ts, base)
	if code, _ := appendCSV(t, ts.URL, reg.ID, "90,6,99,Research,7\n91,7,01,Sales,8\n"); code != http.StatusOK {
		t.Fatal("append failed")
	}
	grown := appendRows(t, base, [][]string{
		{"90", "6", "99", "Research", "7"},
		{"91", "7", "01", "Sales", "8"},
	})
	// Fold the WAL into a snapshot; the snapshot now reproduces the full
	// acknowledged state by itself.
	if err := s.store.CompactAll(); err != nil {
		t.Fatal(err)
	}

	var resp DiscoverResponse
	if code := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: reg.ID}, &resp); code != http.StatusOK {
		t.Fatalf("discover status %d (%s)", code, resp.Error)
	}
	if !resp.SnapshotStreamed {
		t.Fatal("discovery did not stream the complete snapshot")
	}
	if !sameCover(resp.FDs, fromScratchCover(t, grown)) {
		t.Fatalf("streamed cover differs from reference:\n%v", resp.FDs)
	}
	if resp.Rows != grown.Rows() || resp.Attributes != grown.Arity() {
		t.Fatalf("streamed shape %dx%d, want %dx%d", resp.Rows, resp.Attributes, grown.Rows(), grown.Arity())
	}
	// The proof that nothing was rehydrated: the dataset's materialised
	// snapshot was never built, and the stats counter moved.
	if !snapNil(t, s, reg.ID) {
		t.Fatal("streamed discovery materialised the relation anyway")
	}
	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Discoveries.SnapshotStreams != 1 {
		t.Fatalf("SnapshotStreams = %d, want 1", st.Discoveries.SnapshotStreams)
	}

	// An Armstrong construction needs the original values, so it must
	// take the materialised path — correctly, not by failing.
	var arm DiscoverResponse
	if code := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: reg.ID, Armstrong: true}, &arm); code != http.StatusOK {
		t.Fatalf("armstrong discover status %d", code)
	}
	if arm.SnapshotStreamed {
		t.Fatal("armstrong discovery claimed to stream (it needs the relation)")
	}
	if len(arm.Armstrong) == 0 {
		t.Fatal("armstrong discovery returned no rows")
	}
	if snapNil(t, s, reg.ID) {
		t.Fatal("armstrong discovery did not materialise the relation")
	}

	// A WAL record past the snapshot makes it incomplete: the next
	// discovery degrades to the materialised path and stays correct.
	if code, _ := appendCSV(t, ts.URL, reg.ID, "92,8,02,Ops,9\n"); code != http.StatusOK {
		t.Fatal("second append failed")
	}
	grown2 := appendRows(t, grown, [][]string{{"92", "8", "02", "Ops", "9"}})
	var after DiscoverResponse
	if code := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: reg.ID}, &after); code != http.StatusOK {
		t.Fatalf("post-append discover status %d", code)
	}
	if after.SnapshotStreamed {
		t.Fatal("discovery streamed a snapshot that no longer covers the dataset")
	}
	if !sameCover(after.FDs, fromScratchCover(t, grown2)) {
		t.Fatal("post-append cover differs from reference")
	}
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Discoveries.SnapshotStreams != 1 {
		t.Fatalf("SnapshotStreams moved to %d on non-streamed runs", st.Discoveries.SnapshotStreams)
	}
}

// TestSnapshotStreamedRecovery pins the boot path: after a clean
// shutdown (which compacts), a rebooted server discovers straight from
// the recovered snapshot without materialising the relation.
func TestSnapshotStreamedRecovery(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{DataDir: dir, SnapshotEvery: -1})
	base := relation.PaperExample()
	reg := register(t, ts1, base)
	if code, _ := appendCSV(t, ts1.URL, reg.ID, "90,6,99,Research,7\n"); code != http.StatusOK {
		t.Fatal("append failed")
	}
	grown := appendRows(t, base, [][]string{{"90", "6", "99", "Research", "7"}})
	if err := s1.Shutdown(t.Context()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	s2, ts2 := newTestServer(t, Config{DataDir: dir, SnapshotEvery: -1})
	defer s2.Shutdown(t.Context())
	var resp DiscoverResponse
	if code := postJSON(t, ts2.URL+"/v1/discover", DiscoverRequest{Dataset: reg.ID}, &resp); code != http.StatusOK {
		t.Fatalf("discover on recovered dataset: %d (%s)", code, resp.Error)
	}
	if !resp.SnapshotStreamed {
		t.Fatal("recovered dataset did not stream its snapshot")
	}
	if !sameCover(resp.FDs, fromScratchCover(t, grown)) {
		t.Fatal("recovered streamed cover differs from reference")
	}
	if !snapNil(t, s2, reg.ID) {
		t.Fatal("recovered streamed discovery materialised the relation")
	}
}

// TestSnapshotStreamedSharded combines the tentpole with the satellite:
// a coordinator whose dataset is snapshot-complete plans and shards from
// the stream; only the cold-fleet dataset push is allowed to rehydrate.
func TestSnapshotStreamedSharded(t *testing.T) {
	dir := t.TempDir()
	workers := newWorkerFleet(t, 2, Config{})
	s, ts := newCoordServer(t, workers, Config{DataDir: dir, SnapshotEvery: -1})
	base := relation.PaperExample()
	reg := register(t, ts, base)
	if code, _ := appendCSV(t, ts.URL, reg.ID, "90,6,99,Research,7\n"); code != http.StatusOK {
		t.Fatal("append failed")
	}
	grown := appendRows(t, base, [][]string{{"90", "6", "99", "Research", "7"}})
	if err := s.store.CompactAll(); err != nil {
		t.Fatal(err)
	}

	code, resp := discover(t, ts, DiscoverRequest{Dataset: reg.ID, Shards: 2})
	if code != http.StatusOK || resp.Partial {
		t.Fatalf("sharded streamed discover: code=%d partial=%v (%s)", code, resp.Partial, resp.Error)
	}
	if !resp.SnapshotStreamed {
		t.Fatal("coordinator did not plan from the snapshot stream")
	}
	if resp.ShardsRemote != 2 {
		t.Fatalf("remote shards = %d, want 2", resp.ShardsRemote)
	}
	if !sameCover(resp.FDs, fromScratchCover(t, grown)) {
		t.Fatal("sharded streamed cover differs from reference")
	}
	// The cold fleet forced one CSV push, which is the single permitted
	// rehydration point.
	if snapNil(t, s, reg.ID) {
		t.Fatal("expected the cold-fleet push to have materialised the relation once")
	}
}
