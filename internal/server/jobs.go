package server

import (
	"fmt"
	"sync"
	"time"

	"repro/wire"
)

// Job states (wire constants, re-exported for the server's own use).
const (
	JobRunning = wire.JobRunning
	JobDone    = wire.JobDone
	JobFailed  = wire.JobFailed
)

// job is one admitted discovery, sync or async. Async jobs are queryable
// at /v1/jobs/{id} until pruned.
type job struct {
	id        string
	dataset   string
	algorithm string
	created   time.Time

	mu       sync.Mutex
	state    string
	finished time.Time
	resp     *DiscoverResponse
	errMsg   string
}

func (j *job) finish(resp *DiscoverResponse, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	j.resp = resp
	j.errMsg = errMsg
	if resp == nil {
		j.state = JobFailed
	} else {
		j.state = JobDone
	}
}

func (j *job) info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := JobInfo{
		ID:        j.id,
		Dataset:   j.dataset,
		Algorithm: j.algorithm,
		State:     j.state,
		Created:   j.created,
		Error:     j.errMsg,
		Result:    j.resp,
	}
	if !j.finished.IsZero() {
		info.Finished = &j.finished
	}
	return info
}

// jobQueue is the admission controller: at most cap discoveries (sync
// requests and async jobs alike) run concurrently; everything beyond is
// rejected at submission time — never queued unboundedly — and the
// handler answers 429 with Retry-After. Finished async jobs are retained
// for polling, pruned oldest-first past maxRecords.
type jobQueue struct {
	mu          sync.Mutex
	cap         int
	running     int
	peakRunning int
	admitted    int64
	rejected    int64
	nextID      int
	jobs        map[string]*job
	order       []string // creation order of retained async jobs
	maxRecords  int
}

func newJobQueue(capJobs, maxRecords int) *jobQueue {
	return &jobQueue{cap: capJobs, maxRecords: maxRecords, jobs: make(map[string]*job)}
}

// tryAdmit claims one execution slot; the caller must release() it when
// the discovery finishes. It never blocks: a full queue is the caller's
// cue to answer 429.
func (q *jobQueue) tryAdmit() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.running >= q.cap {
		q.rejected++
		return false
	}
	q.running++
	q.admitted++
	if q.running > q.peakRunning {
		q.peakRunning = q.running
	}
	return true
}

func (q *jobQueue) release() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.running--
}

// add registers an async job record (the slot must already be admitted).
func (q *jobQueue) add(dataset, algorithm string) *job {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.nextID++
	j := &job{
		id:        fmt.Sprintf("job-%d", q.nextID),
		dataset:   dataset,
		algorithm: algorithm,
		created:   time.Now(),
		state:     JobRunning,
	}
	q.jobs[j.id] = j
	q.order = append(q.order, j.id)
	// Prune oldest finished records over the retention cap; running jobs
	// are never pruned.
	for q.maxRecords > 0 && len(q.jobs) > q.maxRecords {
		pruned := false
		for i, id := range q.order {
			old := q.jobs[id]
			old.mu.Lock()
			done := old.state != JobRunning
			old.mu.Unlock()
			if done {
				delete(q.jobs, id)
				q.order = append(q.order[:i], q.order[i+1:]...)
				pruned = true
				break
			}
		}
		if !pruned {
			break
		}
	}
	return j
}

func (q *jobQueue) get(id string) (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	return j, ok
}

func (q *jobQueue) stats() JobQueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return JobQueueStats{
		Cap:         q.cap,
		Running:     q.running,
		PeakRunning: q.peakRunning,
		Admitted:    q.admitted,
		Rejected:    q.rejected,
		Retained:    len(q.jobs),
	}
}
