package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/relation"
)

// newTestServer wires a Server into an httptest server, returning both so
// tests can reach white-box state (hooks, counters) and the wire at once.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func relationCSV(t *testing.T, r *relation.Relation) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// postJSON posts v as JSON and decodes the response into out (if non-nil),
// returning the status code.
func postJSON(t *testing.T, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	decode(t, resp.Body, out)
	return resp.StatusCode
}

func postCSV(t *testing.T, url, csvBody string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "text/csv", strings.NewReader(csvBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	decode(t, resp.Body, out)
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	decode(t, resp.Body, out)
	return resp.StatusCode
}

func decode(t *testing.T, r io.Reader, out any) {
	t.Helper()
	if out == nil {
		io.Copy(io.Discard, r)
		return
	}
	if err := json.NewDecoder(r).Decode(out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
}

func register(t *testing.T, ts *httptest.Server, r *relation.Relation) RegisterResponse {
	t.Helper()
	var reg RegisterResponse
	code := postCSV(t, ts.URL+"/v1/datasets", relationCSV(t, r), &reg)
	if code != http.StatusCreated {
		t.Fatalf("register status = %d", code)
	}
	return reg
}

// fromScratchCover runs the reference pipeline directly and renders the
// cover exactly as the server does.
func fromScratchCover(t *testing.T, r *relation.Relation) []string {
	t.Helper()
	res, err := core.Discover(context.Background(), r, core.Options{Armstrong: core.ArmstrongNone})
	if err != nil {
		t.Fatal(err)
	}
	return renderCover(res.FDs, r.Names())
}

func sameCover(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEndToEnd is the satellite's register → discover → append →
// re-discover loop: the cached path must short-circuit the pipeline, and
// the incremental cover after appends must be byte-identical to a
// from-scratch core run on the grown relation.
func TestEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	base := relation.PaperExample()
	reg := register(t, ts, base)
	if reg.Rows != base.Rows() || reg.Attributes != base.Arity() {
		t.Fatalf("registered shape %dx%d, want %dx%d", reg.Rows, reg.Attributes, base.Rows(), base.Arity())
	}

	// Cold discovery matches the reference pipeline.
	var first DiscoverResponse
	if code := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: reg.ID}, &first); code != http.StatusOK {
		t.Fatalf("discover status = %d", code)
	}
	if first.Cached {
		t.Fatal("first discovery reported cached")
	}
	want := fromScratchCover(t, base)
	if !sameCover(first.FDs, want) {
		t.Fatalf("cold cover = %v, want %v", first.FDs, want)
	}

	// Repeat discovery is served from the cache: hit counter increments
	// and no additional discovery is recorded.
	before := s.cache.stats()
	var second DiscoverResponse
	if code := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: reg.ID}, &second); code != http.StatusOK {
		t.Fatalf("re-discover status = %d", code)
	}
	if !second.Cached {
		t.Fatal("repeat discovery not served from cache")
	}
	if !sameCover(second.FDs, first.FDs) {
		t.Fatal("cached cover differs from computed cover")
	}
	after := s.cache.stats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("cache hits %d → %d, want +1", before.Hits, after.Hits)
	}
	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Discoveries.Total != 1 {
		t.Fatalf("discoveries.total = %d after a cache hit, want 1 (pipeline must not re-run)", st.Discoveries.Total)
	}

	// Append rows: the session grows in place, the fingerprint moves,
	// and the dataset's cache entries are invalidated.
	extra := [][]string{
		{"40", "Lille", "2", "1994", "30"},
		{"41", "Lyon", "9", "1995", "31"},
		{"42", "Paris", "2", "1994", "30"},
	}
	var rows bytes.Buffer
	for _, row := range extra {
		rows.WriteString(strings.Join(row, ",") + "\n")
	}
	var app AppendResponse
	if code := postCSV(t, ts.URL+"/v1/datasets/"+reg.ID+"/rows", rows.String(), &app); code != http.StatusOK {
		t.Fatalf("append status = %d", code)
	}
	if app.Appended != len(extra) || app.Rows != base.Rows()+len(extra) {
		t.Fatalf("append = %+v", app)
	}
	if app.Fingerprint == reg.Fingerprint {
		t.Fatal("fingerprint unchanged after append")
	}
	if app.Invalidated == 0 {
		t.Fatal("append invalidated no cache entries")
	}

	// The incremental re-derivation (no re-scan) must be byte-identical
	// to a from-scratch run over the grown relation.
	grownRows := make([][]string, 0, base.Rows()+len(extra))
	for i := 0; i < base.Rows(); i++ {
		grownRows = append(grownRows, base.Row(i))
	}
	grownRows = append(grownRows, extra...)
	grown, err := relation.FromRows(base.Names(), grownRows)
	if err != nil {
		t.Fatal(err)
	}
	wantGrown := fromScratchCover(t, grown)

	var inc DiscoverResponse
	if code := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: reg.ID, Algorithm: "incremental"}, &inc); code != http.StatusOK {
		t.Fatalf("incremental discover status = %d", code)
	}
	if inc.Cached {
		t.Fatal("post-append discovery served stale cache")
	}
	if !sameCover(inc.FDs, wantGrown) {
		t.Fatalf("incremental cover = %v, want from-scratch %v", inc.FDs, wantGrown)
	}
	if inc.Fingerprint != app.Fingerprint {
		t.Fatalf("incremental fingerprint = %s, want %s", inc.Fingerprint, app.Fingerprint)
	}

	// A full re-run over the wire agrees too.
	var fresh DiscoverResponse
	if code := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: reg.ID}, &fresh); code != http.StatusOK {
		t.Fatalf("fresh discover status = %d", code)
	}
	if fresh.Cached {
		t.Fatal("post-append depminer discovery served stale cache")
	}
	if !sameCover(fresh.FDs, wantGrown) {
		t.Fatalf("fresh cover = %v, want %v", fresh.FDs, wantGrown)
	}
}

// TestAlgorithmsAgree runs every algorithm over the wire on the same
// dataset and expects the same cover (tane at ε=0 and fastfds mine the
// same minimal cover as the Dep-Miner pipeline).
func TestAlgorithmsAgree(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	r, err := datagen.Generate(datagen.Spec{Attrs: 6, Rows: 120, Correlation: 0.4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	reg := register(t, ts, r)
	want := fromScratchCover(t, r)
	for _, algo := range []string{"depminer", "depminer2", "fastfds", "tane", "incremental"} {
		var resp DiscoverResponse
		if code := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: reg.ID, Algorithm: algo}, &resp); code != http.StatusOK {
			t.Fatalf("%s: status = %d", algo, code)
		}
		if resp.Cached {
			t.Fatalf("%s: unexpectedly cached (distinct algorithms must not share keys)", algo)
		}
		if !sameCover(resp.FDs, want) {
			t.Fatalf("%s: cover = %v, want %v", algo, resp.FDs, want)
		}
	}
}

func TestRegisterIdempotent(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	csvBody := relationCSV(t, relation.PaperExample())
	var first RegisterResponse
	if code := postCSV(t, ts.URL+"/v1/datasets", csvBody, &first); code != http.StatusCreated {
		t.Fatalf("first register status = %d", code)
	}
	var second RegisterResponse
	if code := postCSV(t, ts.URL+"/v1/datasets", csvBody, &second); code != http.StatusOK {
		t.Fatalf("second register status = %d", code)
	}
	if !second.Existing || second.ID != first.ID {
		t.Fatalf("re-registration = %+v, want existing id %s", second, first.ID)
	}
}

func TestSyncAsyncThreshold(t *testing.T) {
	_, ts := newTestServer(t, Config{SyncRowLimit: 5})
	r, err := datagen.Generate(datagen.Spec{Attrs: 4, Rows: 50, Correlation: 0.3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	reg := register(t, ts, r)

	// Over the threshold: async job, 202, poll to completion.
	var j JobInfo
	if code := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: reg.ID}, &j); code != http.StatusAccepted {
		t.Fatalf("async discover status = %d", code)
	}
	if j.ID == "" || j.State == "" {
		t.Fatalf("job info = %+v", j)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if code := getJSON(t, ts.URL+"/v1/jobs/"+j.ID, &j); code != http.StatusOK {
			t.Fatalf("job poll status = %d", code)
		}
		if j.State != JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if j.State != JobDone || j.Result == nil {
		t.Fatalf("job = %+v", j)
	}
	if !sameCover(j.Result.FDs, fromScratchCover(t, r)) {
		t.Fatal("async job cover differs from reference")
	}

	// Async override forces the small dataset through the job path.
	force := true
	var j2 JobInfo
	if code := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: reg.ID, Algorithm: "fastfds", Async: &force}, &j2); code != http.StatusAccepted {
		t.Fatalf("forced-async status = %d", code)
	}
}

func TestBudgetOverrunReturnsPartial(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	r, err := datagen.Generate(datagen.Spec{Attrs: 8, Rows: 400, Correlation: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	reg := register(t, ts, r)
	var resp DiscoverResponse
	code := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: reg.ID, BudgetUnits: 1}, &resp)
	if code != http.StatusOK {
		t.Fatalf("governed discover status = %d", code)
	}
	if !resp.Partial || resp.Error == "" {
		t.Fatalf("1-unit budget: partial = %v error = %q, want partial with error", resp.Partial, resp.Error)
	}

	// Partial results must not poison the cache: an ungoverned run still
	// computes (and then caches) the full cover.
	var full DiscoverResponse
	if code := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: reg.ID}, &full); code != http.StatusOK {
		t.Fatalf("full discover status = %d", code)
	}
	if full.Cached || full.Partial {
		t.Fatalf("full run after partial: cached=%v partial=%v", full.Cached, full.Partial)
	}
	if !sameCover(full.FDs, fromScratchCover(t, r)) {
		t.Fatal("full cover differs from reference")
	}
}

func TestErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	reg := register(t, ts, relation.PaperExample())

	if code := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: "nope"}, nil); code != http.StatusNotFound {
		t.Errorf("unknown dataset: status = %d, want 404", code)
	}
	if code := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: reg.ID, Algorithm: "quantum"}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown algorithm: status = %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: reg.ID, Epsilon: 0.1}, nil); code != http.StatusBadRequest {
		t.Errorf("epsilon on depminer: status = %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/job-999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: status = %d, want 404", code)
	}
	if code := postCSV(t, ts.URL+"/v1/datasets/"+reg.ID+"/rows", "only,two\n", nil); code != http.StatusBadRequest {
		t.Errorf("bad arity append: status = %d, want 400", code)
	}
	if code := postCSV(t, ts.URL+"/v1/datasets", "", nil); code != http.StatusBadRequest {
		t.Errorf("empty register: status = %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/v1/datasets/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown dataset info: status = %d, want 404", code)
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	reg := register(t, ts, relation.PaperExample())
	// Warm the cache before draining.
	if code := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: reg.ID}, nil); code != http.StatusOK {
		t.Fatalf("warm discover status = %d", code)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Liveness stays green during a drain — the process is alive and
	// finishing work; only readiness flips.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz while draining: status = %d, want 200 (liveness)", code)
	}
	if code := getJSON(t, ts.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: status = %d, want 503", code)
	}
	if code := postCSV(t, ts.URL+"/v1/datasets", relationCSV(t, relation.PaperExample()), nil); code != http.StatusServiceUnavailable {
		t.Errorf("register while draining: status = %d, want 503", code)
	}
	var resp DiscoverResponse
	if code := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: reg.ID}, &resp); code != http.StatusOK || !resp.Cached {
		t.Errorf("cache hit while draining: status = %d cached = %v, want 200 cached", code, resp.Cached)
	}
	// Stats stay readable during drain.
	var st StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != http.StatusOK || !st.Draining {
		t.Errorf("stats while draining: status = %d draining = %v", code, st.Draining)
	}
}

// TestStatsShape exercises /v1/stats counters across sync, async, cached
// and tane (pstore) discoveries.
func TestStatsShape(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	r, err := datagen.Generate(datagen.Spec{Attrs: 6, Rows: 100, Correlation: 0.4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	reg := register(t, ts, r)
	postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: reg.ID}, nil)
	postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: reg.ID}, nil) // cache hit
	postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: reg.ID, Algorithm: "tane", MaxPartitionBytes: 1}, nil)

	var st StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	if st.Datasets != 1 {
		t.Errorf("datasets = %d", st.Datasets)
	}
	if st.Discoveries.Total != 2 {
		t.Errorf("discoveries.total = %d, want 2 (one cached)", st.Discoveries.Total)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses == 0 {
		t.Errorf("cache stats = %+v", st.Cache)
	}
	if st.Discoveries.PhaseTotalMS["lhs"] < 0 {
		t.Errorf("phase totals missing: %+v", st.Discoveries.PhaseTotalMS)
	}
	if _, ok := st.Discoveries.PhaseTotalMS["agree_sets"]; !ok {
		t.Errorf("phase totals missing agree_sets: %+v", st.Discoveries.PhaseTotalMS)
	}
	// The 1-byte partition cap forces evictions, so tane's pstore
	// counters must have flowed into the aggregate.
	if st.Pstore.Evictions == 0 && st.Pstore.Recomputes == 0 {
		t.Errorf("pstore counters empty after capped tane run: %+v", st.Pstore)
	}
	if st.Jobs.Cap == 0 {
		t.Errorf("jobs stats = %+v", st.Jobs)
	}
	if st.UptimeMS <= 0 {
		t.Errorf("uptime = %v", st.UptimeMS)
	}
}

// TestArmstrongOverWire checks the optional Armstrong payload and that it
// keys the cache separately from the plain discovery.
func TestArmstrongOverWire(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	reg := register(t, ts, relation.PaperExample())
	var plain DiscoverResponse
	postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: reg.ID}, &plain)
	if len(plain.Armstrong) != 0 {
		t.Fatal("plain discovery included an Armstrong relation")
	}
	var withArm DiscoverResponse
	if code := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: reg.ID, Armstrong: true}, &withArm); code != http.StatusOK {
		t.Fatalf("armstrong discover status = %d", code)
	}
	if withArm.Cached {
		t.Fatal("armstrong request must not reuse the armstrong-less cache entry")
	}
	if len(withArm.Armstrong) == 0 {
		t.Fatal("no Armstrong relation in response")
	}
	if !sameCover(withArm.FDs, plain.FDs) {
		t.Fatal("cover changed when requesting the Armstrong relation")
	}
	// Armstrong rows must satisfy exactly the same FD count as r: spot
	// check the sample is smaller than the data (paper's 1:n promise on
	// the running example).
	if len(withArm.Armstrong) > reg.Rows {
		t.Fatalf("Armstrong sample (%d rows) larger than the relation (%d)", len(withArm.Armstrong), reg.Rows)
	}
}

func TestTimeoutParamClamped(t *testing.T) {
	s, err := New(Config{MaxTimeout: time.Minute, MaxBudgetUnits: 100})
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.resolveParams(&DiscoverRequest{TimeoutMS: int64(time.Hour / time.Millisecond), BudgetUnits: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if p.timeout != time.Minute {
		t.Errorf("timeout = %v, want clamped to 1m", p.timeout)
	}
	if p.units != 100 {
		t.Errorf("units = %d, want clamped to 100", p.units)
	}
	p, err = s.resolveParams(&DiscoverRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if p.timeout != time.Minute || p.units != 100 {
		t.Errorf("defaults = (%v, %d), want server caps", p.timeout, p.units)
	}
	if _, err := s.resolveParams(&DiscoverRequest{Workers: -1}); err == nil {
		t.Error("negative workers accepted")
	}
	if _, err := s.resolveParams(&DiscoverRequest{Epsilon: 1.5, Algorithm: "tane"}); err == nil {
		t.Error("epsilon out of range accepted")
	}
}

func TestRegistryFull(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxDatasets: 1})
	register(t, ts, relation.PaperExample())
	r, err := datagen.Generate(datagen.Spec{Attrs: 3, Rows: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if code := postCSV(t, ts.URL+"/v1/datasets", relationCSV(t, r), nil); code != http.StatusInsufficientStorage {
		t.Fatalf("register over cap: status = %d, want 507", code)
	}
}

func TestAppendDeadlinePartialCommit(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	reg := register(t, ts, relation.PaperExample())
	d, _ := s.reg.get(reg.ID)

	// Drive appendRows directly with an expired context: nothing commits
	// and the typed deadline surfaces.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	committed, fp, err := d.appendRows(ctx, [][]string{{"9", "Lille", "9", "1999", "99"}})
	if committed != 0 || err == nil {
		t.Fatalf("cancelled append: committed=%d err=%v", committed, err)
	}
	if fp != reg.Fingerprint {
		t.Fatal("fingerprint moved without a commit")
	}
	_ = ts
}

func TestOptionsKeyExcludesNonSemanticKnobs(t *testing.T) {
	a := discoverParams{workers: 1, units: 10, timeout: time.Second}
	b := discoverParams{workers: 8, units: 999, timeout: time.Minute}
	if a.optionsKey() != b.optionsKey() {
		t.Fatal("workers/budget/timeout must not change the cache key")
	}
	c := discoverParams{epsilon: 0.1}
	if a.optionsKey() == c.optionsKey() {
		t.Fatal("epsilon must change the cache key")
	}
	d := discoverParams{armstrong: true}
	if a.optionsKey() == d.optionsKey() {
		t.Fatal("armstrong must change the cache key")
	}
}

func TestCacheLRUAndInvalidation(t *testing.T) {
	c := newResultCache(2)
	k := func(i int) cacheKey { return cacheKey{fingerprint: fmt.Sprint(i), algorithm: "depminer"} }
	c.put("ds1", k(1), &DiscoverResponse{})
	c.put("ds1", k(2), &DiscoverResponse{})
	c.put("ds2", k(3), &DiscoverResponse{}) // evicts k(1), the LRU
	if _, ok := c.get(k(1)); ok {
		t.Fatal("LRU entry survived over capacity")
	}
	if _, ok := c.get(k(2)); !ok {
		t.Fatal("fresh entry evicted")
	}
	if n := c.invalidateDataset("ds1"); n != 1 {
		t.Fatalf("invalidated %d entries, want 1", n)
	}
	if _, ok := c.get(k(2)); ok {
		t.Fatal("invalidated entry still served")
	}
	if _, ok := c.get(k(3)); !ok {
		t.Fatal("other dataset's entry was invalidated")
	}
	st := c.stats()
	if st.Evictions != 1 || st.Invalidations != 1 {
		t.Fatalf("cache stats = %+v", st)
	}
}
