package server

import (
	"context"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/faultinject"
	"repro/internal/relation"
)

// durableConfig returns a Config serving from dir with fsync on and a
// small snapshot threshold, so tests exercise compaction too.
func durableConfig(dir string) Config {
	return Config{DataDir: dir, SnapshotEvery: 8}
}

// appendCSV posts headerless CSV rows and returns status + response.
func appendCSV(t *testing.T, url, id, body string) (int, AppendResponse) {
	t.Helper()
	var resp AppendResponse
	code := postCSV(t, url+"/v1/datasets/"+id+"/rows", body, &resp)
	return code, resp
}

func TestDurableRegisterAppendRecoverDiscover(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, durableConfig(dir))
	base := relation.PaperExample()
	reg := register(t, ts1, base)

	code, app := appendCSV(t, ts1.URL, reg.ID, "90,6,99,Research,7\n91,6,99,Research,7\n")
	if code != http.StatusOK || app.Appended != 2 {
		t.Fatalf("append status=%d appended=%d", code, app.Appended)
	}
	// The relation the server now holds, rebuilt locally for reference.
	grown := appendRows(t, base, [][]string{
		{"90", "6", "99", "Research", "7"},
		{"91", "6", "99", "Research", "7"},
	})
	wantCover := fromScratchCover(t, grown)
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Boot a second server over the same data dir: the dataset must come
	// back under its original id with the post-append fingerprint, and
	// discovery on the recovered state must equal a from-scratch run.
	s2, ts2 := newTestServer(t, durableConfig(dir))
	defer s2.Shutdown(context.Background())
	var info DatasetInfo
	if code := getJSON(t, ts2.URL+"/v1/datasets/"+reg.ID, &info); code != http.StatusOK {
		t.Fatalf("recovered dataset GET status = %d", code)
	}
	if info.Fingerprint != app.Fingerprint {
		t.Fatalf("recovered fp %s, want post-append %s", info.Fingerprint, app.Fingerprint)
	}
	if info.Rows != base.Rows()+2 {
		t.Fatalf("recovered rows = %d, want %d", info.Rows, base.Rows()+2)
	}
	var disc DiscoverResponse
	if code := postJSON(t, ts2.URL+"/v1/discover", DiscoverRequest{Dataset: reg.ID}, &disc); code != http.StatusOK {
		t.Fatalf("discover on recovered dataset: status %d", code)
	}
	if !sameCover(disc.FDs, wantCover) {
		t.Fatalf("recovered cover %v, want %v", disc.FDs, wantCover)
	}
	// Recovered datasets keep accepting durable appends.
	if code, app2 := appendCSV(t, ts2.URL, reg.ID, "92,7,01,Sales,8\n"); code != http.StatusOK || app2.Appended != 1 {
		t.Fatalf("append on recovered dataset: status=%d appended=%d", code, app2.Appended)
	}
}

// appendRows builds a new relation with extra rows, mirroring what the
// server's incremental session holds after an append.
func appendRows(t *testing.T, r *relation.Relation, extra [][]string) *relation.Relation {
	t.Helper()
	rows := make([][]string, 0, r.Rows()+len(extra))
	for i := 0; i < r.Rows(); i++ {
		rows = append(rows, r.Row(i))
	}
	rows = append(rows, extra...)
	out, err := relation.FromRows(r.Names(), rows)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestDurableRecoveryWithoutCleanShutdown(t *testing.T) {
	// Abandon the first server without Shutdown — the in-process stand-in
	// for a crash. Every acknowledged write was fsync'd, so the second
	// boot must recover all of it.
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, durableConfig(dir))
	r, err := datagen.Generate(datagen.Spec{Attrs: 5, Rows: 60, Correlation: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	reg := register(t, ts1, r)
	var lastFP string
	for i := 0; i < 20; i++ { // crosses the SnapshotEvery=8 threshold
		code, app := appendCSV(t, ts1.URL, reg.ID, "x,y,z,w,q\n")
		if code != http.StatusOK {
			t.Fatalf("append %d: status %d", i, code)
		}
		lastFP = app.Fingerprint
	}
	// Release the WAL handles without draining or compacting, as a crash
	// would; the registry and HTTP side simply stop being used.
	if err := s1.store.Close(); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, durableConfig(dir))
	defer s2.Shutdown(context.Background())
	var info DatasetInfo
	if code := getJSON(t, ts2.URL+"/v1/datasets/"+reg.ID, &info); code != http.StatusOK {
		t.Fatalf("recovered dataset GET status = %d", code)
	}
	if info.Fingerprint != lastFP || info.Rows != r.Rows()+20 {
		t.Fatalf("recovered rows=%d fp=%s, want rows=%d fp=%s", info.Rows, info.Fingerprint, r.Rows()+20, lastFP)
	}
	var st StatsResponse
	if code := getJSON(t, ts2.URL+"/v1/stats", &st); code != http.StatusOK || st.Durable == nil {
		t.Fatalf("stats: code=%d durable=%v", code, st.Durable)
	}
	if st.Durable.Recovered != 1 || st.Durable.Quarantined != 0 {
		t.Fatalf("durable stats %+v", st.Durable)
	}
}

func TestQuarantineServesHealthyDatasets(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{DataDir: dir, SnapshotEvery: -1})
	healthy := register(t, ts1, relation.PaperExample())
	r2, err := datagen.Generate(datagen.Spec{Attrs: 4, Rows: 30, Correlation: 0.3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	victim := register(t, ts1, r2)
	if code, _ := appendCSV(t, ts1.URL, victim.ID, "a,b,c,d\ne,f,g,h\n"); code != http.StatusOK {
		t.Fatalf("append: %d", code)
	}
	// Stop crash-style (no drain): a clean Shutdown would fold the WALs
	// into snapshots, and this test wants to damage a live WAL.
	if err := s1.store.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the victim's registration record — mid-log damage, since an
	// append record follows it.
	walPath := filepath.Join(dir, "datasets", victim.ID, "wal.log")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x40
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, Config{DataDir: dir})
	defer s2.Shutdown(context.Background())
	if code := getJSON(t, ts2.URL+"/v1/datasets/"+victim.ID, nil); code != http.StatusNotFound {
		t.Fatalf("quarantined dataset still served: status %d", code)
	}
	var disc DiscoverResponse
	if code := postJSON(t, ts2.URL+"/v1/discover", DiscoverRequest{Dataset: healthy.ID}, &disc); code != http.StatusOK {
		t.Fatalf("healthy dataset discovery after quarantine: status %d", code)
	}
	if !sameCover(disc.FDs, fromScratchCover(t, relation.PaperExample())) {
		t.Fatal("healthy dataset cover drifted after neighbour quarantine")
	}
	var st StatsResponse
	if code := getJSON(t, ts2.URL+"/v1/stats", &st); code != http.StatusOK || st.Durable == nil {
		t.Fatalf("stats: %d", code)
	}
	if st.Durable.Quarantined != 1 || len(st.Durable.QuarantinedSets) != 1 {
		t.Fatalf("durable stats %+v", st.Durable)
	}
	q := st.Durable.QuarantinedSets[0]
	if q.ID != victim.ID || q.Reason == "" {
		t.Fatalf("quarantine entry %+v", q)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", victim.ID, "REASON.json")); err != nil {
		t.Fatalf("REASON.json: %v", err)
	}
	// The server still accepts new registrations and appends.
	fresh := register(t, ts2, r2)
	if code, _ := appendCSV(t, ts2.URL, fresh.ID, "p,q,r,s\n"); code != http.StatusOK {
		t.Fatalf("append after quarantine boot: %d", code)
	}
}

func TestAppendDurabilityFaultReturns503AndReadOnly(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s, ts := newTestServer(t, durableConfig(dir))
	defer s.Shutdown(context.Background())
	reg := register(t, ts, relation.PaperExample())
	if code, _ := appendCSV(t, ts.URL, reg.ID, "90,6,99,Research,7\n"); code != http.StatusOK {
		t.Fatalf("append: %d", code)
	}

	boom := errors.New("disk on fire")
	faultinject.Set(faultinject.DurableWrite, faultinject.FailWith(boom))
	code, resp := appendCSV(t, ts.URL, reg.ID, "91,6,99,Research,7\n")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("append under write fault: status %d, want 503", code)
	}
	if !strings.Contains(resp.Error, "durability failure") {
		t.Fatalf("append error %q", resp.Error)
	}
	faultinject.Reset()

	// Sticky: the dataset is read-only even after the fault clears…
	if code, _ := appendCSV(t, ts.URL, reg.ID, "92,6,99,Research,7\n"); code != http.StatusServiceUnavailable {
		t.Fatalf("append on broken dataset: status %d, want 503", code)
	}
	// …but reads and discovery still serve.
	var disc DiscoverResponse
	if code := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: reg.ID}, &disc); code != http.StatusOK {
		t.Fatalf("discover on broken dataset: status %d", code)
	}
	var st StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != http.StatusOK || st.Durable == nil || st.Durable.Broken != 1 {
		t.Fatalf("stats broken count: %+v", st.Durable)
	}
}

func TestRegisterDurabilityFaultReturns503(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s, ts := newTestServer(t, durableConfig(dir))
	defer s.Shutdown(context.Background())
	faultinject.Set(faultinject.DurableWrite, faultinject.FailWith(errors.New("no disk")))
	if code := postCSV(t, ts.URL+"/v1/datasets", relationCSV(t, relation.PaperExample()), nil); code != http.StatusServiceUnavailable {
		t.Fatalf("register under write fault: status %d, want 503", code)
	}
	faultinject.Reset()
	// The failed registration left nothing behind; the same content
	// registers cleanly afterwards.
	reg := register(t, ts, relation.PaperExample())
	if reg.ID == "" {
		t.Fatal("empty id after retry")
	}
}

func TestDrain503CarriesRetryAfterAndJSONBody(t *testing.T) {
	s, ts := newTestServer(t, Config{RetryAfter: 3 * time.Second})
	register(t, ts, relation.PaperExample())
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/datasets", "text/csv", strings.NewReader("a,b\n1,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var body struct {
		Error string `json:"error"`
	}
	decode(t, resp.Body, &body)
	if !strings.Contains(body.Error, "draining") {
		t.Fatalf("drain body %q does not name the condition", body.Error)
	}
}

func TestMemoryOnlyServerUnchanged(t *testing.T) {
	// Without -data-dir nothing durable exists: no data written, no
	// Durable stats section, appends ack without any store.
	s, ts := newTestServer(t, Config{})
	defer s.Shutdown(context.Background())
	reg := register(t, ts, relation.PaperExample())
	if code, _ := appendCSV(t, ts.URL, reg.ID, "90,6,99,Research,7\n"); code != http.StatusOK {
		t.Fatalf("append: %d", code)
	}
	var st StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st.Durable != nil {
		t.Fatalf("memory-only server reported durable stats: %+v", st.Durable)
	}
}

func TestDurableStatsCounters(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{DataDir: dir, SnapshotEvery: 4})
	reg := register(t, ts, relation.PaperExample())
	for i := 0; i < 10; i++ {
		if code, _ := appendCSV(t, ts.URL, reg.ID, "90,6,99,Research,7\n"); code != http.StatusOK {
			t.Fatalf("append %d failed", i)
		}
	}
	var st StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != http.StatusOK || st.Durable == nil {
		t.Fatalf("stats: %d", code)
	}
	if st.Durable.AppendRecords != 10 || st.Durable.Datasets != 1 {
		t.Fatalf("durable stats %+v", st.Durable)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Shutdown's final fold leaves no WAL tail for the next boot.
	s2, _ := newTestServer(t, Config{DataDir: dir})
	defer s2.Shutdown(context.Background())
	if rec := s2.recovery; len(rec.Datasets) != 1 || rec.Datasets[0].Replayed != 0 {
		t.Fatalf("post-drain boot replayed %+v", rec.Datasets)
	}
}
