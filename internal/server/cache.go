package server

import (
	"container/list"
	"sync"
)

// cacheKey identifies one discovery outcome: the exact relation instance
// (content fingerprint), the algorithm, and the canonical encoding of the
// result-affecting options. Knobs that provably cannot change the cover —
// worker counts, budgets, deadlines, partition caps, spill thresholds,
// and shard topology (all carry the byte-identical-output guarantee) —
// are deliberately excluded, so a result computed under any of them
// answers every equivalent query: a sharded discovery populates the
// entry a later single-node request hits, and vice versa.
type cacheKey struct {
	fingerprint string
	algorithm   string
	options     string
}

// resultCache is the LRU of completed (non-partial) discovery responses.
// Entries are indexed by dataset id as well, so an append invalidates
// exactly that dataset's entries and nothing else.
type resultCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	items     map[cacheKey]*list.Element
	byDataset map[string]map[cacheKey]struct{}

	hits, misses, evictions, invalidations int64
}

// cacheEntry is the list payload.
type cacheEntry struct {
	key       cacheKey
	datasetID string
	resp      *DiscoverResponse
}

func newResultCache(capEntries int) *resultCache {
	return &resultCache{
		cap:       capEntries,
		ll:        list.New(),
		items:     make(map[cacheKey]*list.Element),
		byDataset: make(map[string]map[cacheKey]struct{}),
	}
}

// get returns the cached response for k, bumping recency and the hit or
// miss counter. The returned response is shared — callers must copy
// before mutating.
func (c *resultCache) get(k cacheKey) (*DiscoverResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).resp, true
}

// put stores a completed response, evicting the least recently used
// entries over capacity.
func (c *resultCache) put(datasetID string, k cacheKey, resp *DiscoverResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*cacheEntry).resp = resp
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: k, datasetID: datasetID, resp: resp})
	c.items[k] = el
	keys := c.byDataset[datasetID]
	if keys == nil {
		keys = make(map[cacheKey]struct{})
		c.byDataset[datasetID] = keys
	}
	keys[k] = struct{}{}
	for c.cap > 0 && c.ll.Len() > c.cap {
		c.removeLocked(c.ll.Back())
		c.evictions++
	}
}

// invalidateDataset drops every entry belonging to the dataset (all
// fingerprints — stale pre-append fingerprints can never be queried again
// through the registry, so keeping them would only pin dead memory).
func (c *resultCache) invalidateDataset(datasetID string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := c.byDataset[datasetID]
	n := 0
	for k := range keys {
		if el, ok := c.items[k]; ok {
			c.removeLocked(el)
			n++
		}
	}
	c.invalidations += int64(n)
	return n
}

func (c *resultCache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	if keys := c.byDataset[e.datasetID]; keys != nil {
		delete(keys, e.key)
		if len(keys) == 0 {
			delete(c.byDataset, e.datasetID)
		}
	}
}

func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:       c.ll.Len(),
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
	}
}
