package server

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/guard"
	"repro/internal/incremental"
	"repro/internal/relation"
)

// DatasetInfo is the wire description of a registered dataset.
type DatasetInfo struct {
	ID          string    `json:"id"`
	Name        string    `json:"name,omitempty"`
	Fingerprint string    `json:"fingerprint"`
	Rows        int       `json:"rows"`
	Attributes  int       `json:"attributes"`
	Names       []string  `json:"names"`
	Version     int       `json:"version"`
	Created     time.Time `json:"created"`
}

// DiscoverRequest is the body of POST /v1/discover.
type DiscoverRequest struct {
	// Dataset is the registered dataset id (required).
	Dataset string `json:"dataset"`
	// Algorithm is depminer (default), depminer2, fastfds, tane, or
	// incremental (re-derive from the maintained session, no re-scan).
	Algorithm string `json:"algorithm"`
	// Workers is the worker-pool width (0 = server default).
	Workers int `json:"workers"`
	// TimeoutMS is the requested deadline, clamped to the server's
	// MaxTimeout (0 = the server cap).
	TimeoutMS int64 `json:"timeout_ms"`
	// BudgetUnits is the requested guard unit budget, clamped to the
	// server's MaxBudgetUnits.
	BudgetUnits int64 `json:"budget_units"`
	// MaxCouples enables the Algorithm 2 → 3 degradation threshold.
	MaxCouples int `json:"max_couples"`
	// Epsilon is the approximate-dependency threshold (tane only).
	Epsilon float64 `json:"epsilon"`
	// MaxPartitionBytes caps resident partition bytes (tane only).
	MaxPartitionBytes int64 `json:"max_partition_bytes"`
	// Armstrong includes the Armstrong relation in the response
	// (depminer/depminer2 only).
	Armstrong bool `json:"armstrong"`
	// Async forces the execution mode; nil applies the server's
	// row-count threshold.
	Async *bool `json:"async,omitempty"`
}

// DiscoverResponse is the outcome of a discovery, inline (sync) or via a
// job record (async).
type DiscoverResponse struct {
	Dataset            string     `json:"dataset"`
	Fingerprint        string     `json:"fingerprint"`
	Algorithm          string     `json:"algorithm"`
	Rows               int        `json:"rows"`
	Attributes         int        `json:"attributes"`
	FDs                []string   `json:"fds"`
	Cached             bool       `json:"cached"`
	Partial            bool       `json:"partial,omitempty"`
	Error              string     `json:"error,omitempty"`
	Notes              []string   `json:"notes,omitempty"`
	Couples            int        `json:"couples,omitempty"`
	AgreeSets          int        `json:"agree_sets,omitempty"`
	MaxSets            int        `json:"max_sets,omitempty"`
	LatticeNodes       int        `json:"lattice_nodes,omitempty"`
	DFSNodes           int        `json:"dfs_nodes,omitempty"`
	Armstrong          [][]string `json:"armstrong,omitempty"`
	ArmstrongSynthetic bool       `json:"armstrong_synthetic,omitempty"`
	BudgetUsed         int64      `json:"budget_used,omitempty"`
	ElapsedMS          float64    `json:"elapsed_ms"`
}

// JobInfo is the wire description of an async discovery job.
type JobInfo struct {
	ID        string            `json:"id"`
	Dataset   string            `json:"dataset"`
	Algorithm string            `json:"algorithm"`
	State     string            `json:"state"`
	Created   time.Time         `json:"created"`
	Finished  *time.Time        `json:"finished,omitempty"`
	Error     string            `json:"error,omitempty"`
	Result    *DiscoverResponse `json:"result,omitempty"`
}

// RegisterResponse is the body of POST /v1/datasets.
type RegisterResponse struct {
	DatasetInfo
	// Existing reports idempotent re-registration of identical content.
	Existing bool `json:"existing,omitempty"`
}

// AppendResponse is the body of POST /v1/datasets/{id}/rows.
type AppendResponse struct {
	ID          string `json:"id"`
	Appended    int    `json:"appended"`
	Rows        int    `json:"rows"`
	Fingerprint string `json:"fingerprint"`
	Invalidated int    `json:"invalidated"`
	Error       string `json:"error,omitempty"`
}

// DiscoveryStats is the discovery section of /v1/stats.
type DiscoveryStats struct {
	Total        int64              `json:"total"`
	Partial      int64              `json:"partial"`
	Failed       int64              `json:"failed"`
	Sync         int64              `json:"sync"`
	Async        int64              `json:"async"`
	PhaseTotalMS map[string]float64 `json:"phase_total_ms"`
}

// PstoreStats is the partition-store section of /v1/stats, aggregated
// over every TANE run the process served.
type PstoreStats struct {
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Evictions  int64 `json:"evictions"`
	Recomputes int64 `json:"recomputes"`
	PeakBytes  int64 `json:"peak_bytes"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeMS    float64        `json:"uptime_ms"`
	Draining    bool           `json:"draining"`
	Datasets    int            `json:"datasets"`
	Jobs        JobQueueStats  `json:"jobs"`
	Cache       CacheStats     `json:"cache"`
	Discoveries DiscoveryStats `json:"discoveries"`
	Pstore      PstoreStats    `json:"pstore"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// rejectDraining answers 503 on mutating endpoints once Shutdown began.
func (s *Server) rejectDraining(w http.ResponseWriter) bool {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return true
	}
	return false
}

// handleRegister implements POST /v1/datasets: the body is CSV (first
// record = attribute names unless ?header=false); ?name= labels the
// dataset. Identical content registers idempotently.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	header := true
	if v := r.URL.Query().Get("header"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad header param %q", v)
			return
		}
		header = b
	}
	rel, err := relation.Load(r.Body, header)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad CSV: %v", err)
		return
	}
	m, err := incremental.FromRelationCtx(r.Context(), rel)
	if err != nil {
		writeError(w, classifyStatus(err), "building incremental session: %v", err)
		return
	}
	d, created, err := s.reg.register(r.URL.Query().Get("name"), rel, m, time.Now())
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, errRegistryFull) {
			code = http.StatusInsufficientStorage
		}
		writeError(w, code, "%v", err)
		return
	}
	code := http.StatusCreated
	if !created {
		code = http.StatusOK
	}
	writeJSON(w, code, RegisterResponse{DatasetInfo: d.info(), Existing: !created})
}

// handleListDatasets implements GET /v1/datasets.
func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.list())
}

// handleGetDataset implements GET /v1/datasets/{id}.
func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	d, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no dataset %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, d.info())
}

// handleAppendRows implements POST /v1/datasets/{id}/rows: the body is
// headerless CSV rows appended to the incremental session. Committed rows
// update ag(r) and the fingerprint in place — no full re-run — and the
// dataset's cache entries are invalidated.
func (s *Server) handleAppendRows(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	d, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no dataset %q", r.PathValue("id"))
		return
	}
	cr := csv.NewReader(r.Body)
	cr.FieldsPerRecord = -1
	var rows [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad CSV: %v", err)
			return
		}
		rows = append(rows, rec)
	}
	if len(rows) == 0 {
		writeError(w, http.StatusBadRequest, "no rows in request body")
		return
	}
	committed, fp, aerr := d.appendRows(r.Context(), rows)
	invalidated := 0
	if committed > 0 {
		invalidated = s.cache.invalidateDataset(d.id)
	}
	resp := AppendResponse{
		ID:          d.id,
		Appended:    committed,
		Rows:        d.info().Rows,
		Fingerprint: fp,
		Invalidated: invalidated,
	}
	if aerr != nil {
		resp.Error = aerr.Error()
		code := http.StatusBadRequest
		if errors.Is(aerr, guard.ErrDeadline) {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDiscover implements POST /v1/discover. Cache hits answer
// immediately (even while draining) without consuming a job slot. Misses
// pass admission control: over the job cap the request is rejected with
// 429 + Retry-After. Admitted work runs synchronously for datasets up to
// SyncRowLimit rows and as an async job (202 + job id) above it; the
// request's async field overrides the threshold.
func (s *Server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	var req DiscoverRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	d, ok := s.reg.get(req.Dataset)
	if !ok {
		writeError(w, http.StatusNotFound, "no dataset %q", req.Dataset)
		return
	}
	p, err := s.resolveParams(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	info := d.info()
	key := cacheKey{fingerprint: info.Fingerprint, algorithm: p.algorithm, options: p.optionsKey()}
	if resp, hit := s.cache.get(key); hit {
		out := *resp
		out.Cached = true
		writeJSON(w, http.StatusOK, out)
		return
	}
	if s.rejectDraining(w) {
		return
	}
	if !s.jobs.tryAdmit() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"job queue full: %d discoveries running (cap %d)", s.cfg.MaxJobs, s.cfg.MaxJobs)
		return
	}

	async := info.Rows > s.cfg.SyncRowLimit
	if req.Async != nil {
		async = *req.Async
	}
	if !async {
		s.wg.Add(1)
		defer s.wg.Done()
		defer s.jobs.release()
		if s.testHookJobStart != nil {
			s.testHookJobStart(d.id)
		}
		resp, rerr := s.runDiscovery(r.Context(), d, p)
		s.recordOutcome(resp, rerr, false)
		if rerr != nil {
			writeError(w, classifyStatus(rerr), "discovery failed: %v", rerr)
			return
		}
		s.maybeCache(d.id, p, resp)
		writeJSON(w, http.StatusOK, resp)
		return
	}

	j := s.jobs.add(d.id, p.algorithm)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.jobs.release()
		if s.testHookJobStart != nil {
			s.testHookJobStart(d.id)
		}
		resp, rerr := s.runDiscovery(s.baseCtx, d, p)
		s.recordOutcome(resp, rerr, true)
		if rerr != nil {
			j.finish(nil, rerr.Error())
			return
		}
		s.maybeCache(d.id, p, resp)
		j.finish(resp, "")
	}()
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.info())
}

// maybeCache stores complete (non-partial) results under the fingerprint
// they were actually computed from.
func (s *Server) maybeCache(datasetID string, p discoverParams, resp *DiscoverResponse) {
	if resp == nil || resp.Partial {
		return
	}
	key := cacheKey{fingerprint: resp.Fingerprint, algorithm: p.algorithm, options: p.optionsKey()}
	s.cache.put(datasetID, key, resp)
}

// recordOutcome bumps the discovery counters.
func (s *Server) recordOutcome(resp *DiscoverResponse, err error, async bool) {
	s.stats.mu.Lock()
	defer s.stats.mu.Unlock()
	s.stats.total++
	if async {
		s.stats.async++
	} else {
		s.stats.sync++
	}
	switch {
	case err != nil:
		s.stats.failed++
	case resp != nil && resp.Partial:
		s.stats.partial++
	}
}

// handleGetJob implements GET /v1/jobs/{id}.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.info())
}

// handleStats implements GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.stats.mu.Lock()
	disc := DiscoveryStats{
		Total:        s.stats.total,
		Partial:      s.stats.partial,
		Failed:       s.stats.failed,
		Sync:         s.stats.sync,
		Async:        s.stats.async,
		PhaseTotalMS: make(map[string]float64, len(s.stats.phases)),
	}
	for name, d := range s.stats.phases {
		disc.PhaseTotalMS[name] = float64(d) / float64(time.Millisecond)
	}
	ps := PstoreStats{
		Hits:       s.stats.pstore.Hits,
		Misses:     s.stats.pstore.Misses,
		Evictions:  s.stats.pstore.Evictions,
		Recomputes: s.stats.pstore.Recomputes,
		PeakBytes:  s.stats.pstore.PeakBytes,
	}
	s.stats.mu.Unlock()
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeMS:    float64(time.Since(s.started)) / float64(time.Millisecond),
		Draining:    s.Draining(),
		Datasets:    s.reg.count(),
		Jobs:        s.jobs.stats(),
		Cache:       s.cache.stats(),
		Discoveries: disc,
		Pstore:      ps,
	})
}

// handleHealthz implements GET /healthz: 200 while serving, 503 once
// draining so load balancers stop routing during shutdown.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
