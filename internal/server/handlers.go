package server

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"repro/internal/durable"
	"repro/internal/guard"
	"repro/internal/incremental"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/wire"
)

// The request/response shapes live in the public repro/wire package,
// shared with the client SDK (repro/client) so the two sides cannot
// drift. The aliases keep the server code and its tests reading
// naturally; they are the same types, not copies.
type (
	DatasetInfo      = wire.DatasetInfo
	DiscoverRequest  = wire.DiscoverRequest
	DiscoverResponse = wire.DiscoverResponse
	JobInfo          = wire.JobInfo
	RegisterResponse = wire.RegisterResponse
	AppendResponse   = wire.AppendResponse
	JobQueueStats    = wire.JobQueueStats
	CacheStats       = wire.CacheStats
	DiscoveryStats   = wire.DiscoveryStats
	PstoreStats      = wire.PstoreStats
	SpillStats       = wire.SpillStats
	StatsResponse    = wire.StatsResponse
)

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, wire.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// retryAfterSeconds renders d in the RFC 9110 delta-seconds form of
// Retry-After — a non-negative decimal integer — rounded up so a client
// honouring the hint never retries early, minimum 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// rejectDraining answers 503 on mutating endpoints once Shutdown began.
// The response carries Retry-After — a drain usually precedes a restart,
// so a client that waits and retries lands on the replacement process —
// and a JSON body naming the condition, so SDK clients surface
// "draining" rather than a bare status code.
func (s *Server) rejectDraining(w http.ResponseWriter) bool {
	if s.Draining() {
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return true
	}
	return false
}

// handleRegister implements POST /v1/datasets: the body is CSV (first
// record = attribute names unless ?header=false); ?name= labels the
// dataset. Identical content registers idempotently.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	header := true
	if v := r.URL.Query().Get("header"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad header param %q", v)
			return
		}
		header = b
	}
	rel, err := relation.Load(r.Body, header)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad CSV: %v", err)
		return
	}
	m, err := incremental.FromRelationCtx(r.Context(), rel)
	if err != nil {
		writeError(w, classifyStatus(err), "building incremental session: %v", err)
		return
	}
	name := r.URL.Query().Get("name")
	var create durableCreate
	if s.store != nil {
		create = func(id, fp string) (*durable.Dataset, error) {
			rows := make([][]string, rel.Rows())
			for t := range rows {
				rows[t] = rel.Row(t)
			}
			return s.store.Create(id, name, rel.Names(), rows, fp)
		}
	}
	d, created, err := s.reg.register(name, rel, m, time.Now(), create)
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, errRegistryFull):
			code = http.StatusInsufficientStorage
		case errors.Is(err, errDurability):
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, "%v", err)
		return
	}
	code := http.StatusCreated
	if !created {
		code = http.StatusOK
	}
	writeJSON(w, code, RegisterResponse{DatasetInfo: d.info(), Existing: !created})
}

// handleListDatasets implements GET /v1/datasets.
func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.list())
}

// handleGetDataset implements GET /v1/datasets/{id}.
func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	d, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no dataset %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, d.info())
}

// handleAppendRows implements POST /v1/datasets/{id}/rows: the body is
// headerless CSV rows appended to the incremental session. Committed rows
// update ag(r) and the fingerprint in place — no full re-run — and the
// dataset's cache entries are invalidated.
func (s *Server) handleAppendRows(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	d, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no dataset %q", r.PathValue("id"))
		return
	}
	cr := csv.NewReader(r.Body)
	cr.FieldsPerRecord = -1
	var rows [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad CSV: %v", err)
			return
		}
		rows = append(rows, rec)
	}
	if len(rows) == 0 {
		writeError(w, http.StatusBadRequest, "no rows in request body")
		return
	}
	committed, fp, aerr := d.appendRows(r.Context(), rows)
	invalidated := 0
	if committed > 0 {
		invalidated = s.cache.invalidateDataset(d.id)
	}
	resp := AppendResponse{
		ID:          d.id,
		Appended:    committed,
		Rows:        d.info().Rows,
		Fingerprint: fp,
		Invalidated: invalidated,
	}
	if aerr != nil {
		resp.Error = aerr.Error()
		code := http.StatusBadRequest
		if errors.Is(aerr, guard.ErrDeadline) || errors.Is(aerr, errDurability) {
			// Not acknowledged: on a durability failure the committed
			// rows may not have reached disk, and the dataset is now
			// read-only until restart.
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDiscover implements POST /v1/discover. Cache hits answer
// immediately (even while draining) without consuming a job slot. Misses
// pass admission control: over the job cap the request is rejected with
// 429 + Retry-After. Admitted work runs synchronously for datasets up to
// SyncRowLimit rows and as an async job (202 + job id) above it; the
// request's async field overrides the threshold.
func (s *Server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	var req DiscoverRequest
	if err := wire.DecodeStrict(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	d, ok := s.reg.get(req.Dataset)
	if !ok {
		writeError(w, http.StatusNotFound, "no dataset %q", req.Dataset)
		return
	}
	p, err := s.resolveParams(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	info := d.info()
	// From here every log line this discovery produces — on this process
	// or on a worker serving one of its shards — carries the dataset,
	// fingerprint, and algorithm alongside the middleware's request id.
	ctx := obs.ContextWithAttrs(r.Context(),
		obs.String("dataset", d.id),
		obs.String("fingerprint", info.Fingerprint),
		obs.String("algorithm", p.algorithm))
	key := cacheKey{fingerprint: info.Fingerprint, algorithm: p.algorithm, options: p.optionsKey()}
	if resp, hit := s.cache.get(key); hit {
		out := *resp
		out.Cached = true
		obs.Event(ctx, s.log, "discovery cache hit")
		writeJSON(w, http.StatusOK, out)
		return
	}
	if s.rejectDraining(w) {
		return
	}
	if !s.jobs.tryAdmit() {
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		writeError(w, http.StatusTooManyRequests,
			"job queue full: %d discoveries running (cap %d)", s.cfg.MaxJobs, s.cfg.MaxJobs)
		return
	}

	async := info.Rows > s.cfg.SyncRowLimit
	if req.Async != nil {
		async = *req.Async
	}
	if !async {
		s.wg.Add(1)
		defer s.wg.Done()
		defer s.jobs.release()
		if s.testHookJobStart != nil {
			s.testHookJobStart(d.id)
		}
		resp, rerr := s.runDiscovery(ctx, d, p)
		s.recordOutcome(resp, rerr, false)
		s.logOutcome(ctx, resp, rerr)
		if rerr != nil {
			writeError(w, classifyStatus(rerr), "discovery failed: %v", rerr)
			return
		}
		s.maybeCache(d.id, p, resp)
		writeJSON(w, http.StatusOK, resp)
		return
	}

	j := s.jobs.add(d.id, p.algorithm)
	// The job outlives this request, so it runs under the server's base
	// context — but carries the request's attribute set (request id
	// included) onto it, joining the job's log lines to the HTTP request
	// that submitted it.
	jctx := obs.ContextWithSet(s.baseCtx, obs.ContextAttrs(ctx).Merge(obs.String("job_id", j.id)))
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.jobs.release()
		if s.testHookJobStart != nil {
			s.testHookJobStart(d.id)
		}
		resp, rerr := s.runDiscovery(jctx, d, p)
		s.recordOutcome(resp, rerr, true)
		s.logOutcome(jctx, resp, rerr)
		if rerr != nil {
			j.finish(nil, rerr.Error())
			return
		}
		s.maybeCache(d.id, p, resp)
		j.finish(resp, "")
	}()
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.info())
}

// logOutcome writes the one per-discovery summary line.
func (s *Server) logOutcome(ctx context.Context, resp *DiscoverResponse, err error) {
	log := obs.Logger(ctx, s.log)
	switch {
	case err != nil:
		log.Warn("discovery failed", slog.String("error", err.Error()))
	case resp != nil && resp.Partial:
		log.Warn("discovery partial",
			slog.String("cutoff", resp.Error),
			slog.Int("fds", len(resp.FDs)),
			slog.Float64("elapsed_ms", resp.ElapsedMS))
	case resp != nil:
		log.Info("discovery done",
			slog.Int("fds", len(resp.FDs)),
			slog.Int("shards", resp.Shards),
			slog.Bool("streamed", resp.SnapshotStreamed),
			slog.Float64("elapsed_ms", resp.ElapsedMS))
	}
}

// maybeCache stores complete (non-partial) results under the fingerprint
// they were actually computed from.
func (s *Server) maybeCache(datasetID string, p discoverParams, resp *DiscoverResponse) {
	if resp == nil || resp.Partial {
		return
	}
	key := cacheKey{fingerprint: resp.Fingerprint, algorithm: p.algorithm, options: p.optionsKey()}
	s.cache.put(datasetID, key, resp)
}

// recordOutcome bumps the discovery counters.
func (s *Server) recordOutcome(resp *DiscoverResponse, err error, async bool) {
	s.stats.mu.Lock()
	defer s.stats.mu.Unlock()
	s.stats.total++
	if async {
		s.stats.async++
	} else {
		s.stats.sync++
	}
	switch {
	case err != nil:
		s.stats.failed++
	case resp != nil && resp.Partial:
		s.stats.partial++
	}
}

// handleGetJob implements GET /v1/jobs/{id}.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.info())
}

// handleStats implements GET /v1/stats as a plain JSON rendering of the
// same statsSnapshot the /metrics sampler scrapes (metrics.go) — the two
// endpoints cannot disagree because neither owns counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsSnapshot())
}

// handleVersion implements GET /v1/version: the running binary's build
// identity, so a fleet operator can confirm what revision each worker
// actually runs before chasing a behaviour difference.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, obs.Build())
}

// handleHealthz implements GET /healthz: pure liveness. It answers 200
// for as long as the process can serve HTTP at all — including while
// draining, when the process is alive and finishing in-flight work.
// Routability questions belong to /readyz; an orchestrator that
// restarts on failing liveness probes would otherwise kill a cleanly
// draining process mid-drain.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz implements GET /readyz: readiness for new work. 503 (with
// Retry-After, so a waiting client lands on the replacement process)
// while draining, or while the durable layer holds sticky-broken
// datasets — a degraded store serves reads but refuses the writes a
// load balancer would route here.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if s.store != nil {
		if n := s.store.Stats().Broken; n > 0 {
			w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
			writeError(w, http.StatusServiceUnavailable,
				"durable store degraded: %d dataset(s) read-only until restart", n)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}
