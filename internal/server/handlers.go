package server

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/durable"
	"repro/internal/guard"
	"repro/internal/incremental"
	"repro/internal/relation"
	"repro/wire"
)

// The request/response shapes live in the public repro/wire package,
// shared with the client SDK (repro/client) so the two sides cannot
// drift. The aliases keep the server code and its tests reading
// naturally; they are the same types, not copies.
type (
	DatasetInfo      = wire.DatasetInfo
	DiscoverRequest  = wire.DiscoverRequest
	DiscoverResponse = wire.DiscoverResponse
	JobInfo          = wire.JobInfo
	RegisterResponse = wire.RegisterResponse
	AppendResponse   = wire.AppendResponse
	JobQueueStats    = wire.JobQueueStats
	CacheStats       = wire.CacheStats
	DiscoveryStats   = wire.DiscoveryStats
	PstoreStats      = wire.PstoreStats
	SpillStats       = wire.SpillStats
	StatsResponse    = wire.StatsResponse
)

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, wire.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// retryAfterSeconds renders d in the RFC 9110 delta-seconds form of
// Retry-After — a non-negative decimal integer — rounded up so a client
// honouring the hint never retries early, minimum 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// rejectDraining answers 503 on mutating endpoints once Shutdown began.
// The response carries Retry-After — a drain usually precedes a restart,
// so a client that waits and retries lands on the replacement process —
// and a JSON body naming the condition, so SDK clients surface
// "draining" rather than a bare status code.
func (s *Server) rejectDraining(w http.ResponseWriter) bool {
	if s.Draining() {
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return true
	}
	return false
}

// handleRegister implements POST /v1/datasets: the body is CSV (first
// record = attribute names unless ?header=false); ?name= labels the
// dataset. Identical content registers idempotently.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	header := true
	if v := r.URL.Query().Get("header"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad header param %q", v)
			return
		}
		header = b
	}
	rel, err := relation.Load(r.Body, header)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad CSV: %v", err)
		return
	}
	m, err := incremental.FromRelationCtx(r.Context(), rel)
	if err != nil {
		writeError(w, classifyStatus(err), "building incremental session: %v", err)
		return
	}
	name := r.URL.Query().Get("name")
	var create durableCreate
	if s.store != nil {
		create = func(id, fp string) (*durable.Dataset, error) {
			rows := make([][]string, rel.Rows())
			for t := range rows {
				rows[t] = rel.Row(t)
			}
			return s.store.Create(id, name, rel.Names(), rows, fp)
		}
	}
	d, created, err := s.reg.register(name, rel, m, time.Now(), create)
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, errRegistryFull):
			code = http.StatusInsufficientStorage
		case errors.Is(err, errDurability):
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, "%v", err)
		return
	}
	code := http.StatusCreated
	if !created {
		code = http.StatusOK
	}
	writeJSON(w, code, RegisterResponse{DatasetInfo: d.info(), Existing: !created})
}

// handleListDatasets implements GET /v1/datasets.
func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.list())
}

// handleGetDataset implements GET /v1/datasets/{id}.
func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	d, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no dataset %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, d.info())
}

// handleAppendRows implements POST /v1/datasets/{id}/rows: the body is
// headerless CSV rows appended to the incremental session. Committed rows
// update ag(r) and the fingerprint in place — no full re-run — and the
// dataset's cache entries are invalidated.
func (s *Server) handleAppendRows(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	d, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no dataset %q", r.PathValue("id"))
		return
	}
	cr := csv.NewReader(r.Body)
	cr.FieldsPerRecord = -1
	var rows [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad CSV: %v", err)
			return
		}
		rows = append(rows, rec)
	}
	if len(rows) == 0 {
		writeError(w, http.StatusBadRequest, "no rows in request body")
		return
	}
	committed, fp, aerr := d.appendRows(r.Context(), rows)
	invalidated := 0
	if committed > 0 {
		invalidated = s.cache.invalidateDataset(d.id)
	}
	resp := AppendResponse{
		ID:          d.id,
		Appended:    committed,
		Rows:        d.info().Rows,
		Fingerprint: fp,
		Invalidated: invalidated,
	}
	if aerr != nil {
		resp.Error = aerr.Error()
		code := http.StatusBadRequest
		if errors.Is(aerr, guard.ErrDeadline) || errors.Is(aerr, errDurability) {
			// Not acknowledged: on a durability failure the committed
			// rows may not have reached disk, and the dataset is now
			// read-only until restart.
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDiscover implements POST /v1/discover. Cache hits answer
// immediately (even while draining) without consuming a job slot. Misses
// pass admission control: over the job cap the request is rejected with
// 429 + Retry-After. Admitted work runs synchronously for datasets up to
// SyncRowLimit rows and as an async job (202 + job id) above it; the
// request's async field overrides the threshold.
func (s *Server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	var req DiscoverRequest
	if err := wire.DecodeStrict(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	d, ok := s.reg.get(req.Dataset)
	if !ok {
		writeError(w, http.StatusNotFound, "no dataset %q", req.Dataset)
		return
	}
	p, err := s.resolveParams(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	info := d.info()
	key := cacheKey{fingerprint: info.Fingerprint, algorithm: p.algorithm, options: p.optionsKey()}
	if resp, hit := s.cache.get(key); hit {
		out := *resp
		out.Cached = true
		writeJSON(w, http.StatusOK, out)
		return
	}
	if s.rejectDraining(w) {
		return
	}
	if !s.jobs.tryAdmit() {
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		writeError(w, http.StatusTooManyRequests,
			"job queue full: %d discoveries running (cap %d)", s.cfg.MaxJobs, s.cfg.MaxJobs)
		return
	}

	async := info.Rows > s.cfg.SyncRowLimit
	if req.Async != nil {
		async = *req.Async
	}
	if !async {
		s.wg.Add(1)
		defer s.wg.Done()
		defer s.jobs.release()
		if s.testHookJobStart != nil {
			s.testHookJobStart(d.id)
		}
		resp, rerr := s.runDiscovery(r.Context(), d, p)
		s.recordOutcome(resp, rerr, false)
		if rerr != nil {
			writeError(w, classifyStatus(rerr), "discovery failed: %v", rerr)
			return
		}
		s.maybeCache(d.id, p, resp)
		writeJSON(w, http.StatusOK, resp)
		return
	}

	j := s.jobs.add(d.id, p.algorithm)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.jobs.release()
		if s.testHookJobStart != nil {
			s.testHookJobStart(d.id)
		}
		resp, rerr := s.runDiscovery(s.baseCtx, d, p)
		s.recordOutcome(resp, rerr, true)
		if rerr != nil {
			j.finish(nil, rerr.Error())
			return
		}
		s.maybeCache(d.id, p, resp)
		j.finish(resp, "")
	}()
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.info())
}

// maybeCache stores complete (non-partial) results under the fingerprint
// they were actually computed from.
func (s *Server) maybeCache(datasetID string, p discoverParams, resp *DiscoverResponse) {
	if resp == nil || resp.Partial {
		return
	}
	key := cacheKey{fingerprint: resp.Fingerprint, algorithm: p.algorithm, options: p.optionsKey()}
	s.cache.put(datasetID, key, resp)
}

// recordOutcome bumps the discovery counters.
func (s *Server) recordOutcome(resp *DiscoverResponse, err error, async bool) {
	s.stats.mu.Lock()
	defer s.stats.mu.Unlock()
	s.stats.total++
	if async {
		s.stats.async++
	} else {
		s.stats.sync++
	}
	switch {
	case err != nil:
		s.stats.failed++
	case resp != nil && resp.Partial:
		s.stats.partial++
	}
}

// handleGetJob implements GET /v1/jobs/{id}.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.info())
}

// handleStats implements GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.stats.mu.Lock()
	disc := DiscoveryStats{
		Total:           s.stats.total,
		Partial:         s.stats.partial,
		Failed:          s.stats.failed,
		Sync:            s.stats.sync,
		Async:           s.stats.async,
		SnapshotStreams: s.stats.snapshotStreams,
		PhaseTotalMS:    make(map[string]float64, len(s.stats.phases)),
	}
	for name, d := range s.stats.phases {
		disc.PhaseTotalMS[name] = float64(d) / float64(time.Millisecond)
	}
	ps := PstoreStats{
		Hits:       s.stats.pstore.Hits,
		Misses:     s.stats.pstore.Misses,
		Evictions:  s.stats.pstore.Evictions,
		Recomputes: s.stats.pstore.Recomputes,
		PeakBytes:  s.stats.pstore.PeakBytes,
	}
	sp := SpillStats{
		RunsSpilled:  s.stats.spill.RunsSpilled,
		SpilledSets:  s.stats.spill.SpilledSets,
		SpilledBytes: s.stats.spill.SpilledBytes,
		MergedRuns:   s.stats.spill.MergedRuns,
		ReadBlocks:   s.stats.spill.ReadBlocks,
	}
	shc := s.stats.shard
	s.stats.mu.Unlock()
	resp := StatsResponse{
		UptimeMS:    float64(time.Since(s.started)) / float64(time.Millisecond),
		Draining:    s.Draining(),
		Datasets:    s.reg.count(),
		Jobs:        s.jobs.stats(),
		Cache:       s.cache.stats(),
		Discoveries: disc,
		Pstore:      ps,
		Spill:       sp,
	}
	if s.store != nil {
		st := s.store.Stats()
		dur := &wire.DurableStats{
			Datasets:        st.Datasets,
			AppendRecords:   st.AppendRecords,
			Syncs:           st.Syncs,
			BatchedRecords:  st.BatchedRecords,
			Snapshots:       st.Snapshots,
			CompactErrors:   st.CompactErrors,
			WALBytes:        st.WALBytes,
			Recovered:       st.Recovered,
			ReplayedRecords: st.ReplayedRecords,
			TruncatedTails:  st.TruncatedTails,
			Quarantined:     st.Quarantined,
			Broken:          st.Broken,
		}
		for _, q := range s.recovery.Quarantined {
			dur.QuarantinedSets = append(dur.QuarantinedSets, wire.QuarantinedDataset{
				ID: q.ID, Reason: q.Reason, Path: q.Path,
			})
		}
		resp.Durable = dur
	}
	if s.coord != nil || shc.active() {
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		resp.Shard = &wire.ShardStats{
			Dispatched:      shc.dispatched,
			Remote:          shc.remote,
			LocalFallbacks:  shc.localFallbacks,
			DatasetsPushed:  shc.datasetsPushed,
			ReceivedSets:    shc.receivedSets,
			ReceivedBytes:   shc.receivedBytes,
			DispatchTotalMS: ms(shc.dispatchTime),
			StreamTotalMS:   ms(shc.streamTime),
			MergeTotalMS:    ms(shc.mergeTime),
			Served:          shc.served,
			ServedSets:      shc.servedSets,
			ServedErrors:    shc.servedErrors,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz implements GET /healthz: 200 while serving, 503 once
// draining so load balancers stop routing during shutdown.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
