package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/relation"
	"repro/wire"
)

// syncBuffer is a goroutine-safe log sink for asserting on log output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// scrapeMetrics fetches /metrics and parses the exposition, failing the
// test on anything that is not valid Prometheus text format.
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	series, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("metrics exposition does not parse: %v", err)
	}
	return obs.SeriesMap(series)
}

// TestMetricsAgreeWithStats proves the tentpole invariant: /metrics and
// /v1/stats are two renderings of one snapshot, so the numbers match.
func TestMetricsAgreeWithStats(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	reg := register(t, ts, relation.PaperExample())
	// One miss, one hit.
	for i := 0; i < 2; i++ {
		if code := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: reg.ID}, nil); code != http.StatusOK {
			t.Fatalf("discover %d status = %d", i, code)
		}
	}

	var st StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	m := scrapeMetrics(t, ts.URL)

	checks := map[string]float64{
		"depminerd_discoveries_total":      float64(st.Discoveries.Total),
		"depminerd_discoveries_sync_total": float64(st.Discoveries.Sync),
		"depminerd_cache_hits_total":       float64(st.Cache.Hits),
		"depminerd_cache_misses_total":     float64(st.Cache.Misses),
		"depminerd_datasets":               float64(st.Datasets),
		"depminerd_jobs_admitted_total":    float64(st.Jobs.Admitted),
		"depminerd_jobs_cap":               float64(st.Jobs.Cap),
		"depminerd_draining":               0,
	}
	for name, want := range checks {
		got, ok := m[name]
		if !ok {
			t.Errorf("metric %s missing from exposition", name)
			continue
		}
		if got != want {
			t.Errorf("%s = %v, /v1/stats says %v", name, got, want)
		}
	}
	if st.Discoveries.Total < 1 || st.Cache.Hits < 1 {
		t.Fatalf("test drove no traffic? total=%d hits=%d", st.Discoveries.Total, st.Cache.Hits)
	}
	// Phase timings appear as labelled series.
	if _, ok := m[`depminerd_phase_seconds_total{phase="agree_sets"}`]; !ok {
		t.Error("phase_seconds_total{phase=agree_sets} missing")
	}
	// HTTP middleware metrics cover the requests this test just made,
	// labelled by route pattern, not raw path.
	if m[`depminerd_http_requests_total{code="200",method="POST",route="/v1/discover"}`] < 2 {
		t.Errorf("http_requests_total for /v1/discover missing or low; have %v",
			m[`depminerd_http_requests_total{code="200",method="POST",route="/v1/discover"}`])
	}
	// Build info is present as a constant series; exact labels vary by
	// build, so probe via the Registry.
	found := false
	for k := range m {
		if strings.HasPrefix(k, "depminerd_build_info{") {
			found = true
			if m[k] != 1 {
				t.Errorf("build_info = %v, want 1", m[k])
			}
		}
	}
	if !found {
		t.Error("depminerd_build_info missing")
	}
}

func TestVersionEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var v wire.VersionResponse
	if code := getJSON(t, ts.URL+"/v1/version", &v); code != http.StatusOK {
		t.Fatalf("version status = %d", code)
	}
	if v.GoVersion == "" || v.Revision == "" || v.Version == "" {
		t.Errorf("version response has empty fields: %+v", v)
	}
	// Baseline liveness + readiness on a healthy server.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz = %d", code)
	}
	if code := getJSON(t, ts.URL+"/readyz", nil); code != http.StatusOK {
		t.Errorf("readyz = %d", code)
	}
}

// TestObsHammer drives mixed traffic while concurrently scraping
// /metrics, asserting (under -race) that scrapes parse throughout,
// counters are monotone, and gauges drain to zero once traffic stops.
func TestObsHammer(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxJobs: 8})
	reg := register(t, ts, relation.PaperExample())
	appendRel, err := relation.FromRows(
		[]string{"k", "v"},
		[][]string{{"1", "a"}, {"2", "b"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	appendDS := register(t, ts, appendRel)

	const workers = 6
	const iters = 25
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Scraper: successive scrapes must parse and every *_total series
	// must be non-decreasing.
	scrapes := make(chan map[string]float64, 256)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			scrapes <- scrapeMetrics(t, ts.URL)
		}
	}()

	var traffic sync.WaitGroup
	for w := 0; w < workers; w++ {
		traffic.Add(1)
		go func(w int) {
			defer traffic.Done()
			for i := 0; i < iters; i++ {
				switch i % 3 {
				case 0:
					postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: reg.ID}, nil)
				case 1:
					postCSV(t, ts.URL+"/v1/datasets/"+appendDS.ID+"/rows",
						fmt.Sprintf("k-%d-%d,v\n", w, i), nil)
				case 2:
					getJSON(t, ts.URL+"/v1/stats", nil)
				}
			}
		}(w)
	}
	traffic.Wait()
	close(stop)
	wg.Wait()
	close(scrapes)

	var prev map[string]float64
	n := 0
	for m := range scrapes {
		n++
		if prev != nil {
			for k, v := range prev {
				if !strings.Contains(k, "_total") {
					continue
				}
				if cur, ok := m[k]; ok && cur < v {
					t.Errorf("counter %s went backwards: %v -> %v", k, v, cur)
				}
			}
		}
		prev = m
	}
	if n == 0 {
		t.Fatal("scraper never ran")
	}

	final := scrapeMetrics(t, ts.URL)
	// The scrape that reads the gauge is itself in flight, so the steady
	// state after traffic stops is exactly 1, not 0.
	if v := final["depminerd_http_in_flight_requests"]; v != 1 {
		t.Errorf("http_in_flight_requests = %v after traffic stopped, want 1 (the scrape itself)", v)
	}
	if v := final["depminerd_jobs_running"]; v != 0 {
		t.Errorf("jobs_running = %v after traffic stopped, want 0", v)
	}
	// Same dataset + params means later discovers are cache hits; only
	// the miss increments discoveries_total, but every request is counted
	// by the HTTP middleware under the route pattern.
	if final["depminerd_discoveries_total"] < 1 {
		t.Errorf("discoveries_total = %v, want >= 1", final["depminerd_discoveries_total"])
	}
	wantDiscovers := float64(workers * (iters/3 + 1)) // i%3==0 iterations
	if got := final[`depminerd_http_requests_total{code="200",method="POST",route="/v1/discover"}`]; got != wantDiscovers {
		t.Errorf("http_requests_total for /v1/discover = %v, want %v", got, wantDiscovers)
	}
	if final["depminerd_http_panics_total"] != 0 {
		t.Errorf("panics_total = %v, want 0", final["depminerd_http_panics_total"])
	}
}

// TestRequestIDPropagation is the end-to-end tracing proof: a client
// request id sent to a coordinator appears in the coordinator's log
// lines AND in the logs of the workers that served its shards, and is
// echoed on the response.
func TestRequestIDPropagation(t *testing.T) {
	workerBuf := &syncBuffer{}
	workerLog, err := obs.NewLogger(workerBuf, obs.Config{Level: "debug"})
	if err != nil {
		t.Fatal(err)
	}
	coordBuf := &syncBuffer{}
	coordLog, err := obs.NewLogger(coordBuf, obs.Config{Level: "debug"})
	if err != nil {
		t.Fatal(err)
	}

	endpoints := newWorkerFleet(t, 2, Config{Logger: workerLog})
	_, ts := newCoordServer(t, endpoints, Config{Logger: coordLog})
	reg := register(t, ts, shardTestRelation(t, 77))

	const rid = "e2e-trace-0042"
	body, err := json.Marshal(DiscoverRequest{Dataset: reg.ID, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/discover", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(wire.RequestIDHeader, rid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("discover status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(wire.RequestIDHeader); got != rid {
		t.Errorf("response echoed id %q, want %q", got, rid)
	}

	needle := "request_id=" + rid
	if !strings.Contains(coordBuf.String(), needle) {
		t.Errorf("coordinator log has no line with %s:\n%s", needle, coordBuf.String())
	}
	if !strings.Contains(workerBuf.String(), needle) {
		t.Errorf("worker logs have no line with %s — the id did not propagate over the shard dispatch:\n%s",
			needle, workerBuf.String())
	}
	// The worker-side shard event joins too, proving the ctx attrs (not
	// just the access log) carry the id.
	if !strings.Contains(workerBuf.String(), "shard served") {
		t.Errorf("worker logs missing the shard-served event:\n%s", workerBuf.String())
	}
	// And the coordinator logged its fan-out under the same id.
	if !strings.Contains(coordBuf.String(), "shard fan-out done") {
		t.Errorf("coordinator logs missing the fan-out event:\n%s", coordBuf.String())
	}
}
