// Package incremental maintains functional-dependency discovery state
// under tuple insertions — the paper's closing research direction
// (maintaining discovered dependencies while the database evolves, §6).
//
// The key observation is that ag(r) is monotone under inserts: adding a
// tuple t only adds the agree sets ag(t, t') for existing tuples t'.
// Tuples that share no attribute value with t contribute the empty agree
// set, which is tracked by a counter instead of enumeration, so an insert
// costs O(candidates · |R|) where candidates are the tuples sharing at
// least one value with t — exactly the couples Dep-Miner's Lemma 1 would
// generate for t.
//
// Dependencies are re-derived on demand from the maintained agree-set
// family via the ordinary CMAX_SET → LEFT_HAND_SIDE steps (steps 2–4 of
// the pipeline), whose cost depends on |ag(r)| and |R| but not on |r|.
//
// Deletions are not supported: removing a tuple can invalidate agree sets
// non-monotonically, requiring a rebuild (call New again). This matches
// the dominant dba workload the paper targets — analysing growing data.
package incremental

import (
	"context"
	"fmt"

	"repro/internal/attrset"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/faultinject"
	"repro/internal/guard"
	"repro/internal/relation"
)

// Miner maintains discovery state for a growing relation.
type Miner struct {
	names []string
	// dicts[a] maps attribute a's string values to dense codes.
	dicts []map[string]int
	// buckets[a][code] lists tuple ids holding that code.
	buckets [][][]int
	// cols[a][t] is tuple t's code on attribute a.
	cols [][]int
	// agree is the maintained ag(r) (excluding ∅, tracked separately).
	agree map[attrset.Set]struct{}
	// nonEmptyCouples counts couples with a non-empty agree set; when it
	// lags behind C(rows,2), some couple disagrees everywhere and
	// ∅ ∈ ag(r).
	nonEmptyCouples int
	rows            int
	// stamp dedups candidate tuples per insert.
	stamp   []int
	stampID int
}

// New creates an empty miner for the given schema.
func New(names []string) (*Miner, error) {
	if !attrset.Valid(len(names)) {
		return nil, fmt.Errorf("incremental: schema exceeds %d attributes", attrset.MaxAttrs)
	}
	m := &Miner{
		names:   append([]string(nil), names...),
		dicts:   make([]map[string]int, len(names)),
		buckets: make([][][]int, len(names)),
		cols:    make([][]int, len(names)),
		agree:   make(map[attrset.Set]struct{}),
	}
	for a := range names {
		m.dicts[a] = make(map[string]int)
	}
	return m, nil
}

// FromRelation builds a miner pre-loaded with a relation's tuples.
func FromRelation(r *relation.Relation) (*Miner, error) {
	return FromRelationCtx(context.Background(), r)
}

// FromRelationCtx is FromRelation under a context: loading aborts
// mid-relation (and mid-scan within a tuple) when ctx is cancelled,
// returning an error wrapping guard.ErrDeadline.
func FromRelationCtx(ctx context.Context, r *relation.Relation) (*Miner, error) {
	m, err := New(r.Names())
	if err != nil {
		return nil, err
	}
	for t := 0; t < r.Rows(); t++ {
		if err := m.InsertCtx(ctx, r.Row(t)); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Rows returns the number of inserted tuples.
func (m *Miner) Rows() int { return m.rows }

// Arity returns |R|.
func (m *Miner) Arity() int { return len(m.names) }

// Names returns the schema's attribute names.
func (m *Miner) Names() []string { return m.names }

// Insert adds one tuple and updates ag(r).
func (m *Miner) Insert(row []string) error {
	return m.InsertCtx(context.Background(), row)
}

// insertCheckStride is how many candidate couples are processed between
// context checks during an insert's agree-set scan. The scan is the
// O(candidates · |R|) heart of an insert, so on wide or hot-value
// relations it can run long past any deadline if only checked at entry.
const insertCheckStride = 256

// InsertCtx adds one tuple and updates ag(r), honouring ctx cancellation
// mid-scan: the candidate sweep checks ctx every insertCheckStride
// couples and aborts with an error wrapping the typed guard.ErrDeadline
// (not a bare ctx error), so governed callers classify the outcome with
// one errors.Is test. An aborted insert leaves the miner's tuple state
// unchanged — agree sets are staged and committed only after the scan
// completes — so the session stays consistent and the insert can be
// retried.
func (m *Miner) InsertCtx(ctx context.Context, row []string) error {
	if len(row) != len(m.names) {
		return fmt.Errorf("incremental: row arity %d, schema %d", len(row), len(m.names))
	}
	if err := insertCtxErr(ctx); err != nil {
		return err
	}
	t := m.rows
	// Encode and collect candidate partners: tuples sharing ≥ 1 value.
	codes := make([]int, len(row))
	m.stampID++
	if len(m.stamp) < t {
		grown := make([]int, t*2+8)
		copy(grown, m.stamp)
		m.stamp = grown
	}
	var candidates []int
	for a, v := range row {
		code, ok := m.dicts[a][v]
		if !ok {
			code = len(m.buckets[a])
			m.dicts[a][v] = code
			m.buckets[a] = append(m.buckets[a], nil)
		}
		codes[a] = code
		for _, u := range m.buckets[a][code] {
			if m.stamp[u] != m.stampID {
				m.stamp[u] = m.stampID
				candidates = append(candidates, u)
			}
		}
	}
	// Agree sets of the new couples, staged so an abort commits nothing.
	staged := make([]attrset.Set, 0, len(candidates))
	for i, u := range candidates {
		if i%insertCheckStride == 0 {
			if err := insertCtxErr(ctx); err != nil {
				return err
			}
			if err := faultinject.Fire(faultinject.IncrementalInsert); err != nil {
				return err
			}
		}
		var s attrset.Set
		for a := range codes {
			if m.cols[a][u] == codes[a] {
				s.Add(a)
			}
		}
		staged = append(staged, s)
	}
	// Last abort point before the commit below becomes visible.
	if err := faultinject.Fire(faultinject.IncrementalInsert); err != nil {
		return err
	}
	// Commit: agree sets first, then the tuple itself.
	for _, s := range staged {
		m.agree[s] = struct{}{}
	}
	m.nonEmptyCouples += len(staged)
	for a, code := range codes {
		m.buckets[a][code] = append(m.buckets[a][code], t)
		m.cols[a] = append(m.cols[a], code)
	}
	m.rows++
	return nil
}

// insertCtxErr translates a cancelled or expired context into the typed
// guard.ErrDeadline sentinel, preserving the underlying cause for logs.
func insertCtxErr(ctx context.Context) error {
	if cause := ctx.Err(); cause != nil {
		return fmt.Errorf("incremental: insert aborted: %w (%v)", guard.ErrDeadline, cause)
	}
	return nil
}

// AgreeSets returns the maintained ag(r) in canonical order (∅ included
// when some couple disagrees everywhere).
func (m *Miner) AgreeSets() attrset.Family {
	out := make(attrset.Family, 0, len(m.agree)+1)
	for s := range m.agree {
		out = append(out, s)
	}
	if m.emptyCouplePresent() {
		out = append(out, attrset.Empty())
	}
	out.Sort()
	return out
}

func (m *Miner) emptyCouplePresent() bool {
	return m.nonEmptyCouples < m.rows*(m.rows-1)/2
}

// Cover derives the current canonical cover of minimal non-trivial FDs
// (steps 2–4 of the Dep-Miner pipeline over the maintained agree sets).
func (m *Miner) Cover(ctx context.Context) (fd.Cover, error) {
	res, err := core.DeriveFromAgreeSets(ctx, m.AgreeSets(), len(m.names))
	if err != nil {
		return nil, err
	}
	return res.FDs, nil
}

// MaxSets derives MAX(dep(r)) for the current state (for Armstrong
// construction).
func (m *Miner) MaxSets(ctx context.Context) (attrset.Family, error) {
	res, err := core.DeriveFromAgreeSets(ctx, m.AgreeSets(), len(m.names))
	if err != nil {
		return nil, err
	}
	return res.MaxSets, nil
}

// Snapshot materialises the current tuples as a Relation (e.g. to build a
// real-world Armstrong relation with values from the data).
func (m *Miner) Snapshot() (*relation.Relation, error) {
	rows := make([][]string, m.rows)
	// Reverse dictionaries once.
	rev := make([][]string, len(m.names))
	for a := range m.names {
		rev[a] = make([]string, len(m.dicts[a]))
		for v, code := range m.dicts[a] {
			rev[a][code] = v
		}
	}
	for t := 0; t < m.rows; t++ {
		row := make([]string, len(m.names))
		for a := range m.names {
			row[a] = rev[a][m.cols[a][t]]
		}
		rows[t] = row
	}
	return relation.FromRows(m.names, rows)
}
