package incremental

import (
	"context"
	"errors"
	"math/rand"
	"strconv"
	"testing"
	"time"

	"repro/internal/agree"
	"repro/internal/attrset"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/fd"
	"repro/internal/guard"
	"repro/internal/relation"
)

func coversIdentical(a, b fd.Cover) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPaperExampleIncrementally(t *testing.T) {
	r := relation.PaperExample()
	m, err := New(r.Names())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for tt := 0; tt < r.Rows(); tt++ {
		if err := m.Insert(r.Row(tt)); err != nil {
			t.Fatal(err)
		}
		// After each insert, the incremental cover equals the batch
		// cover of the prefix relation.
		prefix := r.Restrict(seq(tt + 1))
		want, err := core.Discover(ctx, prefix, core.Options{Armstrong: core.ArmstrongNone})
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.Cover(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !coversIdentical(got, want.FDs) {
			t.Fatalf("after %d inserts:\n got %s\nwant %s", tt+1, got, want.FDs)
		}
	}
	if m.Rows() != 7 || m.Arity() != 5 {
		t.Errorf("shape %d×%d", m.Rows(), m.Arity())
	}
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestAgreeSetsMatchBatch(t *testing.T) {
	r := relation.PaperExample()
	m, err := FromRelation(r)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := agree.FromRelation(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if !m.AgreeSets().Equal(batch.Sets) {
		t.Errorf("incremental ag = %v, batch = %v",
			m.AgreeSets().Strings(), batch.Sets.Strings())
	}
}

func TestEmptyAgreeSetTracking(t *testing.T) {
	m, err := New([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	check := func(want bool) {
		t.Helper()
		has := m.AgreeSets().Contains(attrset.Empty())
		if has != want {
			t.Fatalf("∅ present = %v, want %v (rows=%d)", has, want, m.Rows())
		}
	}
	check(false) // no tuples
	if err := m.Insert([]string{"1", "x"}); err != nil {
		t.Fatal(err)
	}
	check(false) // one tuple, no couples
	if err := m.Insert([]string{"2", "y"}); err != nil {
		t.Fatal(err)
	}
	check(true) // the couple disagrees everywhere
	if err := m.Insert([]string{"1", "y"}); err != nil {
		t.Fatal(err)
	}
	check(true) // still one everywhere-disagreeing couple
}

func TestInsertErrors(t *testing.T) {
	m, err := New([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Insert([]string{"only-one"}); err == nil {
		t.Error("ragged insert accepted")
	}
	if _, err := New(make([]string, attrset.MaxAttrs+1)); err == nil {
		t.Error("oversized schema accepted")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := relation.PaperExample()
	m, err := FromRelation(r)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Rows() != r.Rows() || snap.Arity() != r.Arity() {
		t.Fatal("snapshot shape mismatch")
	}
	for tt := 0; tt < r.Rows(); tt++ {
		for a := 0; a < r.Arity(); a++ {
			if snap.Value(tt, a) != r.Value(tt, a) {
				t.Fatalf("snapshot value (%d,%d) = %q, want %q",
					tt, a, snap.Value(tt, a), r.Value(tt, a))
			}
		}
	}
}

func TestMaxSets(t *testing.T) {
	m, err := FromRelation(relation.PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	max, err := m.MaxSets(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := attrset.Family{attrset.New(0), attrset.New(1, 3, 4), attrset.New(2, 4)}
	if !max.Equal(want) {
		t.Errorf("MaxSets = %v, want %v", max.Strings(), want.Strings())
	}
}

func TestDuplicateInserts(t *testing.T) {
	m, err := New([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := m.Insert([]string{"1", "x"}); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicates agree on the full schema.
	if !m.AgreeSets().Contains(attrset.Universe(2)) {
		t.Error("duplicate tuples must contribute the full-schema agree set")
	}
}

// TestPropertyMatchesBatchOnRandomStreams: interleave inserts with cover
// checks against the batch pipeline on random tuple streams.
func TestPropertyMatchesBatchOnRandomStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	ctx := context.Background()
	for iter := 0; iter < 25; iter++ {
		n := 1 + rng.Intn(5)
		names := make([]string, n)
		for a := range names {
			names[a] = "c" + strconv.Itoa(a)
		}
		m, err := New(names)
		if err != nil {
			t.Fatal(err)
		}
		var rows [][]string
		steps := 2 + rng.Intn(18)
		for s := 0; s < steps; s++ {
			row := make([]string, n)
			for a := range row {
				row[a] = strconv.Itoa(rng.Intn(4))
			}
			rows = append(rows, row)
			if err := m.Insert(row); err != nil {
				t.Fatal(err)
			}
			if s%3 != steps%3 {
				continue // check at a third of the steps to keep it fast
			}
			r, err := relation.FromRows(names, rows)
			if err != nil {
				t.Fatal(err)
			}
			want, err := core.Discover(ctx, r, core.Options{Armstrong: core.ArmstrongNone})
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.Cover(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !coversIdentical(got, want.FDs) {
				t.Fatalf("iter %d step %d:\n got %s\nwant %s", iter, s, got, want.FDs)
			}
		}
	}
}

func TestCancellation(t *testing.T) {
	m, err := FromRelation(relation.PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Cover(ctx); err == nil {
		t.Error("cancelled context should abort Cover")
	}
}

func TestInsertCtxCancelledLeavesMinerUnchanged(t *testing.T) {
	m, err := FromRelation(relation.PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	rowsBefore := m.Rows()
	agreeBefore := m.AgreeSets()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = m.InsertCtx(ctx, relation.PaperExample().Row(0))
	if err == nil {
		t.Fatal("cancelled context should abort InsertCtx")
	}
	if !errors.Is(err, guard.ErrDeadline) {
		t.Fatalf("InsertCtx abort error = %v, want guard.ErrDeadline in the chain", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("InsertCtx must return the typed sentinel, not the bare ctx error: %v", err)
	}
	if m.Rows() != rowsBefore {
		t.Fatalf("aborted insert changed Rows: %d → %d", rowsBefore, m.Rows())
	}
	after := m.AgreeSets()
	if len(after) != len(agreeBefore) {
		t.Fatalf("aborted insert changed ag(r): %d → %d sets", len(agreeBefore), len(after))
	}
	for i := range after {
		if after[i] != agreeBefore[i] {
			t.Fatalf("aborted insert changed ag(r) at %d", i)
		}
	}
	// The miner must remain usable: the same insert succeeds afterwards.
	if err := m.Insert(relation.PaperExample().Row(0)); err != nil {
		t.Fatalf("retry after aborted insert failed: %v", err)
	}
	if m.Rows() != rowsBefore+1 {
		t.Fatalf("retry did not commit: Rows = %d", m.Rows())
	}
}

func TestInsertCtxHonoursMidScanDeadline(t *testing.T) {
	// A relation whose every tuple shares a value with the next insert
	// produces rows-1 candidate couples, forcing the scan past several
	// stride boundaries so the mid-scan check (not the entry check) must
	// fire. The deadline context is created already expired.
	const rows = 4 * insertCheckStride
	m, err := New([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := m.Insert([]string{"shared", strconv.Itoa(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err = m.InsertCtx(ctx, []string{"shared", "fresh"})
	if !errors.Is(err, guard.ErrDeadline) {
		t.Fatalf("expired deadline mid-scan: err = %v, want guard.ErrDeadline", err)
	}
	if m.Rows() != rows {
		t.Fatalf("aborted insert committed: Rows = %d, want %d", m.Rows(), rows)
	}
}

func TestFromRelationCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FromRelationCtx(ctx, relation.PaperExample()); !errors.Is(err, guard.ErrDeadline) {
		t.Fatalf("FromRelationCtx under cancelled ctx: err = %v, want guard.ErrDeadline", err)
	}
}

// sweepStream is the insert stream for the staged-commit fault sweep:
// every row shares values with earlier rows so each insert stages a
// non-empty batch of agree sets, making a mid-insert abort that leaked
// half a batch detectable.
func sweepStream() [][]string {
	rows := make([][]string, 12)
	for i := range rows {
		rows[i] = []string{
			"g" + strconv.Itoa(i%3),
			"h" + strconv.Itoa(i%2),
			"u" + strconv.Itoa(i),
		}
	}
	return rows
}

// sameAgree reports whether two miners hold the identical ag(r).
func sameAgree(a, b *Miner) bool {
	x, y := a.AgreeSets(), b.AgreeSets()
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// referenceMiner replays the first n stream rows into a fresh miner.
func referenceMiner(t *testing.T, names []string, stream [][]string, n int) *Miner {
	t.Helper()
	ref, err := New(names)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range stream[:n] {
		if err := ref.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	return ref
}

// TestInsertFaultSweepNeverLeaksPartialCommit injects a failure at every
// crossing of the incremental/insert fault point in turn — each stride
// check and each pre-commit gate of every insert in the stream — and
// asserts the staged-commit contract: an aborted insert leaves ag(r)
// exactly consistent with the committed row count (byte-identical to a
// from-scratch miner over those rows), and retrying converges to the
// same final state as a fault-free run.
func TestInsertFaultSweepNeverLeaksPartialCommit(t *testing.T) {
	defer faultinject.Reset()
	names := []string{"a", "b", "c"}
	stream := sweepStream()

	// Count the fault-point crossings of one clean run to size the sweep.
	crossings := 0
	faultinject.Set(faultinject.IncrementalInsert, func() error {
		crossings++
		return nil
	})
	clean := referenceMiner(t, names, stream, len(stream))
	faultinject.Reset()
	if crossings < len(stream) {
		t.Fatalf("only %d fault-point crossings for %d inserts; hook not wired?", crossings, len(stream))
	}

	errBoom := errors.New("injected insert fault")
	for k := 0; k < crossings; k++ {
		m, err := New(names)
		if err != nil {
			t.Fatal(err)
		}
		faultinject.Set(faultinject.IncrementalInsert, faultinject.After(k, faultinject.FailWith(errBoom)))
		faulted := -1
		for i, row := range stream {
			if ierr := m.InsertCtx(context.Background(), row); ierr != nil {
				if !errors.Is(ierr, errBoom) {
					t.Fatalf("k=%d row %d: unexpected error %v", k, i, ierr)
				}
				faulted = i
				break
			}
		}
		faultinject.Reset()
		if faulted < 0 {
			t.Fatalf("k=%d: fault never fired", k)
		}
		// The aborted insert must have committed nothing: rows and ag(r)
		// match a from-scratch replay of the successful prefix.
		if m.Rows() != faulted {
			t.Fatalf("k=%d: fault at row %d left Rows=%d", k, faulted, m.Rows())
		}
		if !sameAgree(m, referenceMiner(t, names, stream, faulted)) {
			t.Fatalf("k=%d: fault at row %d left ag(r) inconsistent with %d committed rows", k, faulted, faulted)
		}
		// Retrying the faulted row and the rest converges to the clean run.
		for _, row := range stream[faulted:] {
			if err := m.Insert(row); err != nil {
				t.Fatalf("k=%d: retry failed: %v", k, err)
			}
		}
		if m.Rows() != clean.Rows() || !sameAgree(m, clean) {
			t.Fatalf("k=%d: post-retry state diverged from fault-free run", k)
		}
	}
}
