package pool

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/guard"
)

// TestRunContainsPanicSequential checks the workers<=1 inline path turns
// a task panic into a *guard.PanicError instead of unwinding the caller.
func TestRunContainsPanicSequential(t *testing.T) {
	err := Run(context.Background(), 1, 3, func(_ context.Context, _, task int) error {
		if task == 1 {
			panic("task 1 exploded")
		}
		return nil
	})
	if !errors.Is(err, guard.ErrPanic) {
		t.Fatalf("err = %v, want contained panic", err)
	}
	var pe *guard.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err is %T", err)
	}
	if pe.Value != "task 1 exploded" {
		t.Errorf("panic value = %v", pe.Value)
	}
}

// TestRunContainsPanicParallel checks a panicking task in a worker
// goroutine is contained, the remaining tasks are cancelled, and every
// worker unwinds (no goroutine leak).
func TestRunContainsPanicParallel(t *testing.T) {
	before := runtime.NumGoroutine()
	var started atomic.Int64
	err := Run(context.Background(), 4, 64, func(ctx context.Context, _, task int) error {
		started.Add(1)
		if task == 5 {
			panic(errors.New("worker bomb"))
		}
		select {
		case <-ctx.Done():
		case <-time.After(10 * time.Millisecond):
		}
		return nil
	})
	if !errors.Is(err, guard.ErrPanic) {
		t.Fatalf("err = %v, want contained panic", err)
	}
	if started.Load() == 64 {
		t.Error("panic did not stop dispatch")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines: %d before, %d after", before, n)
	}
}

// TestRunFiresPoolTaskHook checks the fault-injection point inside the
// task dispatch propagates its error through both execution paths.
func TestRunFiresPoolTaskHook(t *testing.T) {
	defer faultinject.Reset()
	boom := errors.New("injected")
	faultinject.Set(faultinject.PoolTask, faultinject.FailWith(boom))
	for _, workers := range []int{1, 4} {
		err := Run(context.Background(), workers, 8, func(context.Context, int, int) error {
			return nil
		})
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: err = %v, want injected error", workers, err)
		}
	}
}
