package pool

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, n := range []int{1, 2, 7} {
		if got := Resolve(n); got != n {
			t.Errorf("Resolve(%d) = %d", n, got)
		}
	}
}

func TestRunCoversEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		const tasks = 100
		var mu sync.Mutex
		hits := make([]int, tasks)
		err := Run(context.Background(), workers, tasks, func(_ context.Context, w, task int) error {
			if w < 0 || w >= workers {
				t.Errorf("worker id %d out of range [0,%d)", w, workers)
			}
			mu.Lock()
			hits[task]++
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for task, n := range hits {
			if n != 1 {
				t.Errorf("workers=%d: task %d ran %d times", workers, task, n)
			}
		}
	}
}

func TestRunZeroTasks(t *testing.T) {
	if err := Run(context.Background(), 4, 0, func(context.Context, int, int) error {
		t.Error("fn called with zero tasks")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSequentialOrder(t *testing.T) {
	var got []int
	err := Run(context.Background(), 1, 5, func(_ context.Context, w, task int) error {
		if w != 0 {
			t.Errorf("sequential worker id = %d", w)
		}
		got = append(got, task)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, task := range got {
		if task != i {
			t.Fatalf("sequential order broken: %v", got)
		}
	}
}

func TestRunFirstErrorStopsDispatch(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	err := Run(context.Background(), 3, 1000, func(_ context.Context, _, task int) error {
		ran.Add(1)
		if task == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := ran.Load(); n == 1000 {
		t.Error("error did not stop dispatch")
	}
}

func TestRunCancellationInFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 4)
	err := Run(ctx, 4, 64, func(taskCtx context.Context, _, task int) error {
		select {
		case started <- struct{}{}:
			if len(started) == 1 {
				cancel() // cancel while workers are in flight
			}
		default:
		}
		select {
		case <-taskCtx.Done():
			return taskCtx.Err()
		case <-time.After(5 * time.Second):
			return errors.New("task context not cancelled")
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		err := Run(ctx, workers, 10, func(context.Context, int, int) error {
			t.Error("fn called under a cancelled context")
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}
