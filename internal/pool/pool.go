// Package pool is the worker-pool substrate of the parallel discovery
// paths: bounded fan-out over an indexed task list with context
// cancellation and first-error propagation.
//
// The contract every caller relies on for determinism is that the pool
// only decides *scheduling*, never *results*: tasks are identified by
// index, workers write to per-task or per-worker state, and callers merge
// at canonical order (sorted families, index-addressed slices). Running
// with 1 worker or N workers must therefore produce byte-identical
// results — the repo's differential tests enforce this across the whole
// pipeline.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/guard"
)

// Resolve maps an Options.Workers-style knob to an effective worker
// count: values <= 0 mean runtime.GOMAXPROCS(0) (use every core), any
// positive value is taken as-is (1 = the sequential reference path).
func Resolve(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Run executes fn for every task index 0..tasks-1 on up to workers
// goroutines (after Resolve; capped at tasks). fn receives the worker id
// in [0, workers) — stable per goroutine, for per-worker local state such
// as private agree-set maps — and the task index.
//
// With an effective worker count of 1 the tasks run inline on the calling
// goroutine in index order: the sequential reference path.
//
// On the first error (including context cancellation observed between
// tasks) the remaining undispatched tasks are dropped, the context passed
// to in-flight fn calls is cancelled, and Run returns that error after
// every worker has exited — workers are never leaked. fn implementations
// that can run long should poll ctx themselves so mid-task cancellation
// is also prompt.
//
// A panic inside fn is contained at the task boundary: it is converted to
// a *guard.PanicError (wrapping guard.ErrPanic), the remaining tasks are
// cancelled, and Run returns the error with every worker unwound — a
// pathological task never takes the process down or strands goroutines.
func Run(ctx context.Context, workers, tasks int, fn func(ctx context.Context, worker, task int) error) error {
	workers = Resolve(workers)
	if workers > tasks {
		workers = tasks
	}
	if workers <= 1 {
		for t := 0; t < tasks; t++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := runTask(ctx, fn, 0, t); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= tasks {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				if err := runTask(ctx, fn, w, t); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}

// runTask dispatches one task with panic containment and the worker-loop
// fault-injection hook.
func runTask(ctx context.Context, fn func(ctx context.Context, worker, task int) error, w, t int) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = guard.NewPanicError(fmt.Sprintf("pool worker %d task %d", w, t), p)
		}
	}()
	if err := faultinject.Fire(faultinject.PoolTask); err != nil {
		return err
	}
	return fn(ctx, w, t)
}
