package extsort

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/attrset"
	"repro/internal/guard"
)

// encodeRun serialises a sorted deduplicated run through RunWriter,
// exactly as a shard worker would onto an HTTP response.
func encodeRun(t *testing.T, run []attrset.Set) []byte {
	t.Helper()
	var buf bytes.Buffer
	rw := NewRunWriter(&buf)
	for _, s := range run {
		if err := rw.Write(s); err != nil {
			t.Fatalf("RunWriter.Write: %v", err)
		}
	}
	if err := rw.Close(); err != nil {
		t.Fatalf("RunWriter.Close: %v", err)
	}
	if rw.Sets() != int64(len(run)) {
		t.Fatalf("RunWriter.Sets = %d, want %d", rw.Sets(), len(run))
	}
	return buf.Bytes()
}

// TestAdoptRunRoundTrip streams runs of several sizes (empty, single
// block, multi-block) through RunWriter → AdoptRun → Commit → Merge and
// requires the exact input back — once memory-resident (memLimit 0) and
// once forced through a run file (memLimit 1). Adopted runs must be
// indistinguishable from locally spilled ones either way.
func TestAdoptRunRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, memLimit := range []int64{0, 1} {
		for _, n := range []int{0, 1, 100, blockSets + 17} {
			runs, want := randomRuns(t, rng, 1, n)
			run := runs[0]
			if n == 0 {
				run, want = nil, nil
			}
			raw := encodeRun(t, run)

			sp := NewSpiller(t.TempDir(), nil)
			pr, err := sp.AdoptRun(bytes.NewReader(raw), memLimit)
			if err != nil {
				t.Fatalf("mem=%d n=%d AdoptRun: %v", memLimit, n, err)
			}
			if pr.Sets() != int64(len(run)) {
				t.Fatalf("mem=%d n=%d adopted sets = %d, want %d", memLimit, n, pr.Sets(), len(run))
			}
			pr.Commit()
			if len(run) == 0 && sp.Runs() != 0 {
				t.Fatalf("empty run joined the merge set")
			}
			if memLimit == 1 && len(run) > 0 && sp.Stats().SpilledBytes == 0 {
				t.Fatalf("n=%d forced adoption never reached disk", n)
			}
			got := collect(t, sp, nil)
			if len(got) != len(want) {
				t.Fatalf("mem=%d n=%d merged %d sets, want %d", memLimit, n, len(got), len(want))
			}
			for i := range got {
				if Compare(got[i], want[i]) != 0 {
					t.Fatalf("mem=%d n=%d merged[%d] differs", memLimit, n, i)
				}
			}
			sp.Close()
		}
	}
}

// TestAdoptRunMergesWithLocal interleaves an adopted run with a locally
// spilled run and an in-memory run — the coordinator's exact merge shape
// (remote shards + local fallback shards).
func TestAdoptRunMergesWithLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	runs, want := randomRuns(t, rng, 3, 500)

	sp := NewSpiller(t.TempDir(), nil)
	defer sp.Close()
	pr, err := sp.AdoptRun(bytes.NewReader(encodeRun(t, runs[0])), 1)
	if err != nil {
		t.Fatalf("AdoptRun: %v", err)
	}
	pr.Commit()
	if err := sp.Spill(runs[1]); err != nil {
		t.Fatalf("Spill: %v", err)
	}
	got := collect(t, sp, [][]attrset.Set{runs[2]})
	if len(got) != len(want) {
		t.Fatalf("merged %d sets, want %d", len(got), len(want))
	}
	for i := range got {
		if Compare(got[i], want[i]) != 0 {
			t.Fatalf("merged[%d] differs from union", i)
		}
	}
}

// TestAdoptRunRejectsBadStreams feeds AdoptRun every class of broken
// stream: unsorted, duplicated, bit-flipped, truncated mid-block, torn
// header, and garbage magic. Each must be rejected with an error and
// leave no run file behind.
func TestAdoptRunRejectsBadStreams(t *testing.T) {
	sorted := []attrset.Set{{1, 0}, {2, 0}, {3, 0}}
	valid := encodeRun(t, sorted)

	cases := map[string][]byte{
		"unsorted":   encodeRun(t, []attrset.Set{{2, 0}, {1, 0}}),
		"duplicate":  encodeRun(t, []attrset.Set{{1, 0}, {1, 0}}),
		"bad magic":  append([]byte("NOTRUN\n"), valid[len(runMagic):]...),
		"bit flip":   flipByte(valid, len(valid)-1),
		"torn block": valid[:len(valid)-5],
		"torn header": append(append([]byte{}, valid...),
			0xff, 0xff), // trailing partial header
	}
	for name, raw := range cases {
		for _, memLimit := range []int64{0, 1} {
			dir := t.TempDir()
			sp := NewSpiller(dir, nil)
			pr, err := sp.AdoptRun(bytes.NewReader(raw), memLimit)
			if err == nil {
				t.Errorf("%s mem=%d: AdoptRun accepted a broken stream (%d sets)", name, memLimit, pr.Sets())
				pr.Discard()
			}
			if sp.Runs() != 0 {
				t.Errorf("%s mem=%d: broken stream registered a run", name, memLimit)
			}
			assertNoRunFiles(t, name, dir)
			sp.Close()
		}
	}
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte{}, b...)
	out[i] ^= 0x40
	return out
}

func assertNoRunFiles(t *testing.T, name, dir string) {
	t.Helper()
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		sub, _ := os.ReadDir(filepath.Join(dir, e.Name()))
		if len(sub) != 0 {
			t.Errorf("%s: rejected stream left files behind: %v", name, sub)
		}
	}
}

// TestAdoptRunChargesBudget pins the governance contract: adoption
// charges the run's framed wire size exactly like a local spill —
// whether the run stays resident or reaches disk — and a budget overrun
// rejects the stream before it can join a merge.
func TestAdoptRunChargesBudget(t *testing.T) {
	run := make([]attrset.Set, 100)
	for i := range run {
		run[i][0] = uint64(i)
	}
	raw := encodeRun(t, run)
	want := runFileSize(len(run))

	b := guard.New(guard.Limits{Units: want * 10})
	sp := NewSpiller(t.TempDir(), b)
	pr, err := sp.AdoptRun(bytes.NewReader(raw), 1) // force the file path
	if err != nil {
		t.Fatalf("AdoptRun under budget: %v", err)
	}
	pr.Commit()
	if got := sp.Stats().SpilledBytes; got != want {
		t.Fatalf("adopted SpilledBytes = %d, want %d (local-spill parity)", got, want)
	}
	sp.Close()

	// A memory-resident adoption charges the identical wire size: staying
	// in RAM is not a governance discount.
	memBudget := guard.New(guard.Limits{Units: want})
	sp = NewSpiller(t.TempDir(), memBudget)
	pr, err = sp.AdoptRun(bytes.NewReader(raw), 0)
	if err != nil {
		t.Fatalf("AdoptRun in memory at exact budget: %v", err)
	}
	pr.Commit()
	if sp.Runs() != 1 || sp.Stats().SpilledBytes != 0 {
		t.Fatalf("memory adoption: runs=%d spilled=%d, want 1 resident run and no spill",
			sp.Runs(), sp.Stats().SpilledBytes)
	}
	sp.Close()

	for _, memLimit := range []int64{0, 1} {
		dir := t.TempDir()
		sp = NewSpiller(dir, guard.New(guard.Limits{Units: 16}))
		if _, err := sp.AdoptRun(bytes.NewReader(raw), memLimit); err == nil || !guard.Governed(err) {
			t.Fatalf("AdoptRun over budget (mem=%d): err = %v, want governed", memLimit, err)
		}
		if sp.Runs() != 0 {
			t.Fatalf("over-budget adoption (mem=%d) registered a run", memLimit)
		}
		assertNoRunFiles(t, "over budget", dir)
		sp.Close()
	}
}

// TestPendingRunDiscard verifies the trailer-mismatch path: a fully
// verified stream can still be discarded before Commit, leaving the
// merge set untouched and nothing behind — resident or on disk.
func TestPendingRunDiscard(t *testing.T) {
	run := []attrset.Set{{1, 0}, {5, 0}}
	for _, memLimit := range []int64{0, 1} {
		dir := t.TempDir()
		sp := NewSpiller(dir, nil)
		pr, err := sp.AdoptRun(bytes.NewReader(encodeRun(t, run)), memLimit)
		if err != nil {
			t.Fatalf("mem=%d AdoptRun: %v", memLimit, err)
		}
		pr.Discard()
		if sp.Runs() != 0 {
			t.Fatalf("mem=%d: discarded run joined the merge set", memLimit)
		}
		assertNoRunFiles(t, "discard", dir)
		if got := collect(t, sp, nil); len(got) != 0 {
			t.Fatalf("mem=%d: merge after discard produced %d sets", memLimit, len(got))
		}
		sp.Close()
	}
}
