package extsort

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"testing"

	"repro/internal/attrset"
	"repro/internal/faultinject"
	"repro/internal/guard"
)

// randomRuns builds n sorted deduplicated runs of random sets, plus the
// sorted deduplicated union — the merge's expected output.
func randomRuns(t *testing.T, rng *rand.Rand, n, perRun int) ([][]attrset.Set, []attrset.Set) {
	t.Helper()
	runs := make([][]attrset.Set, n)
	var all []attrset.Set
	for i := range runs {
		run := make([]attrset.Set, 0, perRun)
		for j := 0; j < perRun; j++ {
			var s attrset.Set
			// Small word values force cross-run duplicates.
			s[0] = uint64(rng.Intn(perRun * 2))
			s[1] = uint64(rng.Intn(3))
			run = append(run, s)
		}
		sortDedup(&run)
		runs[i] = run
		all = append(all, run...)
	}
	sortDedup(&all)
	return runs, all
}

func sortDedup(run *[]attrset.Set) {
	sort.Slice(*run, func(i, j int) bool { return Compare((*run)[i], (*run)[j]) < 0 })
	*run = slices.CompactFunc(*run, func(a, b attrset.Set) bool { return Compare(a, b) == 0 })
}

func collect(t *testing.T, sp *Spiller, inMem [][]attrset.Set) []attrset.Set {
	t.Helper()
	var got []attrset.Set
	if err := sp.Merge(inMem, func(s attrset.Set) error {
		got = append(got, s)
		return nil
	}); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	return got
}

func TestMergeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, spilled := range []int{0, 1, 3, 7} {
		for _, inMem := range []int{0, 1, 4} {
			if spilled == 0 && inMem == 0 {
				continue
			}
			runs, want := randomRuns(t, rng, spilled+inMem, 1000)
			sp := NewSpiller(t.TempDir(), nil)
			for _, run := range runs[:spilled] {
				if err := sp.Spill(run); err != nil {
					t.Fatalf("Spill: %v", err)
				}
			}
			got := collect(t, sp, runs[spilled:])
			if !slices.Equal(got, want) {
				t.Fatalf("spilled=%d inMem=%d: merge mismatch: got %d sets, want %d",
					spilled, inMem, len(got), len(want))
			}
			st := sp.Stats()
			if st.RunsSpilled != int64(spilled) {
				t.Fatalf("RunsSpilled = %d, want %d", st.RunsSpilled, spilled)
			}
			if spilled > 0 && (st.SpilledBytes == 0 || st.ReadBlocks == 0) {
				t.Fatalf("expected nonzero spill counters, got %+v", st)
			}
			if err := sp.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
		}
	}
}

// TestMergeMultiBlock spills a run spanning several checksummed blocks.
func TestMergeMultiBlock(t *testing.T) {
	run := make([]attrset.Set, 3*blockSets+17)
	for i := range run {
		run[i][0] = uint64(i)
	}
	sp := NewSpiller(t.TempDir(), nil)
	defer sp.Close()
	if err := sp.Spill(run); err != nil {
		t.Fatalf("Spill: %v", err)
	}
	got := collect(t, sp, nil)
	if !slices.Equal(got, run) {
		t.Fatalf("multi-block round trip mismatch: got %d sets, want %d", len(got), len(run))
	}
	if st := sp.Stats(); st.ReadBlocks != 4 {
		t.Fatalf("ReadBlocks = %d, want 4", st.ReadBlocks)
	}
}

func TestSpillChargesBudget(t *testing.T) {
	run := make([]attrset.Set, 100)
	for i := range run {
		run[i][0] = uint64(i)
	}
	want := runFileSize(len(run))

	// Generous budget: the spill succeeds and charges exactly the file size.
	b := guard.New(guard.Limits{Units: want * 10})
	sp := NewSpiller(t.TempDir(), b)
	if err := sp.Spill(run); err != nil {
		t.Fatalf("Spill under budget: %v", err)
	}
	if got := sp.Stats().SpilledBytes; got != want {
		t.Fatalf("SpilledBytes = %d, want %d", got, want)
	}
	if fi, err := os.Stat(sp.files[0]); err != nil || fi.Size() != want {
		t.Fatalf("run file size = %v/%v, want %d", fi, err, want)
	}
	sp.Close()

	// Tiny budget: the spill is refused, no file is left behind.
	dir := t.TempDir()
	b = guard.New(guard.Limits{Units: 16})
	sp = NewSpiller(dir, b)
	err := sp.Spill(run)
	if err == nil || !guard.Governed(err) {
		t.Fatalf("Spill over budget: err = %v, want governed", err)
	}
	if sp.Runs() != 0 {
		t.Fatalf("refused spill registered a run")
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		sub, _ := os.ReadDir(filepath.Join(dir, e.Name()))
		if len(sub) != 0 {
			t.Fatalf("refused spill left files behind: %v", sub)
		}
	}
	sp.Close()
}

func TestCorruptionDetected(t *testing.T) {
	run := make([]attrset.Set, 2000)
	for i := range run {
		run[i][0] = uint64(i)
	}
	corrupt := func(name string, mutate func(b []byte)) {
		t.Run(name, func(t *testing.T) {
			sp := NewSpiller(t.TempDir(), nil)
			defer sp.Close()
			if err := sp.Spill(run); err != nil {
				t.Fatalf("Spill: %v", err)
			}
			path := sp.files[0]
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			mutate(b)
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
			err = sp.Merge(nil, func(attrset.Set) error { return nil })
			if err == nil {
				t.Fatalf("merge of corrupted run succeeded")
			}
		})
	}
	corrupt("bit-flip", func(b []byte) { b[len(runMagic)+blockHeaderLen+5] ^= 0x40 })
	corrupt("bad-magic", func(b []byte) { b[0] = 'X' })
	corrupt("implausible-length", func(b []byte) {
		binary.LittleEndian.PutUint32(b[len(runMagic):], uint32(maxBlockBytes+SetBytes))
	})
}

// TestTornTail truncates a run file mid-record: the reader must fail, not
// silently stop at the last whole block.
func TestTornTail(t *testing.T) {
	run := make([]attrset.Set, 500)
	for i := range run {
		run[i][0] = uint64(i)
	}
	sp := NewSpiller(t.TempDir(), nil)
	defer sp.Close()
	if err := sp.Spill(run); err != nil {
		t.Fatalf("Spill: %v", err)
	}
	path := sp.files[0]
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-SetBytes/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := sp.Merge(nil, func(attrset.Set) error { return nil }); err == nil {
		t.Fatalf("merge of torn run succeeded")
	}
}

func TestFaultInjection(t *testing.T) {
	run := make([]attrset.Set, 100)
	for i := range run {
		run[i][0] = uint64(i)
	}
	injected := errors.New("injected")

	for _, point := range []string{
		faultinject.ExtsortFlush, faultinject.ExtsortRead, faultinject.ExtsortMerge,
	} {
		t.Run(point, func(t *testing.T) {
			faultinject.Set(point, faultinject.FailWith(injected))
			defer faultinject.Reset()
			sp := NewSpiller(t.TempDir(), nil)
			defer sp.Close()
			err := sp.Spill(run)
			if point == faultinject.ExtsortFlush {
				if !errors.Is(err, injected) {
					t.Fatalf("Spill: err = %v, want injected", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("Spill: %v", err)
			}
			err = sp.Merge(nil, func(attrset.Set) error { return nil })
			if !errors.Is(err, injected) {
				t.Fatalf("Merge: err = %v, want injected", err)
			}
		})
	}
}

func TestCloseRemovesDir(t *testing.T) {
	parent := t.TempDir()
	sp := NewSpiller(parent, nil)
	run := []attrset.Set{{1}, {2}}
	if err := sp.Spill(run); err != nil {
		t.Fatalf("Spill: %v", err)
	}
	sp.mu.Lock()
	dir := sp.dir
	sp.mu.Unlock()
	if dir == "" {
		t.Fatalf("no spill dir created")
	}
	if err := sp.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("spill dir still present after Close: %v", err)
	}
	// Idempotent.
	if err := sp.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestEmitErrorPropagates(t *testing.T) {
	sp := NewSpiller(t.TempDir(), nil)
	defer sp.Close()
	boom := errors.New("boom")
	err := sp.Merge([][]attrset.Set{{{1}, {2}}}, func(attrset.Set) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}
