// Package extsort is the spill-to-disk external merge behind out-of-core
// agree-set computation: sorted runs of attribute sets that no longer fit
// the configured memory threshold are flushed as checksummed run files in
// a per-job temp directory, and the final deduplication becomes a
// streaming k-way merge over in-memory runs and on-disk run readers.
//
// The contract that makes spilling invisible to results: runs are sorted
// by Compare (the raw word order the agree accumulators already use), the
// merge emits each distinct set exactly once in that order, and the
// caller applies the one canonical sort at the end — exactly what the
// all-in-RAM merge does. Where a run boundary falls (and hence how much
// spills) can therefore never change the emitted family, only the I/O
// spent producing it. The differential spill suite asserts this
// byte-identity across thresholds, worker counts, and injected faults.
//
// Run file layout:
//
//	magic "DMRUN1\n", then blocks of
//	u32 payload length | u32 CRC32C(payload) | payload
//
// where each payload is a whole number of 32-byte little-endian set
// records — the same length-framed checksummed shape as the durable WAL,
// so torn or bit-flipped spill files fail loudly instead of silently
// corrupting a cover. Spill files are job-scoped scratch, not durable
// state: any damage is an I/O failure of the current run, never something
// recovery has to classify.
//
// Spilled bytes are charged into the run's guard.Budget under the
// "extsort" phase through the same pstore.ByteAccount helper the
// partition store uses, so a governed run that would flood the spill
// directory degrades into a typed partial result instead.
package extsort

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/attrset"
	"repro/internal/faultinject"
	"repro/internal/guard"
	"repro/internal/pstore"
)

// SetBytes is the on-disk footprint of one attribute-set record: the
// backing words, little-endian. It is also the unit spill thresholds are
// expressed in (a threshold below one record still spills whole records).
const SetBytes = attrset.Words * 8

// runMagic leads every run file, so a foreign file dropped into the spill
// directory fails fast.
var runMagic = []byte("DMRUN1\n")

const (
	blockHeaderLen = 8
	// blockSets is the number of records per checksummed block: 8192 sets
	// = 256 KiB payloads, large enough to amortise framing and CRC, small
	// enough that readers hold one block at a time.
	blockSets     = 8192
	maxBlockBytes = blockSets * SetBytes
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Compare orders sets by their raw backing words — the run order. Zero
// iff the sets are equal, so merge dedup is exact; the order itself
// carries no meaning and never reaches callers (the final family is
// re-sorted canonically).
func Compare(a, b attrset.Set) int {
	for w := 0; w < attrset.Words; w++ {
		if a[w] != b[w] {
			if a[w] < b[w] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Stats are the spill/merge counters one computation accumulates,
// surfaced through agree.Result and core.Result.Stats up to /v1/stats.
type Stats struct {
	// RunsSpilled counts sorted runs flushed to disk.
	RunsSpilled int64
	// SpilledSets counts records across all spilled runs.
	SpilledSets int64
	// SpilledBytes is the total on-disk footprint of the spilled runs
	// (magic + block framing + records), as charged to the budget.
	SpilledBytes int64
	// MergedRuns counts the runs — in-memory and on-disk — fed into the
	// final k-way merge.
	MergedRuns int64
	// ReadBlocks counts checksummed blocks read back during the merge.
	ReadBlocks int64
}

// Spiller owns one computation's spill state: a lazily created temp
// directory of run files, the byte accounting against the run's budget,
// and the streaming merge that folds everything back together. Spill may
// be called concurrently from worker goroutines; Merge and Close are
// single-caller (after the workers have joined).
type Spiller struct {
	parent string
	acct   *pstore.ByteAccount

	mu       sync.Mutex
	dir      string // created on first spill
	files    []string
	memRuns  [][]attrset.Set // adopted runs small enough to stay resident
	memBytes int64
	nextID   int
	closed   bool
	stats    Stats
}

// NewSpiller creates a spiller whose run files live in a fresh temp
// directory under parent ("" = the OS temp dir), created on first use.
// Spilled bytes are charged to budget (nil = ungoverned) under the
// "extsort" phase.
func NewSpiller(parent string, budget *guard.Budget) *Spiller {
	if parent == "" {
		parent = os.TempDir()
	}
	return &Spiller{parent: parent, acct: pstore.NewByteAccount("extsort", budget)}
}

// runFileSize is the exact on-disk size of a run of n records.
func runFileSize(n int) int64 {
	blocks := (n + blockSets - 1) / blockSets
	return int64(len(runMagic)) + int64(blocks)*blockHeaderLen + int64(n)*SetBytes
}

// newRunFile allocates the next run-file path, creating the spill
// directory on first use.
func (s *Spiller) newRunFile() (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dir == "" {
		if err := os.MkdirAll(s.parent, 0o755); err != nil {
			return "", fmt.Errorf("extsort: creating spill dir: %w", err)
		}
		dir, err := os.MkdirTemp(s.parent, "depminer-spill-*")
		if err != nil {
			return "", fmt.Errorf("extsort: creating spill dir: %w", err)
		}
		s.dir = dir
	}
	id := s.nextID
	s.nextID++
	return filepath.Join(s.dir, fmt.Sprintf("run-%06d.dmr", id)), nil
}

// Spill writes one sorted deduplicated run to a new run file, charging
// its bytes to the budget first — on a budget overrun nothing is written
// and the caller's in-memory run is untouched, so the partial-result
// contract loses no sets. An empty run is a no-op.
func (s *Spiller) Spill(run []attrset.Set) error {
	if len(run) == 0 {
		return nil
	}
	if err := faultinject.Fire(faultinject.ExtsortFlush); err != nil {
		return err
	}
	size := runFileSize(len(run))
	if err := s.acct.Charge(size); err != nil {
		return err
	}
	path, err := s.newRunFile()
	if err != nil {
		return err
	}
	if err := writeRun(path, run); err != nil {
		os.Remove(path)
		return err
	}
	s.mu.Lock()
	s.files = append(s.files, path)
	s.stats.RunsSpilled++
	s.stats.SpilledSets += int64(len(run))
	s.stats.SpilledBytes += size
	s.mu.Unlock()
	s.acct.Add(size)
	s.acct.SettlePeak()
	return nil
}

// writeRun serialises a sorted run into blocks of framed, checksummed
// little-endian records.
func writeRun(path string, run []attrset.Set) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("extsort: creating run file: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	werr := func() error {
		rw := NewRunWriter(bw)
		for _, set := range run {
			if err := rw.Write(set); err != nil {
				return err
			}
		}
		if err := rw.Close(); err != nil {
			return err
		}
		return bw.Flush()
	}()
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("extsort: writing run file: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("extsort: closing run file: %w", cerr)
	}
	return nil
}

// Runs returns the number of runs registered so far — spilled run files
// plus adopted runs held in memory.
func (s *Spiller) Runs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.files) + len(s.memRuns)
}

// Stats returns a snapshot of the counters.
func (s *Spiller) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close removes the spill directory, drops adopted in-memory runs, and
// releases the resident byte accounting. Safe to call when nothing was
// ever spilled; a second Close is a no-op.
func (s *Spiller) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	dir := s.dir
	released := s.stats.SpilledBytes + s.memBytes
	s.dir, s.files, s.memRuns, s.memBytes = "", nil, nil, 0
	s.mu.Unlock()
	if released > 0 {
		s.acct.Release(released)
	}
	if dir == "" {
		return nil
	}
	return os.RemoveAll(dir)
}

// runReader streams one DMRUN1 byte stream — a spill file or an adopted
// network stream — block by block, verifying each block's checksum,
// holding one decoded block at a time.
type runReader struct {
	src        io.Closer // closed by close(); nil when the caller owns the stream
	br         *bufio.Reader
	buf        []attrset.Set
	idx        int
	payload    []byte
	readBlocks int64
}

// newRunReader wraps any reader positioned at the start of a run stream,
// consuming and verifying the magic. name labels errors.
func newRunReader(src io.Reader, name string) (*runReader, error) {
	r := &runReader{br: bufio.NewReaderSize(src, 1<<16)}
	magic := make([]byte, len(runMagic))
	if _, err := io.ReadFull(r.br, magic); err != nil || string(magic) != string(runMagic) {
		return nil, fmt.Errorf("extsort: %s: bad run magic", name)
	}
	return r, nil
}

func openRun(path string) (*runReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("extsort: opening run file: %w", err)
	}
	r, err := newRunReader(f, filepath.Base(path))
	if err != nil {
		f.Close()
		return nil, err
	}
	r.src = f
	return r, nil
}

// next returns the reader's next record. ok is false at a clean end of
// file; anything else — torn block, checksum mismatch, misaligned
// payload — is an error.
func (r *runReader) next() (set attrset.Set, ok bool, err error) {
	if r.idx >= len(r.buf) {
		if err := r.fill(); err != nil {
			return set, false, err
		}
		if len(r.buf) == 0 {
			return set, false, nil
		}
	}
	set = r.buf[r.idx]
	r.idx++
	return set, true, nil
}

func (r *runReader) fill() error {
	r.buf, r.idx = r.buf[:0], 0
	var hdr [blockHeaderLen]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if err == io.EOF {
			return nil // clean end: the previous block was the last
		}
		return fmt.Errorf("extsort: torn run block header: %w", err)
	}
	if err := faultinject.Fire(faultinject.ExtsortRead); err != nil {
		return err
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:4]))
	if n == 0 || n > maxBlockBytes || n%SetBytes != 0 {
		return fmt.Errorf("extsort: implausible run block length %d", n)
	}
	if cap(r.payload) < n {
		r.payload = make([]byte, n)
	}
	payload := r.payload[:n]
	if _, err := io.ReadFull(r.br, payload); err != nil {
		return fmt.Errorf("extsort: torn run block payload: %w", err)
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return fmt.Errorf("extsort: run block checksum mismatch")
	}
	r.readBlocks++
	if cap(r.buf) < n/SetBytes {
		r.buf = make([]attrset.Set, 0, n/SetBytes)
	}
	for off := 0; off < n; off += SetBytes {
		var set attrset.Set
		for w := 0; w < attrset.Words; w++ {
			set[w] = binary.LittleEndian.Uint64(payload[off+w*8:])
		}
		r.buf = append(r.buf, set)
	}
	return nil
}

func (r *runReader) close() {
	if r.src != nil {
		r.src.Close()
	}
}

// cursor is one merge input: either an in-memory sorted run or an
// on-disk run reader, holding its current front record.
type cursor struct {
	mem []attrset.Set
	idx int
	rd  *runReader
	val attrset.Set
}

// advance loads the cursor's next record, reporting exhaustion.
func (c *cursor) advance() (bool, error) {
	if c.rd != nil {
		v, ok, err := c.rd.next()
		if err != nil || !ok {
			return false, err
		}
		c.val = v
		return true, nil
	}
	if c.idx >= len(c.mem) {
		return false, nil
	}
	c.val = c.mem[c.idx]
	c.idx++
	return true, nil
}

// Merge streams the union of the in-memory runs and every spilled run
// through emit, each distinct set exactly once, in Compare order — the
// k-way external merge. All inputs must be sorted by Compare and
// deduplicated (equal records across runs are fine; they collapse).
// Merge is single-shot: it consumes the disk runs.
func (s *Spiller) Merge(inMem [][]attrset.Set, emit func(attrset.Set) error) error {
	if err := faultinject.Fire(faultinject.ExtsortMerge); err != nil {
		return err
	}
	s.mu.Lock()
	files := append([]string(nil), s.files...)
	memRuns := append([][]attrset.Set(nil), s.memRuns...)
	s.mu.Unlock()

	cursors := make([]*cursor, 0, len(files)+len(memRuns)+len(inMem))
	readers := make([]*runReader, 0, len(files))
	defer func() {
		var blocks int64
		for _, r := range readers {
			blocks += r.readBlocks
			r.close()
		}
		s.mu.Lock()
		s.stats.ReadBlocks += blocks
		s.stats.MergedRuns += int64(len(cursors))
		s.mu.Unlock()
	}()
	for _, path := range files {
		r, err := openRun(path)
		if err != nil {
			return err
		}
		readers = append(readers, r)
		cursors = append(cursors, &cursor{rd: r})
	}
	for _, run := range memRuns {
		if len(run) > 0 {
			cursors = append(cursors, &cursor{mem: run})
		}
	}
	for _, run := range inMem {
		if len(run) > 0 {
			cursors = append(cursors, &cursor{mem: run})
		}
	}

	// Min-heap of cursors keyed by their front record.
	heap := cursors[:0:len(cursors)]
	for _, c := range cursors {
		ok, err := c.advance()
		if err != nil {
			return err
		}
		if ok {
			heap = append(heap, c)
			up(heap, len(heap)-1)
		}
	}
	var last attrset.Set
	have := false
	for len(heap) > 0 {
		c := heap[0]
		v := c.val
		ok, err := c.advance()
		if err != nil {
			return err
		}
		if ok {
			down(heap, 0)
		} else {
			n := len(heap) - 1
			heap[0] = heap[n]
			heap = heap[:n]
			if n > 0 {
				down(heap, 0)
			}
		}
		if have && Compare(v, last) == 0 {
			continue
		}
		if err := emit(v); err != nil {
			return err
		}
		last, have = v, true
	}
	return nil
}

// up and down are the standard binary-heap sifts over cursor fronts.
func up(h []*cursor, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if Compare(h[i].val, h[p].val) >= 0 {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func down(h []*cursor, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && Compare(h[l].val, h[m].val) < 0 {
			m = l
		}
		if r < len(h) && Compare(h[r].val, h[m].val) < 0 {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}
