// Run streaming: the DMRUN1 framing generalised from spill files to
// arbitrary byte streams. A shard worker serialises its sorted agree-set
// run straight into an HTTP response through RunWriter, and the
// coordinator adopts the stream into its spiller with AdoptRun — after
// which the run is indistinguishable from one it spilled itself and joins
// the same k-way Merge. Every adopted byte is CRC-verified and
// order-checked before it can influence a cover, and adoption charges the
// run's guard.Budget exactly like a local spill, so a fleet cannot
// smuggle bytes past the coordinator's governance.
package extsort

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/attrset"
	"repro/internal/faultinject"
)

// RunWriter frames set records into w using the run layout (magic, then
// checksummed blocks of whole little-endian records). Records must arrive
// sorted by Compare and deduplicated — the writer does not re-sort; it is
// the streaming half of what writeRun does for in-memory runs. Close
// flushes the final partial block; a run with zero records still writes
// the magic, so an empty stream is well-formed rather than truncated.
type RunWriter struct {
	w       io.Writer
	payload []byte
	started bool
	sets    int64
	err     error
}

// NewRunWriter wraps w. The caller owns any buffering/flushing of w
// itself (e.g. bufio.Writer or http.Flusher). The block buffer grows
// with the run, so a small run (the common shard stream) never pays
// for a full block's worth of memory.
func NewRunWriter(w io.Writer) *RunWriter {
	return &RunWriter{w: w}
}

// Started reports whether any bytes have reached the underlying writer —
// HTTP handlers use it to choose between a clean error response (nothing
// sent yet) and aborting a stream already in flight.
func (rw *RunWriter) Started() bool { return rw.started }

// Sets returns the number of records written so far.
func (rw *RunWriter) Sets() int64 { return rw.sets }

func (rw *RunWriter) fail(err error) error {
	rw.err = fmt.Errorf("extsort: writing run stream: %w", err)
	return rw.err
}

func (rw *RunWriter) writeMagic() error {
	rw.started = true
	if _, err := rw.w.Write(runMagic); err != nil {
		return rw.fail(err)
	}
	return nil
}

// Write appends one record, flushing a framed block every blockSets
// records. After an error the writer is poisoned and returns it.
func (rw *RunWriter) Write(set attrset.Set) error {
	if rw.err != nil {
		return rw.err
	}
	if !rw.started {
		if err := rw.writeMagic(); err != nil {
			return err
		}
	}
	for w := 0; w < attrset.Words; w++ {
		rw.payload = binary.LittleEndian.AppendUint64(rw.payload, set[w])
	}
	rw.sets++
	if len(rw.payload) >= maxBlockBytes {
		return rw.flush()
	}
	return nil
}

func (rw *RunWriter) flush() error {
	if len(rw.payload) == 0 {
		return nil
	}
	var hdr [blockHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(rw.payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(rw.payload, castagnoli))
	if _, err := rw.w.Write(hdr[:]); err != nil {
		return rw.fail(err)
	}
	if _, err := rw.w.Write(rw.payload); err != nil {
		return rw.fail(err)
	}
	rw.payload = rw.payload[:0]
	return nil
}

// Close flushes the final partial block (and the magic, if no record was
// ever written). It does not close the underlying writer.
func (rw *RunWriter) Close() error {
	if rw.err != nil {
		return rw.err
	}
	if !rw.started {
		if err := rw.writeMagic(); err != nil {
			return err
		}
	}
	return rw.flush()
}

// PendingRun is an adopted run awaiting end-of-stream verification: its
// records are fully checked (magic, per-block CRC32C, strict Compare
// order) and held either in memory or in a run file, but it joins the
// spiller's merge set only on Commit. Discard drops it instead — used
// when an out-of-band attestation (the worker's end-of-stream set-count
// trailer) disagrees with what arrived. Exactly one of Commit/Discard
// must be called, before the spiller is closed.
type PendingRun struct {
	sp   *Spiller
	path string        // run file; "" when the run is memory-resident
	mem  []attrset.Set // memory-resident records; nil when on disk
	sets int64
	size int64
	done bool
}

// Sets returns the number of records in the adopted run.
func (p *PendingRun) Sets() int64 { return p.sets }

// Commit adds the run to the spiller's merge set. An empty run is
// dropped (it could contribute nothing to the merge).
func (p *PendingRun) Commit() {
	if p.done {
		return
	}
	p.done = true
	if p.sets == 0 {
		if p.path != "" {
			os.Remove(p.path)
		}
		return
	}
	s := p.sp
	s.mu.Lock()
	if p.path == "" {
		s.memRuns = append(s.memRuns, p.mem)
		s.memBytes += p.size
	} else {
		s.files = append(s.files, p.path)
		s.stats.RunsSpilled++
		s.stats.SpilledSets += p.sets
		s.stats.SpilledBytes += p.size
	}
	s.mu.Unlock()
	s.acct.Add(p.size)
	s.acct.SettlePeak()
}

// Discard drops the run — the file is removed, the records are
// released. The budget charge already paid for the adopted bytes is not
// refunded — guard charges are monotone — but the resident accounting
// never saw the run.
func (p *PendingRun) Discard() {
	if p.done {
		return
	}
	p.done = true
	p.mem = nil
	if p.path != "" {
		os.Remove(p.path)
	}
}

// AdoptRun verifies an externally produced run (a worker's HTTP
// response body) into this spiller. Every block is CRC-verified and
// records are required to be strictly increasing in Compare order — a
// reordered, duplicated, truncated, or bit-flipped stream is rejected
// with an error and leaves nothing behind. Bytes are charged to the
// budget as they are verified, before they are retained, mirroring
// Spill's charge-before-write contract — the charge is the run's
// framed wire size either way, so governance cannot be dodged by
// staying resident.
//
// memLimit is the same knob as the agree phase's spill threshold: 0
// keeps the whole run in memory (it joins the merge like a local
// in-memory run, no disk round trip); a positive limit streams the run
// to a run file once its decoded records exceed that many bytes. The
// caller still owns (and closes) r.
func (s *Spiller) AdoptRun(r io.Reader, memLimit int64) (*PendingRun, error) {
	if err := faultinject.Fire(faultinject.ExtsortFlush); err != nil {
		return nil, err
	}
	rr, err := newRunReader(r, "adopted run")
	if err != nil {
		return nil, err
	}
	var charged int64
	charge := func(n int64) error {
		if err := s.acct.Charge(n); err != nil {
			return err
		}
		charged += n
		return nil
	}
	var (
		mem  []attrset.Set
		sets int64
		last attrset.Set
		path string
		f    *os.File
		rw   *RunWriter
	)
	// spill migrates the run to disk: everything accumulated so far is
	// replayed through a RunWriter and the stream continues file-bound.
	spill := func() error {
		p, err := s.newRunFile()
		if err != nil {
			return err
		}
		file, err := os.Create(p)
		if err != nil {
			return fmt.Errorf("extsort: creating adopted run file: %w", err)
		}
		path, f = p, file
		rw = NewRunWriter(f)
		for _, set := range mem {
			if err := rw.Write(set); err != nil {
				return err
			}
		}
		mem = nil
		return nil
	}
	adoptErr := func() error {
		if err := charge(int64(len(runMagic))); err != nil {
			return err
		}
		for {
			set, ok, err := rr.next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			if sets > 0 && Compare(last, set) >= 0 {
				return fmt.Errorf("extsort: adopted run not strictly sorted at record %d", sets)
			}
			last = set
			need := int64(SetBytes)
			if sets%blockSets == 0 {
				need += blockHeaderLen
			}
			if err := charge(need); err != nil {
				return err
			}
			sets++
			if rw == nil && memLimit > 0 && int64(len(mem)+1)*SetBytes > memLimit {
				if err := spill(); err != nil {
					return err
				}
			}
			if rw != nil {
				if err := rw.Write(set); err != nil {
					return err
				}
			} else {
				mem = append(mem, set)
			}
		}
		if rw != nil {
			return rw.Close()
		}
		return nil
	}()
	if f != nil {
		if cerr := f.Close(); adoptErr == nil && cerr != nil {
			adoptErr = fmt.Errorf("extsort: closing adopted run file: %w", cerr)
		}
	}
	if adoptErr != nil {
		if path != "" {
			os.Remove(path)
		}
		return nil, adoptErr
	}
	s.mu.Lock()
	s.stats.ReadBlocks += rr.readBlocks
	s.mu.Unlock()
	return &PendingRun{sp: s, path: path, mem: mem, sets: sets, size: charged}, nil
}
