package hypergraph

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/attrset"
)

func sets(specs ...string) attrset.Family {
	out := make(attrset.Family, 0, len(specs))
	for _, s := range specs {
		set, ok := attrset.Parse(s)
		if !ok {
			panic("bad spec " + s)
		}
		out = append(out, set)
	}
	return out
}

func mustNew(t *testing.T, specs ...string) *Hypergraph {
	t.Helper()
	h, err := New(sets(specs...))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func tr(t *testing.T, h *Hypergraph) attrset.Family {
	t.Helper()
	out, err := h.MinimalTransversals(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// Paper Example 10: Tr(cmax(dep(r),A)) with cmax = {AC, ABD} is
// {A, BC, CD}.
func TestPaperExampleAttributeA(t *testing.T) {
	h := mustNew(t, "AC", "ABD")
	got := tr(t, h)
	if !got.Equal(sets("A", "BC", "CD")) {
		t.Errorf("Tr = %v, want {A, BC, CD}", got.Strings())
	}
}

// The full lhs table of Example 10 for all five attributes.
func TestPaperExampleAllAttributes(t *testing.T) {
	cases := []struct {
		cmax []string
		want []string
	}{
		{[]string{"AC", "ABD"}, []string{"A", "BC", "CD"}},
		{[]string{"BCDE", "ABD"}, []string{"AC", "AE", "B", "D"}},
		{[]string{"BCDE", "AC"}, []string{"AB", "AD", "AE", "C"}},
		{[]string{"BCDE", "ABD"}, []string{"AC", "AE", "B", "D"}},
		{[]string{"BCDE"}, []string{"B", "C", "D", "E"}},
	}
	for i, c := range cases {
		h := mustNew(t, c.cmax...)
		got := tr(t, h)
		if !got.Equal(sets(c.want...)) {
			t.Errorf("attr %c: Tr = %v, want %v", 'A'+i, got.Strings(), c.want)
		}
	}
}

func TestNewRejectsNonSimple(t *testing.T) {
	if _, err := New(sets("A", "AB")); err == nil {
		t.Error("nested edges accepted")
	}
	if _, err := New(attrset.Family{attrset.Empty()}); err == nil {
		t.Error("empty edge accepted")
	}
	// Duplicates are fine (collapsed).
	h, err := New(sets("AB", "AB"))
	if err != nil || h.NumEdges() != 1 {
		t.Errorf("duplicate edges: %v, %d edges", err, h.NumEdges())
	}
}

func TestSimplify(t *testing.T) {
	h := Simplify(sets("AB", "A", "ABC", "", "CD"))
	if !h.Edges().Equal(sets("A", "CD")) {
		t.Errorf("Simplify = %v", h.Edges().Strings())
	}
	// Transversals preserved w.r.t. the original edge family (minus ∅
	// which no set can hit — Simplify drops it deliberately).
	orig := sets("AB", "A", "ABC", "CD")
	for _, tv := range tr(t, h) {
		for _, e := range orig {
			if !tv.Intersects(e) {
				t.Errorf("transversal %v misses original edge %v", tv, e)
			}
		}
	}
}

func TestEdgelessHypergraph(t *testing.T) {
	h := Simplify(nil)
	got := tr(t, h)
	if len(got) != 1 || !got[0].IsEmpty() {
		t.Errorf("Tr(edgeless) = %v, want {∅}", got.Strings())
	}
	if !h.IsTransversal(attrset.Empty()) {
		t.Error("∅ must be a transversal of the edgeless hypergraph")
	}
	th, err := h.Transversal(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if th.NumEdges() != 0 {
		t.Errorf("Transversal(edgeless) has %d edges", th.NumEdges())
	}
}

func TestSingleEdge(t *testing.T) {
	h := mustNew(t, "BCE")
	got := tr(t, h)
	if !got.Equal(sets("B", "C", "E")) {
		t.Errorf("Tr = %v", got.Strings())
	}
}

func TestDisjointEdgesCrossProduct(t *testing.T) {
	// Tr({AB, CD}) = {AC, AD, BC, BD}.
	h := mustNew(t, "AB", "CD")
	got := tr(t, h)
	if !got.Equal(sets("AC", "AD", "BC", "BD")) {
		t.Errorf("Tr = %v", got.Strings())
	}
}

func TestIsMinimalTransversal(t *testing.T) {
	h := mustNew(t, "AC", "ABD")
	if !h.IsMinimalTransversal(attrset.New(0)) { // A
		t.Error("A should be a minimal transversal")
	}
	if h.IsMinimalTransversal(attrset.New(0, 1)) { // AB ⊃ A
		t.Error("AB is not minimal")
	}
	if h.IsMinimalTransversal(attrset.New(1)) { // B misses AC
		t.Error("B is not a transversal")
	}
	if !h.IsMinimalTransversal(attrset.New(1, 2)) { // BC
		t.Error("BC should be minimal")
	}
}

func TestVertices(t *testing.T) {
	h := mustNew(t, "AC", "ABD")
	if h.Vertices() != attrset.New(0, 1, 2, 3) {
		t.Errorf("Vertices = %v", h.Vertices())
	}
}

// bruteTransversals enumerates all subsets of the vertex universe and
// keeps the minimal transversals — ground truth for small hypergraphs.
func bruteTransversals(h *Hypergraph, n int) attrset.Family {
	var all attrset.Family
	for bits := 0; bits < 1<<n; bits++ {
		var s attrset.Set
		for b := 0; b < n; b++ {
			if bits&(1<<b) != 0 {
				s.Add(b)
			}
		}
		if h.IsTransversal(s) {
			all = append(all, s)
		}
	}
	return all.Minimal()
}

func TestPropertyAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 150; iter++ {
		n := 1 + rng.Intn(7)
		numEdges := 1 + rng.Intn(5)
		var raw attrset.Family
		for e := 0; e < numEdges; e++ {
			var s attrset.Set
			for b := 0; b < n; b++ {
				if rng.Intn(3) == 0 {
					s.Add(b)
				}
			}
			if !s.IsEmpty() {
				raw = append(raw, s)
			}
		}
		h := Simplify(raw)
		got := tr(t, h)
		want := bruteTransversals(h, n)
		if h.NumEdges() == 0 {
			want = attrset.Family{attrset.Empty()}
		}
		if !got.Equal(want) {
			t.Fatalf("iter %d: Tr = %v, want %v (edges %v)",
				iter, got.Strings(), want.Strings(), h.Edges().Strings())
		}
		// Every result is a minimal transversal.
		for _, tv := range got {
			if h.NumEdges() > 0 && !h.IsMinimalTransversal(tv) {
				t.Fatalf("non-minimal transversal %v", tv)
			}
		}
	}
}

// TestNihilpotence: Tr(Tr(H)) = H for simple hypergraphs (Berge), the
// property the TANE→Armstrong bridge relies on (paper §5.1).
func TestNihilpotence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 100; iter++ {
		n := 1 + rng.Intn(6)
		var raw attrset.Family
		for e := 0; e < 1+rng.Intn(4); e++ {
			var s attrset.Set
			for b := 0; b < n; b++ {
				if rng.Intn(2) == 0 {
					s.Add(b)
				}
			}
			if !s.IsEmpty() {
				raw = append(raw, s)
			}
		}
		if len(raw) == 0 {
			continue
		}
		h := Simplify(raw)
		if h.NumEdges() == 0 {
			continue
		}
		t1, err := h.Transversal(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		t2, err := t1.Transversal(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !t2.Edges().Equal(h.Edges()) {
			t.Fatalf("Tr(Tr(H)) = %v, want %v", t2.Edges().Strings(), h.Edges().Strings())
		}
	}
}

func TestCancellation(t *testing.T) {
	h := mustNew(t, "AB", "CD", "EF", "GH")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := h.MinimalTransversals(ctx); err == nil {
		t.Error("expected cancellation error")
	}
}
