package hypergraph

import (
	"context"
	"fmt"

	"repro/internal/attrset"
)

// MinimalTransversalsBerge computes Tr(H) by Berge multiplication — the
// classical incremental algorithm the paper's levelwise search (Algorithm
// 5) replaces: process edges one at a time, maintaining the minimal
// transversals of the prefix hypergraph; a new edge E expands each
// current transversal T to {T ∪ {v} | v ∈ E} unless T already hits E,
// with ⊆-minimisation after each step.
//
// It serves as an independent oracle for the levelwise implementation and
// as the ablation baseline of DESIGN.md §5 (item 4): Berge multiplication
// explodes on intermediate results for some inputs where the levelwise
// search stays narrow, and vice versa.
func (h *Hypergraph) MinimalTransversalsBerge(ctx context.Context) (attrset.Family, error) {
	if len(h.edges) == 0 {
		return attrset.Family{attrset.Empty()}, nil
	}
	current := attrset.Family{attrset.Empty()}
	for _, edge := range h.edges {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("hypergraph: berge multiplication cancelled: %w", err)
		}
		next := make(attrset.Family, 0, len(current))
		for _, t := range current {
			if t.Intersects(edge) {
				next = append(next, t)
				continue
			}
			edge.ForEach(func(v attrset.Attr) {
				next = append(next, t.With(v))
			})
		}
		current = minimizeFamily(next)
	}
	current.Sort()
	return current, nil
}

// minimizeFamily keeps the ⊆-minimal sets, with a size-bucketed sweep
// (smaller sets can only be dominated by even smaller ones, so testing
// against already-accepted sets suffices after sorting by cardinality).
func minimizeFamily(f attrset.Family) attrset.Family {
	return f.Minimal()
}
