// Package hypergraph implements simple hypergraphs over attribute sets and
// the levelwise minimal-transversal algorithm of the paper (§3.3,
// Algorithm 5 LEFT_HAND_SIDE), with candidate generation adapted from
// Apriori-gen (Agrawal & Srikant 1994).
//
// A simple hypergraph H over vertex set R is a family of non-empty,
// pairwise ⊆-incomparable edges. A transversal T intersects every edge;
// Tr(H) is the family of minimal transversals. The connection to FD
// discovery: Tr(cmax(dep(r),A)) = lhs(dep(r),A), and by the nihilpotence
// property Tr(Tr(H)) = H for simple hypergraphs (Berge), which the
// TANE→Armstrong bridge uses in the opposite direction.
//
// Conventions for degenerate cases (consistent with the set definitions):
//   - H with no edges: every set is a transversal, so Tr(H) = {∅}.
//   - H containing the empty edge is not simple and is rejected by New.
package hypergraph

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/attrset"
	"repro/internal/faultinject"
	"repro/internal/guard"
)

// ErrNotSimple is returned when edges do not form a simple hypergraph.
var ErrNotSimple = errors.New("hypergraph: edges must be non-empty and ⊆-incomparable")

// Hypergraph is a simple hypergraph: a set of ⊆-incomparable non-empty
// edges over attribute vertices.
type Hypergraph struct {
	edges attrset.Family
}

// New builds a simple hypergraph from the given edges, after deduplication.
// It returns ErrNotSimple if any edge is empty or contained in another.
func New(edges attrset.Family) (*Hypergraph, error) {
	d := edges.Dedup()
	for i, e := range d {
		if e.IsEmpty() {
			return nil, fmt.Errorf("%w: empty edge", ErrNotSimple)
		}
		for j, f := range d {
			if i != j && e.SubsetOf(f) {
				return nil, fmt.Errorf("%w: %v ⊆ %v", ErrNotSimple, e, f)
			}
		}
	}
	d.Sort()
	return &Hypergraph{edges: d}, nil
}

// Simplify builds a simple hypergraph from arbitrary edges by dropping
// empty edges and non-minimal edges (keeping Min⊆). Transversals are
// preserved: a transversal of the minimal edges hits every superset edge
// too. This is the standard preparation when edges come from raw data.
func Simplify(edges attrset.Family) *Hypergraph {
	var nonEmpty attrset.Family
	for _, e := range edges {
		if !e.IsEmpty() {
			nonEmpty = append(nonEmpty, e)
		}
	}
	return &Hypergraph{edges: nonEmpty.Minimal()}
}

// Edges returns the edges in canonical order. The caller must not modify
// the returned family.
func (h *Hypergraph) Edges() attrset.Family { return h.edges }

// NumEdges returns the number of edges.
func (h *Hypergraph) NumEdges() int { return len(h.edges) }

// Vertices returns the union of all edges.
func (h *Hypergraph) Vertices() attrset.Set {
	var v attrset.Set
	for _, e := range h.edges {
		v = v.Union(e)
	}
	return v
}

// IsTransversal reports whether t intersects every edge.
func (h *Hypergraph) IsTransversal(t attrset.Set) bool {
	for _, e := range h.edges {
		if !t.Intersects(e) {
			return false
		}
	}
	return true
}

// IsMinimalTransversal reports whether t is a transversal and no proper
// subset of t is one (equivalently, removing any single vertex of t breaks
// some edge).
func (h *Hypergraph) IsMinimalTransversal(t attrset.Set) bool {
	if !h.IsTransversal(t) {
		return false
	}
	minimal := true
	t.ForEach(func(a attrset.Attr) {
		if h.IsTransversal(t.Without(a)) {
			minimal = false
		}
	})
	return minimal
}

// MinimalTransversals computes Tr(H) with the paper's levelwise search:
// level i holds the candidate i-sets; candidates that are transversals are
// emitted and removed; the next level is generated Apriori-style from the
// surviving non-transversals (join on the first i−1 elements, then prune
// candidates having a non-surviving i-subset). Context cancellation aborts
// between levels and returns the error.
//
// Each candidate carries a bitmap of the edges it already hits; the join
// ORs the parents' bitmaps (the candidate is exactly their union), so the
// transversal test is a word-wise comparison instead of an edge scan.
func (h *Hypergraph) MinimalTransversals(ctx context.Context) (attrset.Family, error) {
	return h.MinimalTransversalsGoverned(ctx, nil)
}

// MinimalTransversalsGoverned is MinimalTransversals under a resource
// budget: each candidate level charges its width — the frontier size,
// which is exactly the search's memory footprint — against the budget,
// and passes a deadline checkpoint, so a combinatorial blow-up of the
// levelwise search is stopped within one level of crossing the limit.
func (h *Hypergraph) MinimalTransversalsGoverned(ctx context.Context, b *guard.Budget) (attrset.Family, error) {
	if len(h.edges) == 0 {
		return attrset.Family{attrset.Empty()}, nil
	}
	ne := len(h.edges)
	words := (ne + 63) / 64
	full := make([]uint64, words)
	for e := 0; e < ne; e++ {
		full[e>>6] |= 1 << uint(e&63)
	}
	// vertexCover[a] = bitmap of edges containing vertex a.
	vertexCover := make(map[attrset.Attr][]uint64)
	for e, edge := range h.edges {
		edge.ForEach(func(a attrset.Attr) {
			vc := vertexCover[a]
			if vc == nil {
				vc = make([]uint64, words)
				vertexCover[a] = vc
			}
			vc[e>>6] |= 1 << uint(e&63)
		})
	}

	type cand struct {
		set   attrset.Set
		cover []uint64
	}
	covers := func(c []uint64) bool {
		for i := range c {
			if c[i] != full[i] {
				return false
			}
		}
		return true
	}

	// L1: the vertices appearing in edges, as singletons.
	var level []cand
	h.Vertices().ForEach(func(a attrset.Attr) {
		level = append(level, cand{set: attrset.Single(a), cover: vertexCover[a]})
	})

	var out attrset.Family
	surviving := make(map[attrset.Set]struct{})
	for len(level) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("hypergraph: transversal search cancelled: %w", err)
		}
		if err := faultinject.Fire(faultinject.HypergraphLevel); err != nil {
			return nil, err
		}
		if err := b.Charge("lhs", len(level)); err != nil {
			return nil, err
		}
		var survivors []cand
		clear(surviving)
		for _, c := range level {
			if covers(c.cover) {
				out = append(out, c.set)
			} else {
				survivors = append(survivors, c)
				surviving[c.set] = struct{}{}
			}
		}
		// Apriori join: group survivors by prefix (set minus its largest
		// element); a joined candidate is prefix + two larger vertices,
		// so each candidate arises from exactly one (prefix, pair).
		byPrefix := make(map[attrset.Set][]cand)
		for _, c := range survivors {
			last := c.set.Max()
			p := c.set.Without(last)
			byPrefix[p] = append(byPrefix[p], c)
		}
		level = level[:0]
		for _, members := range byPrefix {
			for i := 0; i < len(members); i++ {
				for j := i + 1; j < len(members); j++ {
					u := members[i].set.Union(members[j].set)
					if !apriori(u, surviving) {
						continue
					}
					cover := make([]uint64, words)
					for w := range cover {
						cover[w] = members[i].cover[w] | members[j].cover[w]
					}
					level = append(level, cand{set: u, cover: cover})
				}
			}
		}
	}
	out.Sort()
	return out, nil
}

// apriori reports whether every (|cand|-1)-subset of cand is a surviving
// non-transversal. Any subset that was emitted as a minimal transversal,
// or never generated, disqualifies cand: its supersets cannot be minimal
// transversals (or were already pruned).
func apriori(cand attrset.Set, surviving map[attrset.Set]struct{}) bool {
	ok := true
	cand.ForEach(func(a attrset.Attr) {
		if _, in := surviving[cand.Without(a)]; !in {
			ok = false
		}
	})
	return ok
}

// Transversal computes Tr(H) and verifies the result is itself simple,
// returning it as a hypergraph. Useful with the nihilpotence property
// Tr(Tr(H)) = H.
func (h *Hypergraph) Transversal(ctx context.Context) (*Hypergraph, error) {
	tr, err := h.MinimalTransversals(ctx)
	if err != nil {
		return nil, err
	}
	if len(tr) == 1 && tr[0].IsEmpty() {
		// Tr of the edgeless hypergraph; {∅} is not a simple hypergraph,
		// and Tr({∅}-like input) cannot occur since New rejects it. The
		// edgeless hypergraph is its own fixed point's dual: Tr(∅) = {∅}
		// and Tr of that is undefined — return the edgeless hypergraph.
		return &Hypergraph{}, nil
	}
	return New(tr)
}
