// Package hypergraph implements simple hypergraphs over attribute sets and
// the levelwise minimal-transversal algorithm of the paper (§3.3,
// Algorithm 5 LEFT_HAND_SIDE), with candidate generation adapted from
// Apriori-gen (Agrawal & Srikant 1994).
//
// A simple hypergraph H over vertex set R is a family of non-empty,
// pairwise ⊆-incomparable edges. A transversal T intersects every edge;
// Tr(H) is the family of minimal transversals. The connection to FD
// discovery: Tr(cmax(dep(r),A)) = lhs(dep(r),A), and by the nihilpotence
// property Tr(Tr(H)) = H for simple hypergraphs (Berge), which the
// TANE→Armstrong bridge uses in the opposite direction.
//
// Conventions for degenerate cases (consistent with the set definitions):
//   - H with no edges: every set is a transversal, so Tr(H) = {∅}.
//   - H containing the empty edge is not simple and is rejected by New.
package hypergraph

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/attrset"
	"repro/internal/faultinject"
	"repro/internal/guard"
)

// ErrNotSimple is returned when edges do not form a simple hypergraph.
var ErrNotSimple = errors.New("hypergraph: edges must be non-empty and ⊆-incomparable")

// Hypergraph is a simple hypergraph: a set of ⊆-incomparable non-empty
// edges over attribute vertices.
type Hypergraph struct {
	edges attrset.Family
}

// New builds a simple hypergraph from the given edges, after deduplication.
// It returns ErrNotSimple if any edge is empty or contained in another.
func New(edges attrset.Family) (*Hypergraph, error) {
	d := edges.Dedup()
	for i, e := range d {
		if e.IsEmpty() {
			return nil, fmt.Errorf("%w: empty edge", ErrNotSimple)
		}
		for j, f := range d {
			if i != j && e.SubsetOf(f) {
				return nil, fmt.Errorf("%w: %v ⊆ %v", ErrNotSimple, e, f)
			}
		}
	}
	d.Sort()
	return &Hypergraph{edges: d}, nil
}

// Simplify builds a simple hypergraph from arbitrary edges by dropping
// empty edges and non-minimal edges (keeping Min⊆). Transversals are
// preserved: a transversal of the minimal edges hits every superset edge
// too. This is the standard preparation when edges come from raw data.
func Simplify(edges attrset.Family) *Hypergraph {
	var nonEmpty attrset.Family
	for _, e := range edges {
		if !e.IsEmpty() {
			nonEmpty = append(nonEmpty, e)
		}
	}
	return &Hypergraph{edges: nonEmpty.Minimal()}
}

// Edges returns the edges in canonical order. The caller must not modify
// the returned family.
func (h *Hypergraph) Edges() attrset.Family { return h.edges }

// NumEdges returns the number of edges.
func (h *Hypergraph) NumEdges() int { return len(h.edges) }

// Vertices returns the union of all edges.
func (h *Hypergraph) Vertices() attrset.Set {
	var v attrset.Set
	for _, e := range h.edges {
		v = v.Union(e)
	}
	return v
}

// IsTransversal reports whether t intersects every edge.
func (h *Hypergraph) IsTransversal(t attrset.Set) bool {
	for _, e := range h.edges {
		if !t.Intersects(e) {
			return false
		}
	}
	return true
}

// IsMinimalTransversal reports whether t is a transversal and no proper
// subset of t is one (equivalently, removing any single vertex of t breaks
// some edge).
func (h *Hypergraph) IsMinimalTransversal(t attrset.Set) bool {
	if !h.IsTransversal(t) {
		return false
	}
	minimal := true
	t.ForEach(func(a attrset.Attr) {
		if h.IsTransversal(t.Without(a)) {
			minimal = false
		}
	})
	return minimal
}

// MinimalTransversals computes Tr(H) with the paper's levelwise search:
// level i holds the candidate i-sets; candidates that are transversals are
// emitted and removed; the next level is generated Apriori-style from the
// surviving non-transversals (join on the first i−1 elements, then prune
// candidates having a non-surviving i-subset). Context cancellation aborts
// between levels and returns the error.
//
// Each candidate carries a bitmap of the edges it already hits; the join
// ORs the parents' bitmaps (the candidate is exactly their union), so the
// transversal test is a word-wise comparison instead of an edge scan.
func (h *Hypergraph) MinimalTransversals(ctx context.Context) (attrset.Family, error) {
	return h.MinimalTransversalsGoverned(ctx, nil)
}

// MinimalTransversalsGoverned is MinimalTransversals under a resource
// budget: each candidate level charges its width — the frontier size,
// which is exactly the search's memory footprint — against the budget,
// and passes a deadline checkpoint, so a combinatorial blow-up of the
// levelwise search is stopped within one level of crossing the limit.
//
// The search keeps no hash maps: a level is a lexicographically sorted
// candidate slice (the Apriori join emits candidates already in that
// order, so prefix groups are contiguous runs and the subset test is a
// binary search), and the per-candidate edge-cover bitmaps live in one
// arena per level instead of one allocation per candidate. Set operations
// are bounded by the hypergraph's active word count — the number of
// attrset words its vertices actually occupy — so a 10-attribute schema
// pays for 64 bits per operation, not attrset.MaxAttrs.
func (h *Hypergraph) MinimalTransversalsGoverned(ctx context.Context, b *guard.Budget) (attrset.Family, error) {
	if len(h.edges) == 0 {
		return attrset.Family{attrset.Empty()}, nil
	}
	ne := len(h.edges)
	words := (ne + 63) / 64
	full := make([]uint64, words)
	for e := 0; e < ne; e++ {
		full[e>>6] |= 1 << uint(e&63)
	}
	verts := h.Vertices()
	// aw is the active attrset word count: trailing all-zero words of any
	// candidate set are skipped by every union/compare below.
	aw := verts.Max()>>6 + 1
	// vcArena[a*words:(a+1)*words] = bitmap of edges containing vertex a.
	vcArena := make([]uint64, (verts.Max()+1)*words)
	for e, edge := range h.edges {
		edge.ForEach(func(a attrset.Attr) {
			vcArena[a*words+e>>6] |= 1 << uint(e&63)
		})
	}
	covers := func(c []uint64) bool {
		for i, w := range full {
			if c[i] != w {
				return false
			}
		}
		return true
	}

	// L1: the vertices appearing in edges, as singletons — ascending
	// vertex order is lexicographic order for singletons.
	var cands []attrset.Set
	arena := make([]uint64, 0, verts.Len()*words)
	verts.ForEach(func(a attrset.Attr) {
		cands = append(cands, attrset.Single(a))
		arena = append(arena, vcArena[a*words:(a+1)*words]...)
	})

	var out attrset.Family
	var nextCands []attrset.Set
	var nextArena []uint64
	for len(cands) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("hypergraph: transversal search cancelled: %w", err)
		}
		if err := faultinject.Fire(faultinject.HypergraphLevel); err != nil {
			return nil, err
		}
		if err := b.Charge("lhs", len(cands)); err != nil {
			return nil, err
		}
		// Emit transversals; compact the surviving non-transversals (and
		// their covers) to the front in place, preserving sorted order.
		keep := 0
		for i, s := range cands {
			cover := arena[i*words : (i+1)*words]
			if covers(cover) {
				out = append(out, s)
				continue
			}
			cands[keep] = s
			copy(arena[keep*words:(keep+1)*words], cover)
			keep++
		}
		cands = cands[:keep]
		// Apriori join over contiguous prefix runs: survivors sharing all
		// but their largest vertex are adjacent in lexicographic order,
		// and each joined candidate arises from exactly one (prefix,
		// pair), emitted in lexicographic order again — so the next level
		// is sorted and duplicate-free by construction.
		nextCands = nextCands[:0]
		nextArena = nextArena[:0]
		for lo := 0; lo < keep; {
			prefix := cands[lo].Without(cands[lo].Max())
			hi := lo + 1
			for hi < keep && cands[hi].Without(cands[hi].Max()) == prefix {
				hi++
			}
			for i := lo; i < hi; i++ {
				for j := i + 1; j < hi; j++ {
					u := unionW(cands[i], cands[j], aw)
					if !apriori(u, cands, aw) {
						continue
					}
					nextCands = append(nextCands, u)
					ci := arena[i*words : (i+1)*words]
					cj := arena[j*words : (j+1)*words]
					for w := 0; w < words; w++ {
						nextArena = append(nextArena, ci[w]|cj[w])
					}
				}
			}
			lo = hi
		}
		cands, nextCands = nextCands, cands
		arena, nextArena = nextArena, arena
	}
	out.Sort()
	return out, nil
}

// unionW returns a ∪ b touching only the first aw words; the rest are
// zero for every set in a transversal search over aw active words.
func unionW(a, b attrset.Set, aw int) attrset.Set {
	var u attrset.Set
	for w := 0; w < aw; w++ {
		u[w] = a[w] | b[w]
	}
	return u
}

// lexCmpW orders equal-cardinality sets lexicographically by element
// sequence, touching only the first aw words: the set containing the
// smallest element of the symmetric difference sorts first. (For sets of
// the same size this coincides with attrset.CompareLex; proper-prefix
// cases cannot arise.)
func lexCmpW(a, b attrset.Set, aw int) int {
	for w := 0; w < aw; w++ {
		if d := a[w] ^ b[w]; d != 0 {
			if a[w]&(d&-d) != 0 {
				return -1
			}
			return 1
		}
	}
	return 0
}

// apriori reports whether every (|cand|-1)-subset of cand is a surviving
// non-transversal, by binary search in the sorted survivor slice. Any
// subset that was emitted as a minimal transversal, or never generated,
// disqualifies cand: its supersets cannot be minimal transversals (or
// were already pruned).
func apriori(cand attrset.Set, surviving []attrset.Set, aw int) bool {
	for a := cand.Min(); a >= 0; a = cand.Next(a) {
		sub := cand.Without(a)
		lo, hi := 0, len(surviving)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if lexCmpW(surviving[mid], sub, aw) < 0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == len(surviving) || surviving[lo] != sub {
			return false
		}
	}
	return true
}

// Transversal computes Tr(H) and verifies the result is itself simple,
// returning it as a hypergraph. Useful with the nihilpotence property
// Tr(Tr(H)) = H.
func (h *Hypergraph) Transversal(ctx context.Context) (*Hypergraph, error) {
	tr, err := h.MinimalTransversals(ctx)
	if err != nil {
		return nil, err
	}
	if len(tr) == 1 && tr[0].IsEmpty() {
		// Tr of the edgeless hypergraph; {∅} is not a simple hypergraph,
		// and Tr({∅}-like input) cannot occur since New rejects it. The
		// edgeless hypergraph is its own fixed point's dual: Tr(∅) = {∅}
		// and Tr of that is undefined — return the edgeless hypergraph.
		return &Hypergraph{}, nil
	}
	return New(tr)
}
