package hypergraph

import (
	"context"

	"repro/internal/attrset"
	"repro/internal/guard"
	"repro/internal/pool"
)

// TransversalsAll computes the minimal transversals of every hypergraph
// in hs concurrently — one task per hypergraph, distributed over a pool
// of workers (0 = runtime.GOMAXPROCS(0), 1 = sequential reference path).
//
// This is the parallel shape of the Dep-Miner pipeline's steps 3–4 (paper
// Fig. 1): the per-RHS-attribute searches Tr(cmax(dep(r),A)) are fully
// independent, so each runs as its own task. Results are written at the
// task's own index, which makes the output deterministic — byte-identical
// to calling MinimalTransversals sequentially in slice order — for any
// worker count and scheduling.
//
// A nil entry in hs denotes the edgeless hypergraph (Tr = {∅}), sparing
// callers an allocation for attributes with no cmax edges. Cancellation
// propagates into every in-flight levelwise search; the first error
// cancels the remaining tasks and is returned after all workers exit.
//
// The budget b (nil = ungoverned) is shared across all searches: every
// in-flight level charges its frontier width against the same pool, so
// the combined memory footprint of the concurrent searches is what the
// budget bounds. Panics inside a search are contained at the pool's task
// boundary and surface as a *guard.PanicError.
func TransversalsAll(ctx context.Context, hs []*Hypergraph, workers int, b *guard.Budget) ([]attrset.Family, error) {
	out := make([]attrset.Family, len(hs))
	err := pool.Run(ctx, workers, len(hs), func(taskCtx context.Context, _, i int) error {
		h := hs[i]
		if h == nil {
			h = &Hypergraph{}
		}
		tr, err := h.MinimalTransversalsGoverned(taskCtx, b)
		if err != nil {
			return err
		}
		out[i] = tr
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
