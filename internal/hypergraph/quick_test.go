package hypergraph

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/attrset"
)

// mapTransversals is the map-based levelwise search the sorted-slice
// kernel replaced — per-candidate cover allocations, a surviving hash
// set for the Apriori test, and hash-keyed prefix grouping. Kept here
// verbatim as the reference implementation for the property test.
func mapTransversals(h *Hypergraph) attrset.Family {
	if h.NumEdges() == 0 {
		return attrset.Family{attrset.Empty()}
	}
	ne := h.NumEdges()
	words := (ne + 63) / 64
	full := make([]uint64, words)
	for e := 0; e < ne; e++ {
		full[e>>6] |= 1 << uint(e&63)
	}
	vertexCover := make(map[attrset.Attr][]uint64)
	for e, edge := range h.Edges() {
		edge.ForEach(func(a attrset.Attr) {
			vc := vertexCover[a]
			if vc == nil {
				vc = make([]uint64, words)
				vertexCover[a] = vc
			}
			vc[e>>6] |= 1 << uint(e&63)
		})
	}
	type cand struct {
		set   attrset.Set
		cover []uint64
	}
	covers := func(c []uint64) bool {
		for i := range c {
			if c[i] != full[i] {
				return false
			}
		}
		return true
	}
	var level []cand
	h.Vertices().ForEach(func(a attrset.Attr) {
		level = append(level, cand{set: attrset.Single(a), cover: vertexCover[a]})
	})
	var out attrset.Family
	surviving := make(map[attrset.Set]struct{})
	for len(level) > 0 {
		var survivors []cand
		clear(surviving)
		for _, c := range level {
			if covers(c.cover) {
				out = append(out, c.set)
			} else {
				survivors = append(survivors, c)
				surviving[c.set] = struct{}{}
			}
		}
		byPrefix := make(map[attrset.Set][]cand)
		for _, c := range survivors {
			p := c.set.Without(c.set.Max())
			byPrefix[p] = append(byPrefix[p], c)
		}
		level = level[:0]
		for _, members := range byPrefix {
			for i := 0; i < len(members); i++ {
				for j := i + 1; j < len(members); j++ {
					u := members[i].set.Union(members[j].set)
					if !mapApriori(u, surviving) {
						continue
					}
					cover := make([]uint64, words)
					for w := range cover {
						cover[w] = members[i].cover[w] | members[j].cover[w]
					}
					level = append(level, cand{set: u, cover: cover})
				}
			}
		}
	}
	out.Sort()
	return out
}

func mapApriori(cand attrset.Set, surviving map[attrset.Set]struct{}) bool {
	ok := true
	cand.ForEach(func(a attrset.Attr) {
		if _, in := surviving[cand.Without(a)]; !in {
			ok = false
		}
	})
	return ok
}

// TestQuickSortedLevelwiseMatchesMapReference pits the sorted-slice
// transversal search against the map-based implementation on random
// simple hypergraphs, including vertices in high attrset words so the
// active-word bounding is exercised beyond word 0.
func TestQuickSortedLevelwiseMatchesMapReference(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(85))
	for iter := 0; iter < 120; iter++ {
		n := 2 + rng.Intn(7)
		shift := 0
		if iter%4 == 3 {
			shift = 60 + rng.Intn(10) // straddle the word-0/word-1 boundary
		}
		var edges attrset.Family
		for k := 1 + rng.Intn(5); k > 0; k-- {
			e := randEdge(rng, n)
			if shift > 0 {
				var sh attrset.Set
				e.ForEach(func(a attrset.Attr) { sh = sh.With(a + shift) })
				e = sh
			}
			edges = append(edges, e)
		}
		h := Simplify(edges)
		got, err := h.MinimalTransversals(ctx)
		if err != nil {
			t.Fatal(err)
		}
		want := mapTransversals(h)
		if !got.Equal(want) {
			t.Fatalf("edges %v: sorted kernel %v, map reference %v",
				h.Edges().Strings(), got.Strings(), want.Strings())
		}
		for _, tr := range got {
			if h.NumEdges() > 0 && !h.IsMinimalTransversal(tr) {
				t.Fatalf("edges %v: %v is not a minimal transversal",
					h.Edges().Strings(), tr)
			}
		}
	}
}
