package hypergraph

// Parallel-path tests for the per-attribute transversal fan-out: results
// byte-identical to the sequential order for any worker count, and prompt
// leak-free unwinding on mid-flight cancellation. The CI race job runs
// these with -race -run Parallel.

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/attrset"
)

func randomSimple(rng *rand.Rand) *Hypergraph {
	n := 1 + rng.Intn(8)
	edges := make(attrset.Family, 0, n)
	for i := 0; i < n; i++ {
		var e attrset.Set
		for a := 0; a < 8; a++ {
			if rng.Intn(3) == 0 {
				e.Add(a)
			}
		}
		edges = append(edges, e)
	}
	return Simplify(edges)
}

// TestParallelTransversalsMatchSequential pins the determinism guarantee
// of TransversalsAll against per-hypergraph sequential calls.
func TestParallelTransversalsMatchSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 40; iter++ {
		hs := make([]*Hypergraph, 1+rng.Intn(10))
		for i := range hs {
			if rng.Intn(6) == 0 {
				hs[i] = nil // edgeless shorthand
			} else {
				hs[i] = randomSimple(rng)
			}
		}
		want := make([]attrset.Family, len(hs))
		for i, h := range hs {
			if h == nil {
				h = &Hypergraph{}
			}
			tr, err := h.MinimalTransversals(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			want[i] = tr
		}
		for _, workers := range []int{1, 2, 8} {
			got, err := TransversalsAll(context.Background(), hs, workers, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if !got[i].Equal(want[i]) {
					t.Fatalf("iter %d workers=%d hypergraph %d: got %v, want %v",
						iter, workers, i, got[i].Strings(), want[i].Strings())
				}
			}
		}
	}
}

// slowHypergraph builds k pairwise-disjoint 2-vertex edges: Tr(H) has 2^k
// minimal transversals and the levelwise search widens combinatorially,
// so the computation cannot finish before the test cancels it.
func slowHypergraph(t testing.TB, k int) *Hypergraph {
	t.Helper()
	edges := make(attrset.Family, k)
	for i := 0; i < k; i++ {
		edges[i] = attrset.New(2*i, 2*i+1)
	}
	h, err := New(edges)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestParallelTransversalsCancellationMidFlight cancels TransversalsAll
// while its workers are deep in levelwise searches, asserting prompt
// unwinding with a wrapped context.Canceled and no leaked goroutines.
func TestParallelTransversalsCancellationMidFlight(t *testing.T) {
	hs := make([]*Hypergraph, 8)
	for i := range hs {
		hs[i] = slowHypergraph(t, 14)
	}
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := TransversalsAll(ctx, hs, 4, nil)
		done <- err
	}()

	deadline := time.Now().Add(30 * time.Second)
	for runtime.NumGoroutine() < base+3 {
		select {
		case err := <-done:
			t.Fatalf("finished before workers were observed (err=%v)", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("workers never spawned")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want wrapped context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancellation did not unwind the transversal searches")
	}
	deadline = time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d at start", runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}
