package hypergraph

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/attrset"
)

// randEdge draws a random edge over n vertices (possibly empty).
func randEdge(rng *rand.Rand, n int) attrset.Set {
	var s attrset.Set
	for v := 0; v < n; v++ {
		if rng.Intn(3) == 0 {
			s.Add(v)
		}
	}
	return s
}

func TestBergePaperExample(t *testing.T) {
	h := mustNew(t, "AC", "ABD")
	got, err := h.MinimalTransversalsBerge(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(sets("A", "BC", "CD")) {
		t.Errorf("Berge Tr = %v, want {A, BC, CD}", got.Strings())
	}
}

func TestBergeEdgeless(t *testing.T) {
	h := Simplify(nil)
	got, err := h.MinimalTransversalsBerge(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].IsEmpty() {
		t.Errorf("Tr(edgeless) = %v", got.Strings())
	}
}

// TestBergeMatchesLevelwise cross-validates the two independent
// transversal implementations on random simple hypergraphs.
func TestBergeMatchesLevelwise(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(8)
		fam := attrset.Family{}
		for e := 0; e < 1+rng.Intn(6); e++ {
			if one := randEdge(rng, n); !one.IsEmpty() {
				fam = append(fam, one)
			}
		}
		h := Simplify(fam)
		level := tr(t, h)
		bergeOut, err := h.MinimalTransversalsBerge(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !level.Equal(bergeOut) {
			t.Fatalf("iter %d: levelwise %v != berge %v (edges %v)",
				iter, level.Strings(), bergeOut.Strings(), h.Edges().Strings())
		}
	}
}

func TestBergeCancellation(t *testing.T) {
	h := mustNew(t, "AB", "CD")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := h.MinimalTransversalsBerge(ctx); err == nil {
		t.Error("expected cancellation error")
	}
}
