// Package ind discovers inclusion dependencies (INDs) across relations —
// the companion problem of FD discovery in the framework the paper builds
// on (Kantola, Mannila, Räihä, Siirtola 1992, cited as [KMRS92]): FDs
// drive normalisation, INDs identify the foreign-key joins between the
// normalised fragments.
//
// An inclusion dependency R[X] ⊆ S[Y] (with X, Y attribute sequences of
// equal arity) holds when every X-projection tuple of R appears as a
// Y-projection tuple of S. Discovery proceeds in the classical two
// stages:
//
//  1. Unary INDs R.A ⊆ S.B by value-set containment, for all column
//     pairs across the given relations.
//  2. n-ary INDs with the levelwise candidate generation of De Marchi et
//     al.: a k-ary candidate is viable only if every (k−1)-ary
//     sub-dependency (dropping position i on both sides) holds; valid
//     candidates are verified against the data by projection containment.
//
// Only ⊆-maximal results are interesting to a dba; Maximal filters the
// output accordingly.
package ind

import (
	"context"
	"fmt"
	"slices"
	"strings"

	"repro/internal/faultinject"
	"repro/internal/guard"
	"repro/internal/relation"
)

// ColumnRef identifies a column of one of the input relations.
type ColumnRef struct {
	Relation int // index into the Discover input slice
	Attr     int // column index within that relation
}

// IND is an inclusion dependency LHS ⊆ RHS over parallel attribute
// sequences: LHS[i] corresponds to RHS[i].
type IND struct {
	LHS []ColumnRef
	RHS []ColumnRef
}

// Arity returns the number of attribute positions.
func (d IND) Arity() int { return len(d.LHS) }

// String renders the IND with relation and column indices,
// e.g. "r0[1,2] ⊆ r1[0,1]".
func (d IND) String() string {
	return fmt.Sprintf("r%d%s ⊆ r%d%s",
		d.LHS[0].Relation, positions(d.LHS), d.RHS[0].Relation, positions(d.RHS))
}

// Names renders the IND with relation and attribute names.
func (d IND) Names(relNames []string, rels []*relation.Relation) string {
	part := func(refs []ColumnRef) string {
		var b strings.Builder
		b.WriteString(relNames[refs[0].Relation])
		b.WriteByte('(')
		for i, ref := range refs {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(rels[ref.Relation].Name(ref.Attr))
		}
		b.WriteByte(')')
		return b.String()
	}
	return part(d.LHS) + " ⊆ " + part(d.RHS)
}

func positions(refs []ColumnRef) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, ref := range refs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", ref.Attr)
	}
	b.WriteByte(']')
	return b.String()
}

// Options configure discovery.
type Options struct {
	// MaxArity bounds the IND width explored (0 = unary only is never
	// implied; default 4 keeps the exponential candidate space sane).
	MaxArity int
	// KeepReflexive keeps trivial INDs of a column sequence in itself.
	// Off by default.
	KeepReflexive bool
	// Budget governs the search: each level charges the number of
	// candidates it tested. On overrun the INDs validated so far are
	// returned as a partial Result with the guard error. nil means
	// ungoverned.
	Budget *guard.Budget
}

func (o Options) maxArity() int {
	if o.MaxArity <= 0 {
		return 4
	}
	return o.MaxArity
}

// Result is the outcome of IND discovery.
type Result struct {
	// INDs holds every valid dependency up to MaxArity, in deterministic
	// order.
	INDs []IND
	// Candidates counts the n-ary candidates tested (search-space size).
	Candidates int
	// Partial reports that the search stopped early on a budget or
	// deadline overrun (or a contained panic): INDs holds only the
	// dependencies validated on completed levels. Always accompanied by a
	// non-nil error.
	Partial bool
}

// Discover finds inclusion dependencies within and across the given
// relations. Panics anywhere in the search are contained at this boundary
// and surface as a *guard.PanicError.
func Discover(ctx context.Context, rels []*relation.Relation, opts Options) (res *Result, err error) {
	res = &Result{}
	defer func() {
		if p := recover(); p != nil {
			res.Partial = true
			err = guard.NewPanicError("ind", p)
		}
	}()
	if ferr := faultinject.Fire(faultinject.INDLevel); ferr != nil {
		return failINDs(res, ferr)
	}
	if cerr := opts.Budget.Checkpoint("ind"); cerr != nil {
		return failINDs(res, cerr)
	}
	// Stage 1: unary INDs by value-set containment.
	sets := make([][]map[string]struct{}, len(rels))
	for ri, r := range rels {
		sets[ri] = make([]map[string]struct{}, r.Arity())
		for a := 0; a < r.Arity(); a++ {
			vs := make(map[string]struct{}, r.DomainSize(a))
			for code := 0; code < r.DomainSize(a); code++ {
				vs[r.ValueForCode(a, code)] = struct{}{}
			}
			sets[ri][a] = vs
		}
	}
	var unary []IND
	for li, lr := range rels {
		for la := 0; la < lr.Arity(); la++ {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("ind: cancelled: %w", err)
			}
			for ri := range rels {
				for ra := 0; ra < rels[ri].Arity(); ra++ {
					if li == ri && la == ra {
						if opts.KeepReflexive {
							unary = append(unary, mk(li, ri, []int{la}, []int{ra}))
						}
						continue
					}
					res.Candidates++
					if contains(sets[li][la], sets[ri][ra]) {
						unary = append(unary, mk(li, ri, []int{la}, []int{ra}))
					}
				}
			}
		}
	}
	res.INDs = append(res.INDs, unary...)
	if cerr := opts.Budget.Charge("ind", res.Candidates); cerr != nil {
		sortINDs(res.INDs)
		return failINDs(res, cerr)
	}

	// Stage 2: levelwise n-ary candidates from the valid (k−1)-ary ones.
	level := unary
	for k := 2; k <= opts.maxArity() && len(level) > 0; k++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("ind: cancelled: %w", err)
		}
		if ferr := faultinject.Fire(faultinject.INDLevel); ferr != nil {
			sortINDs(res.INDs)
			return failINDs(res, ferr)
		}
		before := res.Candidates
		valid := indexByKey(level)
		var next []IND
		seen := map[string]struct{}{}
		for _, d1 := range level {
			for _, d2 := range level {
				cand, ok := join(d1, d2)
				if !ok {
					continue
				}
				ck := key(cand)
				if _, dup := seen[ck]; dup {
					continue
				}
				seen[ck] = struct{}{}
				if !allSubINDsValid(cand, valid) {
					continue
				}
				res.Candidates++
				if holds(rels, cand) {
					next = append(next, cand)
				}
			}
		}
		sortINDs(next)
		res.INDs = append(res.INDs, next...)
		level = next
		if cerr := opts.Budget.Charge("ind", res.Candidates-before); cerr != nil {
			sortINDs(res.INDs)
			return failINDs(res, cerr)
		}
	}
	sortINDs(res.INDs)
	return res, nil
}

// failINDs finalises an interrupted search: governed errors keep the INDs
// validated so far as a partial result, anything else drops them.
func failINDs(res *Result, err error) (*Result, error) {
	if !guard.Governed(err) {
		return nil, err
	}
	res.Partial = true
	return res, err
}

// indexByKey indexes valid INDs by their canonical key for the Apriori
// prune.
func indexByKey(ds []IND) map[string]struct{} {
	out := make(map[string]struct{}, len(ds))
	for _, d := range ds {
		out[key(d)] = struct{}{}
	}
	return out
}

func mk(lrel, rrel int, lattrs, rattrs []int) IND {
	d := IND{}
	for _, a := range lattrs {
		d.LHS = append(d.LHS, ColumnRef{lrel, a})
	}
	for _, a := range rattrs {
		d.RHS = append(d.RHS, ColumnRef{rrel, a})
	}
	return d
}

func contains(sub, super map[string]struct{}) bool {
	if len(sub) > len(super) {
		return false
	}
	for v := range sub {
		if _, ok := super[v]; !ok {
			return false
		}
	}
	return true
}

// join merges two k-ary INDs sharing relations and the first k−1
// positions into a (k+1)-ary candidate, requiring strictly increasing
// final LHS attrs to avoid permuted duplicates, and distinct new columns
// on both sides.
func join(d1, d2 IND) (IND, bool) {
	k := d1.Arity()
	if d2.Arity() != k {
		return IND{}, false
	}
	if d1.LHS[0].Relation != d2.LHS[0].Relation || d1.RHS[0].Relation != d2.RHS[0].Relation {
		return IND{}, false
	}
	for i := 0; i < k-1; i++ {
		if d1.LHS[i] != d2.LHS[i] || d1.RHS[i] != d2.RHS[i] {
			return IND{}, false
		}
	}
	l1, l2 := d1.LHS[k-1], d2.LHS[k-1]
	r1, r2 := d1.RHS[k-1], d2.RHS[k-1]
	if l1.Attr >= l2.Attr { // canonical order on the LHS tail
		return IND{}, false
	}
	if r1 == r2 { // RHS columns must stay distinct
		return IND{}, false
	}
	// No repeated columns anywhere (sequences with repeats are valid in
	// theory but useless as foreign keys).
	for i := 0; i < k-1; i++ {
		if d1.LHS[i] == l2 || d1.RHS[i] == r2 {
			return IND{}, false
		}
	}
	cand := IND{
		LHS: append(append([]ColumnRef{}, d1.LHS...), l2),
		RHS: append(append([]ColumnRef{}, d1.RHS...), r2),
	}
	return cand, true
}

// allSubINDsValid applies the Apriori prune: dropping any position must
// leave a valid IND.
func allSubINDsValid(cand IND, valid map[string]struct{}) bool {
	k := cand.Arity()
	for drop := 0; drop < k; drop++ {
		sub := IND{}
		for i := 0; i < k; i++ {
			if i == drop {
				continue
			}
			sub.LHS = append(sub.LHS, cand.LHS[i])
			sub.RHS = append(sub.RHS, cand.RHS[i])
		}
		subCanon := canonical(sub)
		if _, ok := valid[key(subCanon)]; !ok {
			return false
		}
	}
	return true
}

// canonical reorders positions so LHS attrs are increasing — the order
// valid INDs are stored in.
func canonical(d IND) IND {
	idx := make([]int, d.Arity())
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int { return d.LHS[a].Attr - d.LHS[b].Attr })
	out := IND{}
	for _, i := range idx {
		out.LHS = append(out.LHS, d.LHS[i])
		out.RHS = append(out.RHS, d.RHS[i])
	}
	return out
}

func key(d IND) string {
	var b strings.Builder
	for i := range d.LHS {
		fmt.Fprintf(&b, "%d.%d>%d.%d|", d.LHS[i].Relation, d.LHS[i].Attr,
			d.RHS[i].Relation, d.RHS[i].Attr)
	}
	return b.String()
}

// holds verifies an n-ary IND against the data by hashing the RHS
// projection and probing every LHS projection tuple.
func holds(rels []*relation.Relation, d IND) bool {
	rr := rels[d.RHS[0].Relation]
	lr := rels[d.LHS[0].Relation]
	super := make(map[string]struct{}, rr.Rows())
	var b strings.Builder
	for t := 0; t < rr.Rows(); t++ {
		b.Reset()
		for _, ref := range d.RHS {
			b.WriteString(rr.Value(t, ref.Attr))
			b.WriteByte(0)
		}
		super[b.String()] = struct{}{}
	}
	for t := 0; t < lr.Rows(); t++ {
		b.Reset()
		for _, ref := range d.LHS {
			b.WriteString(lr.Value(t, ref.Attr))
			b.WriteByte(0)
		}
		if _, ok := super[b.String()]; !ok {
			return false
		}
	}
	return true
}

func sortINDs(ds []IND) {
	slices.SortFunc(ds, func(a, b IND) int {
		if a.Arity() != b.Arity() {
			return a.Arity() - b.Arity()
		}
		return strings.Compare(key(a), key(b))
	})
}

// Maximal filters the result to the ⊆-maximal INDs: those not implied by
// a wider IND via position projection (over the same relation pair).
func (r *Result) Maximal() []IND {
	var out []IND
	for i, d := range r.INDs {
		implied := false
		for j, e := range r.INDs {
			if i == j || e.Arity() <= d.Arity() {
				continue
			}
			if covers(e, d) {
				implied = true
				break
			}
		}
		if !implied {
			out = append(out, d)
		}
	}
	return out
}

// covers reports whether wide contains every (LHS,RHS) column pair of
// narrow.
func covers(wide, narrow IND) bool {
	for i := range narrow.LHS {
		found := false
		for j := range wide.LHS {
			if wide.LHS[j] == narrow.LHS[i] && wide.RHS[j] == narrow.RHS[i] {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
