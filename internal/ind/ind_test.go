package ind

import (
	"context"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/relation"
)

func rel(t *testing.T, names []string, rows [][]string) *relation.Relation {
	t.Helper()
	r, err := relation.FromRows(names, rows)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// orders references customers: a classic foreign key.
func fixtures(t *testing.T) []*relation.Relation {
	customers := rel(t, []string{"cust_id", "city"}, [][]string{
		{"c1", "Lyon"}, {"c2", "Paris"}, {"c3", "Lyon"},
	})
	orders := rel(t, []string{"order_id", "cust", "dest"}, [][]string{
		{"o1", "c1", "Lyon"}, {"o2", "c1", "Paris"}, {"o3", "c3", "Lyon"},
	})
	return []*relation.Relation{customers, orders}
}

func hasIND(ds []IND, s string) bool {
	for _, d := range ds {
		if d.String() == s {
			return true
		}
	}
	return false
}

func TestUnaryForeignKey(t *testing.T) {
	rels := fixtures(t)
	res, err := Discover(context.Background(), rels, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// orders.cust ⊆ customers.cust_id — the foreign key.
	if !hasIND(res.INDs, "r1[1] ⊆ r0[0]") {
		t.Errorf("missing FK IND; got %v", res.INDs)
	}
	// Not the converse: customers c2 has no order.
	if hasIND(res.INDs, "r0[0] ⊆ r1[1]") {
		t.Error("reverse FK should not hold")
	}
	// dest values ⊆ city values here.
	if !hasIND(res.INDs, "r1[2] ⊆ r0[1]") {
		t.Errorf("dest ⊆ city missing; got %v", res.INDs)
	}
}

func TestNAryIND(t *testing.T) {
	// s is a projection-superset of r on (a,b) pairs.
	r0 := rel(t, []string{"a", "b"}, [][]string{
		{"1", "x"}, {"2", "y"},
	})
	r1 := rel(t, []string{"p", "q"}, [][]string{
		{"1", "x"}, {"2", "y"}, {"3", "z"},
	})
	res, err := Discover(context.Background(), []*relation.Relation{r0, r1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hasIND(res.INDs, "r0[0,1] ⊆ r1[0,1]") {
		t.Errorf("binary IND missing; got %v", res.INDs)
	}
	// Maximal output hides the unary projections of the binary IND.
	max := res.Maximal()
	if hasIND(max, "r0[0] ⊆ r1[0]") {
		t.Errorf("unary projection should be subsumed; max = %v", max)
	}
	if !hasIND(max, "r0[0,1] ⊆ r1[0,1]") {
		t.Errorf("binary IND should be maximal; max = %v", max)
	}
}

func TestNAryRequiresPairCorrespondence(t *testing.T) {
	// Unary containments hold but the value *pairs* do not correspond:
	// (1,y) of r0 is not a tuple of r1.
	r0 := rel(t, []string{"a", "b"}, [][]string{
		{"1", "y"}, {"2", "x"},
	})
	r1 := rel(t, []string{"p", "q"}, [][]string{
		{"1", "x"}, {"2", "y"},
	})
	res, err := Discover(context.Background(), []*relation.Relation{r0, r1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hasIND(res.INDs, "r0[0] ⊆ r1[0]") || !hasIND(res.INDs, "r0[1] ⊆ r1[1]") {
		t.Fatalf("unary INDs missing; got %v", res.INDs)
	}
	if hasIND(res.INDs, "r0[0,1] ⊆ r1[0,1]") {
		t.Error("pairwise IND should fail")
	}
}

func TestWithinRelationINDs(t *testing.T) {
	// manager ids are a subset of employee ids in the same relation.
	r0 := rel(t, []string{"emp", "mgr"}, [][]string{
		{"e1", "e2"}, {"e2", "e3"}, {"e3", "e3"},
	})
	res, err := Discover(context.Background(), []*relation.Relation{r0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hasIND(res.INDs, "r0[1] ⊆ r0[0]") {
		t.Errorf("self-referencing FK missing; got %v", res.INDs)
	}
	// Reflexive column-in-itself is dropped by default, kept on demand.
	if hasIND(res.INDs, "r0[0] ⊆ r0[0]") {
		t.Error("reflexive IND should be off by default")
	}
	res2, err := Discover(context.Background(), []*relation.Relation{r0}, Options{KeepReflexive: true})
	if err != nil {
		t.Fatal(err)
	}
	if !hasIND(res2.INDs, "r0[0] ⊆ r0[0]") {
		t.Error("KeepReflexive should keep it")
	}
}

func TestNamesRendering(t *testing.T) {
	rels := fixtures(t)
	res, err := Discover(context.Background(), rels, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.INDs {
		if d.String() == "r1[1] ⊆ r0[0]" {
			got := d.Names([]string{"customers", "orders"}, rels)
			if got != "orders(cust) ⊆ customers(cust_id)" {
				t.Errorf("Names = %q", got)
			}
			return
		}
	}
	t.Fatal("FK IND not found")
}

func TestMaxArityBound(t *testing.T) {
	// Identical relations: wide INDs exist; bound at 2.
	rows := [][]string{{"1", "x", "p"}, {"2", "y", "q"}}
	r0 := rel(t, []string{"a", "b", "c"}, rows)
	r1 := rel(t, []string{"d", "e", "f"}, rows)
	res, err := Discover(context.Background(), []*relation.Relation{r0, r1}, Options{MaxArity: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.INDs {
		if d.Arity() > 2 {
			t.Errorf("IND %v exceeds MaxArity", d)
		}
	}
	res3, err := Discover(context.Background(), []*relation.Relation{r0, r1}, Options{MaxArity: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !hasIND(res3.INDs, "r0[0,1,2] ⊆ r1[0,1,2]") {
		t.Errorf("ternary IND missing at MaxArity 3; got %v", res3.INDs)
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Discover(ctx, fixtures(t), Options{}); err == nil {
		t.Error("cancelled context should abort")
	}
}

// bruteHolds checks an IND directly for the property test.
func bruteHolds(rels []*relation.Relation, d IND) bool {
	return holds(rels, d)
}

// TestPropertySoundAndComplete: on random relation pairs, every reported
// IND holds, and every holding unary/binary IND is reported.
func TestPropertySoundAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	for iter := 0; iter < 30; iter++ {
		mkRel := func() *relation.Relation {
			n := 1 + rng.Intn(3)
			rows := 1 + rng.Intn(8)
			data := make([][]string, rows)
			for i := range data {
				row := make([]string, n)
				for a := range row {
					row[a] = strconv.Itoa(rng.Intn(3))
				}
				data[i] = row
			}
			names := make([]string, n)
			for a := range names {
				names[a] = "c" + strconv.Itoa(a)
			}
			r, err := relation.FromRows(names, data)
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
		rels := []*relation.Relation{mkRel(), mkRel()}
		res, err := Discover(context.Background(), rels, Options{MaxArity: 2})
		if err != nil {
			t.Fatal(err)
		}
		reported := map[string]bool{}
		for _, d := range res.INDs {
			reported[key(d)] = true
			if !bruteHolds(rels, d) {
				t.Fatalf("iter %d: reported IND %v does not hold", iter, d)
			}
		}
		// Completeness for unary INDs.
		for li, lr := range rels {
			for la := 0; la < lr.Arity(); la++ {
				for ri, rr := range rels {
					for ra := 0; ra < rr.Arity(); ra++ {
						if li == ri && la == ra {
							continue
						}
						d := mk(li, ri, []int{la}, []int{ra})
						if bruteHolds(rels, d) && !reported[key(d)] {
							t.Fatalf("iter %d: holding unary IND %v missed", iter, d)
						}
					}
				}
			}
		}
	}
}
