// Package keys discovers the candidate keys of a relation instance: the
// ⊆-minimal attribute sets whose stripped partition is empty (every tuple
// unique), also known as minimal unique column combinations.
//
// Candidate keys are the other half of the dba workflow the Dep-Miner
// paper targets: the discovered FDs say what *should* be keys
// (X with X⁺ = R), and this package says what *is* unique in the
// instance; the two coincide exactly (a set is an instance key iff the
// discovered cover closes it to R), which the test suite exploits as a
// cross-check between this levelwise search and the FD pipeline.
//
// The search is TANE-style levelwise over the attribute lattice: level k
// holds the non-unique k-sets, partitions are computed by products along
// the lattice, supersets of found keys are pruned via Apriori generation.
// Like TANE, the partition products of each level fan out over
// internal/pool workers, and the partitions live in a memory-bounded
// internal/pstore store — evicted under Options.MaxPartitionBytes and
// recomputed on demand. The uniqueness test itself is a cached flag set
// when the partition is built, so eviction never re-runs a test.
package keys

import (
	"context"
	"fmt"
	"slices"
	"time"

	"repro/internal/attrset"
	"repro/internal/faultinject"
	"repro/internal/guard"
	"repro/internal/partition"
	"repro/internal/pool"
	"repro/internal/pstore"
	"repro/internal/relation"
)

// Options configure a key discovery run.
type Options struct {
	// Workers caps the worker pool computing each level's partition
	// products: 0 = all cores, 1 = the sequential reference path. The
	// discovered keys are identical for every value.
	Workers int
	// MaxPartitionBytes bounds the resident byte footprint of the
	// materialised partitions (0 = unbounded); over the cap partitions
	// are evicted and recomputed on demand. See pstore.
	MaxPartitionBytes int64
	// Budget governs the levelwise search: each lattice level charges its
	// width (the number of materialised partitions) and every partition
	// materialisation charges its byte footprint. On overrun the keys
	// found so far are returned as a partial Result with the guard error.
	// nil means ungoverned.
	Budget *guard.Budget
}

// Validate rejects nonsensical configurations with an error wrapping
// guard.ErrInvalidOptions.
func (o Options) Validate() error {
	if o.Workers < 0 {
		return fmt.Errorf("%w: negative Workers %d", guard.ErrInvalidOptions, o.Workers)
	}
	if o.MaxPartitionBytes < 0 {
		return fmt.Errorf("%w: negative MaxPartitionBytes %d", guard.ErrInvalidOptions, o.MaxPartitionBytes)
	}
	return nil
}

// Result is the outcome of a key discovery run.
type Result struct {
	// Keys are the minimal candidate keys in canonical order. For a
	// relation with duplicate tuples no key exists and Keys is empty
	// (no attribute set can separate identical tuples).
	Keys attrset.Family
	// LatticeNodes counts materialised attribute sets.
	LatticeNodes int
	// Elapsed is the wall-clock duration.
	Elapsed time.Duration
	// Stats are the partition store's hit/miss/evict/recompute counters
	// and byte footprints.
	Stats pstore.Stats
	// Partial reports that the search stopped early on a budget or
	// deadline overrun (or a contained panic): Keys holds only the keys
	// confirmed before the cutoff, and longer keys may be missing. Always
	// accompanied by a non-nil error.
	Partial bool
}

// Discover finds all minimal candidate keys of the relation.
func Discover(ctx context.Context, r *relation.Relation) (*Result, error) {
	return DiscoverOpts(ctx, r, Options{})
}

// node is one attribute set of the current level. The partition lives in
// the store; uniqueness is cached when it is built.
type node struct {
	set    attrset.Set
	unique bool
}

// DiscoverOpts is Discover under explicit options. Panics anywhere in the
// search are contained at this boundary and surface as a
// *guard.PanicError.
func DiscoverOpts(ctx context.Context, r *relation.Relation, opts Options) (res *Result, err error) {
	start := time.Now()
	res = &Result{}
	var store *pstore.Store
	defer func() {
		if p := recover(); p != nil {
			if store != nil {
				res.Stats = store.Stats()
			}
			res.Partial = true
			res.Elapsed = time.Since(start)
			err = guard.NewPanicError("keys", p)
		}
	}()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	n := r.Arity()
	if n == 0 || r.Rows() <= 1 {
		// The empty set is a key iff the relation has at most one tuple.
		if r.Rows() <= 1 {
			res.Keys = attrset.Family{attrset.Empty()}
		}
		res.Elapsed = time.Since(start)
		return res, nil
	}

	workers := pool.Resolve(opts.Workers)
	probers := make([]*partition.Prober, workers)
	for w := range probers {
		probers[w] = partition.NewProber(r.Rows())
	}
	store = pstore.New(opts.MaxPartitionBytes, opts.Budget)

	level := make([]*node, 0, n)
	for a := 0; a < n; a++ {
		p := partition.Single(r, a)
		store.PutRoot(attrset.Single(a), p)
		level = append(level, &node{set: attrset.Single(a), unique: p.IsUnique()})
	}

	for k := 1; len(level) > 0; k++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("keys: cancelled: %w", err)
		}
		if ferr := faultinject.Fire(faultinject.KeysLevel); ferr != nil {
			return failKeys(res, store, start, ferr)
		}
		if cerr := opts.Budget.Charge("keys", len(level)); cerr != nil {
			return failKeys(res, store, start, cerr)
		}
		res.LatticeNodes += len(level)
		survivors := level[:0]
		for _, nd := range level {
			if nd.unique {
				res.Keys = append(res.Keys, nd.set)
			} else {
				survivors = append(survivors, nd)
			}
		}
		// Apriori join of the non-unique sets; supersets of keys cannot
		// be generated because one of their subsets is missing. The
		// survivors are sorted, so sets sharing a prefix (the set minus
		// its largest attribute) are consecutive.
		surviveIdx := make(map[attrset.Set]bool, len(survivors))
		for _, nd := range survivors {
			surviveIdx[nd.set] = true
		}
		type candidate struct {
			nd          *node
			left, right attrset.Set
		}
		var cands []candidate
		for lo := 0; lo < len(survivors); {
			prefix := survivors[lo].set.Without(survivors[lo].set.Max())
			hi := lo + 1
			for hi < len(survivors) && survivors[hi].set.Without(survivors[hi].set.Max()) == prefix {
				hi++
			}
			for i := lo; i < hi; i++ {
				for j := i + 1; j < hi; j++ {
					cand := survivors[i].set.Union(survivors[j].set)
					ok := true
					cand.ForEach(func(a attrset.Attr) {
						if !surviveIdx[cand.Without(a)] {
							ok = false
						}
					})
					if !ok {
						continue
					}
					cands = append(cands, candidate{
						nd:   &node{set: cand},
						left: survivors[i].set, right: survivors[j].set,
					})
				}
			}
			lo = hi
		}
		slices.SortFunc(cands, func(a, b candidate) int { return a.nd.set.CompareLex(b.nd.set) })

		perr := pool.Run(ctx, workers, len(cands), func(ctx context.Context, w, t int) error {
			c := cands[t]
			lp, err := store.Get(c.left, probers[w])
			if err != nil {
				return err
			}
			rp, err := store.Get(c.right, probers[w])
			if err != nil {
				return err
			}
			p := probers[w].Product(lp, rp)
			c.nd.unique = p.IsUnique()
			return store.Put(c.nd.set, c.left, c.right, k+1, p)
		})
		if perr != nil {
			return failKeys(res, store, start, perr)
		}
		// Level k's partitions were only needed as product inputs.
		store.Forget(k)
		next := make([]*node, len(cands))
		for i, c := range cands {
			next[i] = c.nd
		}
		level = next
	}
	res.Keys.Sort()
	res.Stats = store.Stats()
	res.Elapsed = time.Since(start)
	return res, nil
}

// failKeys finalises an interrupted search: governed errors keep the keys
// confirmed so far as a partial result, anything else drops them.
func failKeys(res *Result, store *pstore.Store, start time.Time, err error) (*Result, error) {
	if !guard.Governed(err) {
		return nil, err
	}
	res.Partial = true
	res.Keys.Sort()
	res.Stats = store.Stats()
	res.Elapsed = time.Since(start)
	return res, err
}

// IsUnique reports whether X is a superkey of the instance (no two tuples
// agree on all of X), by direct partition computation.
func IsUnique(r *relation.Relation, x attrset.Set) bool {
	return partition.Of(r, x).IsUnique()
}
