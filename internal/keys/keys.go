// Package keys discovers the candidate keys of a relation instance: the
// ⊆-minimal attribute sets whose stripped partition is empty (every tuple
// unique), also known as minimal unique column combinations.
//
// Candidate keys are the other half of the dba workflow the Dep-Miner
// paper targets: the discovered FDs say what *should* be keys
// (X with X⁺ = R), and this package says what *is* unique in the
// instance; the two coincide exactly (a set is an instance key iff the
// discovered cover closes it to R), which the test suite exploits as a
// cross-check between this levelwise search and the FD pipeline.
//
// The search is TANE-style levelwise over the attribute lattice: level k
// holds the non-unique k-sets, partitions are computed by products along
// the lattice, supersets of found keys are pruned via Apriori generation.
package keys

import (
	"context"
	"fmt"
	"time"

	"repro/internal/attrset"
	"repro/internal/faultinject"
	"repro/internal/guard"
	"repro/internal/partition"
	"repro/internal/relation"
)

// Options configure a key discovery run.
type Options struct {
	// Budget governs the levelwise search: each lattice level charges its
	// width (the number of materialised partitions, which is the search's
	// memory footprint). On overrun the keys found so far are returned as
	// a partial Result with the guard error. nil means ungoverned.
	Budget *guard.Budget
}

// Result is the outcome of a key discovery run.
type Result struct {
	// Keys are the minimal candidate keys in canonical order. For a
	// relation with duplicate tuples no key exists and Keys is empty
	// (no attribute set can separate identical tuples).
	Keys attrset.Family
	// LatticeNodes counts materialised attribute sets.
	LatticeNodes int
	// Elapsed is the wall-clock duration.
	Elapsed time.Duration
	// Partial reports that the search stopped early on a budget or
	// deadline overrun (or a contained panic): Keys holds only the keys
	// confirmed before the cutoff, and longer keys may be missing. Always
	// accompanied by a non-nil error.
	Partial bool
}

// Discover finds all minimal candidate keys of the relation.
func Discover(ctx context.Context, r *relation.Relation) (*Result, error) {
	return DiscoverOpts(ctx, r, Options{})
}

// DiscoverOpts is Discover under explicit options. Panics anywhere in the
// search are contained at this boundary and surface as a
// *guard.PanicError.
func DiscoverOpts(ctx context.Context, r *relation.Relation, opts Options) (res *Result, err error) {
	start := time.Now()
	res = &Result{}
	defer func() {
		if p := recover(); p != nil {
			res.Partial = true
			res.Elapsed = time.Since(start)
			err = guard.NewPanicError("keys", p)
		}
	}()
	n := r.Arity()
	if n == 0 {
		// The empty set is a key iff the relation has at most one tuple.
		if r.Rows() <= 1 {
			res.Keys = attrset.Family{attrset.Empty()}
		}
		res.Elapsed = time.Since(start)
		return res, nil
	}
	if r.Rows() <= 1 {
		res.Keys = attrset.Family{attrset.Empty()}
		res.Elapsed = time.Since(start)
		return res, nil
	}

	prober := partition.NewProber(r.Rows())
	type node struct{ part *partition.Partition }
	level := make(map[attrset.Set]*node, n)
	for a := 0; a < n; a++ {
		level[attrset.Single(a)] = &node{part: partition.Single(r, a)}
	}

	for len(level) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("keys: cancelled: %w", err)
		}
		if err := faultinject.Fire(faultinject.KeysLevel); err != nil {
			return failKeys(res, start, err)
		}
		if err := opts.Budget.Charge("keys", len(level)); err != nil {
			return failKeys(res, start, err)
		}
		res.LatticeNodes += len(level)
		survivors := make(map[attrset.Set]*node, len(level))
		for x, nd := range level {
			if nd.part.IsUnique() {
				res.Keys = append(res.Keys, x)
			} else {
				survivors[x] = nd
			}
		}
		// Apriori join of the non-unique sets; supersets of keys cannot
		// be generated because one of their subsets is missing.
		next := make(map[attrset.Set]*node)
		byPrefix := make(map[attrset.Set][]attrset.Set)
		for x := range survivors {
			last := x.Max()
			p := x.Without(last)
			byPrefix[p] = append(byPrefix[p], x)
		}
		for _, members := range byPrefix {
			for i := 0; i < len(members); i++ {
				for j := i + 1; j < len(members); j++ {
					cand := members[i].Union(members[j])
					if _, dup := next[cand]; dup {
						continue
					}
					ok := true
					cand.ForEach(func(a attrset.Attr) {
						if _, in := survivors[cand.Without(a)]; !in {
							ok = false
						}
					})
					if !ok {
						continue
					}
					next[cand] = &node{
						part: prober.Product(survivors[members[i]].part, survivors[members[j]].part),
					}
				}
			}
		}
		level = next
	}
	res.Keys.Sort()
	res.Elapsed = time.Since(start)
	return res, nil
}

// failKeys finalises an interrupted search: governed errors keep the keys
// confirmed so far as a partial result, anything else drops them.
func failKeys(res *Result, start time.Time, err error) (*Result, error) {
	if !guard.Governed(err) {
		return nil, err
	}
	res.Partial = true
	res.Keys.Sort()
	res.Elapsed = time.Since(start)
	return res, err
}

// IsUnique reports whether X is a superkey of the instance (no two tuples
// agree on all of X), by direct partition computation.
func IsUnique(r *relation.Relation, x attrset.Set) bool {
	return partition.Of(r, x).IsUnique()
}
