package keys

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/attrset"
	"repro/internal/fd"
	"repro/internal/guard"
	"repro/internal/relation"
)

func TestOptionsValidate(t *testing.T) {
	for _, opts := range []Options{{Workers: -1}, {MaxPartitionBytes: -1}} {
		if err := opts.Validate(); !errors.Is(err, guard.ErrInvalidOptions) {
			t.Errorf("Validate(%+v) = %v, want ErrInvalidOptions", opts, err)
		}
		if _, err := DiscoverOpts(context.Background(), relation.PaperExample(), opts); !errors.Is(err, guard.ErrInvalidOptions) {
			t.Errorf("DiscoverOpts(%+v) err = %v, want ErrInvalidOptions", opts, err)
		}
	}
	if err := (Options{Workers: 4, MaxPartitionBytes: 1 << 20}).Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

func set(spec string) attrset.Set {
	s, ok := attrset.Parse(spec)
	if !ok {
		panic("bad spec " + spec)
	}
	return s
}

func TestPaperExampleKeys(t *testing.T) {
	r := relation.PaperExample()
	res, err := Discover(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	// The theory keys of the instance cover: X is a key iff X⁺ = R.
	want := fd.MineBrute(r).Keys(r.Arity())
	if !res.Keys.Equal(want) {
		t.Errorf("Keys = %v, want %v", res.Keys.Strings(), want.Strings())
	}
	for _, k := range []string{"AB", "AC", "AD", "AE", "BC", "CD"} {
		if !res.Keys.Contains(set(k)) {
			t.Errorf("expected key %s missing", k)
		}
	}
	if res.LatticeNodes == 0 || res.Elapsed <= 0 {
		t.Error("stats not populated")
	}
}

func TestSingleColumnKey(t *testing.T) {
	r, err := relation.FromRows([]string{"id", "v"}, [][]string{
		{"1", "x"}, {"2", "x"}, {"3", "y"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Discover(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Keys.Equal(attrset.Family{set("A")}) {
		t.Errorf("Keys = %v, want {A}", res.Keys.Strings())
	}
}

func TestDuplicateTuplesHaveNoKey(t *testing.T) {
	r, err := relation.FromRows([]string{"a", "b"}, [][]string{
		{"1", "x"}, {"1", "x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Discover(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Keys) != 0 {
		t.Errorf("Keys = %v, want none", res.Keys.Strings())
	}
}

func TestDegenerate(t *testing.T) {
	// ≤ 1 tuple: the empty set is the key.
	for _, rows := range [][][]string{{}, {{"1", "x"}}} {
		r, err := relation.FromRows([]string{"a", "b"}, rows)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Discover(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Keys.Equal(attrset.Family{attrset.Empty()}) {
			t.Errorf("rows=%d: Keys = %v, want {∅}", len(rows), res.Keys.Strings())
		}
	}
	// Zero attributes, two tuples (necessarily duplicates).
	r0, err := relation.FromRows(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Discover(context.Background(), r0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Keys.Equal(attrset.Family{attrset.Empty()}) {
		t.Errorf("empty schema Keys = %v", res.Keys.Strings())
	}
}

func TestIsUnique(t *testing.T) {
	r := relation.PaperExample()
	if IsUnique(r, set("A")) {
		t.Error("A is not unique (tuples 1, 2 share empnum)")
	}
	if !IsUnique(r, set("AB")) {
		t.Error("AB should be unique")
	}
	if !IsUnique(r, set("ABCDE")) {
		t.Error("R is unique on a duplicate-free relation")
	}
}

// bruteKeys enumerates minimal unique sets directly.
func bruteKeys(r *relation.Relation) attrset.Family {
	n := r.Arity()
	var uniques attrset.Family
	for bits := uint64(0); bits < 1<<uint(n); bits++ {
		var x attrset.Set
		for b := 0; b < n; b++ {
			if bits&(1<<uint(b)) != 0 {
				x.Add(b)
			}
		}
		if IsUnique(r, x) {
			uniques = append(uniques, x)
		}
	}
	return uniques.Minimal()
}

func TestPropertyMatchesBruteForceAndTheory(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for iter := 0; iter < 80; iter++ {
		n := 1 + rng.Intn(5)
		rows := rng.Intn(16)
		cols := make([][]int, n)
		for a := range cols {
			cols[a] = make([]int, rows)
			dom := 1 + rng.Intn(6)
			for i := range cols[a] {
				cols[a][i] = rng.Intn(dom)
			}
		}
		r, err := relation.FromCodes(make([]string, n), cols)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Discover(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteKeys(r)
		if !res.Keys.Equal(want) {
			t.Fatalf("iter %d: Keys = %v, want %v\nrelation:\n%v",
				iter, res.Keys.Strings(), want.Strings(), r)
		}
		// Theory cross-check on duplicate-free relations: instance keys
		// equal the keys of the discovered FD cover.
		d := r.Deduplicate()
		resD, err := Discover(context.Background(), d)
		if err != nil {
			t.Fatal(err)
		}
		theory := fd.MineBrute(d).Keys(d.Arity())
		if !resD.Keys.Equal(theory) {
			t.Fatalf("iter %d: instance keys %v != theory keys %v",
				iter, resD.Keys.Strings(), theory.Strings())
		}
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Discover(ctx, relation.PaperExample()); err == nil {
		t.Error("cancelled context should abort")
	}
}
