package relation

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/attrset"
)

func TestLoadQuotedFields(t *testing.T) {
	csvData := "name,motto\n\"Doe, Jane\",\"say \"\"hi\"\"\"\nJohn,plain\n"
	r, err := Load(strings.NewReader(csvData), true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value(0, 0) != "Doe, Jane" {
		t.Errorf("quoted comma value = %q", r.Value(0, 0))
	}
	if r.Value(0, 1) != `say "hi"` {
		t.Errorf("escaped quote value = %q", r.Value(0, 1))
	}
}

func TestLoadUnicodeValues(t *testing.T) {
	csvData := "ville,pays\nAubière,France\n東京,日本\nAubière,France\n"
	r, err := Load(strings.NewReader(csvData), true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Code(0, 0) != r.Code(2, 0) {
		t.Error("identical unicode values got different codes")
	}
	if r.Value(1, 1) != "日本" {
		t.Errorf("unicode value = %q", r.Value(1, 1))
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "東京") {
		t.Error("unicode lost on write")
	}
}

func TestLoadCRLFAndTrailingNewlines(t *testing.T) {
	csvData := "a,b\r\n1,x\r\n2,y\r\n\n"
	r, err := Load(strings.NewReader(csvData), true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows() != 2 {
		t.Errorf("Rows = %d, want 2", r.Rows())
	}
	if r.Value(1, 1) != "y" {
		t.Errorf("value = %q", r.Value(1, 1))
	}
}

func TestEmptyStringsAreValues(t *testing.T) {
	// Empty cells are legitimate values (the paper's model has no NULLs;
	// two empty cells agree).
	csvData := "a,b\n1,\n2,\n3,x\n"
	r, err := Load(strings.NewReader(csvData), true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Code(0, 1) != r.Code(1, 1) {
		t.Error("two empty cells must agree")
	}
	if r.Code(0, 1) == r.Code(2, 1) {
		t.Error("empty and non-empty must differ")
	}
	if !r.Satisfies(attrset.Single(0), 1) {
		t.Error("a → b should hold")
	}
}

func TestHeaderOnlyCSV(t *testing.T) {
	r, err := Load(strings.NewReader("a,b,c\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows() != 0 || r.Arity() != 3 {
		t.Errorf("shape %dx%d", r.Rows(), r.Arity())
	}
	// Everything holds vacuously.
	if !r.Satisfies(attrset.Empty(), 2) {
		t.Error("∅ → c should hold on the empty relation")
	}
}

func TestDuplicateHeaderNamesAccepted(t *testing.T) {
	// Column names are labels, not identities; duplicates load fine and
	// attributes stay distinct by index.
	r, err := Load(strings.NewReader("x,x\n1,2\n1,3\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Satisfies(attrset.Single(0), 1) {
		t.Error("col0 → col1 should fail")
	}
	if !r.Satisfies(attrset.Single(1), 0) {
		t.Error("col1 → col0 should hold")
	}
}

func TestWideRelationAtLimit(t *testing.T) {
	names := make([]string, attrset.MaxAttrs)
	row := make([]string, attrset.MaxAttrs)
	for i := range names {
		names[i] = "c"
		row[i] = "v"
	}
	r, err := FromRows(names, [][]string{row})
	if err != nil {
		t.Fatalf("exactly MaxAttrs should load: %v", err)
	}
	if r.Arity() != attrset.MaxAttrs {
		t.Error("arity mismatch")
	}
	if _, err := FromRows(append(names, "one-more"), nil); err == nil {
		t.Error("MaxAttrs+1 accepted")
	}
}

func TestValueForCodeFirstOccurrenceOrder(t *testing.T) {
	r, err := FromRows([]string{"a"}, [][]string{{"z"}, {"m"}, {"z"}, {"a"}})
	if err != nil {
		t.Fatal(err)
	}
	// Codes follow first occurrence: z=0, m=1, a=2 — the order the
	// real-world Armstrong construction relies on for v_A0.
	want := []string{"z", "m", "a"}
	for code, w := range want {
		if got := r.ValueForCode(0, code); got != w {
			t.Errorf("ValueForCode(0,%d) = %q, want %q", code, got, w)
		}
	}
}

// TestWriteCSVSingleEmptyField is the regression for a fuzzer-found
// round-trip bug: a record of exactly one empty field used to serialise
// to a blank line, which CSV readers skip, silently dropping the tuple
// (or the header) on reload.
func TestWriteCSVSingleEmptyField(t *testing.T) {
	r, err := FromRows([]string{""}, [][]string{{""}, {"x"}, {""}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf, true)
	if err != nil {
		t.Fatalf("reloading WriteCSV output: %v", err)
	}
	if back.Rows() != 3 || back.Arity() != 1 {
		t.Fatalf("round trip changed shape: got %d×%d, want 3×1", back.Rows(), back.Arity())
	}
	for i, want := range []string{"", "x", ""} {
		if got := back.Value(i, 0); got != want {
			t.Errorf("row %d = %q, want %q", i, got, want)
		}
	}
}
